//===- examples/generate_parser.cpp - the parser generator as a tool ------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 7 workflow: feed an IPG grammar in, get a standalone C++
/// recursive-descent parser out. With no arguments it emits the ELF
/// grammar's parser to stdout; pass a grammar file path to generate from
/// your own grammar. `--no-memo` emits the paper's plain recursive
/// descent instead of the default memoizing parser (the trees are
/// identical; only the backtracking complexity changes). Grammars with
/// blackbox terms compile too — bind implementations at run time with
/// `Parser::registerBlackbox(name, fn, cookie)` before parsing.
///
//===----------------------------------------------------------------------===//

#include "codegen/CppEmitter.h"
#include "formats/Elf.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace ipg;

int main(int argc, char **argv) {
  CppEmitterOptions Opts;
  std::string Path;
  for (int I = 1; I < argc; ++I) {
    if (std::string(argv[I]) == "--no-memo")
      Opts.Engine.UseMemo = false;
    else
      Path = argv[I];
  }
  std::string Src;
  if (!Path.empty()) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", Path.c_str());
      return 1;
    }
    std::ostringstream Ss;
    Ss << In.rdbuf();
    Src = Ss.str();
  } else {
    Src = formats::ElfGrammarText;
    std::fprintf(stderr, "no grammar given; emitting the ELF parser\n");
  }

  auto Loaded = loadGrammar(Src);
  if (!Loaded) {
    std::fprintf(stderr, "grammar error: %s\n", Loaded.message().c_str());
    return 1;
  }
  auto Code = emitCppParser(Loaded->G, "gen", Opts);
  if (!Code) {
    std::fprintf(stderr, "codegen error: %s\n", Code.message().c_str());
    return 1;
  }
  std::fputs(Code->c_str(), stdout);
  return 0;
}
