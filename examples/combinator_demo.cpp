//===- examples/combinator_demo.cpp - interval combinators demo -----------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Appendix A.2 parser-combinator library in action: the binary-number
/// parser of Figure 3 written with monadic combinators, plus the
/// interval-confinement combinator `localInterval` (the paper's `%`).
///
//===----------------------------------------------------------------------===//

#include "combinator/Combinator.h"

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string_view>

using namespace ipg;
using namespace ipg::comb;

static Parser<int64_t> digitP() {
  return choice(bind(charP('0'), [](char) { return pure<int64_t>(0); }),
                bind(charP('1'), [](char) { return pure<int64_t>(1); }));
}

int main() {
  // intP = fix (fun intp ->
  //   eoi >>= fun eoi ->
  //   intp % (0, eoi-1) >>= fun iv ->
  //   digitP % (eoi-1, eoi) >>= fun dv -> return (iv*2+dv)
  //   / digitP % (0,1))
  auto IntP = fix<int64_t>(
      std::function<Parser<int64_t>(Parser<int64_t>)>([](Parser<int64_t>
                                                             Self) {
        Parser<int64_t> Rec = bind(eoi(), [Self](int64_t Eoi) {
          return bind(localInterval(Self, 0, Eoi - 1), [Eoi](int64_t Hi) {
            return bind(localInterval(digitP(), Eoi - 1, Eoi),
                        [Hi](int64_t Lo) {
                          return pure<int64_t>(Hi * 2 + Lo);
                        });
          });
        });
        return choice(Rec, localInterval(digitP(), 0, 1));
      }));

  for (const char *Input : {"0", "1", "101", "101101", "11111111"}) {
    auto R = runParser(IntP, ByteSpan::of(std::string_view(Input)));
    if (R)
      std::printf("%-10s -> %lld\n", Input, static_cast<long long>(*R));
    else
      std::printf("%-10s -> parse failed\n", Input);
  }

  // Interval confinement: parse "bb" strictly within [2, 4).
  auto Confined = localInterval(strP("bb"), 2, 4);
  std::printf("\"aabbcc\" has \"bb\" at [2,4): %s\n",
              runParser(Confined, ByteSpan::of(std::string_view("aabbcc")))
                  ? "yes"
                  : "no");
  return 0;
}
