//===- examples/elf_inspector.cpp - readelf-style tool over IPG -----------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 4.1 case study as a tool: parse an ELF image with the IPG
/// grammar and print its section table, dynamic section, and symbols —
/// the readelf replacement of Figure 12. With no arguments it inspects a
/// synthesized ELF; pass a path to inspect a real ELF64 file.
///
//===----------------------------------------------------------------------===//

#include "formats/Elf.h"
#include "formats/FormatRegistry.h"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <vector>

using namespace ipg;
using namespace ipg::formats;

static const char *sectionTypeName(uint32_t Type) {
  switch (Type) {
  case 0:
    return "NULL";
  case 1:
    return "PROGBITS";
  case 2:
    return "SYMTAB";
  case 3:
    return "STRTAB";
  case 6:
    return "DYNAMIC";
  default:
    return "OTHER";
  }
}

int main(int argc, char **argv) {
  std::vector<uint8_t> Bytes;
  if (argc > 1) {
    std::ifstream In(argv[1], std::ios::binary);
    if (!In) {
      std::printf("cannot open %s\n", argv[1]);
      return 1;
    }
    Bytes.assign(std::istreambuf_iterator<char>(In),
                 std::istreambuf_iterator<char>());
    std::printf("inspecting %s (%zu bytes)\n", argv[1], Bytes.size());
  } else {
    ElfSynthSpec Spec;
    Spec.NumSymbols = 6;
    Spec.NumDynEntries = 4;
    Bytes = synthesizeElf(Spec);
    std::printf("inspecting a synthesized ELF (%zu bytes); pass a path to "
                "inspect a real file\n",
                Bytes.size());
  }

  auto E = makeFormatEngine("elf", EngineKind::Interp);
  if (!E) {
    std::printf("engine error: %s\n", E.message().c_str());
    return 1;
  }
  auto Tree = (*E)->parse(ByteSpan::of(Bytes));
  if (!Tree) {
    std::printf("not parseable by the ELF grammar: %s\n",
                Tree.message().c_str());
    return 1;
  }
  auto P = extractElf(*Tree, E->Load->G);
  if (!P) {
    std::printf("extraction error: %s\n", P.message().c_str());
    return 1;
  }

  std::printf("\nELF header:\n  section header table at %llu, %u entries\n",
              static_cast<unsigned long long>(P->ShOff), P->ShNum);
  std::printf("\nSections:\n");
  for (size_t K = 0; K < P->Sections.size(); ++K)
    std::printf("  [%2zu] %-9s off=%-8llu size=%llu\n", K,
                sectionTypeName(P->Sections[K].Type),
                static_cast<unsigned long long>(P->Sections[K].Offset),
                static_cast<unsigned long long>(P->Sections[K].Size));
  std::printf("\nDynamic section (%zu entries):\n", P->DynTags.size());
  for (uint64_t Tag : P->DynTags)
    std::printf("  tag 0x%llx\n", static_cast<unsigned long long>(Tag));
  std::printf("\nSymbols (%zu):\n", P->SymValues.size());
  for (uint64_t V : P->SymValues)
    std::printf("  value 0x%llx\n", static_cast<unsigned long long>(V));
  return 0;
}
