//===- examples/quickstart.cpp - IPG library quickstart -------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Walks through the paper's introductory examples end to end: load a
/// grammar from text, run the static checks, parse inputs, and read
/// attributes back out of the parse tree.
///
//===----------------------------------------------------------------------===//

#include "analysis/AttributeCheck.h"
#include "analysis/Termination.h"
#include "runtime/Engine.h"
#include "support/Casting.h"

#include <cstdio>

using namespace ipg;

int main() {
  // Figure 2 + Figure 3 of the paper combined: a header stores the offset
  // and length of a payload ("random access"), and the payload must be a
  // binary number whose value we compute in an attribute.
  const char *Src = R"(
    S -> H[0, 8] Int[H.offset, H.offset + H.length] {val = Int.val} ;
    H -> raw[8] {offset = u32le(0)} {length = u32le(4)} ;
    Int -> Int[0, EOI - 1] Digit[EOI - 1, EOI] {val = 2 * Int.val + Digit.val}
         / Digit[0, 1] {val = Digit.val} ;
    Digit -> "0"[0, 1] {val = 0} / "1"[0, 1] {val = 1} ;
  )";

  // 1. Parse the grammar text and run completion + attribute checking.
  auto Loaded = loadGrammar(Src);
  if (!Loaded) {
    std::printf("grammar error: %s\n", Loaded.message().c_str());
    return 1;
  }
  Grammar &G = Loaded->G;
  std::printf("grammar loaded: %zu rules, %zu intervals (%zu implicit)\n",
              G.numRules(), Loaded->Stats.TotalIntervals,
              Loaded->Stats.FullyImplicit);

  // 2. Static termination checking (Section 5).
  TerminationReport Rep = checkTermination(G);
  std::printf("termination: %s (%zu elementary cycles)\n",
              Rep.Terminates ? "proved" : "NOT proved", Rep.NumCycles);

  // 3. Build an input: header says "offset 12, length 6", payload 101101.
  ByteWriter W;
  W.u32le(12);
  W.u32le(6);
  W.raw("????");   // junk the grammar never looks at
  W.raw("101101"); // the payload
  auto Bytes = W.take();

  // 4. Build an engine through the one factory (EngineKind::Generated
  //    would compile this same grammar to C++ instead) and parse.
  auto Eng = makeEngine(EngineKind::Interp, G);
  if (!Eng) {
    std::printf("engine error: %s\n", Eng.message().c_str());
    return 1;
  }
  Engine &I = **Eng;
  auto Tree = I.parse(ByteSpan::of(Bytes));
  if (!Tree) {
    std::printf("parse failed: %s\n", Tree.message().c_str());
    return 1;
  }
  const auto *Root = cast<NodeTree>(Tree->get());
  std::printf("parsed! S.val = %lld (expected 45)\n",
              static_cast<long long>(
                  Root->attr(G.intern("val")).value_or(-1)));

  // 5. Show the parse tree and engine stats.
  std::printf("\nparse tree:\n%s",
              treeToString(*Tree->get(), G.interner()).c_str());
  std::printf("\nstats: %zu nodes, %zu terms executed, %zu memo hits\n",
              I.stats().NodesCreated, I.stats().TermsExecuted,
              I.stats().MemoHits);

  // 6. Malformed input fails cleanly: claim a length past end-of-input.
  ByteWriter Bad;
  Bad.u32le(12);
  Bad.u32le(600);
  Bad.raw("????101101");
  auto BadTree = I.parse(ByteSpan::of(Bad.bytes()));
  std::printf("\nmalformed input: %s\n",
              BadTree ? "accepted (?!)" : BadTree.message().c_str());
  return 0;
}
