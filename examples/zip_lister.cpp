//===- examples/zip_lister.cpp - unzip-style tool over IPG ----------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ZIP case study as a tool: parse an archive backward from its EOCD
/// record, list entries, and decompress compressed ones through the
/// `inflate` blackbox (Section 3.4's modularity story: a legacy
/// decompressor invoked on an interval-confined slice).
///
//===----------------------------------------------------------------------===//

#include "formats/FormatRegistry.h"
#include "formats/Zip.h"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <vector>

using namespace ipg;
using namespace ipg::formats;

int main() {
  // Build a mixed archive: one stored entry, two compressed ones.
  ZipSynthSpec Spec;
  std::vector<uint8_t> Hello;
  for (const char *P = "hello, interval parsing grammars!\n"; *P; ++P)
    Hello.push_back(static_cast<uint8_t>(*P));
  Spec.Entries.push_back({"hello.txt", Hello, /*Compress=*/false});
  Spec.Entries.push_back({"runs.bin", std::vector<uint8_t>(1 << 14, 'R'),
                          /*Compress=*/true});
  std::vector<uint8_t> Mixed;
  for (int K = 0; K < 4096; ++K)
    Mixed.push_back(static_cast<uint8_t>(K % 23 == 0 ? K : 'm'));
  Spec.Entries.push_back({"mixed.bin", Mixed, /*Compress=*/true});
  auto Bytes = synthesizeZip(Spec);
  std::printf("archive: %zu bytes, %zu entries\n", Bytes.size(),
              Spec.Entries.size());

  // The factory wires the `inflate` blackbox in automatically for zip.
  auto E = makeFormatEngine("zip", EngineKind::Interp);
  if (!E) {
    std::printf("engine error: %s\n", E.message().c_str());
    return 1;
  }
  auto Tree = (*E)->parse(ByteSpan::of(Bytes));
  if (!Tree) {
    std::printf("parse failed: %s\n", Tree.message().c_str());
    return 1;
  }
  auto P = extractZip(*Tree, E->Load->G);
  if (!P) {
    std::printf("extraction error: %s\n", P.message().c_str());
    return 1;
  }

  std::printf("\n%-12s %10s %12s %10s\n", "entry", "method", "compressed",
              "original");
  for (size_t K = 0; K < P->Entries.size(); ++K) {
    const ZipParsedEntry &E = P->Entries[K];
    std::printf("%-12s %10s %12u %10u\n", Spec.Entries[K].Name.c_str(),
                E.Method == 0 ? "stored" : "deflated", E.CompressedSize,
                E.UncompressedSize);
    if (E.Method == 8 && E.Data != Spec.Entries[K].Data) {
      std::printf("  decompression mismatch!\n");
      return 1;
    }
  }
  std::printf("\nall compressed entries decoded correctly through the "
              "blackbox\n");
  std::printf("(stored entries were skipped zero-copy: %zu archived bytes "
              "never touched)\n",
              Hello.size());
  return 0;
}
