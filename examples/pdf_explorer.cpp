//===- examples/pdf_explorer.cpp - PDF xref explorer over IPG -------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 4.3 case study as a tool: the parser starts at the *end* of
/// the file, scans the startxref offset backward digit by digit (the bNum
/// pattern), jumps to the xref table, and re-parses every object region
/// the table points at (multi-pass parsing with overlapping intervals).
///
//===----------------------------------------------------------------------===//

#include "formats/FormatRegistry.h"
#include "formats/Pdf.h"

#include <cstddef>
#include <cstdio>

using namespace ipg;
using namespace ipg::formats;

int main() {
  PdfSynthSpec Spec;
  Spec.NumObjects = 4;
  Spec.ObjectBodySize = 40;
  PdfModel Model;
  auto Bytes = synthesizePdf(Spec, &Model);
  std::printf("document: %zu bytes, %zu objects\n", Bytes.size(),
              Spec.NumObjects);
  std::printf("tail of file: ...startxref\\n%zu\\n%%%%EOF\n",
              Model.XrefOffset);

  auto E = makeFormatEngine("pdf", EngineKind::Interp);
  if (!E) {
    std::printf("engine error: %s\n", E.message().c_str());
    return 1;
  }
  auto Tree = (*E)->parse(ByteSpan::of(Bytes));
  if (!Tree) {
    std::printf("parse failed: %s\n", Tree.message().c_str());
    return 1;
  }
  auto P = extractPdf(*Tree, E->Load->G);
  if (!P) {
    std::printf("extraction error: %s\n", P.message().c_str());
    return 1;
  }

  std::printf("\nxref table found at offset %zu (parsed backward from "
              "%%%%EOF)\n",
              P->XrefOffset);
  std::printf("%zu xref entries (entry 0 is the free entry)\n",
              P->NumXrefEntries);
  for (size_t K = 0; K < P->ObjectOffsets.size(); ++K)
    std::printf("  object %zu at offset %zu — re-parsed and verified to "
                "end in 'endobj'\n",
                K + 1, P->ObjectOffsets[K]);
  return 0;
}
