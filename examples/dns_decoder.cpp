//===- examples/dns_decoder.cpp - DNS packet decoder over IPG -------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decodes DNS response packets with the IPG grammar: label-chain names,
/// compression pointers, and a record list whose length must agree with
/// the header's answer count.
///
//===----------------------------------------------------------------------===//

#include "formats/Dns.h"
#include "formats/FormatRegistry.h"

#include <cstddef>
#include <cstdint>
#include <cstdio>

using namespace ipg;
using namespace ipg::formats;

int main() {
  DnsSynthSpec Spec;
  Spec.QName = "cache.pldi.example.org";
  Spec.NumAnswers = 3;
  Spec.RDataSize = 4;
  DnsModel Model;
  auto Bytes = synthesizeDns(Spec, &Model);
  std::printf("packet: %zu bytes\n", Bytes.size());

  auto E = makeFormatEngine("dns", EngineKind::Interp);
  if (!E) {
    std::printf("engine error: %s\n", E.message().c_str());
    return 1;
  }
  auto Tree = (*E)->parse(ByteSpan::of(Bytes));
  if (!Tree) {
    std::printf("parse failed: %s\n", Tree.message().c_str());
    return 1;
  }
  auto P = extractDns(*Tree, E->Load->G, ByteSpan::of(Bytes));
  if (!P) {
    std::printf("extraction error: %s\n", P.message().c_str());
    return 1;
  }

  std::printf("\nid: 0x%04x   questions: %u   answers: %u\n", P->Id,
              P->QdCount, P->AnCount);
  std::printf("question: %s\n", P->QName.c_str());
  for (size_t K = 0; K < P->AnswerTypes.size(); ++K)
    std::printf("answer %zu: type=%u rdlength=%u (name compressed to a "
                "pointer at the question)\n",
                K, P->AnswerTypes[K], P->RDataLengths[K]);

  // Malformed packets are rejected, not mis-parsed.
  auto Bad = Bytes;
  Bad[7] = static_cast<uint8_t>(Spec.NumAnswers + 1); // lie about ANCOUNT
  auto BadTree = (*E)->parse(ByteSpan::of(Bad));
  std::printf("\npacket with inflated answer count: %s\n",
              BadTree ? "accepted (?!)" : "rejected");
  return 0;
}
