//===- tests/genruntime_test.cpp - embedded runtime (ipg_rt) --------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit coverage for the pieces of the shared runtime (support/GenRuntime.h)
/// that generated parsers embed: the (rule, interval) memo table under the
/// adversarial collision/tombstone/generational-clear patterns mirrored
/// from tests/arena_test.cpp (which exercises the same code through the
/// ipg aliases), lazy shifted-node views including deep nesting (a view
/// whose base is itself a view) and aliasing (many views over one base),
/// the O(1) SlotIndex behind environments, and the blackbox hook's node
/// construction. Runs under the ASan+UBSan CI job like every suite.
///
//===----------------------------------------------------------------------===//

#include "support/GenRuntime.h"

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <string>
#include <unordered_map>
#include <vector>

using namespace ipg_rt;

namespace {

/// A tiny name table: ids 0/1 are fixed to start/end by the runtime
/// contract; the rest are free.
const char *const Names[] = {"start", "end", "A", "x", "bb", "val"};
constexpr unsigned IdA = 2, IdX = 3, IdBb = 4, IdVal = 5;

/// Builds a frozen node with the given start/end/x attributes through the
/// same Frame path generated code uses.
unsigned freezeNode(Ctx &C, long long Start, long long End, long long X) {
  Frame &F = C.frameAt(0);
  F.beginAlt(nullptr, 0, 16, nullptr, 0);
  F.setAttr(IdStart, Start);
  F.setAttr(IdEnd, End);
  F.setAttr(IdX, X);
  return C.freeze(F, IdA);
}

} // namespace

//===----------------------------------------------------------------------===//
// FlatIntervalMap (the embedded twin of the interpreter's memo table)
//===----------------------------------------------------------------------===//

TEST(GenRuntimeFlatHash, AdversarialIntervalPatternsCollideCorrectly) {
  // One rule over thousands of overlapping slices — heavy probe-sequence
  // sharing in a small table — mirrored against a reference map.
  FlatIntervalMap<int> M;
  std::unordered_map<uint64_t, int> Ref;
  int V = 0;
  const uint64_t N = 60;
  for (uint64_t Lo = 0; Lo < N; ++Lo)
    for (uint64_t Hi = Lo; Hi < N; ++Hi) {
      EXPECT_TRUE(M.insert(IntervalKey::pack(3, Lo, Hi), V));
      Ref[Lo * N + Hi] = V;
      ++V;
    }
  EXPECT_EQ(M.size(), Ref.size());
  for (uint64_t Lo = 0; Lo < N; ++Lo)
    for (uint64_t Hi = Lo; Hi < N; ++Hi) {
      int *P = M.find(IntervalKey::pack(3, Lo, Hi));
      ASSERT_NE(P, nullptr);
      EXPECT_EQ(*P, Ref[Lo * N + Hi]);
    }
  for (uint64_t Lo = 1; Lo < N; ++Lo)
    EXPECT_EQ(M.find(IntervalKey::pack(3, Lo, Lo - 1)), nullptr);
}

TEST(GenRuntimeFlatHash, TombstonesKeepProbeChainsIntact) {
  FlatIntervalMap<uint8_t> M;
  const uint64_t N = 500;
  for (uint64_t I = 0; I < N; ++I)
    EXPECT_TRUE(M.insert(IntervalKey::pack(1, I, N), 1));
  for (uint64_t I = 0; I < N; I += 2)
    EXPECT_TRUE(M.erase(IntervalKey::pack(1, I, N)));
  for (uint64_t I = 0; I < N; ++I) {
    if (I % 2)
      EXPECT_NE(M.find(IntervalKey::pack(1, I, N)), nullptr) << I;
    else
      EXPECT_EQ(M.find(IntervalKey::pack(1, I, N)), nullptr) << I;
  }
  // Reinsertion reclaims tombstones instead of leaking them into load.
  for (uint64_t I = 0; I < N; I += 2)
    EXPECT_TRUE(M.insert(IntervalKey::pack(1, I, N), 2));
  EXPECT_EQ(M.size(), N);
  for (uint64_t I = 0; I < N; ++I)
    ASSERT_NE(M.find(IntervalKey::pack(1, I, N)), nullptr) << I;
}

TEST(GenRuntimeFlatHash, GenerationalClearKeepsCapacityAndIsolation) {
  FlatIntervalMap<int> M;
  size_t CapAfterFirst = 0;
  for (int Epoch = 0; Epoch < 50; ++Epoch) {
    for (uint64_t I = 0; I < 100; ++I)
      EXPECT_TRUE(M.insert(IntervalKey::pack(1, I, I + 1), Epoch));
    for (uint64_t I = 0; I < 100; I += 3)
      EXPECT_TRUE(M.erase(IntervalKey::pack(1, I, I + 1)));
    for (uint64_t I = 0; I < 100; ++I) {
      int *P = M.find(IntervalKey::pack(1, I, I + 1));
      if (I % 3 == 0) {
        EXPECT_EQ(P, nullptr) << Epoch << "/" << I;
      } else {
        ASSERT_NE(P, nullptr) << Epoch << "/" << I;
        EXPECT_EQ(*P, Epoch); // no bleed-through from older epochs
      }
    }
    M.clear();
    EXPECT_EQ(M.size(), 0u);
    EXPECT_EQ(M.find(IntervalKey::pack(1, 1, 2)), nullptr);
    if (Epoch == 0)
      CapAfterFirst = M.capacity();
    else
      EXPECT_EQ(M.capacity(), CapAfterFirst) << "clear() must keep capacity";
  }
}

//===----------------------------------------------------------------------===//
// SlotIndex (the O(1) environment index behind Env and Frame)
//===----------------------------------------------------------------------===//

TEST(GenRuntimeSlotIndex, RecordLookupForgetAndGenerationalClear) {
  SlotIndex Ix;
  uint32_t Out = 0;
  EXPECT_FALSE(Ix.lookup(0, Out));
  EXPECT_FALSE(Ix.lookup(1000, Out));

  Ix.record(7, 0);
  Ix.record(300, 1);
  ASSERT_TRUE(Ix.lookup(7, Out));
  EXPECT_EQ(Out, 0u);
  ASSERT_TRUE(Ix.lookup(300, Out));
  EXPECT_EQ(Out, 1u);

  Ix.record(7, 5); // overwrite
  ASSERT_TRUE(Ix.lookup(7, Out));
  EXPECT_EQ(Out, 5u);

  Ix.forget(7);
  EXPECT_FALSE(Ix.lookup(7, Out));
  ASSERT_TRUE(Ix.lookup(300, Out)); // unaffected

  Ix.clear(); // generation bump: everything gone, no sweep
  EXPECT_FALSE(Ix.lookup(300, Out));
  Ix.record(300, 9);
  ASSERT_TRUE(Ix.lookup(300, Out));
  EXPECT_EQ(Out, 9u);
}

TEST(GenRuntimeSlotIndex, FrameEnvironmentUsesTheIndexConsistently) {
  Ctx C;
  C.setNames(Names, sizeof(Names) / sizeof(Names[0]));
  Frame &F = C.frameAt(0);
  F.beginAlt(nullptr, 0, 8, nullptr, 0);

  long long V = 0;
  EXPECT_FALSE(F.getAttr(IdX, V));
  F.setAttr(IdX, 1);
  F.setAttr(IdA, 2);
  F.setAttr(IdVal, 3);
  F.setAttr(IdX, 10); // overwrite in place, no duplicate slot
  ASSERT_EQ(F.E.size(), 3u);
  ASSERT_TRUE(F.getAttr(IdX, V));
  EXPECT_EQ(V, 10);

  // Erasing a middle slot reseats the indices of the slots that slid.
  F.eraseAttr(IdA);
  ASSERT_EQ(F.E.size(), 2u);
  EXPECT_FALSE(F.getAttr(IdA, V));
  ASSERT_TRUE(F.getAttr(IdX, V));
  EXPECT_EQ(V, 10);
  ASSERT_TRUE(F.getAttr(IdVal, V));
  EXPECT_EQ(V, 3);

  // beginAlt invalidates every binding by generation, not by sweep.
  F.beginAlt(nullptr, 0, 8, nullptr, 0);
  EXPECT_FALSE(F.getAttr(IdX, V));
  EXPECT_FALSE(F.getAttr(IdVal, V));
  F.setAttr(IdVal, 4);
  ASSERT_TRUE(F.getAttr(IdVal, V));
  EXPECT_EQ(V, 4);
}

//===----------------------------------------------------------------------===//
// Lazy shifted views
//===----------------------------------------------------------------------===//

TEST(GenRuntimeShiftedViews, ViewsShareSlotsAndResolveAtReadTime) {
  Ctx C;
  C.setNames(Names, sizeof(Names) / sizeof(Names[0]));
  C.beginParse(nullptr);
  unsigned Base = freezeNode(C, 1, 3, 9);
  unsigned View = C.shifted(Base, 10);
  ASSERT_NE(View, Base);

  // The view shares the base's slot array — nothing was copied.
  EXPECT_EQ(C.node(View)->Slots, C.node(Base)->Slots);

  long long V = 0;
  ASSERT_TRUE(C.node(View)->getById(IdStart, V));
  EXPECT_EQ(V, 11);
  ASSERT_TRUE(C.node(View)->getById(IdEnd, V));
  EXPECT_EQ(V, 13);
  ASSERT_TRUE(C.node(View)->getById(IdX, V));
  EXPECT_EQ(V, 9); // coordinate-free attributes are untouched
  ASSERT_TRUE(C.node(View)->get("start", V));
  EXPECT_EQ(V, 11); // the by-name reader resolves the shift too

  // The base is unchanged (memoized nodes are shared across parents).
  ASSERT_TRUE(C.node(Base)->getById(IdStart, V));
  EXPECT_EQ(V, 1);

  // A zero delta needs no view object at all.
  EXPECT_EQ(C.shifted(Base, 0), Base);
}

TEST(GenRuntimeShiftedViews, DeepNestingComposesDeltas) {
  Ctx C;
  C.setNames(Names, sizeof(Names) / sizeof(Names[0]));
  C.beginParse(nullptr);
  unsigned Base = freezeNode(C, 1, 3, 9);
  // A view whose base is itself a view: deltas accumulate, and every
  // level still aliases the one frozen slot array.
  unsigned V1 = C.shifted(Base, 10);
  unsigned V2 = C.shifted(V1, 100);
  unsigned V3 = C.shifted(V2, 1000);
  EXPECT_EQ(C.node(V3)->Slots, C.node(Base)->Slots);
  long long V = 0;
  ASSERT_TRUE(C.node(V3)->getById(IdStart, V));
  EXPECT_EQ(V, 1111);
  ASSERT_TRUE(C.node(V3)->getById(IdEnd, V));
  EXPECT_EQ(V, 1113);
  // Intermediate views are independent readers of the shared slots.
  ASSERT_TRUE(C.node(V1)->getById(IdStart, V));
  EXPECT_EQ(V, 11);
  ASSERT_TRUE(C.node(V2)->getById(IdStart, V));
  EXPECT_EQ(V, 111);
}

TEST(GenRuntimeShiftedViews, AliasedViewsAndSpansAndDumps) {
  Ctx C;
  C.setNames(Names, sizeof(Names) / sizeof(Names[0]));
  C.beginParse(nullptr);
  unsigned Base = freezeNode(C, 1, 3, 9);
  // Many parents re-anchor one memoized subtree at different offsets.
  unsigned AtFive = C.shifted(Base, 5);
  unsigned AtSeven = C.shifted(Base, 7);
  long long S1 = 0, S2 = 0;
  ASSERT_TRUE(C.node(AtFive)->getById(IdStart, S1));
  ASSERT_TRUE(C.node(AtSeven)->getById(IdStart, S2));
  EXPECT_EQ(S1, 6);
  EXPECT_EQ(S2, 8);

  // childSpanOf (the T-NTSucc parent view) resolves shifts too.
  long long BS = 0, BE = 0;
  C.childSpanOf(AtFive, 16, BS, BE);
  EXPECT_EQ(BS, 6);
  EXPECT_EQ(BE, 8);

  // An untouched node (no start/end) reads as [sub-EOI, 0) regardless.
  Frame &F = C.frameAt(0);
  F.beginAlt(nullptr, 0, 16, nullptr, 0);
  F.setAttr(IdX, 1);
  unsigned Untouched = C.freeze(F, IdA);
  C.childSpanOf(Untouched, 16, BS, BE);
  EXPECT_EQ(BS, 16);
  EXPECT_EQ(BE, 0);

  // The canonical dump (the differential-test contract) prints resolved
  // coordinates.
  std::string D = dumpTree(C.node(AtSeven));
  EXPECT_NE(D.find("start=8"), std::string::npos) << D;
  EXPECT_NE(D.find("end=10"), std::string::npos) << D;
  EXPECT_NE(D.find("x=9"), std::string::npos) << D;
}

TEST(GenRuntimeShiftedViews, PrinterComposesShiftDeltasAcrossThreeLevels) {
  Ctx C;
  C.setNames(Names, sizeof(Names) / sizeof(Names[0]));
  C.beginParse(nullptr);
  static const unsigned char Ab[] = {'a', 'b'}, Cd[] = {'c', 'd'},
                             Ef[] = {'e', 'f'};

  // Innermost node: one leaf at local offset 0.
  Frame &FG = C.frameAt(2);
  FG.beginAlt(nullptr, 0, 2, nullptr, 0);
  FG.setAttr(IdStart, 0);
  FG.setAttr(IdEnd, 2);
  FG.Kids.push_back(C.leaf(Ef, 2, 0, false));
  unsigned GcBase = C.freeze(FG, IdA);

  // Middle node: its own leaf, plus the innermost subtree re-anchored
  // two bytes in (the T-NTSucc shape).
  Frame &FM = C.frameAt(1);
  FM.beginAlt(nullptr, 0, 4, nullptr, 0);
  FM.setAttr(IdStart, 0);
  FM.setAttr(IdEnd, 4);
  FM.Kids.push_back(C.leaf(Cd, 2, 0, false));
  FM.Kids.push_back(C.shifted(GcBase, 2));
  unsigned MidBase = C.freeze(FM, IdA);

  // Root: a leaf plus the middle subtree, itself re-anchored.
  Frame &FR = C.frameAt(0);
  FR.beginAlt(nullptr, 0, 6, nullptr, 0);
  FR.setAttr(IdStart, 0);
  FR.setAttr(IdEnd, 6);
  FR.Kids.push_back(C.leaf(Ab, 2, 0, false));
  FR.Kids.push_back(C.shifted(MidBase, 2));
  unsigned Root = C.freeze(FR, IdA);

  // Every stored leaf offset is 0; only the accumulated view deltas can
  // place the bytes. The printer's origin walk must compose them across
  // three node levels: innermost leaf at 0 (root) + 2 (mid) + 2 (gc).
  PrintOptions O;
  PrintOut R;
  ASSERT_TRUE(printTree(C.node(Root), O, R)) << R.Error;
  EXPECT_EQ(std::string(R.Bytes.begin(), R.Bytes.end()), "abcdef");
  EXPECT_EQ(R.CoveredBytes, 6u);
  EXPECT_EQ(R.GapBytes, 0u);
  EXPECT_EQ(R.OverlapBytes, 0u);

  // The same tree through a view-of-a-view root (chained deltas 1 + 2 on
  // the middle node): the subtree shifts as one rigid unit to origin 3.
  // Strict printing must then REFUSE — absolute bytes [0,3) are covered
  // by no leaf — while background fill reconstructs around it.
  unsigned MidTwice = C.shifted(C.shifted(MidBase, 1), 2);
  PrintOut R2;
  EXPECT_FALSE(printTree(C.node(MidTwice), O, R2));
  EXPECT_NE(R2.Error.find("no leaf covers"), std::string::npos) << R2.Error;
  PrintOptions Fill;
  Fill.Strict = false;
  static const unsigned char Bg[] = {'_', '_', '_', 'x', 'x', 'x', 'x'};
  Fill.Background = Bg;
  Fill.BackgroundLen = sizeof(Bg);
  PrintOut R3;
  ASSERT_TRUE(printTree(C.node(MidTwice), Fill, R3)) << R3.Error;
  EXPECT_EQ(std::string(R3.Bytes.begin(), R3.Bytes.end()), "___cdef");
  EXPECT_EQ(R3.GapBytes, 3u);
}

//===----------------------------------------------------------------------===//
// Ctx memoization surface (what emitted parseRule_N calls)
//===----------------------------------------------------------------------===//

TEST(GenRuntimeMemo, StoresSuccessesAndFailuresAndCounts) {
  Ctx C;
  C.setNames(Names, sizeof(Names) / sizeof(Names[0]));
  C.beginParse(nullptr);
  unsigned Node = freezeNode(C, 0, 2, 5);

  bool Ok = false;
  unsigned Id = 0;
  EXPECT_FALSE(C.memoFind(4, 0, 16, Ok, Id)); // miss
  C.memoStore(4, 0, 16, true, Node);
  ASSERT_TRUE(C.memoFind(4, 0, 16, Ok, Id)); // hit
  EXPECT_TRUE(Ok);
  EXPECT_EQ(Id, Node);

  C.memoStore(4, 2, 16, false, 0); // memoized failure
  ASSERT_TRUE(C.memoFind(4, 2, 16, Ok, Id));
  EXPECT_FALSE(Ok);

  // Different rule, same interval: distinct key.
  EXPECT_FALSE(C.memoFind(5, 0, 16, Ok, Id));

  EXPECT_EQ(C.memoHits(), 2u);
  EXPECT_EQ(C.memoMisses(), 2u);

  // beginParse invalidates the table (generational) and the counters.
  C.beginParse(nullptr);
  EXPECT_FALSE(C.memoFind(4, 0, 16, Ok, Id));
  EXPECT_EQ(C.memoHits(), 0u);
  EXPECT_EQ(C.memoMisses(), 1u);
}

//===----------------------------------------------------------------------===//
// Blackbox hook
//===----------------------------------------------------------------------===//

namespace {

bool consumingBb(void *, const unsigned char *, size_t Len,
                 BlackboxOut &Out) {
  static const unsigned char Decoded[4] = {1, 2, 3, 4};
  if (Len < 2)
    return false;
  Out.Value = 42;
  Out.End = 2;
  Out.Output = Decoded;
  Out.OutputLen = 4;
  return true;
}

bool emptyBb(void *, const unsigned char *, size_t, BlackboxOut &Out) {
  Out.Value = 7;
  Out.End = 0;
  return true;
}

bool overrunBb(void *, const unsigned char *, size_t Len,
               BlackboxOut &Out) {
  Out.End = static_cast<long long>(Len) + 1;
  return true;
}

} // namespace

TEST(GenRuntimeBlackbox, UnregisteredIsAHardFailure) {
  Ctx C;
  C.setNames(Names, sizeof(Names) / sizeof(Names[0]));
  C.beginParse(nullptr);
  BlackboxOut BB;
  unsigned char Buf[4] = {0};
  EXPECT_EQ(C.callBlackbox(IdBb, Buf, 4, BB), 0);
  EXPECT_TRUE(C.hardFailed());
}

TEST(GenRuntimeBlackbox, OverrunIsAHardFailureRejectionIsSoft) {
  Ctx C;
  C.setNames(Names, sizeof(Names) / sizeof(Names[0]));
  C.beginParse(nullptr);
  C.registerBlackbox(IdBb, consumingBb, nullptr);
  unsigned char Buf[4] = {0};
  BlackboxOut BB;
  // Soft: the decoder rejects (Len < 2) but the parse may backtrack.
  EXPECT_EQ(C.callBlackbox(IdBb, Buf, 1, BB), 0);
  EXPECT_FALSE(C.hardFailed());
  // Hard: consuming past the slice aborts the parse.
  C.registerBlackbox(IdBb, overrunBb, nullptr); // rebind
  EXPECT_EQ(C.callBlackbox(IdBb, Buf, 4, BB), 0);
  EXPECT_TRUE(C.hardFailed());
}

TEST(GenRuntimeBlackbox, NodeLayoutMatchesTheInterpreter) {
  Ctx C;
  C.setNames(Names, sizeof(Names) / sizeof(Names[0]));
  C.beginParse(nullptr);
  C.registerBlackbox(IdBb, consumingBb, nullptr);

  unsigned char Buf[8] = {0};
  BlackboxOut BB;
  ASSERT_EQ(C.callBlackbox(IdBb, Buf, 8, BB), 1);
  size_t FrozenBefore = C.frozenNodeCount();
  unsigned Id = C.blackboxNode(IdBb, IdVal, BB, /*Lo=*/3, /*Hi=*/8);
  EXPECT_EQ(C.frozenNodeCount(), FrozenBefore + 1);

  const Node *N = C.node(Id);
  long long V = 0;
  ASSERT_TRUE(N->getById(IdVal, V));
  EXPECT_EQ(V, 42);
  ASSERT_TRUE(N->getById(IdStart, V));
  EXPECT_EQ(V, 3); // Lo
  ASSERT_TRUE(N->getById(IdEnd, V));
  EXPECT_EQ(V, 5); // Lo + End
  // The decoded output became a leaf child COPYING the bytes (the
  // callback's buffer dies on its next invocation).
  ASSERT_EQ(N->kidCount(), 1u);
  const Node *Leaf = N->kid(0);
  EXPECT_EQ(Leaf->Kind, Node::KLeaf);
  EXPECT_NE(Leaf->Data, BB.Output); // arena copy, not the callback buffer
  EXPECT_EQ(Leaf->Len, 4u);
  EXPECT_EQ(Leaf->Data[0], 1);
  EXPECT_EQ(Leaf->Data[3], 4);
  EXPECT_FALSE(Leaf->Opaque);

  // An empty consumption mirrors the interpreter's untouched-span slots:
  // start = sub-EOI, end = Lo.
  C.registerBlackbox(IdBb, emptyBb, nullptr);
  ASSERT_EQ(C.callBlackbox(IdBb, Buf, 8, BB), 1);
  unsigned Empty = C.blackboxNode(IdBb, IdVal, BB, /*Lo=*/3, /*Hi=*/8);
  const Node *E = C.node(Empty);
  ASSERT_TRUE(E->getById(IdStart, V));
  EXPECT_EQ(V, 5); // Hi - Lo
  ASSERT_TRUE(E->getById(IdEnd, V));
  EXPECT_EQ(V, 3); // Lo
  EXPECT_EQ(E->kidCount(), 0u);
}
