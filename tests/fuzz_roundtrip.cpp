//===- tests/fuzz_roundtrip.cpp - structure-aware roundtrip fuzzing -------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structure-aware roundtrip fuzzer. For every format corpus the
/// harness parses the pristine sample, prints it with span collection
/// (serialize/Printer.cpp), and then mutates the BYTES guided by the
/// collected node spans — perturb a byte inside a subtree, splice a
/// subtree out, duplicate one in place, truncate inside one — rather
/// than flipping blind offsets. Each mutant is re-parsed and must land
/// in one of two honest outcomes:
///
///   accept  — and then the re-printed tree must reproduce the mutant
///             byte-for-byte (parse ∘ print = id on everything the
///             engine claims to understand);
///   reject  — with an ordinary parse error. Rejects whose message
///             carries the interpreter's "internal:" prefix are
///             infrastructure bugs and fail the run.
///
/// The deflated-zip corpus gets one extra outcome: a mutated compressed
/// stream can still decode, and re-encoding the decoded bytes through
/// the deterministic inverse then produces the CANONICAL stream, not the
/// mutant — the fuzzer accepts exactly that shape (a blackbox-inverse
/// window error, or a re-print that re-parses to its own fixpoint) and
/// nothing else.
///
/// Every mutant additionally runs through a RecoveryPolicy::Salvage
/// engine, which owes the same honesty: Accept or hole-fenced Salvage
/// (and then the reprint obligations above — hole leaves alias the
/// damaged bytes byte-for-byte), or a clean reject. "internal:" is a
/// failure in this pass too.
///
/// Runs standalone (no gtest): a fixed-seed shallow pass is registered
/// with ctest so every `ctest` invocation replays the same mutants, and
/// CI's fuzz-smoke job runs an open-ended pass seeded from the run id
/// under ASan+UBSan. Any failure writes the mutant to --repro-dir and
/// exits nonzero; replay with
///   fuzz_roundtrip --format <name> --seed <seed> --iterations <n>
///
//===----------------------------------------------------------------------===//

#include "formats/FormatRegistry.h"
#include "formats/Zip.h"
#include "runtime/Interp.h"
#include "serialize/Printer.h"

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

using namespace ipg;

namespace {

struct Corpus {
  std::string Name;            // display / --format key
  std::string Format;          // formats:: registry key
  std::vector<uint8_t> Bytes;  // pristine sample
  bool Blackbox = false;       // canonicalization outcomes allowed
};

struct Stats {
  uint64_t Accepted = 0;
  uint64_t AcceptedExact = 0;
  uint64_t Canonicalized = 0;
  uint64_t Rejected = 0;
  uint64_t Failures = 0;
  // The Salvage-mode pass over the same mutants (RecoveryPolicy::
  // Salvage): every mutant must land in accept / hole-fenced salvage /
  // clean reject — the same print obligations as the strict pass.
  uint64_t SalvageAccepted = 0;
  uint64_t SalvageHoled = 0;
  uint64_t SalvageRejected = 0;
};

struct Options {
  uint64_t Iterations = 200;
  uint64_t Seed = 0x1960'0717;  // fixed default: the ctest run is replayable
  std::string OnlyFormat;       // empty = all corpora
  std::string ReproDir = ".";
};

std::vector<Corpus> buildCorpora() {
  std::vector<Corpus> Out;
  for (const formats::FormatInfo &FI : formats::allFormats())
    Out.push_back({FI.Name, FI.Name, formats::sampleInput(FI.Name, 1),
                   /*Blackbox=*/false});
  // The stored-entry zip sample above never calls `inflate`; this one
  // drives every mutant through the blackbox decoder and its inverse.
  Out.push_back({"zip-deflated", "zip",
                 formats::synthesizeZip(
                     formats::zipArchiveOfCopies(4, 2048, /*Compress=*/true)),
                 /*Blackbox=*/true});
  return Out;
}

uint64_t pick(std::mt19937_64 &Rng, uint64_t Bound) {
  return Bound ? Rng() % Bound : 0;
}

/// One structure-aware mutation of \p Base: choose a collected span, then
/// one of four tree-shaped edits. Returns the mutant and a description.
std::vector<uint8_t> mutate(const std::vector<uint8_t> &Base,
                            const std::vector<serialize::PrintSpan> &Spans,
                            std::mt19937_64 &Rng, std::string &Desc) {
  std::vector<uint8_t> M = Base;
  const serialize::PrintSpan &S = Spans[pick(Rng, Spans.size())];
  size_t Lo = static_cast<size_t>(S.Lo), Hi = static_cast<size_t>(S.Hi);
  switch (pick(Rng, 4)) {
  case 0: { // perturb one byte inside the subtree
    size_t At = Lo + pick(Rng, Hi - Lo);
    uint8_t Bit = static_cast<uint8_t>(1u << pick(Rng, 8));
    M[At] = static_cast<uint8_t>(M[At] ^ Bit);
    Desc = "perturb @" + std::to_string(At);
    break;
  }
  case 1: { // splice the subtree out
    M.erase(M.begin() + static_cast<std::ptrdiff_t>(Lo),
            M.begin() + static_cast<std::ptrdiff_t>(Hi));
    Desc = "splice-out [" + std::to_string(Lo) + "," + std::to_string(Hi) +
           ")";
    break;
  }
  case 2: { // duplicate the subtree right after itself
    std::vector<uint8_t> Copy(Base.begin() + static_cast<std::ptrdiff_t>(Lo),
                              Base.begin() + static_cast<std::ptrdiff_t>(Hi));
    M.insert(M.begin() + static_cast<std::ptrdiff_t>(Hi), Copy.begin(),
             Copy.end());
    Desc = "duplicate [" + std::to_string(Lo) + "," + std::to_string(Hi) +
           ")";
    break;
  }
  default: { // truncate inside the subtree
    size_t At = Lo + pick(Rng, Hi - Lo);
    M.resize(At);
    Desc = "truncate @" + std::to_string(At);
    break;
  }
  }
  return M;
}

void writeRepro(const Options &O, const Corpus &C, uint64_t Iter,
                const std::vector<uint8_t> &Mutant, const std::string &Why) {
  std::string Path = O.ReproDir + "/fuzz_repro_" + C.Name + "_" +
                     std::to_string(Iter) + ".bin";
  std::ofstream Out(Path, std::ios::binary);
  Out.write(reinterpret_cast<const char *>(Mutant.data()),
            static_cast<std::streamsize>(Mutant.size()));
  std::fprintf(stderr,
               "FAIL corpus=%s iter=%" PRIu64 " seed=%" PRIu64 ": %s\n"
               "  repro: %s (%zu bytes)\n",
               C.Name.c_str(), Iter, O.Seed, Why.c_str(), Path.c_str(),
               Mutant.size());
}

serialize::PrintOptions fillOpts(const std::vector<uint8_t> &Background) {
  serialize::PrintOptions Opts;
  Opts.Gaps = serialize::GapPolicy::FillFromBackground;
  Opts.Background = ByteSpan::of(Background);
  return Opts;
}

/// Fuzz one corpus. Returns false (after writing a repro) on any
/// unexplained outcome: an "internal:" reject, a print failure on an
/// accepted mutant, or an accepted mutant whose re-print diverges.
bool fuzzCorpus(const Options &O, const Corpus &C, Stats &Total) {
  auto Load = formats::loadFormatGrammar(C.Format);
  if (!Load) {
    std::fprintf(stderr, "FAIL %s: grammar: %s\n", C.Name.c_str(),
                 Load.message().c_str());
    return false;
  }
  BlackboxRegistry BB = formats::standardBlackboxes();
  // Default engine options, default MaxDepth: grammar recursion runs on
  // engine-managed frames (loop-flattened or on the explicit work
  // stack), so deep mutants — a duplicated PDF subtree can double the
  // file — hit the clean depth-limit reject, never a stack overflow,
  // even under ASan's fat frames.
  Interp I(Load->G, &BB, InterpOptions{});
  // The salvage twin: same grammar, same mutants, RecoveryPolicy::
  // Salvage. Damage the strict engine rejects may come back as a tree
  // with hole leaves — which must then reprint the mutant byte-exact,
  // holes included.
  InterpOptions SalvageOpts;
  SalvageOpts.Recovery = RecoveryPolicy::Salvage;
  Interp SI(Load->G, &BB, SalvageOpts);

  // Pristine pass: parse and span-collecting print must be byte-exact —
  // anything else is a setup bug, not a fuzzing discovery.
  auto Pristine = I.parse(ByteSpan::of(C.Bytes));
  if (!Pristine) {
    std::fprintf(stderr, "FAIL %s: pristine corpus rejected: %s\n",
                 C.Name.c_str(), Pristine.message().c_str());
    return false;
  }
  serialize::PrintOptions SpanOpts = fillOpts(C.Bytes);
  SpanOpts.CollectSpans = true;
  auto PristinePrint = serialize::printTree(**Pristine, Load->G, &BB, SpanOpts);
  if (!PristinePrint || PristinePrint->Bytes != C.Bytes ||
      PristinePrint->Spans.empty()) {
    std::fprintf(stderr, "FAIL %s: pristine print not exact: %s\n",
                 C.Name.c_str(),
                 PristinePrint ? "byte mismatch"
                               : PristinePrint.message().c_str());
    return false;
  }
  const std::vector<serialize::PrintSpan> Spans =
      std::move(PristinePrint->Spans);

  // Shared print obligation for anything an engine accepted: exact
  // reprint, or — blackbox corpora only — the canonicalization escape.
  // A mutant stream that decodes but re-encodes to a different-length
  // canonical stream trips the inverse's window check (the serializer
  // refusing to forge bytes it cannot reproduce); a same-length
  // re-encode must at least be its own fixpoint — it re-parses, and
  // printing THAT parse reproduces it byte-for-byte.
  enum class PrintCheck { Exact, Canonical, Broken };
  std::string PrintWhy;
  auto checkPrint = [&](Interp &Eng, const TreePtr &Tree,
                        const std::vector<uint8_t> &Mutant) {
    auto P = serialize::printTree(*Tree, Load->G, &BB, fillOpts(Mutant));
    if (!P) {
      if (C.Blackbox &&
          P.message().find("blackbox inverse") != std::string::npos)
        return PrintCheck::Canonical;
      PrintWhy = "accepted but print failed: " + P.message();
      return PrintCheck::Broken;
    }
    if (P->Bytes == Mutant)
      return PrintCheck::Exact;
    if (C.Blackbox) {
      auto R2 = Eng.parse(ByteSpan::of(P->Bytes));
      if (R2) {
        auto P2 = serialize::printTree(**R2, Load->G, &BB,
                                       fillOpts(P->Bytes));
        if (P2 && P2->Bytes == P->Bytes)
          return PrintCheck::Canonical;
      }
    }
    PrintWhy = "accepted but print(parse(m)) != m";
    return PrintCheck::Broken;
  };

  // Every corpus gets its own deterministic stream: --format replays the
  // exact mutants the all-corpora run produced for that corpus.
  std::mt19937_64 Rng(O.Seed ^ std::hash<std::string>{}(C.Name));
  Stats S;
  for (uint64_t Iter = 0; Iter < O.Iterations; ++Iter) {
    std::string Desc;
    std::vector<uint8_t> Mutant = mutate(C.Bytes, Spans, Rng, Desc);

    auto R = I.parse(ByteSpan::of(Mutant));
    if (!R) {
      // A reject is the healthy outcome — unless the message says the
      // ENGINE broke ("internal:" marks interpreter invariant failures).
      if (R.message().rfind("internal:", 0) == 0) {
        writeRepro(O, C, Iter, Mutant, Desc + ": internal error: " +
                                           R.message());
        ++S.Failures;
      } else {
        ++S.Rejected;
      }
    } else {
      ++S.Accepted;
      switch (checkPrint(I, *R, Mutant)) {
      case PrintCheck::Exact:
        ++S.AcceptedExact;
        break;
      case PrintCheck::Canonical:
        ++S.Canonicalized;
        break;
      case PrintCheck::Broken:
        writeRepro(O, C, Iter, Mutant, Desc + ": " + PrintWhy);
        ++S.Failures;
        break;
      }
    }

    // The salvage pass over the SAME mutant: Salvage may only widen
    // acceptance (fencing damage into holes), and everything it accepts
    // owes the same reprint obligation — hole leaves alias the damaged
    // bytes, so they must come back out verbatim.
    auto RS = SI.parse(ByteSpan::of(Mutant));
    if (!RS) {
      if (RS.message().rfind("internal:", 0) == 0) {
        writeRepro(O, C, Iter, Mutant,
                   Desc + ": salvage internal error: " + RS.message());
        ++S.Failures;
      } else {
        ++S.SalvageRejected;
      }
      continue;
    }
    if (SI.stats().ParseVerdict == Verdict::Salvage)
      ++S.SalvageHoled;
    else
      ++S.SalvageAccepted;
    if (checkPrint(SI, *RS, Mutant) == PrintCheck::Broken) {
      writeRepro(O, C, Iter, Mutant, Desc + ": salvage " + PrintWhy);
      ++S.Failures;
    }
  }

  std::printf("%-12s iters=%" PRIu64 " accepted=%" PRIu64 " (exact=%" PRIu64
              " canonicalized=%" PRIu64 ") rejected=%" PRIu64
              " salvage=[accept=%" PRIu64 " holed=%" PRIu64
              " reject=%" PRIu64 "] failures=%" PRIu64 "\n",
              C.Name.c_str(), O.Iterations, S.Accepted, S.AcceptedExact,
              S.Canonicalized, S.Rejected, S.SalvageAccepted, S.SalvageHoled,
              S.SalvageRejected, S.Failures);
  Total.Accepted += S.Accepted;
  Total.AcceptedExact += S.AcceptedExact;
  Total.Canonicalized += S.Canonicalized;
  Total.Rejected += S.Rejected;
  Total.SalvageAccepted += S.SalvageAccepted;
  Total.SalvageHoled += S.SalvageHoled;
  Total.SalvageRejected += S.SalvageRejected;
  Total.Failures += S.Failures;
  return S.Failures == 0;
}

} // namespace

int main(int argc, char **argv) {
  Options O;
  for (int A = 1; A < argc; ++A) {
    std::string Arg = argv[A];
    auto Next = [&]() -> const char * {
      return A + 1 < argc ? argv[++A] : nullptr;
    };
    if (Arg == "--iterations") {
      if (const char *V = Next())
        O.Iterations = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--seed") {
      if (const char *V = Next())
        O.Seed = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--format") {
      if (const char *V = Next())
        O.OnlyFormat = V;
    } else if (Arg == "--repro-dir") {
      if (const char *V = Next())
        O.ReproDir = V;
    } else {
      std::fprintf(stderr,
                   "usage: fuzz_roundtrip [--iterations N] [--seed N]\n"
                   "                      [--format NAME] [--repro-dir DIR]\n");
      return 2;
    }
  }

  bool Ok = true;
  Stats Total;
  size_t Ran = 0;
  for (const Corpus &C : buildCorpora()) {
    if (!O.OnlyFormat.empty() && C.Name != O.OnlyFormat)
      continue;
    ++Ran;
    Ok = fuzzCorpus(O, C, Total) && Ok;
  }
  if (!Ran) {
    std::fprintf(stderr, "unknown --format '%s'\n", O.OnlyFormat.c_str());
    return 2;
  }
  std::printf("total: accepted=%" PRIu64 " (exact=%" PRIu64
              " canonicalized=%" PRIu64 ") rejected=%" PRIu64
              " salvage=[accept=%" PRIu64 " holed=%" PRIu64
              " reject=%" PRIu64 "] failures=%" PRIu64 "\n",
              Total.Accepted, Total.AcceptedExact, Total.Canonicalized,
              Total.Rejected, Total.SalvageAccepted, Total.SalvageHoled,
              Total.SalvageRejected, Total.Failures);
  return Ok ? 0 : 1;
}
