//===- tests/codegen_test.cpp - C++ parser generator tests ----------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 7 parser generator: emitted code is checked structurally
/// (one function per nonterminal, no library dependencies) and — where a
/// host compiler is available — compiled and executed against the same
/// inputs the engine accepts/rejects.
///
//===----------------------------------------------------------------------===//

#include "codegen/CppEmitter.h"

#include "CodegenTestHarness.h"
#include "analysis/AttributeCheck.h"
#include "formats/Elf.h"
#include "runtime/Interp.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <gtest/gtest.h>
#include <string>
#include <utility>
#include <vector>

using namespace ipg;
using testutil::hostCompilerAvailable;

namespace {

Grammar load(const char *Src) {
  auto R = loadGrammar(Src);
  EXPECT_TRUE(R) << R.message();
  if (!R)
    std::abort();
  return std::move(R->G);
}

/// Writes the generated parser + a driver main, compiles, and runs it on
/// \p Input; returns the executable's exit code (0 = accepted) or -1 on
/// infrastructure failure.
int compileAndRun(const std::string &Generated,
                  const std::vector<uint8_t> &Input,
                  const std::string &ExtraMain, const std::string &Tag) {
  std::string Source =
      Generated +
      "\n#include <cstdio>\n#include <fstream>\n"
      "int main(int argc, char **argv) {\n"
      "  if (argc < 2) return 3;\n"
      "  std::ifstream In(argv[1], std::ios::binary);\n"
      "  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),"
      " std::istreambuf_iterator<char>());\n"
      "  gen::NodePtr Root;\n"
      "  if (!gen::parse(Bytes.data(), Bytes.size(), Root)) return 1;\n" +
      ExtraMain + "  return 0;\n}\n";
  std::string Exe = testutil::compileParserSource(Source, Tag);
  if (Exe.empty())
    return -1;
  return testutil::runChild(Exe, Tag, Input);
}

} // namespace

TEST(CodegenTest, EmitsOneFunctionPerRule) {
  Grammar G = load(R"(
    S -> A[0, 2] B[EOI - 2, EOI] ;
    A -> "aa"[0, 2] ;
    B -> "bb"[0, 2] ;
  )");
  auto Code = emitCppParser(G, "gen");
  ASSERT_TRUE(Code) << Code.message();
  EXPECT_NE(Code->find("parseRule_0"), std::string::npos);
  EXPECT_NE(Code->find("parseRule_1"), std::string::npos);
  EXPECT_NE(Code->find("parseRule_2"), std::string::npos);
  EXPECT_NE(Code->find("namespace gen"), std::string::npos);
  EXPECT_NE(Code->find("bool parse(const uint8_t *Data"), std::string::npos);
  // Standalone: no includes of this library.
  EXPECT_EQ(Code->find("ipg/"), std::string::npos);
  EXPECT_EQ(Code->find("runtime/Interp.h"), std::string::npos);
}

TEST(CodegenTest, EmitsMemoizationForGlobalRulesOnly) {
  Grammar G = load(R"(
    S -> A[0, EOI] ;
    A -> L[0, EOI] where { L -> raw ; } ;
  )");
  auto Code = emitCppParser(G, "gen");
  ASSERT_TRUE(Code) << Code.message();
  // Global rules memoize; the local (where-clause) rule must not — its
  // meaning depends on the enclosing frame, as in the interpreter.
  EXPECT_NE(Code->find("C.memoFind("), std::string::npos);
  RuleId Local = InvalidRuleId;
  for (size_t I = 0; I < G.numRules(); ++I)
    if (G.rule(static_cast<RuleId>(I)).IsLocal)
      Local = static_cast<RuleId>(I);
  ASSERT_NE(Local, InvalidRuleId);
  EXPECT_EQ(Code->find("C.memoFind(" + std::to_string(Local) + "u"),
            std::string::npos);

  CppEmitterOptions Off;
  Off.Engine.UseMemo = false;
  auto Plain = emitCppParser(G, "gen", Off);
  ASSERT_TRUE(Plain) << Plain.message();
  EXPECT_EQ(Plain->find("C.memoFind("), std::string::npos);
}

TEST(CodegenTest, BlackboxGrammarsCompileAndUseTheRegistrationHook) {
  // Blackbox terms now emit calls into the ipg_rt hook instead of being
  // rejected; without a host compiler only the structure is checked.
  Grammar G = load(R"(
    blackbox bb ;
    S -> bb[0, EOI] {v = bb.val} ;
  )");
  auto Code = emitCppParser(G, "gen");
  ASSERT_TRUE(Code) << Code.message();
  EXPECT_NE(Code->find("callBlackbox"), std::string::npos);
  EXPECT_NE(Code->find("registerBlackbox"), std::string::npos);

  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C++ compiler";

  // A driver-registered blackbox resolves: it consumes 2 bytes, reports
  // value 7, and decodes output bytes that become a leaf child. The
  // attribute plumbing (v = bb.val) must see the reported value.
  std::string Bridge =
      "static bool testBb(void *, const unsigned char *, size_t Len,\n"
      "                   ipg_rt::BlackboxOut &Out) {\n"
      "  static const unsigned char Decoded[3] = {9, 9, 9};\n"
      "  if (Len < 2) return false;\n"
      "  Out.Value = 7; Out.End = 2;\n"
      "  Out.Output = Decoded; Out.OutputLen = 3;\n"
      "  return true;\n"
      "}\n";
  std::string Source =
      *Code + Bridge +
      "\n#include <cstdio>\n#include <fstream>\n"
      "int main(int argc, char **argv) {\n"
      "  if (argc < 2) return 3;\n"
      "  std::ifstream In(argv[1], std::ios::binary);\n"
      "  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),"
      " std::istreambuf_iterator<char>());\n"
      "  gen::Parser P;\n"
      "  bool Registered = argc > 2 && argv[2][0] == 'r';\n"
      "  if (Registered && !P.registerBlackbox(\"bb\", testBb)) return 4;\n"
      "  if (P.registerBlackbox(\"no_such_blackbox\", testBb)) return 5;\n"
      "  // Grammar symbols that are not declared blackboxes (the rule\n"
      "  // name, an attribute) must be rejected, not silently bound.\n"
      "  if (P.registerBlackbox(\"S\", testBb)) return 5;\n"
      "  if (P.registerBlackbox(\"v\", testBb)) return 5;\n"
      "  gen::NodePtr Root = nullptr;\n"
      "  if (!P.parse(Bytes.data(), Bytes.size(), Root)) return 1;\n"
      "  long long V = 0;\n"
      "  if (!Root->get(\"v\", V) || V != 7) return 6;\n"
      "  std::string D = gen::dumpTree(Root);\n"
      "  if (D.find(\"Node bb\") == std::string::npos) return 7;\n"
      "  if (D.find(\"Leaf off=0 len=3\") == std::string::npos) return 8;\n"
      "  return 0;\n}\n";
  std::string Exe = testutil::compileParserSource(Source, "bb_hook");
  ASSERT_FALSE(Exe.empty());
  std::vector<uint8_t> In = {1, 2, 3, 4};
  EXPECT_EQ(testutil::runChild(Exe, "bb_hook", In, "r"), 0);
  // Unregistered: the blackbox term hard-fails the parse at run time.
  EXPECT_EQ(testutil::runChild(Exe, "bb_hook", In), 1);
}

TEST(CodegenTest, CompiledParserAgreesOnToyGrammar) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C++ compiler";
  Grammar G = load(R"(
    S -> check(EOI % 3 = 0) {n = EOI / 3} A[0, n] B[n, 2 * n] C[2 * n, 3 * n] ;
    A -> "a"[0, 1] A[1, EOI] / "a"[0, 1] ;
    B -> "b"[0, 1] B[1, EOI] / "b"[0, 1] ;
    C -> "c"[0, 1] C[1, EOI] / "c"[0, 1] ;
  )");
  auto Code = emitCppParser(G, "gen");
  ASSERT_TRUE(Code) << Code.message();

  std::string Good = "aaabbbccc";
  EXPECT_EQ(compileAndRun(*Code,
                          std::vector<uint8_t>(Good.begin(), Good.end()), "",
                          "anbncn_good"),
            0);
  std::string Bad = "aaabbbbcc";
  EXPECT_EQ(compileAndRun(*Code,
                          std::vector<uint8_t>(Bad.begin(), Bad.end()), "",
                          "anbncn_bad"),
            1);
}

TEST(CodegenTest, CompiledParserComputesAttributes) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C++ compiler";
  Grammar G = load(R"(
    Int -> Int[0, EOI - 1] Digit[EOI - 1, EOI] {val = 2 * Int.val + Digit.val}
         / Digit[0, 1] {val = Digit.val} ;
    Digit -> "0"[0, 1] {val = 0} / "1"[0, 1] {val = 1} ;
  )");
  auto Code = emitCppParser(G, "gen");
  ASSERT_TRUE(Code) << Code.message();
  // The driver checks Int.val == 45 for input "101101".
  std::string Check = "  long long V = 0;\n"
                      "  if (!Root->get(\"val\", V) || V != 45) return 2;\n";
  std::string In = "101101";
  EXPECT_EQ(compileAndRun(*Code, std::vector<uint8_t>(In.begin(), In.end()),
                          Check, "binint"),
            0);
}

TEST(CodegenTest, CompiledElfParserAgreesWithEngine) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C++ compiler";
  auto R = formats::loadElfGrammar();
  ASSERT_TRUE(R) << R.message();
  auto Code = emitCppParser(R->G, "gen");
  ASSERT_TRUE(Code) << Code.message();

  formats::ElfSynthSpec Spec;
  Spec.NumSymbols = 5;
  Spec.NumDynEntries = 3;
  formats::ElfModel Model;
  auto Bytes = formats::synthesizeElf(Spec, &Model);

  // Engine accepts; generated parser must too, with the same header attrs.
  Interp I(R->G);
  ASSERT_TRUE(I.parse(ByteSpan::of(Bytes)));
  std::string Check =
      "  gen::Node *H = Root->children().empty() ? nullptr : "
      "Root->children()[0].get();\n"
      "  if (!H) return 2;\n"
      "  long long Num = 0;\n"
      "  if (!H->get(\"num\", Num) || Num != " +
      std::to_string(Model.ShNum) + ") return 2;\n";
  EXPECT_EQ(compileAndRun(*Code, Bytes, Check, "elf_good"), 0);

  auto Bad = Bytes;
  Bad[1] = 'X';
  EXPECT_FALSE(Interp(R->G).parse(ByteSpan::of(Bad)));
  EXPECT_EQ(compileAndRun(*Code, Bad, "", "elf_bad"), 1);
}
