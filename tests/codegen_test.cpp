//===- tests/codegen_test.cpp - C++ parser generator tests ----------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 7 parser generator: emitted code is checked structurally
/// (one function per nonterminal, no library dependencies) and — where a
/// host compiler is available — compiled and executed against the same
/// inputs the engine accepts/rejects.
///
//===----------------------------------------------------------------------===//

#include "codegen/CppEmitter.h"

#include "CodegenTestHarness.h"
#include "analysis/AttributeCheck.h"
#include "formats/Elf.h"
#include "runtime/Interp.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <gtest/gtest.h>
#include <string>
#include <utility>
#include <vector>

using namespace ipg;
using testutil::hostCompilerAvailable;

namespace {

Grammar load(const char *Src) {
  auto R = loadGrammar(Src);
  EXPECT_TRUE(R) << R.message();
  if (!R)
    std::abort();
  return std::move(R->G);
}

/// Writes the generated parser + a driver main, compiles, and runs it on
/// \p Input; returns the executable's exit code (0 = accepted) or -1 on
/// infrastructure failure.
int compileAndRun(const std::string &Generated,
                  const std::vector<uint8_t> &Input,
                  const std::string &ExtraMain, const std::string &Tag) {
  std::string Source =
      Generated +
      "\n#include <cstdio>\n#include <fstream>\n"
      "int main(int argc, char **argv) {\n"
      "  if (argc < 2) return 3;\n"
      "  std::ifstream In(argv[1], std::ios::binary);\n"
      "  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),"
      " std::istreambuf_iterator<char>());\n"
      "  gen::NodePtr Root;\n"
      "  if (!gen::parse(Bytes.data(), Bytes.size(), Root)) return 1;\n" +
      ExtraMain + "  return 0;\n}\n";
  std::string Exe = testutil::compileParserSource(Source, Tag);
  if (Exe.empty())
    return -1;
  return testutil::runChild(Exe, Tag, Input);
}

} // namespace

TEST(CodegenTest, EmitsOneFunctionPerRule) {
  Grammar G = load(R"(
    S -> A[0, 2] B[EOI - 2, EOI] ;
    A -> "aa"[0, 2] ;
    B -> "bb"[0, 2] ;
  )");
  auto Code = emitCppParser(G, "gen");
  ASSERT_TRUE(Code) << Code.message();
  EXPECT_NE(Code->find("parseRule_0"), std::string::npos);
  EXPECT_NE(Code->find("parseRule_1"), std::string::npos);
  EXPECT_NE(Code->find("parseRule_2"), std::string::npos);
  EXPECT_NE(Code->find("namespace gen"), std::string::npos);
  EXPECT_NE(Code->find("bool parse(const uint8_t *Data"), std::string::npos);
  // Standalone: no includes of this library.
  EXPECT_EQ(Code->find("ipg/"), std::string::npos);
  EXPECT_EQ(Code->find("runtime/Interp.h"), std::string::npos);
}

TEST(CodegenTest, RejectsBlackboxGrammars) {
  Grammar G = load(R"(
    blackbox bb ;
    S -> bb[0, EOI] ;
  )");
  auto Code = emitCppParser(G, "gen");
  ASSERT_FALSE(Code);
  EXPECT_NE(Code.message().find("blackbox"), std::string::npos);
}

TEST(CodegenTest, CompiledParserAgreesOnToyGrammar) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C++ compiler";
  Grammar G = load(R"(
    S -> check(EOI % 3 = 0) {n = EOI / 3} A[0, n] B[n, 2 * n] C[2 * n, 3 * n] ;
    A -> "a"[0, 1] A[1, EOI] / "a"[0, 1] ;
    B -> "b"[0, 1] B[1, EOI] / "b"[0, 1] ;
    C -> "c"[0, 1] C[1, EOI] / "c"[0, 1] ;
  )");
  auto Code = emitCppParser(G, "gen");
  ASSERT_TRUE(Code) << Code.message();

  std::string Good = "aaabbbccc";
  EXPECT_EQ(compileAndRun(*Code,
                          std::vector<uint8_t>(Good.begin(), Good.end()), "",
                          "anbncn_good"),
            0);
  std::string Bad = "aaabbbbcc";
  EXPECT_EQ(compileAndRun(*Code,
                          std::vector<uint8_t>(Bad.begin(), Bad.end()), "",
                          "anbncn_bad"),
            1);
}

TEST(CodegenTest, CompiledParserComputesAttributes) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C++ compiler";
  Grammar G = load(R"(
    Int -> Int[0, EOI - 1] Digit[EOI - 1, EOI] {val = 2 * Int.val + Digit.val}
         / Digit[0, 1] {val = Digit.val} ;
    Digit -> "0"[0, 1] {val = 0} / "1"[0, 1] {val = 1} ;
  )");
  auto Code = emitCppParser(G, "gen");
  ASSERT_TRUE(Code) << Code.message();
  // The driver checks Int.val == 45 for input "101101".
  std::string Check = "  long long V = 0;\n"
                      "  if (!Root->get(\"val\", V) || V != 45) return 2;\n";
  std::string In = "101101";
  EXPECT_EQ(compileAndRun(*Code, std::vector<uint8_t>(In.begin(), In.end()),
                          Check, "binint"),
            0);
}

TEST(CodegenTest, CompiledElfParserAgreesWithEngine) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C++ compiler";
  auto R = formats::loadElfGrammar();
  ASSERT_TRUE(R) << R.message();
  auto Code = emitCppParser(R->G, "gen");
  ASSERT_TRUE(Code) << Code.message();

  formats::ElfSynthSpec Spec;
  Spec.NumSymbols = 5;
  Spec.NumDynEntries = 3;
  formats::ElfModel Model;
  auto Bytes = formats::synthesizeElf(Spec, &Model);

  // Engine accepts; generated parser must too, with the same header attrs.
  Interp I(R->G);
  ASSERT_TRUE(I.parse(ByteSpan::of(Bytes)));
  std::string Check =
      "  gen::Node *H = Root->children().empty() ? nullptr : "
      "Root->children()[0].get();\n"
      "  if (!H) return 2;\n"
      "  long long Num = 0;\n"
      "  if (!H->get(\"num\", Num) || Num != " +
      std::to_string(Model.ShNum) + ") return 2;\n";
  EXPECT_EQ(compileAndRun(*Code, Bytes, Check, "elf_good"), 0);

  auto Bad = Bytes;
  Bad[1] = 'X';
  EXPECT_FALSE(Interp(R->G).parse(ByteSpan::of(Bad)));
  EXPECT_EQ(compileAndRun(*Code, Bad, "", "elf_bad"), 1);
}
