//===- tests/depth_test.cpp - depth-free execution regression tests -------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regression suite for the stack-overflow-on-deep-recursion fix: grammar
/// recursion depth must be independent of the C++ call stack in ALL
/// engines (interpreter, generated, bytecode VM). Linear self-recursive
/// rules run loop-flattened; general
/// recursion runs on the explicit act-stack machine; MaxDepth is a
/// genuine resource limit that trips as a clean hard error — at a
/// million frames, under ASan, with a 1 MiB thread stack — never as a
/// crash. Also hosts the PeakDepth interpreter-vs-generated parity
/// checks (the counter used to be hardwired to 0 for generated parsers).
///
//===----------------------------------------------------------------------===//

#include "codegen/GenEngine.h"
#include "formats/FormatRegistry.h"
#include "runtime/Engine.h"
#include "runtime/Interp.h"

#include "TreeCanonical.h"

#include <cstdint>
#include <gtest/gtest.h>
#include <string>
#include <vector>

using namespace ipg;

namespace {

/// Linear self-recursion (the PDF XNum shape): exactly one self-reference
/// behind a terminal prefix. analysis/RecShape.h classifies this
/// Flattened — both engines run it as a descend/replay loop.
const char *FlattenableGrammar = R"(
  A -> "x"[0, 1] A[1, EOI] / "x"[0, 1] ;
)";

/// Two self-references: not linear, so RecShape classifies it Step and
/// it runs on the explicit act-stack machine in both engines.
const char *MachineGrammar = R"(
  T -> "a"[0, 1] T[1, EOI] / "b"[0, 1] T[1, EOI]
     / "a"[0, 1] / "b"[0, 1] ;
)";

Grammar load(const char *Src) {
  auto R = loadGrammar(Src);
  EXPECT_TRUE(R) << R.message();
  if (!R)
    std::abort();
  return std::move(R->G);
}

bool haveGen() { return GenModule::hostCompilerAvailable(); }

std::vector<uint8_t> runOf(char C, size_t N) {
  return std::vector<uint8_t>(N, static_cast<uint8_t>(C));
}

/// 'a'/'b' mix so the machine's alternative backtracking is exercised at
/// every level, deterministically.
std::vector<uint8_t> abMix(size_t N) {
  std::vector<uint8_t> V(N);
  uint64_t X = 0x9e3779b97f4a7c15ull;
  for (size_t I = 0; I < N; ++I) {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    V[I] = (X & 1) ? 'a' : 'b';
  }
  return V;
}

} // namespace

//===----------------------------------------------------------------------===//
// Deep success: a million recursion levels parse fine when MaxDepth
// allows them — the levels live on engine-managed frames, not the C
// stack (the CI reduced-stack job runs this with `ulimit -s 1024`).
//===----------------------------------------------------------------------===//

TEST(DepthTest, FlattenedRuleParsesAMillionLevels) {
  Grammar G = load(FlattenableGrammar);
  EngineOptions Opts;
  Opts.MaxDepth = size_t{1} << 21;
  constexpr size_t N = 1'000'000;
  std::vector<uint8_t> In = runOf('x', N);

  auto E = makeEngine(EngineKind::Interp, G, nullptr, Opts);
  ASSERT_TRUE(E) << E.message();
  auto T = (*E)->parse(ByteSpan::of(In));
  ASSERT_TRUE(T) << T.message();
  // One node per level, one leaf per level; PeakDepth counts the virtual
  // recursion exactly as plain recursion would have — N committed levels
  // plus the final failed descend into the empty tail slice.
  EXPECT_EQ((*E)->stats().PeakDepth, N + 1);
  EXPECT_EQ(treeSize(**T), 2 * N);
}

TEST(DepthTest, MachineRuleParsesDeepMixedInput) {
  Grammar G = load(MachineGrammar);
  EngineOptions Opts;
  Opts.MaxDepth = size_t{1} << 18;
  constexpr size_t N = 150'000;
  std::vector<uint8_t> In = abMix(N);

  auto E = makeEngine(EngineKind::Interp, G, nullptr, Opts);
  ASSERT_TRUE(E) << E.message();
  auto T = (*E)->parse(ByteSpan::of(In));
  ASSERT_TRUE(T) << T.message();
  EXPECT_EQ((*E)->stats().PeakDepth, N + 1);
  EXPECT_EQ(treeSize(**T), 2 * N);
}

//===----------------------------------------------------------------------===//
// The bytecode VM runs the SAME three-tier strategy over the lowered IR,
// so it gets the same depth-freedom tests: a million flattened levels, a
// deep machine-tier input, and exact PeakDepth/tree parity with the
// interpreter — all in-process, no compiler needed.
//===----------------------------------------------------------------------===//

TEST(DepthTest, VmParsesAMillionLevels) {
  Grammar G = load(FlattenableGrammar);
  EngineOptions Opts;
  Opts.MaxDepth = size_t{1} << 21;
  constexpr size_t N = 1'000'000;
  std::vector<uint8_t> In = runOf('x', N);

  auto E = makeEngine(EngineKind::Vm, G, nullptr, Opts);
  ASSERT_TRUE(E) << E.message();
  auto T = (*E)->parse(ByteSpan::of(In));
  ASSERT_TRUE(T) << T.message();
  EXPECT_EQ((*E)->stats().PeakDepth, N + 1);
  EXPECT_EQ(treeSize(**T), 2 * N);
}

TEST(DepthTest, VmMatchesInterpreterAtDepth) {
  struct Case {
    const char *Tag;
    const char *Src;
    std::vector<uint8_t> In;
  };
  const Case Cases[] = {
      {"flattened", FlattenableGrammar, runOf('x', 200'000)},
      {"machine", MachineGrammar, abMix(60'000)},
  };
  for (const Case &C : Cases) {
    SCOPED_TRACE(C.Tag);
    Grammar G = load(C.Src);
    EngineOptions Opts;
    Opts.MaxDepth = size_t{1} << 19;

    auto IE = makeEngine(EngineKind::Interp, G, nullptr, Opts);
    ASSERT_TRUE(IE) << IE.message();
    auto VE = makeEngine(EngineKind::Vm, G, nullptr, Opts);
    ASSERT_TRUE(VE) << VE.message();

    auto TI = (*IE)->parse(ByteSpan::of(C.In));
    ASSERT_TRUE(TI) << TI.message();
    auto TV = (*VE)->parse(ByteSpan::of(C.In));
    ASSERT_TRUE(TV) << TV.message();

    EXPECT_TRUE(testutil::treesEqual(TI->get(), G, TV->get(), G))
        << C.Tag << ": deep trees diverge between interpreter and VM";
    EXPECT_EQ((*IE)->stats().PeakDepth, (*VE)->stats().PeakDepth);
    EXPECT_EQ((*IE)->stats().PeakDepth, C.In.size() + 1);
    EXPECT_EQ((*IE)->stats().NodesCreated, (*VE)->stats().NodesCreated);
    EXPECT_EQ((*IE)->stats().TermsExecuted, (*VE)->stats().TermsExecuted);
    EXPECT_EQ((*IE)->stats().MemoHits, (*VE)->stats().MemoHits);
    EXPECT_EQ((*IE)->stats().MemoMisses, (*VE)->stats().MemoMisses);

    // The limit trips identically — hard, with the same diagnostic.
    EngineOptions Tight = Opts;
    Tight.MaxDepth = C.In.size() / 2;
    auto IE2 = makeEngine(EngineKind::Interp, G, nullptr, Tight);
    auto VE2 = makeEngine(EngineKind::Vm, G, nullptr, Tight);
    ASSERT_TRUE(IE2);
    ASSERT_TRUE(VE2) << VE2.message();
    auto FI = (*IE2)->parse(ByteSpan::of(C.In));
    auto FV = (*VE2)->parse(ByteSpan::of(C.In));
    ASSERT_FALSE(FI);
    ASSERT_FALSE(FV);
    EXPECT_EQ(FI.message(), FV.message());
    EXPECT_NE(FV.message().find("depth"), std::string::npos)
        << FV.message();
  }
}

//===----------------------------------------------------------------------===//
// The depth limit as a resource cap: at 10^6 frames the parse must stop
// with a clean hard error that names the limit — not overflow the stack.
//===----------------------------------------------------------------------===//

TEST(DepthTest, MaxDepthTripsCleanlyAtAMillionFrames) {
  Grammar G = load(FlattenableGrammar);
  EngineOptions Opts;
  Opts.MaxDepth = 1'000'000;
  std::vector<uint8_t> In = runOf('x', 1'200'000);

  auto E = makeEngine(EngineKind::Interp, G, nullptr, Opts);
  ASSERT_TRUE(E) << E.message();
  auto T = (*E)->parse(ByteSpan::of(In));
  ASSERT_FALSE(T) << "a 1.2M-level input must trip the 10^6 depth limit";
  EXPECT_NE(T.message().find("depth"), std::string::npos)
      << "the failure must name the depth limit, got: " << T.message();
  // A hard failure: no backtracking into the shorter alternative, which
  // would otherwise accept a prefix.
}

TEST(DepthTest, MachineMaxDepthTripsCleanly) {
  Grammar G = load(MachineGrammar);
  EngineOptions Opts;
  Opts.MaxDepth = 10'000;
  std::vector<uint8_t> In = abMix(50'000);

  auto E = makeEngine(EngineKind::Interp, G, nullptr, Opts);
  ASSERT_TRUE(E) << E.message();
  auto T = (*E)->parse(ByteSpan::of(In));
  ASSERT_FALSE(T);
  EXPECT_NE(T.message().find("depth"), std::string::npos) << T.message();
}

//===----------------------------------------------------------------------===//
// Generated engine: same depth-freedom, same limit semantics, and
// PeakDepth parity with the interpreter (the ipg_mod_stats ABI used to
// leave the counter at 0 for generated parsers).
//===----------------------------------------------------------------------===//

TEST(DepthTest, GeneratedEngineMatchesInterpreterAtDepth) {
  if (!haveGen())
    GTEST_SKIP() << "no host C++ compiler";

  struct Case {
    const char *Tag;
    const char *Src;
    std::vector<uint8_t> In;
  };
  const Case Cases[] = {
      {"flattened", FlattenableGrammar, runOf('x', 200'000)},
      {"machine", MachineGrammar, abMix(60'000)},
  };
  for (const Case &C : Cases) {
    SCOPED_TRACE(C.Tag);
    Grammar G = load(C.Src);
    EngineOptions Opts;
    Opts.MaxDepth = size_t{1} << 19;

    auto IE = makeEngine(EngineKind::Interp, G, nullptr, Opts);
    ASSERT_TRUE(IE) << IE.message();
    auto GE = makeEngine(EngineKind::Generated, G, nullptr, Opts);
    ASSERT_TRUE(GE) << GE.message();

    auto TI = (*IE)->parse(ByteSpan::of(C.In));
    ASSERT_TRUE(TI) << TI.message();
    auto TG = (*GE)->parse(ByteSpan::of(C.In));
    ASSERT_TRUE(TG) << TG.message();

    EXPECT_TRUE(testutil::treesEqual(TI->get(), G, TG->get(), G))
        << C.Tag << ": deep trees diverge between the engines";
    EXPECT_EQ((*IE)->stats().PeakDepth, (*GE)->stats().PeakDepth);
    EXPECT_EQ((*IE)->stats().PeakDepth, C.In.size() + 1);
    EXPECT_EQ((*IE)->stats().NodesCreated, (*GE)->stats().NodesCreated);
    EXPECT_EQ((*IE)->stats().MemoHits, (*GE)->stats().MemoHits);
    EXPECT_EQ((*IE)->stats().MemoMisses, (*GE)->stats().MemoMisses);

    // The limit trips identically: cleanly, and without accepting a
    // shorter parse.
    EngineOptions Tight = Opts;
    Tight.MaxDepth = C.In.size() / 2;
    auto IE2 = makeEngine(EngineKind::Interp, G, nullptr, Tight);
    auto GE2 = makeEngine(EngineKind::Generated, G, nullptr, Tight);
    ASSERT_TRUE(IE2);
    ASSERT_TRUE(GE2) << GE2.message();
    EXPECT_FALSE((*IE2)->parse(ByteSpan::of(C.In)));
    EXPECT_FALSE((*GE2)->parse(ByteSpan::of(C.In)));
  }
}

//===----------------------------------------------------------------------===//
// PeakDepth parity on a real format corpus (interp vs generated): the
// satellite bugfix for stats().PeakDepth == 0 on generated engines.
//===----------------------------------------------------------------------===//

TEST(DepthTest, PeakDepthParityOnFormatCorpus) {
  if (!haveGen())
    GTEST_SKIP() << "no host C++ compiler";
  auto IE = formats::makeFormatEngine("dns", EngineKind::Interp);
  ASSERT_TRUE(IE) << IE.message();
  auto GE = formats::makeFormatEngine("dns", EngineKind::Generated);
  ASSERT_TRUE(GE) << GE.message();
  std::vector<uint8_t> In = formats::sampleInput("dns", 2);
  ASSERT_TRUE((*IE)->parse(ByteSpan::of(In)));
  ASSERT_TRUE((*GE)->parse(ByteSpan::of(In)));
  EXPECT_GT((*GE)->stats().PeakDepth, 0u)
      << "generated engines must report PeakDepth, not 0";
  EXPECT_EQ((*IE)->stats().PeakDepth, (*GE)->stats().PeakDepth);
}
