//===- tests/formats_test.cpp - format grammar round-trip tests -----------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// For each of the seven evaluated formats: synthesize a file, parse it
/// with the IPG engine, extract the structure back and compare against the
/// synthesizer's ground-truth model; plus corruption tests and the
/// termination/attribute checks the paper reports for all its grammars.
///
//===----------------------------------------------------------------------===//

#include "analysis/Termination.h"
#include "formats/Dns.h"
#include "formats/Elf.h"
#include "formats/FormatRegistry.h"
#include "formats/Gif.h"
#include "formats/Ipv4Udp.h"
#include "formats/MiniZlib.h"
#include "formats/Pdf.h"
#include "formats/Pe.h"
#include "formats/Zip.h"
#include "runtime/Interp.h"

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <optional>
#include <string>
#include <utility>
#include <vector>

using namespace ipg;
using namespace ipg::formats;

//===----------------------------------------------------------------------===//
// MiniZlib codec.
//===----------------------------------------------------------------------===//

TEST(MiniZlibTest, RoundTripsVariedContent) {
  std::vector<std::vector<uint8_t>> Cases;
  Cases.push_back({});
  Cases.push_back({42});
  Cases.push_back(std::vector<uint8_t>(1000, 'A')); // pure run
  std::vector<uint8_t> Mixed;
  for (int I = 0; I < 4096; ++I)
    Mixed.push_back(static_cast<uint8_t>(I % 11 == 0 ? I * 37 : 'x'));
  Cases.push_back(Mixed);

  for (const auto &Data : Cases) {
    auto Compressed = miniZlibCompress(Data);
    size_t Consumed = 0;
    auto Out = miniZlibDecompress(ByteSpan::of(Compressed), Consumed);
    ASSERT_TRUE(Out.has_value());
    EXPECT_EQ(*Out, Data);
    EXPECT_EQ(Consumed, Compressed.size());
  }
}

TEST(MiniZlibTest, CompressesRuns) {
  std::vector<uint8_t> Runs(4096, 'A');
  auto Compressed = miniZlibCompress(Runs);
  EXPECT_LT(Compressed.size(), Runs.size() / 4);
}

TEST(MiniZlibTest, RejectsCorruptStreams) {
  std::vector<uint8_t> Data(128, 'q');
  auto C = miniZlibCompress(Data);
  size_t Consumed;
  // Bad magic.
  auto Bad = C;
  Bad[0] = 'X';
  EXPECT_FALSE(miniZlibDecompress(ByteSpan::of(Bad), Consumed));
  // Truncated.
  auto Trunc = C;
  Trunc.resize(Trunc.size() / 2);
  EXPECT_FALSE(miniZlibDecompress(ByteSpan::of(Trunc), Consumed));
  // Wrong declared size.
  auto WrongSize = C;
  WrongSize[3] ^= 0xff;
  EXPECT_FALSE(miniZlibDecompress(ByteSpan::of(WrongSize), Consumed));
}

//===----------------------------------------------------------------------===//
// All grammars load, attribute-check, and pass termination checking.
//===----------------------------------------------------------------------===//

class AllFormats : public ::testing::TestWithParam<FormatInfo> {};

TEST_P(AllFormats, LoadsAndChecks) {
  auto R = loadGrammar(GetParam().GrammarText);
  ASSERT_TRUE(R) << GetParam().Name << ": " << R.message();
}

TEST_P(AllFormats, PassesTerminationChecking) {
  auto R = loadGrammar(GetParam().GrammarText);
  ASSERT_TRUE(R) << R.message();
  TerminationReport Rep = checkTermination(R->G);
  EXPECT_TRUE(Rep.Terminates)
      << GetParam().Name << ": "
      << (Rep.FailingCycles.empty() ? "" : Rep.FailingCycles[0]);
  // Section 7: "these grammars had no more than five elementary cycles".
  EXPECT_LE(Rep.NumCycles, 5u) << GetParam().Name;
}

INSTANTIATE_TEST_SUITE_P(
    Formats, AllFormats, ::testing::ValuesIn(allFormats()),
    [](const ::testing::TestParamInfo<FormatInfo> &Info) {
      return Info.param.Name;
    });

//===----------------------------------------------------------------------===//
// ELF.
//===----------------------------------------------------------------------===//

namespace {
class ElfFixture : public ::testing::Test {
protected:
  void SetUp() override {
    auto R = loadElfGrammar();
    ASSERT_TRUE(R) << R.message();
    G.emplace(std::move(R->G));
  }
  std::optional<Grammar> G;
};
} // namespace

TEST_F(ElfFixture, RoundTrip) {
  ElfSynthSpec Spec;
  Spec.TextSize = 256;
  Spec.NumDynEntries = 12;
  Spec.NumSymbols = 20;
  ElfModel Model;
  auto Bytes = synthesizeElf(Spec, &Model);

  Interp I(*G);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractElf(*Tree, *G);
  ASSERT_TRUE(P) << P.message();

  EXPECT_EQ(P->ShOff, Model.ShOff);
  EXPECT_EQ(P->ShNum, Model.ShNum);
  ASSERT_EQ(P->Sections.size(), Model.Sections.size());
  for (size_t K = 0; K < Model.Sections.size(); ++K) {
    EXPECT_EQ(P->Sections[K].Type, Model.Sections[K].Type);
    EXPECT_EQ(P->Sections[K].Offset, Model.Sections[K].Offset);
    EXPECT_EQ(P->Sections[K].Size, Model.Sections[K].Size);
  }
  EXPECT_EQ(P->DynTags, Model.DynTags);
  EXPECT_EQ(P->SymValues, Model.SymValues);
}

TEST_F(ElfFixture, RejectsBadMagic) {
  auto Bytes = synthesizeElf(ElfSynthSpec());
  Bytes[1] = 'X';
  Interp I(*G);
  EXPECT_FALSE(I.parse(ByteSpan::of(Bytes)));
}

TEST_F(ElfFixture, RejectsTruncatedSectionTable) {
  auto Bytes = synthesizeElf(ElfSynthSpec());
  Bytes.resize(Bytes.size() - 32); // cut into the last section header
  Interp I(*G);
  EXPECT_FALSE(I.parse(ByteSpan::of(Bytes)));
}

TEST_F(ElfFixture, RejectsSectionOffsetPastEof) {
  ElfModel Model;
  auto Bytes = synthesizeElf(ElfSynthSpec(), &Model);
  // Corrupt section 1's sh_offset (at ShOff + 64 + 24) to point past EOF.
  ByteWriter W;
  W.raw(Bytes);
  W.patchUnsigned(Model.ShOff + 64 + 24, Bytes.size() + 1000, 8,
                  Endian::Little);
  auto Corrupt = W.take();
  Interp I(*G);
  EXPECT_FALSE(I.parse(ByteSpan::of(Corrupt)));
}

class ElfSweep : public ::testing::TestWithParam<int> {};

TEST_P(ElfSweep, ScalesWithSymbolCount) {
  auto R = loadElfGrammar();
  ASSERT_TRUE(R) << R.message();
  ElfSynthSpec Spec;
  Spec.NumSymbols = static_cast<size_t>(GetParam());
  Spec.NumDynEntries = static_cast<size_t>(GetParam()) / 2 + 1;
  ElfModel Model;
  auto Bytes = synthesizeElf(Spec, &Model);
  Interp I(R->G);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractElf(*Tree, R->G);
  ASSERT_TRUE(P) << P.message();
  EXPECT_EQ(P->SymValues.size(), Spec.NumSymbols);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ElfSweep,
                         ::testing::Values(0, 1, 7, 64, 256));

//===----------------------------------------------------------------------===//
// ZIP.
//===----------------------------------------------------------------------===//

namespace {
class ZipFixture : public ::testing::Test {
protected:
  void SetUp() override {
    auto R = loadZipGrammar();
    ASSERT_TRUE(R) << R.message();
    G.emplace(std::move(R->G));
    BB = standardBlackboxes();
  }
  std::optional<Grammar> G;
  BlackboxRegistry BB;
};
} // namespace

TEST_F(ZipFixture, StoredRoundTrip) {
  auto Bytes = synthesizeZip(zipArchiveOfCopies(3, 100, /*Compress=*/false));
  Interp I(*G, &BB);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractZip(*Tree, *G);
  ASSERT_TRUE(P) << P.message();
  EXPECT_EQ(P->EntryCount, 3);
  ASSERT_EQ(P->Entries.size(), 3u);
  for (const auto &E : P->Entries) {
    EXPECT_EQ(E.Method, 0);
    EXPECT_EQ(E.UncompressedSize, 100u);
  }
}

TEST_F(ZipFixture, CompressedEntriesDecodeThroughBlackbox) {
  ZipSynthSpec Spec = zipArchiveOfCopies(2, 300, /*Compress=*/true);
  auto Bytes = synthesizeZip(Spec);
  Interp I(*G, &BB);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractZip(*Tree, *G);
  ASSERT_TRUE(P) << P.message();
  ASSERT_EQ(P->Entries.size(), 2u);
  for (const auto &E : P->Entries) {
    EXPECT_EQ(E.Method, 8);
    EXPECT_EQ(E.Data, Spec.Entries[0].Data);
  }
}

TEST_F(ZipFixture, MixedArchive) {
  ZipSynthSpec Spec;
  Spec.Entries.push_back({"a.txt", std::vector<uint8_t>(50, 'a'), false});
  Spec.Entries.push_back({"b.txt", std::vector<uint8_t>(900, 'b'), true});
  Spec.Entries.push_back({"c.txt", {}, false}); // empty file
  auto Bytes = synthesizeZip(Spec);
  Interp I(*G, &BB);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractZip(*Tree, *G);
  ASSERT_TRUE(P) << P.message();
  ASSERT_EQ(P->Entries.size(), 3u);
  EXPECT_EQ(P->Entries[1].Data, Spec.Entries[1].Data);
}

TEST_F(ZipFixture, RejectsWrongEntryCount) {
  auto Bytes = synthesizeZip(zipArchiveOfCopies(3, 40, false));
  // EOCD total-entry field is 10 bytes into the trailing 22-byte record.
  ByteWriter W;
  W.raw(Bytes);
  W.patchUnsigned(Bytes.size() - 22 + 10, 4, 2, Endian::Little);
  auto Corrupt = W.take();
  Interp I(*G, &BB);
  EXPECT_FALSE(I.parse(ByteSpan::of(Corrupt)));
}

TEST_F(ZipFixture, RejectsCorruptCompressedStream) {
  ZipSynthSpec Spec = zipArchiveOfCopies(1, 200, true);
  auto Bytes = synthesizeZip(Spec);
  // Flip a byte inside the first entry's compressed payload (after the
  // 30-byte local header + name).
  Bytes[30 + Spec.Entries[0].Name.size() + 3] ^= 0xff;
  Interp I(*G, &BB);
  EXPECT_FALSE(I.parse(ByteSpan::of(Bytes)));
}

TEST_F(ZipFixture, RejectsMissingEocd) {
  auto Bytes = synthesizeZip(zipArchiveOfCopies(1, 40, false));
  Bytes.resize(Bytes.size() - 22);
  Interp I(*G, &BB);
  EXPECT_FALSE(I.parse(ByteSpan::of(Bytes)));
}

//===----------------------------------------------------------------------===//
// GIF.
//===----------------------------------------------------------------------===//

namespace {
class GifFixture : public ::testing::Test {
protected:
  void SetUp() override {
    auto R = loadGifGrammar();
    ASSERT_TRUE(R) << R.message();
    G.emplace(std::move(R->G));
  }
  std::optional<Grammar> G;
};
} // namespace

TEST_F(GifFixture, RoundTrip) {
  GifSynthSpec Spec;
  Spec.NumExtensions = 3;
  Spec.NumImages = 2;
  GifModel Model;
  auto Bytes = synthesizeGif(Spec, &Model);
  Interp I(*G);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractGif(*Tree, *G);
  ASSERT_TRUE(P) << P.message();
  EXPECT_EQ(P->Width, Spec.Width);
  EXPECT_EQ(P->Height, Spec.Height);
  EXPECT_EQ(P->HasGct, Model.HasGct);
  EXPECT_EQ(P->GctBytes, Model.GctBytes);
  EXPECT_EQ(P->NumBlocks, Model.NumBlocks);
  EXPECT_EQ(P->NumImages, Spec.NumImages);
  EXPECT_EQ(P->ImageDataSizes, Model.ImageDataSizes);
}

TEST_F(GifFixture, NoGlobalColorTable) {
  GifSynthSpec Spec;
  Spec.GlobalColorTable = false;
  GifModel Model;
  auto Bytes = synthesizeGif(Spec, &Model);
  Interp I(*G);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractGif(*Tree, *G);
  ASSERT_TRUE(P) << P.message();
  EXPECT_FALSE(P->HasGct);
}

TEST_F(GifFixture, EmptyBlockListIsValid) {
  GifSynthSpec Spec;
  Spec.NumExtensions = 0;
  Spec.NumImages = 0;
  auto Bytes = synthesizeGif(Spec);
  Interp I(*G);
  EXPECT_TRUE(I.parse(ByteSpan::of(Bytes)));
}

TEST_F(GifFixture, RejectsMissingTrailer) {
  auto Bytes = synthesizeGif(GifSynthSpec());
  Bytes.pop_back();
  Interp I(*G);
  EXPECT_FALSE(I.parse(ByteSpan::of(Bytes)));
}

TEST_F(GifFixture, RejectsBadVersion) {
  auto Bytes = synthesizeGif(GifSynthSpec());
  Bytes[4] = '7'; // GIF79a? not a thing
  Interp I(*G);
  EXPECT_FALSE(I.parse(ByteSpan::of(Bytes)));
}

TEST_F(GifFixture, RejectsTruncatedSubBlock) {
  GifSynthSpec Spec;
  Spec.NumExtensions = 0;
  Spec.NumImages = 1;
  auto Bytes = synthesizeGif(Spec);
  // Chop into the final sub-block: the trailer then sits where data should
  // be, and the sub-block chain cannot reach a terminator.
  Bytes.resize(Bytes.size() - 10);
  Interp I(*G);
  EXPECT_FALSE(I.parse(ByteSpan::of(Bytes)));
}

class GifSweep : public ::testing::TestWithParam<int> {};

TEST_P(GifSweep, ManyBlocks) {
  auto R = loadGifGrammar();
  ASSERT_TRUE(R) << R.message();
  GifSynthSpec Spec;
  Spec.NumExtensions = static_cast<size_t>(GetParam());
  Spec.NumImages = static_cast<size_t>(GetParam()) / 2;
  GifModel Model;
  auto Bytes = synthesizeGif(Spec, &Model);
  InterpOptions Opts;
  Opts.MaxDepth = 1 << 18;
  Interp I(R->G, nullptr, Opts);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractGif(*Tree, R->G);
  ASSERT_TRUE(P) << P.message();
  EXPECT_EQ(P->NumBlocks, Model.NumBlocks);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GifSweep, ::testing::Values(0, 1, 16, 128));

//===----------------------------------------------------------------------===//
// PE.
//===----------------------------------------------------------------------===//

namespace {
class PeFixture : public ::testing::Test {
protected:
  void SetUp() override {
    auto R = loadPeGrammar();
    ASSERT_TRUE(R) << R.message();
    G.emplace(std::move(R->G));
  }
  std::optional<Grammar> G;
};
} // namespace

TEST_F(PeFixture, RoundTrip) {
  PeSynthSpec Spec;
  Spec.NumSections = 6;
  PeModel Model;
  auto Bytes = synthesizePe(Spec, &Model);
  Interp I(*G);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractPe(*Tree, *G);
  ASSERT_TRUE(P) << P.message();
  EXPECT_EQ(P->LfaNew, Model.LfaNew);
  EXPECT_EQ(P->Machine, 0x8664);
  EXPECT_EQ(P->NumSections, Model.NumSections);
  EXPECT_EQ(P->OptMagic, 0x20b);
  ASSERT_EQ(P->Sections.size(), Model.Sections.size());
  for (size_t K = 0; K < Model.Sections.size(); ++K) {
    EXPECT_EQ(P->Sections[K].RawPtr, Model.Sections[K].RawPtr);
    EXPECT_EQ(P->Sections[K].RawSize, Model.Sections[K].RawSize);
  }
}

TEST_F(PeFixture, RejectsBadNtSignature) {
  PeModel Model;
  auto Bytes = synthesizePe(PeSynthSpec(), &Model);
  Bytes[Model.LfaNew] = 'Q';
  Interp I(*G);
  EXPECT_FALSE(I.parse(ByteSpan::of(Bytes)));
}

TEST_F(PeFixture, RejectsWrongOptionalMagic) {
  PeModel Model;
  auto Bytes = synthesizePe(PeSynthSpec(), &Model);
  // Optional header magic is right after the 24 bytes of signature+COFF.
  Bytes[Model.LfaNew + 24] = 0x0b;
  Bytes[Model.LfaNew + 25] = 0x01; // 0x10b = PE32, grammar wants PE32+
  Interp I(*G);
  EXPECT_FALSE(I.parse(ByteSpan::of(Bytes)));
}

//===----------------------------------------------------------------------===//
// PDF.
//===----------------------------------------------------------------------===//

namespace {
class PdfFixture : public ::testing::Test {
protected:
  void SetUp() override {
    auto R = loadPdfGrammar();
    ASSERT_TRUE(R) << R.message();
    G.emplace(std::move(R->G));
  }
  std::optional<Grammar> G;
};
} // namespace

TEST_F(PdfFixture, RoundTrip) {
  PdfSynthSpec Spec;
  Spec.NumObjects = 5;
  PdfModel Model;
  auto Bytes = synthesizePdf(Spec, &Model);
  Interp I(*G);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractPdf(*Tree, *G);
  ASSERT_TRUE(P) << P.message();
  EXPECT_EQ(P->XrefOffset, Model.XrefOffset);
  EXPECT_EQ(P->NumXrefEntries, Spec.NumObjects + 1);
  EXPECT_EQ(P->ObjectOffsets, Model.ObjectOffsets);
}

TEST_F(PdfFixture, BackwardNumberFindsStartxref) {
  // Large xref offsets exercise multi-digit backward parsing.
  PdfSynthSpec Spec;
  Spec.NumObjects = 3;
  Spec.ObjectBodySize = 900; // pushes the xref offset past 4 digits
  PdfModel Model;
  auto Bytes = synthesizePdf(Spec, &Model);
  ASSERT_GT(Model.XrefOffset, 1000u);
  Interp I(*G);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractPdf(*Tree, *G);
  ASSERT_TRUE(P) << P.message();
  EXPECT_EQ(P->XrefOffset, Model.XrefOffset);
}

TEST_F(PdfFixture, RejectsCorruptXrefOffset) {
  PdfSynthSpec Spec;
  PdfModel Model;
  auto Bytes = synthesizePdf(Spec, &Model);
  // Overwrite the startxref digits with a bogus offset.
  std::string Wrong = std::to_string(Model.XrefOffset + 3);
  size_t DigitsStart = Bytes.size() - 6 - Wrong.size();
  for (size_t K = 0; K < Wrong.size(); ++K)
    Bytes[DigitsStart + K] = static_cast<uint8_t>(Wrong[K]);
  Interp I(*G);
  EXPECT_FALSE(I.parse(ByteSpan::of(Bytes)));
}

TEST_F(PdfFixture, RejectsMissingEof) {
  auto Bytes = synthesizePdf(PdfSynthSpec());
  Bytes.pop_back();
  Interp I(*G);
  EXPECT_FALSE(I.parse(ByteSpan::of(Bytes)));
}

TEST_F(PdfFixture, RejectsDamagedObject) {
  PdfSynthSpec Spec;
  PdfModel Model;
  auto Bytes = synthesizePdf(Spec, &Model);
  // Replace the first object's id digit with a non-digit: Obj's predicate
  // fails.
  Bytes[Model.ObjectOffsets[0]] = '<';
  Interp I(*G);
  EXPECT_FALSE(I.parse(ByteSpan::of(Bytes)));
}

//===----------------------------------------------------------------------===//
// DNS.
//===----------------------------------------------------------------------===//

namespace {
class DnsFixture : public ::testing::Test {
protected:
  void SetUp() override {
    auto R = loadDnsGrammar();
    ASSERT_TRUE(R) << R.message();
    G.emplace(std::move(R->G));
  }
  std::optional<Grammar> G;
};
} // namespace

TEST_F(DnsFixture, RoundTrip) {
  DnsSynthSpec Spec;
  Spec.NumAnswers = 5;
  DnsModel Model;
  auto Bytes = synthesizeDns(Spec, &Model);
  Interp I(*G);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractDns(*Tree, *G, ByteSpan::of(Bytes));
  ASSERT_TRUE(P) << P.message();
  EXPECT_EQ(P->Id, Model.Id);
  EXPECT_EQ(P->QdCount, 1);
  EXPECT_EQ(P->AnCount, Model.AnswerCount);
  EXPECT_EQ(P->QName, Spec.QName);
  for (uint16_t T : P->AnswerTypes)
    EXPECT_EQ(T, 1); // A records
}

TEST_F(DnsFixture, RejectsWrongAnswerCount) {
  DnsSynthSpec Spec;
  Spec.NumAnswers = 3;
  auto Bytes = synthesizeDns(Spec);
  Bytes[7] = 9; // ANCOUNT low byte
  Interp I(*G);
  EXPECT_FALSE(I.parse(ByteSpan::of(Bytes)));
}

TEST_F(DnsFixture, RejectsOverlongLabel) {
  auto Bytes = synthesizeDns(DnsSynthSpec());
  Bytes[12] = 77; // question's first label claims 77 > 63 bytes
  Interp I(*G);
  EXPECT_FALSE(I.parse(ByteSpan::of(Bytes)));
}

TEST_F(DnsFixture, RejectsTruncatedRData) {
  DnsSynthSpec Spec;
  Spec.NumAnswers = 2;
  auto Bytes = synthesizeDns(Spec);
  Bytes.resize(Bytes.size() - 2);
  Interp I(*G);
  EXPECT_FALSE(I.parse(ByteSpan::of(Bytes)));
}

//===----------------------------------------------------------------------===//
// IPv4 + UDP.
//===----------------------------------------------------------------------===//

namespace {
class Ipv4Fixture : public ::testing::Test {
protected:
  void SetUp() override {
    auto R = loadIpv4UdpGrammar();
    ASSERT_TRUE(R) << R.message();
    G.emplace(std::move(R->G));
  }
  std::optional<Grammar> G;
};
} // namespace

TEST_F(Ipv4Fixture, UdpRoundTrip) {
  Ipv4SynthSpec Spec;
  Spec.PayloadSize = 128;
  Ipv4Model Model;
  auto Bytes = synthesizeIpv4Udp(Spec, &Model);
  Interp I(*G);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractIpv4Udp(*Tree, *G);
  ASSERT_TRUE(P) << P.message();
  EXPECT_EQ(P->Ihl, 5);
  EXPECT_EQ(P->TotalLength, Model.TotalLength);
  EXPECT_EQ(P->Protocol, 17);
  EXPECT_TRUE(P->HasUdp);
  EXPECT_EQ(P->SrcPort, Model.SrcPort);
  EXPECT_EQ(P->DstPort, Model.DstPort);
  EXPECT_EQ(P->UdpLength, 8 + Spec.PayloadSize);
}

TEST_F(Ipv4Fixture, OptionsViaIhl) {
  Ipv4SynthSpec Spec;
  Spec.OptionWords = 3; // IHL = 8
  Ipv4Model Model;
  auto Bytes = synthesizeIpv4Udp(Spec, &Model);
  Interp I(*G);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractIpv4Udp(*Tree, *G);
  ASSERT_TRUE(P) << P.message();
  EXPECT_EQ(P->Ihl, 8);
  EXPECT_TRUE(P->HasUdp);
}

TEST_F(Ipv4Fixture, NonUdpFallsToOpaque) {
  Ipv4SynthSpec Spec;
  Spec.Udp = false;
  auto Bytes = synthesizeIpv4Udp(Spec);
  Interp I(*G);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractIpv4Udp(*Tree, *G);
  ASSERT_TRUE(P) << P.message();
  EXPECT_FALSE(P->HasUdp);
  EXPECT_EQ(P->Protocol, 200);
}

TEST_F(Ipv4Fixture, RejectsBadVersion) {
  auto Bytes = synthesizeIpv4Udp(Ipv4SynthSpec());
  Bytes[0] = 0x65; // version 6
  Interp I(*G);
  EXPECT_FALSE(I.parse(ByteSpan::of(Bytes)));
}

TEST_F(Ipv4Fixture, RejectsTotalLengthPastPacket) {
  auto Bytes = synthesizeIpv4Udp(Ipv4SynthSpec());
  Bytes[2] = 0xff; // total length >> packet size
  Bytes[3] = 0xff;
  Interp I(*G);
  EXPECT_FALSE(I.parse(ByteSpan::of(Bytes)));
}

TEST_F(Ipv4Fixture, RejectsUdpLengthMismatch) {
  auto Bytes = synthesizeIpv4Udp(Ipv4SynthSpec());
  // UDP length field at header(20) + 4.
  Bytes[24] ^= 0x10;
  Interp I(*G);
  EXPECT_FALSE(I.parse(ByteSpan::of(Bytes)));
}
