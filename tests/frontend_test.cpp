//===- tests/frontend_test.cpp - lexer and DSL parser tests ---------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "support/Casting.h"

#include <gtest/gtest.h>
#include <string>
#include <vector>

using namespace ipg;

TEST(LexerTest, BasicTokens) {
  auto Toks = tokenize("S -> A[0, 8] ;");
  ASSERT_TRUE(Toks) << Toks.message();
  std::vector<TokKind> Kinds;
  for (const Token &T : *Toks)
    Kinds.push_back(T.Kind);
  std::vector<TokKind> Want = {
      TokKind::Ident,  TokKind::Arrow,    TokKind::Ident,
      TokKind::LBracket, TokKind::Number, TokKind::Comma,
      TokKind::Number, TokKind::RBracket, TokKind::Semi,
      TokKind::Eof};
  EXPECT_EQ(Kinds, Want);
}

TEST(LexerTest, NumbersDecimalAndHex) {
  auto Toks = tokenize("42 0x2c 0");
  ASSERT_TRUE(Toks);
  EXPECT_EQ((*Toks)[0].Number, 42);
  EXPECT_EQ((*Toks)[1].Number, 0x2c);
  EXPECT_EQ((*Toks)[2].Number, 0);
}

TEST(LexerTest, StringEscapes) {
  auto Toks = tokenize(R"("a\x7fELF\n\t\0\\\"")");
  ASSERT_TRUE(Toks);
  std::string Want = "a";
  Want += '\x7f';
  Want += "ELF\n\t";
  Want += '\0';
  Want += "\\\"";
  EXPECT_EQ((*Toks)[0].Text, Want);
}

TEST(LexerTest, CommentsAreSkipped) {
  auto Toks = tokenize("A // line comment\n/* block\ncomment */ B");
  ASSERT_TRUE(Toks);
  ASSERT_EQ(Toks->size(), 3u); // A, B, Eof
  EXPECT_EQ((*Toks)[0].Text, "A");
  EXPECT_EQ((*Toks)[1].Text, "B");
}

TEST(LexerTest, OperatorDisambiguation) {
  auto Toks = tokenize("<< <= < >> >= > == = != && & -> -");
  ASSERT_TRUE(Toks);
  std::vector<TokKind> Kinds;
  for (const Token &T : *Toks)
    Kinds.push_back(T.Kind);
  std::vector<TokKind> Want = {
      TokKind::Shl, TokKind::Le,  TokKind::Lt,     TokKind::Shr,
      TokKind::Ge,  TokKind::Gt,  TokKind::EqEq,   TokKind::Assign,
      TokKind::Neq, TokKind::AndAnd, TokKind::Amp, TokKind::Arrow,
      TokKind::Minus, TokKind::Eof};
  EXPECT_EQ(Kinds, Want);
}

TEST(LexerTest, ErrorsAreLocated) {
  auto Toks = tokenize("A ->\n  $");
  ASSERT_FALSE(Toks);
  EXPECT_NE(Toks.message().find("line 2"), std::string::npos);
}

TEST(LexerTest, UnterminatedString) {
  auto Toks = tokenize("\"abc");
  ASSERT_FALSE(Toks);
  EXPECT_NE(Toks.message().find("unterminated"), std::string::npos);
}

TEST(ParserTest, FirstPaperExample) {
  // Figure 1 of the paper.
  auto G = parseGrammarText(R"(
    S -> A[0, 2] B[EOI - 2, EOI] ;
    A -> "aa"[0, 2] ;
    B -> "bb"[0, 2] ;
  )");
  ASSERT_TRUE(G) << G.message();
  EXPECT_EQ(G->numRules(), 3u);
  EXPECT_EQ(G->startSymbol(), G->interner().lookup("S"));
  const Rule &S = G->rule(G->findGlobal(G->interner().lookup("S")));
  ASSERT_EQ(S.Alts.size(), 1u);
  ASSERT_EQ(S.Alts[0].Terms.size(), 2u);
  EXPECT_TRUE(isa<NTTerm>(S.Alts[0].Terms[0].get()));
}

TEST(ParserTest, BiasedChoiceAlternatives) {
  auto G = parseGrammarText(R"(
    Digit -> "0"[0, 1] {val = 0} / "1"[0, 1] {val = 1} ;
  )");
  ASSERT_TRUE(G) << G.message();
  const Rule &R = G->rule(0);
  ASSERT_EQ(R.Alts.size(), 2u);
  EXPECT_EQ(R.Alts[0].Terms.size(), 2u);
}

TEST(ParserTest, ImplicitIntervalForms) {
  auto G = parseGrammarText(R"(S -> "magic" A B[10] ;
                               A -> "x" ; B -> "y" ;)");
  ASSERT_TRUE(G) << G.message();
  const Rule &S = G->rule(0);
  const auto *T0 = cast<TerminalTerm>(S.Alts[0].Terms[0].get());
  EXPECT_EQ(T0->Iv.How, Interval::Form::Omitted);
  const auto *T1 = cast<NTTerm>(S.Alts[0].Terms[1].get());
  EXPECT_EQ(T1->Iv.How, Interval::Form::Omitted);
  const auto *T2 = cast<NTTerm>(S.Alts[0].Terms[2].get());
  EXPECT_EQ(T2->Iv.How, Interval::Form::Length);
}

TEST(ParserTest, ForArraysAndPredicates) {
  auto G = parseGrammarText(R"(
    S -> H[0, 4] {size = 4}
         for i = 0 to H.num do A[4 + size * i, 4 + size * (i + 1)]
         {a0 = A(0).val}
         check(a0 > 0 && a0 < 10) ;
    H -> {num = u32le(0)} ;
    A -> {val = u32le(0)} ;
  )");
  ASSERT_TRUE(G) << G.message();
  const Rule &S = G->rule(0);
  ASSERT_EQ(S.Alts[0].Terms.size(), 5u);
  EXPECT_TRUE(isa<ArrayTerm>(S.Alts[0].Terms[2].get()));
  EXPECT_TRUE(isa<PredicateTerm>(S.Alts[0].Terms[4].get()));
}

TEST(ParserTest, SwitchWithDefault) {
  auto G = parseGrammarText(R"(
    S -> {t = u8(0)} switch(t = 6: DynSec[1, EOI] / OtherSec[1, EOI]) ;
    DynSec -> "d" ;
    OtherSec -> "o" ;
  )");
  ASSERT_TRUE(G) << G.message();
  const auto *Sw = dyn_cast<SwitchTerm>(G->rule(0).Alts[0].Terms[1].get());
  ASSERT_NE(Sw, nullptr);
  ASSERT_EQ(Sw->Choices.size(), 2u);
  EXPECT_NE(Sw->Choices[0].Cond, nullptr);
  EXPECT_EQ(Sw->Choices[1].Cond, nullptr); // default arm
}

TEST(ParserTest, WhereLocalRules) {
  auto G = parseGrammarText(R"(
    S -> A[0, 1] D[1, EOI]
      where { D -> B[A.val, EOI] ; B -> "b" ; } ;
    A -> {val = u8(0)} ;
  )");
  ASSERT_TRUE(G) << G.message();
  const Rule &S = G->rule(G->findGlobal(G->interner().lookup("S")));
  ASSERT_EQ(S.Alts[0].LocalRules.size(), 2u);
  EXPECT_TRUE(G->rule(S.Alts[0].LocalRules[0]).IsLocal);
  // Local rules must not be visible globally.
  EXPECT_EQ(G->findGlobal(G->interner().lookup("D")), InvalidRuleId);
}

TEST(ParserTest, BlackboxDeclaration) {
  auto G = parseGrammarText(R"(
    blackbox inflate ;
    S -> inflate[0, EOI] ;
  )");
  ASSERT_TRUE(G) << G.message();
  EXPECT_TRUE(G->isBlackbox(G->interner().lookup("inflate")));
  EXPECT_TRUE(isa<BlackboxTerm>(G->rule(0).Alts[0].Terms[0].get()));
}

TEST(ParserTest, StartDirective) {
  auto G = parseGrammarText(R"(
    start Real ;
    Helper -> "h" ;
    Real -> Helper[0, 1] ;
  )");
  ASSERT_TRUE(G) << G.message();
  EXPECT_EQ(G->startSymbol(), G->interner().lookup("Real"));
}

TEST(ParserTest, ExistsExpression) {
  auto G = parseGrammarText(R"(
    S -> for i = 0 to 4 do OH[8 * i, 8 * (i + 1)]
         {len = exists j . OH(j).link = 1 ? OH(j).len : 0 - 1} ;
    OH -> {link = u32le(0)} {len = u32le(4)} ;
  )");
  ASSERT_TRUE(G) << G.message();
  const auto *D = cast<AttrDefTerm>(G->rule(0).Alts[0].Terms[1].get());
  EXPECT_TRUE(isa<ExistsExpr>(D->Value.get()));
}

TEST(ParserTest, TernaryAndPrecedence) {
  auto G = parseGrammarText(R"(
    S -> {x = 1 + 2 * 3} {y = x = 7 ? 10 : 20}
         check(y = 10) "a"[0, 1] ;
  )");
  ASSERT_TRUE(G) << G.message();
}

TEST(ParserTest, ErrorUnknownBuiltin) {
  auto G = parseGrammarText("S -> {x = frob(1)} ;");
  ASSERT_FALSE(G);
  EXPECT_NE(G.message().find("unknown builtin"), std::string::npos);
}

TEST(ParserTest, ErrorDuplicateRule) {
  auto G = parseGrammarText("S -> \"a\" ; S -> \"b\" ;");
  ASSERT_FALSE(G);
  EXPECT_NE(G.message().find("duplicate rule"), std::string::npos);
}

TEST(ParserTest, ErrorMissingSemicolon) {
  auto G = parseGrammarText("S -> \"a\"");
  ASSERT_FALSE(G);
}

TEST(ParserTest, ErrorEmptyAlternative) {
  auto G = parseGrammarText("S -> \"a\" / / \"b\" ;");
  ASSERT_FALSE(G);
  EXPECT_NE(G.message().find("empty alternative"), std::string::npos);
}

TEST(ParserTest, GrammarPrintingRoundTripParses) {
  const char *Src = R"(
    S -> H[0, 8] Data[H.offset, H.offset + H.length] ;
    H -> {offset = u32le(0)} {length = u32le(4)} ;
    Data -> Byte[0, 1] Data[1, EOI] / Byte[0, 1] ;
    Byte -> {v = u8(0)} ;
  )";
  auto G = parseGrammarText(Src);
  ASSERT_TRUE(G) << G.message();
  std::string Printed = G->str();
  auto G2 = parseGrammarText(Printed);
  ASSERT_TRUE(G2) << "printed grammar failed to reparse: " << G2.message()
                  << "\n" << Printed;
  EXPECT_EQ(G2->numRules(), G->numRules());
}
