//===- tests/engine_test.cpp - Engine interface & factory tests -----------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified-Engine surface: makeEngine/makeFormatEngine build both the
/// interpreter and the in-process generated engine (GenModule + GenEngine,
/// dlopen'd — not the out-of-process child harness differential_test
/// drives), the two must produce byte-identical canonical trees, honor
/// the SAME EngineOptions (depth limit, memoization), and both must obey
/// the stats contract: stats() describes the most recent parse() call,
/// even one that failed before reaching the grammar.
///
//===----------------------------------------------------------------------===//

#include "analysis/AttributeCheck.h"
#include "codegen/GenEngine.h"
#include "formats/FormatRegistry.h"
#include "runtime/Engine.h"
#include "runtime/Interp.h"

#include "TreeCanonical.h"

#include <gtest/gtest.h>

using namespace ipg;
using testutil::renderCanonical;

namespace {

Grammar load(const std::string &Src) {
  auto R = loadGrammar(Src);
  EXPECT_TRUE(R) << R.message();
  if (!R)
    std::abort();
  return std::move(R->G);
}

bool haveGen() { return GenModule::hostCompilerAvailable(); }

} // namespace

TEST(EngineFactory, KindNamesAreStable) {
  EXPECT_STREQ(engineKindName(EngineKind::Interp), "interp");
  EXPECT_STREQ(engineKindName(EngineKind::Generated), "generated");
}

TEST(EngineFactory, BuildsAnInterpreterOverACustomGrammar) {
  Grammar G = load(R"(S -> "ab"[0, 2] {v = 7} ;)");
  auto E = makeEngine(EngineKind::Interp, G);
  ASSERT_TRUE(E) << E.message();
  EXPECT_EQ((*E)->kind(), EngineKind::Interp);
  EXPECT_EQ(&(*E)->grammar(), &G);
  std::vector<uint8_t> In = {'a', 'b'};
  auto T = (*E)->parse(ByteSpan::of(In));
  ASSERT_TRUE(T) << T.message();
  EXPECT_NE(renderCanonical(*T, G).find("v=7"), std::string::npos);
}

// The heart of the api_redesign: one factory, two engines, identical
// trees — including zip, whose generated module compiles the MiniZlib
// bridge in and registers it through the epilogue hook.
TEST(EngineFactory, InterpAndGeneratedProduceIdenticalTreesInProcess) {
  if (!haveGen())
    GTEST_SKIP() << "no host C++ compiler";
  for (const char *Name : {"gif", "dns", "zip"}) {
    SCOPED_TRACE(Name);
    auto IE = formats::makeFormatEngine(Name, EngineKind::Interp);
    ASSERT_TRUE(IE) << IE.message();
    auto GE = formats::makeFormatEngine(Name, EngineKind::Generated);
    ASSERT_TRUE(GE) << GE.message();
    EXPECT_EQ((*GE)->kind(), EngineKind::Generated);

    for (unsigned Scale : {1u, 3u}) {
      SCOPED_TRACE(Scale);
      std::vector<uint8_t> In = formats::sampleInput(Name, Scale);
      ASSERT_FALSE(In.empty());
      auto TI = (*IE)->parse(ByteSpan::of(In));
      ASSERT_TRUE(TI) << TI.message();
      auto TG = (*GE)->parse(ByteSpan::of(In));
      ASSERT_TRUE(TG) << TG.message();
      EXPECT_EQ(renderCanonical(*TI, IE->Load->G),
                renderCanonical(*TG, GE->Load->G));
      // The engines expose the shared counters with the same meaning.
      EXPECT_EQ((*IE)->stats().NodesCreated, (*GE)->stats().NodesCreated);
      EXPECT_EQ((*IE)->stats().MemoMisses, (*GE)->stats().MemoMisses);
    }
  }
}

TEST(EngineFactory, GeneratedEngineReportsAUsefulErrorOnRejection) {
  if (!haveGen())
    GTEST_SKIP() << "no host C++ compiler";
  auto GE = formats::makeFormatEngine("gif", EngineKind::Generated);
  ASSERT_TRUE(GE) << GE.message();
  std::vector<uint8_t> Junk = {'n', 'o', 't', 'a', 'g', 'i', 'f'};
  auto T = (*GE)->parse(ByteSpan::of(Junk));
  ASSERT_FALSE(T);
  EXPECT_NE(T.message().find("rejected"), std::string::npos);
}

// The PR's satellite bugfix: Interp::parse used to return early on an
// unknown start nonterminal BEFORE resetting Stats, leaving the previous
// parse's numbers visible through stats(). Both failure shapes must
// describe the failing call.
TEST(EngineStatsContract, EarlyFailureResetsTheInterpreterStats) {
  Grammar G = load(R"(S -> "ab"[0, 2] {v = 7} ;)");
  Interp I(G);
  std::vector<uint8_t> In = {'a', 'b'};
  ASSERT_TRUE(I.parse(ByteSpan::of(In)));
  ASSERT_GT(I.stats().NodesCreated, 0u);
  ASSERT_GT(I.stats().TermsExecuted, 0u);

  Symbol Bogus = G.interner().intern("no_such_rule");
  ASSERT_FALSE(I.parse(ByteSpan::of(In), Bogus));
  EXPECT_EQ(I.stats().NodesCreated, 0u)
      << "stats() must describe the failed call, not the previous parse";
  EXPECT_EQ(I.stats().TermsExecuted, 0u);
  EXPECT_EQ(I.stats().MemoMisses, 0u);
  EXPECT_EQ(I.stats().PeakDepth, 0u);
}

TEST(EngineStatsContract, RejectedInputsLeaveThatParsesStats) {
  for (EngineKind Kind : {EngineKind::Interp, EngineKind::Generated}) {
    if (Kind == EngineKind::Generated && !haveGen())
      continue;
    SCOPED_TRACE(engineKindName(Kind));
    auto FE = formats::makeFormatEngine("gif", Kind);
    ASSERT_TRUE(FE) << FE.message();
    std::vector<uint8_t> Good = formats::sampleInput("gif", 3);
    ASSERT_TRUE((*FE)->parse(ByteSpan::of(Good)));
    size_t GoodNodes = (*FE)->stats().NodesCreated;
    ASSERT_GT(GoodNodes, 0u);

    // Truncate to a handful of header bytes: the parse fails early and
    // its stats must be (much) smaller than the successful run's.
    std::vector<uint8_t> Bad(Good.begin(), Good.begin() + 4);
    ASSERT_FALSE((*FE)->parse(ByteSpan::of(Bad)));
    EXPECT_LT((*FE)->stats().NodesCreated, GoodNodes);
  }
}

namespace {
/// T recurses once per leading 'a'; the raw fallback would accept ANY
/// input if the depth failure were soft (same shape differential_test
/// uses for the child-process harness).
const char *DeepGrammar = R"(
  S -> T[0, EOI] / raw[0, EOI] ;
  T -> "a"[0, 1] T[1, EOI] / "a"[0, 1] ;
)";
} // namespace

// Satellite regression: the consolidated EngineOptions::MaxDepth must
// mean the same thing to both engines — one value, one behavior.
TEST(EngineOptionsParity, BothEnginesHonorTheSameDepthLimit) {
  Grammar G = load(DeepGrammar);
  EngineOptions Opts;
  Opts.MaxDepth = 64;
  std::vector<uint8_t> Shallow(10, 'a');
  std::vector<uint8_t> Deep(100, 'a');

  for (EngineKind Kind : {EngineKind::Interp, EngineKind::Generated}) {
    if (Kind == EngineKind::Generated && !haveGen())
      continue;
    SCOPED_TRACE(engineKindName(Kind));
    auto E = makeEngine(Kind, G, nullptr, Opts);
    ASSERT_TRUE(E) << E.message();
    EXPECT_TRUE((*E)->parse(ByteSpan::of(Shallow)));
    EXPECT_FALSE((*E)->parse(ByteSpan::of(Deep)))
        << "the depth limit must abort the parse, not fall back to raw";
  }
}

TEST(EngineOptionsParity, UseMemoOffPreservesTreesOnBothEngines) {
  EngineOptions On;
  EngineOptions Off;
  Off.UseMemo = false;
  std::vector<uint8_t> In = formats::sampleInput("dns", 2);
  ASSERT_FALSE(In.empty());

  for (EngineKind Kind : {EngineKind::Interp, EngineKind::Generated}) {
    if (Kind == EngineKind::Generated && !haveGen())
      continue;
    SCOPED_TRACE(engineKindName(Kind));
    auto EOn = formats::makeFormatEngine("dns", Kind, On);
    auto EOff = formats::makeFormatEngine("dns", Kind, Off);
    ASSERT_TRUE(EOn) << EOn.message();
    ASSERT_TRUE(EOff) << EOff.message();
    auto TOn = (*EOn)->parse(ByteSpan::of(In));
    auto TOff = (*EOff)->parse(ByteSpan::of(In));
    ASSERT_TRUE(TOn) << TOn.message();
    ASSERT_TRUE(TOff) << TOff.message();
    EXPECT_EQ(renderCanonical(*TOn, EOn->Load->G),
              renderCanonical(*TOff, EOff->Load->G));
    EXPECT_EQ((*EOff)->stats().MemoMisses, 0u)
        << "UseMemo=false must really disable the table";
  }
}
