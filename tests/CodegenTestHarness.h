//===- tests/CodegenTestHarness.h - compile generated parsers ---*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one child-compile recipe shared by every test that compiles and
/// runs a generated parser (codegen_test.cpp, differential_test.cpp):
/// host-compiler detection, temp-dir setup, source write, the compile
/// command with its flags, and compile-log forwarding on failure. Under
/// -DIPG_SANITIZE=ON (IPG_SANITIZE_BUILD) the children are compiled with
/// ASan+UBSan too, so the CI sanitizer job proves generated parsers
/// sanitizer-clean. bench/bench_codegen.cpp keeps its own variant on
/// purpose: it is a standalone driver with a different child protocol
/// (metric lines over a pipe, -O2, never sanitized).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_TESTS_CODEGENTESTHARNESS_H
#define IPG_TESTS_CODEGENTESTHARNESS_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>
#include <string>
#include <unistd.h>
#include <vector>

namespace ipg::testutil {

inline bool hostCompilerAvailable() {
  return std::system("c++ --version > /dev/null 2>&1") == 0;
}

/// The per-\p Tag scratch directory children compile and run in. The
/// test runner's pid is part of the path: several test binaries reuse
/// tags (differential_test and roundtrip_test both compile a "gif"
/// parser), so fixed paths made `ctest -j` a latent artifact race. The
/// pid is cached so every call within a process re-derives the same
/// directory (compileParserSource and runChild must agree on it).
inline std::string childDir(const std::string &Tag) {
  static const long Pid = static_cast<long>(::getpid());
  return ::testing::TempDir() + "ipg_codegen_" + std::to_string(Pid) +
         "_" + Tag;
}

/// Writes \p FullSource (generated parser + driver main) and compiles it.
/// \p ExtraCompileArgs is appended to the compile line — blackbox formats
/// use it to add the library include dir and the decoder translation
/// units their bridge needs (and a later -std=... there overrides the
/// default C++17). Returns the executable path, or "" after forwarding
/// the compile log to stderr.
inline std::string compileParserSource(const std::string &FullSource,
                                       const std::string &Tag,
                                       const std::string &ExtraCompileArgs =
                                           "") {
  std::string Dir = childDir(Tag);
  if (std::system(("mkdir -p " + Dir).c_str()) != 0)
    return "";
  {
    std::ofstream Src(Dir + "/parser.cpp");
    Src << FullSource;
  }
  // Under the sanitizer build the *generated* parser is sanitized too —
  // that is the point of running these suites in the ASan+UBSan CI job.
#ifdef IPG_SANITIZE_BUILD
  const char *San =
      " -g -fsanitize=address,undefined -fno-sanitize-recover=all";
#else
  const char *San = "";
#endif
  std::string Compile = "c++ -std=c++17 -O1" + std::string(San) + " -o " +
                        Dir + "/parser " + Dir + "/parser.cpp" +
                        (ExtraCompileArgs.empty() ? ""
                                                  : " " + ExtraCompileArgs) +
                        " 2> " + Dir + "/compile.log";
  if (std::system(Compile.c_str()) != 0) {
    std::ifstream Log(Dir + "/compile.log");
    std::string Line;
    while (std::getline(Log, Line))
      std::fprintf(stderr, "compile: %s\n", Line.c_str());
    return "";
  }
  return Dir + "/parser";
}

/// The compile arguments a GenBlackboxBridge needs: the library source
/// dir on the include path, the bridge's extra translation units, and the
/// library's language standard (bridges include library headers, which
/// are C++20; plain generated parsers stay C++17). Requires the build to
/// define IPG_SOURCE_DIR (tests get it from CMake).
inline std::string bridgeCompileArgs(const char *ExtraSources) {
  std::string SrcDir = IPG_SOURCE_DIR;
  std::string Args = "-std=c++20 -I" + SrcDir;
  std::string Rest = ExtraSources ? ExtraSources : "";
  size_t Pos = 0;
  while (Pos < Rest.size()) {
    size_t Sp = Rest.find(' ', Pos);
    if (Sp == std::string::npos)
      Sp = Rest.size();
    if (Sp > Pos)
      Args += " " + SrcDir + "/" + Rest.substr(Pos, Sp - Pos);
    Pos = Sp + 1;
  }
  return Args;
}

/// Writes \p Input into the child's scratch dir and runs \p Exe on it
/// (plus \p ExtraArg when nonempty). Returns the exit code, -1 on
/// infrastructure failure.
inline int runChild(const std::string &Exe, const std::string &Tag,
                    const std::vector<uint8_t> &Input,
                    const std::string &ExtraArg = "") {
  std::string InPath = childDir(Tag) + "/input.bin";
  {
    std::ofstream In(InPath, std::ios::binary);
    In.write(reinterpret_cast<const char *>(Input.data()),
             static_cast<std::streamsize>(Input.size()));
  }
  std::string Cmd = Exe + " " + InPath;
  if (!ExtraArg.empty())
    Cmd += " " + ExtraArg;
  int Rc = std::system(Cmd.c_str());
  return Rc == -1 ? -1 : WEXITSTATUS(Rc);
}

} // namespace ipg::testutil

#endif // IPG_TESTS_CODEGENTESTHARNESS_H
