//===- tests/roundtrip_test.cpp - parse∘print = id ------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serializer's property harness: on every format corpus, at scales 1
/// and 2, in BOTH execution modes,
///
///   print(parse(x)) == x                 (byte-exact reconstruction)
///   parse(print(parse(x))) == parse(x)   (the tree survives a round trip)
///
/// Interpreter trees print through serialize/Printer.cpp; generated
/// parsers print through the embedded ipg_rt::printTree (compiled into
/// the child by CodegenTestHarness.h, like the differential drivers).
/// Blackbox formats re-encode through the inverse hook — the deflated-zip
/// corpus proves decoded entry data recompresses onto the original
/// stream byte-for-byte.
///
/// Print-exactness is a per-format fact this suite pins down: formats
/// whose grammars leaf-cover their whole input must print strictly (zero
/// gaps); the two that do not (pe pads between headers, pdf has
/// whitespace no term touches) must fail Strict and reconstruct exactly
/// under FillFromBackground with a small, stable gap count. See
/// docs/grammar-syntax.md ("Print-exact constructs").
///
//===----------------------------------------------------------------------===//

#include "codegen/CppEmitter.h"

#include "CodegenTestHarness.h"
#include "formats/FormatRegistry.h"
#include "formats/MiniZlib.h"
#include "formats/Zip.h"
#include "runtime/Interp.h"
#include "serialize/Printer.h"
#include "support/Casting.h"

#include <cstdint>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>
#include <string>
#include <vector>

using namespace ipg;
using testutil::hostCompilerAvailable;

namespace {

/// Formats whose parse trees leaf-cover every input byte (strict print
/// succeeds with zero gaps). The complement — pe, pdf — is asserted to
/// FAIL strict printing, so a grammar change that shifts a format across
/// this line is caught either way.
bool strictPrintExact(const std::string &Name) {
  return Name != "pe" && Name != "pdf";
}

std::string render(const TreePtr &T, const Grammar &G) {
  return T ? treeToString(*T, G.interner()) : std::string();
}

/// One interpreter round trip: parse, print (strict or background-fill),
/// compare bytes, re-parse, compare trees. Returns the print result for
/// further inspection. Takes any Engine (callers build one through the
/// makeFormatEngine factory); the printer itself is engine-independent.
serialize::PrintResult roundtripInterp(Engine &I, const Grammar &G,
                                       const BlackboxRegistry &BB,
                                       const std::vector<uint8_t> &Bytes,
                                       bool Strict) {
  auto R = I.parse(ByteSpan::of(Bytes));
  EXPECT_TRUE(R) << R.message();
  if (!R)
    return serialize::PrintResult();
  std::string Before = render(*R, G);

  serialize::PrintOptions Opts;
  if (!Strict) {
    Opts.Gaps = serialize::GapPolicy::FillFromBackground;
    Opts.Background = ByteSpan::of(Bytes);
  }
  auto P = serialize::printTree(**R, G, &BB, Opts);
  EXPECT_TRUE(P) << P.message();
  if (!P)
    return serialize::PrintResult();
  EXPECT_EQ(P->Bytes, Bytes) << "print(parse(x)) != x";

  auto R2 = I.parse(ByteSpan::of(P->Bytes));
  EXPECT_TRUE(R2) << "printed bytes rejected: " << R2.message();
  if (R2) {
    EXPECT_EQ(render(*R2, G), Before)
        << "parse(print(parse(x))) != parse(x)";
  }
  return std::move(*P);
}

} // namespace

//===----------------------------------------------------------------------===//
// Interpreter engine: every format, scales 1 and 2.
//===----------------------------------------------------------------------===//

TEST(RoundtripTest, InterpreterPrintsEveryFormatCorpusByteExact) {
  size_t Roundtripped = 0;
  for (const formats::FormatInfo &FI : formats::allFormats()) {
    SCOPED_TRACE("format: " + FI.Name);
    auto FE = formats::makeFormatEngine(FI.Name, EngineKind::Interp);
    ASSERT_TRUE(FE) << FE.message();
    BlackboxRegistry BB = formats::standardBlackboxes(); // for the printer
    for (unsigned Scale : {1u, 2u}) {
      SCOPED_TRACE("scale: " + std::to_string(Scale));
      std::vector<uint8_t> Bytes = formats::sampleInput(FI.Name, Scale);
      ASSERT_FALSE(Bytes.empty());
      serialize::PrintResult P = roundtripInterp(
          **FE, FE->Load->G, BB, Bytes, strictPrintExact(FI.Name));
      if (strictPrintExact(FI.Name)) {
        EXPECT_EQ(P.GapBytes, 0u);
      }
      ++Roundtripped;
    }
  }
  EXPECT_EQ(Roundtripped, 2 * formats::allFormats().size());
}

TEST(RoundtripTest, StrictModeFailsExactlyForNonLeafCoveringFormats) {
  for (const formats::FormatInfo &FI : formats::allFormats()) {
    SCOPED_TRACE("format: " + FI.Name);
    auto FE = formats::makeFormatEngine(FI.Name, EngineKind::Interp);
    ASSERT_TRUE(FE) << FE.message();
    BlackboxRegistry BB = formats::standardBlackboxes();
    std::vector<uint8_t> Bytes = formats::sampleInput(FI.Name, 1);
    auto R = (*FE)->parse(ByteSpan::of(Bytes));
    ASSERT_TRUE(R) << R.message();
    auto P = serialize::printTree(**R, FE->Load->G, &BB);
    EXPECT_EQ(static_cast<bool>(P), strictPrintExact(FI.Name))
        << FI.Name << " moved across the print-exact line; update "
        << "strictPrintExact AND docs/grammar-syntax.md";
  }
}

//===----------------------------------------------------------------------===//
// Megabyte-class corpus: the printer (and the engines feeding it) must
// survive trees whose depth tracks file size. PDF at scale 64 parses
// through over a million virtual recursion levels; ELF is a megabyte
// image. The roundtripInterp helper is unusable here — it diffs
// treeToString renders, whose two-spaces-per-level indentation makes a
// megabyte-deep dump O(depth^2) bytes — so this test compares the
// re-parse by node count instead.
//===----------------------------------------------------------------------===//

TEST(RoundtripTest, MegabyteCorpusPrintsByteExact) {
  for (const char *Name : {"pdf", "elf"}) {
    SCOPED_TRACE(Name);
    EngineOptions Opts;
    Opts.MaxDepth = size_t{1} << 21;
    auto FE = formats::makeFormatEngine(Name, EngineKind::Interp, Opts);
    ASSERT_TRUE(FE) << FE.message();
    BlackboxRegistry BB = formats::standardBlackboxes();

    std::vector<uint8_t> Bytes = formats::sampleInput(Name, 64);
    ASSERT_GE(Bytes.size(), size_t{1} << 20)
        << Name << ": scale-64 corpus is not megabyte-class";

    auto R = (*FE)->parse(ByteSpan::of(Bytes));
    ASSERT_TRUE(R) << R.message();
    size_t Nodes = treeSize(**R);
    ASSERT_GT(Nodes, 0u);

    serialize::PrintOptions POpts;
    if (!strictPrintExact(Name)) {
      POpts.Gaps = serialize::GapPolicy::FillFromBackground;
      POpts.Background = ByteSpan::of(Bytes);
    }
    auto P = serialize::printTree(**R, FE->Load->G, &BB, POpts);
    ASSERT_TRUE(P) << P.message();
    EXPECT_TRUE(P->Bytes == Bytes)
        << Name << ": print(parse(x)) != x on the megabyte corpus";

    auto R2 = (*FE)->parse(ByteSpan::of(P->Bytes));
    ASSERT_TRUE(R2) << R2.message();
    EXPECT_EQ(treeSize(**R2), Nodes)
        << Name << ": re-parse of the printed image changed shape";
  }
}

//===----------------------------------------------------------------------===//
// The blackbox inverse under load: DEFLATED zip entries force the printer
// through miniZlibBlackboxInverse — decoded output leaves are re-encoded
// and must land byte-exactly on the original compressed streams.
//===----------------------------------------------------------------------===//

TEST(RoundtripTest, DeflatedZipRoundTripsThroughBlackboxInverse) {
  auto FE = formats::makeFormatEngine("zip", EngineKind::Interp);
  ASSERT_TRUE(FE) << FE.message();
  BlackboxRegistry BB = formats::standardBlackboxes();
  std::vector<uint8_t> Bytes = formats::synthesizeZip(
      formats::zipArchiveOfCopies(4, 2048, /*Compress=*/true));
  serialize::PrintResult P =
      roundtripInterp(**FE, FE->Load->G, BB, Bytes, /*Strict=*/true);
  EXPECT_GT(P.BlackboxBytes, 0u)
      << "the corpus never exercised the inverse";
}

TEST(RoundtripTest, MissingInverseIsAPrintErrorNotACrash) {
  auto FE = formats::makeFormatEngine("zip", EngineKind::Interp);
  ASSERT_TRUE(FE) << FE.message();
  std::vector<uint8_t> Bytes = formats::synthesizeZip(
      formats::zipArchiveOfCopies(1, 512, /*Compress=*/true));
  auto R = (*FE)->parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(R) << R.message();

  BlackboxRegistry Forward; // forward-only: no inverse registered
  Forward.add("inflate", formats::miniZlibBlackbox);
  auto P = serialize::printTree(**R, FE->Load->G, &Forward);
  ASSERT_FALSE(P);
  EXPECT_NE(P.message().find("inverse"), std::string::npos) << P.message();
}

//===----------------------------------------------------------------------===//
// Span collection: the structure-aware fuzzer's substrate. Spans must be
// well-formed (within the output, lo < hi) and cover the root.
//===----------------------------------------------------------------------===//

TEST(RoundtripTest, CollectedSpansAreWellFormed) {
  auto FE = formats::makeFormatEngine("gif", EngineKind::Interp);
  ASSERT_TRUE(FE) << FE.message();
  std::vector<uint8_t> Bytes = formats::sampleInput("gif", 1);
  auto R = (*FE)->parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(R) << R.message();
  serialize::PrintOptions Opts;
  Opts.CollectSpans = true;
  auto P = serialize::printTree(**R, FE->Load->G, nullptr, Opts);
  ASSERT_TRUE(P) << P.message();
  ASSERT_FALSE(P->Spans.empty());
  const auto &Root = P->Spans.front();
  EXPECT_EQ(Root.Depth, 0u);
  EXPECT_EQ(Root.Lo, 0);
  EXPECT_EQ(Root.Hi, static_cast<int64_t>(Bytes.size()));
  for (const serialize::PrintSpan &S : P->Spans) {
    EXPECT_LT(S.Lo, S.Hi);
    EXPECT_GE(S.Lo, 0);
    EXPECT_LE(S.Hi, static_cast<int64_t>(Bytes.size()));
  }
}

//===----------------------------------------------------------------------===//
// Generated engine: the same properties through the embedded
// ipg_rt::printTree, in a compiled child (CodegenTestHarness recipe).
// The child parses argv[1], prints (argv[3] = strict|fill, background =
// the input), RE-PARSES its own output and compares canonical dumps,
// then writes the printed bytes to argv[2] for the parent's byte-exact
// check. Exit codes: 0 ok, 1 parse reject, 4 print error, 5 printed
// bytes rejected, 6 round-trip tree mismatch.
//===----------------------------------------------------------------------===//

namespace {

bool compileRoundtripChild(const std::string &Generated,
                           const std::string &Tag, std::string &ExeOut,
                           const formats::GenBlackboxBridge *Bridge) {
  std::string Source = Generated;
  if (Bridge)
    Source += Bridge->DriverSource;
  Source +=
      "\n#include <cstdio>\n#include <cstring>\n#include <fstream>\n"
      "int main(int argc, char **argv) {\n"
      "  if (argc < 4) return 3;\n"
      "  std::ifstream In(argv[1], std::ios::binary);\n"
      "  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),"
      " std::istreambuf_iterator<char>());\n"
      "  gen::Parser P;\n" +
      std::string(Bridge ? "  ipgRegisterBlackboxes(P);\n" : "") +
      "  gen::NodePtr Root = nullptr;\n"
      "  if (!P.parse(Bytes.data(), Bytes.size(), Root)) return 1;\n"
      "  std::string Before = gen::dumpTree(Root);\n"
      "  ipg_rt::PrintOptions Opts;\n"
      "  if (!std::strcmp(argv[3], \"fill\")) {\n"
      "    Opts.Strict = false;\n"
      "    Opts.Background = Bytes.data();\n"
      "    Opts.BackgroundLen = Bytes.size();\n"
      "  }\n"
      "  ipg_rt::PrintOut R;\n"
      "  if (!gen::printTree(Root, Opts, R)) {\n"
      "    std::fprintf(stderr, \"print: %s\\n\", R.Error.c_str());\n"
      "    return 4;\n"
      "  }\n"
      "  gen::NodePtr Again = nullptr;\n"
      "  if (!P.parse(R.Bytes.data(), R.Bytes.size(), Again)) return 5;\n"
      "  if (gen::dumpTree(Again) != Before) return 6;\n"
      "  std::ofstream Out(argv[2], std::ios::binary);\n"
      "  Out.write(reinterpret_cast<const char *>(R.Bytes.data()),\n"
      "            static_cast<std::streamsize>(R.Bytes.size()));\n"
      "  return Out ? 0 : 3;\n}\n";
  ExeOut = testutil::compileParserSource(
      Source, Tag,
      Bridge ? testutil::bridgeCompileArgs(Bridge->ExtraSources) : "");
  return !ExeOut.empty();
}

std::vector<uint8_t> runRoundtripChild(const std::string &Exe,
                                       const std::string &Tag,
                                       const std::vector<uint8_t> &Input,
                                       bool Strict, int &ExitCode) {
  std::string OutPath = testutil::childDir(Tag) + "/printed.bin";
  std::remove(OutPath.c_str());
  ExitCode = testutil::runChild(Exe, Tag, Input,
                                OutPath + (Strict ? " strict" : " fill"));
  std::ifstream In(OutPath, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(In)),
                              std::istreambuf_iterator<char>());
}

} // namespace

TEST(RoundtripTest, GeneratedParsersPrintEveryFormatCorpusByteExact) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C++ compiler";

  size_t Roundtripped = 0;
  for (const formats::FormatInfo &FI : formats::allFormats()) {
    SCOPED_TRACE("format: " + FI.Name);
    auto Load = formats::loadFormatGrammar(FI.Name);
    ASSERT_TRUE(Load) << Load.message();
    auto Code = emitCppParser(Load->G, "gen");
    ASSERT_TRUE(Code) << Code.message();
    const formats::GenBlackboxBridge *Bridge =
        formats::genBlackboxBridge(FI.Name);
    std::string Tag = "rt_" + FI.Name;
    std::string Exe;
    ASSERT_TRUE(compileRoundtripChild(*Code, Tag, Exe, Bridge));

    bool Strict = strictPrintExact(FI.Name);
    for (unsigned Scale : {1u, 2u}) {
      SCOPED_TRACE("scale: " + std::to_string(Scale));
      std::vector<uint8_t> Bytes = formats::sampleInput(FI.Name, Scale);
      int Exit = -1;
      std::vector<uint8_t> Printed =
          runRoundtripChild(Exe, Tag, Bytes, Strict, Exit);
      ASSERT_EQ(Exit, 0) << "child failed (see exit-code legend above)";
      EXPECT_EQ(Printed, Bytes) << "generated print(parse(x)) != x";
      ++Roundtripped;
    }
  }
  EXPECT_EQ(Roundtripped, 2 * formats::allFormats().size());
}

TEST(RoundtripTest, GeneratedDeflatedZipRoundTripsThroughInverseHook) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C++ compiler";

  auto Load = formats::loadFormatGrammar("zip");
  ASSERT_TRUE(Load) << Load.message();
  auto Code = emitCppParser(Load->G, "gen");
  ASSERT_TRUE(Code) << Code.message();
  const formats::GenBlackboxBridge *Bridge =
      formats::genBlackboxBridge("zip");
  ASSERT_NE(Bridge, nullptr);
  std::string Exe;
  ASSERT_TRUE(compileRoundtripChild(*Code, "rt_zip_deflated", Exe, Bridge));

  std::vector<uint8_t> Bytes = formats::synthesizeZip(
      formats::zipArchiveOfCopies(4, 2048, /*Compress=*/true));
  int Exit = -1;
  std::vector<uint8_t> Printed =
      runRoundtripChild(Exe, "rt_zip_deflated", Bytes, /*Strict=*/true,
                        Exit);
  ASSERT_EQ(Exit, 0);
  EXPECT_EQ(Printed, Bytes)
      << "generated inverse hook did not reproduce the deflate streams";
}
