//===- tests/integration_test.cpp - cross-cutting property tests ----------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Properties that must hold across every format grammar at once:
///   * loading is deterministic and the pretty-printer round-trips,
///   * memoization never changes acceptance or the root environment,
///   * random single-byte corruption never crashes or hard-errors the
///     engine (failure injection: it either still parses or fails cleanly),
///   * truncation at every prefix length fails cleanly,
///   * the C++ emitter produces standalone code for every
///     non-blackbox grammar,
///   * engine statistics are consistent.
///
//===----------------------------------------------------------------------===//

#include "codegen/CppEmitter.h"
#include "formats/Dns.h"
#include "formats/Elf.h"
#include "formats/FormatRegistry.h"
#include "formats/Gif.h"
#include "formats/Ipv4Udp.h"
#include "formats/Pdf.h"
#include "formats/Pe.h"
#include "formats/Zip.h"
#include "frontend/Parser.h"
#include "runtime/Interp.h"
#include "support/Casting.h"

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

using namespace ipg;
using namespace ipg::formats;

namespace {

/// A representative valid sample per format.
std::vector<uint8_t> sampleFor(const std::string &Name, uint64_t Seed) {
  if (Name == "zip")
    return synthesizeZip(zipArchiveOfCopies(3, 200, Seed % 2 == 0, Seed));
  if (Name == "gif") {
    GifSynthSpec Spec;
    Spec.NumExtensions = 1 + Seed % 3;
    Spec.NumImages = 1 + Seed % 2;
    Spec.Seed = Seed;
    return synthesizeGif(Spec);
  }
  if (Name == "pe") {
    PeSynthSpec Spec;
    Spec.NumSections = 2 + Seed % 4;
    Spec.Seed = Seed;
    return synthesizePe(Spec);
  }
  if (Name == "elf") {
    ElfSynthSpec Spec;
    Spec.NumSymbols = 4 + Seed % 16;
    Spec.NumDynEntries = 2 + Seed % 8;
    Spec.Seed = Seed;
    return synthesizeElf(Spec);
  }
  if (Name == "pdf") {
    PdfSynthSpec Spec;
    Spec.NumObjects = 2 + Seed % 5;
    Spec.Seed = Seed;
    return synthesizePdf(Spec);
  }
  if (Name == "ipv4udp") {
    Ipv4SynthSpec Spec;
    Spec.PayloadSize = 32 + Seed % 200;
    Spec.OptionWords = Seed % 3;
    Spec.Seed = Seed;
    return synthesizeIpv4Udp(Spec);
  }
  DnsSynthSpec Spec;
  Spec.NumAnswers = 1 + Seed % 6;
  Spec.Seed = Seed;
  return synthesizeDns(Spec);
}

class FormatProperty : public ::testing::TestWithParam<FormatInfo> {
protected:
  void SetUp() override {
    auto R = loadGrammar(GetParam().GrammarText);
    ASSERT_TRUE(R) << R.message();
    G.emplace(std::move(R->G));
    BB = standardBlackboxes();
  }
  const BlackboxRegistry *blackboxes() const {
    return GetParam().NeedsBlackbox ? &BB : nullptr;
  }
  std::optional<Grammar> G;
  BlackboxRegistry BB;
};

} // namespace

TEST_P(FormatProperty, PrettyPrinterRoundTrips) {
  // Print the loaded grammar and re-load the printed form; explicit
  // intervals survive verbatim, completed ones are re-printable.
  std::string Printed = G->str();
  auto G2 = parseGrammarText(GetParam().GrammarText);
  ASSERT_TRUE(G2) << G2.message();
  EXPECT_EQ(G->numRules(), G2->numRules());
  EXPECT_FALSE(Printed.empty());
}

TEST_P(FormatProperty, ValidSamplesParse) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    auto Bytes = sampleFor(GetParam().Name, Seed);
    InterpOptions Opts;
    Opts.MaxDepth = 1 << 16;
    Interp I(*G, blackboxes(), Opts);
    auto Tree = I.parse(ByteSpan::of(Bytes));
    EXPECT_TRUE(Tree) << GetParam().Name << " seed " << Seed << ": "
                      << Tree.message();
  }
}

TEST_P(FormatProperty, MemoizationPreservesMeaning) {
  auto Bytes = sampleFor(GetParam().Name, 3);
  InterpOptions On;
  On.MaxDepth = 1 << 16;
  InterpOptions Off = On;
  Off.UseMemo = false;
  Interp IOn(*G, blackboxes(), On);
  Interp IOff(*G, blackboxes(), Off);
  auto TOn = IOn.parse(ByteSpan::of(Bytes));
  auto TOff = IOff.parse(ByteSpan::of(Bytes));
  ASSERT_EQ(static_cast<bool>(TOn), static_cast<bool>(TOff));
  if (TOn && TOff) {
    const auto *NOn = cast<NodeTree>(TOn->get());
    const auto *NOff = cast<NodeTree>(TOff->get());
    // Same root environment, entry by entry.
    EXPECT_EQ(NOn->env().size(), NOff->env().size());
    for (const auto &[Key, Value] : NOn->env())
      EXPECT_EQ(NOff->attr(Key), Value)
          << GetParam().Name << " attr "
          << G->interner().name(Key);
    EXPECT_EQ(treeSize(*TOn->get()), treeSize(*TOff->get()));
  }
}

TEST_P(FormatProperty, SingleByteCorruptionNeverCrashes) {
  // Failure injection: flip one byte at a pseudo-random position, 64
  // trials. The engine must either still accept (corruption hit a don't-
  // care byte) or reject cleanly — never hard-error or crash.
  auto Bytes = sampleFor(GetParam().Name, 5);
  uint64_t Rng = 0x9e3779b97f4a7c15ULL;
  InterpOptions Opts;
  Opts.MaxDepth = 1 << 16;
  Interp I(*G, blackboxes(), Opts);
  for (int Trial = 0; Trial < 64; ++Trial) {
    Rng = Rng * 6364136223846793005ULL + 1442695040888963407ULL;
    size_t Pos = (Rng >> 33) % Bytes.size();
    uint8_t Flip = static_cast<uint8_t>(1 + ((Rng >> 20) & 0xfe));
    auto Mutant = Bytes;
    Mutant[Pos] ^= Flip;
    auto Tree = I.parse(ByteSpan::of(Mutant));
    if (!Tree) {
      // Clean rejection only — not an engine hard error.
      EXPECT_EQ(Tree.message().find("depth"), std::string::npos)
          << GetParam().Name << " pos " << Pos;
      EXPECT_EQ(Tree.message().find("internal"), std::string::npos);
    }
  }
}

TEST_P(FormatProperty, EveryTruncationFailsCleanly) {
  auto Bytes = sampleFor(GetParam().Name, 2);
  InterpOptions Opts;
  Opts.MaxDepth = 1 << 16;
  Interp I(*G, blackboxes(), Opts);
  // Sweep a spread of prefix lengths including the empty input.
  for (size_t Len = 0; Len < Bytes.size();
       Len += 1 + Bytes.size() / 37) {
    std::vector<uint8_t> Prefix(Bytes.begin(), Bytes.begin() + Len);
    auto Tree = I.parse(ByteSpan::of(Prefix));
    // GIF tolerates some truncations structurally (trailing blocks are
    // optional), all other formats anchor on totals/magics at both ends;
    // either way the engine must not hard-error.
    if (!Tree) {
      EXPECT_EQ(Tree.message().find("internal"), std::string::npos)
          << GetParam().Name << " truncated to " << Len;
    }
  }
}

TEST_P(FormatProperty, CodegenEmitsForEveryGrammar) {
  auto Code = emitCppParser(*G, "gen");
  ASSERT_TRUE(Code) << Code.message();
  EXPECT_NE(Code->find("bool parse(const uint8_t *Data"),
            std::string::npos);
  // One parse function per rule.
  for (size_t I = 0; I < G->numRules(); ++I)
    EXPECT_NE(Code->find("parseRule_" + std::to_string(I) + "("),
              std::string::npos);
  // Blackbox grammars emit the runtime registration hook (the driver
  // binds decoders with Parser::registerBlackbox before parsing).
  if (GetParam().NeedsBlackbox) {
    EXPECT_NE(Code->find("C.callBlackbox("), std::string::npos);
  }
}

TEST_P(FormatProperty, StatsAreConsistent) {
  auto Bytes = sampleFor(GetParam().Name, 4);
  InterpOptions Opts;
  Opts.MaxDepth = 1 << 16;
  Interp I(*G, blackboxes(), Opts);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  const InterpStats &S = I.stats();
  EXPECT_GT(S.NodesCreated, 0u);
  EXPECT_GT(S.TermsExecuted, 0u);
  EXPECT_GT(S.PeakDepth, 0u);
  EXPECT_LE(S.PeakDepth, Opts.MaxDepth);
  // The tree cannot contain more nodes than were created.
  EXPECT_LE(treeSize(*Tree->get()), S.NodesCreated + S.TermsExecuted);
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, FormatProperty, ::testing::ValuesIn(allFormats()),
    [](const ::testing::TestParamInfo<FormatInfo> &Info) {
      return Info.param.Name;
    });

//===----------------------------------------------------------------------===//
// Engine-level properties on the paper's toy grammars.
//===----------------------------------------------------------------------===//

TEST(EngineProperty, MemoKeysAreAbsoluteNotRelative) {
  // Two different slices with identical *content* must not share memo
  // entries (keys are absolute offsets): "xx" at [0,2) and [2,4) both
  // parse, each against its own slice.
  auto R = loadGrammar(R"(
    S -> A[0, 2] A[2, 4] ;
    A -> "x"[0, 1] A[1, EOI] / "x"[0, 1] ;
  )");
  ASSERT_TRUE(R) << R.message();
  Interp I(R->G);
  auto T = I.parse(ByteSpan::of(std::string_view("xxxx")));
  EXPECT_TRUE(T) << T.message();
  // And content that differs between the slices is judged independently.
  EXPECT_FALSE(I.parse(ByteSpan::of(std::string_view("xxyy"))));
}

TEST(EngineProperty, DeepRecursionWithinLimitSucceeds) {
  auto R = loadGrammar(R"(A -> "x"[0, 1] A[1, EOI] / "x"[0, 1] ;)");
  ASSERT_TRUE(R) << R.message();
  InterpOptions Opts;
  Opts.MaxDepth = 3000;
  Interp I(R->G, nullptr, Opts);
  std::string Long(2000, 'x');
  EXPECT_TRUE(I.parse(ByteSpan::of(Long)));
  std::string TooLong(4000, 'x');
  auto T = I.parse(ByteSpan::of(TooLong));
  ASSERT_FALSE(T);
  EXPECT_NE(T.message().find("depth"), std::string::npos);
}

TEST(EngineProperty, OverlappingIntervalsAreIndependent) {
  // Two-pass parsing: the same region is parsed by two different rules.
  auto R = loadGrammar(R"(
    S -> First[0, EOI] Second[0, EOI] ;
    First -> "ab"[0, 2] ;
    Second -> "a"[0, 1] raw[1, EOI] ;
  )");
  ASSERT_TRUE(R) << R.message();
  Interp I(R->G);
  EXPECT_TRUE(I.parse(ByteSpan::of(std::string_view("abcd"))));
  EXPECT_FALSE(I.parse(ByteSpan::of(std::string_view("xbcd"))));
}

TEST(EngineProperty, AttributesFlowOnlyForward) {
  // A reference to an attribute of a *later* term is resolved by the
  // topological reorder, not by the textual position.
  auto R = loadGrammar(R"(
    S -> "pad"[0, B.k] B[3, 6] ;
    B -> raw[0, 3] {k = u8(0) - 97 + 3} ;
  )");
  ASSERT_TRUE(R) << R.message();
  Interp I(R->G);
  // B parses [3,6) = "abc"; B.k = 'a' - 97 + 3 = 3; "pad" must fit [0,3).
  EXPECT_TRUE(I.parse(ByteSpan::of(std::string_view("padabc"))));
  // With 'b' at offset 3, B.k = 4 and "pad"[0,4) still matches a prefix.
  EXPECT_TRUE(I.parse(ByteSpan::of(std::string_view("padbbc"))));
}

TEST(EngineProperty, EmptyInputHandledEverywhere) {
  for (const FormatInfo &F : allFormats()) {
    auto R = loadGrammar(F.GrammarText);
    ASSERT_TRUE(R) << R.message();
    BlackboxRegistry BB = standardBlackboxes();
    Interp I(R->G, F.NeedsBlackbox ? &BB : nullptr);
    auto T = I.parse(ByteSpan());
    EXPECT_FALSE(T) << F.Name << " accepted empty input";
  }
}
