//===- tests/termination_test.cpp - Section 5 termination checking --------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/AttributeCheck.h"
#include "analysis/Termination.h"
#include "runtime/Interp.h"

#include <gtest/gtest.h>
#include <string>
#include <string_view>

using namespace ipg;

namespace {

TerminationReport report(const char *Src) {
  auto R = loadGrammar(Src);
  EXPECT_TRUE(R) << R.message();
  if (!R)
    std::abort();
  return checkTermination(R->G);
}

} // namespace

TEST(TerminationTest, StraightLineGrammarTerminates) {
  TerminationReport Rep = report(R"(
    S -> H[0, 8] Data[H.offset, EOI] ;
    H -> {offset = u32le(0)} ;
    Data -> raw ;
  )");
  EXPECT_TRUE(Rep.Terminates);
  EXPECT_EQ(Rep.NumCycles, 0u);
}

TEST(TerminationTest, BinaryNumberGrammarTerminates) {
  // Figure 3: the left recursion Int -> Int[0, EOI-1] shrinks its interval,
  // so the formula 0 = 0 /\ EOI - 1 = EOI is unsatisfiable.
  TerminationReport Rep = report(R"(
    Int -> Int[0, EOI - 1] Digit[EOI - 1, EOI] {val = 2 * Int.val + Digit.val}
         / Digit[0, 1] {val = Digit.val} ;
    Digit -> "0"[0, 1] {val = 0} / "1"[0, 1] {val = 1} ;
  )");
  EXPECT_TRUE(Rep.Terminates);
  EXPECT_EQ(Rep.NumCycles, 1u);
}

TEST(TerminationTest, MutualFullIntervalLoopRejected) {
  // Section 5's example: A -> B[0,EOI] / s[0,1]; B -> A[0,EOI] / s[0,1]
  // iterates between A and B on the same interval.
  TerminationReport Rep = report(R"(
    A -> B[0, EOI] / "s"[0, 1] ;
    B -> A[0, EOI] / "s"[0, 1] ;
  )");
  EXPECT_FALSE(Rep.Terminates);
  EXPECT_EQ(Rep.NumCycles, 1u);
  ASSERT_EQ(Rep.FailingCycles.size(), 1u);
  EXPECT_NE(Rep.FailingCycles[0].find("A"), std::string::npos);
  EXPECT_NE(Rep.FailingCycles[0].find("B"), std::string::npos);
}

TEST(TerminationTest, RepeatingEpsilonRejected) {
  // Figure 11d: S -> ""[0,0] S[0,EOI] keeps the interval [0, EOI].
  TerminationReport Rep = report(R"(S -> ""[0, 0] S[0, EOI] ;)");
  EXPECT_FALSE(Rep.Terminates);
}

TEST(TerminationTest, SeekStyleJumpRejected) {
  // Figure 11b: S -> num[0,1] S[num.val, EOI]; num.val can be 0, so the
  // formula num.val = 0 /\ EOI = EOI is satisfiable.
  TerminationReport Rep = report(R"(
    S -> num[0, 1] S[num.val, EOI] / "$"[0, 1] ;
    num -> {val = u8(0)} ;
  )");
  EXPECT_FALSE(Rep.Terminates);
}

TEST(TerminationTest, ChunkListPassesWithEndExtension) {
  // The GIF pattern: Blocks -> Block Blocks[Block.end, EOI] / Block.
  // Block surely consumes (it starts with a magic byte), so the extension
  // adds Block.end > 0 and the cycle formula becomes unsatisfiable.
  TerminationReport Rep = report(R"(
    Blocks -> Block Blocks / Block ;
    Block -> "!"[0, 1] {len = u8(1)} raw[2, 2 + len] ;
  )");
  EXPECT_TRUE(Rep.Terminates)
      << (Rep.FailingCycles.empty() ? "" : Rep.FailingCycles[0]);
  EXPECT_EQ(Rep.NumCycles, 1u);
}

TEST(TerminationTest, ChunkListWithoutConsumingBlockRejected) {
  // Same shape but Block may consume nothing -> Block.end can be 0 and the
  // extension does not apply.
  TerminationReport Rep = report(R"(
    Blocks -> Block Blocks / Block ;
    Block -> {len = u8(0)} raw[1, 1 + len] ;
  )");
  EXPECT_FALSE(Rep.Terminates);
}

TEST(TerminationTest, AnBnCnTerminates) {
  TerminationReport Rep = report(R"(
    S -> check(EOI % 3 = 0) {n = EOI / 3} A[0, n] B[n, 2 * n] C[2 * n, 3 * n] ;
    A -> "a"[0, 1] A[1, EOI] / "a"[0, 1] ;
    B -> "b"[0, 1] B[1, EOI] / "b"[0, 1] ;
    C -> "c"[0, 1] C[1, EOI] / "c"[0, 1] ;
  )");
  EXPECT_TRUE(Rep.Terminates);
  EXPECT_EQ(Rep.NumCycles, 3u);
}

TEST(TerminationTest, BackwardNumberTerminates) {
  // bNum -> bNum[0, EOI-1] ... shrinks from the right.
  TerminationReport Rep = report(R"(
    bNum -> bNum[0, EOI - 1] Digit[EOI - 1, EOI] {v = bNum.v * 10 + Digit.v}
          / Digit[EOI - 1, EOI] {v = Digit.v} ;
    Digit -> "0"[0, 1] {v = 0} / "1"[0, 1] {v = 1} ;
  )");
  EXPECT_TRUE(Rep.Terminates);
}

TEST(TerminationTest, OffsetJumpWithPositiveGuardStillRejected) {
  // The checker is conservative: it does not model predicates, so even a
  // guarded jump is flagged (documented conservatism).
  TerminationReport Rep = report(R"(
    S -> num[0, 1] check(num.val > 0) S[num.val, EOI] / "$"[0, 1] ;
    num -> {val = u8(0)} ;
  )");
  EXPECT_FALSE(Rep.Terminates);
}

TEST(TerminationTest, CheckerAgreesWithRuntimeOnDivergence) {
  // For the grammars flagged above, the runtime's reentry guard indeed
  // fires; for the accepted ones, parsing completes. This ties Theorem 5.1
  // to observable behaviour.
  {
    auto R = loadGrammar(R"(S -> ""[0, 0] S[0, EOI] ;)");
    ASSERT_TRUE(R) << R.message();
    EXPECT_FALSE(checkTermination(R->G).Terminates);
    InterpOptions Opts;
    Opts.MaxDepth = 50;
    Interp I(R->G, nullptr, Opts);
    auto P = I.parse(ByteSpan::of(std::string_view("xyz")));
    ASSERT_FALSE(P);
    EXPECT_NE(P.message().find("depth"), std::string::npos);
  }
  {
    auto R = loadGrammar(R"(
      Int -> Int[0, EOI - 1] Digit[EOI - 1, EOI] {val = 2 * Int.val + Digit.val}
           / Digit[0, 1] {val = Digit.val} ;
      Digit -> "0"[0, 1] {val = 0} / "1"[0, 1] {val = 1} ;
    )");
    ASSERT_TRUE(R) << R.message();
    EXPECT_TRUE(checkTermination(R->G).Terminates);
    Interp I(R->G);
    EXPECT_TRUE(I.parse(ByteSpan::of(std::string_view("1100"))));
  }
}

TEST(TerminationTest, ArraysDoNotCreateFalseCycles) {
  TerminationReport Rep = report(R"(
    S -> {n = u8(0)} for i = 0 to n do Row[1 + 4 * i, 1 + 4 * (i + 1)] ;
    Row -> raw[0, 4] ;
  )");
  EXPECT_TRUE(Rep.Terminates);
  EXPECT_EQ(Rep.NumCycles, 0u);
}

TEST(TerminationTest, LocalRulesParticipateInGraph) {
  // A local rule that re-enters its parent on the full interval is a cycle.
  TerminationReport Rep = report(R"(
    S -> D[0, EOI] where { D -> S[0, EOI] ; }
       / "x"[0, 1] ;
  )");
  EXPECT_FALSE(Rep.Terminates);
}
