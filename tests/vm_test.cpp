//===- tests/vm_test.cpp - lowered-IR invariants & bytecode VM tests ------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locks the invariants of the lowering layer (lower/LIR.h) that all
/// three engines rely on, directly on the lir::Module — operand
/// resolution for checked grammars, literal interning, the dense
/// name-table contract, exists-scan resolution, blackbox site
/// deduplication, memoization policy — plus the well-formedness of every
/// compiled expression program (forward-only jumps, in-bounds targets,
/// stack balance via lir::verify). The big-corpus equivalence of the
/// bytecode VM itself is differential_test.cpp's job; this file adds
/// targeted interpreter-vs-VM spot checks on the semantic corners the
/// expression bytecode compiles specially (short-circuit logic,
/// conditionals, exists-scans, guarded arithmetic).
///
//===----------------------------------------------------------------------===//

#include "lower/LIR.h"

#include "TreeCanonical.h"
#include "formats/FormatRegistry.h"
#include "grammar/Grammar.h"
#include "runtime/Engine.h"

#include <gtest/gtest.h>
#include <set>
#include <string>
#include <vector>

using namespace ipg;

namespace {

Grammar load(const char *Src) {
  auto R = loadGrammar(Src);
  EXPECT_TRUE(R) << R.message();
  if (!R)
    std::abort();
  return std::move(R->G);
}

bool isBranch(lir::XOp Op) {
  return Op == lir::XOp::BrFalse || Op == lir::XOp::BrTrue ||
         Op == lir::XOp::JmpZero || Op == lir::XOp::Jmp;
}

/// Structural well-formedness of one compiled program beyond what
/// lir::verify reports: every jump is strictly forward and lands inside
/// (or exactly at the end of) the program window.
void expectWellFormedJumps(const lir::Module &M, lir::ExprId Id) {
  const lir::ExprProgram &P = M.Exprs[Id];
  ASSERT_LE(P.Begin, P.End);
  ASSERT_LE(P.End, M.XCode.size());
  const uint32_t N = P.End - P.Begin;
  ASSERT_GT(N, 0u) << "empty expression program";
  EXPECT_GE(P.MaxStack, 1u) << "every program leaves one value";
  EXPECT_LE(P.MaxStack, N) << "stack high-water mark exceeds length";
  for (uint32_t I = 0; I < N; ++I) {
    const lir::XInstr &X = M.XCode[P.Begin + I];
    if (!isBranch(X.Op))
      continue;
    EXPECT_GT(X.A, I) << "backward or self jump at pc " << I;
    EXPECT_LE(X.A, N) << "jump past program end at pc " << I;
  }
}

/// Walks every expression the module references (intervals, term
/// operands, select arms, exists sub-programs) and checks its jumps.
void expectAllProgramsWellFormed(const lir::Module &M) {
  for (lir::ExprId Id = 0; Id < M.Exprs.size(); ++Id) {
    SCOPED_TRACE("expr " + std::to_string(Id));
    expectWellFormedJumps(M, Id);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Every format grammar lowers to a module lir::verify accepts, with the
// name-table contract (start = 0, end = 1, densely deduplicated) intact.
//===----------------------------------------------------------------------===//

TEST(LirTest, AllFormatModulesVerify) {
  for (const formats::FormatInfo &FI : formats::allFormats()) {
    SCOPED_TRACE("format: " + FI.Name);
    auto Load = formats::loadFormatGrammar(FI.Name);
    ASSERT_TRUE(Load) << Load.message();
    const Grammar &G = Load->G;
    lir::Module M = lir::lower(G);

    EXPECT_EQ(lir::verify(M), "");
    EXPECT_NE(M.Start, InvalidRuleId);
    EXPECT_EQ(M.Rules.size(), G.numRules());

    // The ipg_rt::IdStart/IdEnd contract.
    ASSERT_GE(M.NameTable.size(), 2u);
    EXPECT_EQ(M.NameTable[0], G.symStart());
    EXPECT_EQ(M.NameTable[1], G.symEnd());
    // Dense and deduplicated, with a consistent reverse map.
    std::set<Symbol> Seen;
    for (uint32_t Id = 0; Id < M.NameTable.size(); ++Id) {
      EXPECT_TRUE(Seen.insert(M.NameTable[Id]).second)
          << "duplicate name-table entry " << Id;
      EXPECT_EQ(M.nameIdOf(M.NameTable[Id]), Id);
    }

    expectAllProgramsWellFormed(M);

    // Blackbox call sites are collected and deduplicated: zip's grammar
    // calls `inflate` from more than one place but owns exactly one site.
    if (FI.Name == "zip") {
      ASSERT_EQ(M.BbSites.size(), 1u);
      EXPECT_EQ(M.BbSites[0].NameStr, "inflate");
      EXPECT_EQ(M.NameTable[M.BbSites[0].NameId], M.BbSites[0].Name);
    } else {
      EXPECT_TRUE(M.BbSites.empty());
    }

    // The memoization policy: local (where-clause) rules never memoize.
    for (const lir::RuleL &R : M.Rules)
      if (R.IsLocal) {
        EXPECT_FALSE(R.Memoizable)
            << "local rule " << M.nameOf(R.Name) << " marked memoizable";
      }
  }
}

//===----------------------------------------------------------------------===//
// Operand resolution on a checked grammar: every lowered term carries
// resolved rule targets, completed intervals, interned literals, and
// resolved select-arm windows — engines never consult the source AST for
// any of these.
//===----------------------------------------------------------------------===//

namespace {

/// One grammar exercising seven of the eight term opcodes (CallBlackbox
/// is covered by the zip module above): rule calls, literal and raw
/// matches, attribute definitions, predicates, arrays, and a switch.
const char *AllTermsGrammar = R"(
  S -> "ab"[0, 2] H[2, 6] {k = u8(6)}
       switch(k = 1: P[7, 9]
            / k = 2: Q[7, 9])
       for i = 0 to H.n do A[9 + 2 * i, 9 + 2 * (i + 1)]
       check(H.n < 100)
       raw[9 + 2 * H.n, EOI] ;
  H -> {n = u32le(0)} ;
  P -> "ab"[0, 2] ;
  Q -> "cd"[0, 2] ;
  A -> {v = u16le(0)} ;
)";

const lir::TermL *findOp(const lir::Module &M, lir::TermOp Op) {
  for (const lir::RuleL &R : M.Rules)
    for (const lir::AltL &Alt : R.Alts)
      for (const lir::TermL &T : Alt.Exec)
        if (T.Op == Op)
          return &T;
  return nullptr;
}

} // namespace

TEST(LirTest, OperandsResolvedOnCheckedGrammar) {
  Grammar G = load(AllTermsGrammar);
  lir::Module M = lir::lower(G);
  EXPECT_EQ(lir::verify(M), "");
  expectAllProgramsWellFormed(M);

  const lir::TermL *Call = findOp(M, lir::TermOp::CallRule);
  ASSERT_NE(Call, nullptr);
  EXPECT_NE(Call->Rule, InvalidRuleId);
  EXPECT_NE(Call->Iv.Lo, lir::NoExpr);
  EXPECT_NE(Call->Iv.Hi, lir::NoExpr);

  const lir::TermL *Match = findOp(M, lir::TermOp::MatchBytes);
  ASSERT_NE(Match, nullptr);
  ASSERT_LT(Match->Lit, M.Lits.size());
  EXPECT_EQ(M.Lits[Match->Lit], "ab");

  const lir::TermL *Raw = findOp(M, lir::TermOp::MatchRaw);
  ASSERT_NE(Raw, nullptr);
  EXPECT_NE(Raw->Iv.Lo, lir::NoExpr);
  EXPECT_NE(Raw->Iv.Hi, lir::NoExpr);

  const lir::TermL *Set = findOp(M, lir::TermOp::SetAttr);
  ASSERT_NE(Set, nullptr);
  EXPECT_NE(Set->Sym, InvalidSymbol);
  EXPECT_NE(Set->E0, lir::NoExpr);

  const lir::TermL *Chk = findOp(M, lir::TermOp::Check);
  ASSERT_NE(Chk, nullptr);
  EXPECT_NE(Chk->E0, lir::NoExpr);

  const lir::TermL *Arr = findOp(M, lir::TermOp::ForArray);
  ASSERT_NE(Arr, nullptr);
  EXPECT_NE(Arr->Rule, InvalidRuleId);
  EXPECT_EQ(Arr->Sym, G.interner().intern("i"));
  EXPECT_EQ(Arr->Elem, G.interner().intern("A"));
  EXPECT_NE(Arr->E0, lir::NoExpr);
  EXPECT_NE(Arr->E1, lir::NoExpr);

  const lir::TermL *Sel = findOp(M, lir::TermOp::Select);
  ASSERT_NE(Sel, nullptr);
  ASSERT_LT(Sel->ArmsBegin, Sel->ArmsEnd);
  ASSERT_LE(Sel->ArmsEnd, M.Arms.size());
  EXPECT_EQ(Sel->ArmsEnd - Sel->ArmsBegin, 2u);
  for (uint32_t I = Sel->ArmsBegin; I != Sel->ArmsEnd; ++I) {
    const lir::ArmL &Arm = M.Arms[I];
    EXPECT_NE(Arm.Cond, lir::NoExpr); // no default arm in this grammar
    EXPECT_NE(Arm.Rule, InvalidRuleId);
    EXPECT_NE(Arm.Iv.Lo, lir::NoExpr);
    EXPECT_NE(Arm.Iv.Hi, lir::NoExpr);
  }
}

TEST(LirTest, LiteralsAreInterned) {
  // "ab" appears three times across two rules, "cd" once: two entries.
  Grammar G = load(R"(
    S -> "ab"[0, 2] "ab"[2, 4] T[4, EOI] ;
    T -> "ab"[0, 2] / "cd"[0, 2] ;
  )");
  lir::Module M = lir::lower(G);
  EXPECT_EQ(lir::verify(M), "");
  ASSERT_EQ(M.Lits.size(), 2u);
  EXPECT_EQ(M.Lits[0], "ab");
  EXPECT_EQ(M.Lits[1], "cd");
}

TEST(LirTest, ExistsScansAreResolved) {
  // Section 4.3's two-pass pattern: the exists compiles to an ExistsInfo
  // whose scanned array was identified statically.
  Grammar G = load(R"(
    S -> {n = u8(0)}
         for i = 0 to n do OH[1 + 3 * i, 1 + 3 * (i + 1)]
         for i = 0 to n do Obj[OH(i).ofs,
                               OH(i).ofs + (exists j . OH(j).link = i
                                              ? OH(j).len : 0 - 1)] ;
    OH -> {link = u8(0)} {len = u8(1)} {ofs = u8(2)} ;
    Obj -> "OB"[0, 2] ;
  )");
  lir::Module M = lir::lower(G);
  EXPECT_EQ(lir::verify(M), "");
  ASSERT_EQ(M.Exists.size(), 1u);
  const lir::ExistsInfo &E = M.Exists[0];
  EXPECT_EQ(E.LoopVar, G.interner().intern("j"));
  EXPECT_EQ(E.ArrayNT, G.interner().intern("OH"));
  EXPECT_NE(E.Cond, lir::NoExpr);
  EXPECT_NE(E.Then, lir::NoExpr);
  EXPECT_NE(E.Else, lir::NoExpr);
}

//===----------------------------------------------------------------------===//
// Interpreter-vs-VM spot checks on the corners the expression bytecode
// compiles specially. The format-corpus equivalence lives in
// differential_test.cpp; these stay small and targeted so a divergence
// points straight at one construct.
//===----------------------------------------------------------------------===//

namespace {

/// Parses \p In with both in-process engines and expects identical
/// verdicts; on acceptance, identical canonical trees and counters.
void expectVmAgrees(const char *Src, const std::vector<uint8_t> &In) {
  Grammar G = load(Src);
  auto IE = makeEngine(EngineKind::Interp, G);
  ASSERT_TRUE(IE) << IE.message();
  auto VE = makeEngine(EngineKind::Vm, G);
  ASSERT_TRUE(VE) << VE.message();
  auto RI = (*IE)->parse(ByteSpan::of(In));
  auto RV = (*VE)->parse(ByteSpan::of(In));
  ASSERT_EQ(static_cast<bool>(RI), static_cast<bool>(RV))
      << "verdicts diverge; interp: "
      << (RI ? "accept" : RI.message())
      << ", vm: " << (RV ? "accept" : RV.message());
  if (RI && RV) {
    EXPECT_EQ(testutil::renderCanonical(*RI, G),
              testutil::renderCanonical(*RV, G));
  } else {
    EXPECT_EQ(RI.message(), RV.message());
  }
  EXPECT_EQ((*IE)->stats().TermsExecuted, (*VE)->stats().TermsExecuted);
  EXPECT_EQ((*IE)->stats().NodesCreated, (*VE)->stats().NodesCreated);
}

std::vector<uint8_t> bytes(const char *S) {
  return std::vector<uint8_t>(S, S + std::string(S).size());
}

} // namespace

TEST(VmTest, ShortCircuitLogicAgrees) {
  // && and || compile to BrFalse/BrTrue forward jumps; the right-hand
  // sides contain partial reads that must NOT be evaluated when the
  // short-circuit takes the jump (u8(9) is out of bounds here).
  const char *Src = R"(
    S -> "x"[0, 1] {a = u8(0)}
         check(a = 120 || u8(9) = 1)
         check(a = 0 && u8(9) = 1 || 1) ;
  )";
  expectVmAgrees(Src, bytes("x"));
}

TEST(VmTest, ConditionalAndComparisonsAgree) {
  const char *Src = R"(
    S -> {a = u8(0)} {b = (a > 100 ? a - 100 : a + 100)}
         {c = (a = 120 ? 1 : 0)} {d = (a != 7 ? 2 : 3)}
         check(b = 20 && c = 1 && d = 2) "x"[0, 1] ;
  )";
  expectVmAgrees(Src, bytes("x"));
}

TEST(VmTest, GuardedArithmeticFailsIdentically) {
  // Division by zero is partiality: alternative 1 must fail cleanly and
  // alternative 2 accept, in both engines.
  const char *Src = R"(
    S -> "x"[0, 1] {z = u8(0) - 120} {v = 7 / z} check(v = v)
       / "x"[0, 1] {ok = 1} ;
  )";
  expectVmAgrees(Src, bytes("x"));
}

TEST(VmTest, ShiftRangeGuardAgrees) {
  // 1 << 62 is the last legal shift; << 63 must fail as partiality.
  const char *Src = R"(
    S -> "x"[0, 1] {a = 1 << 62} {b = a * 2 * 2} check(b = 0)
       / "x"[0, 1] {hi = 1 << 62} ;
  )";
  expectVmAgrees(Src, bytes("x"));
}

TEST(VmTest, ExistsScanAgrees) {
  Grammar G = load(R"(
    S -> {n = u8(0)}
         for i = 0 to n do OH[1 + 3 * i, 1 + 3 * (i + 1)]
         for i = 0 to n do Obj[OH(i).ofs,
                               OH(i).ofs + (exists j . OH(j).link = i
                                              ? OH(j).len : 0 - 1)] ;
    OH -> {link = u8(0)} {len = u8(1)} {ofs = u8(2)} ;
    Obj -> "OB"[0, 2] ;
  )");
  std::vector<uint8_t> In = {2, 1, 2, 7, 0, 2, 9,
                             'O', 'B', 'O', 'B'};
  auto IE = makeEngine(EngineKind::Interp, G);
  auto VE = makeEngine(EngineKind::Vm, G);
  ASSERT_TRUE(IE);
  ASSERT_TRUE(VE) << VE.message();
  auto RI = (*IE)->parse(ByteSpan::of(In));
  auto RV = (*VE)->parse(ByteSpan::of(In));
  ASSERT_TRUE(RI) << RI.message();
  ASSERT_TRUE(RV) << RV.message();
  EXPECT_EQ(testutil::renderCanonical(*RI, G),
            testutil::renderCanonical(*RV, G));

  // The else-edge: no header links to object 0 when the link bytes are
  // damaged; [ofs, ofs - 1) is an invalid interval, so both reject.
  std::vector<uint8_t> Bad = In;
  Bad[1] = 9;
  Bad[4] = 9;
  EXPECT_FALSE((*IE)->parse(ByteSpan::of(Bad)));
  EXPECT_FALSE((*VE)->parse(ByteSpan::of(Bad)));
}

TEST(VmTest, BtoiReadsAgree) {
  // ReadFixed (u8/u16le/u32le) and ReadRange (btoi over a computed
  // window) including the failure edge one byte past the input.
  const char *Src = R"(
    S -> {a = u8(0)} {b = u16le(1)} {c = u32le(3)}
         {w = btoi(0, 2)} {x = btoi(a - a, 1 + 1)}
         check(w = x) raw[7, EOI]
       / {oops = u8(100)} ;
  )";
  std::vector<uint8_t> In = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  expectVmAgrees(Src, In);
}
