//===- tests/support_test.cpp - support library tests ---------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Bytes.h"
#include "support/Interner.h"
#include "support/Rational.h"
#include "support/Result.h"

#include <cstdint>
#include <gtest/gtest.h>
#include <string_view>
#include <vector>

using namespace ipg;

TEST(ByteSpanTest, BasicAccess) {
  std::vector<uint8_t> Buf = {1, 2, 3, 4, 5};
  ByteSpan S = ByteSpan::of(Buf);
  EXPECT_EQ(S.size(), 5u);
  EXPECT_EQ(S[0], 1);
  EXPECT_EQ(S[4], 5);
  EXPECT_EQ(S.absBase(), 0u);
}

TEST(ByteSpanTest, SliceTracksAbsoluteBase) {
  std::vector<uint8_t> Buf = {1, 2, 3, 4, 5, 6, 7, 8};
  ByteSpan S = ByteSpan::of(Buf);
  ByteSpan Sub = S.slice(2, 6);
  EXPECT_EQ(Sub.size(), 4u);
  EXPECT_EQ(Sub.absBase(), 2u);
  EXPECT_EQ(Sub[0], 3);
  ByteSpan SubSub = Sub.slice(1, 3);
  EXPECT_EQ(SubSub.absBase(), 3u);
  EXPECT_EQ(SubSub.size(), 2u);
  EXPECT_EQ(SubSub[0], 4);
}

TEST(ByteSpanTest, EmptySliceIsValid) {
  std::vector<uint8_t> Buf = {1, 2, 3};
  ByteSpan S = ByteSpan::of(Buf);
  ByteSpan E = S.slice(1, 1);
  EXPECT_TRUE(E.empty());
  EXPECT_EQ(E.absBase(), 1u);
}

TEST(ByteSpanTest, MatchesAt) {
  ByteSpan S = ByteSpan::of(std::string_view("hello world"));
  EXPECT_TRUE(S.matchesAt(0, "hello"));
  EXPECT_TRUE(S.matchesAt(6, "world"));
  EXPECT_FALSE(S.matchesAt(6, "worlds")); // runs past the end
  EXPECT_TRUE(S.matchesAt(11, ""));       // empty match at EOI
  EXPECT_FALSE(S.matchesAt(12, ""));      // past EOI
}

TEST(ByteSpanTest, ReadUnsignedLittleAndBig) {
  std::vector<uint8_t> Buf = {0x78, 0x56, 0x34, 0x12};
  ByteSpan S = ByteSpan::of(Buf);
  EXPECT_EQ(S.readUnsigned(0, 4, Endian::Little), 0x12345678u);
  EXPECT_EQ(S.readUnsigned(0, 4, Endian::Big), 0x78563412u);
  EXPECT_EQ(S.readUnsigned(1, 2, Endian::Little), 0x3456u);
  EXPECT_EQ(S.readUnsigned(3, 1, Endian::Little), 0x12u);
}

TEST(ByteWriterTest, RoundTripsIntegers) {
  ByteWriter W;
  W.u32le(0xdeadbeef);
  W.u16be(0x1234);
  W.u8(0x7f);
  ByteSpan S = ByteSpan::of(W.bytes());
  EXPECT_EQ(S.readUnsigned(0, 4, Endian::Little), 0xdeadbeefu);
  EXPECT_EQ(S.readUnsigned(4, 2, Endian::Big), 0x1234u);
  EXPECT_EQ(S.readUnsigned(6, 1, Endian::Little), 0x7fu);
}

TEST(ByteWriterTest, PatchBack) {
  ByteWriter W;
  W.u32le(0); // placeholder
  W.raw("payload");
  W.patchUnsigned(0, W.size(), 4, Endian::Little);
  ByteSpan S = ByteSpan::of(W.bytes());
  EXPECT_EQ(S.readUnsigned(0, 4, Endian::Little), W.size());
}

TEST(InternerTest, InternIsIdempotent) {
  StringInterner In;
  Symbol A = In.intern("alpha");
  Symbol B = In.intern("beta");
  EXPECT_NE(A, B);
  EXPECT_EQ(In.intern("alpha"), A);
  EXPECT_EQ(In.name(A), "alpha");
  EXPECT_EQ(In.lookup("beta"), B);
  EXPECT_EQ(In.lookup("gamma"), InvalidSymbol);
}

TEST(InternerTest, InvalidSymbolReserved) {
  StringInterner In;
  EXPECT_NE(In.intern("x"), InvalidSymbol);
}

TEST(RationalTest, NormalizesSignAndGcd) {
  Rational R(6, -4);
  EXPECT_EQ(R.num(), -3);
  EXPECT_EQ(R.den(), 2);
  EXPECT_TRUE(R.isNegative());
}

TEST(RationalTest, Arithmetic) {
  Rational Half(1, 2), Third(1, 3);
  EXPECT_EQ((Half + Third), Rational(5, 6));
  EXPECT_EQ((Half - Third), Rational(1, 6));
  EXPECT_EQ((Half * Third), Rational(1, 6));
  EXPECT_EQ((Half / Third), Rational(3, 2));
  EXPECT_EQ(-Half, Rational(-1, 2));
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(0), Rational(-1, 7));
  EXPECT_EQ(Rational(4, 2), Rational(2));
}

TEST(ResultTest, ErrorAndExpected) {
  Error Ok = Error::success();
  EXPECT_FALSE(Ok);
  Error Bad = Error::failure("something broke");
  EXPECT_TRUE(Bad);
  EXPECT_EQ(Bad.message(), "something broke");

  Expected<int> V(42);
  ASSERT_TRUE(V);
  EXPECT_EQ(*V, 42);
  Expected<int> E = Expected<int>::failure("nope");
  ASSERT_FALSE(E);
  EXPECT_EQ(E.message(), "nope");
  EXPECT_TRUE(E.takeError());
  EXPECT_FALSE(V.takeError());
}
