//===- tests/arena_test.cpp - arena, tree store, flat hash ----------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lifetime and reuse rules of the runtime's memory layer: Arena pointer
/// stability across block growth and reset/reuse semantics, TreeStore node
/// stability and recycling through Interp, zero-copy leaf aliasing, and
/// the FlatIntervalMap's collision and tombstone behavior under adversarial
/// interval patterns.
///
//===----------------------------------------------------------------------===//

#include "analysis/AttributeCheck.h"
#include "runtime/Interp.h"
#include "support/Arena.h"
#include "support/Casting.h"
#include "support/FlatHash.h"

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

using namespace ipg;

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

TEST(ArenaLifetime, PointersStableAcrossGrowth) {
  // Start with a tiny first block so the loop forces many growths; every
  // previously returned pointer must keep its value.
  Arena A(16);
  std::vector<uint64_t *> Ptrs;
  for (uint64_t I = 0; I < 4096; ++I)
    Ptrs.push_back(A.make<uint64_t>(I));
  for (uint64_t I = 0; I < Ptrs.size(); ++I)
    EXPECT_EQ(*Ptrs[I], I);
}

TEST(ArenaLifetime, ResetKeepsBlocksAndReusesThem) {
  Arena A(64);
  for (int I = 0; I < 1000; ++I)
    A.make<uint64_t>(I);
  size_t Reserved = A.bytesReserved();
  ASSERT_GT(Reserved, 0u);
  A.reset();
  EXPECT_EQ(A.bytesAllocated(), 0u);
  EXPECT_EQ(A.bytesReserved(), Reserved);
  // Refilling to the same level must not grow the reservation.
  for (int I = 0; I < 1000; ++I)
    A.make<uint64_t>(I);
  EXPECT_EQ(A.bytesReserved(), Reserved);
}

TEST(ArenaLifetime, AlignmentHonored) {
  Arena A(32);
  A.allocate(1, 1);
  void *P = A.allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 8, 0u);
  A.allocate(3, 1);
  struct alignas(32) Wide { char C[32]; };
  Wide *W = A.make<Wide>();
  EXPECT_EQ(reinterpret_cast<uintptr_t>(W) % 32, 0u);
}

TEST(ArenaLifetime, CopyArrayAndBytes) {
  Arena A;
  const uint32_t Src[] = {1, 2, 3, 4};
  const uint32_t *Copy = A.copyArray(Src, 4);
  ASSERT_NE(Copy, nullptr);
  EXPECT_NE(Copy, Src);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Copy[I], Src[I]);
  EXPECT_EQ(A.copyArray(Src, 0), nullptr);
  const uint8_t *B = A.copyBytes("xyz", 3);
  EXPECT_EQ(std::string_view(reinterpret_cast<const char *>(B), 3), "xyz");
}

//===----------------------------------------------------------------------===//
// TreeStore
//===----------------------------------------------------------------------===//

namespace {

Grammar loadOrDie(const char *Src) {
  auto R = loadGrammar(Src);
  EXPECT_TRUE(R) << R.message();
  if (!R)
    std::abort();
  return std::move(R->G);
}

} // namespace

TEST(TreeStoreTest, NodesStableAcrossGrowth) {
  TreeStore Store;
  Env E;
  E.set(/*Symbol=*/1, 42);
  std::vector<const ParseTree *> Made;
  for (int I = 0; I < 2000; ++I) {
    uint32_t Id = Store.makeNode(/*Name=*/7, /*Rule=*/0, E, nullptr,
                                 nullptr, 0);
    EXPECT_EQ(Id, static_cast<uint32_t>(I));
    Made.push_back(Store.node(Id));
  }
  // Ids resolve to the same objects after heavy growth, and the frozen
  // env survived.
  for (int I = 0; I < 2000; ++I) {
    const auto *N = cast<NodeTree>(Store.node(static_cast<uint32_t>(I)));
    EXPECT_EQ(N, Made[static_cast<size_t>(I)]);
    EXPECT_EQ(N->attr(1), 42);
  }
}

TEST(TreeStoreTest, ResetReusesMemory) {
  TreeStore Store;
  Env E;
  E.set(1, 5);
  for (int I = 0; I < 500; ++I)
    Store.makeNode(3, 0, E, nullptr, nullptr, 0);
  size_t Reserved = Store.arenaBytesReserved();
  Store.reset();
  EXPECT_EQ(Store.nodeCount(), 0u);
  for (int I = 0; I < 500; ++I)
    Store.makeNode(3, 0, E, nullptr, nullptr, 0);
  EXPECT_EQ(Store.arenaBytesReserved(), Reserved);
}

TEST(TreeStoreTest, ShiftedNodeSharesChildrenAndShiftsOnlyStartEnd) {
  TreeStore Store;
  const Symbol SymStart = 100, SymEnd = 101, SymOther = 102;
  uint32_t Leaf = Store.makeLeafCopy("ab", 2, 0);
  uint32_t Kids[1] = {Leaf};
  uint32_t Terms[1] = {0};
  Env E;
  E.set(SymStart, 1);
  E.set(SymEnd, 3);
  E.set(SymOther, 9);
  uint32_t Base = Store.makeNode(5, 0, E, Kids, Terms, 1);
  const auto *N = cast<NodeTree>(Store.node(Base));
  uint32_t Shifted = Store.makeShifted(Base, 10, SymStart, SymEnd);
  ASSERT_NE(Shifted, Base);
  const auto *S = cast<NodeTree>(Store.node(Shifted));
  EXPECT_EQ(S->attr(SymStart), 11);
  EXPECT_EQ(S->attr(SymEnd), 13);
  EXPECT_EQ(S->attr(SymOther), 9);
  // The child list is shared, not copied: same object behind both.
  ASSERT_EQ(S->children().size(), 1u);
  EXPECT_EQ(S->children()[0].get(), N->children()[0].get());
  // The original is untouched (memoized nodes are shared across parents).
  EXPECT_EQ(N->attr(SymStart), 1);
  // Iterating the view's env resolves the lazy shift too — the canonical
  // dump path reads environments this way.
  bool SawStart = false;
  for (EnvSlot Slot : S->env())
    if (Slot.Key == SymStart) {
      SawStart = true;
      EXPECT_EQ(Slot.Value, 11);
    }
  EXPECT_TRUE(SawStart);
}

TEST(TreeStoreTest, ShiftedViewsNestAndAliasWithoutCopying) {
  TreeStore Store;
  const Symbol SymStart = 100, SymEnd = 101;
  Env E;
  E.set(SymStart, 1);
  E.set(SymEnd, 3);
  uint32_t Base = Store.makeNode(5, 0, E, nullptr, nullptr, 0);
  const auto *N = cast<NodeTree>(Store.node(Base));

  // A zero delta needs no view object at all: the base is its own view.
  EXPECT_EQ(Store.makeShifted(Base, 0, SymStart, SymEnd), Base);

  // Aliasing: many parents re-anchor one memoized node at different
  // offsets; each view resolves independently, the base never changes.
  uint32_t AtFiveId = Store.makeShifted(Base, 5, SymStart, SymEnd);
  const auto *AtFive = cast<NodeTree>(Store.node(AtFiveId));
  const auto *AtNine = cast<NodeTree>(
      Store.node(Store.makeShifted(Base, 9, SymStart, SymEnd)));
  EXPECT_EQ(AtFive->attr(SymStart), 6);
  EXPECT_EQ(AtNine->attr(SymStart), 10);
  EXPECT_EQ(N->attr(SymStart), 1);

  // Deep nesting: a view whose base is itself a shifted view composes
  // the deltas (lazily — no env is ever copied).
  const auto *Nested = cast<NodeTree>(
      Store.node(Store.makeShifted(AtFiveId, 100, SymStart, SymEnd)));
  EXPECT_EQ(Nested->attr(SymStart), 106);
  EXPECT_EQ(Nested->attr(SymEnd), 108);

  // env().get and iteration agree on the resolved values.
  for (EnvSlot Slot : Nested->env()) {
    if (Slot.Key == SymStart) {
      EXPECT_EQ(Slot.Value, 106);
    }
    if (Slot.Key == SymEnd) {
      EXPECT_EQ(Slot.Value, 108);
    }
  }
}

TEST(TreeStoreTest, ComposedShiftChainsResolveAtDepthThreePlus) {
  TreeStore Store;
  const Symbol SymStart = 100, SymEnd = 101, SymOther = 102;
  Env E;
  E.set(SymStart, 4);
  E.set(SymEnd, 7);
  E.set(SymOther, -2);
  uint32_t Base = Store.makeNode(5, 0, E, nullptr, nullptr, 0);

  // A four-level chain with mixed-sign deltas: each level is a view of
  // the PREVIOUS VIEW (not of the base), and every read resolves the
  // whole composition lazily — no env is copied at any level.
  uint32_t V1 = Store.makeShifted(Base, 10, SymStart, SymEnd);
  uint32_t V2 = Store.makeShifted(V1, -3, SymStart, SymEnd);
  uint32_t V3 = Store.makeShifted(V2, 100, SymStart, SymEnd);
  uint32_t V4 = Store.makeShifted(V3, 1, SymStart, SymEnd);
  const auto *N4 = cast<NodeTree>(Store.node(V4));
  EXPECT_EQ(N4->attr(SymStart), 4 + 10 - 3 + 100 + 1);
  EXPECT_EQ(N4->attr(SymEnd), 7 + 10 - 3 + 100 + 1);
  EXPECT_EQ(N4->attr(SymOther), -2); // coordinate-free: never shifted

  // Intermediate levels read their own prefix of the chain; the base is
  // untouched (it may be memo-shared under other parents).
  EXPECT_EQ(cast<NodeTree>(Store.node(V2))->attr(SymStart), 11);
  EXPECT_EQ(cast<NodeTree>(Store.node(V3))->attr(SymStart), 111);
  EXPECT_EQ(cast<NodeTree>(Store.node(Base))->attr(SymStart), 4);

  // A zero-delta link collapses instead of deepening the chain.
  EXPECT_EQ(Store.makeShifted(V3, 0, SymStart, SymEnd), V3);

  // env() iteration — the canonical-dump and serializer read path —
  // composes identically to attr().
  for (EnvSlot Slot : N4->env()) {
    if (Slot.Key == SymStart) {
      EXPECT_EQ(Slot.Value, 112);
    }
    if (Slot.Key == SymEnd) {
      EXPECT_EQ(Slot.Value, 115);
    }
    if (Slot.Key == SymOther) {
      EXPECT_EQ(Slot.Value, -2);
    }
  }
}

//===----------------------------------------------------------------------===//
// Interp store recycling and tree lifetime
//===----------------------------------------------------------------------===//

namespace {
const char *TinyGrammar = R"(
  S -> "ab"[0, 2] {x = u8(2)} ;
)";
}

TEST(StoreRecycling, SteadyStateRecyclesWhenResultDropped) {
  Grammar G = loadOrDie(TinyGrammar);
  Interp I(G);
  std::vector<uint8_t> In = {'a', 'b', 7};
  {
    auto R1 = I.parse(ByteSpan::of(In));
    ASSERT_TRUE(R1) << R1.message();
    EXPECT_FALSE(I.stats().StoreRecycled); // first parse: fresh store
  }
  // R1 dropped: the store must be recycled, repeatedly.
  for (int K = 0; K < 3; ++K) {
    auto R = I.parse(ByteSpan::of(In));
    ASSERT_TRUE(R) << R.message();
    EXPECT_TRUE(I.stats().StoreRecycled);
  }
}

TEST(StoreRecycling, RecycledStoreSurvivesTreePtrMoves) {
  Grammar G = loadOrDie(TinyGrammar);
  Interp I(G);
  std::vector<uint8_t> In = {'a', 'b', 4};
  {
    auto R = I.parse(ByteSpan::of(In));
    ASSERT_TRUE(R) << R.message();
    // The engine moved its sole reference into *R; keep moving it. The
    // store must come back to the recycler EXACTLY once no matter how
    // many moved-from shells die along the way.
    TreePtr A = std::move(*R);
    TreePtr B(std::move(A));
    TreePtr C;
    C = std::move(B);
    EXPECT_EQ(A.get(), nullptr);
    EXPECT_EQ(B.get(), nullptr);
    EXPECT_EQ(cast<NodeTree>(C.get())->attr(G.intern("x")), 4);
  } // last live handle dies here
  // Both the park (above) and the re-park after reuse must work.
  for (int K = 0; K < 2; ++K) {
    auto R = I.parse(ByteSpan::of(In));
    ASSERT_TRUE(R) << R.message();
    EXPECT_TRUE(I.stats().StoreRecycled);
  }
}

TEST(StoreRecycling, MoveAssignOverLiveTreeReturnsTheOldStore) {
  Grammar G = loadOrDie(TinyGrammar);
  Interp I(G);
  std::vector<uint8_t> In = {'a', 'b', 1};
  auto R1 = I.parse(ByteSpan::of(In));
  ASSERT_TRUE(R1);
  TreePtr Held = std::move(*R1);
  auto R2 = I.parse(ByteSpan::of(In)); // Held alive -> fresh store
  ASSERT_TRUE(R2);
  EXPECT_FALSE(I.stats().StoreRecycled);
  // Move-assigning over a live tree drops the FIRST store's last
  // reference mid-assignment; it must park, and the handle must end up
  // owning the second store.
  Held = std::move(*R2);
  EXPECT_EQ(cast<NodeTree>(Held.get())->attr(G.intern("x")), 1);
  auto R3 = I.parse(ByteSpan::of(In));
  ASSERT_TRUE(R3);
  EXPECT_TRUE(I.stats().StoreRecycled);
}

TEST(StoreRecycling, HeldResultForcesFreshStoreAndStaysValid) {
  Grammar G = loadOrDie(TinyGrammar);
  Interp I(G);
  std::vector<uint8_t> In1 = {'a', 'b', 1};
  std::vector<uint8_t> In2 = {'a', 'b', 2};
  auto R1 = I.parse(ByteSpan::of(In1));
  ASSERT_TRUE(R1);
  auto R2 = I.parse(ByteSpan::of(In2));
  ASSERT_TRUE(R2);
  EXPECT_FALSE(I.stats().StoreRecycled); // R1 still alive
  // Both trees readable, with their own attribute values.
  EXPECT_EQ(cast<NodeTree>(R1->get())->attr(G.intern("x")), 1);
  EXPECT_EQ(cast<NodeTree>(R2->get())->attr(G.intern("x")), 2);
}

TEST(StoreRecycling, TreeOutlivesInterp) {
  Grammar G = loadOrDie(TinyGrammar);
  std::vector<uint8_t> In = {'a', 'b', 9};
  TreePtr Kept;
  {
    Interp I(G);
    auto R = I.parse(ByteSpan::of(In));
    ASSERT_TRUE(R);
    Kept = *R;
  }
  // The TreePtr shares ownership of the store; the engine is gone.
  EXPECT_EQ(cast<NodeTree>(Kept.get())->attr(G.intern("x")), 9);
}

TEST(ZeroCopy, TerminalLeavesAliasTheInputBuffer) {
  Grammar G = loadOrDie(R"(S -> "hello"[0, 5] raw[5, EOI] ;)");
  std::vector<uint8_t> In = {'h', 'e', 'l', 'l', 'o', 'X', 'Y'};
  Interp I(G);
  auto R = I.parse(ByteSpan::of(In));
  ASSERT_TRUE(R) << R.message();
  const auto *Root = cast<NodeTree>(R->get());
  ASSERT_EQ(Root->children().size(), 2u);
  const auto *Lit = cast<LeafTree>(Root->children()[0].get());
  const auto *Raw = cast<LeafTree>(Root->children()[1].get());
  // Zero-copy: leaf bytes point directly into the input vector.
  EXPECT_EQ(reinterpret_cast<const uint8_t *>(Lit->bytes().data()),
            In.data());
  EXPECT_EQ(Lit->bytes(), "hello");
  EXPECT_FALSE(Lit->isOpaque());
  EXPECT_TRUE(Raw->isOpaque());
  EXPECT_EQ(reinterpret_cast<const uint8_t *>(Raw->bytes().data()),
            In.data() + 5);
  EXPECT_EQ(Raw->length(), 2u);
}

//===----------------------------------------------------------------------===//
// FlatIntervalMap
//===----------------------------------------------------------------------===//

TEST(FlatHashTest, PackIsInjectiveOnEdgePatterns) {
  // Keys differing in exactly one component — including across the 16-bit
  // boundary the lo field is split at — must stay distinct.
  const uint64_t Big = (1ull << 48) - 1;
  std::vector<IntervalKey> Keys = {
      IntervalKey::pack(0, 0, 0),        IntervalKey::pack(1, 0, 0),
      IntervalKey::pack(0, 1, 0),        IntervalKey::pack(0, 0, 1),
      IntervalKey::pack(0, 1ull << 16, 0), IntervalKey::pack(0, Big, Big),
      IntervalKey::pack(~0u - 1, Big, 0), IntervalKey::pack(0, 0, Big),
      IntervalKey::pack(0, 0x1FFFF, 0),  IntervalKey::pack(0, 0xFFFF, 0),
  };
  for (size_t I = 0; I < Keys.size(); ++I)
    for (size_t J = I + 1; J < Keys.size(); ++J)
      EXPECT_FALSE(Keys[I] == Keys[J]) << I << " vs " << J;
}

TEST(FlatHashTest, InsertFindEraseBasics) {
  FlatIntervalMap<int> M;
  EXPECT_EQ(M.find(IntervalKey::pack(1, 2, 3)), nullptr);
  EXPECT_TRUE(M.insert(IntervalKey::pack(1, 2, 3), 7));
  EXPECT_FALSE(M.insert(IntervalKey::pack(1, 2, 3), 8)); // no overwrite
  ASSERT_NE(M.find(IntervalKey::pack(1, 2, 3)), nullptr);
  EXPECT_EQ(*M.find(IntervalKey::pack(1, 2, 3)), 7);
  EXPECT_TRUE(M.erase(IntervalKey::pack(1, 2, 3)));
  EXPECT_FALSE(M.erase(IntervalKey::pack(1, 2, 3)));
  EXPECT_EQ(M.find(IntervalKey::pack(1, 2, 3)), nullptr);
  EXPECT_EQ(M.size(), 0u);
}

TEST(FlatHashTest, AdversarialIntervalPatternsCollideCorrectly) {
  // The memo table's real access pattern: one rule over thousands of
  // overlapping slices — (r, i, j) for all i <= j — which forces heavy
  // probe-sequence sharing in a small table. Mirror against a reference
  // map.
  FlatIntervalMap<int> M;
  std::unordered_map<uint64_t, int> Ref;
  int V = 0;
  const uint64_t N = 60;
  for (uint64_t Lo = 0; Lo < N; ++Lo)
    for (uint64_t Hi = Lo; Hi < N; ++Hi) {
      EXPECT_TRUE(M.insert(IntervalKey::pack(3, Lo, Hi), V));
      Ref[Lo * N + Hi] = V;
      ++V;
    }
  EXPECT_EQ(M.size(), Ref.size());
  for (uint64_t Lo = 0; Lo < N; ++Lo)
    for (uint64_t Hi = Lo; Hi < N; ++Hi) {
      int *P = M.find(IntervalKey::pack(3, Lo, Hi));
      ASSERT_NE(P, nullptr);
      EXPECT_EQ(*P, Ref[Lo * N + Hi]);
    }
  // Keys never inserted (Hi < Lo) must miss even though their probe paths
  // run through fully loaded clusters.
  for (uint64_t Lo = 1; Lo < N; ++Lo)
    EXPECT_EQ(M.find(IntervalKey::pack(3, Lo, Lo - 1)), nullptr);
}

TEST(FlatHashTest, TombstonesKeepProbeChainsIntact) {
  // The in-progress set's pattern (DetectReentry): interleaved insert and
  // erase of nested intervals. An erase in the middle of a probe chain
  // must not hide keys inserted behind it.
  FlatIntervalMap<uint8_t> M;
  const uint64_t N = 500;
  for (uint64_t I = 0; I < N; ++I)
    EXPECT_TRUE(M.insert(IntervalKey::pack(1, I, N), 1));
  // Erase every other key -> tombstones sprinkled through every cluster.
  for (uint64_t I = 0; I < N; I += 2)
    EXPECT_TRUE(M.erase(IntervalKey::pack(1, I, N)));
  // Survivors still found; erased keys miss.
  for (uint64_t I = 0; I < N; ++I) {
    if (I % 2)
      EXPECT_NE(M.find(IntervalKey::pack(1, I, N)), nullptr) << I;
    else
      EXPECT_EQ(M.find(IntervalKey::pack(1, I, N)), nullptr) << I;
  }
  // Reinsert the erased keys: tombstones are reclaimed, not leaked into
  // load forever — size returns to N and everything is reachable.
  for (uint64_t I = 0; I < N; I += 2)
    EXPECT_TRUE(M.insert(IntervalKey::pack(1, I, N), 2));
  EXPECT_EQ(M.size(), N);
  for (uint64_t I = 0; I < N; ++I)
    ASSERT_NE(M.find(IntervalKey::pack(1, I, N)), nullptr) << I;
}

TEST(FlatHashTest, EraseInsertChurnDoesNotGrowUnbounded) {
  // Repeated insert/erase of the same keyset (the reentry set under a
  // recursive grammar) must stay within one rehash of the initial
  // capacity rather than treating every tombstone as permanent load.
  FlatIntervalMap<uint8_t> M;
  for (uint64_t I = 0; I < 32; ++I)
    M.insert(IntervalKey::pack(2, I, 100), 1);
  size_t Cap = M.capacity();
  for (int Round = 0; Round < 1000; ++Round) {
    for (uint64_t I = 0; I < 32; ++I)
      M.erase(IntervalKey::pack(2, I, 100));
    for (uint64_t I = 0; I < 32; ++I)
      M.insert(IntervalKey::pack(2, I, 100), 1);
  }
  EXPECT_EQ(M.size(), 32u);
  EXPECT_LE(M.capacity(), Cap * 2);
}

TEST(FlatHashTest, ClearIsGenerationalAcrossManyEpochs) {
  // clear() bumps an epoch instead of sweeping; stale slots must read as
  // empty in every later generation, including ones with interleaved
  // erases, and per-epoch contents must never bleed through.
  FlatIntervalMap<int> M;
  for (int Epoch = 0; Epoch < 50; ++Epoch) {
    for (uint64_t I = 0; I < 100; ++I)
      EXPECT_TRUE(M.insert(IntervalKey::pack(1, I, I + 1), Epoch)) << Epoch;
    for (uint64_t I = 0; I < 100; I += 3)
      EXPECT_TRUE(M.erase(IntervalKey::pack(1, I, I + 1)));
    for (uint64_t I = 0; I < 100; ++I) {
      int *P = M.find(IntervalKey::pack(1, I, I + 1));
      if (I % 3 == 0) {
        EXPECT_EQ(P, nullptr) << Epoch << "/" << I;
      } else {
        ASSERT_NE(P, nullptr) << Epoch << "/" << I;
        EXPECT_EQ(*P, Epoch);
      }
    }
    M.clear();
    EXPECT_EQ(M.size(), 0u);
    EXPECT_EQ(M.find(IntervalKey::pack(1, 1, 2)), nullptr) << Epoch;
  }
}

TEST(FlatHashTest, ClearKeepsCapacity) {
  FlatIntervalMap<int> M;
  for (uint64_t I = 0; I < 1000; ++I)
    M.insert(IntervalKey::pack(1, I, I + 1), static_cast<int>(I));
  size_t Cap = M.capacity();
  M.clear();
  EXPECT_EQ(M.size(), 0u);
  EXPECT_EQ(M.capacity(), Cap);
  EXPECT_EQ(M.find(IntervalKey::pack(1, 5, 6)), nullptr);
  // Reusable after clear.
  EXPECT_TRUE(M.insert(IntervalKey::pack(1, 5, 6), 42));
  EXPECT_EQ(*M.find(IntervalKey::pack(1, 5, 6)), 42);
}
