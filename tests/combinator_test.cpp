//===- tests/combinator_test.cpp - interval combinator tests --------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Appendix A.2 combinator library: the binary-number parser written
/// with combinators must agree with the grammar-based Figure 3 parser, and
/// the interval-confinement combinator must enforce the same slice
/// semantics as the engine.
///
//===----------------------------------------------------------------------===//

#include "combinator/Combinator.h"

#include <cstdint>
#include <functional>
#include <gtest/gtest.h>
#include <string>
#include <string_view>

using namespace ipg;
using namespace ipg::comb;

namespace {

Parser<int64_t> digitP() {
  return choice(bind(charP('0'), [](char) { return pure<int64_t>(0); }),
                bind(charP('1'), [](char) { return pure<int64_t>(1); }));
}

/// The appendix's intP: recursive, interval-shrinking, value-building.
Parser<int64_t> intP() {
  return fix<int64_t>(std::function<Parser<int64_t>(Parser<int64_t>)>(
      [](Parser<int64_t> Self) {
        Parser<int64_t> Rec = bind(eoi(), [Self](int64_t Eoi) {
          return bind(
              localInterval(Self, 0, Eoi - 1), [Eoi](int64_t Hi) {
                return bind(localInterval(digitP(), Eoi - 1, Eoi),
                            [Hi](int64_t Lo) {
                              return pure<int64_t>(Hi * 2 + Lo);
                            });
              });
        });
        return choice(Rec, localInterval(digitP(), 0, 1));
      }));
}

} // namespace

TEST(CombinatorTest, PureAndBind) {
  auto P = bind(pure<int64_t>(20),
                [](int64_t V) { return pure<int64_t>(V * 2 + 2); });
  auto R = runParser(P, ByteSpan::of(std::string_view("")));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, 42);
}

TEST(CombinatorTest, CharAndStrRespectInterval) {
  auto In = std::string_view("abc");
  EXPECT_TRUE(runParser(charP('a'), ByteSpan::of(In)).has_value());
  EXPECT_FALSE(runParser(charP('b'), ByteSpan::of(In)).has_value());
  EXPECT_TRUE(runParser(strP("abc"), ByteSpan::of(In)).has_value());
  EXPECT_FALSE(runParser(strP("abcd"), ByteSpan::of(In)).has_value());
}

TEST(CombinatorTest, ChoiceIsBiased) {
  auto P = choice(bind(strP("ab"), [](Unit) { return pure<int64_t>(1); }),
                  bind(strP("a"), [](Unit) { return pure<int64_t>(2); }));
  auto R = runParser(P, ByteSpan::of(std::string_view("ab")));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, 1);
  auto R2 = runParser(P, ByteSpan::of(std::string_view("ax")));
  ASSERT_TRUE(R2.has_value());
  EXPECT_EQ(*R2, 2);
}

TEST(CombinatorTest, LocalIntervalConfines) {
  // Parse "bb" only within [2, 4) of "aabbcc".
  auto In = std::string_view("aabbcc");
  auto P = localInterval(strP("bb"), 2, 4);
  EXPECT_TRUE(runParser(P, ByteSpan::of(In)).has_value());
  auto Wrong = localInterval(strP("bb"), 1, 3);
  EXPECT_FALSE(runParser(Wrong, ByteSpan::of(In)).has_value());
  // Out-of-range intervals fail cleanly.
  auto Oob = localInterval(strP("bb"), 4, 9);
  EXPECT_FALSE(runParser(Oob, ByteSpan::of(In)).has_value());
}

TEST(CombinatorTest, PositionMovesPastLocalInterval) {
  // After a local interval, the position is its right endpoint: "aaZZbb"
  // with "aa", then [2,4) confined, then "bb".
  auto P = bind(strP("aa"), [](Unit) {
    return bind(localInterval(strP("ZZ"), 2, 4),
                [](Unit) { return strP("bb"); });
  });
  EXPECT_TRUE(
      runParser(P, ByteSpan::of(std::string_view("aaZZbb"))).has_value());
  EXPECT_FALSE(
      runParser(P, ByteSpan::of(std::string_view("aaZZxx"))).has_value());
}

TEST(CombinatorTest, BinaryNumberMatchesFig3) {
  auto P = intP();
  for (int V = 0; V < 64; ++V) {
    std::string Bits;
    for (int B = 5; B >= 0; --B)
      Bits += ((V >> B) & 1) ? '1' : '0';
    auto R = runParser(P, ByteSpan::of(Bits));
    ASSERT_TRUE(R.has_value()) << Bits;
    EXPECT_EQ(*R, V) << Bits;
  }
  EXPECT_FALSE(runParser(P, ByteSpan::of(std::string_view(""))).has_value());
  EXPECT_FALSE(
      runParser(P, ByteSpan::of(std::string_view("x1"))).has_value());
}

TEST(CombinatorTest, EoiIsLocalLength) {
  auto P = localInterval(eoi(), 1, 4);
  auto R = runParser(P, ByteSpan::of(std::string_view("abcdef")));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, 3);
}

TEST(CombinatorTest, AnyByteYieldsValue) {
  auto P = bind(anyByteP(), [](int64_t B) { return pure<int64_t>(B + 1); });
  auto R = runParser(P, ByteSpan::of(std::string_view("A")));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, 'A' + 1);
}
