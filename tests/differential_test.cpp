//===- tests/differential_test.cpp - engine vs generated parsers ----------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential harness: EVERY format corpus — blackbox formats
/// included, via the ipg_rt registration hook and the bridges in
/// formats::genBlackboxBridge — is parsed by ALL THREE engines (the
/// interpreter, the compiled generated parser, and the bytecode VM over
/// the lowered IR), and the trees are compared node-by-node
/// — shape, node names, start/end, every attribute value, leaf windows.
/// The comparison goes through one canonical text rendering
/// (ipg_rt::dumpTree, embedded in every generated parser; renderCanonical
/// below produces the identical format from the interpreter's ParseTree),
/// so any byte of difference is a semantic divergence between
/// runtime/Interp.cpp and codegen/CppEmitter.cpp. Memoized and
/// unmemoized generated parsers are also compared against each other:
/// the memo table must never change a parse result.
///
/// Also hosts the regression tests for the divergences this harness was
/// built to catch: pre-seeded start/end sentinels (a byte-untouched
/// child's X.start must fail with partiality, not read as EOI) and the
/// literal "EOI" env entry (X.EOI of a node that defines no such
/// attribute must fail, not answer the child's window size).
///
/// Tests that need a host C++ compiler skip gracefully without one, as
/// codegen_test.cpp does. Under -DIPG_SANITIZE=ON the generated parsers
/// are themselves compiled with ASan+UBSan (IPG_SANITIZE_BUILD), so the
/// CI sanitizer job proves generated code sanitizer-clean too.
///
//===----------------------------------------------------------------------===//

#include "codegen/CppEmitter.h"

#include "CodegenTestHarness.h"
#include "CorruptCorpus.h"
#include "TreeCanonical.h"
#include "formats/FormatRegistry.h"
#include "formats/Zip.h"
#include "runtime/Interp.h"
#include "support/Casting.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

using namespace ipg;
using testutil::hostCompilerAvailable;

namespace {

Grammar load(const char *Src) {
  auto R = loadGrammar(Src);
  EXPECT_TRUE(R) << R.message();
  if (!R)
    std::abort();
  return std::move(R->G);
}

// The canonical interpreter-tree rendering (byte-for-byte the generated
// side's ipg_rt::dumpTree format) lives in tests/TreeCanonical.h, shared
// with engine_test and service_test.
using testutil::renderCanonical;

/// Compiles \p Generated with a driver that parses argv[1] and writes the
/// generated runtime's canonical dump to argv[2]. Exit codes: 0 accepted,
/// 1 rejected, >=2 infrastructure trouble. Returns false on compile
/// failure (with the log on stderr). For blackbox formats \p Bridge
/// supplies the registration source and decoder translation units
/// (formats::genBlackboxBridge), so e.g. zip's generated parser resolves
/// `inflate` from the same MiniZlib implementation the interpreter uses.
struct GenRun {
  int ExitCode = -1;
  std::string Dump;
};

bool compileGenerated(const std::string &Generated, const std::string &Tag,
                      std::string &ExeOut,
                      const formats::GenBlackboxBridge *Bridge = nullptr) {
  std::string Source = Generated;
  if (Bridge)
    Source += Bridge->DriverSource;
  Source +=
      "\n#include <cstdio>\n#include <fstream>\n"
      "int main(int argc, char **argv) {\n"
      "  if (argc < 3) return 3;\n"
      "  std::ifstream In(argv[1], std::ios::binary);\n"
      "  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),"
      " std::istreambuf_iterator<char>());\n"
      "  gen::Parser P;\n" +
      std::string(Bridge ? "  ipgRegisterBlackboxes(P);\n" : "") +
      "  gen::NodePtr Root = nullptr;\n"
      "  if (!P.parse(Bytes.data(), Bytes.size(), Root)) return 1;\n"
      "  std::ofstream Out(argv[2], std::ios::binary);\n"
      "  Out << gen::dumpTree(Root);\n"
      "  return Out ? 0 : 3;\n}\n";
  ExeOut = testutil::compileParserSource(
      Source, Tag,
      Bridge ? testutil::bridgeCompileArgs(Bridge->ExtraSources) : "");
  return !ExeOut.empty();
}

GenRun runGenerated(const std::string &Exe, const std::string &Tag,
                    const std::vector<uint8_t> &Input) {
  GenRun R;
  std::string DumpPath = testutil::childDir(Tag) + "/dump.txt";
  std::remove(DumpPath.c_str());
  R.ExitCode = testutil::runChild(Exe, Tag, Input, DumpPath);
  std::ifstream Dump(DumpPath, std::ios::binary);
  std::stringstream SS;
  SS << Dump.rdbuf();
  R.Dump = SS.str();
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// The corpus sweep: interpreter == generated on EVERY format. Blackbox
// formats (zip) participate through the registration hook: the child
// compiles the same MiniZlib decoder the interpreter registers and binds
// it with Parser::registerBlackbox.
//===----------------------------------------------------------------------===//

TEST(DifferentialTest, AllFormatCorporaAgree) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C++ compiler";

  size_t Compared = 0;
  for (const formats::FormatInfo &FI : formats::allFormats()) {
    SCOPED_TRACE("format: " + FI.Name);

    // One factory call replaces the old loadFormatGrammar +
    // standardBlackboxes + Interp boilerplate; the loaded grammar rides
    // along for the emitter.
    auto FE = formats::makeFormatEngine(FI.Name, EngineKind::Interp);
    ASSERT_TRUE(FE) << FE.message();
    const Grammar &G = FE->Load->G;
    auto Code = emitCppParser(G, "gen");
    ASSERT_TRUE(Code) << Code.message();
    const formats::GenBlackboxBridge *Bridge =
        formats::genBlackboxBridge(FI.Name);
    ASSERT_EQ(Bridge != nullptr, FI.NeedsBlackbox);
    std::string Exe;
    ASSERT_TRUE(compileGenerated(*Code, FI.Name, Exe, Bridge));

    // The third engine: the bytecode VM shares the interpreter's runtime
    // core, so beyond tree equality its counters must match exactly.
    auto FV = formats::makeFormatEngine(FI.Name, EngineKind::Vm);
    ASSERT_TRUE(FV) << FV.message();

    Engine &I = **FE;
    Engine &V = **FV;
    // Two input sizes per format so array/loop paths differ run-to-run.
    // These scales stay small because each dump is compared as text and
    // canonical dumps indent per level; the megabyte-class sweep below
    // (MegabyteCorpusAgreeInProcess) covers deep/large inputs by
    // structural comparison instead.
    for (unsigned Scale : {1u, 2u}) {
      SCOPED_TRACE("scale: " + std::to_string(Scale));
      std::vector<uint8_t> Bytes = formats::sampleInput(FI.Name, Scale);
      ASSERT_FALSE(Bytes.empty());

      auto R = I.parse(ByteSpan::of(Bytes));
      ASSERT_TRUE(R) << FI.Name << " corpus rejected by the interpreter: "
                     << R.message();
      std::string Want = renderCanonical(*R, G);

      GenRun Gen = runGenerated(Exe, FI.Name, Bytes);
      ASSERT_EQ(Gen.ExitCode, 0)
          << FI.Name << " corpus rejected by the generated parser";
      EXPECT_EQ(Want, Gen.Dump)
          << FI.Name << ": interpreter and generated trees diverge";

      auto RV = V.parse(ByteSpan::of(Bytes));
      ASSERT_TRUE(RV) << FI.Name
                      << " corpus rejected by the VM: " << RV.message();
      EXPECT_EQ(Want, renderCanonical(*RV, FV->Load->G))
          << FI.Name << ": interpreter and VM trees diverge";
      EXPECT_EQ(I.stats().NodesCreated, V.stats().NodesCreated) << FI.Name;
      EXPECT_EQ(I.stats().TermsExecuted, V.stats().TermsExecuted) << FI.Name;
      EXPECT_EQ(I.stats().MemoHits, V.stats().MemoHits) << FI.Name;
      EXPECT_EQ(I.stats().MemoMisses, V.stats().MemoMisses) << FI.Name;
      EXPECT_EQ(I.stats().PeakDepth, V.stats().PeakDepth) << FI.Name;
      ++Compared;
    }

    // All sides must also agree on rejection: corrupt the first byte.
    std::vector<uint8_t> Bad = formats::sampleInput(FI.Name, 1);
    Bad[0] ^= 0xff;
    size_t AcceptedNodes = I.stats().NodesCreated;
    bool InterpAccepts = static_cast<bool>(I.parse(ByteSpan::of(Bad)));
    // The stats contract holds inside the harness too: after a rejected
    // parse, stats() describes the rejection, not the accepted run.
    if (!InterpAccepts)
      EXPECT_LT(I.stats().NodesCreated, AcceptedNodes)
          << FI.Name << ": stats() still shows the previous parse";
    GenRun GenBad = runGenerated(Exe, FI.Name, Bad);
    ASSERT_GE(GenBad.ExitCode, 0);
    ASSERT_LE(GenBad.ExitCode, 1);
    EXPECT_EQ(InterpAccepts, GenBad.ExitCode == 0)
        << FI.Name << ": accept/reject verdicts diverge on corrupt input";
    EXPECT_EQ(InterpAccepts, static_cast<bool>(V.parse(ByteSpan::of(Bad))))
        << FI.Name << ": interpreter/VM verdicts diverge on corrupt input";
  }
  EXPECT_EQ(Compared, 2 * formats::allFormats().size());
}

//===----------------------------------------------------------------------===//
// Corrupt-at-offset sweep: the single corrupt-first-byte probe above only
// sees one failure path per format. This sweep plants the shared damage
// grid (tests/CorruptCorpus.h: flips, truncations, and zero-runs at fixed
// offsets spread across each corpus — headers, directory structures,
// payload middles, trailers) and demands verdict agreement at every
// entry; when both engines accept a corruption (damage confined to
// don't-care payload bytes), their trees must still be identical.
// The same grid feeds tests/recovery_test.cpp and bench/bench_recovery.
//===----------------------------------------------------------------------===//

TEST(DifferentialTest, CorruptAtOffsetSweepVerdictsAgree) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C++ compiler";

  constexpr size_t ProbesPerFormat = 8;

  size_t Checked = 0;
  for (const formats::FormatInfo &FI : formats::allFormats()) {
    SCOPED_TRACE("format: " + FI.Name);
    auto FE = formats::makeFormatEngine(FI.Name, EngineKind::Interp);
    ASSERT_TRUE(FE) << FE.message();
    const Grammar &G = FE->Load->G;
    auto Code = emitCppParser(G, "gen");
    ASSERT_TRUE(Code) << Code.message();
    std::string Exe;
    ASSERT_TRUE(compileGenerated(*Code, "sweep_" + FI.Name, Exe,
                                 formats::genBlackboxBridge(FI.Name)));

    Engine &I = **FE;
    const std::vector<uint8_t> Bytes = formats::sampleInput(FI.Name, 1);
    ASSERT_GE(Bytes.size(), ProbesPerFormat);

    for (const testutil::CorruptProbe &P :
         testutil::corruptProbes(Bytes.size(), ProbesPerFormat)) {
      SCOPED_TRACE(std::string(testutil::corruptKindName(P.Kind)) + " @" +
                   std::to_string(P.Off));
      std::vector<uint8_t> Bad = testutil::corruptAt(Bytes, P.Kind, P.Off);
      auto R = I.parse(ByteSpan::of(Bad));
      GenRun Gen = runGenerated(Exe, "sweep_" + FI.Name, Bad);
      ASSERT_GE(Gen.ExitCode, 0);
      ASSERT_LE(Gen.ExitCode, 1);
      EXPECT_EQ(static_cast<bool>(R), Gen.ExitCode == 0)
          << "accept/reject verdicts diverge";
      if (R && Gen.ExitCode == 0) {
        EXPECT_EQ(renderCanonical(*R, G), Gen.Dump)
            << "both accepted the corruption but built different trees";
      }
      ++Checked;
    }
  }
  EXPECT_EQ(Checked, 3 * ProbesPerFormat * formats::allFormats().size());
}

//===----------------------------------------------------------------------===//
// The same sweep for the bytecode VM, entirely in-process — no host
// compiler needed, so this leg runs in EVERY CI job (the TSan matrix
// included). Because the VM shares the interpreter's runtime core down to
// the frame pool, the contract is stronger than verdict agreement: on
// every probe the trees, the failure messages, the failure diagnostics
// (failing rule + absolute byte offset), and all counters (NodesCreated,
// TermsExecuted, memo traffic, PeakDepth) must be identical, success or
// failure alike. FailRule is compared by interner NAME, not raw Symbol:
// the two engines load the grammar separately and may intern in a
// different order.
//===----------------------------------------------------------------------===//

TEST(DifferentialTest, VmMatchesInterpreterOnCorruptAtOffsetSweep) {
  constexpr size_t ProbesPerFormat = 8;

  size_t Checked = 0;
  for (const formats::FormatInfo &FI : formats::allFormats()) {
    SCOPED_TRACE("format: " + FI.Name);
    auto IE = formats::makeFormatEngine(FI.Name, EngineKind::Interp);
    ASSERT_TRUE(IE) << IE.message();
    auto VE = formats::makeFormatEngine(FI.Name, EngineKind::Vm);
    ASSERT_TRUE(VE) << VE.message();

    const std::vector<uint8_t> Bytes = formats::sampleInput(FI.Name, 1);
    ASSERT_GE(Bytes.size(), ProbesPerFormat);

    for (const testutil::CorruptProbe &P :
         testutil::corruptProbes(Bytes.size(), ProbesPerFormat)) {
      SCOPED_TRACE(std::string(testutil::corruptKindName(P.Kind)) + " @" +
                   std::to_string(P.Off));
      std::vector<uint8_t> Bad = testutil::corruptAt(Bytes, P.Kind, P.Off);

      auto RI = (*IE)->parse(ByteSpan::of(Bad));
      auto RV = (*VE)->parse(ByteSpan::of(Bad));
      ASSERT_EQ(static_cast<bool>(RI), static_cast<bool>(RV))
          << "interpreter/VM verdicts diverge";
      if (RI && RV)
        EXPECT_TRUE(testutil::treesEqual(RI->get(), IE->Load->G, RV->get(),
                                         VE->Load->G))
            << "both accepted the corruption but built different trees";
      else
        EXPECT_EQ(RI.message(), RV.message())
            << "both rejected, with different diagnostics";

      const EngineStats &SI = (*IE)->stats();
      const EngineStats &SV = (*VE)->stats();
      EXPECT_EQ(SI.NodesCreated, SV.NodesCreated);
      EXPECT_EQ(SI.TermsExecuted, SV.TermsExecuted);
      EXPECT_EQ(SI.MemoHits, SV.MemoHits);
      EXPECT_EQ(SI.MemoMisses, SV.MemoMisses);
      EXPECT_EQ(SI.PeakDepth, SV.PeakDepth);
      ASSERT_EQ(SI.FailRule == ~0u, SV.FailRule == ~0u)
          << "only one engine recorded a failure location";
      if (SI.FailRule != ~0u)
        EXPECT_EQ(IE->Load->G.interner().name(SI.FailRule),
                  VE->Load->G.interner().name(SV.FailRule))
            << "failing-rule diagnostics diverge";
      EXPECT_EQ(SI.FailOffset, SV.FailOffset)
          << "failure-offset diagnostics diverge";
      ++Checked;
    }
  }
  EXPECT_EQ(Checked, 3 * ProbesPerFormat * formats::allFormats().size());
}

//===----------------------------------------------------------------------===//
// The blackbox hook under load: a zip archive with DEFLATED entries runs
// the inflate blackbox on both sides (the stored-entry corpus above never
// reaches it). The decoded output leaf, val/start/end attributes, and the
// check(count) plumbing that depends on them must agree byte for byte.
//===----------------------------------------------------------------------===//

TEST(DifferentialTest, ZipDeflatedEntriesAgreeThroughBlackboxHook) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C++ compiler";

  auto FE = formats::makeFormatEngine("zip", EngineKind::Interp);
  ASSERT_TRUE(FE) << FE.message();
  const Grammar &G = FE->Load->G;
  auto Code = emitCppParser(G, "gen");
  ASSERT_TRUE(Code) << Code.message();
  const formats::GenBlackboxBridge *Bridge =
      formats::genBlackboxBridge("zip");
  ASSERT_NE(Bridge, nullptr);
  std::string Exe;
  ASSERT_TRUE(compileGenerated(*Code, "zip_deflated", Exe, Bridge));

  std::vector<uint8_t> Bytes = formats::synthesizeZip(
      formats::zipArchiveOfCopies(4, 2048, /*Compress=*/true));
  auto R = (*FE)->parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(R) << R.message();
  std::string Want = renderCanonical(*R, G);
  // The corpus really exercised the blackbox: inflate nodes are present.
  EXPECT_NE(Want.find("Node inflate"), std::string::npos);

  GenRun Gen = runGenerated(Exe, "zip_deflated", Bytes);
  ASSERT_EQ(Gen.ExitCode, 0);
  EXPECT_EQ(Want, Gen.Dump)
      << "interpreter and generated trees diverge on deflated zip";

  // The VM resolves `inflate` through the same registry the interpreter
  // binds (via the lowered module's blackbox site table).
  auto FV = formats::makeFormatEngine("zip", EngineKind::Vm);
  ASSERT_TRUE(FV) << FV.message();
  auto RV = (*FV)->parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(RV) << RV.message();
  EXPECT_EQ(Want, renderCanonical(*RV, FV->Load->G))
      << "interpreter and VM trees diverge on deflated zip";

  // An unregistered blackbox is a hard failure, as in the interpreter:
  // the same child without the bridge registration must reject.
  std::string NoRegExe;
  ASSERT_TRUE(compileGenerated(*Code, "zip_noreg", NoRegExe));
  EXPECT_EQ(runGenerated(NoRegExe, "zip_noreg", Bytes).ExitCode, 1)
      << "a parse reaching an unregistered blackbox must fail";
}

//===----------------------------------------------------------------------===//
// Memoization parity: with the memo table on (default) and off, generated
// parsers must produce byte-identical canonical dumps — memoization is an
// optimization, never a semantic change. PDF is the adversarial corpus
// (backtracking-heavy, Fig. 12's memo-sensitive format).
//===----------------------------------------------------------------------===//

TEST(DifferentialTest, MemoizedAndUnmemoizedGeneratedParsersAgree) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C++ compiler";

  for (const char *Name : {"pdf", "gif", "dns"}) {
    SCOPED_TRACE(Name);
    auto Load = formats::loadFormatGrammar(Name);
    ASSERT_TRUE(Load) << Load.message();

    auto Memo = emitCppParser(Load->G, "gen");
    ASSERT_TRUE(Memo) << Memo.message();
    CppEmitterOptions Off;
    Off.Engine.UseMemo = false;
    auto Plain = emitCppParser(Load->G, "gen", Off);
    ASSERT_TRUE(Plain) << Plain.message();
    // The ablation really removed the table, not just renamed things.
    EXPECT_NE(Memo->find("C.memoFind("), std::string::npos);
    EXPECT_EQ(Plain->find("C.memoFind("), std::string::npos);

    std::string MemoExe, PlainExe;
    ASSERT_TRUE(compileGenerated(*Memo, std::string(Name) + "_memo",
                                 MemoExe));
    ASSERT_TRUE(compileGenerated(*Plain, std::string(Name) + "_nomemo",
                                 PlainExe));

    for (unsigned Scale : {1u, 2u}) {
      SCOPED_TRACE("scale: " + std::to_string(Scale));
      std::vector<uint8_t> Bytes = formats::sampleInput(Name, Scale);
      GenRun A = runGenerated(MemoExe, std::string(Name) + "_memo", Bytes);
      GenRun B =
          runGenerated(PlainExe, std::string(Name) + "_nomemo", Bytes);
      ASSERT_EQ(A.ExitCode, 0);
      ASSERT_EQ(B.ExitCode, 0);
      EXPECT_EQ(A.Dump, B.Dump)
          << Name << ": memoization changed the parse result";
    }
  }
}

//===----------------------------------------------------------------------===//
// Megabyte-class corpus: PDF (whose Scan/XNum recursion makes file size
// equal parse depth — over a million virtual levels here) and ELF (a
// megabyte image with thousands of table entries) must agree between the
// interpreter and the in-process generated engine. Both engines run
// recursion on engine-managed frames, so the only requirement is a
// MaxDepth that covers the input. Trees are compared structurally:
// canonical text dumps indent two spaces per level, which is O(depth^2)
// output at this depth.
//===----------------------------------------------------------------------===//

TEST(DifferentialTest, MegabyteCorpusAgreeInProcess) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C++ compiler";

  for (const char *Name : {"pdf", "elf"}) {
    SCOPED_TRACE(Name);
    EngineOptions Opts;
    Opts.MaxDepth = size_t{1} << 21;
    auto IE = formats::makeFormatEngine(Name, EngineKind::Interp, Opts);
    ASSERT_TRUE(IE) << IE.message();
    auto GE = formats::makeFormatEngine(Name, EngineKind::Generated, Opts);
    ASSERT_TRUE(GE) << GE.message();
    auto VE = formats::makeFormatEngine(Name, EngineKind::Vm, Opts);
    ASSERT_TRUE(VE) << VE.message();

    std::vector<uint8_t> Bytes = formats::sampleInput(Name, 64);
    ASSERT_GE(Bytes.size(), size_t{1} << 20)
        << Name << ": scale-64 corpus is not megabyte-class";

    auto TI = (*IE)->parse(ByteSpan::of(Bytes));
    ASSERT_TRUE(TI) << Name << " interp: " << TI.message();
    auto TG = (*GE)->parse(ByteSpan::of(Bytes));
    ASSERT_TRUE(TG) << Name << " generated: " << TG.message();
    auto TV = (*VE)->parse(ByteSpan::of(Bytes));
    ASSERT_TRUE(TV) << Name << " vm: " << TV.message();

    EXPECT_TRUE(testutil::treesEqual(TI->get(), IE->Load->G, TG->get(),
                                     GE->Load->G))
        << Name << ": interpreter and generated trees diverge at scale 64";
    EXPECT_TRUE(testutil::treesEqual(TI->get(), IE->Load->G, TV->get(),
                                     VE->Load->G))
        << Name << ": interpreter and VM trees diverge at scale 64";

    // Counter parity at depth: all engines report the same recursion
    // profile, PeakDepth included (the satellite-2 ABI plumbing).
    const EngineStats &SI = (*IE)->stats();
    const EngineStats &SG = (*GE)->stats();
    const EngineStats &SV = (*VE)->stats();
    EXPECT_EQ(SI.NodesCreated, SG.NodesCreated) << Name;
    EXPECT_EQ(SI.MemoHits, SG.MemoHits) << Name;
    EXPECT_EQ(SI.MemoMisses, SG.MemoMisses) << Name;
    EXPECT_EQ(SI.PeakDepth, SG.PeakDepth) << Name;
    EXPECT_EQ(SI.NodesCreated, SV.NodesCreated) << Name;
    EXPECT_EQ(SI.TermsExecuted, SV.TermsExecuted) << Name;
    EXPECT_EQ(SI.MemoHits, SV.MemoHits) << Name;
    EXPECT_EQ(SI.MemoMisses, SV.MemoMisses) << Name;
    EXPECT_EQ(SI.PeakDepth, SV.PeakDepth) << Name;
    EXPECT_GT(SI.PeakDepth, 0u) << Name;
    if (std::string(Name) == "pdf")
      EXPECT_GT(SI.PeakDepth, size_t{1} << 20)
          << "the megabyte PDF should recurse past a million levels";
  }
}

//===----------------------------------------------------------------------===//
// Regression: a byte-untouched child exposes no start/end — referencing
// X.start must fail with partiality on BOTH sides (the generated runtime
// used to pre-seed start = EOI / end = 0 sentinels and answer EOI).
//===----------------------------------------------------------------------===//

namespace {

const char *UntouchedChildGrammar = R"(
  S -> A[0, 0] {s = A.start} "x"[0, 1] ;
  A -> {v = 1} ;
)";

const char *UntouchedChildControlGrammar = R"(
  S -> A[0, 0] {s = A.v} "x"[0, 1] ;
  A -> {v = 1} ;
)";

} // namespace

TEST(DifferentialTest, UntouchedChildStartIsPartialInInterpreter) {
  Grammar G = load(UntouchedChildGrammar);
  std::vector<uint8_t> In = {'x'};
  EXPECT_FALSE(Interp(G).parse(ByteSpan::of(In)))
      << "A touches no bytes, so A.start must be a partiality failure";

  // Control: the same shape succeeds when it references a real attribute,
  // proving the rejection above comes from A.start specifically.
  Grammar C = load(UntouchedChildControlGrammar);
  auto R = Interp(C).parse(ByteSpan::of(In));
  ASSERT_TRUE(R) << R.message();
  const auto *Root = cast<NodeTree>(R->get());
  auto SV = Root->attr(C.interner().intern("s"));
  ASSERT_TRUE(SV.has_value());
  EXPECT_EQ(*SV, 1);
  // And the untouched child carries neither start nor end.
  const NodeTree *A = Root->childNode(C.interner().intern("A"));
  ASSERT_NE(A, nullptr);
  EXPECT_FALSE(A->attr(C.symStart()).has_value());
  EXPECT_FALSE(A->attr(C.symEnd()).has_value());
}

TEST(DifferentialTest, UntouchedChildStartIsPartialInGenerated) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C++ compiler";
  std::vector<uint8_t> In = {'x'};

  Grammar G = load(UntouchedChildGrammar);
  auto Code = emitCppParser(G, "gen");
  ASSERT_TRUE(Code) << Code.message();
  std::string Exe;
  ASSERT_TRUE(compileGenerated(*Code, "untouched_start", Exe));
  EXPECT_EQ(runGenerated(Exe, "untouched_start", In).ExitCode, 1)
      << "generated parser must fail A.start of a byte-untouched child";

  Grammar C = load(UntouchedChildControlGrammar);
  auto CCode = emitCppParser(C, "gen");
  ASSERT_TRUE(CCode) << CCode.message();
  std::string CExe;
  ASSERT_TRUE(compileGenerated(*CCode, "untouched_ctrl", CExe));
  GenRun R = runGenerated(CExe, "untouched_ctrl", In);
  EXPECT_EQ(R.ExitCode, 0);
  // The generated dump shows s=1 on S and no start/end on A.
  EXPECT_NE(R.Dump.find("s=1"), std::string::npos) << R.Dump;
  EXPECT_NE(R.Dump.find("Node A {v=1}"), std::string::npos) << R.Dump;
}

//===----------------------------------------------------------------------===//
// Regression: no node env carries a runtime-stored "EOI" binding. The old
// generated runtime wrote the window size into every env under the
// literal name "EOI" (and the pre-PR interpreter did the same), so a
// grammar attribute actually named EOI silently collided with it. Now the
// only EOI a tree can carry is one the grammar itself defined, and it
// reads back unclobbered; X.EOI of a child that defines no such
// attribute is already rejected statically.
//===----------------------------------------------------------------------===//

namespace {

/// A defines its own attribute literally named EOI; the parent reads it
/// through the env. The runtime must hand back the grammar's value (5),
/// not the child's window size (1).
const char *ChildEoiGrammar = R"(
  S -> A[0, 1] {n = A.EOI} ;
  A -> "x"[0, 1] {EOI = 5} ;
)";

} // namespace

TEST(DifferentialTest, NodeEnvHasNoEoiEntryInInterpreter) {
  std::vector<uint8_t> In = {'x'};

  // Without a grammar-defined EOI on A, A.EOI does not resolve — the
  // attribute checker rejects it statically (it used to "work" by
  // reading the runtime-stored entry).
  auto Undefined = loadGrammar(R"(
    S -> A[0, 1] {n = A.EOI} ;
    A -> "x"[0, 1] ;
  )");
  ASSERT_FALSE(Undefined);
  EXPECT_NE(Undefined.message().find("EOI"), std::string::npos);

  Grammar G = load(ChildEoiGrammar);
  auto RG = Interp(G).parse(ByteSpan::of(In));
  ASSERT_TRUE(RG) << RG.message();
  const auto *SN = cast<NodeTree>(RG->get());
  EXPECT_EQ(SN->attr(G.interner().intern("n")).value_or(-1), 5)
      << "A.EOI must read the grammar-defined attribute, not the window";

  // The env of a parsed node contains exactly its grammar-defined
  // attributes plus touched start/end — no runtime-stored EOI.
  Grammar Plain = load(R"(
    S -> A[0, 1] ;
    A -> "x"[0, 1] ;
  )");
  auto R = Interp(Plain).parse(ByteSpan::of(In));
  ASSERT_TRUE(R) << R.message();
  const auto *Root = cast<NodeTree>(R->get());
  EXPECT_FALSE(Root->attr(Plain.interner().intern("EOI")).has_value());
  const NodeTree *A = Root->childNode(Plain.interner().intern("A"));
  ASSERT_NE(A, nullptr);
  EXPECT_FALSE(A->attr(Plain.interner().intern("EOI")).has_value());
  // start/end are present here — A did touch its byte.
  EXPECT_EQ(A->attr(Plain.symStart()).value_or(-1), 0);
  EXPECT_EQ(A->attr(Plain.symEnd()).value_or(-1), 1);
}

//===----------------------------------------------------------------------===//
// Regression: btoi(lo, hi) with extreme in-range operands must fail with
// partiality, not signed overflow, on both sides. The window width used
// to be computed as Hi - Lo before any validation — lo = -(2^62),
// hi = 2^62 (buildable with checked shifts alone) made the subtraction
// itself UB, aborting the ASan+UBSan jobs.
//===----------------------------------------------------------------------===//

namespace {

/// Alternative 1 evaluates the poisoned btoi and must fail cleanly;
/// alternative 2 proves the failure was partiality, not an abort.
const char *BtoiOverflowGrammar = R"(
  S -> "x"[0, 1] {a = 1 << 62} {v = btoi(0 - a, a)}
     / "x"[0, 1] {ok = btoi(0, 1)} ;
)";

} // namespace

TEST(DifferentialTest, BtoiWindowOverflowIsPartialInInterpreter) {
  Grammar G = load(BtoiOverflowGrammar);
  std::vector<uint8_t> In = {'x'};
  auto R = Interp(G).parse(ByteSpan::of(In));
  ASSERT_TRUE(R) << R.message();
  const auto *Root = cast<NodeTree>(R->get());
  EXPECT_FALSE(Root->attr(G.interner().intern("v")).has_value());
  EXPECT_EQ(Root->attr(G.interner().intern("ok")).value_or(-1), 'x');
}

TEST(DifferentialTest, BtoiWindowOverflowIsPartialInGenerated) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C++ compiler";
  Grammar G = load(BtoiOverflowGrammar);
  auto Code = emitCppParser(G, "gen");
  ASSERT_TRUE(Code) << Code.message();
  std::string Exe;
  ASSERT_TRUE(compileGenerated(*Code, "btoi_overflow", Exe));
  GenRun R = runGenerated(Exe, "btoi_overflow", {'x'});
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Dump.find("ok=120"), std::string::npos) << R.Dump;
  EXPECT_EQ(R.Dump.find("v="), std::string::npos) << R.Dump;
}

//===----------------------------------------------------------------------===//
// Regression: the recursion-depth limit is a HARD failure on both sides.
// The generated runtime used to soft-fail at the limit and backtrack
// into sibling alternatives, so a fallback alternative could accept an
// input the interpreter rejects with a hard depth error.
//===----------------------------------------------------------------------===//

namespace {

/// T recurses once per leading 'a'; the raw fallback would match ANY
/// input if the depth failure were soft.
const char *DeepGrammar = R"(
  S -> T[0, EOI] / raw[0, EOI] ;
  T -> "a"[0, 1] T[1, EOI] / "a"[0, 1] ;
)";

} // namespace

TEST(DifferentialTest, DepthLimitIsAHardFailureInInterpreter) {
  Grammar G = load(DeepGrammar);
  EngineOptions Opts;
  Opts.MaxDepth = 64; // keep the recursion shallow (ASan-sized stacks)
  auto E = makeEngine(EngineKind::Interp, G, nullptr, Opts);
  ASSERT_TRUE(E) << E.message();
  std::vector<uint8_t> Shallow(10, 'a');
  EXPECT_TRUE((*E)->parse(ByteSpan::of(Shallow)));
  std::vector<uint8_t> Deep(100, 'a');
  EXPECT_FALSE((*E)->parse(ByteSpan::of(Deep)))
      << "the depth limit must abort the parse, not fall back to raw";
}

TEST(DifferentialTest, DepthLimitIsAHardFailureInGenerated) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C++ compiler";
  Grammar G = load(DeepGrammar);
  auto Code = emitCppParser(G, "gen");
  ASSERT_TRUE(Code) << Code.message();
  std::string Exe;
  ASSERT_TRUE(compileGenerated(*Code, "deep", Exe));
  std::vector<uint8_t> Shallow(100, 'a');
  EXPECT_EQ(runGenerated(Exe, "deep", Shallow).ExitCode, 0);
  // Past ipg_rt::MaxDepth (8192) the parse must abort hard — no raw
  // fallback. The guard caps the actual recursion at MaxDepth frames,
  // so the input length does not grow the stack.
  std::vector<uint8_t> Deep(9000, 'a');
  EXPECT_EQ(runGenerated(Exe, "deep", Deep).ExitCode, 1)
      << "the depth limit must abort the parse, not fall back to raw";
}

TEST(DifferentialTest, NodeEnvHasNoEoiEntryInGenerated) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C++ compiler";
  std::vector<uint8_t> In = {'x'};

  Grammar G = load(ChildEoiGrammar);
  auto Code = emitCppParser(G, "gen");
  ASSERT_TRUE(Code) << Code.message();
  std::string Exe;
  ASSERT_TRUE(compileGenerated(*Code, "child_eoi", Exe));
  GenRun Collide = runGenerated(Exe, "child_eoi", In);
  EXPECT_EQ(Collide.ExitCode, 0);
  EXPECT_NE(Collide.Dump.find("n=5"), std::string::npos)
      << "A.EOI must read the grammar-defined attribute (5), not the "
         "window size (1):\n"
      << Collide.Dump;

  // EOI inside a rule's own expressions still reads the window size.
  Grammar Own = load(R"(
    S -> A[0, 1] {n = EOI} ;
    A -> "x"[0, 1] ;
  )");
  auto OCode = emitCppParser(Own, "gen");
  ASSERT_TRUE(OCode) << OCode.message();
  std::string OExe;
  ASSERT_TRUE(compileGenerated(*OCode, "own_eoi", OExe));
  GenRun R = runGenerated(OExe, "own_eoi", In);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Dump.find("n=1"), std::string::npos) << R.Dump;
  EXPECT_EQ(R.Dump.find("EOI="), std::string::npos)
      << "no env entry may be named EOI:\n"
      << R.Dump;
}
