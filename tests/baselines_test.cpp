//===- tests/baselines_test.cpp - baseline parsers agree with IPG ---------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 7 validates the IPG parsers by comparing their output against
/// Kaitai Struct's trees and readelf/unzip's output; these tests do the
/// same across the synthetic corpora: every baseline must agree with the
/// IPG engine on both acceptance and extracted structure.
///
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "baselines/Handwritten.h"
#include "baselines/KaitaiParsers.h"
#include "baselines/NailParsers.h"
#include "formats/Dns.h"
#include "formats/Elf.h"
#include "formats/FormatRegistry.h"
#include "formats/Gif.h"
#include "formats/Ipv4Udp.h"
#include "formats/Pe.h"
#include "formats/Zip.h"
#include "runtime/Interp.h"

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <gtest/gtest.h>
#include <map>
#include <string>
#include <vector>

using namespace ipg;
using namespace ipg::baselines;
using namespace ipg::formats;

TEST(KaitaiAgreement, Elf) {
  auto R = loadElfGrammar();
  ASSERT_TRUE(R) << R.message();
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    ElfSynthSpec Spec;
    Spec.Seed = Seed;
    Spec.NumSymbols = 8 * Seed;
    Spec.NumDynEntries = 4 * Seed;
    auto Bytes = synthesizeElf(Spec);

    Interp I(R->G);
    auto Tree = I.parse(ByteSpan::of(Bytes));
    ASSERT_TRUE(Tree) << Tree.message();
    auto P = extractElf(*Tree, R->G);
    ASSERT_TRUE(P) << P.message();

    KaitaiStream Io(Bytes);
    KaitaiElf K;
    ASSERT_TRUE(K.parse(Io));
    EXPECT_EQ(K.ShOff, P->ShOff);
    EXPECT_EQ(K.ShNum, P->ShNum);
    ASSERT_EQ(K.Sections.size(), P->Sections.size());
    std::vector<uint64_t> KTags;
    for (const auto &S : K.Sections)
      for (auto &[Tag, Val] : S.DynEntries)
        KTags.push_back(Tag);
    EXPECT_EQ(KTags, P->DynTags);
  }
}

TEST(KaitaiAgreement, Zip) {
  auto R = loadZipGrammar();
  ASSERT_TRUE(R) << R.message();
  BlackboxRegistry BB = standardBlackboxes();
  for (size_t N : {1u, 3u, 8u}) {
    auto Bytes = synthesizeZip(zipArchiveOfCopies(N, 120, false));
    Interp I(R->G, &BB);
    auto Tree = I.parse(ByteSpan::of(Bytes));
    ASSERT_TRUE(Tree) << Tree.message();
    auto P = extractZip(*Tree, R->G);
    ASSERT_TRUE(P) << P.message();

    KaitaiStream Io(Bytes);
    KaitaiZip K;
    ASSERT_TRUE(K.parse(Io));
    EXPECT_EQ(K.EntryCount, P->EntryCount);
    ASSERT_EQ(K.Entries.size(), P->Entries.size());
    for (size_t I2 = 0; I2 < K.Entries.size(); ++I2) {
      EXPECT_EQ(K.Entries[I2].Method, P->Entries[I2].Method);
      EXPECT_EQ(K.Entries[I2].CSize, P->Entries[I2].CompressedSize);
    }
  }
}

TEST(KaitaiAgreement, Gif) {
  auto R = loadGifGrammar();
  ASSERT_TRUE(R) << R.message();
  GifSynthSpec Spec;
  Spec.NumExtensions = 4;
  Spec.NumImages = 3;
  auto Bytes = synthesizeGif(Spec);

  Interp I(R->G);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractGif(*Tree, R->G);
  ASSERT_TRUE(P) << P.message();

  KaitaiStream Io(Bytes);
  KaitaiGif K;
  ASSERT_TRUE(K.parse(Io));
  EXPECT_EQ(K.Width, P->Width);
  EXPECT_EQ(K.Height, P->Height);
  EXPECT_EQ(K.HasGct, P->HasGct);
  EXPECT_EQ(K.Gct.size(), P->GctBytes);
  EXPECT_EQ(K.NumBlocks, P->NumBlocks);
  EXPECT_EQ(K.NumImages, P->NumImages);
  ASSERT_EQ(K.ImageData.size(), P->ImageDataSizes.size());
  for (size_t I2 = 0; I2 < K.ImageData.size(); ++I2)
    EXPECT_EQ(K.ImageData[I2].size(), P->ImageDataSizes[I2]);
}

TEST(KaitaiAgreement, Pe) {
  auto R = loadPeGrammar();
  ASSERT_TRUE(R) << R.message();
  PeSynthSpec Spec;
  Spec.NumSections = 5;
  auto Bytes = synthesizePe(Spec);

  Interp I(R->G);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractPe(*Tree, R->G);
  ASSERT_TRUE(P) << P.message();

  KaitaiStream Io(Bytes);
  KaitaiPe K;
  ASSERT_TRUE(K.parse(Io));
  EXPECT_EQ(K.LfaNew, P->LfaNew);
  EXPECT_EQ(K.Machine, P->Machine);
  ASSERT_EQ(K.Sections.size(), P->Sections.size());
  for (size_t I2 = 0; I2 < K.Sections.size(); ++I2) {
    EXPECT_EQ(K.Sections[I2].RawPtr, P->Sections[I2].RawPtr);
    EXPECT_EQ(K.Sections[I2].RawSize, P->Sections[I2].RawSize);
  }
}

TEST(KaitaiAgreement, DnsAndIpv4) {
  auto RD = loadDnsGrammar();
  ASSERT_TRUE(RD) << RD.message();
  DnsSynthSpec DSpec;
  DSpec.NumAnswers = 6;
  auto DBytes = synthesizeDns(DSpec);
  Interp ID(RD->G);
  auto DTree = ID.parse(ByteSpan::of(DBytes));
  ASSERT_TRUE(DTree) << DTree.message();
  auto DP = extractDns(*DTree, RD->G, ByteSpan::of(DBytes));
  ASSERT_TRUE(DP) << DP.message();
  KaitaiStream DIo(DBytes);
  KaitaiDns KD;
  ASSERT_TRUE(KD.parse(DIo));
  EXPECT_EQ(KD.Id, DP->Id);
  EXPECT_EQ(KD.AnCount, DP->AnCount);
  ASSERT_EQ(KD.Answers.size(), DP->AnswerTypes.size());

  auto RI = loadIpv4UdpGrammar();
  ASSERT_TRUE(RI) << RI.message();
  Ipv4SynthSpec ISpec;
  ISpec.PayloadSize = 200;
  auto IBytes = synthesizeIpv4Udp(ISpec);
  Interp II(RI->G);
  auto ITree = II.parse(ByteSpan::of(IBytes));
  ASSERT_TRUE(ITree) << ITree.message();
  auto IP = extractIpv4Udp(*ITree, RI->G);
  ASSERT_TRUE(IP) << IP.message();
  KaitaiStream IIo(IBytes);
  KaitaiIpv4 KI;
  ASSERT_TRUE(KI.parse(IIo));
  EXPECT_EQ(KI.Ihl, IP->Ihl);
  EXPECT_EQ(KI.TotalLength, IP->TotalLength);
  EXPECT_EQ(KI.SrcPort, IP->SrcPort);
  EXPECT_EQ(KI.DstPort, IP->DstPort);
}

TEST(NailAgreement, Dns) {
  auto R = loadDnsGrammar();
  ASSERT_TRUE(R) << R.message();
  DnsSynthSpec Spec;
  Spec.NumAnswers = 4;
  DnsModel Model;
  auto Bytes = synthesizeDns(Spec, &Model);

  Interp I(R->G);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractDns(*Tree, R->G, ByteSpan::of(Bytes));
  ASSERT_TRUE(P) << P.message();

  Arena A;
  const NailDns *D = nailParseDns(A, Bytes.data(), Bytes.size());
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Id, P->Id);
  EXPECT_EQ(D->AnCount, P->AnCount);
  for (uint16_t K = 0; K < D->AnCount; ++K) {
    EXPECT_EQ(D->Answers[K].Type, P->AnswerTypes[K]);
    EXPECT_EQ(D->Answers[K].RdLen, P->RDataLengths[K]);
    ASSERT_EQ(D->Answers[K].RdLen, Model.RData[K].size());
    EXPECT_EQ(0, std::memcmp(D->Answers[K].RData, Model.RData[K].data(),
                             Model.RData[K].size()));
  }
}

TEST(NailAgreement, Ipv4) {
  auto R = loadIpv4UdpGrammar();
  ASSERT_TRUE(R) << R.message();
  Ipv4SynthSpec Spec;
  Spec.OptionWords = 2;
  auto Bytes = synthesizeIpv4Udp(Spec);

  Interp I(R->G);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractIpv4Udp(*Tree, R->G);
  ASSERT_TRUE(P) << P.message();

  Arena A;
  const NailIpv4 *N = nailParseIpv4(A, Bytes.data(), Bytes.size());
  ASSERT_NE(N, nullptr);
  EXPECT_EQ(N->Ihl, P->Ihl);
  EXPECT_EQ(N->TotalLength, P->TotalLength);
  EXPECT_EQ(N->HasUdp, P->HasUdp);
  EXPECT_EQ(N->SrcPort, P->SrcPort);
}

TEST(NailAgreement, RejectsMalformedLikeIpg) {
  auto R = loadDnsGrammar();
  ASSERT_TRUE(R) << R.message();
  auto Bytes = synthesizeDns(DnsSynthSpec());
  Bytes[12] = 99; // overlong label
  Interp I(R->G);
  EXPECT_FALSE(I.parse(ByteSpan::of(Bytes)));
  Arena A;
  EXPECT_EQ(nailParseDns(A, Bytes.data(), Bytes.size()), nullptr);
}

TEST(HandwrittenAgreement, ElfMatchesIpg) {
  auto R = loadElfGrammar();
  ASSERT_TRUE(R) << R.message();
  ElfSynthSpec Spec;
  Spec.NumSymbols = 32;
  auto Bytes = synthesizeElf(Spec);

  Interp I(R->G);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractElf(*Tree, R->G);
  ASSERT_TRUE(P) << P.message();

  HwElf E;
  ASSERT_TRUE(hwParseElf(ByteSpan::of(Bytes), E));
  EXPECT_EQ(E.ShOff, P->ShOff);
  EXPECT_EQ(E.ShNum, P->ShNum);
  EXPECT_EQ(E.SymValues, P->SymValues);
  std::vector<uint64_t> Tags;
  for (auto &[Tag, Val] : E.DynEntries)
    Tags.push_back(Tag);
  EXPECT_EQ(Tags, P->DynTags);

  std::string Report = hwReadelf(ByteSpan::of(Bytes));
  EXPECT_NE(Report.find("Section Headers:"), std::string::npos);
  EXPECT_NE(Report.find("Symbols:"), std::string::npos);
}

TEST(HandwrittenAgreement, UnzipExtractsIdenticalFiles) {
  ZipSynthSpec Spec;
  Spec.Entries.push_back({"a.bin", std::vector<uint8_t>(400, 'a'), true});
  Spec.Entries.push_back({"b.bin", std::vector<uint8_t>(100, 'b'), false});
  auto Bytes = synthesizeZip(Spec);

  std::map<std::string, std::vector<uint8_t>> Files;
  ASSERT_TRUE(hwUnzip(ByteSpan::of(Bytes), Files));
  ASSERT_EQ(Files.size(), 2u);
  EXPECT_EQ(Files["a.bin"], Spec.Entries[0].Data);
  EXPECT_EQ(Files["b.bin"], Spec.Entries[1].Data);

  // And the IPG route recovers the same compressed payload.
  auto R = loadZipGrammar();
  ASSERT_TRUE(R) << R.message();
  BlackboxRegistry BB = standardBlackboxes();
  Interp I(R->G, &BB);
  auto Tree = I.parse(ByteSpan::of(Bytes));
  ASSERT_TRUE(Tree) << Tree.message();
  auto P = extractZip(*Tree, R->G);
  ASSERT_TRUE(P) << P.message();
  EXPECT_EQ(P->Entries[0].Data, Spec.Entries[0].Data);
}

TEST(HandwrittenAgreement, BothRejectCorruptZip) {
  auto Bytes = synthesizeZip(zipArchiveOfCopies(2, 64, false));
  Bytes[0] = 'Q'; // first local header magic
  std::map<std::string, std::vector<uint8_t>> Files;
  EXPECT_FALSE(hwUnzip(ByteSpan::of(Bytes), Files));

  auto R = loadZipGrammar();
  ASSERT_TRUE(R) << R.message();
  BlackboxRegistry BB = standardBlackboxes();
  Interp I(R->G, &BB);
  EXPECT_FALSE(I.parse(ByteSpan::of(Bytes)));
}

TEST(ArenaTest, BumpAllocationAndReset) {
  Arena A(64);
  int *X = A.make<int>(41);
  EXPECT_EQ(*X, 41);
  uint8_t *Big = A.makeArray<uint8_t>(10000);
  ASSERT_NE(Big, nullptr);
  Big[9999] = 7;
  size_t Used = A.bytesAllocated();
  EXPECT_GE(Used, 10004u);
  A.reset();
  EXPECT_EQ(A.bytesAllocated(), 0u);
  // Reuses the same blocks.
  int *Y = A.make<int>(3);
  EXPECT_EQ(static_cast<void *>(Y), static_cast<void *>(X));
}
