//===- tests/CorruptCorpus.h - shared corrupt-at-offset sweep ---*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic damage model shared by the differential harness
/// (tests/differential_test.cpp), the salvage tests
/// (tests/recovery_test.cpp), and the robustness bench
/// (bench/bench_recovery.cpp): K probe offsets spread across a corpus —
/// both extremes plus evenly spaced interior positions — crossed with
/// three mutation kinds:
///
///   flip      — one byte XORed with 0xff (same length, local damage);
///   truncate  — the input cut at the offset (structure ends mid-
///               construct);
///   zero-run  — a 16-byte run zeroed from the offset (a torn sector /
///               unwritten page, damage wider than one field).
///
/// Everything is pure arithmetic on (size, probe count): no RNG, so
/// every consumer sweeps the identical grid and their verdict counts
/// are comparable across binaries and CI runs.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_TESTS_CORRUPTCORPUS_H
#define IPG_TESTS_CORRUPTCORPUS_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ipg::testutil {

enum class CorruptKind { Flip, Truncate, ZeroRun };

inline const char *corruptKindName(CorruptKind K) {
  switch (K) {
  case CorruptKind::Flip:
    return "flip";
  case CorruptKind::Truncate:
    return "truncate";
  case CorruptKind::ZeroRun:
    return "zero-run";
  }
  return "?";
}

/// Width of the CorruptKind::ZeroRun damage window (clamped at EOF).
constexpr size_t ZeroRunBytes = 16;

/// The probe grid for a corpus of \p Size bytes: offset 0, the final
/// byte, and Probes-2 evenly spread interior offsets. Requires
/// Size >= Probes (callers assert; every format sample is far larger).
inline std::vector<size_t> corruptOffsets(size_t Size, size_t Probes = 8) {
  std::vector<size_t> Offsets = {0, Size - 1};
  for (size_t K = 1; K + 1 < Probes; ++K)
    Offsets.push_back(K * Size / (Probes - 1));
  return Offsets;
}

/// Applies one mutation to a copy of \p Bytes. \p Off must be < size.
inline std::vector<uint8_t> corruptAt(const std::vector<uint8_t> &Bytes,
                                      CorruptKind K, size_t Off) {
  std::vector<uint8_t> Bad = Bytes;
  switch (K) {
  case CorruptKind::Flip:
    Bad[Off] ^= 0xff;
    break;
  case CorruptKind::Truncate:
    Bad.resize(Off);
    break;
  case CorruptKind::ZeroRun:
    std::fill(Bad.begin() + static_cast<std::ptrdiff_t>(Off),
              Bad.begin() + static_cast<std::ptrdiff_t>(
                                std::min(Off + ZeroRunBytes, Bad.size())),
              uint8_t{0});
    break;
  }
  return Bad;
}

/// One entry of the full sweep grid.
struct CorruptProbe {
  CorruptKind Kind;
  size_t Off;
};

/// The full deterministic grid: every kind at every probe offset.
inline std::vector<CorruptProbe> corruptProbes(size_t Size,
                                               size_t Probes = 8) {
  std::vector<CorruptProbe> Out;
  for (CorruptKind K :
       {CorruptKind::Flip, CorruptKind::Truncate, CorruptKind::ZeroRun})
    for (size_t Off : corruptOffsets(Size, Probes))
      Out.push_back(CorruptProbe{K, Off});
  return Out;
}

} // namespace ipg::testutil

#endif // IPG_TESTS_CORRUPTCORPUS_H
