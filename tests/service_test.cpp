//===- tests/service_test.cpp - tree handoff & ParseService tests ---------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explicit tree-ownership-transfer seam and the thread-pooled front
/// end built on it:
///
///  - TreePtr::detach() produces a FrozenTree that is safe to read and
///    destroy on a DIFFERENT thread, while the engine's recycler is
///    released (no park-after-move of a detached store);
///  - Engine::adoptStore closes the loop: a store that round-tripped
///    through a FrozenTree is re-bound and recycled by the next parse;
///  - ParseService runs those pieces across N workers and M queued
///    mixed-format files with correct, self-contained results;
///  - under IPG_CHECK_OWNERSHIP, touching a NON-detached TreePtr's
///    refcount off the engine thread aborts (death test).
///
//===----------------------------------------------------------------------===//

#include "codegen/GenEngine.h"
#include "formats/FormatRegistry.h"
#include "runtime/Engine.h"
#include "service/InputSource.h"
#include "service/ParseService.h"

#include "TreeCanonical.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <future>
#include <thread>

#include <unistd.h>

using namespace ipg;
using testutil::renderCanonical;

namespace {

/// One reference dump per (format, scale), parsed single-threaded.
std::string referenceDump(const std::string &Name, unsigned Scale) {
  auto FE = formats::makeFormatEngine(Name, EngineKind::Interp);
  EXPECT_TRUE(FE) << FE.message();
  std::vector<uint8_t> In = formats::sampleInput(Name, Scale);
  auto T = (*FE)->parse(ByteSpan::of(In));
  EXPECT_TRUE(T) << T.message();
  return T ? renderCanonical(*T, FE->Load->G) : std::string();
}

} // namespace

//===----------------------------------------------------------------------===//
// FrozenTree / adoptStore seam
//===----------------------------------------------------------------------===//

TEST(FrozenTreeTest, DetachedTreeIsReadableAndDestroyableOffThread) {
  auto FE = formats::makeFormatEngine("gif", EngineKind::Interp);
  ASSERT_TRUE(FE) << FE.message();
  std::vector<uint8_t> In = formats::sampleInput("gif", 2);
  auto T = (*FE)->parse(ByteSpan::of(In));
  ASSERT_TRUE(T) << T.message();
  std::string Want = renderCanonical(*T, FE->Load->G);

  FrozenTree F = (*T).detach();
  ASSERT_TRUE(F);
  EXPECT_FALSE(*T) << "detach() empties the TreePtr";

  // Read AND destroy on another thread; the engine stays on this one.
  std::string Got;
  std::thread Reader([&] {
    Got = renderCanonical(F.get(), FE->Load->G);
    FrozenTree Dead = std::move(F); // dies on this thread
  });
  Reader.join();
  EXPECT_EQ(Want, Got);

  // The engine is fully functional afterwards — but the detached store
  // did NOT come home: the next parse starts fresh.
  auto T2 = (*FE)->parse(ByteSpan::of(In));
  ASSERT_TRUE(T2) << T2.message();
  EXPECT_FALSE((*FE)->stats().StoreRecycled)
      << "a detached store must not park in the recycler";
}

TEST(FrozenTreeTest, AdoptStoreClosesTheRecyclingLoop) {
  auto FE = formats::makeFormatEngine("dns", EngineKind::Interp);
  ASSERT_TRUE(FE) << FE.message();
  std::vector<uint8_t> In = formats::sampleInput("dns", 2);

  auto T = (*FE)->parse(ByteSpan::of(In));
  ASSERT_TRUE(T) << T.message();
  FrozenTree F = (*T).detach();

  // Simulate the service round trip: consumer surrenders the store,
  // worker adopts it, next parse recycles instead of allocating.
  TreeStore *S = F.releaseStore();
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE((*FE)->adoptStore(S));
  auto T2 = (*FE)->parse(ByteSpan::of(In));
  ASSERT_TRUE(T2) << T2.message();
  EXPECT_TRUE((*FE)->stats().StoreRecycled);

  // A second store cannot be adopted while one is already parked.
  auto T3 = (*FE)->parse(ByteSpan::of(In));
  ASSERT_TRUE(T3) << T3.message();
  FrozenTree F2 = (*T2).detach();
  FrozenTree F3 = (*T3).detach();
  TreeStore *S2 = F2.releaseStore();
  TreeStore *S3 = F3.releaseStore();
  EXPECT_TRUE((*FE)->adoptStore(S2));
  EXPECT_FALSE((*FE)->adoptStore(S3)) << "one parked store at a time";
  TreeStore::destroy(S3);
}

TEST(FrozenTreeTest, ParkAfterMoveStillWorksForUndetachedTrees) {
  // The pre-existing single-thread recycling contract (TreePtr dies on
  // the engine thread -> store parks) must survive the detach() seam.
  auto FE = formats::makeFormatEngine("gif", EngineKind::Interp);
  ASSERT_TRUE(FE) << FE.message();
  std::vector<uint8_t> In = formats::sampleInput("gif", 1);
  {
    auto T = (*FE)->parse(ByteSpan::of(In));
    ASSERT_TRUE(T) << T.message();
  } // TreePtr dies here, on the engine's thread
  auto T2 = (*FE)->parse(ByteSpan::of(In));
  ASSERT_TRUE(T2) << T2.message();
  EXPECT_TRUE((*FE)->stats().StoreRecycled);
}

#if defined(IPG_CHECK_OWNERSHIP) && defined(GTEST_HAS_DEATH_TEST) &&       \
    !IPG_ATOMIC_REFCOUNT
// With IPG_ATOMIC_REFCOUNT the cross-thread touch below is LEGAL (that is
// the point of the opt-in), so the abort contract only exists in the
// default plain-refcount configuration.
TEST(FrozenTreeDeathTest, OffThreadTreePtrReleaseAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ASSERT_DEATH(
      {
        auto FE = formats::makeFormatEngine("gif", EngineKind::Interp);
        std::vector<uint8_t> In = formats::sampleInput("gif", 1);
        auto T = (*FE)->parse(ByteSpan::of(In));
        // Copying/destroying a NON-detached TreePtr off the engine
        // thread touches the plain refcount cross-thread: abort.
        std::thread Evil([&] { TreePtr Copy = *T; });
        Evil.join();
      },
      "refcount touched off the owning engine thread");
}
#endif

#if IPG_ATOMIC_REFCOUNT
TEST(FrozenTreeTest, AtomicRefcountsAllowCrossThreadSharing) {
  // The IPG_ATOMIC_REFCOUNT contract: handle copies fan out to reader
  // threads (each taking and dropping references concurrently), the
  // readers are joined, and the surviving handle still owns a valid
  // tree. The final release stays on the engine thread so the recycler
  // handoff keeps its single-thread discipline.
  auto FE = formats::makeFormatEngine("gif", EngineKind::Interp);
  ASSERT_TRUE(FE) << FE.message();
  std::vector<uint8_t> In = formats::sampleInput("gif", 1);
  auto T = (*FE)->parse(ByteSpan::of(In));
  ASSERT_TRUE(T) << T.message();
  const std::string Want = testutil::renderCanonical(*T, FE->Load->G);
  std::vector<std::thread> Readers;
  std::atomic<unsigned> Agree{0};
  for (int I = 0; I < 8; ++I)
    Readers.emplace_back([&] {
      for (int K = 0; K < 100; ++K) {
        TreePtr Copy = *T; // cross-thread retain
        if (testutil::renderCanonical(Copy, FE->Load->G) == Want)
          Agree.fetch_add(1, std::memory_order_relaxed);
      } // cross-thread release
    });
  for (std::thread &R : Readers)
    R.join();
  EXPECT_EQ(Agree.load(), 800u);
}
#endif

//===----------------------------------------------------------------------===//
// ParseService
//===----------------------------------------------------------------------===//

TEST(ParseServiceTest, BatchAcrossFormatsAndWorkersIsCorrect) {
  ParseServiceOptions Opts;
  Opts.Workers = 4;
  auto Svc = ParseService::create({"gif", "dns", "ipv4udp"}, Opts);
  ASSERT_TRUE(Svc) << Svc.message();
  EXPECT_EQ((*Svc)->workers(), 4u);

  const char *Names[] = {"gif", "dns", "ipv4udp"};
  std::string Want[3];
  for (int I = 0; I < 3; ++I)
    Want[I] = referenceDump(Names[I], 2);

  std::vector<ParseRequest> Batch;
  for (int Rep = 0; Rep < 8; ++Rep)
    for (int I = 0; I < 3; ++I)
      Batch.push_back(ParseRequest{
          Names[I],
          InputSource::fromBytes(formats::sampleInput(Names[I], 2))});

  auto Futures = (*Svc)->submitBatch(std::move(Batch));
  ASSERT_EQ(Futures.size(), 24u);
  for (size_t I = 0; I < Futures.size(); ++I) {
    ParseResult R = Futures[I].get();
    ASSERT_TRUE(R.ok()) << R.error();
    EXPECT_EQ(R.format(), Names[I % 3]);
    EXPECT_GT(R.stats().NodesCreated, 0u);
    // Results are produced on worker threads and verified (and then
    // destroyed) here on the main thread — the FrozenTree handoff.
    auto FE = formats::makeFormatEngine(Names[I % 3], EngineKind::Interp);
    EXPECT_EQ(renderCanonical(R.root(), FE->Load->G), Want[I % 3]);
  }
}

TEST(ParseServiceTest, ResultsOutliveTheService) {
  ParseServiceOptions Opts;
  Opts.Workers = 2;
  auto Svc = ParseService::create({"dns"}, Opts);
  ASSERT_TRUE(Svc) << Svc.message();

  auto Fut = (*Svc)->submit(ParseRequest{
      "dns", InputSource::fromBytes(formats::sampleInput("dns", 1))});
  ParseResult R = Fut.get();
  ASSERT_TRUE(R.ok()) << R.error();
  Svc->reset(); // workers join; engines and recyclers die

  // The result is self-contained: tree + input bytes still readable,
  // destruction (at scope exit) routes to a closed slot harmlessly.
  auto FE = formats::makeFormatEngine("dns", EngineKind::Interp);
  EXPECT_EQ(renderCanonical(R.root(), FE->Load->G), referenceDump("dns", 1));
}

TEST(ParseServiceTest, MisusesFailFastWithDiagnostics) {
  ParseServiceOptions Opts;
  Opts.Workers = 1;
  auto Svc = ParseService::create({"gif"}, Opts);
  ASSERT_TRUE(Svc) << Svc.message();

  ParseResult NoFmt =
      (*Svc)
          ->submit(ParseRequest{"pdf", InputSource::fromBytes({1, 2, 3})})
          .get();
  EXPECT_FALSE(NoFmt.ok());
  EXPECT_NE(NoFmt.error().find("not configured"), std::string::npos);

  ParseResult NoInput = (*Svc)->submit(ParseRequest{"gif", nullptr}).get();
  EXPECT_FALSE(NoInput.ok());
  EXPECT_NE(NoInput.error().find("null input"), std::string::npos);

  ParseResult BadParse =
      (*Svc)
          ->submit(ParseRequest{"gif", InputSource::fromBytes({9, 9, 9})})
          .get();
  EXPECT_FALSE(BadParse.ok());
  EXPECT_FALSE(BadParse.error().empty());

  auto NoSuch = ParseService::create({"nope"});
  EXPECT_FALSE(NoSuch);
}

TEST(ParseServiceTest, MmapInputSourceParsesLikeOwnedBytes) {
  std::vector<uint8_t> Bytes = formats::sampleInput("gif", 2);
  std::string Path = testing::TempDir() + "/ipg_service_gif_" +
                     std::to_string(::getpid()) + ".bin";
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              static_cast<std::streamsize>(Bytes.size()));
  }
  auto Mapped = InputSource::mapFile(Path);
  ASSERT_TRUE(Mapped) << Mapped.message();
  EXPECT_EQ((*Mapped)->size(), Bytes.size());

  ParseServiceOptions Opts;
  Opts.Workers = 2;
  auto Svc = ParseService::create({"gif"}, Opts);
  ASSERT_TRUE(Svc) << Svc.message();
  ParseResult R = (*Svc)->submit(ParseRequest{"gif", *Mapped}).get();
  ASSERT_TRUE(R.ok()) << R.error();
  auto FE = formats::makeFormatEngine("gif", EngineKind::Interp);
  EXPECT_EQ(renderCanonical(R.root(), FE->Load->G), referenceDump("gif", 2));
  std::remove(Path.c_str());

  auto Missing = InputSource::mapFile(Path + ".does_not_exist");
  EXPECT_FALSE(Missing);
}

TEST(ParseServiceTest, GeneratedModeMatchesInterpMode) {
  if (!GenModule::hostCompilerAvailable())
    GTEST_SKIP() << "no host C++ compiler";

  ParseServiceOptions Opts;
  Opts.Workers = 2;
  Opts.Mode = EngineKind::Generated;
  auto Svc = ParseService::create({"gif", "dns"}, Opts);
  ASSERT_TRUE(Svc) << Svc.message();
  EXPECT_EQ((*Svc)->mode(), EngineKind::Generated);

  std::vector<ParseRequest> Batch;
  for (int Rep = 0; Rep < 4; ++Rep)
    for (const char *Name : {"gif", "dns"})
      Batch.push_back(ParseRequest{
          Name, InputSource::fromBytes(formats::sampleInput(Name, 2))});
  auto Futures = (*Svc)->submitBatch(std::move(Batch));
  for (size_t I = 0; I < Futures.size(); ++I) {
    ParseResult R = Futures[I].get();
    ASSERT_TRUE(R.ok()) << R.error();
    const char *Name = (I % 2 == 0) ? "gif" : "dns";
    auto FE = formats::makeFormatEngine(Name, EngineKind::Interp);
    EXPECT_EQ(renderCanonical(R.root(), FE->Load->G),
              referenceDump(Name, 2));
  }
}
