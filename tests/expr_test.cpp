//===- tests/expr_test.cpp - expression AST / eval / linearize tests ------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "expr/Eval.h"
#include "expr/Expr.h"
#include "expr/Linear.h"
#include "support/Bytes.h"
#include "support/Casting.h"

#include <cstdint>
#include <gtest/gtest.h>
#include <map>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

using namespace ipg;

namespace {

/// A programmable context for expression tests.
class TestCtx : public EvalContext {
public:
  std::map<Symbol, int64_t> Attrs;
  std::map<std::pair<Symbol, Symbol>, int64_t> NtAttrs;
  std::map<std::tuple<Symbol, int64_t, Symbol>, int64_t> Elems;
  std::map<Symbol, int64_t> ArrayLens;
  int64_t Eoi = 0;
  std::vector<uint8_t> Input;

  std::optional<int64_t> attr(Symbol Id) const override {
    auto It = Attrs.find(Id);
    if (It == Attrs.end())
      return std::nullopt;
    return It->second;
  }
  std::optional<int64_t> ntAttr(Symbol NT, Symbol Attr) const override {
    auto It = NtAttrs.find({NT, Attr});
    if (It == NtAttrs.end())
      return std::nullopt;
    return It->second;
  }
  std::optional<int64_t> elemAttr(Symbol NT, int64_t Index,
                                  Symbol Attr) const override {
    auto It = Elems.find({NT, Index, Attr});
    if (It == Elems.end())
      return std::nullopt;
    return It->second;
  }
  std::optional<int64_t> arrayLength(Symbol NT) const override {
    auto It = ArrayLens.find(NT);
    if (It == ArrayLens.end())
      return std::nullopt;
    return It->second;
  }
  std::optional<int64_t> eoi() const override { return Eoi; }
  std::optional<int64_t> termEnd(uint32_t) const override {
    return std::nullopt;
  }
  std::optional<int64_t> readInput(ReadKind RK, int64_t Lo,
                                   int64_t Hi) const override {
    ByteSpan S = ByteSpan::of(Input);
    if (RK == ReadKind::BtoiLe) {
      if (Lo < 0 || Hi <= Lo || Hi > (int64_t)S.size() || Hi - Lo > 8)
        return std::nullopt;
      return (int64_t)S.readUnsigned(Lo, Hi - Lo, Endian::Little);
    }
    if (RK == ReadKind::U8) {
      if (Lo < 0 || Lo + 1 > (int64_t)S.size())
        return std::nullopt;
      return (int64_t)S.readUnsigned(Lo, 1, Endian::Little);
    }
    return std::nullopt;
  }
};

ExprPtr num(int64_t V) { return NumExpr::create(V); }
ExprPtr bin(BinOpKind Op, ExprPtr L, ExprPtr R) {
  return BinaryExpr::create(Op, std::move(L), std::move(R));
}

} // namespace

TEST(ExprTest, KindsAndCasting) {
  ExprPtr N = num(7);
  EXPECT_TRUE(isa<NumExpr>(N.get()));
  EXPECT_FALSE(isa<BinaryExpr>(N.get()));
  EXPECT_EQ(cast<NumExpr>(N.get())->value(), 7);
  EXPECT_EQ(dyn_cast<BinaryExpr>(N.get()), nullptr);
}

TEST(ExprEvalTest, Arithmetic) {
  TestCtx Ctx;
  EXPECT_EQ(*evaluate(*bin(BinOpKind::Add, num(2), num(3)), Ctx), 5);
  EXPECT_EQ(*evaluate(*bin(BinOpKind::Sub, num(2), num(3)), Ctx), -1);
  EXPECT_EQ(*evaluate(*bin(BinOpKind::Mul, num(4), num(3)), Ctx), 12);
  EXPECT_EQ(*evaluate(*bin(BinOpKind::Div, num(7), num(2)), Ctx), 3);
  EXPECT_EQ(*evaluate(*bin(BinOpKind::Mod, num(7), num(2)), Ctx), 1);
}

TEST(ExprEvalTest, DivisionByZeroIsPartial) {
  TestCtx Ctx;
  EXPECT_FALSE(evaluate(*bin(BinOpKind::Div, num(7), num(0)), Ctx));
  EXPECT_FALSE(evaluate(*bin(BinOpKind::Mod, num(7), num(0)), Ctx));
}

TEST(ExprEvalTest, Comparisons) {
  TestCtx Ctx;
  EXPECT_EQ(*evaluate(*bin(BinOpKind::Eq, num(2), num(2)), Ctx), 1);
  EXPECT_EQ(*evaluate(*bin(BinOpKind::Eq, num(2), num(3)), Ctx), 0);
  EXPECT_EQ(*evaluate(*bin(BinOpKind::Ne, num(2), num(3)), Ctx), 1);
  EXPECT_EQ(*evaluate(*bin(BinOpKind::Lt, num(2), num(3)), Ctx), 1);
  EXPECT_EQ(*evaluate(*bin(BinOpKind::Gt, num(2), num(3)), Ctx), 0);
  EXPECT_EQ(*evaluate(*bin(BinOpKind::Le, num(3), num(3)), Ctx), 1);
  EXPECT_EQ(*evaluate(*bin(BinOpKind::Ge, num(2), num(3)), Ctx), 0);
}

TEST(ExprEvalTest, ShiftAndBitAnd) {
  TestCtx Ctx;
  EXPECT_EQ(*evaluate(*bin(BinOpKind::Shl, num(2), num(3)), Ctx), 16);
  EXPECT_EQ(*evaluate(*bin(BinOpKind::Shr, num(0xff), num(4)), Ctx), 0xf);
  EXPECT_EQ(*evaluate(*bin(BinOpKind::BitAnd, num(0b1100), num(0b1010)), Ctx),
            0b1000);
  EXPECT_FALSE(evaluate(*bin(BinOpKind::Shl, num(1), num(200)), Ctx));
}

TEST(ExprEvalTest, LogicalShortCircuit) {
  TestCtx Ctx;
  // RHS would fail (division by zero), but LHS short-circuits.
  ExprPtr Bad = bin(BinOpKind::Div, num(1), num(0));
  EXPECT_EQ(*evaluate(*bin(BinOpKind::And, num(0), Bad), Ctx), 0);
  EXPECT_EQ(*evaluate(*bin(BinOpKind::Or, num(5), Bad), Ctx), 1);
  EXPECT_FALSE(evaluate(*bin(BinOpKind::And, num(1), Bad), Ctx));
}

TEST(ExprEvalTest, Conditional) {
  TestCtx Ctx;
  ExprPtr C = CondExpr::create(num(1), num(10), num(20));
  EXPECT_EQ(*evaluate(*C, Ctx), 10);
  ExprPtr C2 = CondExpr::create(num(0), num(10), num(20));
  EXPECT_EQ(*evaluate(*C2, Ctx), 20);
}

TEST(ExprEvalTest, References) {
  StringInterner In;
  Symbol X = In.intern("x"), H = In.intern("H"), Ofs = In.intern("ofs");
  TestCtx Ctx;
  Ctx.Attrs[X] = 11;
  Ctx.NtAttrs[{H, Ofs}] = 64;
  Ctx.Eoi = 100;
  EXPECT_EQ(*evaluate(*RefExpr::attr(X), Ctx), 11);
  EXPECT_EQ(*evaluate(*RefExpr::ntAttr(H, Ofs), Ctx), 64);
  EXPECT_EQ(*evaluate(*RefExpr::eoi(), Ctx), 100);
  EXPECT_FALSE(evaluate(*RefExpr::attr(In.intern("missing")), Ctx));
}

TEST(ExprEvalTest, ElementReference) {
  StringInterner In;
  Symbol SH = In.intern("SH"), Ofs = In.intern("ofs");
  TestCtx Ctx;
  Ctx.Elems[{SH, 2, Ofs}] = 512;
  ExprPtr E = RefExpr::ntElemAttr(SH, num(2), Ofs);
  EXPECT_EQ(*evaluate(*E, Ctx), 512);
  ExprPtr Missing = RefExpr::ntElemAttr(SH, num(3), Ofs);
  EXPECT_FALSE(evaluate(*Missing, Ctx));
}

TEST(ExprEvalTest, ExistsFindsFirstMatch) {
  // The paper's example: array Num, Num(0).val = 1, Num(1).val = 0;
  // exists j . Num(j).val = 0 ? j : 0  evaluates to 1.
  StringInterner In;
  Symbol NumNT = In.intern("Num"), Val = In.intern("val"),
         J = In.intern("j");
  TestCtx Ctx;
  Ctx.ArrayLens[NumNT] = 2;
  Ctx.Elems[{NumNT, 0, Val}] = 1;
  Ctx.Elems[{NumNT, 1, Val}] = 0;
  ExprPtr Cond = bin(BinOpKind::Eq,
                     RefExpr::ntElemAttr(NumNT, RefExpr::attr(J), Val),
                     num(0));
  ExprPtr E = ExistsExpr::create(J, Cond, RefExpr::attr(J), num(0));
  EXPECT_EQ(*evaluate(*E, Ctx), 1);
}

TEST(ExprEvalTest, ExistsFallsBackToElse) {
  StringInterner In;
  Symbol NumNT = In.intern("Num"), Val = In.intern("val"),
         J = In.intern("j");
  TestCtx Ctx;
  Ctx.ArrayLens[NumNT] = 2;
  Ctx.Elems[{NumNT, 0, Val}] = 5;
  Ctx.Elems[{NumNT, 1, Val}] = 6;
  ExprPtr Cond = bin(BinOpKind::Eq,
                     RefExpr::ntElemAttr(NumNT, RefExpr::attr(J), Val),
                     num(0));
  ExprPtr E = ExistsExpr::create(J, Cond, RefExpr::attr(J), num(777));
  EXPECT_EQ(*evaluate(*E, Ctx), 777);
}

TEST(ExprEvalTest, BuiltinReads) {
  TestCtx Ctx;
  Ctx.Input = {0x34, 0x12, 0xff};
  ExprPtr Btoi = ReadExpr::btoi(ReadKind::BtoiLe, num(0), num(2));
  EXPECT_EQ(*evaluate(*Btoi, Ctx), 0x1234);
  ExprPtr U8 = ReadExpr::fixed(ReadKind::U8, num(2));
  EXPECT_EQ(*evaluate(*U8, Ctx), 0xff);
  ExprPtr OutOfRange = ReadExpr::btoi(ReadKind::BtoiLe, num(1), num(9));
  EXPECT_FALSE(evaluate(*OutOfRange, Ctx));
}

TEST(ExprPrintTest, RendersSurfaceSyntax) {
  StringInterner In;
  Symbol H = In.intern("H"), Ofs = In.intern("ofs");
  ExprPtr E = bin(BinOpKind::Add, RefExpr::ntAttr(H, Ofs), num(8));
  EXPECT_EQ(E->str(In), "(H.ofs + 8)");
  EXPECT_EQ(RefExpr::eoi()->str(In), "EOI");
}

TEST(LinearizeTest, ConstantsFold) {
  StringInterner In;
  AtomTable Atoms;
  ExprPtr E = bin(BinOpKind::Add, bin(BinOpKind::Mul, num(3), num(4)),
                  num(5));
  LinExpr L = linearize(*E, Atoms, "e0", In);
  EXPECT_TRUE(L.isConstant());
  EXPECT_EQ(L.Const, Rational(17));
}

TEST(LinearizeTest, EoiIsSharedAcrossPrefixes) {
  StringInterner In;
  AtomTable Atoms;
  LinExpr A = linearize(*RefExpr::eoi(), Atoms, "e0", In);
  LinExpr B = linearize(*RefExpr::eoi(), Atoms, "e1", In);
  ASSERT_EQ(A.Coeffs.size(), 1u);
  ASSERT_EQ(B.Coeffs.size(), 1u);
  EXPECT_EQ(A.Coeffs.begin()->first, B.Coeffs.begin()->first);
}

TEST(LinearizeTest, AttrsDistinctPerPrefix) {
  StringInterner In;
  Symbol X = In.intern("x");
  AtomTable Atoms;
  LinExpr A = linearize(*RefExpr::attr(X), Atoms, "e0", In);
  LinExpr B = linearize(*RefExpr::attr(X), Atoms, "e1", In);
  EXPECT_NE(A.Coeffs.begin()->first, B.Coeffs.begin()->first);
}

TEST(LinearizeTest, LinearCombination) {
  StringInterner In;
  AtomTable Atoms;
  // EOI - 1
  ExprPtr E = bin(BinOpKind::Sub, RefExpr::eoi(), num(1));
  LinExpr L = linearize(*E, Atoms, "e0", In);
  EXPECT_EQ(L.Const, Rational(-1));
  ASSERT_EQ(L.Coeffs.size(), 1u);
  EXPECT_EQ(L.Coeffs.begin()->second, Rational(1));
}

TEST(LinearizeTest, NonlinearBecomesOpaqueAtom) {
  StringInterner In;
  Symbol X = In.intern("x");
  AtomTable Atoms;
  // x * EOI is nonlinear.
  ExprPtr E = bin(BinOpKind::Mul, RefExpr::attr(X), RefExpr::eoi());
  LinExpr L = linearize(*E, Atoms, "e0", In);
  EXPECT_EQ(L.Coeffs.size(), 1u);
  EXPECT_TRUE(L.Const.isZero());
}

TEST(ForEachExprTest, VisitsAllSubexpressions) {
  StringInterner In;
  Symbol X = In.intern("x");
  ExprPtr E = CondExpr::create(bin(BinOpKind::Lt, RefExpr::attr(X), num(3)),
                               num(1), RefExpr::eoi());
  int Count = 0;
  forEachExpr(*E, [&](const Expr &) { ++Count; });
  EXPECT_EQ(Count, 6); // cond, lt, ref, 3, 1, EOI
}
