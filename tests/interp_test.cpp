//===- tests/interp_test.cpp - parsing semantics tests --------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the big-step semantics on the paper's worked examples:
/// Figure 1 (intervals), Figure 2 (random access), Figure 3 (binary number
/// via shrinking left recursion), Figure 4 (the special end attribute),
/// Figure 6 (arrays + predicates + element refs), the a^n b^n c^n grammar
/// of Section 3.5, the backward parser and two-pass parser of Section 4.3,
/// and the full-language features of Section 3.4.
///
//===----------------------------------------------------------------------===//

#include "analysis/AttributeCheck.h"
#include "runtime/Interp.h"
#include "support/Casting.h"

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

using namespace ipg;

namespace {

/// Loads a grammar or aborts the test.
Grammar load(const char *Src) {
  auto R = loadGrammar(Src);
  EXPECT_TRUE(R) << R.message();
  if (!R)
    std::abort();
  return std::move(R->G);
}

Expected<TreePtr> parseStr(Interp &I, std::string_view Input) {
  return I.parse(ByteSpan::of(Input));
}

bool accepts(Grammar &G, std::string_view Input,
             const BlackboxRegistry *BB = nullptr) {
  Interp I(G, BB);
  auto R = I.parse(ByteSpan::of(Input));
  return static_cast<bool>(R);
}

int64_t attrOf(const TreePtr &T, Grammar &G, const char *Name) {
  const auto *N = cast<NodeTree>(T.get());
  auto V = N->attr(G.intern(Name));
  EXPECT_TRUE(V.has_value()) << "missing attribute " << Name;
  return V.value_or(-1);
}

} // namespace

//===----------------------------------------------------------------------===//
// Figure 1: the first example — intervals pin sub-parsers to slices.
//===----------------------------------------------------------------------===//

TEST(SemanticsFig1, AcceptsAaAnythingBb) {
  Grammar G = load(R"(
    S -> A[0, 2] B[EOI - 2, EOI] ;
    A -> "aa"[0, 2] ;
    B -> "bb"[0, 2] ;
  )");
  EXPECT_TRUE(accepts(G, "aabb"));
  EXPECT_TRUE(accepts(G, "aaXYZbb"));
  EXPECT_TRUE(accepts(G, "aa...............bb"));
  EXPECT_FALSE(accepts(G, "abbb"));
  EXPECT_FALSE(accepts(G, "aab"));  // interval [EOI-2,EOI] overlaps "ab"
  EXPECT_FALSE(accepts(G, "aa"));   // B would re-read "aa"
  EXPECT_FALSE(accepts(G, "a"));
  EXPECT_FALSE(accepts(G, ""));
}

//===----------------------------------------------------------------------===//
// Figure 2: random access — the header directs where Data is parsed.
//===----------------------------------------------------------------------===//

TEST(SemanticsFig2, RandomAccessViaHeaderOffsets) {
  Grammar G = load(R"(
    S -> H[0, 8] Data[H.offset, H.offset + H.length] ;
    H -> {offset = u32le(0)} {length = u32le(4)} ;
    Data -> "DATA"[0, 4] ;
  )");
  ByteWriter W;
  W.u32le(12); // offset: skip header + 4 bytes of junk
  W.u32le(4);  // length
  W.raw("????");
  W.raw("DATA");
  W.raw("trailing");
  Interp I(G);
  auto R = I.parse(ByteSpan::of(W.bytes()));
  ASSERT_TRUE(R) << R.message();

  // Wrong offset must fail.
  ByteWriter W2;
  W2.u32le(8);
  W2.u32le(4);
  W2.raw("????DATA");
  EXPECT_FALSE(Interp(G).parse(ByteSpan::of(W2.bytes())));
}

TEST(SemanticsFig2, OffsetPastEoiFails) {
  Grammar G = load(R"(
    S -> H[0, 8] Data[H.offset, H.offset + H.length] ;
    H -> {offset = u32le(0)} {length = u32le(4)} ;
    Data -> "DATA"[0, 4] ;
  )");
  ByteWriter W;
  W.u32le(100);
  W.u32le(4);
  W.raw("DATA");
  EXPECT_FALSE(Interp(G).parse(ByteSpan::of(W.bytes())));
}

//===----------------------------------------------------------------------===//
// Figure 3: binary number parser — left recursion with shrinking intervals.
//===----------------------------------------------------------------------===//

namespace {
const char *BinaryNumberGrammar = R"(
  Int -> Int[0, EOI - 1] Digit[EOI - 1, EOI] {val = 2 * Int.val + Digit.val}
       / Digit[0, 1] {val = Digit.val} ;
  Digit -> "0"[0, 1] {val = 0} / "1"[0, 1] {val = 1} ;
)";
}

TEST(SemanticsFig3, ComputesBinaryValue) {
  Grammar G = load(BinaryNumberGrammar);
  Interp I(G);
  auto R = parseStr(I, "101");
  ASSERT_TRUE(R) << R.message();
  EXPECT_EQ(attrOf(*R, G, "val"), 5);
}

TEST(SemanticsFig3, SingleDigit) {
  Grammar G = load(BinaryNumberGrammar);
  Interp I(G);
  auto R = parseStr(I, "1");
  ASSERT_TRUE(R) << R.message();
  EXPECT_EQ(attrOf(*R, G, "val"), 1);
}

TEST(SemanticsFig3, RejectsBadInput) {
  Grammar G = load(BinaryNumberGrammar);
  EXPECT_FALSE(accepts(G, ""));
  EXPECT_FALSE(accepts(G, "abc"));
  // Subtle but faithful to Figure 8: "102" is *accepted* — alternative 2
  // (Digit[0,1]) constrains only the slice [0,1), so any string starting
  // with a digit parses, with val = that digit. Exact coverage is the
  // caller's job (see ExactCoverageViaEndCheck).
  EXPECT_TRUE(accepts(G, "102"));
}

TEST(SemanticsFig3, ExactCoverageViaEndCheck) {
  // Wrapping Int with check(Int.end = EOI) enforces that the whole input
  // is a binary number.
  std::string Src = std::string(BinaryNumberGrammar) +
                    "start S ; S -> Int[0, EOI] check(Int.end = EOI) ;";
  Grammar G = load(Src.c_str());
  EXPECT_TRUE(accepts(G, "101"));
  EXPECT_FALSE(accepts(G, "102"));
  EXPECT_FALSE(accepts(G, "10x"));
}

TEST(SemanticsFig3, PropertySweepOverValues) {
  Grammar G = load(BinaryNumberGrammar);
  Interp I(G);
  for (int V = 0; V < 64; ++V) {
    std::string Bits;
    for (int B = 5; B >= 0; --B)
      Bits += ((V >> B) & 1) ? '1' : '0';
    auto R = parseStr(I, Bits);
    ASSERT_TRUE(R) << Bits << ": " << R.message();
    EXPECT_EQ(attrOf(*R, G, "val"), V) << Bits;
  }
}

//===----------------------------------------------------------------------===//
// Figure 4: the special end attribute — CFG-like sequencing.
//===----------------------------------------------------------------------===//

namespace {
const char *Fig4Grammar = R"(
  S -> "1"[0, 1] O[1, EOI] "stop"[O.end, EOI] ;
  O -> "0"[0, 1] O[1, EOI] / "0"[0, 1] ;
)";
}

TEST(SemanticsFig4, EndAttributeSequencing) {
  Grammar G = load(Fig4Grammar);
  EXPECT_TRUE(accepts(G, "10stop"));
  EXPECT_TRUE(accepts(G, "1000stop"));
  EXPECT_FALSE(accepts(G, "1stop"));    // O needs at least one 0
  EXPECT_FALSE(accepts(G, "100astop")); // junk between 0s and stop
  EXPECT_FALSE(accepts(G, "1000stoq"));
}

TEST(SemanticsFig4, EndValuesAreAdjustedToParentOffsets) {
  // The paper's walkthrough: on "1000stop", after O[1, EOI] parses,
  // O.end must be 4 (3 zeros starting at offset 1, shifted by l = 1).
  Grammar G = load(Fig4Grammar);
  Interp I(G);
  auto R = parseStr(I, "1000stop");
  ASSERT_TRUE(R) << R.message();
  const auto *S = cast<NodeTree>(R->get());
  const NodeTree *O = S->childNode(G.intern("O"));
  ASSERT_NE(O, nullptr);
  EXPECT_EQ(O->attr(G.intern("end")), 4);
  EXPECT_EQ(O->attr(G.intern("start")), 1);
  // S itself touched [0, 8).
  EXPECT_EQ(S->attr(G.intern("start")), 0);
  EXPECT_EQ(S->attr(G.intern("end")), 8);
}

//===----------------------------------------------------------------------===//
// Figure 6: arrays, element references, predicates.
//===----------------------------------------------------------------------===//

namespace {
const char *Fig6Grammar = R"(
  S -> H[0, 4] {size = 4}
       for i = 0 to H.num do A[4 + size * i, 4 + size * (i + 1)]
       {a0 = A(0).val}
       check(a0 > 0 && a0 < 10) ;
  H -> {num = u32le(0)} ;
  A -> {val = u32le(0)} ;
)";

std::vector<uint8_t> fig6Input(std::vector<uint32_t> Values) {
  ByteWriter W;
  W.u32le(Values.size());
  for (uint32_t V : Values)
    W.u32le(V);
  return W.take();
}
} // namespace

TEST(SemanticsFig6, ArrayAndPredicate) {
  Grammar G = load(Fig6Grammar);
  Interp I(G);
  auto Ok = I.parse(ByteSpan::of(fig6Input({5, 100, 200})));
  ASSERT_TRUE(Ok) << Ok.message();
  EXPECT_EQ(attrOf(*Ok, G, "a0"), 5);

  // Predicate a0 in (0, 10) fails for a0 = 10.
  EXPECT_FALSE(Interp(G).parse(ByteSpan::of(fig6Input({10, 1}))));
  // And for a0 = 0.
  EXPECT_FALSE(Interp(G).parse(ByteSpan::of(fig6Input({0}))));
}

TEST(SemanticsFig6, ElementCountMismatchFails) {
  Grammar G = load(Fig6Grammar);
  // Claims 3 elements but provides 2: the third element's interval runs
  // past EOI.
  ByteWriter W;
  W.u32le(3);
  W.u32le(5);
  W.u32le(6);
  EXPECT_FALSE(Interp(G).parse(ByteSpan::of(W.bytes())));
}

TEST(SemanticsArrays, EmptyArrayAcceptsAnything) {
  Grammar G = load(R"(
    S -> {n = u8(0)} for i = 1 to n do A[8 * i, 8 * (i + 1)] ;
    A -> "abcdefgh"[0, 8] ;
  )");
  // n = 0 => loop from 1 to 0 does not run; imposes no constraints.
  std::vector<uint8_t> In = {0, 'x', 'y', 'z'};
  EXPECT_TRUE(Interp(G).parse(ByteSpan::of(In)));
}

TEST(SemanticsArrays, ElementEnvironmentsAreIndependent) {
  Grammar G = load(R"(
    S -> {n = u8(0)} for i = 0 to n do A[1 + 2 * i, 1 + 2 * (i + 1)]
         {sum = A(0).v + A(1).v} ;
    A -> {v = u16le(0)} ;
  )");
  ByteWriter W;
  W.u8(2);
  W.u16le(300);
  W.u16le(77);
  Interp I(G);
  auto R = I.parse(ByteSpan::of(W.bytes()));
  ASSERT_TRUE(R) << R.message();
  EXPECT_EQ(attrOf(*R, G, "sum"), 377);
}

//===----------------------------------------------------------------------===//
// Section 3.5: a^n b^n c^n — beyond context-free.
//===----------------------------------------------------------------------===//

namespace {
const char *AnBnCnGrammar = R"(
  S -> check(EOI % 3 = 0) {n = EOI / 3} A[0, n] B[n, 2 * n] C[2 * n, 3 * n] ;
  A -> "a"[0, 1] A[1, EOI] / "a"[0, 1] ;
  B -> "b"[0, 1] B[1, EOI] / "b"[0, 1] ;
  C -> "c"[0, 1] C[1, EOI] / "c"[0, 1] ;
)";
}

TEST(SemanticsAnBnCn, AcceptsExactlyAnBnCn) {
  Grammar G = load(AnBnCnGrammar);
  EXPECT_TRUE(accepts(G, "abc"));
  EXPECT_TRUE(accepts(G, "aabbcc"));
  EXPECT_TRUE(accepts(G, "aaabbbccc"));
  EXPECT_FALSE(accepts(G, ""));
  EXPECT_FALSE(accepts(G, "aabcc"));
  EXPECT_FALSE(accepts(G, "abcabc"));
  EXPECT_FALSE(accepts(G, "aaabbbcc"));
  EXPECT_FALSE(accepts(G, "cba"));
}

class AnBnCnSweep : public ::testing::TestWithParam<int> {};

TEST_P(AnBnCnSweep, AcceptsNAndRejectsOffByOne) {
  Grammar G = load(AnBnCnGrammar);
  int N = GetParam();
  std::string Good = std::string(N, 'a') + std::string(N, 'b') +
                     std::string(N, 'c');
  EXPECT_TRUE(accepts(G, Good)) << N;
  // One extra 'b' breaks the length check or the slice contents.
  std::string Bad = std::string(N, 'a') + std::string(N + 1, 'b') +
                    std::string(N, 'c');
  EXPECT_FALSE(accepts(G, Bad)) << N;
}

INSTANTIATE_TEST_SUITE_P(Lengths, AnBnCnSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33));

//===----------------------------------------------------------------------===//
// Section 4.3: backward parsing (bNum) and two-pass parsing.
//===----------------------------------------------------------------------===//

TEST(SemanticsBackward, BackwardDecimalNumber) {
  // The paper's bNum: scans a decimal number backward from the end.
  Grammar G = load(R"(
    bNum -> bNum[0, EOI - 1] Digit[EOI - 1, EOI]
            {v = bNum.v * 10 + Digit.v}
          / Digit[EOI - 1, EOI] {v = Digit.v} ;
    Digit -> "0"[0, 1] {v = 0} / "1"[0, 1] {v = 1} / "2"[0, 1] {v = 2}
           / "3"[0, 1] {v = 3} / "4"[0, 1] {v = 4} / "5"[0, 1] {v = 5}
           / "6"[0, 1] {v = 6} / "7"[0, 1] {v = 7} / "8"[0, 1] {v = 8}
           / "9"[0, 1] {v = 9} ;
  )");
  Interp I(G);
  auto R = parseStr(I, "1234");
  ASSERT_TRUE(R) << R.message();
  EXPECT_EQ(attrOf(*R, G, "v"), 1234);
}

TEST(SemanticsTwoPass, OverlappingIntervalsParseTwice) {
  // Section 4.3's two-pass pattern: object headers OH hold the length of
  // the object their link field points at; objects are parsed in a second
  // pass using an existential to find the matching header.
  //
  // Layout: {n:u8} then n object headers (link:u8, len:u8, ofs:u8), then
  // object payloads anywhere in the file.
  Grammar G = load(R"(
    S -> {n = u8(0)}
         for i = 0 to n do OH[1 + 3 * i, 1 + 3 * (i + 1)]
         for i = 0 to n do Obj[OH(i).ofs,
                               OH(i).ofs + (exists j . OH(j).link = i
                                              ? OH(j).len : 0 - 1)] ;
    OH -> {link = u8(0)} {len = u8(1)} {ofs = u8(2)} ;
    Obj -> "OB"[0, 2] ;
  )");
  // Two objects; header 0 links to object 1, header 1 links to object 0.
  ByteWriter W;
  W.u8(2);
  // OH(0): link=1, len=2, ofs=7   (object 0 lives at 7)
  W.u8(1);
  W.u8(2);
  W.u8(7);
  // OH(1): link=0, len=2, ofs=9   (object 1 lives at 9)
  W.u8(0);
  W.u8(2);
  W.u8(9);
  W.raw("OBOB");
  Interp I(G);
  auto R = I.parse(ByteSpan::of(W.bytes()));
  ASSERT_TRUE(R) << R.message();

  // Break one payload: second pass fails.
  ByteWriter W2;
  W2.u8(2);
  W2.u8(1);
  W2.u8(2);
  W2.u8(7);
  W2.u8(0);
  W2.u8(2);
  W2.u8(9);
  W2.raw("OBXX");
  EXPECT_FALSE(Interp(G).parse(ByteSpan::of(W2.bytes())));
}

//===----------------------------------------------------------------------===//
// Biased choice semantics.
//===----------------------------------------------------------------------===//

TEST(SemanticsBiasedChoice, FirstSuccessWins) {
  Grammar G = load(R"(
    S -> X[0, EOI] ;
    X -> "ab"[0, 2] {which = 1} / "ab"[0, 2] {which = 2} / "a"[0, 1] {which = 3} ;
  )");
  Interp I(G);
  auto R = parseStr(I, "ab");
  ASSERT_TRUE(R) << R.message();
  const auto *S = cast<NodeTree>(R->get());
  const NodeTree *X = S->childNode(G.intern("X"));
  ASSERT_NE(X, nullptr);
  EXPECT_EQ(X->attr(G.intern("which")), 1);
}

TEST(SemanticsBiasedChoice, FallsThroughOnFailure) {
  Grammar G = load(R"(
    S -> X[0, EOI] ;
    X -> "ab"[0, 2] {which = 1} / "a"[0, 1] {which = 3} ;
  )");
  Interp I(G);
  auto R = parseStr(I, "a");
  ASSERT_TRUE(R) << R.message();
  const NodeTree *X =
      cast<NodeTree>(R->get())->childNode(G.intern("X"));
  EXPECT_EQ(X->attr(G.intern("which")), 3);
}

TEST(SemanticsBiasedChoice, AttributeEffectsRollBackAcrossAlternatives) {
  // A failing alternative must not leak attribute bindings.
  Grammar G = load(R"(
    S -> {x = 1} "zz"[0, 2] / {y = 2} "a"[0, 1] ;
  )");
  Interp I(G);
  auto R = parseStr(I, "a");
  ASSERT_TRUE(R) << R.message();
  const auto *S = cast<NodeTree>(R->get());
  EXPECT_FALSE(S->attr(G.intern("x")).has_value());
  EXPECT_EQ(S->attr(G.intern("y")), 2);
}

//===----------------------------------------------------------------------===//
// Terminals: empty strings, prefix matching inside larger intervals.
//===----------------------------------------------------------------------===//

TEST(SemanticsTerminals, EmptyTerminalMatchesEmptyInterval) {
  Grammar G = load(R"(S -> ""[0, 0] "ab"[0, 2] ;)");
  EXPECT_TRUE(accepts(G, "ab"));
}

TEST(SemanticsTerminals, TerminalMatchesPrefixOfInterval) {
  // T-Ter requires r - l >= |s1| and matches at l; trailing slack is legal.
  Grammar G = load(R"(S -> "ab"[0, EOI] ;)");
  EXPECT_TRUE(accepts(G, "ab"));
  EXPECT_TRUE(accepts(G, "abXXX"));
  EXPECT_FALSE(accepts(G, "a"));
  EXPECT_FALSE(accepts(G, "Xab"));
}

TEST(SemanticsTerminals, IntervalBeyondEoiFails) {
  Grammar G = load(R"(S -> "a"[0, 2] ;)");
  EXPECT_FALSE(accepts(G, "a")); // interval [0,2] exceeds |s|=1
  EXPECT_TRUE(accepts(G, "ab"));
}

//===----------------------------------------------------------------------===//
// Switch terms (Section 3.4).
//===----------------------------------------------------------------------===//

namespace {
const char *EtherTypeGrammar = R"(
  S -> {ethertype = u16be(0)}
       switch(ethertype <= 1500: Payload[2, 2 + ethertype]
            / ethertype >= 1536: Typed[2, EOI]
            / Fail[1, 0]) ;
  Payload -> "" ;
  Typed -> "T"[0, 1] ;
  Fail -> "x"[0, 1] ;
)";
}

TEST(SemanticsSwitch, EtherTypeLengthOrType) {
  Grammar G = load(EtherTypeGrammar);
  // Length branch: 4 payload bytes.
  ByteWriter W;
  W.u16be(4);
  W.raw("....");
  EXPECT_TRUE(Interp(G).parse(ByteSpan::of(W.bytes())));
  // Type branch.
  ByteWriter W2;
  W2.u16be(0x0800);
  W2.raw("T...");
  EXPECT_TRUE(Interp(G).parse(ByteSpan::of(W2.bytes())));
  // Default branch has invalid interval [1, 0] -> always fails.
  ByteWriter W3;
  W3.u16be(1510);
  W3.raw("....");
  EXPECT_FALSE(Interp(G).parse(ByteSpan::of(W3.bytes())));
}

TEST(SemanticsSwitch, NoDefaultNoMatchFails) {
  Grammar G = load(R"(
    S -> {t = u8(0)} switch(t = 1: A[1, EOI]) ;
    A -> "a"[0, 1] ;
  )");
  std::vector<uint8_t> Yes = {1, 'a'};
  std::vector<uint8_t> No = {2, 'a'};
  EXPECT_TRUE(Interp(G).parse(ByteSpan::of(Yes)));
  EXPECT_FALSE(Interp(G).parse(ByteSpan::of(No)));
}

//===----------------------------------------------------------------------===//
// Local rules (where-clauses) and lexical visibility.
//===----------------------------------------------------------------------===//

TEST(SemanticsWhere, LocalRuleSeesEnclosingAttributes) {
  Grammar G = load(R"(
    S -> A[0, 1] D[1, EOI]
      where { D -> "x"[A.val, A.val + 1] ; } ;
    A -> {val = u8(0)} ;
  )");
  // A.val = 2: D (on slice [1, EOI)) must find 'x' at its offset 2.
  std::vector<uint8_t> In = {2, '.', '.', 'x', '.'};
  EXPECT_TRUE(Interp(G).parse(ByteSpan::of(In)));
  std::vector<uint8_t> Bad = {1, '.', '.', 'x', '.'};
  EXPECT_FALSE(Interp(G).parse(ByteSpan::of(Bad)));
}

TEST(SemanticsWhere, ElfStyleSectionDispatch) {
  // The ELF pattern of Figure 9: a local Sec rule dispatches on the type
  // field of the i-th section header, where i is the enclosing loop
  // variable.
  Grammar G = load(R"(
    S -> {n = u8(0)}
         for i = 0 to n do SH[1 + 3 * i, 1 + 3 * (i + 1)]
         for i = 0 to n do Sec[SH(i).ofs, SH(i).ofs + SH(i).sz]
      where { Sec -> switch(SH(i).type = 6: DynSec[0, EOI]
                          / OtherSec[0, EOI]) ; } ;
    SH -> {ofs = u8(0)} {sz = u8(1)} {type = u8(2)} ;
    DynSec -> "DD"[0, 2] ;
    OtherSec -> "" ;
  )");
  ByteWriter W;
  W.u8(2);
  // SH(0): ofs=7, sz=2, type=6 (dynamic)
  W.u8(7);
  W.u8(2);
  W.u8(6);
  // SH(1): ofs=9, sz=2, type=1 (other)
  W.u8(9);
  W.u8(2);
  W.u8(1);
  W.raw("DD");
  W.raw("..");
  EXPECT_TRUE(Interp(G).parse(ByteSpan::of(W.bytes())));

  // Flip the types: now section 0 must be "DD" but holds ".." -> reject.
  auto Bytes = W.take();
  Bytes[3] = 1; // SH(0).type
  Bytes[6] = 6; // SH(1).type
  EXPECT_FALSE(Interp(G).parse(ByteSpan::of(Bytes)));
}

TEST(SemanticsWhere, LocalRuleShadowsGlobal) {
  Grammar G = load(R"(
    S -> D[0, EOI] where { D -> "local"[0, 5] ; } ;
    D -> "global"[0, 6] ;
  )");
  EXPECT_TRUE(accepts(G, "local"));
  EXPECT_FALSE(accepts(G, "global"));
}

//===----------------------------------------------------------------------===//
// Blackbox parsers (Section 3.4).
//===----------------------------------------------------------------------===//

namespace {
BlackboxResult upperBlackbox(ByteSpan In) {
  BlackboxResult R;
  size_t I = 0;
  while (I < In.size() && In[I] >= 'A' && In[I] <= 'Z')
    ++I;
  if (I == 0)
    return BlackboxResult::failure();
  R.Ok = true;
  R.End = I;
  R.Value = static_cast<int64_t>(I);
  for (size_t K = 0; K < I; ++K)
    R.Output.push_back(static_cast<uint8_t>(In[K] - 'A' + 'a'));
  return R;
}
} // namespace

TEST(SemanticsBlackbox, ConsumesAndExposesValEnd) {
  Grammar G = load(R"(
    blackbox upper ;
    S -> upper[0, EOI] "!"[upper.end, EOI] check(upper.val = 3) ;
  )");
  BlackboxRegistry BB;
  BB.add("upper", upperBlackbox);
  EXPECT_TRUE(accepts(G, "ABC!", &BB));
  EXPECT_FALSE(accepts(G, "AB!", &BB));    // val = 2, predicate fails
  EXPECT_FALSE(accepts(G, "abc!", &BB));   // blackbox fails
  EXPECT_FALSE(accepts(G, "ABCD!", &BB));  // predicate fails (val = 4)
}

TEST(SemanticsBlackbox, OutputSurfacesAsLeaf) {
  Grammar G = load(R"(
    blackbox upper ;
    S -> upper[0, EOI] ;
  )");
  BlackboxRegistry BB;
  BB.add("upper", upperBlackbox);
  Interp I(G, &BB);
  auto R = parseStr(I, "XYZ");
  ASSERT_TRUE(R) << R.message();
  const NodeTree *U =
      cast<NodeTree>(R->get())->childNode(G.intern("upper"));
  ASSERT_NE(U, nullptr);
  ASSERT_EQ(U->children().size(), 1u);
  const auto *L = cast<LeafTree>(U->children()[0].get());
  EXPECT_EQ(L->bytes(), "xyz");
}

TEST(SemanticsBlackbox, UnregisteredBlackboxIsHardError) {
  Grammar G = load(R"(
    blackbox mystery ;
    S -> mystery[0, EOI] ;
  )");
  Interp I(G);
  auto R = parseStr(I, "x");
  ASSERT_FALSE(R);
  EXPECT_NE(R.message().find("not registered"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Memoization (Section 3.3) and nontermination guards.
//===----------------------------------------------------------------------===//

TEST(SemanticsMemo, SecondParseOfSameSliceHits) {
  Grammar G = load(R"(
    S -> A[0, EOI] A[0, EOI] ;
    A -> "x"[0, 1] A[1, EOI] / "x"[0, 1] ;
  )");
  Interp I(G);
  auto R = parseStr(I, "xxxx");
  ASSERT_TRUE(R) << R.message();
  EXPECT_GT(I.stats().MemoHits, 0u);

  InterpOptions NoMemo;
  NoMemo.UseMemo = false;
  Interp I2(G, nullptr, NoMemo);
  auto R2 = parseStr(I2, "xxxx");
  ASSERT_TRUE(R2) << R2.message();
  EXPECT_EQ(I2.stats().MemoHits, 0u);
  // Same acceptance and same attribute environment either way.
  EXPECT_EQ(cast<NodeTree>(R->get())->attr(G.intern("end")),
            cast<NodeTree>(R2->get())->attr(G.intern("end")));
}

TEST(SemanticsMemo, FailuresAreMemoizedToo) {
  Grammar G = load(R"(
    S -> A[0, EOI] "!"[0, 1] / A[0, EOI] "?"[0, 1] ;
    A -> "x"[0, 1] A[1, EOI] / "x"[0, 1] ;
  )");
  // Both alternatives parse A over the same slice; the second try must be
  // a memo hit even though the first alternative failed overall.
  Interp I(G);
  auto R = parseStr(I, "xxx");
  ASSERT_FALSE(R); // neither ! nor ? at offset 0
  EXPECT_GT(I.stats().MemoHits, 0u);
}

TEST(SemanticsNontermination, DepthGuardReportsHardError) {
  // Figure 11d: S -> ""[0,0] S[0,EOI] loops on the same interval.
  Grammar G = load(R"(S -> ""[0, 0] S[0, EOI] ;)");
  InterpOptions Opts;
  Opts.MaxDepth = 64;
  Interp I(G, nullptr, Opts);
  auto R = parseStr(I, "abc");
  ASSERT_FALSE(R);
  EXPECT_NE(R.message().find("depth"), std::string::npos);
}

TEST(SemanticsNontermination, ReentryDetectionFailsCleanly) {
  Grammar G = load(R"(S -> ""[0, 0] S[0, EOI] ;)");
  InterpOptions Opts;
  Opts.DetectReentry = true;
  Interp I(G, nullptr, Opts);
  auto R = parseStr(I, "abc");
  ASSERT_FALSE(R);
  EXPECT_NE(R.message().find("rejected"), std::string::npos);
}

TEST(SemanticsNontermination, SeekStyleLoopCaughtByGuards) {
  // Figure 11b: S -> num[0,1] S[num.val, EOI]; input byte 0 jumps back to
  // offset 0 forever.
  Grammar G = load(R"(
    S -> num[0, 1] S[num.val, EOI] / "$"[0, 1] ;
    num -> {val = u8(0)} ;
  )");
  InterpOptions Opts;
  Opts.DetectReentry = true;
  Interp I(G, nullptr, Opts);
  std::vector<uint8_t> Loop = {0, 0, 0};
  EXPECT_FALSE(I.parse(ByteSpan::of(Loop)));
  // A chain that advances terminates and accepts.
  std::vector<uint8_t> Chain = {1, '$'};
  auto R = I.parse(ByteSpan::of(Chain));
  EXPECT_TRUE(R) << R.message();
}

//===----------------------------------------------------------------------===//
// GIF-style chunk lists via recursion + implicit intervals.
//===----------------------------------------------------------------------===//

TEST(SemanticsChunks, BlockListParsesGreedily) {
  Grammar G = load(R"(
    GIF -> "GIF"[0, 3] Blocks[3, EOI] ";"[Blocks.end, EOI] ;
    Blocks -> Block Blocks / Block ;
    Block -> {len = u8(0)} raw[1, 1 + len] ;
  )");
  ByteWriter W;
  W.raw("GIF");
  W.u8(3);
  W.raw("abc");
  W.u8(1);
  W.raw("z");
  W.raw(";");
  EXPECT_TRUE(Interp(G).parse(ByteSpan::of(W.bytes())));

  // Truncated block payload: reject.
  ByteWriter W2;
  W2.raw("GIF");
  W2.u8(5);
  W2.raw("ab");
  W2.raw(";");
  EXPECT_FALSE(Interp(G).parse(ByteSpan::of(W2.bytes())));
}

//===----------------------------------------------------------------------===//
// Stats and tree structure sanity.
//===----------------------------------------------------------------------===//

TEST(SemanticsTree, TreeShapeMatchesGrammar) {
  Grammar G = load(R"(
    S -> H[0, 2] for i = 0 to 2 do B[2 + i, 3 + i] ;
    H -> "hh"[0, 2] ;
    B -> {v = u8(0)} ;
  )");
  Interp I(G);
  auto R = parseStr(I, "hhxy");
  ASSERT_TRUE(R) << R.message();
  const auto *S = cast<NodeTree>(R->get());
  ASSERT_EQ(S->children().size(), 2u);
  const NodeTree *H = S->childNode(G.intern("H"));
  ASSERT_NE(H, nullptr);
  ASSERT_EQ(H->children().size(), 1u);
  EXPECT_TRUE(isa<LeafTree>(H->children()[0].get()));
  const ArrayTree *Arr = S->childArray(G.intern("B"));
  ASSERT_NE(Arr, nullptr);
  EXPECT_EQ(Arr->size(), 2u);
  EXPECT_EQ(Arr->element(0)->attr(G.intern("v")), 'x');
  EXPECT_EQ(Arr->element(1)->attr(G.intern("v")), 'y');
  EXPECT_GT(treeSize(*R->get()), 4u);
  EXPECT_GT(I.stats().NodesCreated, 0u);
  EXPECT_GT(I.stats().TermsExecuted, 0u);
}

TEST(SemanticsTree, DebugPrintingDoesNotCrash) {
  Grammar G = load(R"(S -> "a"[0, 1] {x = 5} ;)");
  Interp I(G);
  auto R = parseStr(I, "a");
  ASSERT_TRUE(R) << R.message();
  std::string S = treeToString(*R->get(), G.interner());
  EXPECT_NE(S.find("Node S"), std::string::npos);
  EXPECT_NE(S.find("x=5"), std::string::npos);
}
