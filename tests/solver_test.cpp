//===- tests/solver_test.cpp - linear system satisfiability tests ---------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/LinearSystem.h"

#include <gtest/gtest.h>
#include <string>

using namespace ipg;

namespace {

LinExpr atom(AtomTable &Atoms, const std::string &Key, Rational C = 1) {
  return LinExpr::atom(Atoms.atom(Key)).scaled(C);
}

} // namespace

TEST(LinearSystemTest, EmptySystemIsSat) {
  LinearSystem Sys;
  EXPECT_EQ(Sys.check(), LinearSystem::Result::MaybeSat);
}

TEST(LinearSystemTest, TrivialContradiction) {
  // 1 = 0 is unsat.
  LinearSystem Sys;
  Sys.addEq(LinExpr::constant(Rational(1)));
  EXPECT_EQ(Sys.check(), LinearSystem::Result::Unsat);
}

TEST(LinearSystemTest, EqualitySubstitution) {
  // x = 3 and x = 4 -> unsat.
  AtomTable Atoms;
  LinearSystem Sys;
  Sys.addEq(atom(Atoms, "x") - LinExpr::constant(Rational(3)));
  Sys.addEq(atom(Atoms, "x") - LinExpr::constant(Rational(4)));
  EXPECT_EQ(Sys.check(), LinearSystem::Result::Unsat);
}

TEST(LinearSystemTest, ConsistentEqualities) {
  // x = 3, y = x + 1 is satisfiable.
  AtomTable Atoms;
  LinearSystem Sys;
  Sys.addEq(atom(Atoms, "x") - LinExpr::constant(Rational(3)));
  Sys.addEq(atom(Atoms, "y") - atom(Atoms, "x") -
            LinExpr::constant(Rational(1)));
  EXPECT_EQ(Sys.check(), LinearSystem::Result::MaybeSat);
}

TEST(LinearSystemTest, TerminationShapeEoiMinusOne) {
  // The binary-number cycle Int -> Int with interval [0, EOI-1]:
  //   0 = 0  and  EOI - 1 = EOI  ==>  -1 = 0, unsat.
  AtomTable Atoms;
  LinearSystem Sys;
  Sys.addEq(LinExpr::constant(Rational(0)));
  Sys.addEq(atom(Atoms, "EOI") - LinExpr::constant(Rational(1)) -
            atom(Atoms, "EOI"));
  EXPECT_EQ(Sys.check(), LinearSystem::Result::Unsat);
}

TEST(LinearSystemTest, TerminationShapeSameInterval) {
  // The looping cycle A -> B -> A with intervals [0, EOI]: satisfiable.
  AtomTable Atoms;
  LinearSystem Sys;
  Sys.addEq(LinExpr::constant(Rational(0)));
  Sys.addEq(atom(Atoms, "EOI") - atom(Atoms, "EOI"));
  EXPECT_EQ(Sys.check(), LinearSystem::Result::MaybeSat);
}

TEST(LinearSystemTest, EndPositivityExtension) {
  // Blocks -> Blocks[Block.end, EOI]: formula Block.end = 0 with the
  // extension Block.end > 0 is unsat.
  AtomTable Atoms;
  LinearSystem Sys;
  Sys.addEq(atom(Atoms, "Block.end"));
  Sys.addLt(atom(Atoms, "Block.end", Rational(-1))); // -end < 0, i.e. end > 0
  EXPECT_EQ(Sys.check(), LinearSystem::Result::Unsat);
}

TEST(LinearSystemTest, FourierMotzkinChain) {
  // x <= y, y <= z, z <= x - 1 -> unsat.
  AtomTable Atoms;
  LinearSystem Sys;
  Sys.addLe(atom(Atoms, "x") - atom(Atoms, "y"));
  Sys.addLe(atom(Atoms, "y") - atom(Atoms, "z"));
  Sys.addLe(atom(Atoms, "z") - atom(Atoms, "x") +
            LinExpr::constant(Rational(1)));
  EXPECT_EQ(Sys.check(), LinearSystem::Result::Unsat);
}

TEST(LinearSystemTest, FourierMotzkinSatChain) {
  // x <= y, y <= z, z <= x is satisfiable (all equal).
  AtomTable Atoms;
  LinearSystem Sys;
  Sys.addLe(atom(Atoms, "x") - atom(Atoms, "y"));
  Sys.addLe(atom(Atoms, "y") - atom(Atoms, "z"));
  Sys.addLe(atom(Atoms, "z") - atom(Atoms, "x"));
  EXPECT_EQ(Sys.check(), LinearSystem::Result::MaybeSat);
}

TEST(LinearSystemTest, StrictVsNonStrict) {
  // x <= 0 and x >= 0 is sat (x = 0) but x < 0 and x >= 0 is unsat.
  {
    AtomTable Atoms;
    LinearSystem Sys;
    Sys.addLe(atom(Atoms, "x"));
    Sys.addLe(atom(Atoms, "x", Rational(-1)));
    EXPECT_EQ(Sys.check(), LinearSystem::Result::MaybeSat);
  }
  {
    AtomTable Atoms;
    LinearSystem Sys;
    Sys.addLt(atom(Atoms, "x"));
    Sys.addLe(atom(Atoms, "x", Rational(-1)));
    EXPECT_EQ(Sys.check(), LinearSystem::Result::Unsat);
  }
}

TEST(LinearSystemTest, RationalCoefficients) {
  // x/2 = 1 and x = 3 -> unsat; x/2 = 1 and x = 2 -> sat.
  {
    AtomTable Atoms;
    LinearSystem Sys;
    Sys.addEq(atom(Atoms, "x", Rational(1, 2)) -
              LinExpr::constant(Rational(1)));
    Sys.addEq(atom(Atoms, "x") - LinExpr::constant(Rational(3)));
    EXPECT_EQ(Sys.check(), LinearSystem::Result::Unsat);
  }
  {
    AtomTable Atoms;
    LinearSystem Sys;
    Sys.addEq(atom(Atoms, "x", Rational(1, 2)) -
              LinExpr::constant(Rational(1)));
    Sys.addEq(atom(Atoms, "x") - LinExpr::constant(Rational(2)));
    EXPECT_EQ(Sys.check(), LinearSystem::Result::MaybeSat);
  }
}

TEST(LinearSystemTest, ManyVariablesEliminate) {
  // a = b, b = c, c = d, d = a + 1 -> unsat.
  AtomTable Atoms;
  LinearSystem Sys;
  Sys.addEq(atom(Atoms, "a") - atom(Atoms, "b"));
  Sys.addEq(atom(Atoms, "b") - atom(Atoms, "c"));
  Sys.addEq(atom(Atoms, "c") - atom(Atoms, "d"));
  Sys.addEq(atom(Atoms, "d") - atom(Atoms, "a") -
            LinExpr::constant(Rational(1)));
  EXPECT_EQ(Sys.check(), LinearSystem::Result::Unsat);
}
