//===- tests/TreeCanonical.h - canonical host-tree rendering ----*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical rendering of a host (interpreter-side) parse tree —
/// byte-for-byte the format of ipg_rt::dumpTree in support/GenRuntime.h,
/// which generated parsers embed. Attributes sort by (name, value);
/// children print in execution order. Shared by the differential harness
/// and the engine/service tests so every suite compares trees the same
/// way.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_TESTS_TREECANONICAL_H
#define IPG_TESTS_TREECANONICAL_H

#include "grammar/Grammar.h"
#include "runtime/ParseTree.h"
#include "support/Casting.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace ipg::testutil {

// Explicit work stack rather than recursion: both engines now parse
// recursion depths far beyond what a thread stack can walk, and the
// deep-tree regression tests render those trees through here.
inline void renderCanonical(const ipg::ParseTree &T,
                            const ipg::StringInterner &Names, int Indent,
                            std::string &Out) {
  struct Item {
    const ipg::ParseTree *T;
    int Indent;
  };
  std::vector<Item> Work;
  Work.push_back(Item{&T, Indent});
  while (!Work.empty()) {
    Item It = Work.back();
    Work.pop_back();
    Out.append(static_cast<size_t>(It.Indent) * 2, ' ');
    switch (It.T->kind()) {
    case ParseTree::Kind::Leaf: {
      const auto &L = *cast<LeafTree>(It.T);
      Out += "Leaf off=" + std::to_string(L.offset()) +
             " len=" + std::to_string(L.length()) +
             " opaque=" + (L.isOpaque() ? "1" : "0") + "\n";
      break;
    }
    case ParseTree::Kind::Array: {
      const auto &A = *cast<ArrayTree>(It.T);
      Out += "Array " + std::string(Names.name(A.elemName())) + " x" +
             std::to_string(A.size()) + "\n";
      size_t Mark = Work.size();
      for (TreeRef E : A.elements())
        Work.push_back(Item{E.get(), It.Indent + 1});
      std::reverse(Work.begin() + Mark, Work.end());
      break;
    }
    case ParseTree::Kind::Node: {
      const auto &N = *cast<NodeTree>(It.T);
      Out += "Node " + std::string(Names.name(N.name())) + " {";
      std::vector<std::pair<std::string, long long>> Attrs;
      for (const EnvSlot &S : N.env())
        Attrs.emplace_back(std::string(Names.name(S.Key)),
                           static_cast<long long>(S.Value));
      std::sort(Attrs.begin(), Attrs.end());
      for (size_t I = 0; I < Attrs.size(); ++I) {
        if (I)
          Out += ", ";
        Out += Attrs[I].first + "=" + std::to_string(Attrs[I].second);
      }
      Out += "}\n";
      size_t Mark = Work.size();
      for (TreeRef C : N.children())
        Work.push_back(Item{C.get(), It.Indent + 1});
      std::reverse(Work.begin() + Mark, Work.end());
      break;
    }
    }
  }
}

/// Renders any rooted tree (TreePtr, FrozenTree root, raw node).
inline std::string renderCanonical(const ipg::ParseTree *Root,
                                   const ipg::Grammar &G) {
  std::string Out;
  if (Root)
    renderCanonical(*Root, G.interner(), 0, Out);
  return Out;
}

inline std::string renderCanonical(const ipg::TreePtr &Root,
                                   const ipg::Grammar &G) {
  return renderCanonical(Root.get(), G);
}

/// Structural equality under the same lens renderCanonical prints
/// through: node names, sorted (name, value) attribute sets, array
/// element names and sizes, leaf offset/length/opacity, and child order.
/// The trees may come from different Grammar instances (separate
/// interners — e.g. one engine per kind from makeFormatEngine): symbols
/// are compared by their interned strings. Used where a render-and-diff
/// would be quadratic: canonical renders indent two spaces per level, so
/// a megabyte-deep tree's dump is O(depth^2) bytes, while this walk is
/// O(tree) and consumes no C stack.
inline bool treesEqual(const ipg::ParseTree *A, const ipg::Grammar &GA,
                       const ipg::ParseTree *B, const ipg::Grammar &GB) {
  if (!A || !B)
    return A == B;
  const ipg::StringInterner &AN = GA.interner();
  const ipg::StringInterner &BN = GB.interner();
  std::vector<std::pair<const ipg::ParseTree *, const ipg::ParseTree *>>
      Work{{A, B}};
  while (!Work.empty()) {
    auto [X, Y] = Work.back();
    Work.pop_back();
    if (X->kind() != Y->kind())
      return false;
    switch (X->kind()) {
    case ParseTree::Kind::Leaf: {
      const auto *LX = cast<LeafTree>(X);
      const auto *LY = cast<LeafTree>(Y);
      if (LX->offset() != LY->offset() || LX->length() != LY->length() ||
          LX->isOpaque() != LY->isOpaque())
        return false;
      break;
    }
    case ParseTree::Kind::Array: {
      const auto *AX = cast<ArrayTree>(X);
      const auto *AY = cast<ArrayTree>(Y);
      if (AX->size() != AY->size() ||
          AN.name(AX->elemName()) != BN.name(AY->elemName()))
        return false;
      auto EX = AX->elements();
      auto EY = AY->elements();
      auto IX = EX.begin();
      auto IY = EY.begin();
      for (; IX != EX.end() && IY != EY.end(); ++IX, ++IY)
        Work.emplace_back((*IX).get(), (*IY).get());
      if ((IX != EX.end()) != (IY != EY.end()))
        return false;
      break;
    }
    case ParseTree::Kind::Node: {
      const auto *NX = cast<NodeTree>(X);
      const auto *NY = cast<NodeTree>(Y);
      if (AN.name(NX->name()) != BN.name(NY->name()))
        return false;
      std::vector<std::pair<std::string, long long>> AAttrs, BAttrs;
      for (const EnvSlot &S : NX->env())
        AAttrs.emplace_back(std::string(AN.name(S.Key)),
                            static_cast<long long>(S.Value));
      for (const EnvSlot &S : NY->env())
        BAttrs.emplace_back(std::string(BN.name(S.Key)),
                            static_cast<long long>(S.Value));
      std::sort(AAttrs.begin(), AAttrs.end());
      std::sort(BAttrs.begin(), BAttrs.end());
      if (AAttrs != BAttrs)
        return false;
      auto CX = NX->children();
      auto CY = NY->children();
      auto IX = CX.begin();
      auto IY = CY.begin();
      for (; IX != CX.end() && IY != CY.end(); ++IX, ++IY)
        Work.emplace_back((*IX).get(), (*IY).get());
      if ((IX != CX.end()) != (IY != CY.end()))
        return false;
      break;
    }
    }
  }
  return true;
}

} // namespace ipg::testutil

#endif // IPG_TESTS_TREECANONICAL_H
