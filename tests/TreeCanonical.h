//===- tests/TreeCanonical.h - canonical host-tree rendering ----*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical rendering of a host (interpreter-side) parse tree —
/// byte-for-byte the format of ipg_rt::dumpTree in support/GenRuntime.h,
/// which generated parsers embed. Attributes sort by (name, value);
/// children print in execution order. Shared by the differential harness
/// and the engine/service tests so every suite compares trees the same
/// way.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_TESTS_TREECANONICAL_H
#define IPG_TESTS_TREECANONICAL_H

#include "grammar/Grammar.h"
#include "runtime/ParseTree.h"
#include "support/Casting.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace ipg::testutil {

inline void renderCanonical(const ipg::ParseTree &T,
                            const ipg::StringInterner &Names, int Indent,
                            std::string &Out) {
  Out.append(static_cast<size_t>(Indent) * 2, ' ');
  switch (T.kind()) {
  case ParseTree::Kind::Leaf: {
    const auto &L = *cast<LeafTree>(&T);
    Out += "Leaf off=" + std::to_string(L.offset()) +
           " len=" + std::to_string(L.length()) +
           " opaque=" + (L.isOpaque() ? "1" : "0") + "\n";
    return;
  }
  case ParseTree::Kind::Array: {
    const auto &A = *cast<ArrayTree>(&T);
    Out += "Array " + std::string(Names.name(A.elemName())) + " x" +
           std::to_string(A.size()) + "\n";
    for (TreeRef E : A.elements())
      renderCanonical(*E, Names, Indent + 1, Out);
    return;
  }
  case ParseTree::Kind::Node: {
    const auto &N = *cast<NodeTree>(&T);
    Out += "Node " + std::string(Names.name(N.name())) + " {";
    std::vector<std::pair<std::string, long long>> Attrs;
    for (const EnvSlot &S : N.env())
      Attrs.emplace_back(std::string(Names.name(S.Key)),
                         static_cast<long long>(S.Value));
    std::sort(Attrs.begin(), Attrs.end());
    for (size_t I = 0; I < Attrs.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Attrs[I].first + "=" + std::to_string(Attrs[I].second);
    }
    Out += "}\n";
    for (TreeRef C : N.children())
      renderCanonical(*C, Names, Indent + 1, Out);
    return;
  }
  }
}

/// Renders any rooted tree (TreePtr, FrozenTree root, raw node).
inline std::string renderCanonical(const ipg::ParseTree *Root,
                                   const ipg::Grammar &G) {
  std::string Out;
  if (Root)
    renderCanonical(*Root, G.interner(), 0, Out);
  return Out;
}

inline std::string renderCanonical(const ipg::TreePtr &Root,
                                   const ipg::Grammar &G) {
  return renderCanonical(Root.get(), G);
}

} // namespace ipg::testutil

#endif // IPG_TESTS_TREECANONICAL_H
