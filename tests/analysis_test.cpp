//===- tests/analysis_test.cpp - completion / attribute checking tests ----===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/AttributeCheck.h"
#include "analysis/Completion.h"
#include "analysis/Consumes.h"
#include "analysis/Cycles.h"
#include "analysis/NTGraph.h"
#include "frontend/Parser.h"
#include "runtime/Interp.h"
#include "support/Casting.h"

#include <cstdint>
#include <gtest/gtest.h>
#include <set>
#include <string>
#include <string_view>
#include <vector>

using namespace ipg;

//===----------------------------------------------------------------------===//
// Implicit interval completion (Section 3.4).
//===----------------------------------------------------------------------===//

TEST(CompletionTest, PaperExampleMagicAB) {
  // S -> "magic" A B[10]  completes to
  // S -> "magic"[0, 5] A[5, EOI] B[A.end, A.end + 10]   (with the internal
  // TermEnd encoding of "end of the previous term").
  auto G = parseGrammarText(R"(S -> "magic" A B[10] ;
                               A -> "x" ; B -> raw ;)");
  ASSERT_TRUE(G) << G.message();
  auto Stats = completeIntervals(*G);
  ASSERT_TRUE(Stats) << Stats.message();

  const Rule &S = G->rule(0);
  const auto *T0 = cast<TerminalTerm>(S.Alts[0].Terms[0].get());
  ASSERT_TRUE(T0->Iv.completed());
  EXPECT_EQ(T0->Iv.Lo->str(G->interner()), "0");
  EXPECT_EQ(T0->Iv.Hi->str(G->interner()), "(0 + 5)");

  const auto *T1 = cast<NTTerm>(S.Alts[0].Terms[1].get());
  EXPECT_EQ(T1->Iv.Lo->str(G->interner()), "@end(0)");
  EXPECT_EQ(T1->Iv.Hi->str(G->interner()), "EOI");

  const auto *T2 = cast<NTTerm>(S.Alts[0].Terms[2].get());
  EXPECT_EQ(T2->Iv.Lo->str(G->interner()), "@end(1)");
  EXPECT_EQ(T2->Iv.Hi->str(G->interner()), "(@end(1) + 10)");
}

TEST(CompletionTest, StatsCountForms) {
  auto G = parseGrammarText(R"(S -> "magic" A B[10] C[0, 2] ;
                               A -> "x" ; B -> raw ; C -> "yy" ;)");
  ASSERT_TRUE(G) << G.message();
  auto Stats = completeIntervals(*G);
  ASSERT_TRUE(Stats) << Stats.message();
  // Intervals: magic(omitted) A(omitted) B(len) C(explicit) + "x"(omitted)
  // + raw(omitted) + "yy"(omitted).
  EXPECT_EQ(Stats->TotalIntervals, 7u);
  EXPECT_EQ(Stats->FullyImplicit, 5u);
  EXPECT_EQ(Stats->LengthOnly, 1u);
}

TEST(CompletionTest, CompletedGrammarParsesCorrectly) {
  auto R = loadGrammar(R"(
    S -> "magic" A B[3] ;
    A -> "ab"[0, 2] ;
    B -> "xyz"[0, 3] ;
  )");
  ASSERT_TRUE(R) << R.message();
  Interp I(R->G);
  EXPECT_TRUE(I.parse(ByteSpan::of(std::string_view("magicabxyz"))));
  // B[3] pins B to exactly 3 bytes right after A: a shorter tail fails.
  EXPECT_FALSE(I.parse(ByteSpan::of(std::string_view("magicabxy"))));
  // And so does content in the wrong place.
  EXPECT_FALSE(I.parse(ByteSpan::of(std::string_view("magicxyzab"))));
}

TEST(CompletionTest, ArrayWithoutExplicitIntervalIsRejected) {
  auto G = parseGrammarText(R"(S -> for i = 0 to 3 do A[4] ; A -> "x" ;)");
  ASSERT_TRUE(G) << G.message();
  auto Stats = completeIntervals(*G);
  ASSERT_FALSE(Stats);
  EXPECT_NE(Stats.message().find("array"), std::string::npos);
}

TEST(CompletionTest, FirstTermLeftEndpointIsZero) {
  auto G = parseGrammarText(R"(S -> A ; A -> "q" ;)");
  ASSERT_TRUE(G) << G.message();
  ASSERT_TRUE(completeIntervals(*G));
  const auto *T = cast<NTTerm>(G->rule(0).Alts[0].Terms[0].get());
  EXPECT_EQ(T->Iv.Lo->str(G->interner()), "0");
  EXPECT_EQ(T->Iv.Hi->str(G->interner()), "EOI");
}

//===----------------------------------------------------------------------===//
// Attribute checking (Section 3.2).
//===----------------------------------------------------------------------===//

TEST(AttrCheckTest, PaperReorderExample) {
  // Section 3.2: "B1[0, B2.a] B2[a1, EOI] {a1=2}" reorders to
  // "{a1=2} B2[a1, EOI] B1[0, B2.a]", i.e. execution order [2, 1, 0].
  auto R = loadGrammar(R"(
    S -> B1[0, B2.a] B2[a1, EOI] {a1 = 2} ;
    B1 -> raw ;
    B2 -> {a = u8(0)} ;
  )");
  ASSERT_TRUE(R) << R.message();
  const Rule &S = R->G.rule(R->G.findGlobal(R->G.intern("S")));
  std::vector<uint32_t> Want = {2, 1, 0};
  EXPECT_EQ(S.Alts[0].ExecOrder, Want);
}

TEST(AttrCheckTest, SourceOrderPreservedWithoutDependencies) {
  auto R = loadGrammar(R"(S -> "a"[0, 1] "b"[1, 2] "c"[2, 3] ;)");
  ASSERT_TRUE(R) << R.message();
  std::vector<uint32_t> Want = {0, 1, 2};
  EXPECT_EQ(R->G.rule(0).Alts[0].ExecOrder, Want);
}

TEST(AttrCheckTest, CircularDependencyRejected) {
  // B1's interval needs B2's attribute and vice versa.
  auto R = loadGrammar(R"(
    S -> B1[0, B2.a] B2[B1.b, EOI] ;
    B1 -> {b = u8(0)} ;
    B2 -> {a = u8(0)} ;
  )");
  ASSERT_FALSE(R);
  EXPECT_NE(R.message().find("circular"), std::string::npos);
}

TEST(AttrCheckTest, UnknownNonterminalRejected) {
  auto R = loadGrammar("S -> Q[0, 1] ;");
  ASSERT_FALSE(R);
  EXPECT_NE(R.message().find("unknown nonterminal"), std::string::npos);
}

TEST(AttrCheckTest, UndefinedAttributeRejected) {
  auto R = loadGrammar(R"(
    S -> A[0, 1] {x = A.nope} ;
    A -> {v = u8(0)} ;
  )");
  ASSERT_FALSE(R);
  EXPECT_NE(R.message().find("nope"), std::string::npos);
}

TEST(AttrCheckTest, UndefinedBareReferenceRejected) {
  auto R = loadGrammar("S -> {x = y + 1} ;");
  ASSERT_FALSE(R);
  EXPECT_NE(R.message().find("undefined attribute 'y'"), std::string::npos);
}

TEST(AttrCheckTest, DuplicateAttributeDefinitionRejected) {
  auto R = loadGrammar(R"(S -> {x = 1} {x = 2} ;)");
  ASSERT_FALSE(R);
  EXPECT_NE(R.message().find("defined twice"), std::string::npos);
}

TEST(AttrCheckTest, DefSetIsIntersectionOverAlternatives) {
  auto G = parseGrammarText(R"(
    A -> "x"[0, 1] {a = 1} {b = 2} / "y"[0, 1] {a = 3} ;
  )");
  ASSERT_TRUE(G) << G.message();
  std::set<Symbol> Defs = ruleDefSet(*G, 0);
  EXPECT_EQ(Defs.size(), 1u);
  EXPECT_TRUE(Defs.count(G->interner().lookup("a")));
  EXPECT_FALSE(Defs.count(G->interner().lookup("b")));
}

TEST(AttrCheckTest, ReferenceToPartiallyDefinedAttributeRejected) {
  // b is only defined in A's first alternative, so A.b is not in def(A).
  auto R = loadGrammar(R"(
    S -> A[0, 1] {x = A.b} ;
    A -> "x"[0, 1] {a = 1} {b = 2} / "y"[0, 1] {a = 3} ;
  )");
  ASSERT_FALSE(R);
  EXPECT_NE(R.message().find("not defined by every alternative"),
            std::string::npos);
}

TEST(AttrCheckTest, StartEndAlwaysReferencable) {
  auto R = loadGrammar(R"(
    S -> A[0, EOI] "z"[A.end, EOI] check(A.start = 0) ;
    A -> "aa"[0, 2] ;
  )");
  EXPECT_TRUE(R) << R.message();
}

TEST(AttrCheckTest, ArrayAttrNeedsIndex) {
  auto R = loadGrammar(R"(
    S -> for i = 0 to 2 do A[i, i + 1] {x = A.v} ;
    A -> {v = u8(0)} ;
  )");
  ASSERT_FALSE(R);
  EXPECT_NE(R.message().find("is an array"), std::string::npos);
}

TEST(AttrCheckTest, ScalarAttrRejectsIndex) {
  auto R = loadGrammar(R"(
    S -> A[0, 1] {x = A(0).v} ;
    A -> {v = u8(0)} ;
  )");
  ASSERT_FALSE(R);
  EXPECT_NE(R.message().find("is not an array"), std::string::npos);
}

TEST(AttrCheckTest, LoopVariableVisibleInElementInterval) {
  auto R = loadGrammar(R"(
    S -> {n = u8(0)} for i = 0 to n do A[1 + i, 2 + i] ;
    A -> {v = u8(0)} ;
  )");
  EXPECT_TRUE(R) << R.message();
}

TEST(AttrCheckTest, LoopVariableNotVisibleOutsideArray) {
  auto R = loadGrammar(R"(
    S -> for i = 0 to 2 do A[i, i + 1] {x = i} ;
    A -> {v = u8(0)} ;
  )");
  ASSERT_FALSE(R);
  EXPECT_NE(R.message().find("undefined attribute 'i'"), std::string::npos);
}

TEST(AttrCheckTest, BlackboxAttrsLimitedToValStartEnd) {
  auto Ok = loadGrammar(R"(
    blackbox bb ;
    S -> bb[0, EOI] {x = bb.val + bb.end} ;
  )");
  EXPECT_TRUE(Ok) << Ok.message();
  auto Bad = loadGrammar(R"(
    blackbox bb ;
    S -> bb[0, EOI] {x = bb.other} ;
  )");
  ASSERT_FALSE(Bad);
  EXPECT_NE(Bad.message().find("val/start/end"), std::string::npos);
}

TEST(AttrCheckTest, WhereRuleMaySeeEnclosingNames) {
  auto R = loadGrammar(R"(
    S -> A[0, 1] D[1, EOI] where { D -> "x"[A.val, A.val + 1] ; } ;
    A -> {val = u8(0)} ;
  )");
  EXPECT_TRUE(R) << R.message();
}

TEST(AttrCheckTest, WhereRuleUnknownOuterNameRejected) {
  auto R = loadGrammar(R"(
    S -> D[0, EOI] where { D -> "x"[Zed.val, EOI] ; } ;
  )");
  ASSERT_FALSE(R);
}

//===----------------------------------------------------------------------===//
// Consumes analysis (the termination extension's syntactic check).
//===----------------------------------------------------------------------===//

namespace {
bool consumes(const char *Src, const char *RuleName) {
  auto R = loadGrammar(Src);
  EXPECT_TRUE(R) << R.message();
  if (!R)
    return false;
  std::vector<bool> C = computeConsumes(R->G);
  RuleId Id = R->G.findGlobal(R->G.interner().lookup(RuleName));
  EXPECT_NE(Id, InvalidRuleId);
  return C[Id];
}
} // namespace

TEST(ConsumesTest, TerminalConsumes) {
  EXPECT_TRUE(consumes(R"(A -> "x"[0, 1] ;)", "A"));
}

TEST(ConsumesTest, EmptyTerminalDoesNot) {
  EXPECT_FALSE(consumes(R"(A -> ""[0, 0] ;)", "A"));
}

TEST(ConsumesTest, WildcardDoesNot) {
  // raw can match an empty interval.
  EXPECT_FALSE(consumes(R"(A -> raw[0, EOI] ;)", "A"));
}

TEST(ConsumesTest, AllAlternativesMustConsume) {
  EXPECT_TRUE(consumes(R"(A -> "x"[0, 1] / "y"[0, 1] ;)", "A"));
  EXPECT_FALSE(consumes(R"(A -> "x"[0, 1] / ""[0, 0] ;)", "A"));
}

TEST(ConsumesTest, PropagatesThroughNonterminals) {
  EXPECT_TRUE(consumes(R"(A -> B[0, EOI] ; B -> "x"[0, 1] ;)", "A"));
  // Mutual recursion with a base case that consumes.
  EXPECT_TRUE(consumes(
      R"(A -> B[0, EOI] ; B -> "b"[0, 1] A[1, EOI] / "b"[0, 1] ;)", "A"));
}

TEST(ConsumesTest, ArraysDoNotCount) {
  EXPECT_FALSE(consumes(
      R"(A -> for i = 0 to 3 do B[i, i + 1] ; B -> "x"[0, 1] ;)", "A"));
}

TEST(ConsumesTest, SwitchConsumesWhenAllArmsDo) {
  EXPECT_TRUE(consumes(R"(
    A -> {t = u8(0)} switch(t = 1: X[1, EOI] / Y[1, EOI]) ;
    X -> "x"[0, 1] ; Y -> "y"[0, 1] ;
  )", "A"));
  EXPECT_FALSE(consumes(R"(
    A -> {t = u8(0)} switch(t = 1: X[1, EOI] / Y[1, EOI]) ;
    X -> "x"[0, 1] ; Y -> raw[0, EOI] ;
  )", "A"));
}

//===----------------------------------------------------------------------===//
// NT graph and elementary cycles (Section 5 steps 1-2).
//===----------------------------------------------------------------------===//

TEST(NTGraphTest, EdgesFromAllTermKinds) {
  auto R = loadGrammar(R"(
    S -> A[0, 1] for i = 0 to 2 do B[i, i + 1]
         {t = u8(0)} switch(t = 1: C[0, 1] / D[0, 1]) ;
    A -> "a"[0, 1] ; B -> "b"[0, 1] ; C -> "c"[0, 1] ; D -> "d"[0, 1] ;
  )");
  ASSERT_TRUE(R) << R.message();
  NTGraph G = buildNTGraph(R->G);
  EXPECT_EQ(G.Edges.size(), 4u); // A, B, C, D
}

TEST(NTGraphTest, SelfLoopCycle) {
  auto R = loadGrammar(R"(A -> A[0, EOI - 1] / "x"[0, 1] ;)");
  ASSERT_TRUE(R) << R.message();
  NTGraph G = buildNTGraph(R->G);
  auto Cycles = elementaryCycles(G);
  ASSERT_EQ(Cycles.size(), 1u);
  EXPECT_EQ(Cycles[0].size(), 1u);
}

TEST(NTGraphTest, TwoNodeCycle) {
  auto R = loadGrammar(R"(
    A -> B[0, EOI] / "x"[0, 1] ;
    B -> A[0, EOI] / "y"[0, 1] ;
  )");
  ASSERT_TRUE(R) << R.message();
  auto Cycles = elementaryCycles(buildNTGraph(R->G));
  ASSERT_EQ(Cycles.size(), 1u);
  EXPECT_EQ(Cycles[0].size(), 2u);
}

TEST(NTGraphTest, ParallelEdgesYieldDistinctCycles) {
  auto R = loadGrammar(R"(
    A -> A[0, EOI - 1] / A[1, EOI] / "x"[0, 1] ;
  )");
  ASSERT_TRUE(R) << R.message();
  auto Cycles = elementaryCycles(buildNTGraph(R->G));
  EXPECT_EQ(Cycles.size(), 2u);
}

TEST(NTGraphTest, DagHasNoCycles) {
  auto R = loadGrammar(R"(
    S -> A[0, 1] B[1, 2] ;
    A -> "a"[0, 1] ; B -> "b"[0, 1] ;
  )");
  ASSERT_TRUE(R) << R.message();
  EXPECT_TRUE(elementaryCycles(buildNTGraph(R->G)).empty());
}
