//===- tests/recovery_test.cpp - salvage parsing & verdicts ---------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RecoveryPolicy::Salvage end to end: interval-bounded error recovery
/// is the payoff of parsing WITH intervals — a failing subparse whose
/// byte range is already pinned down can be fenced into a `hole` leaf
/// covering exactly that range, and the rest of the file still parses.
/// This suite covers:
///
///  - the mechanism on a minimal grammar: a damaged field becomes one
///    hole with the failing rule's name and exact absolute interval,
///    the verdict turns Salvage, and the salvaged tree still reprints
///    the input byte-for-byte (the hole aliases the damaged bytes);
///  - the limit: a bound that DEPENDS on data lost to the damage does
///    not resolve, so the parse cleanly rejects — salvage never guesses;
///  - the corrupt-at-offset sweep (tests/CorruptCorpus.h) over every
///    format corpus, in the interpreter AND the bytecode VM, demanding
///    identical verdicts, identical trees, well-formed hole records,
///    and byte-exact reprints of everything accepted;
///  - per-request deadlines: an expired deadline aborts with a clean
///    Verdict::Timeout — through Engine::setDeadline directly and
///    through ParseService::submit(Request, SubmitOptions);
///  - the documented limitation: generated parsers reject Salvage at
///    construction, in makeEngine and in ParseService::create.
///
//===----------------------------------------------------------------------===//

#include "analysis/AttributeCheck.h"
#include "formats/FormatRegistry.h"
#include "runtime/Engine.h"
#include "serialize/Printer.h"
#include "service/InputSource.h"
#include "service/ParseService.h"

#include "CorruptCorpus.h"
#include "TreeCanonical.h"

#include <chrono>
#include <gtest/gtest.h>
#include <string>
#include <vector>

using namespace ipg;

namespace {

Grammar load(const std::string &Src) {
  auto R = loadGrammar(Src);
  EXPECT_TRUE(R) << R.message();
  if (!R)
    std::abort();
  return std::move(R->G);
}

EngineOptions salvageOpts() {
  EngineOptions Opts;
  Opts.Recovery = RecoveryPolicy::Salvage;
  return Opts;
}

/// Both in-process engine kinds, so every mechanism test runs the
/// interpreter and the bytecode VM through the same assertions.
const EngineKind InProcessKinds[] = {EngineKind::Interp, EngineKind::Vm};

/// Asserts the basic well-formedness every salvaged tree must have:
/// HolesInTree matches a fresh count, every record names a rule and
/// covers a non-empty-or-better range inside the input, and the verdict
/// is Salvage exactly when holes exist.
void expectHolesWellFormed(const ParseTree &Root, const EngineStats &Stats,
                           size_t InputSize) {
  std::vector<HoleRecord> Holes;
  collectHoles(Root, Holes);
  EXPECT_EQ(Holes.size(), Stats.HolesInTree)
      << "stats().HolesInTree disagrees with a fresh collectHoles walk";
  EXPECT_EQ(Stats.ParseVerdict,
            Holes.empty() ? Verdict::Accept : Verdict::Salvage);
  for (const HoleRecord &H : Holes) {
    EXPECT_NE(H.Rule, InvalidSymbol) << "hole without a rule name";
    EXPECT_GE(H.Lo, 0);
    EXPECT_LE(H.Lo, H.Hi);
    EXPECT_LE(H.Hi, static_cast<int64_t>(InputSize))
        << "hole interval escapes the input";
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// The mechanism, on a grammar small enough to reason about byte by byte.
//===----------------------------------------------------------------------===//

namespace {

/// Two fixed fields. Damage to B's bytes is fenced to exactly [4, 8).
const char *TwoFieldGrammar = R"(
  S -> A[0, 4] B[4, 8] ;
  A -> "aaaa"[0, 4] ;
  B -> "bbbb"[0, 4] ;
)";

} // namespace

TEST(RecoveryTest, SalvageFillsHoleOverResolvedInterval) {
  Grammar G = load(TwoFieldGrammar);
  const std::vector<uint8_t> Good = {'a', 'a', 'a', 'a', 'b', 'b', 'b', 'b'};
  std::vector<uint8_t> Bad = Good;
  Bad[5] = 'X'; // damage inside B

  for (EngineKind Kind : InProcessKinds) {
    SCOPED_TRACE(engineKindName(Kind));

    // Strict rejects the damage outright.
    auto Strict = makeEngine(Kind, G);
    ASSERT_TRUE(Strict) << Strict.message();
    EXPECT_FALSE((*Strict)->parse(ByteSpan::of(Bad)));
    EXPECT_EQ((*Strict)->stats().ParseVerdict, Verdict::Reject);

    auto E = makeEngine(Kind, G, nullptr, salvageOpts());
    ASSERT_TRUE(E) << E.message();

    // Pristine input under Salvage: plain Accept, zero holes.
    auto TGood = (*E)->parse(ByteSpan::of(Good));
    ASSERT_TRUE(TGood) << TGood.message();
    EXPECT_EQ((*E)->stats().ParseVerdict, Verdict::Accept);
    EXPECT_EQ((*E)->stats().HolesInTree, 0u);

    // Damaged input: ONE hole, named B, covering exactly [4, 8).
    auto TBad = (*E)->parse(ByteSpan::of(Bad));
    ASSERT_TRUE(TBad) << TBad.message();
    const EngineStats &Stats = (*E)->stats();
    EXPECT_EQ(Stats.ParseVerdict, Verdict::Salvage);
    ASSERT_EQ(Stats.HolesInTree, 1u);
    expectHolesWellFormed(**TBad, Stats, Bad.size());
    std::vector<HoleRecord> Holes;
    collectHoles(**TBad, Holes);
    ASSERT_EQ(Holes.size(), 1u);
    EXPECT_EQ(G.interner().name(Holes[0].Rule), "B");
    EXPECT_EQ(Holes[0].Lo, 4);
    EXPECT_EQ(Holes[0].Hi, 8);

    // The hole aliases the damaged bytes, so the salvaged tree reprints
    // the input byte-for-byte — under GapPolicy::Strict: A's leaf plus
    // the hole cover every byte.
    auto P = serialize::printTree(**TBad, G);
    ASSERT_TRUE(P) << P.message();
    EXPECT_EQ(P->Bytes, Bad) << "salvaged tree did not reprint byte-exact";
    EXPECT_EQ(P->GapBytes, 0u);
  }
}

namespace {

/// B's interval depends on a length byte validated INSIDE M. Damage
/// that trips M's check() turns M into a hole, M.val into nothing, and
/// B's bound into an unresolvable expression — salvage must then refuse
/// rather than guess where B ends. (The check matters: plain byte
/// damage inside M or B is fenced at TERM granularity — a hole over
/// just the failing terminal — and still salvages; only an undefined
/// attribute can destroy a bound.)
const char *DataDependentGrammar = R"(
  S -> M[0, 2] B[2, 2 + M.val] ;
  M -> raw[0, 2] {val = u8(0)} check(val < 100) ;
  B -> "b"[0, 1] raw ;
)";

} // namespace

TEST(RecoveryTest, DataDependentUnresolvedBoundsStillReject) {
  Grammar G = load(DataDependentGrammar);
  const std::vector<uint8_t> Good = {4, 0, 'b', 'x', 'y', 'z'};

  for (EngineKind Kind : InProcessKinds) {
    SCOPED_TRACE(engineKindName(Kind));
    auto E = makeEngine(Kind, G, nullptr, salvageOpts());
    ASSERT_TRUE(E) << E.message();

    ASSERT_TRUE((*E)->parse(ByteSpan::of(Good)));
    EXPECT_EQ((*E)->stats().ParseVerdict, Verdict::Accept);

    // Damage inside B: B's window [2, 2+4) resolved before the damage,
    // and the failing magic terminal is fenced at its own interval —
    // a one-byte hole owned by B.
    std::vector<uint8_t> BadB = Good;
    BadB[2] = 'X';
    auto T = (*E)->parse(ByteSpan::of(BadB));
    ASSERT_TRUE(T) << T.message();
    EXPECT_EQ((*E)->stats().ParseVerdict, Verdict::Salvage);
    std::vector<HoleRecord> Holes;
    collectHoles(**T, Holes);
    ASSERT_EQ(Holes.size(), 1u);
    EXPECT_EQ(G.interner().name(Holes[0].Rule), "B");
    EXPECT_EQ(Holes[0].Lo, 2);
    EXPECT_EQ(Holes[0].Hi, 3);

    // Damage that trips M's check(): M becomes a hole, so M.val is
    // undefined and B's interval no longer resolves — clean Reject,
    // with an ordinary (non-"internal:") diagnostic carrying a
    // location.
    std::vector<uint8_t> BadL = Good;
    BadL[0] = 200;
    auto R = (*E)->parse(ByteSpan::of(BadL));
    EXPECT_FALSE(R) << "salvage must not guess a data-dependent bound";
    EXPECT_EQ((*E)->stats().ParseVerdict, Verdict::Reject);
    EXPECT_EQ(R.message().rfind("internal:", 0), std::string::npos);
    EXPECT_NE((*E)->stats().FailRule, ~0u);
    EXPECT_GE((*E)->stats().FailOffset, 0);
  }
}

//===----------------------------------------------------------------------===//
// Every format corpus under the shared damage grid: interpreter and VM
// must agree verdict-for-verdict (and tree-for-tree), holes must be
// well-formed, and no probe may produce an "internal:" failure.
//===----------------------------------------------------------------------===//

TEST(RecoveryTest, CorruptSweepVerdictParityInterpVsVm) {
  constexpr size_t ProbesPerFormat = 8;

  size_t Checked = 0;
  size_t Salvaged = 0;
  for (const formats::FormatInfo &FI : formats::allFormats()) {
    SCOPED_TRACE("format: " + FI.Name);
    auto IE =
        formats::makeFormatEngine(FI.Name, EngineKind::Interp, salvageOpts());
    ASSERT_TRUE(IE) << IE.message();
    auto VE =
        formats::makeFormatEngine(FI.Name, EngineKind::Vm, salvageOpts());
    ASSERT_TRUE(VE) << VE.message();

    const std::vector<uint8_t> Bytes = formats::sampleInput(FI.Name, 1);
    ASSERT_GE(Bytes.size(), ProbesPerFormat);

    for (const testutil::CorruptProbe &P :
         testutil::corruptProbes(Bytes.size(), ProbesPerFormat)) {
      SCOPED_TRACE(std::string(testutil::corruptKindName(P.Kind)) + " @" +
                   std::to_string(P.Off));
      std::vector<uint8_t> Bad = testutil::corruptAt(Bytes, P.Kind, P.Off);

      auto RI = (*IE)->parse(ByteSpan::of(Bad));
      auto RV = (*VE)->parse(ByteSpan::of(Bad));
      const EngineStats &SI = (*IE)->stats();
      const EngineStats &SV = (*VE)->stats();

      ASSERT_EQ(static_cast<bool>(RI), static_cast<bool>(RV))
          << "interpreter/VM salvage verdicts diverge";
      EXPECT_EQ(SI.ParseVerdict, SV.ParseVerdict)
          << verdictName(SI.ParseVerdict) << " vs "
          << verdictName(SV.ParseVerdict);
      EXPECT_EQ(SI.HolesInTree, SV.HolesInTree);

      if (RI && RV) {
        EXPECT_TRUE(testutil::treesEqual(RI->get(), IE->Load->G, RV->get(),
                                         VE->Load->G))
            << "salvaged trees differ between engines";
        expectHolesWellFormed(**RI, SI, Bad.size());
        if (SI.ParseVerdict == Verdict::Salvage)
          ++Salvaged;
      } else {
        // Rejects must be ordinary diagnostics, never engine breakage,
        // and both engines must blame the same rule (compared by NAME:
        // separately loaded grammars intern in their own order).
        EXPECT_EQ(RI.message(), RV.message());
        EXPECT_EQ(RI.message().rfind("internal:", 0), std::string::npos)
            << "salvage sweep tripped an internal error: " << RI.message();
        ASSERT_EQ(SI.FailRule == ~0u, SV.FailRule == ~0u);
        if (SI.FailRule != ~0u)
          EXPECT_EQ(IE->Load->G.interner().name(SI.FailRule),
                    VE->Load->G.interner().name(SV.FailRule));
        EXPECT_EQ(SI.FailOffset, SV.FailOffset);
      }
      ++Checked;
    }
  }
  EXPECT_EQ(Checked, 3 * ProbesPerFormat * formats::allFormats().size());
  EXPECT_GT(Salvaged, 0u)
      << "the sweep never produced a Salvage verdict — recovery is inert";
}

//===----------------------------------------------------------------------===//
// Reprint exactness across the sweep: whatever Salvage accepts — plain
// Accept or hole-fenced Salvage — must reprint to the damaged input
// byte-for-byte. Printing follows roundtrip_test's policy: background
// fill from the (damaged) input for formats that are not print-exact
// under GapPolicy::Strict; the zip corpus may additionally canonicalize
// through the blackbox inverse exactly as fuzz_roundtrip allows.
//===----------------------------------------------------------------------===//

TEST(RecoveryTest, SalvagedTreesReprintByteExact) {
  constexpr size_t ProbesPerFormat = 8;

  size_t Reprinted = 0;
  for (const formats::FormatInfo &FI : formats::allFormats()) {
    SCOPED_TRACE("format: " + FI.Name);
    auto FE =
        formats::makeFormatEngine(FI.Name, EngineKind::Interp, salvageOpts());
    ASSERT_TRUE(FE) << FE.message();
    BlackboxRegistry BB = formats::standardBlackboxes();

    const std::vector<uint8_t> Bytes = formats::sampleInput(FI.Name, 1);
    ASSERT_GE(Bytes.size(), ProbesPerFormat);

    for (const testutil::CorruptProbe &P :
         testutil::corruptProbes(Bytes.size(), ProbesPerFormat)) {
      SCOPED_TRACE(std::string(testutil::corruptKindName(P.Kind)) + " @" +
                   std::to_string(P.Off));
      std::vector<uint8_t> Bad = testutil::corruptAt(Bytes, P.Kind, P.Off);

      auto R = (*FE)->parse(ByteSpan::of(Bad));
      if (!R)
        continue; // rejects are the sweep-parity test's business

      serialize::PrintOptions Opts;
      Opts.Gaps = serialize::GapPolicy::FillFromBackground;
      Opts.Background = ByteSpan::of(Bad);
      auto Pr = serialize::printTree(**R, FE->Load->G, &BB, Opts);
      if (FI.NeedsBlackbox && !Pr &&
          Pr.message().find("blackbox inverse") != std::string::npos)
        continue; // mutant decoded but cannot re-encode: canonicalization
      ASSERT_TRUE(Pr) << Pr.message();
      if (Pr->Bytes != Bad && FI.NeedsBlackbox) {
        // Same canonicalization escape fuzz_roundtrip grants: the print
        // must then at least be its own fixpoint.
        auto R2 = (*FE)->parse(ByteSpan::of(Pr->Bytes));
        ASSERT_TRUE(R2) << "canonicalized print no longer parses";
        serialize::PrintOptions O2;
        O2.Gaps = serialize::GapPolicy::FillFromBackground;
        O2.Background = ByteSpan::of(Pr->Bytes);
        auto P2 = serialize::printTree(**R2, FE->Load->G, &BB, O2);
        ASSERT_TRUE(P2) << P2.message();
        EXPECT_EQ(P2->Bytes, Pr->Bytes);
        continue;
      }
      EXPECT_EQ(Pr->Bytes, Bad)
          << verdictName((*FE)->stats().ParseVerdict)
          << " tree did not reprint the damaged input byte-exact";
      ++Reprinted;
    }
  }
  EXPECT_GT(Reprinted, 0u) << "the sweep never accepted anything to reprint";
}

//===----------------------------------------------------------------------===//
// Deadlines: Verdict::Timeout through the Engine interface and through
// ParseService's per-request SubmitOptions.
//===----------------------------------------------------------------------===//

namespace {

/// Linear self-recursion: one rule entry per leading 'a', so a parse of
/// N 'a's passes N amortized deadline checkpoints — thousands of them,
/// far past the 256-tick check stride.
const char *SlowGrammar = R"(
  S -> T[0, EOI] / raw[0, EOI] ;
  T -> "a"[0, 1] T[1, EOI] / "a"[0, 1] ;
)";

} // namespace

TEST(RecoveryTest, ExpiredDeadlineAbortsWithTimeoutVerdict) {
  Grammar G = load(SlowGrammar);
  const std::vector<uint8_t> In(6000, 'a');

  for (EngineKind Kind : InProcessKinds) {
    SCOPED_TRACE(engineKindName(Kind));
    auto E = makeEngine(Kind, G);
    ASSERT_TRUE(E) << E.message();

    ASSERT_TRUE((*E)->setDeadline(std::chrono::steady_clock::now() -
                                  std::chrono::seconds(1)));
    auto R = (*E)->parse(ByteSpan::of(In));
    ASSERT_FALSE(R) << "a parse past its deadline must abort";
    EXPECT_EQ((*E)->stats().ParseVerdict, Verdict::Timeout);
    EXPECT_TRUE((*E)->stats().TimedOut);
    EXPECT_NE(R.message().find("deadline exceeded"), std::string::npos)
        << R.message();
    EXPECT_NE((*E)->stats().FailRule, ~0u)
        << "the timeout diagnostic must name the rule it interrupted";

    // A generous deadline does not perturb the parse; clearing it
    // removes the checks entirely.
    ASSERT_TRUE((*E)->setDeadline(std::chrono::steady_clock::now() +
                                  std::chrono::hours(1)));
    ASSERT_TRUE((*E)->parse(ByteSpan::of(In)));
    EXPECT_EQ((*E)->stats().ParseVerdict, Verdict::Accept);
    (*E)->clearDeadline();
    ASSERT_TRUE((*E)->parse(ByteSpan::of(In)));
    EXPECT_FALSE((*E)->stats().TimedOut);
  }
}

TEST(RecoveryTest, ParseServiceHonorsPerRequestDeadline) {
  // PDF at scale 16 walks hundreds of thousands of virtual recursion
  // levels — every one an amortized deadline checkpoint.
  ParseServiceOptions Opts;
  Opts.Workers = 1;
  Opts.Engine.MaxDepth = size_t{1} << 21;
  auto Svc = ParseService::create({"pdf"}, Opts);
  ASSERT_TRUE(Svc) << Svc.message();
  std::vector<uint8_t> In = formats::sampleInput("pdf", 16);

  SubmitOptions Expired;
  Expired.Deadline = std::chrono::steady_clock::now() - std::chrono::minutes(1);
  ParseResult Late =
      (*Svc)->submit(ParseRequest{"pdf", InputSource::fromBytes(In)}, Expired)
          .get();
  EXPECT_FALSE(Late.ok());
  EXPECT_EQ(Late.verdict(), Verdict::Timeout);
  EXPECT_NE(Late.error().find("deadline exceeded"), std::string::npos)
      << Late.error();

  // The deadline is per-request: the same worker engine immediately
  // serves an undeadlined request to completion.
  ParseResult Ok =
      (*Svc)->submit(ParseRequest{"pdf", InputSource::fromBytes(In)}).get();
  ASSERT_TRUE(Ok.ok()) << Ok.error();
  EXPECT_EQ(Ok.verdict(), Verdict::Accept);
}

TEST(RecoveryTest, ParseServiceSurfacesSalvageVerdicts) {
  ParseServiceOptions Opts;
  Opts.Workers = 2;
  Opts.Mode = EngineKind::Vm;
  Opts.Engine.Recovery = RecoveryPolicy::Salvage;
  auto Svc = ParseService::create({"gif"}, Opts);
  ASSERT_TRUE(Svc) << Svc.message();

  // Reference verdicts from a direct engine with the same options.
  auto Ref = formats::makeFormatEngine("gif", EngineKind::Vm, salvageOpts());
  ASSERT_TRUE(Ref) << Ref.message();

  const std::vector<uint8_t> Bytes = formats::sampleInput("gif", 1);
  for (const testutil::CorruptProbe &P :
       testutil::corruptProbes(Bytes.size(), 8)) {
    SCOPED_TRACE(std::string(testutil::corruptKindName(P.Kind)) + " @" +
                 std::to_string(P.Off));
    std::vector<uint8_t> Bad = testutil::corruptAt(Bytes, P.Kind, P.Off);
    auto Direct = (*Ref)->parse(ByteSpan::of(Bad));
    Verdict Want = (*Ref)->stats().ParseVerdict;
    (void)Direct;

    ParseResult R =
        (*Svc)->submit(ParseRequest{"gif", InputSource::fromBytes(Bad)}).get();
    EXPECT_EQ(R.verdict(), Want)
        << "service verdict diverges from a direct engine's";
    EXPECT_EQ(R.ok(), Want == Verdict::Accept || Want == Verdict::Salvage);
  }
}

//===----------------------------------------------------------------------===//
// The documented limitation: generated parsers are Strict-only, rejected
// up front with an actionable message (no host compiler required — the
// refusal comes before any compile).
//===----------------------------------------------------------------------===//

TEST(RecoveryTest, GeneratedEngineRejectsSalvageUpFront) {
  Grammar G = load(TwoFieldGrammar);
  auto E = makeEngine(EngineKind::Generated, G, nullptr, salvageOpts());
  ASSERT_FALSE(E);
  EXPECT_NE(E.message().find("Salvage"), std::string::npos) << E.message();

  ParseServiceOptions Opts;
  Opts.Mode = EngineKind::Generated;
  Opts.Engine.Recovery = RecoveryPolicy::Salvage;
  auto Svc = ParseService::create({"gif"}, Opts);
  ASSERT_FALSE(Svc);
  EXPECT_NE(Svc.message().find("Salvage"), std::string::npos)
      << Svc.message();
}
