//===- tests/build_smoke_test.cpp - end-to-end pipeline smoke test --------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CI canary: drives one trivial grammar through every pipeline stage
/// explicitly — Lexer -> Parser -> interval completion -> attribute check
/// -> Interp — plus the same pipeline entered via GrammarBuilder instead of
/// text. If any stage's API or behavior regresses, this fails loudly and
/// first. Kept intentionally small; the real coverage lives in the
/// per-layer suites.
///
//===----------------------------------------------------------------------===//

#include "analysis/AttributeCheck.h"
#include "analysis/Completion.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "grammar/Builder.h"
#include "runtime/Interp.h"
#include "support/Casting.h"

#include <cstdint>
#include <gtest/gtest.h>
#include <string_view>
#include <vector>

using namespace ipg;

namespace {

// A two-byte message: a length byte followed by that many payload bytes.
constexpr std::string_view TrivialSrc = R"(
  S -> L[0, 1] Body[1, 1 + L.n] {n = L.n} ;
  L -> raw[1] {n = u8(0)} ;
  Body -> raw[EOI] ;
)";

} // namespace

TEST(BuildSmokeTest, LexerProducesTokens) {
  auto Toks = tokenize(TrivialSrc);
  ASSERT_TRUE(Toks) << Toks.message();
  // Sanity floor only: rule arrows, brackets, and a terminating Eof.
  ASSERT_GT(Toks->size(), 10u);
  EXPECT_EQ(Toks->back().Kind, TokKind::Eof);
}

TEST(BuildSmokeTest, ParserBuildsGrammar) {
  auto G = parseGrammarText(TrivialSrc);
  ASSERT_TRUE(G) << G.message();
  EXPECT_EQ(G->numRules(), 3u);
}

TEST(BuildSmokeTest, AnalysisPassesAccept) {
  auto G = parseGrammarText(TrivialSrc);
  ASSERT_TRUE(G) << G.message();
  auto Stats = completeIntervals(*G);
  ASSERT_TRUE(Stats) << Stats.message();
  Error E = checkAttributes(*G);
  EXPECT_FALSE(E) << E.message();
}

TEST(BuildSmokeTest, InterpParsesFromText) {
  auto Loaded = loadGrammar(TrivialSrc);
  ASSERT_TRUE(Loaded) << Loaded.message();
  Grammar &G = Loaded->G;

  std::vector<uint8_t> Input = {3, 'a', 'b', 'c'};
  Interp I(G);
  auto Tree = I.parse(ByteSpan::of(Input));
  ASSERT_TRUE(Tree) << Tree.message();
  const auto *Root = cast<NodeTree>(Tree->get());
  EXPECT_EQ(Root->attr(G.intern("n")).value_or(-1), 3);

  // A length byte past end-of-input must fail cleanly, not crash.
  std::vector<uint8_t> Bad = {9, 'a'};
  EXPECT_FALSE(I.parse(ByteSpan::of(Bad)));
}

TEST(BuildSmokeTest, InterpParsesFromBuilder) {
  // The same message grammar assembled programmatically: GrammarBuilder is
  // the embedder entry point and must stay in sync with the text front end.
  Grammar G;
  GrammarBuilder B(G);
  B.rule("S", {{B.nt("L", B.num(0), B.num(1)),
                B.nt("Body", B.num(1),
                     B.add(B.num(1), B.ntAttr("L", "n"))),
                B.attrDef("n", B.ntAttr("L", "n"))}});
  B.rule("L", {{B.terminal("\x02", B.num(0), B.num(1)),
                B.attrDef("n", B.num(2))}});
  B.rule("Body", {{B.nt("Raw", B.num(0), B.eoi())}});
  B.rule("Raw", {{B.terminal("xy", B.num(0), B.eoi())}});

  auto Stats = completeIntervals(G);
  ASSERT_TRUE(Stats) << Stats.message();
  Error E = checkAttributes(G);
  ASSERT_FALSE(E) << E.message();

  std::vector<uint8_t> Input = {2, 'x', 'y'};
  Interp I(G);
  auto Tree = I.parse(ByteSpan::of(Input));
  ASSERT_TRUE(Tree) << Tree.message();
  EXPECT_EQ(cast<NodeTree>(Tree->get())->attr(G.intern("n")).value_or(-1), 2);
}
