//===- frontend/Lexer.h - IPG DSL lexer -------------------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the IPG surface syntax. The concrete syntax used in this
/// reproduction (ASCII rendering of the paper's notation):
///
///   S -> H[0, 8] Data[H.offset, H.offset + H.length] ;
///   H -> {offset = u32le(0)} {length = u32le(4)} ;
///   GIF -> Header[6] LSD Blocks Trailer ;          // implicit intervals
///   check(EOI % 3 = 0)                             // predicate <e>
///   for i = 0 to H.num do SH[ofs + i*sz, ofs + (i+1)*sz]
///   switch(flag = 1: GlobalColorTable[size] / Empty[0, 1])
///   ... where { Sec -> switch(SH(i).type = 6: DynSec / OtherSec) ; }
///   blackbox inflate ;                             // declared blackboxes
///
/// Comments are `//` to end of line and `/* ... */`.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_FRONTEND_LEXER_H
#define IPG_FRONTEND_LEXER_H

#include "support/Result.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ipg {

enum class TokKind {
  Eof,
  Ident,
  Number,
  String,
  Arrow,    // ->
  LBracket, // [
  RBracket, // ]
  LBrace,   // {
  RBrace,   // }
  LParen,   // (
  RParen,   // )
  Comma,
  Semi,
  Slash,
  Colon,
  Question,
  Dot,
  Assign, // = (also equality inside expressions)
  EqEq,   // ==
  Neq,    // !=
  Lt,
  Gt,
  Le,
  Ge,
  AndAnd,
  OrOr,
  Amp,
  Plus,
  Minus,
  Star,
  Percent,
  Shl,
  Shr,
  KwFor,
  KwTo,
  KwDo,
  KwWhere,
  KwSwitch,
  KwCheck,
  KwExists,
  KwRaw,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;   ///< identifier spelling or decoded string bytes
  int64_t Number = 0; ///< value for TokKind::Number
  uint32_t Line = 1;
  uint32_t Col = 1;
};

/// Human-readable name of a token kind (for diagnostics).
const char *tokKindName(TokKind K);

/// Tokenizes \p Src; fails with a located message on malformed input
/// (unterminated string, bad escape, stray character).
Expected<std::vector<Token>> tokenize(std::string_view Src);

} // namespace ipg

#endif // IPG_FRONTEND_LEXER_H
