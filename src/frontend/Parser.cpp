//===- frontend/Parser.cpp ------------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

using namespace ipg;

namespace {

/// Builtin expression readers: name -> (kind, arity).
struct BuiltinRead {
  const char *Name;
  ReadKind RK;
  unsigned Arity;
};
const BuiltinRead Builtins[] = {
    {"u8", ReadKind::U8, 1},         {"u16le", ReadKind::U16Le, 1},
    {"u32le", ReadKind::U32Le, 1},   {"u64le", ReadKind::U64Le, 1},
    {"u16be", ReadKind::U16Be, 1},   {"u32be", ReadKind::U32Be, 1},
    {"btoi", ReadKind::BtoiLe, 2},   {"btoibe", ReadKind::BtoiBe, 2},
};

const BuiltinRead *findBuiltin(const std::string &Name) {
  for (const BuiltinRead &B : Builtins)
    if (Name == B.Name)
      return &B;
  return nullptr;
}

class Parser {
public:
  Parser(std::vector<Token> Toks) : Toks(std::move(Toks)) {}

  Expected<Grammar> run();

private:
  std::vector<Token> Toks;
  size_t Pos = 0;
  Grammar G;
  Error Err = Error::success();

  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  bool at(TokKind K) const { return cur().Kind == K; }
  bool accept(TokKind K) {
    if (!at(K))
      return false;
    ++Pos;
    return true;
  }
  void advance() { ++Pos; }

  /// Records a diagnostic at the current token; parsing then unwinds.
  bool fail(const std::string &Msg) {
    if (!Err)
      Err = Error::failure("line " + std::to_string(cur().Line) + ":" +
                           std::to_string(cur().Col) + ": " + Msg);
    return false;
  }
  bool expect(TokKind K) {
    if (accept(K))
      return true;
    return fail(std::string("expected ") + tokKindName(K) + ", found " +
                tokKindName(cur().Kind));
  }
  /// An identifier, or a keyword used in name position (e.g. `.start`).
  bool identLike(std::string &Out) {
    if (at(TokKind::Ident) || cur().Kind >= TokKind::KwFor) {
      Out = cur().Text;
      advance();
      return true;
    }
    return fail(std::string("expected identifier, found ") +
                tokKindName(cur().Kind));
  }

  // Expressions (precedence climbing).
  ExprPtr parseExpr();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseCmp();
  ExprPtr parseBand();
  ExprPtr parseShift();
  ExprPtr parseAdd();
  ExprPtr parseMul();
  ExprPtr parseUnary();
  ExprPtr parsePrimary();

  // Grammar structure.
  bool parseTopLevel();
  bool parseRuleInto(Rule &R);
  bool parseAlternative(Alternative &Alt);
  TermPtr parseTerm();
  bool parseOptInterval(Interval &Iv, bool Required);
};

} // namespace

ExprPtr Parser::parseExpr() {
  ExprPtr C = parseOr();
  if (!C)
    return nullptr;
  if (!accept(TokKind::Question))
    return C;
  ExprPtr T = parseExpr();
  if (!T)
    return nullptr;
  if (!expect(TokKind::Colon))
    return nullptr;
  ExprPtr F = parseExpr();
  if (!F)
    return nullptr;
  return CondExpr::create(std::move(C), std::move(T), std::move(F));
}

ExprPtr Parser::parseOr() {
  ExprPtr L = parseAnd();
  while (L && accept(TokKind::OrOr)) {
    ExprPtr R = parseAnd();
    if (!R)
      return nullptr;
    L = BinaryExpr::create(BinOpKind::Or, std::move(L), std::move(R));
  }
  return L;
}

ExprPtr Parser::parseAnd() {
  ExprPtr L = parseCmp();
  while (L && accept(TokKind::AndAnd)) {
    ExprPtr R = parseCmp();
    if (!R)
      return nullptr;
    L = BinaryExpr::create(BinOpKind::And, std::move(L), std::move(R));
  }
  return L;
}

ExprPtr Parser::parseCmp() {
  ExprPtr L = parseBand();
  if (!L)
    return nullptr;
  BinOpKind Op;
  switch (cur().Kind) {
  case TokKind::Assign:
  case TokKind::EqEq:
    Op = BinOpKind::Eq;
    break;
  case TokKind::Neq:
    Op = BinOpKind::Ne;
    break;
  case TokKind::Lt:
    Op = BinOpKind::Lt;
    break;
  case TokKind::Gt:
    Op = BinOpKind::Gt;
    break;
  case TokKind::Le:
    Op = BinOpKind::Le;
    break;
  case TokKind::Ge:
    Op = BinOpKind::Ge;
    break;
  default:
    return L;
  }
  advance();
  ExprPtr R = parseBand();
  if (!R)
    return nullptr;
  return BinaryExpr::create(Op, std::move(L), std::move(R));
}

ExprPtr Parser::parseBand() {
  ExprPtr L = parseShift();
  while (L && accept(TokKind::Amp)) {
    ExprPtr R = parseShift();
    if (!R)
      return nullptr;
    L = BinaryExpr::create(BinOpKind::BitAnd, std::move(L), std::move(R));
  }
  return L;
}

ExprPtr Parser::parseShift() {
  ExprPtr L = parseAdd();
  for (;;) {
    if (!L)
      return nullptr;
    BinOpKind Op;
    if (at(TokKind::Shl))
      Op = BinOpKind::Shl;
    else if (at(TokKind::Shr))
      Op = BinOpKind::Shr;
    else
      return L;
    advance();
    ExprPtr R = parseAdd();
    if (!R)
      return nullptr;
    L = BinaryExpr::create(Op, std::move(L), std::move(R));
  }
}

ExprPtr Parser::parseAdd() {
  ExprPtr L = parseMul();
  for (;;) {
    if (!L)
      return nullptr;
    BinOpKind Op;
    if (at(TokKind::Plus))
      Op = BinOpKind::Add;
    else if (at(TokKind::Minus))
      Op = BinOpKind::Sub;
    else
      return L;
    advance();
    ExprPtr R = parseMul();
    if (!R)
      return nullptr;
    L = BinaryExpr::create(Op, std::move(L), std::move(R));
  }
}

ExprPtr Parser::parseMul() {
  ExprPtr L = parseUnary();
  for (;;) {
    if (!L)
      return nullptr;
    BinOpKind Op;
    if (at(TokKind::Star))
      Op = BinOpKind::Mul;
    else if (at(TokKind::Slash))
      Op = BinOpKind::Div;
    else if (at(TokKind::Percent))
      Op = BinOpKind::Mod;
    else
      return L;
    advance();
    ExprPtr R = parseUnary();
    if (!R)
      return nullptr;
    L = BinaryExpr::create(Op, std::move(L), std::move(R));
  }
}

ExprPtr Parser::parseUnary() {
  if (accept(TokKind::Minus)) {
    ExprPtr E = parseUnary();
    if (!E)
      return nullptr;
    return BinaryExpr::create(BinOpKind::Sub, NumExpr::create(0),
                              std::move(E));
  }
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  if (at(TokKind::Number)) {
    int64_t V = cur().Number;
    advance();
    return NumExpr::create(V);
  }
  if (accept(TokKind::LParen)) {
    ExprPtr E = parseExpr();
    if (!E)
      return nullptr;
    if (!expect(TokKind::RParen))
      return nullptr;
    return E;
  }
  if (accept(TokKind::KwExists)) {
    // exists j . cond ? then : else
    std::string Var;
    if (!identLike(Var))
      return nullptr;
    if (!expect(TokKind::Dot))
      return nullptr;
    ExprPtr C = parseOr();
    if (!C)
      return nullptr;
    if (!expect(TokKind::Question))
      return nullptr;
    ExprPtr T = parseExpr();
    if (!T)
      return nullptr;
    if (!expect(TokKind::Colon))
      return nullptr;
    ExprPtr F = parseExpr();
    if (!F)
      return nullptr;
    return ExistsExpr::create(G.intern(Var), std::move(C), std::move(T),
                              std::move(F));
  }
  if (!at(TokKind::Ident)) {
    fail("expected expression");
    return nullptr;
  }
  std::string Name = cur().Text;
  advance();
  if (Name == "EOI")
    return RefExpr::eoi();

  if (accept(TokKind::Dot)) {
    std::string Attr;
    if (!identLike(Attr))
      return nullptr;
    return RefExpr::ntAttr(G.intern(Name), G.intern(Attr));
  }
  if (accept(TokKind::LParen)) {
    std::vector<ExprPtr> Args;
    if (!at(TokKind::RParen)) {
      do {
        ExprPtr A = parseExpr();
        if (!A)
          return nullptr;
        Args.push_back(std::move(A));
      } while (accept(TokKind::Comma));
    }
    if (!expect(TokKind::RParen))
      return nullptr;
    if (accept(TokKind::Dot)) {
      // A(e).attr — array element reference.
      std::string Attr;
      if (!identLike(Attr))
        return nullptr;
      if (Args.size() != 1) {
        fail("array element reference takes exactly one index");
        return nullptr;
      }
      return RefExpr::ntElemAttr(G.intern(Name), std::move(Args[0]),
                                 G.intern(Attr));
    }
    const BuiltinRead *B = findBuiltin(Name);
    if (!B) {
      fail("unknown builtin function '" + Name + "'");
      return nullptr;
    }
    if (Args.size() != B->Arity) {
      fail("builtin '" + Name + "' expects " + std::to_string(B->Arity) +
           " argument(s)");
      return nullptr;
    }
    if (B->Arity == 1)
      return ReadExpr::fixed(B->RK, std::move(Args[0]));
    return ReadExpr::btoi(B->RK, std::move(Args[0]), std::move(Args[1]));
  }
  return RefExpr::attr(G.intern(Name));
}

bool Parser::parseOptInterval(Interval &Iv, bool Required) {
  if (!at(TokKind::LBracket)) {
    if (Required)
      return fail("this term requires an interval");
    Iv = Interval::omitted();
    return true;
  }
  advance();
  ExprPtr E1 = parseExpr();
  if (!E1)
    return false;
  if (accept(TokKind::Comma)) {
    ExprPtr E2 = parseExpr();
    if (!E2)
      return false;
    if (!expect(TokKind::RBracket))
      return false;
    Iv = Interval::explicitly(std::move(E1), std::move(E2));
    return true;
  }
  if (!expect(TokKind::RBracket))
    return false;
  Iv = Interval::lengthOnly(std::move(E1));
  return true;
}

TermPtr Parser::parseTerm() {
  if (at(TokKind::String)) {
    std::string Bytes = cur().Text;
    advance();
    Interval Iv;
    if (!parseOptInterval(Iv, /*Required=*/false))
      return nullptr;
    return std::make_shared<TerminalTerm>(std::move(Bytes), std::move(Iv));
  }
  if (accept(TokKind::KwRaw)) {
    Interval Iv;
    if (!parseOptInterval(Iv, /*Required=*/false))
      return nullptr;
    return std::make_shared<TerminalTerm>(std::string(), std::move(Iv),
                                          /*Wildcard=*/true);
  }
  if (accept(TokKind::LBrace)) {
    std::string Name;
    if (!identLike(Name))
      return nullptr;
    if (!expect(TokKind::Assign))
      return nullptr;
    ExprPtr V = parseExpr();
    if (!V)
      return nullptr;
    if (!expect(TokKind::RBrace))
      return nullptr;
    return std::make_shared<AttrDefTerm>(G.intern(Name), std::move(V));
  }
  if (accept(TokKind::KwCheck)) {
    if (!expect(TokKind::LParen))
      return nullptr;
    ExprPtr C = parseExpr();
    if (!C)
      return nullptr;
    if (!expect(TokKind::RParen))
      return nullptr;
    return std::make_shared<PredicateTerm>(std::move(C));
  }
  if (accept(TokKind::KwFor)) {
    std::string Var;
    if (!identLike(Var))
      return nullptr;
    if (!expect(TokKind::Assign))
      return nullptr;
    ExprPtr From = parseExpr();
    if (!From)
      return nullptr;
    if (!expect(TokKind::KwTo))
      return nullptr;
    ExprPtr To = parseExpr();
    if (!To)
      return nullptr;
    if (!expect(TokKind::KwDo))
      return nullptr;
    std::string Elem;
    if (!identLike(Elem))
      return nullptr;
    Interval Iv;
    if (!parseOptInterval(Iv, /*Required=*/true))
      return nullptr;
    return std::make_shared<ArrayTerm>(G.intern(Var), std::move(From),
                                       std::move(To), G.intern(Elem),
                                       std::move(Iv));
  }
  if (accept(TokKind::KwSwitch)) {
    if (!expect(TokKind::LParen))
      return nullptr;
    std::vector<SwitchChoice> Choices;
    for (;;) {
      SwitchChoice Choice;
      // Lookahead: `NAME [` / `NAME /` / `NAME )` is a default (condition-
      // less) arm; anything else is `cond : NAME [interval]`.
      bool IsDefault = at(TokKind::Ident) &&
                       (peek().Kind == TokKind::LBracket ||
                        peek().Kind == TokKind::Slash ||
                        peek().Kind == TokKind::RParen);
      if (!IsDefault) {
        Choice.Cond = parseOr(); // no ternary: ':' separates cond from arm
        if (!Choice.Cond)
          return nullptr;
        if (!expect(TokKind::Colon))
          return nullptr;
      }
      if (!at(TokKind::Ident)) {
        fail("expected nonterminal in switch arm");
        return nullptr;
      }
      Choice.NT = G.intern(cur().Text);
      advance();
      if (!parseOptInterval(Choice.Iv, /*Required=*/false))
        return nullptr;
      Choices.push_back(std::move(Choice));
      if (accept(TokKind::Slash))
        continue;
      break;
    }
    if (!expect(TokKind::RParen))
      return nullptr;
    return std::make_shared<SwitchTerm>(std::move(Choices));
  }
  if (at(TokKind::Ident)) {
    Symbol Name = G.intern(cur().Text);
    advance();
    Interval Iv;
    if (!parseOptInterval(Iv, /*Required=*/false))
      return nullptr;
    if (G.isBlackbox(Name))
      return std::make_shared<BlackboxTerm>(Name, std::move(Iv));
    return std::make_shared<NTTerm>(Name, std::move(Iv));
  }
  fail(std::string("expected a term, found ") + tokKindName(cur().Kind));
  return nullptr;
}

bool Parser::parseAlternative(Alternative &Alt) {
  // An alternative may legitimately be empty (e.g. `X -> "a" / ;` is not
  // used in practice, but the empty terminal `""` is); require at least one
  // term for sanity.
  for (;;) {
    switch (cur().Kind) {
    case TokKind::Slash:
    case TokKind::Semi:
    case TokKind::Eof:
      if (Alt.Terms.empty())
        return fail("empty alternative");
      return true;
    case TokKind::KwWhere: {
      advance();
      if (!expect(TokKind::LBrace))
        return false;
      while (!at(TokKind::RBrace)) {
        if (!at(TokKind::Ident))
          return fail("expected local rule in where-block");
        Symbol Name = G.intern(cur().Text);
        for (RuleId L : Alt.LocalRules)
          if (G.rule(L).Name == Name)
            return fail("duplicate local rule '" + cur().Text + "'");
        advance();
        Rule &R = G.createRule(Name, /*IsLocal=*/true);
        Alt.LocalRules.push_back(R.Id);
        if (!parseRuleInto(R))
          return false;
      }
      advance(); // RBrace
      if (Alt.Terms.empty())
        return fail("empty alternative");
      return true;
    }
    default: {
      TermPtr T = parseTerm();
      if (!T)
        return false;
      Alt.Terms.push_back(std::move(T));
    }
    }
  }
}

bool Parser::parseRuleInto(Rule &R) {
  if (!expect(TokKind::Arrow))
    return false;
  for (;;) {
    Alternative Alt;
    if (!parseAlternative(Alt))
      return false;
    R.Alts.push_back(std::move(Alt));
    if (accept(TokKind::Slash))
      continue;
    return expect(TokKind::Semi);
  }
}

bool Parser::parseTopLevel() {
  while (!at(TokKind::Eof)) {
    if (!at(TokKind::Ident))
      return fail("expected a rule or declaration");
    std::string Name = cur().Text;
    if (Name == "blackbox" && peek().Kind == TokKind::Ident) {
      advance();
      G.declareBlackbox(G.intern(cur().Text));
      advance();
      if (!expect(TokKind::Semi))
        return false;
      continue;
    }
    if (Name == "start" && peek().Kind == TokKind::Ident) {
      advance();
      G.setStartSymbol(G.intern(cur().Text));
      advance();
      if (!expect(TokKind::Semi))
        return false;
      continue;
    }
    Symbol Sym = G.intern(Name);
    if (G.findGlobal(Sym) != InvalidRuleId)
      return fail("duplicate rule '" + Name + "'");
    advance();
    Rule &R = G.createRule(Sym, /*IsLocal=*/false);
    if (!parseRuleInto(R))
      return false;
  }
  return true;
}

Expected<Grammar> Parser::run() {
  if (!parseTopLevel()) {
    assert(Err && "parse failed without a diagnostic");
    return Expected<Grammar>(std::move(Err));
  }
  if (G.startSymbol() == InvalidSymbol)
    return Expected<Grammar>::failure("grammar has no rules");
  if (G.findGlobal(G.startSymbol()) == InvalidRuleId)
    return Expected<Grammar>::failure(
        "start symbol '" +
        std::string(G.interner().name(G.startSymbol())) +
        "' has no rule");
  return Expected<Grammar>(std::move(G));
}

Expected<Grammar> ipg::parseGrammarText(std::string_view Src) {
  auto Toks = tokenize(Src);
  if (!Toks)
    return Expected<Grammar>(Toks.takeError());
  return Parser(std::move(*Toks)).run();
}
