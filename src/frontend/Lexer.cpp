//===- frontend/Lexer.cpp -------------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

using namespace ipg;

const char *ipg::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Ident:
    return "identifier";
  case TokKind::Number:
    return "number";
  case TokKind::String:
    return "string";
  case TokKind::Arrow:
    return "'->'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Colon:
    return "':'";
  case TokKind::Question:
    return "'?'";
  case TokKind::Dot:
    return "'.'";
  case TokKind::Assign:
    return "'='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::Neq:
    return "'!='";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Ge:
    return "'>='";
  case TokKind::AndAnd:
    return "'&&'";
  case TokKind::OrOr:
    return "'||'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Shl:
    return "'<<'";
  case TokKind::Shr:
    return "'>>'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwTo:
    return "'to'";
  case TokKind::KwDo:
    return "'do'";
  case TokKind::KwWhere:
    return "'where'";
  case TokKind::KwSwitch:
    return "'switch'";
  case TokKind::KwCheck:
    return "'check'";
  case TokKind::KwExists:
    return "'exists'";
  case TokKind::KwRaw:
    return "'raw'";
  }
  return "?";
}

namespace {

class Lexer {
public:
  explicit Lexer(std::string_view Src) : Src(Src) {}

  Expected<std::vector<Token>> run();

private:
  std::string_view Src;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;

  bool atEnd() const { return Pos >= Src.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  Error skipTrivia();
  Expected<Token> lexString(Token Tok);
  Token lexNumber(Token Tok);
  Token lexIdent(Token Tok);

  std::string located(const std::string &Msg) const {
    return "line " + std::to_string(Line) + ":" + std::to_string(Col) + ": " +
           Msg;
  }
};

} // namespace

Error Lexer::skipTrivia() {
  for (;;) {
    if (atEnd())
      return Error::success();
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (atEnd())
        return Error::failure(located("unterminated block comment"));
      advance();
      advance();
      continue;
    }
    return Error::success();
  }
}

Expected<Token> Lexer::lexString(Token Tok) {
  Tok.Kind = TokKind::String;
  advance(); // opening quote
  std::string Bytes;
  for (;;) {
    if (atEnd())
      return Expected<Token>::failure(located("unterminated string literal"));
    char C = advance();
    if (C == '"')
      break;
    if (C != '\\') {
      Bytes += C;
      continue;
    }
    if (atEnd())
      return Expected<Token>::failure(located("unterminated escape"));
    char E = advance();
    switch (E) {
    case 'n':
      Bytes += '\n';
      break;
    case 'r':
      Bytes += '\r';
      break;
    case 't':
      Bytes += '\t';
      break;
    case '0':
      Bytes += '\0';
      break;
    case '\\':
    case '"':
      Bytes += E;
      break;
    case 'x': {
      if (Pos + 1 >= Src.size() || !isxdigit(peek()) || !isxdigit(peek(1)))
        return Expected<Token>::failure(
            located("\\x escape requires two hex digits"));
      auto Hex = [](char H) {
        return H <= '9' ? H - '0' : (tolower(H) - 'a' + 10);
      };
      char Hi = advance(), LoC = advance();
      Bytes += static_cast<char>(Hex(Hi) * 16 + Hex(LoC));
      break;
    }
    default:
      return Expected<Token>::failure(
          located(std::string("unknown escape '\\") + E + "'"));
    }
  }
  Tok.Text = std::move(Bytes);
  return Tok;
}

Token Lexer::lexNumber(Token Tok) {
  Tok.Kind = TokKind::Number;
  int64_t V = 0;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    while (isxdigit(peek())) {
      char C = advance();
      int D = C <= '9' ? C - '0' : (tolower(C) - 'a' + 10);
      V = V * 16 + D;
    }
  } else {
    while (isdigit(peek()))
      V = V * 10 + (advance() - '0');
  }
  Tok.Number = V;
  return Tok;
}

Token Lexer::lexIdent(Token Tok) {
  std::string Name;
  while (isalnum(peek()) || peek() == '_')
    Name += advance();
  static const std::unordered_map<std::string, TokKind> Keywords = {
      {"for", TokKind::KwFor},       {"to", TokKind::KwTo},
      {"do", TokKind::KwDo},         {"where", TokKind::KwWhere},
      {"switch", TokKind::KwSwitch}, {"check", TokKind::KwCheck},
      {"exists", TokKind::KwExists}, {"raw", TokKind::KwRaw},
  };
  auto It = Keywords.find(Name);
  Tok.Kind = It == Keywords.end() ? TokKind::Ident : It->second;
  Tok.Text = std::move(Name);
  return Tok;
}

Expected<std::vector<Token>> Lexer::run() {
  std::vector<Token> Toks;
  for (;;) {
    if (Error E = skipTrivia())
      return Expected<std::vector<Token>>(std::move(E));
    Token Tok;
    Tok.Line = Line;
    Tok.Col = Col;
    if (atEnd()) {
      Toks.push_back(Tok); // Eof
      return Toks;
    }
    char C = peek();
    if (C == '"') {
      auto S = lexString(Tok);
      if (!S)
        return Expected<std::vector<Token>>(S.takeError());
      Toks.push_back(*S);
      continue;
    }
    if (isdigit(C)) {
      Toks.push_back(lexNumber(Tok));
      continue;
    }
    if (isalpha(C) || C == '_') {
      Toks.push_back(lexIdent(Tok));
      continue;
    }

    auto Two = [&](char Second, TokKind Long, TokKind Short) {
      advance();
      if (peek() == Second) {
        advance();
        Tok.Kind = Long;
      } else {
        Tok.Kind = Short;
      }
      Toks.push_back(Tok);
    };

    switch (C) {
    case '-':
      advance();
      if (peek() == '>') {
        advance();
        Tok.Kind = TokKind::Arrow;
      } else {
        Tok.Kind = TokKind::Minus;
      }
      Toks.push_back(Tok);
      break;
    case '[':
      advance();
      Tok.Kind = TokKind::LBracket;
      Toks.push_back(Tok);
      break;
    case ']':
      advance();
      Tok.Kind = TokKind::RBracket;
      Toks.push_back(Tok);
      break;
    case '{':
      advance();
      Tok.Kind = TokKind::LBrace;
      Toks.push_back(Tok);
      break;
    case '}':
      advance();
      Tok.Kind = TokKind::RBrace;
      Toks.push_back(Tok);
      break;
    case '(':
      advance();
      Tok.Kind = TokKind::LParen;
      Toks.push_back(Tok);
      break;
    case ')':
      advance();
      Tok.Kind = TokKind::RParen;
      Toks.push_back(Tok);
      break;
    case ',':
      advance();
      Tok.Kind = TokKind::Comma;
      Toks.push_back(Tok);
      break;
    case ';':
      advance();
      Tok.Kind = TokKind::Semi;
      Toks.push_back(Tok);
      break;
    case '/':
      advance();
      Tok.Kind = TokKind::Slash;
      Toks.push_back(Tok);
      break;
    case ':':
      advance();
      Tok.Kind = TokKind::Colon;
      Toks.push_back(Tok);
      break;
    case '?':
      advance();
      Tok.Kind = TokKind::Question;
      Toks.push_back(Tok);
      break;
    case '.':
      advance();
      Tok.Kind = TokKind::Dot;
      Toks.push_back(Tok);
      break;
    case '=':
      Two('=', TokKind::EqEq, TokKind::Assign);
      break;
    case '!':
      advance();
      if (peek() == '=') {
        advance();
        Tok.Kind = TokKind::Neq;
        Toks.push_back(Tok);
        break;
      }
      return Expected<std::vector<Token>>::failure(
          located("stray '!' (did you mean '!='?)"));
    case '<':
      advance();
      if (peek() == '<') {
        advance();
        Tok.Kind = TokKind::Shl;
      } else if (peek() == '=') {
        advance();
        Tok.Kind = TokKind::Le;
      } else {
        Tok.Kind = TokKind::Lt;
      }
      Toks.push_back(Tok);
      break;
    case '>':
      advance();
      if (peek() == '>') {
        advance();
        Tok.Kind = TokKind::Shr;
      } else if (peek() == '=') {
        advance();
        Tok.Kind = TokKind::Ge;
      } else {
        Tok.Kind = TokKind::Gt;
      }
      Toks.push_back(Tok);
      break;
    case '&':
      Two('&', TokKind::AndAnd, TokKind::Amp);
      break;
    case '|':
      advance();
      if (peek() == '|') {
        advance();
        Tok.Kind = TokKind::OrOr;
        Toks.push_back(Tok);
        break;
      }
      return Expected<std::vector<Token>>::failure(
          located("stray '|' (did you mean '||'?)"));
    case '+':
      advance();
      Tok.Kind = TokKind::Plus;
      Toks.push_back(Tok);
      break;
    case '*':
      advance();
      Tok.Kind = TokKind::Star;
      Toks.push_back(Tok);
      break;
    case '%':
      advance();
      Tok.Kind = TokKind::Percent;
      Toks.push_back(Tok);
      break;
    default:
      return Expected<std::vector<Token>>::failure(
          located(std::string("unexpected character '") + C + "'"));
    }
  }
}

Expected<std::vector<Token>> ipg::tokenize(std::string_view Src) {
  return Lexer(Src).run();
}
