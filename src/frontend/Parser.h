//===- frontend/Parser.h - IPG DSL parser -----------------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses IPG grammar text into a Grammar AST. The result still needs the
/// analysis pipeline (completion, resolution, attribute checking) before it
/// can be executed; `loadGrammar` in analysis/AttributeCheck.h runs the
/// whole pipeline.
///
/// Top-level forms:
///   blackbox NAME ;      declare a blackbox parser usable as a term
///   start NAME ;         override the start symbol (default: first rule)
///   NAME -> alts ;       a rule
///
//===----------------------------------------------------------------------===//

#ifndef IPG_FRONTEND_PARSER_H
#define IPG_FRONTEND_PARSER_H

#include "grammar/Grammar.h"
#include "support/Result.h"

#include <string_view>

namespace ipg {

/// Parses \p Src into an (unchecked, uncompleted) grammar.
Expected<Grammar> parseGrammarText(std::string_view Src);

} // namespace ipg

#endif // IPG_FRONTEND_PARSER_H
