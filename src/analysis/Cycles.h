//===- analysis/Cycles.h - Elementary cycle enumeration ---------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Johnson's algorithm (SIAM J. Comput. 1975) for enumerating the
/// elementary circuits of a directed multigraph, as prescribed by paper
/// Section 5 step (2). Cycles are returned as sequences of edge indices so
/// parallel edges yield distinct cycles.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_ANALYSIS_CYCLES_H
#define IPG_ANALYSIS_CYCLES_H

#include "analysis/NTGraph.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ipg {

/// Enumerates elementary cycles of \p G, stopping after \p MaxCycles (real
/// grammars have a handful; the cap only guards against pathological
/// inputs).
std::vector<std::vector<uint32_t>> elementaryCycles(const NTGraph &G,
                                                    size_t MaxCycles = 4096);

} // namespace ipg

#endif // IPG_ANALYSIS_CYCLES_H
