//===- analysis/NTGraph.h - Nonterminal dependency graph --------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The directed multigraph of Section 5 step (1): one node per rule, one
/// edge A -> B labeled with the symbolic interval [el, er] for every
/// occurrence of B[el, er] in A's rule (including array elements and switch
/// arms). Blackbox terms contribute no edges (the paper assumes blackboxes
/// terminate).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_ANALYSIS_NTGRAPH_H
#define IPG_ANALYSIS_NTGRAPH_H

#include "grammar/Grammar.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ipg {

struct NTEdge {
  RuleId From = InvalidRuleId;
  RuleId To = InvalidRuleId;
  ExprPtr Lo, Hi;
  /// The alternative the occurrence lives in (used to resolve sibling
  /// `X.end` references when applying the consumes extension).
  const Alternative *OwnerAlt = nullptr;
};

struct NTGraph {
  size_t NumNodes = 0;
  std::vector<NTEdge> Edges;
  /// Out-edge indices per node.
  std::vector<std::vector<uint32_t>> Adj;
};

/// Builds the graph over all rules of \p G (grammar must be resolved).
NTGraph buildNTGraph(const Grammar &G);

} // namespace ipg

#endif // IPG_ANALYSIS_NTGRAPH_H
