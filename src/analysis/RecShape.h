//===- analysis/RecShape.h - recursion-shape classification -----*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies every rule by the shape of its recursion so the execution
/// engines can make grammar recursion depth independent of the C++ call
/// stack. Three tiers, shared by the interpreter and the code generator
/// (one analysis, so the two engines cannot disagree about execution
/// strategy):
///
///   Direct    — the rule is on no call-graph cycle. Recursive descent is
///               safe: its C-stack use is bounded by the grammar's own
///               structure, never by input size.
///   Flattened — linear self-recursion (the PDF `XNum`/`Scan` shape, DNS
///               `Name`/`RRs`): exactly one self-reference, in plain
///               nonterminal position, and every other callee stays off
///               any cycle through the rule. The engines run these as a
///               descend/unwind loop over compact per-level records — one
///               frame total, O(1) C stack, depth bounded only by
///               EngineOptions::MaxDepth.
///   Step      — every other recursion (mutual cycles, multiple
///               self-alternatives, self under array/switch, where-clause
///               rules on a cycle), plus every rule that can transitively
///               reach one: those run on an explicit work-stack machine.
///               The closure guarantees the machine only ever starts at
///               the root, so Direct/Flattened code never meets a Step
///               callee mid-descent.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_ANALYSIS_RECSHAPE_H
#define IPG_ANALYSIS_RECSHAPE_H

#include "grammar/Grammar.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ipg {

enum class ExecShape : uint8_t {
  Direct,
  Flattened,
  Step,
};

/// How to run a Flattened rule: where the self-reference sits and which
/// prefix terms parse child nonterminals (their nodes are kept per level
/// across the descend so the unwind replays instead of re-parsing).
struct FlattenInfo {
  uint32_t SelfAlt = 0;     ///< alternative index holding the self term
  uint32_t SelfTerm = 0;    ///< index into Alt.Terms of the self NTTerm
  uint32_t SelfExecPos = 0; ///< position of SelfTerm in execution order
  /// Term indices (into Alt.Terms) of prefix nonterminal terms, in
  /// execution order. Their parse results are stored per level; all other
  /// prefix terms (terminals, attribute defs, predicates) are probed on
  /// the way down and replayed for real on the way back up.
  std::vector<uint32_t> PrefixNTTerms;
};

struct RecShapeResult {
  std::vector<ExecShape> Shape; ///< indexed by RuleId
  std::vector<FlattenInfo> Flatten; ///< indexed by RuleId; valid iff Flattened
  bool anyStep() const {
    for (ExecShape S : Shape)
      if (S == ExecShape::Step)
        return true;
    return false;
  }
};

/// Runs the classification over a resolved grammar (checkAttributes must
/// have filled Resolved ids and ExecOrder).
RecShapeResult analyzeRecShape(const Grammar &G);

} // namespace ipg

#endif // IPG_ANALYSIS_RECSHAPE_H
