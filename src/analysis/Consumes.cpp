//===- analysis/Consumes.cpp ----------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Consumes.h"

#include "expr/Linear.h"
#include "solver/LinearSystem.h"
#include "support/Casting.h"

#include <cstddef>
#include <cstdint>
#include <vector>

using namespace ipg;

/// A wildcard (`raw`) touches its whole interval, so it surely consumes
/// when the interval is provably non-empty: if Hi - Lo <= 0 (with EOI >= 0)
/// is unsatisfiable, every successful match covers at least one byte.
/// This is what lets fixed-size record rules like `raw[0, 2]` count.
static bool wildcardConsumes(const TerminalTerm &T,
                             const StringInterner &Names) {
  if (!T.Iv.Lo || !T.Iv.Hi)
    return false;
  AtomTable Atoms;
  LinearSystem Sys;
  uint32_t Eoi = Atoms.atom("EOI");
  Sys.addLe(LinExpr::atom(Eoi).scaled(Rational(-1))); // -EOI <= 0
  Sys.addLe(linearize(*T.Iv.Hi, Atoms, "w", Names) -
            linearize(*T.Iv.Lo, Atoms, "w", Names)); // Hi - Lo <= 0
  return Sys.check() == LinearSystem::Result::Unsat;
}

bool ipg::terminalSurelyConsumes(const TerminalTerm &T,
                                 const StringInterner &Names) {
  if (T.Wildcard)
    return wildcardConsumes(T, Names);
  return !T.Bytes.empty();
}

static bool termConsumes(const Term &T, const std::vector<bool> &Consumes,
                         const StringInterner &Names) {
  switch (T.kind()) {
  case Term::Kind::Terminal:
    return terminalSurelyConsumes(*cast<TerminalTerm>(&T), Names);
  case Term::Kind::Nonterminal: {
    RuleId R = cast<NTTerm>(&T)->Resolved;
    return R != InvalidRuleId && Consumes[R];
  }
  case Term::Kind::Switch: {
    // A switch consumes when every arm's rule consumes (whichever arm is
    // taken, a byte is touched).
    const auto &Sw = *cast<SwitchTerm>(&T);
    if (Sw.Choices.empty())
      return false;
    for (const SwitchChoice &C : Sw.Choices)
      if (C.Resolved == InvalidRuleId || !Consumes[C.Resolved])
        return false;
    return true;
  }
  case Term::Kind::Array:    // may iterate zero times
  case Term::Kind::Blackbox: // may succeed consuming nothing
  case Term::Kind::AttrDef:
  case Term::Kind::Predicate:
    return false;
  }
  return false;
}

static bool altConsumes(const Alternative &Alt,
                        const std::vector<bool> &Consumes,
                        const StringInterner &Names) {
  for (const TermPtr &T : Alt.Terms)
    if (termConsumes(*T, Consumes, Names))
      return true;
  return false;
}

std::vector<bool> ipg::computeConsumes(const Grammar &G) {
  std::vector<bool> Consumes(G.numRules(), false);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0, E = G.numRules(); I != E; ++I) {
      if (Consumes[I])
        continue;
      const Rule &R = G.rule(static_cast<RuleId>(I));
      if (R.Alts.empty())
        continue;
      bool All = true;
      for (const Alternative &Alt : R.Alts)
        if (!altConsumes(Alt, Consumes, G.interner())) {
          All = false;
          break;
        }
      if (All) {
        Consumes[I] = true;
        Changed = true;
      }
    }
  }
  return Consumes;
}
