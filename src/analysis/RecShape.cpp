//===- analysis/RecShape.cpp - recursion-shape classification -------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/RecShape.h"

#include "support/Casting.h"

#include <numeric>
#include <optional>

namespace ipg {

namespace {

/// Appends every rule \p T can invoke (nonterminal, array element, switch
/// arm). Blackboxes invoke registered native code, never grammar rules.
void collectCallees(const Term &T, std::vector<uint32_t> &Out) {
  switch (T.kind()) {
  case Term::Kind::Nonterminal:
    Out.push_back(cast<NTTerm>(&T)->Resolved);
    break;
  case Term::Kind::Array:
    Out.push_back(cast<ArrayTerm>(&T)->Resolved);
    break;
  case Term::Kind::Switch:
    for (const SwitchChoice &C : cast<SwitchTerm>(&T)->Choices)
      Out.push_back(C.Resolved);
    break;
  case Term::Kind::Terminal:
  case Term::Kind::AttrDef:
  case Term::Kind::Predicate:
  case Term::Kind::Blackbox:
    break;
  }
}

/// Checks whether the on-a-cycle rule \p Id fits the Flattened tier: one
/// self-reference, in plain nonterminal position, no where-clause, every
/// other callee off every cycle through \p Id, and a prefix (terms executed
/// before the self call) made only of terminals, attribute definitions,
/// predicates, and child nonterminals. Suffix terms are unrestricted here;
/// a suffix callee that needs the step machine turns the whole rule Step
/// via the caller's up-closure.
std::optional<FlattenInfo>
flattenCandidate(const Grammar &G, RuleId Id,
                 const std::vector<std::vector<uint8_t>> &Reach) {
  const Rule &R = G.rule(Id);
  if (R.IsLocal)
    return std::nullopt;
  for (const Alternative &A : R.Alts)
    if (!A.LocalRules.empty())
      return std::nullopt;

  // Exactly one self-reference, and it must be a plain NTTerm (a self
  // under an array or switch repeats an unbounded number of times per
  // level — that is genuine general recursion, not a linear spine).
  int SelfAlt = -1;
  uint32_t SelfTerm = 0;
  size_t SelfCount = 0;
  std::vector<uint32_t> Scratch;
  for (size_t AI = 0; AI < R.Alts.size(); ++AI) {
    const Alternative &A = R.Alts[AI];
    for (size_t TI = 0; TI < A.Terms.size(); ++TI) {
      const Term &T = *A.Terms[TI];
      if (const auto *NT = dyn_cast<NTTerm>(&T)) {
        if (NT->Resolved == Id) {
          ++SelfCount;
          SelfAlt = static_cast<int>(AI);
          SelfTerm = static_cast<uint32_t>(TI);
        }
        continue;
      }
      Scratch.clear();
      collectCallees(T, Scratch);
      for (uint32_t Callee : Scratch)
        if (Callee == Id)
          return std::nullopt;
    }
  }
  if (SelfCount != 1)
    return std::nullopt;

  // Every cycle through the rule must be the self edge alone: no other
  // callee may reach back to it.
  for (const Alternative &A : R.Alts)
    for (const TermPtr &T : A.Terms) {
      Scratch.clear();
      collectCallees(*T, Scratch);
      for (uint32_t Callee : Scratch)
        if (Callee != Id && Callee < Reach.size() && Reach[Callee][Id])
          return std::nullopt;
    }

  const Alternative &A = R.Alts[static_cast<size_t>(SelfAlt)];
  std::vector<uint32_t> Order = A.ExecOrder;
  if (Order.empty()) {
    Order.resize(A.Terms.size());
    std::iota(Order.begin(), Order.end(), 0u);
  }

  FlattenInfo FI;
  FI.SelfAlt = static_cast<uint32_t>(SelfAlt);
  FI.SelfTerm = SelfTerm;
  size_t SelfPos = 0;
  while (SelfPos < Order.size() && Order[SelfPos] != SelfTerm)
    ++SelfPos;
  FI.SelfExecPos = static_cast<uint32_t>(SelfPos);

  // Prefix terms run once per level on the way down, then again for real
  // on the way back up; only kinds whose replay is cheap and deterministic
  // qualify. Child nonterminals parse once (descend) and replay by
  // popping the stored node, so they are fine; arrays, switches, and
  // blackboxes are not.
  for (size_t P = 0; P < SelfPos; ++P) {
    const Term &T = *A.Terms[Order[P]];
    switch (T.kind()) {
    case Term::Kind::Terminal:
    case Term::Kind::AttrDef:
    case Term::Kind::Predicate:
      break;
    case Term::Kind::Nonterminal:
      FI.PrefixNTTerms.push_back(Order[P]);
      break;
    case Term::Kind::Array:
    case Term::Kind::Switch:
    case Term::Kind::Blackbox:
      return std::nullopt;
    }
  }
  return FI;
}

} // namespace

RecShapeResult analyzeRecShape(const Grammar &G) {
  const size_t N = G.numRules();
  RecShapeResult Res;
  Res.Shape.assign(N, ExecShape::Direct);
  Res.Flatten.resize(N);
  if (N == 0)
    return Res;

  // Call graph over the whole rule arena (local rules carry their own ids,
  // so where-clause bodies contribute edges like any other rule).
  std::vector<std::vector<uint32_t>> Adj(N);
  std::vector<uint32_t> Scratch;
  for (size_t I = 0; I < N; ++I)
    for (const Alternative &A : G.rule(static_cast<RuleId>(I)).Alts)
      for (const TermPtr &T : A.Terms) {
        Scratch.clear();
        collectCallees(*T, Scratch);
        for (uint32_t Callee : Scratch)
          if (Callee != InvalidRuleId && Callee < N)
            Adj[I].push_back(Callee);
      }

  // Reach[i][j]: j is reachable from i via one or more call edges.
  // Grammars are tens of rules, so a per-source DFS is plenty.
  std::vector<std::vector<uint8_t>> Reach(N, std::vector<uint8_t>(N, 0));
  std::vector<uint32_t> Stack;
  for (size_t I = 0; I < N; ++I) {
    Stack.assign(Adj[I].begin(), Adj[I].end());
    while (!Stack.empty()) {
      uint32_t J = Stack.back();
      Stack.pop_back();
      if (Reach[I][J])
        continue;
      Reach[I][J] = 1;
      for (uint32_t K : Adj[J])
        Stack.push_back(K);
    }
  }

  // On-a-cycle rules either flatten or seed the step tier.
  std::vector<uint8_t> Step0(N, 0);
  for (size_t I = 0; I < N; ++I) {
    if (!Reach[I][I])
      continue;
    if (auto FI = flattenCandidate(G, static_cast<RuleId>(I), Reach)) {
      Res.Shape[I] = ExecShape::Flattened;
      Res.Flatten[I] = std::move(*FI);
    } else {
      Step0[I] = 1;
    }
  }

  // Up-closure: a rule that can transitively invoke a step rule must run
  // on the machine too, so Direct/Flattened code never calls into a step
  // callee — the machine always starts at the parse root (depth 0).
  for (size_t I = 0; I < N; ++I) {
    if (Res.Shape[I] == ExecShape::Step)
      continue;
    bool ReachesStep = Step0[I] != 0;
    for (size_t J = 0; !ReachesStep && J < N; ++J)
      ReachesStep = Step0[J] && Reach[I][J];
    if (ReachesStep)
      Res.Shape[I] = ExecShape::Step;
  }
  return Res;
}

} // namespace ipg
