//===- analysis/Cycles.cpp ------------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cycles.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

using namespace ipg;

namespace {

/// Johnson's circuit-enumeration algorithm restricted to the subgraph of
/// nodes >= Root, with Root as the start vertex of every reported circuit.
class JohnsonSearch {
public:
  JohnsonSearch(const NTGraph &G, size_t Root,
                std::vector<std::vector<uint32_t>> &Out, size_t MaxCycles)
      : G(G), Root(Root), Out(Out), MaxCycles(MaxCycles),
        Blocked(G.NumNodes, false), BlockLists(G.NumNodes) {}

  void run() { circuit(Root); }

private:
  const NTGraph &G;
  size_t Root;
  std::vector<std::vector<uint32_t>> &Out;
  size_t MaxCycles;
  std::vector<bool> Blocked;
  std::vector<std::vector<size_t>> BlockLists;
  std::vector<uint32_t> EdgeStack;

  void unblock(size_t V) {
    Blocked[V] = false;
    for (size_t W : BlockLists[V])
      if (Blocked[W])
        unblock(W);
    BlockLists[V].clear();
  }

  bool circuit(size_t V) {
    if (Out.size() >= MaxCycles)
      return true;
    bool Found = false;
    Blocked[V] = true;
    for (uint32_t EI : G.Adj[V]) {
      size_t W = G.Edges[EI].To;
      if (W < Root)
        continue; // only consider the subgraph induced by nodes >= Root
      if (W == Root) {
        EdgeStack.push_back(EI);
        Out.push_back(EdgeStack);
        EdgeStack.pop_back();
        Found = true;
        if (Out.size() >= MaxCycles)
          break;
        continue;
      }
      if (!Blocked[W]) {
        EdgeStack.push_back(EI);
        if (circuit(W))
          Found = true;
        EdgeStack.pop_back();
      }
    }
    if (Found) {
      unblock(V);
    } else {
      for (uint32_t EI : G.Adj[V]) {
        size_t W = G.Edges[EI].To;
        if (W < Root)
          continue;
        auto &BL = BlockLists[W];
        if (std::find(BL.begin(), BL.end(), V) == BL.end())
          BL.push_back(V);
      }
    }
    return Found;
  }
};

} // namespace

std::vector<std::vector<uint32_t>>
ipg::elementaryCycles(const NTGraph &G, size_t MaxCycles) {
  std::vector<std::vector<uint32_t>> Out;
  for (size_t Root = 0; Root < G.NumNodes && Out.size() < MaxCycles; ++Root)
    JohnsonSearch(G, Root, Out, MaxCycles).run();
  return Out;
}
