//===- analysis/AttributeCheck.h - IPG attribute checking -------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Attribute checking (paper Section 3.2) ensures
///   (1) every attribute reference refers to a defined attribute, and
///   (2) no alternative has circular attribute dependencies;
/// and, as in the paper, reorders each alternative's terms into the
/// topological order of its dependency DAG (stored in
/// Alternative::ExecOrder; ties keep source order).
///
/// This pass also binds nonterminal occurrences to rules, resolving names
/// through the where-clause scope chain (innermost local rules first, then
/// enclosing alternatives' local rules, then global rules).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_ANALYSIS_ATTRIBUTECHECK_H
#define IPG_ANALYSIS_ATTRIBUTECHECK_H

#include "analysis/Completion.h"
#include "grammar/Grammar.h"
#include "support/Result.h"

#include <set>
#include <string_view>

namespace ipg {

/// Runs resolution + attribute checking over \p G (intervals must already
/// be completed). On success every alternative has a valid ExecOrder and
/// every nonterminal occurrence a valid Resolved rule id.
Error checkAttributes(Grammar &G);

/// def(A) of Section 3.2: the attributes defined in *every* alternative of
/// rule \p Id (the special attributes start/end/EOI are not included).
std::set<Symbol> ruleDefSet(const Grammar &G, RuleId Id);

/// A grammar that went through the full front-end pipeline.
struct LoadResult {
  Grammar G;
  CompletionStats Stats;
};

/// parse text -> complete intervals -> resolve + attribute-check.
Expected<LoadResult> loadGrammar(std::string_view Text);

} // namespace ipg

#endif // IPG_ANALYSIS_ATTRIBUTECHECK_H
