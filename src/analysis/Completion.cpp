//===- analysis/Completion.cpp --------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Completion.h"

#include "support/Casting.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

using namespace ipg;

namespace {

class Completer {
public:
  explicit Completer(Grammar &G) : G(G) {}

  Expected<CompletionStats> run() {
    for (size_t I = 0, E = G.numRules(); I != E; ++I) {
      Rule &R = G.rule(static_cast<RuleId>(I));
      for (Alternative &Alt : R.Alts)
        if (Error Err = completeAlternative(R, Alt))
          return Expected<CompletionStats>(std::move(Err));
    }
    return Stats;
  }

private:
  Grammar &G;
  CompletionStats Stats;

  void count(const Interval &Iv) {
    ++Stats.TotalIntervals;
    if (Iv.How == Interval::Form::Omitted)
      ++Stats.FullyImplicit;
    else if (Iv.How == Interval::Form::Length)
      ++Stats.LengthOnly;
  }

  /// Left endpoint for term \p TermIdx given the previous positional term.
  static ExprPtr leftEndpoint(int PrevPositional) {
    if (PrevPositional < 0)
      return NumExpr::create(0);
    return RefExpr::termEnd(static_cast<uint32_t>(PrevPositional));
  }

  /// Completes one interval in place. \p TermLen is the byte length for
  /// terminal strings, or -1 for nonterminals/blackboxes (right endpoint
  /// defaults to EOI).
  void completeInterval(Interval &Iv, int PrevPositional, int64_t TermLen) {
    count(Iv);
    switch (Iv.How) {
    case Interval::Form::Explicit:
      return;
    case Interval::Form::Length: {
      ExprPtr Lo = leftEndpoint(PrevPositional);
      Iv.Hi = BinaryExpr::create(BinOpKind::Add, Lo, Iv.Len);
      Iv.Lo = std::move(Lo);
      return;
    }
    case Interval::Form::Omitted: {
      ExprPtr Lo = leftEndpoint(PrevPositional);
      if (TermLen >= 0)
        Iv.Hi = BinaryExpr::create(BinOpKind::Add, Lo,
                                   NumExpr::create(TermLen));
      else
        Iv.Hi = RefExpr::eoi();
      Iv.Lo = std::move(Lo);
      return;
    }
    }
  }

  Error completeAlternative(const Rule &R, Alternative &Alt) {
    int PrevPositional = -1;
    for (size_t I = 0, E = Alt.Terms.size(); I != E; ++I) {
      Term &T = *Alt.Terms[I];
      switch (T.kind()) {
      case Term::Kind::Nonterminal:
        completeInterval(cast<NTTerm>(&T)->Iv, PrevPositional, -1);
        break;
      case Term::Kind::Terminal: {
        auto *S = cast<TerminalTerm>(&T);
        // Wildcards have no fixed length; like nonterminals, an omitted
        // right endpoint becomes EOI.
        completeInterval(S->Iv, PrevPositional,
                         S->Wildcard ? -1
                                     : static_cast<int64_t>(S->Bytes.size()));
        break;
      }
      case Term::Kind::Blackbox:
        completeInterval(cast<BlackboxTerm>(&T)->Iv, PrevPositional, -1);
        break;
      case Term::Kind::Array: {
        auto *A = cast<ArrayTerm>(&T);
        count(A->Iv);
        if (A->Iv.How != Interval::Form::Explicit)
          return Error::failure(
              "rule '" + std::string(G.interner().name(R.Name)) +
              "': array term requires an explicit interval");
        break;
      }
      case Term::Kind::Switch:
        for (SwitchChoice &C : cast<SwitchTerm>(&T)->Choices)
          completeInterval(C.Iv, PrevPositional, -1);
        break;
      case Term::Kind::AttrDef:
      case Term::Kind::Predicate:
        break;
      }
      if (isPositionalTerm(T))
        PrevPositional = static_cast<int>(I);
    }
    return Error::success();
  }
};

} // namespace

Expected<CompletionStats> ipg::completeIntervals(Grammar &G) {
  return Completer(G).run();
}
