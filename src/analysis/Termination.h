//===- analysis/Termination.h - IPG termination checking --------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static termination checking (paper Section 5):
///   1. build the nonterminal dependency graph,
///   2. enumerate its elementary cycles (Johnson's algorithm),
///   3. for each cycle check that the formula
///        el_0 = 0 /\ er_0 = EOI /\ ... /\ el_n = 0 /\ er_n = EOI
///      is unsatisfiable — i.e. the cycle cannot keep looping on the same
///      interval [0, EOI], so intervals strictly shrink and parsing
///      terminates (Theorem 5.1).
///
/// The extension for the special `end` attribute is implemented: when an
/// interval expression refers to the end of a nonterminal whose rule surely
/// consumes a byte, the conjunct `X.end > 0` is added, which is what lets
/// chunk-list rules like `Blocks -> Block Blocks[Block.end, EOI]` pass.
///
/// Z3 is replaced by the rational linear-arithmetic core in solver/ (see
/// docs/architecture.md, "Engineering substitutions", for the soundness
/// argument).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_ANALYSIS_TERMINATION_H
#define IPG_ANALYSIS_TERMINATION_H

#include "grammar/Grammar.h"

#include <cstddef>
#include <string>
#include <vector>

namespace ipg {

struct TerminationReport {
  bool Terminates = false;
  size_t NumCycles = 0;
  /// One description per cycle whose formula was (possibly) satisfiable.
  std::vector<std::string> FailingCycles;
};

/// Checks \p G (must be completed + attribute-checked).
TerminationReport checkTermination(const Grammar &G);

} // namespace ipg

#endif // IPG_ANALYSIS_TERMINATION_H
