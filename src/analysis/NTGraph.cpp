//===- analysis/NTGraph.cpp -----------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/NTGraph.h"

#include "support/Casting.h"

#include <cstddef>
#include <cstdint>
#include <utility>

using namespace ipg;

NTGraph ipg::buildNTGraph(const Grammar &G) {
  NTGraph Graph;
  Graph.NumNodes = G.numRules();
  Graph.Adj.resize(Graph.NumNodes);

  auto AddEdge = [&](RuleId From, RuleId To, const Interval &Iv,
                     const Alternative *OwnerAlt) {
    if (To == InvalidRuleId)
      return;
    NTEdge E;
    E.From = From;
    E.To = To;
    E.Lo = Iv.Lo;
    E.Hi = Iv.Hi;
    E.OwnerAlt = OwnerAlt;
    Graph.Adj[From].push_back(static_cast<uint32_t>(Graph.Edges.size()));
    Graph.Edges.push_back(std::move(E));
  };

  for (size_t I = 0, E = G.numRules(); I != E; ++I) {
    const Rule &R = G.rule(static_cast<RuleId>(I));
    for (const Alternative &Alt : R.Alts)
      for (const TermPtr &T : Alt.Terms) {
        switch (T->kind()) {
        case Term::Kind::Nonterminal: {
          const auto *N = cast<NTTerm>(T.get());
          AddEdge(R.Id, N->Resolved, N->Iv, &Alt);
          break;
        }
        case Term::Kind::Array: {
          const auto *A = cast<ArrayTerm>(T.get());
          AddEdge(R.Id, A->Resolved, A->Iv, &Alt);
          break;
        }
        case Term::Kind::Switch:
          for (const SwitchChoice &C : cast<SwitchTerm>(T.get())->Choices)
            AddEdge(R.Id, C.Resolved, C.Iv, &Alt);
          break;
        default:
          break;
        }
      }
  }
  return Graph;
}
