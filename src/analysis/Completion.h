//===- analysis/Completion.h - Implicit interval completion -----*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Auto-completion of implicit intervals (paper Section 3.4):
///
///   S -> "magic" A B[10]
/// becomes
///   S -> "magic"[0, 5] A[5, EOI] B[A.end, A.end + 10]
///
/// Scanning each alternative left to right, a missing left endpoint is "the
/// end of the last positional term" (0 for the first term), a missing right
/// endpoint is EOI for nonterminals and left + |bytes| for terminals, and a
/// single bracketed expression is a length (right = left + length).
///
/// "End of the last term" is encoded with the internal TermEnd(k) reference
/// rather than `A.end` so that repeated nonterminal names in one
/// alternative stay unambiguous; TermEnd of a terminal equals its right
/// endpoint, matching the paper's rule for terminals.
///
/// The pass also tallies the per-grammar interval counts reported in
/// Table 2 (total, fully implicit, length-only).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_ANALYSIS_COMPLETION_H
#define IPG_ANALYSIS_COMPLETION_H

#include "grammar/Grammar.h"
#include "support/Result.h"

#include <cstddef>

namespace ipg {

/// Table-2 statistics gathered while completing one grammar.
struct CompletionStats {
  size_t TotalIntervals = 0; ///< every interval position in the grammar
  size_t FullyImplicit = 0;  ///< written with no interval at all
  size_t LengthOnly = 0;     ///< written as [length]
};

/// Fills in every implicit interval in \p G. Fails when an array term's
/// interval is not explicit (element intervals depend on the loop variable,
/// so there is nothing sensible to infer).
Expected<CompletionStats> completeIntervals(Grammar &G);

} // namespace ipg

#endif // IPG_ANALYSIS_COMPLETION_H
