//===- analysis/Consumes.h - "Consumes a terminal" fixpoint -----*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The termination-checking extension of Section 5 adds `A.end > 0` to the
/// cycle formula when A's rule is guaranteed to consume at least one
/// terminal byte whenever it succeeds. This is the syntactic check: a least
/// fixpoint where a rule consumes iff every alternative contains a
/// non-empty terminal, a consuming nonterminal, or a switch whose arms all
/// consume. Arrays (which may iterate zero times), predicates, attribute
/// definitions, and blackboxes do not count.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_ANALYSIS_CONSUMES_H
#define IPG_ANALYSIS_CONSUMES_H

#include "grammar/Grammar.h"

#include <vector>

namespace ipg {

/// Indexed by RuleId: true when the rule surely touches >= 1 byte on
/// success.
std::vector<bool> computeConsumes(const Grammar &G);

/// True when a terminal term surely touches >= 1 byte on success: a
/// non-empty literal, or a wildcard whose interval is provably non-empty
/// (Hi - Lo <= 0 refuted by the linear core).
bool terminalSurelyConsumes(const TerminalTerm &T,
                            const StringInterner &Names);

} // namespace ipg

#endif // IPG_ANALYSIS_CONSUMES_H
