//===- analysis/AttributeCheck.cpp ----------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/AttributeCheck.h"

#include "frontend/Parser.h"
#include "support/Casting.h"

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

using namespace ipg;

namespace {

/// Names a local rule may need from its enclosing alternative(s): bare
/// attribute/loop-variable identifiers and sibling nonterminal names.
struct FreeRefs {
  std::set<Symbol> Bare;
  std::set<Symbol> NtNames;
};

/// Everything an alternative binds locally, precomputed once.
struct AltLocalInfo {
  std::set<Symbol> AttrDefs;  ///< {id=e} names
  std::set<Symbol> LoopVars;  ///< array loop variables
  std::set<Symbol> Produced;  ///< NT / blackbox / array-element names
};

AltLocalInfo altLocalInfo(const Alternative &Alt) {
  AltLocalInfo Info;
  for (const TermPtr &T : Alt.Terms) {
    switch (T->kind()) {
    case Term::Kind::AttrDef:
      Info.AttrDefs.insert(cast<AttrDefTerm>(T.get())->Name);
      break;
    case Term::Kind::Array: {
      const auto *A = cast<ArrayTerm>(T.get());
      Info.LoopVars.insert(A->LoopVar);
      Info.Produced.insert(A->Elem);
      break;
    }
    case Term::Kind::Nonterminal:
      Info.Produced.insert(cast<NTTerm>(T.get())->Name);
      break;
    case Term::Kind::Blackbox:
      Info.Produced.insert(cast<BlackboxTerm>(T.get())->Name);
      break;
    case Term::Kind::Switch:
    case Term::Kind::Terminal:
    case Term::Kind::Predicate:
      break;
    }
  }
  return Info;
}

class Checker {
public:
  explicit Checker(Grammar &G)
      : G(G), SymVal(G.intern("val")), SymStart(G.symStart()),
        SymEnd(G.symEnd()), SymEoi(G.symEoi()) {}

  Error run();

private:
  Grammar &G;
  Symbol SymVal, SymStart, SymEnd, SymEoi;
  std::vector<std::set<Symbol>> DefSets;
  std::unordered_map<RuleId, FreeRefs> FreeRefCache;
  std::set<RuleId> FreeRefInProgress;

  Error walkRule(Rule &R, std::vector<const Alternative *> &Scope);
  Error resolveAlt(const Rule &R, Alternative &Alt,
                   const std::vector<const Alternative *> &Scope);
  Error checkAltRefs(const Rule &R, Alternative &Alt,
                     const std::vector<const Alternative *> &Scope);
  Error checkExpr(const Rule &R, const Alternative &Alt,
                  const std::vector<const Alternative *> &Scope,
                  const Expr &E, std::set<Symbol> &BoundVars);
  Error buildExecOrder(const Rule &R, Alternative &Alt);

  RuleId resolveName(Symbol Name,
                     const std::vector<const Alternative *> &Scope) const;
  const FreeRefs &freeRefs(RuleId Id);

  std::string ruleName(const Rule &R) const {
    return std::string(G.interner().name(R.Name));
  }
  bool isSpecialAttr(Symbol S) const {
    return S == SymStart || S == SymEnd || S == SymEoi;
  }
};

} // namespace

std::set<Symbol> ipg::ruleDefSet(const Grammar &G, RuleId Id) {
  const Rule &R = G.rule(Id);
  std::set<Symbol> Defs;
  bool First = true;
  for (const Alternative &Alt : R.Alts) {
    std::set<Symbol> AltDefs = altLocalInfo(Alt).AttrDefs;
    if (First) {
      Defs = std::move(AltDefs);
      First = false;
      continue;
    }
    std::set<Symbol> Inter;
    for (Symbol S : Defs)
      if (AltDefs.count(S))
        Inter.insert(S);
    Defs = std::move(Inter);
  }
  return Defs;
}

RuleId Checker::resolveName(
    Symbol Name, const std::vector<const Alternative *> &Scope) const {
  for (auto It = Scope.rbegin(); It != Scope.rend(); ++It)
    for (RuleId L : (*It)->LocalRules)
      if (G.rule(L).Name == Name)
        return L;
  return G.findGlobal(Name);
}

Error Checker::resolveAlt(const Rule &R, Alternative &Alt,
                          const std::vector<const Alternative *> &Scope) {
  auto Resolve = [&](Symbol Name, RuleId &Out) {
    Out = resolveName(Name, Scope);
    if (Out == InvalidRuleId)
      return Error::failure("rule '" + ruleName(R) +
                            "': unknown nonterminal '" +
                            std::string(G.interner().name(Name)) + "'");
    return Error::success();
  };
  for (const TermPtr &T : Alt.Terms) {
    switch (T->kind()) {
    case Term::Kind::Nonterminal:
      if (Error E = Resolve(cast<NTTerm>(T.get())->Name,
                            cast<NTTerm>(T.get())->Resolved))
        return E;
      break;
    case Term::Kind::Array:
      if (Error E = Resolve(cast<ArrayTerm>(T.get())->Elem,
                            cast<ArrayTerm>(T.get())->Resolved))
        return E;
      break;
    case Term::Kind::Switch:
      for (SwitchChoice &C : cast<SwitchTerm>(T.get())->Choices)
        if (Error E = Resolve(C.NT, C.Resolved))
          return E;
      break;
    default:
      break;
    }
  }
  return Error::success();
}

const FreeRefs &Checker::freeRefs(RuleId Id) {
  auto It = FreeRefCache.find(Id);
  if (It != FreeRefCache.end())
    return It->second;
  static const FreeRefs Empty;
  if (FreeRefInProgress.count(Id))
    return Empty; // recursive local rule; under-approximate
  FreeRefInProgress.insert(Id);

  FreeRefs FR;
  const Rule &R = G.rule(Id);
  for (const Alternative &Alt : R.Alts) {
    AltLocalInfo Info = altLocalInfo(Alt);
    auto AddExprRefs = [&](const Expr &Root) {
      forEachExpr(Root, [&](const Expr &E) {
        const auto *Ref = dyn_cast<RefExpr>(&E);
        if (!Ref)
          return;
        switch (Ref->refKind()) {
        case RefKind::Attr:
          if (!Info.AttrDefs.count(Ref->attrName()) &&
              !Info.LoopVars.count(Ref->attrName()) &&
              !isSpecialAttr(Ref->attrName()))
            FR.Bare.insert(Ref->attrName());
          break;
        case RefKind::NtAttr:
        case RefKind::NtElemAttr:
          if (!Info.Produced.count(Ref->nt()))
            FR.NtNames.insert(Ref->nt());
          break;
        case RefKind::Eoi:
        case RefKind::TermEnd:
          break;
        }
      });
    };
    for (const TermPtr &T : Alt.Terms) {
      switch (T->kind()) {
      case Term::Kind::Nonterminal: {
        const auto *N = cast<NTTerm>(T.get());
        if (N->Iv.Lo)
          AddExprRefs(*N->Iv.Lo);
        if (N->Iv.Hi)
          AddExprRefs(*N->Iv.Hi);
        if (N->Resolved != InvalidRuleId && G.rule(N->Resolved).IsLocal) {
          const FreeRefs &Inner = freeRefs(N->Resolved);
          for (Symbol S : Inner.Bare)
            if (!Info.AttrDefs.count(S) && !Info.LoopVars.count(S))
              FR.Bare.insert(S);
          for (Symbol S : Inner.NtNames)
            if (!Info.Produced.count(S))
              FR.NtNames.insert(S);
        }
        break;
      }
      default: {
        forEachTermExpr(*T, [&](const Expr &E) {
          // Visit only Ref nodes; loop-variable filtering for arrays/exists
          // is approximated by Info.LoopVars above.
          const auto *Ref = dyn_cast<RefExpr>(&E);
          if (!Ref)
            return;
          if (Ref->refKind() == RefKind::Attr) {
            if (!Info.AttrDefs.count(Ref->attrName()) &&
                !Info.LoopVars.count(Ref->attrName()) &&
                !isSpecialAttr(Ref->attrName()))
              FR.Bare.insert(Ref->attrName());
          } else if (Ref->refKind() == RefKind::NtAttr ||
                     Ref->refKind() == RefKind::NtElemAttr) {
            if (!Info.Produced.count(Ref->nt()))
              FR.NtNames.insert(Ref->nt());
          }
        });
        // Nested local invocations from arrays / switches.
        if (const auto *A = dyn_cast<ArrayTerm>(T.get())) {
          if (A->Resolved != InvalidRuleId && G.rule(A->Resolved).IsLocal) {
            const FreeRefs &Inner = freeRefs(A->Resolved);
            for (Symbol S : Inner.Bare)
              if (!Info.AttrDefs.count(S) && !Info.LoopVars.count(S))
                FR.Bare.insert(S);
            for (Symbol S : Inner.NtNames)
              if (!Info.Produced.count(S))
                FR.NtNames.insert(S);
          }
        } else if (const auto *Sw = dyn_cast<SwitchTerm>(T.get())) {
          for (const SwitchChoice &C : Sw->Choices)
            if (C.Resolved != InvalidRuleId && G.rule(C.Resolved).IsLocal) {
              const FreeRefs &Inner = freeRefs(C.Resolved);
              for (Symbol S : Inner.Bare)
                if (!Info.AttrDefs.count(S) && !Info.LoopVars.count(S))
                  FR.Bare.insert(S);
              for (Symbol S : Inner.NtNames)
                if (!Info.Produced.count(S))
                  FR.NtNames.insert(S);
            }
        }
        break;
      }
      }
    }
  }

  FreeRefInProgress.erase(Id);
  return FreeRefCache.emplace(Id, std::move(FR)).first->second;
}

Error Checker::checkExpr(const Rule &R, const Alternative &Alt,
                         const std::vector<const Alternative *> &Scope,
                         const Expr &E, std::set<Symbol> &BoundVars) {
  auto Err = [&](const std::string &Msg) {
    return Error::failure("rule '" + ruleName(R) + "': " + Msg);
  };
  AltLocalInfo Info = altLocalInfo(Alt);

  switch (E.kind()) {
  case Expr::Kind::Num:
    return Error::success();
  case Expr::Kind::Binary: {
    const auto &B = *cast<BinaryExpr>(&E);
    if (Error Er = checkExpr(R, Alt, Scope, *B.lhs(), BoundVars))
      return Er;
    return checkExpr(R, Alt, Scope, *B.rhs(), BoundVars);
  }
  case Expr::Kind::Cond: {
    const auto &C = *cast<CondExpr>(&E);
    if (Error Er = checkExpr(R, Alt, Scope, *C.cond(), BoundVars))
      return Er;
    if (Error Er = checkExpr(R, Alt, Scope, *C.thenExpr(), BoundVars))
      return Er;
    return checkExpr(R, Alt, Scope, *C.elseExpr(), BoundVars);
  }
  case Expr::Kind::Exists: {
    const auto &X = *cast<ExistsExpr>(&E);
    bool Inserted = BoundVars.insert(X.loopVar()).second;
    Error Er = checkExpr(R, Alt, Scope, *X.cond(), BoundVars);
    if (!Er)
      Er = checkExpr(R, Alt, Scope, *X.thenExpr(), BoundVars);
    if (!Er)
      Er = checkExpr(R, Alt, Scope, *X.elseExpr(), BoundVars);
    if (Inserted)
      BoundVars.erase(X.loopVar());
    return Er;
  }
  case Expr::Kind::Read: {
    const auto &Rd = *cast<ReadExpr>(&E);
    if (Error Er = checkExpr(R, Alt, Scope, *Rd.lo(), BoundVars))
      return Er;
    if (Rd.hi())
      return checkExpr(R, Alt, Scope, *Rd.hi(), BoundVars);
    return Error::success();
  }
  case Expr::Kind::Ref:
    break;
  }

  const auto &Ref = *cast<RefExpr>(&E);
  switch (Ref.refKind()) {
  case RefKind::Eoi:
    return Error::success();
  case RefKind::TermEnd:
    if (Ref.termIndex() >= Alt.Terms.size())
      return Err("internal term-end reference out of range");
    return Error::success();
  case RefKind::Attr: {
    Symbol Id = Ref.attrName();
    // In the current alternative, loop variables are visible only inside
    // their binding construct (tracked precisely via BoundVars). In
    // enclosing lexical alternatives the binding site cannot be tracked
    // statically, so any outer loop variable is accepted (the runtime
    // fails cleanly if it is unbound when evaluated).
    if (BoundVars.count(Id) || isSpecialAttr(Id))
      return Error::success();
    if (Info.AttrDefs.count(Id))
      return Error::success();
    for (const Alternative *Outer : Scope) {
      AltLocalInfo OuterInfo = altLocalInfo(*Outer);
      if (OuterInfo.AttrDefs.count(Id) || OuterInfo.LoopVars.count(Id))
        return Error::success();
    }
    return Err("reference to undefined attribute '" +
               std::string(G.interner().name(Id)) + "'");
  }
  case RefKind::NtAttr:
  case RefKind::NtElemAttr: {
    Symbol NT = Ref.nt();
    Symbol Attr = Ref.attrName();
    if (Ref.index()) {
      if (Error Er = checkExpr(R, Alt, Scope, *Ref.index(), BoundVars))
        return Er;
    }

    // Look for a producing sibling term in this alternative, then in the
    // enclosing lexical alternatives (for where-rules).
    std::vector<const Alternative *> Chain(Scope.begin(), Scope.end());
    Chain.push_back(&Alt);
    for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
      for (const TermPtr &T : (*It)->Terms) {
        if (const auto *N = dyn_cast<NTTerm>(T.get())) {
          if (N->Name != NT)
            continue;
          if (Ref.refKind() == RefKind::NtElemAttr)
            return Err("'" + std::string(G.interner().name(NT)) +
                       "' is not an array; use '" +
                       std::string(G.interner().name(NT)) + ".attr'");
          if (Attr == SymStart || Attr == SymEnd)
            return Error::success();
          if (N->Resolved != InvalidRuleId &&
              ruleDefSet(G, N->Resolved).count(Attr))
            return Error::success();
          return Err("attribute '" + std::string(G.interner().name(Attr)) +
                     "' is not defined by every alternative of '" +
                     std::string(G.interner().name(NT)) + "'");
        }
        if (const auto *B = dyn_cast<BlackboxTerm>(T.get())) {
          if (B->Name != NT)
            continue;
          if (Attr == SymVal || Attr == SymStart || Attr == SymEnd)
            return Error::success();
          return Err("blackbox '" + std::string(G.interner().name(NT)) +
                     "' only defines val/start/end");
        }
        if (const auto *A = dyn_cast<ArrayTerm>(T.get())) {
          if (A->Elem != NT)
            continue;
          if (Ref.refKind() == RefKind::NtAttr)
            return Err("'" + std::string(G.interner().name(NT)) +
                       "' is an array; use '" +
                       std::string(G.interner().name(NT)) + "(e).attr'");
          if (Attr == SymStart || Attr == SymEnd)
            return Error::success();
          if (A->Resolved != InvalidRuleId &&
              ruleDefSet(G, A->Resolved).count(Attr))
            return Error::success();
          return Err("attribute '" + std::string(G.interner().name(Attr)) +
                     "' is not defined by every alternative of '" +
                     std::string(G.interner().name(NT)) + "'");
        }
      }
    }
    return Err("no sibling term named '" +
               std::string(G.interner().name(NT)) + "' in scope");
  }
  }
  return Error::success();
}

Error Checker::checkAltRefs(const Rule &R, Alternative &Alt,
                            const std::vector<const Alternative *> &Scope) {
  // Duplicate attribute definitions are rejected up front.
  std::set<Symbol> Seen;
  for (const TermPtr &T : Alt.Terms)
    if (const auto *D = dyn_cast<AttrDefTerm>(T.get()))
      if (!Seen.insert(D->Name).second)
        return Error::failure("rule '" + ruleName(R) +
                              "': attribute '" +
                              std::string(G.interner().name(D->Name)) +
                              "' defined twice in one alternative");

  for (const TermPtr &T : Alt.Terms) {
    std::set<Symbol> Bound;
    if (const auto *A = dyn_cast<ArrayTerm>(T.get())) {
      // From/To may not use the loop variable; el/er may.
      if (Error E = checkExpr(R, Alt, Scope, *A->From, Bound))
        return E;
      if (Error E = checkExpr(R, Alt, Scope, *A->To, Bound))
        return E;
      Bound.insert(A->LoopVar);
      if (A->Iv.Lo)
        if (Error E = checkExpr(R, Alt, Scope, *A->Iv.Lo, Bound))
          return E;
      if (A->Iv.Hi)
        if (Error E = checkExpr(R, Alt, Scope, *A->Iv.Hi, Bound))
          return E;
      continue;
    }
    Error Err = Error::success();
    // Walk expression roots of the remaining term kinds.
    switch (T->kind()) {
    case Term::Kind::Nonterminal: {
      const auto *N = cast<NTTerm>(T.get());
      if (N->Iv.Lo)
        Err = checkExpr(R, Alt, Scope, *N->Iv.Lo, Bound);
      if (!Err && N->Iv.Hi)
        Err = checkExpr(R, Alt, Scope, *N->Iv.Hi, Bound);
      break;
    }
    case Term::Kind::Terminal: {
      const auto *S = cast<TerminalTerm>(T.get());
      if (S->Iv.Lo)
        Err = checkExpr(R, Alt, Scope, *S->Iv.Lo, Bound);
      if (!Err && S->Iv.Hi)
        Err = checkExpr(R, Alt, Scope, *S->Iv.Hi, Bound);
      break;
    }
    case Term::Kind::AttrDef:
      Err = checkExpr(R, Alt, Scope, *cast<AttrDefTerm>(T.get())->Value,
                      Bound);
      break;
    case Term::Kind::Predicate:
      Err = checkExpr(R, Alt, Scope, *cast<PredicateTerm>(T.get())->Cond,
                      Bound);
      break;
    case Term::Kind::Switch:
      for (const SwitchChoice &C : cast<SwitchTerm>(T.get())->Choices) {
        if (C.Cond)
          Err = checkExpr(R, Alt, Scope, *C.Cond, Bound);
        if (!Err && C.Iv.Lo)
          Err = checkExpr(R, Alt, Scope, *C.Iv.Lo, Bound);
        if (!Err && C.Iv.Hi)
          Err = checkExpr(R, Alt, Scope, *C.Iv.Hi, Bound);
        if (Err)
          break;
      }
      break;
    case Term::Kind::Blackbox: {
      const auto *B = cast<BlackboxTerm>(T.get());
      if (B->Iv.Lo)
        Err = checkExpr(R, Alt, Scope, *B->Iv.Lo, Bound);
      if (!Err && B->Iv.Hi)
        Err = checkExpr(R, Alt, Scope, *B->Iv.Hi, Bound);
      break;
    }
    case Term::Kind::Array:
      break; // handled above
    }
    if (Err)
      return Err;
  }
  return Error::success();
}

Error Checker::buildExecOrder(const Rule &R, Alternative &Alt) {
  size_t N = Alt.Terms.size();
  std::vector<std::set<uint32_t>> DependsOn(N);

  auto AddBareEdges = [&](uint32_t I, Symbol Id) {
    for (uint32_t J = 0; J != N; ++J) {
      if (J == I)
        continue;
      if (const auto *D = dyn_cast<AttrDefTerm>(Alt.Terms[J].get()))
        if (D->Name == Id)
          DependsOn[I].insert(J);
    }
  };
  auto AddNtEdges = [&](uint32_t I, Symbol NT) {
    for (uint32_t J = 0; J != N; ++J) {
      if (J == I)
        continue;
      const Term *T = Alt.Terms[J].get();
      Symbol Produced = InvalidSymbol;
      if (const auto *NTm = dyn_cast<NTTerm>(T))
        Produced = NTm->Name;
      else if (const auto *B = dyn_cast<BlackboxTerm>(T))
        Produced = B->Name;
      else if (const auto *A = dyn_cast<ArrayTerm>(T))
        Produced = A->Elem;
      if (Produced == NT)
        DependsOn[I].insert(J);
    }
  };

  for (uint32_t I = 0; I != N; ++I) {
    const Term &T = *Alt.Terms[I];
    // Loop variables bound by this term never create edges.
    std::set<Symbol> Bound;
    if (const auto *A = dyn_cast<ArrayTerm>(&T))
      Bound.insert(A->LoopVar);

    auto VisitRoot = [&](const Expr &Root) {
      std::set<Symbol> Inner = Bound;
      forEachExpr(Root, [&](const Expr &E) {
        if (const auto *X = dyn_cast<ExistsExpr>(&E))
          Inner.insert(X->loopVar());
        const auto *Ref = dyn_cast<RefExpr>(&E);
        if (!Ref)
          return;
        switch (Ref->refKind()) {
        case RefKind::Attr:
          if (!Inner.count(Ref->attrName()) &&
              !isSpecialAttr(Ref->attrName()))
            AddBareEdges(I, Ref->attrName());
          break;
        case RefKind::NtAttr:
        case RefKind::NtElemAttr:
          AddNtEdges(I, Ref->nt());
          break;
        case RefKind::TermEnd:
          if (Ref->termIndex() != I)
            DependsOn[I].insert(Ref->termIndex());
          break;
        case RefKind::Eoi:
          break;
        }
      });
    };
    // Visit each expression root of the term.
    switch (T.kind()) {
    case Term::Kind::Nonterminal: {
      const auto &NTm = *cast<NTTerm>(&T);
      VisitRoot(*NTm.Iv.Lo);
      VisitRoot(*NTm.Iv.Hi);
      if (NTm.Resolved != InvalidRuleId && G.rule(NTm.Resolved).IsLocal) {
        const FreeRefs &FR = freeRefs(NTm.Resolved);
        for (Symbol S : FR.Bare)
          AddBareEdges(I, S);
        for (Symbol S : FR.NtNames)
          AddNtEdges(I, S);
      }
      break;
    }
    case Term::Kind::Terminal: {
      const auto &S = *cast<TerminalTerm>(&T);
      VisitRoot(*S.Iv.Lo);
      VisitRoot(*S.Iv.Hi);
      break;
    }
    case Term::Kind::AttrDef:
      VisitRoot(*cast<AttrDefTerm>(&T)->Value);
      break;
    case Term::Kind::Predicate:
      VisitRoot(*cast<PredicateTerm>(&T)->Cond);
      break;
    case Term::Kind::Array: {
      const auto &A = *cast<ArrayTerm>(&T);
      VisitRoot(*A.From);
      VisitRoot(*A.To);
      VisitRoot(*A.Iv.Lo);
      VisitRoot(*A.Iv.Hi);
      if (A.Resolved != InvalidRuleId && G.rule(A.Resolved).IsLocal) {
        const FreeRefs &FR = freeRefs(A.Resolved);
        for (Symbol S : FR.Bare)
          AddBareEdges(I, S);
        for (Symbol S : FR.NtNames)
          AddNtEdges(I, S);
      }
      break;
    }
    case Term::Kind::Switch:
      for (const SwitchChoice &C : cast<SwitchTerm>(&T)->Choices) {
        if (C.Cond)
          VisitRoot(*C.Cond);
        VisitRoot(*C.Iv.Lo);
        VisitRoot(*C.Iv.Hi);
        if (C.Resolved != InvalidRuleId && G.rule(C.Resolved).IsLocal) {
          const FreeRefs &FR = freeRefs(C.Resolved);
          for (Symbol S : FR.Bare)
            AddBareEdges(I, S);
          for (Symbol S : FR.NtNames)
            AddNtEdges(I, S);
        }
      }
      break;
    case Term::Kind::Blackbox: {
      const auto &B = *cast<BlackboxTerm>(&T);
      VisitRoot(*B.Iv.Lo);
      VisitRoot(*B.Iv.Hi);
      break;
    }
    }
  }

  // Kahn's algorithm; smallest source index first keeps the order stable.
  std::vector<uint32_t> Unmet(N, 0);
  std::vector<std::vector<uint32_t>> Dependents(N);
  for (uint32_t I = 0; I != N; ++I) {
    Unmet[I] = static_cast<uint32_t>(DependsOn[I].size());
    for (uint32_t J : DependsOn[I])
      Dependents[J].push_back(I);
  }
  std::set<uint32_t> Ready;
  for (uint32_t I = 0; I != N; ++I)
    if (Unmet[I] == 0)
      Ready.insert(I);
  Alt.ExecOrder.clear();
  while (!Ready.empty()) {
    uint32_t I = *Ready.begin();
    Ready.erase(Ready.begin());
    Alt.ExecOrder.push_back(I);
    for (uint32_t Dep : Dependents[I])
      if (--Unmet[Dep] == 0)
        Ready.insert(Dep);
  }
  if (Alt.ExecOrder.size() != N)
    return Error::failure("rule '" + ruleName(R) +
                          "': circular attribute dependencies in an "
                          "alternative");
  return Error::success();
}

Error Checker::walkRule(Rule &R, std::vector<const Alternative *> &Scope) {
  for (Alternative &Alt : R.Alts) {
    // The alternative's own where-block is in scope for its terms (e.g.
    // `S -> D[...] where { D -> ... }` binds D locally, shadowing any
    // global D).
    Scope.push_back(&Alt);
    Error E = resolveAlt(R, Alt, Scope);
    for (RuleId L : Alt.LocalRules) {
      if (E)
        break;
      E = walkRule(G.rule(L), Scope);
    }
    Scope.pop_back();
    if (E)
      return E;
    if (Error E2 = checkAltRefs(R, Alt, Scope))
      return E2;
    if (Error E2 = buildExecOrder(R, Alt))
      return E2;
  }
  return Error::success();
}

Error Checker::run() {
  std::vector<const Alternative *> Scope;
  for (size_t I = 0, E = G.numRules(); I != E; ++I) {
    Rule &R = G.rule(static_cast<RuleId>(I));
    if (R.IsLocal)
      continue; // visited through the owning alternative
    if (Error Err = walkRule(R, Scope))
      return Err;
  }
  return Error::success();
}

Error ipg::checkAttributes(Grammar &G) { return Checker(G).run(); }

Expected<LoadResult> ipg::loadGrammar(std::string_view Text) {
  auto G = parseGrammarText(Text);
  if (!G)
    return Expected<LoadResult>(G.takeError());
  auto Stats = completeIntervals(*G);
  if (!Stats)
    return Expected<LoadResult>(Stats.takeError());
  if (Error E = checkAttributes(*G))
    return Expected<LoadResult>(std::move(E));
  LoadResult Res{std::move(*G), *Stats};
  return Expected<LoadResult>(std::move(Res));
}
