//===- analysis/Termination.cpp -------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Termination.h"

#include "analysis/Consumes.h"
#include "analysis/Cycles.h"
#include "analysis/NTGraph.h"
#include "expr/Linear.h"
#include "solver/LinearSystem.h"
#include "support/Casting.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

using namespace ipg;

namespace {

/// Applies the `X.end > 0` extension: for every reference in \p E to the
/// end of a sibling nonterminal (by name or via the internal TermEnd form)
/// whose rule surely consumes input, emit atom > 0 into \p Sys.
void addEndPositivity(const Expr &E, const Alternative &OwnerAlt,
                      const Grammar &G, const std::vector<bool> &Consumes,
                      AtomTable &Atoms, const std::string &Prefix,
                      LinearSystem &Sys) {
  forEachExpr(E, [&](const Expr &Sub) {
    const auto *Ref = dyn_cast<RefExpr>(&Sub);
    if (!Ref)
      return;

    // Find the term the end-reference points at: a sibling nonterminal (by
    // name) or any positional term (by index, for completed intervals).
    const Term *Producer = nullptr;
    if (Ref->refKind() == RefKind::NtAttr &&
        Ref->attrName() == G.symEnd()) {
      for (const TermPtr &T : OwnerAlt.Terms)
        if (const auto *N = dyn_cast<NTTerm>(T.get()))
          if (N->Name == Ref->nt())
            Producer = N;
    } else if (Ref->refKind() == RefKind::TermEnd) {
      if (Ref->termIndex() < OwnerAlt.Terms.size())
        Producer = OwnerAlt.Terms[Ref->termIndex()].get();
    } else {
      return;
    }
    if (!Producer)
      return;
    bool SurelyPositive = false;
    if (const auto *N = dyn_cast<NTTerm>(Producer))
      SurelyPositive = N->Resolved != InvalidRuleId && Consumes[N->Resolved];
    else if (const auto *S = dyn_cast<TerminalTerm>(Producer))
      SurelyPositive = terminalSurelyConsumes(*S, G.interner());
    if (!SurelyPositive)
      return;
    // atom > 0, i.e. -atom < 0.
    uint32_t A = Atoms.atom(Prefix + "#" + Sub.str(G.interner()));
    Sys.addLt(LinExpr::atom(A).scaled(Rational(-1)));
  });
}

} // namespace

TerminationReport ipg::checkTermination(const Grammar &G) {
  TerminationReport Report;
  NTGraph Graph = buildNTGraph(G);
  std::vector<bool> Consumes = computeConsumes(G);
  auto Cycles = elementaryCycles(Graph);
  Report.NumCycles = Cycles.size();

  for (const auto &Cycle : Cycles) {
    AtomTable Atoms;
    LinearSystem Sys;
    uint32_t EoiAtom = Atoms.atom("EOI");
    // EOI >= 0 (input lengths are non-negative): -EOI <= 0.
    Sys.addLe(LinExpr::atom(EoiAtom).scaled(Rational(-1)));

    for (size_t K = 0; K < Cycle.size(); ++K) {
      const NTEdge &E = Graph.Edges[Cycle[K]];
      std::string Prefix = "e" + std::to_string(K);
      // el_k = 0
      if (E.Lo)
        Sys.addEq(linearize(*E.Lo, Atoms, Prefix, G.interner()));
      // er_k = EOI  =>  er_k - EOI = 0
      if (E.Hi)
        Sys.addEq(linearize(*E.Hi, Atoms, Prefix, G.interner()) -
                  LinExpr::atom(EoiAtom));
      if (E.OwnerAlt) {
        if (E.Lo)
          addEndPositivity(*E.Lo, *E.OwnerAlt, G, Consumes, Atoms, Prefix,
                           Sys);
        if (E.Hi)
          addEndPositivity(*E.Hi, *E.OwnerAlt, G, Consumes, Atoms, Prefix,
                           Sys);
      }
    }

    if (Sys.check() == LinearSystem::Result::MaybeSat) {
      std::string Desc;
      for (uint32_t EI : Cycle) {
        const NTEdge &E = Graph.Edges[EI];
        if (!Desc.empty())
          Desc += " -> ";
        Desc += std::string(G.interner().name(G.rule(E.From).Name));
      }
      if (!Cycle.empty())
        Desc += " -> " + std::string(G.interner().name(
                             G.rule(Graph.Edges[Cycle.front()].From).Name));
      Report.FailingCycles.push_back(
          "cycle may keep interval [0, EOI]: " + Desc);
    }
  }

  Report.Terminates = Report.FailingCycles.empty();
  return Report;
}
