//===- service/ParseService.cpp -------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/ParseService.h"

#include "codegen/GenEngine.h"
#include "formats/FormatRegistry.h"
#include "runtime/Interp.h"
#include "vm/BytecodeVM.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

using namespace ipg;

//===----------------------------------------------------------------------===//
// ReturnSlot: consumer -> worker store channel
//===----------------------------------------------------------------------===//

namespace ipg::detail {

/// A small mutex-protected mailbox of stores coming home from destroyed
/// ParseResults. The mutex is only ever taken on the consumer's
/// destruction path and at the worker's loop top — never inside a parse.
/// Stores here are UNBOUND (detach() severed their recycler), so any
/// thread may destroy them.
struct ReturnSlot {
  static constexpr size_t Cap = 4;

  std::mutex M;
  TreeStore *Stores[Cap];
  size_t N = 0;
  bool Open = true;

  /// Called by ParseResult destructors (any thread). Full or closed:
  /// the store simply dies — correctness never depends on recycling.
  void give(TreeStore *S) {
    {
      std::lock_guard<std::mutex> L(M);
      if (Open && N < Cap) {
        Stores[N++] = S;
        return;
      }
    }
    TreeStore::destroy(S);
  }

  /// Called by the owning worker only.
  TreeStore *take() {
    std::lock_guard<std::mutex> L(M);
    return N ? Stores[--N] : nullptr;
  }

  /// Worker shutdown: refuse future gives, drop what is parked.
  void close() {
    TreeStore *Dead[Cap];
    size_t NDead;
    {
      std::lock_guard<std::mutex> L(M);
      Open = false;
      NDead = N;
      for (size_t I = 0; I < N; ++I)
        Dead[I] = Stores[I];
      N = 0;
    }
    for (size_t I = 0; I < NDead; ++I)
      TreeStore::destroy(Dead[I]);
  }
};

} // namespace ipg::detail

ParseResult::~ParseResult() {
  // Route the store back to the worker that built it; without a slot
  // (failed parse, moved-from result) the FrozenTree destructor frees it.
  if (Tree && Slot)
    Slot->give(Tree.releaseStore());
}

//===----------------------------------------------------------------------===//
// ParseService
//===----------------------------------------------------------------------===//

namespace {

struct Job {
  ParseRequest Req;
  SubmitOptions SOpts;
  std::promise<ParseResult> Promise;
  std::chrono::steady_clock::time_point Submitted;
};

/// Everything one format needs, loaded once at create() and shared
/// read-only by every worker.
struct FormatCtx {
  std::string Name;
  std::shared_ptr<LoadResult> Load;
  std::shared_ptr<BlackboxRegistry> Blackboxes; ///< interp mode only
  std::shared_ptr<GenModule> Module;            ///< generated mode only
};

} // namespace

struct ParseService::Impl {
  ParseServiceOptions Opts;
  std::vector<FormatCtx> Formats;

  std::mutex QM;
  std::condition_variable QCV;
  std::deque<Job> Queue;
  bool Stopping = false;

  std::vector<std::shared_ptr<detail::ReturnSlot>> Slots;
  std::vector<std::thread> Threads;

  int formatIndex(const std::string &Name) const {
    for (size_t I = 0; I < Formats.size(); ++I)
      if (Formats[I].Name == Name)
        return static_cast<int>(I);
    return -1;
  }

  void workerMain(unsigned Idx);
  void process(Job &J, std::vector<std::unique_ptr<Engine>> &Engines,
               detail::ReturnSlot &Slot,
               const std::shared_ptr<detail::ReturnSlot> &SlotRef);
};

void ParseService::Impl::workerMain(unsigned Idx) {
  std::shared_ptr<detail::ReturnSlot> Slot = Slots[Idx];
  // One engine per format, built lazily ON THIS THREAD so every store,
  // recycler, and memo table it ever touches belongs here.
  std::vector<std::unique_ptr<Engine>> Engines(Formats.size());

  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> L(QM);
      QCV.wait(L, [&] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        break; // Stopping, and all work is done
      J = std::move(Queue.front());
      Queue.pop_front();
    }
    process(J, Engines, *Slot, Slot);
  }

  // After close() a late ParseResult destruction frees its own store;
  // engine destructors then reclaim whatever is still parked in them.
  Slot->close();
}

void ParseService::Impl::process(
    Job &J, std::vector<std::unique_ptr<Engine>> &Engines,
    detail::ReturnSlot &Slot,
    const std::shared_ptr<detail::ReturnSlot> &SlotRef) {
  ParseResult R;
  R.Format = J.Req.Format;
  R.Input = J.Req.Input;

  int FI = formatIndex(J.Req.Format);
  if (FI < 0 || !R.Input) {
    R.Err = FI < 0 ? "format '" + J.Req.Format + "' not configured"
                   : "null input source";
  } else {
    const FormatCtx &FC = Formats[FI];
    std::unique_ptr<Engine> &Eng = Engines[FI];
    if (!Eng) {
      if (Opts.Mode == EngineKind::Generated)
        Eng = std::make_unique<GenEngine>(FC.Module, FC.Load->G);
      else if (Opts.Mode == EngineKind::Vm)
        Eng = std::make_unique<BytecodeVM>(FC.Load->G, FC.Blackboxes.get(),
                                           Opts.Engine);
      else
        Eng = std::make_unique<Interp>(FC.Load->G, FC.Blackboxes.get(),
                                       Opts.Engine);
    }

    // Adopt one returned store before parsing: the steady-state cycle is
    // parse -> detach -> consumer destroys -> give -> adopt -> parse,
    // with zero heap allocation on this (the parse) side. Stores are
    // format-agnostic scratch, so any engine of this worker may reuse
    // one; an engine with a store already parked declines.
    if (TreeStore *S = Slot.take())
      if (!Eng->adoptStore(S))
        TreeStore::destroy(S);

    bool DeadlineArmed = false;
    if (J.SOpts.hasDeadline() && !(DeadlineArmed = Eng->setDeadline(
                                       J.SOpts.Deadline))) {
      R.Err = std::string("engine '") + engineKindName(Opts.Mode) +
              "' does not support deadlines";
    } else {
      Expected<TreePtr> T = Eng->parse(R.Input->span());
      R.Stats = Eng->stats();
      if (DeadlineArmed)
        Eng->clearDeadline();
      if (T) {
        R.Tree = (*T).detach(); // severs engine-thread affinity
        R.Slot = SlotRef;
      } else {
        R.Err = T.message();
      }
    }
  }

  R.LatencyUs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - J.Submitted)
          .count());
  J.Promise.set_value(std::move(R));
}

ParseService::ParseService() : I(new Impl) {}

Expected<std::unique_ptr<ParseService>>
ParseService::create(const std::vector<std::string> &Formats,
                     const ParseServiceOptions &Opts) {
  using Ret = Expected<std::unique_ptr<ParseService>>;
  std::unique_ptr<ParseService> Svc(new ParseService());
  // Same limitation makeEngine enforces: compiled parsers carry
  // Strict-mode control flow only.
  if (Opts.Mode == EngineKind::Generated &&
      Opts.Engine.Recovery == RecoveryPolicy::Salvage)
    return Ret::failure("generated parsers do not support "
                        "RecoveryPolicy::Salvage; use interp or vm mode");
  Impl &I = *Svc->I;
  I.Opts = Opts;
  if (I.Opts.Workers == 0) {
    unsigned HW = std::thread::hardware_concurrency();
    I.Opts.Workers = HW ? HW : 1;
  }

  // Load (and for generated mode, compile) everything BEFORE any thread
  // starts: a failure here returns an error, not a half-started pool.
  for (const std::string &Name : Formats) {
    if (I.formatIndex(Name) >= 0)
      continue; // tolerate duplicates
    const formats::FormatInfo *Info = nullptr;
    for (const formats::FormatInfo &F : formats::allFormats())
      if (F.Name == Name)
        Info = &F;
    if (!Info)
      return Ret::failure("unknown format '" + Name + "'");

    FormatCtx FC;
    FC.Name = Name;
    Expected<LoadResult> Load = formats::loadFormatGrammar(Name);
    if (!Load)
      return Ret::failure("loading '" + Name + "': " + Load.message());
    FC.Load = std::make_shared<LoadResult>(std::move(*Load));

    if (Opts.Mode == EngineKind::Generated) {
      Expected<std::shared_ptr<GenModule>> M = GenModule::compile(
          FC.Load->G, Opts.Engine, formats::genModuleConfig(Name));
      if (!M)
        return Ret::failure("compiling '" + Name + "': " + M.message());
      FC.Module = std::move(*M);
    } else if (Info->NeedsBlackbox) {
      FC.Blackboxes =
          std::make_shared<BlackboxRegistry>(formats::standardBlackboxes());
    }
    I.Formats.push_back(std::move(FC));
  }

  I.Slots.reserve(I.Opts.Workers);
  I.Threads.reserve(I.Opts.Workers);
  for (unsigned W = 0; W < I.Opts.Workers; ++W)
    I.Slots.push_back(std::make_shared<detail::ReturnSlot>());
  Impl *IP = &I;
  for (unsigned W = 0; W < I.Opts.Workers; ++W)
    I.Threads.emplace_back([IP, W] { IP->workerMain(W); });
  return Ret(std::move(Svc));
}

ParseService::~ParseService() {
  {
    std::lock_guard<std::mutex> L(I->QM);
    I->Stopping = true;
  }
  I->QCV.notify_all();
  for (std::thread &T : I->Threads)
    T.join();
}

std::future<ParseResult> ParseService::submit(ParseRequest Request) {
  return submit(std::move(Request), SubmitOptions());
}

std::future<ParseResult> ParseService::submit(ParseRequest Request,
                                              const SubmitOptions &Options) {
  Job J;
  J.Req = std::move(Request);
  J.SOpts = Options;
  J.Submitted = std::chrono::steady_clock::now();
  std::future<ParseResult> F = J.Promise.get_future();

  // Fail fast (no worker round-trip) for requests that can never parse.
  std::string Early;
  if (I->formatIndex(J.Req.Format) < 0)
    Early = "format '" + J.Req.Format + "' not configured";
  else if (!J.Req.Input)
    Early = "null input source";

  {
    std::lock_guard<std::mutex> L(I->QM);
    if (I->Stopping)
      Early = "service is shutting down";
    if (Early.empty()) {
      I->Queue.push_back(std::move(J));
    }
  }
  if (!Early.empty()) {
    ParseResult R;
    R.Format = J.Req.Format;
    R.Err = Early;
    J.Promise.set_value(std::move(R));
    return F;
  }
  I->QCV.notify_one();
  return F;
}

std::vector<std::future<ParseResult>>
ParseService::submitBatch(std::vector<ParseRequest> Requests) {
  std::vector<std::future<ParseResult>> Futures;
  Futures.reserve(Requests.size());
  auto Now = std::chrono::steady_clock::now();

  std::vector<Job> Jobs;
  Jobs.reserve(Requests.size());
  for (ParseRequest &R : Requests) {
    Job J;
    J.Req = std::move(R);
    J.Submitted = Now;
    Futures.push_back(J.Promise.get_future());
    Jobs.push_back(std::move(J));
  }

  std::vector<Job> Rejected;
  {
    std::lock_guard<std::mutex> L(I->QM);
    for (Job &J : Jobs) {
      if (I->Stopping || I->formatIndex(J.Req.Format) < 0 || !J.Req.Input)
        Rejected.push_back(std::move(J));
      else
        I->Queue.push_back(std::move(J));
    }
  }
  I->QCV.notify_all();

  for (Job &J : Rejected) {
    ParseResult R;
    R.Format = J.Req.Format;
    R.Err = I->formatIndex(J.Req.Format) < 0
                ? "format '" + J.Req.Format + "' not configured"
                : (!J.Req.Input ? "null input source"
                                : "service is shutting down");
    J.Promise.set_value(std::move(R));
  }
  return Futures;
}

unsigned ParseService::workers() const { return I->Opts.Workers; }
EngineKind ParseService::mode() const { return I->Opts.Mode; }
