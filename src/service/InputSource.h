//===- service/InputSource.h - owned or mapped parse input ------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The input half of a ParseRequest: a stable byte buffer the parse (and
/// the resulting tree, whose ordinary leaves alias these bytes) can refer
/// to for as long as anyone holds a reference. Two flavors:
///
///  - fromBytes: the source owns a std::vector (synthesized corpora,
///    network payloads, test inputs);
///  - mapFile: a read-only mmap of a file, falling back to an owned read
///    when mapping is unavailable. Mapping is released on destruction.
///
/// Sources are handed around as shared_ptr<InputSource>: the request
/// holds one while queued and every ParseResult keeps one, so a result
/// stays self-contained after the caller drops the request — the paper's
/// interval semantics never needs the input mutated, and the buffer is
/// immutable for the source's whole life (what makes sharing it across
/// service threads safe without synchronization).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SERVICE_INPUTSOURCE_H
#define IPG_SERVICE_INPUTSOURCE_H

#include "support/Bytes.h"
#include "support/Result.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ipg {

class InputSource {
public:
  /// Wraps an owned buffer (moved in; no copy).
  static std::shared_ptr<InputSource> fromBytes(std::vector<uint8_t> Bytes);

  /// Maps \p Path read-only. Falls back to reading the file into an
  /// owned buffer when mmap is not usable (empty files, odd
  /// filesystems). Fails when the file cannot be opened.
  static Expected<std::shared_ptr<InputSource>>
  mapFile(const std::string &Path);

  ~InputSource();
  InputSource(const InputSource &) = delete;
  InputSource &operator=(const InputSource &) = delete;

  ByteSpan span() const { return ByteSpan(Data, Size); }
  size_t size() const { return Size; }
  bool mapped() const { return Map != nullptr; }

private:
  InputSource() = default;

  std::vector<uint8_t> Owned;
  void *Map = nullptr;  ///< mmap base (null for owned buffers)
  size_t MapLen = 0;    ///< mapped length (>= Size, page-rounded by the OS)
  const uint8_t *Data = nullptr;
  size_t Size = 0;
};

} // namespace ipg

#endif // IPG_SERVICE_INPUTSOURCE_H
