//===- service/ParseService.h - batched multi-threaded parsing --*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-pooled front end over the two parsing engines: N workers,
/// each owning ONE engine instance per configured format, pulling
/// ParseRequests from a shared queue and fulfilling futures with
/// self-contained ParseResults.
///
/// Threading model (the part worth reading twice):
///
///  - Engines are strictly one-per-thread. The service never shares an
///    engine between workers; what IS shared is immutable — the loaded
///    Grammar (its interner is only written during loading) and, in
///    generated mode, the dlopen'd GenModule (fn pointers only). So the
///    hot path has no locks and NO atomic refcounts: each worker's
///    TreeStore recycler is touched by that worker alone.
///
///  - A successful parse is detach()ed on the worker into a FrozenTree —
///    the single mutation point that ends the store's engine-thread
///    affinity (runtime/ParseTree.h). The ParseResult owning it may be
///    read and destroyed on ANY thread.
///
///  - Recycling still works across the handoff: every result carries a
///    reference to its worker's ReturnSlot. When the consumer destroys
///    the result, the store is pushed into the slot (one mutex op on the
///    *consumer's* cold path, not the parse path) and the worker adopts
///    it at the top of its loop — steady-state service throughput does
///    zero parse-path heap allocation per request, exactly like the
///    single-threaded engines. If the worker is gone or the slot is
///    full, the store is simply destroyed.
///
///  - Results also keep their InputSource alive (ordinary leaves alias
///    the input bytes), so a ParseResult is valid after the request, the
///    batch, and even the service are gone.
///
/// Shutdown: the destructor finishes every queued request (no future is
/// ever abandoned), then joins the workers. submit() after shutdown
/// began returns an already-failed result.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SERVICE_PARSESERVICE_H
#define IPG_SERVICE_PARSESERVICE_H

#include "runtime/Engine.h"
#include "runtime/ParseTree.h"
#include "service/InputSource.h"
#include "support/Result.h"

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

namespace ipg {

class ParseService;

/// One unit of work: parse \p Input as the (pre-configured) format
/// \p Format. The source is shared so the result can keep it alive.
struct ParseRequest {
  std::string Format;
  std::shared_ptr<InputSource> Input;
};

/// Per-request knobs for the submit overloads. Default-constructed
/// options change nothing.
struct SubmitOptions {
  /// Absolute deadline for this request (steady clock). A parse still
  /// running at the deadline aborts cleanly with Verdict::Timeout — the
  /// engine checks at recoverable boundaries (rule entries / machine act
  /// starts, amortized), so the abort is prompt but not instantaneous.
  /// The default (epoch) means no deadline. Generated-mode services fail
  /// deadline requests up front: compiled parsers cannot be interrupted.
  std::chrono::steady_clock::time_point Deadline{};
  bool hasDeadline() const {
    return Deadline != std::chrono::steady_clock::time_point{};
  }
};

namespace detail {
/// The store-return channel between result consumers (any thread) and
/// the owning worker; see the ParseService file comment.
struct ReturnSlot;
} // namespace detail

/// The outcome of one request. Move-only and self-contained: owns the
/// tree (FrozenTree), the input bytes backing its leaves, and a copy of
/// the engine stats for the parse. Destroying it on any thread is safe
/// and routes the tree's store back to the worker for recycling.
class ParseResult {
public:
  ParseResult() = default;
  ParseResult(ParseResult &&) = default;
  ParseResult &operator=(ParseResult &&) = default;
  ParseResult(const ParseResult &) = delete;
  ParseResult &operator=(const ParseResult &) = delete;
  ~ParseResult();

  bool ok() const { return Err.empty(); }
  const std::string &error() const { return Err; }
  const std::string &format() const { return Format; }

  /// Root of the parsed tree (null on failure).
  const ParseTree *root() const { return Tree.get(); }
  const FrozenTree &tree() const { return Tree; }

  /// Engine stats of this parse (copied out of the worker's engine
  /// before it moved on).
  const EngineStats &stats() const { return Stats; }

  /// The parse's outcome classification (stats().ParseVerdict): Accept,
  /// Salvage (the tree carries hole nodes over damaged bytes), Reject,
  /// or Timeout (the request's SubmitOptions::Deadline fired). Requests
  /// that failed before reaching an engine report Reject.
  Verdict verdict() const { return Stats.ParseVerdict; }

  /// End-to-end latency: submit() to result-ready, microseconds.
  uint64_t latencyUs() const { return LatencyUs; }

private:
  friend class ParseService;

  FrozenTree Tree;
  std::shared_ptr<InputSource> Input;
  std::shared_ptr<detail::ReturnSlot> Slot;
  EngineStats Stats;
  std::string Err;
  std::string Format;
  uint64_t LatencyUs = 0;
};

struct ParseServiceOptions {
  /// Worker threads; 0 means one per hardware thread.
  unsigned Workers = 0;
  /// Which engine each worker instantiates.
  EngineKind Mode = EngineKind::Interp;
  /// Knobs applied to every engine (and baked into generated modules).
  EngineOptions Engine;
};

class ParseService {
public:
  /// Loads every named format up front (grammars once, generated modules
  /// compiled once and shared) and starts the workers. Fails — without
  /// leaking threads — if any format fails to load or compile.
  static Expected<std::unique_ptr<ParseService>>
  create(const std::vector<std::string> &Formats,
         const ParseServiceOptions &Opts = {});

  /// Finishes all queued work, then stops the workers.
  ~ParseService();
  ParseService(const ParseService &) = delete;
  ParseService &operator=(const ParseService &) = delete;

  /// Enqueues one request. The future becomes ready when a worker
  /// finishes it; a request for a format not passed to create() (or a
  /// null input) fails fast without touching a worker.
  std::future<ParseResult> submit(ParseRequest Request);

  /// Like submit(), with per-request options (e.g. a deadline).
  std::future<ParseResult> submit(ParseRequest Request,
                                  const SubmitOptions &Options);

  /// Enqueues a batch in submission order (one queue broadcast instead
  /// of M). Results complete out of order across workers; index I of the
  /// returned vector corresponds to Requests[I].
  std::vector<std::future<ParseResult>>
  submitBatch(std::vector<ParseRequest> Requests);

  unsigned workers() const;
  EngineKind mode() const;

private:
  ParseService();
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace ipg

#endif // IPG_SERVICE_PARSESERVICE_H
