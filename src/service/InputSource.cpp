//===- service/InputSource.cpp --------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/InputSource.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace ipg;

std::shared_ptr<InputSource>
InputSource::fromBytes(std::vector<uint8_t> Bytes) {
  std::shared_ptr<InputSource> S(new InputSource());
  S->Owned = std::move(Bytes);
  S->Data = S->Owned.data();
  S->Size = S->Owned.size();
  return S;
}

Expected<std::shared_ptr<InputSource>>
InputSource::mapFile(const std::string &Path) {
  using Ret = Expected<std::shared_ptr<InputSource>>;
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return Ret::failure("cannot open " + Path + ": " +
                        std::strerror(errno));
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    int E = errno;
    ::close(Fd);
    return Ret::failure("cannot stat " + Path + ": " + std::strerror(E));
  }
  size_t Len = static_cast<size_t>(St.st_size);
  std::shared_ptr<InputSource> S(new InputSource());

  if (Len > 0) {
    void *M = ::mmap(nullptr, Len, PROT_READ, MAP_PRIVATE, Fd, 0);
    if (M != MAP_FAILED) {
      S->Map = M;
      S->MapLen = Len;
      S->Data = static_cast<const uint8_t *>(M);
      S->Size = Len;
      ::close(Fd); // the mapping survives the descriptor
      return Ret(std::move(S));
    }
  }

  // Fallback (and the empty-file path): read into an owned buffer.
  S->Owned.resize(Len);
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::read(Fd, S->Owned.data() + Off, Len - Off);
    if (N <= 0) {
      int E = errno;
      ::close(Fd);
      return Ret::failure("short read of " + Path + ": " +
                          (N < 0 ? std::strerror(E) : "EOF"));
    }
    Off += static_cast<size_t>(N);
  }
  ::close(Fd);
  S->Data = S->Owned.data();
  S->Size = Len;
  return Ret(std::move(S));
}

InputSource::~InputSource() {
  if (Map)
    ::munmap(Map, MapLen);
}
