//===- baselines/NailParsers.h - Nail-style packet parsers ------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parsers in the style of Nail's generated C code (Section 7's network
/// comparator): all result structures live in an arena, arrays are
/// arena-allocated with explicit counts, and parsing is a straight-line
/// descent over a (data, position) pair.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_BASELINES_NAILPARSERS_H
#define IPG_BASELINES_NAILPARSERS_H

#include "support/Arena.h"

#include <cstddef>
#include <cstdint>

namespace ipg::baselines {

struct NailDnsAnswer {
  uint16_t Type;
  uint16_t Class;
  uint32_t Ttl;
  uint16_t RdLen;
  const uint8_t *RData; ///< points into the arena copy
};

struct NailDns {
  uint16_t Id;
  uint16_t QdCount;
  uint16_t AnCount;
  uint8_t QNameLen;
  const uint8_t *QName; ///< label bytes, arena-owned
  NailDnsAnswer *Answers;
};

/// Returns an arena-allocated result, or null on malformed input.
const NailDns *nailParseDns(Arena &A, const uint8_t *Data, size_t Len);

struct NailIpv4 {
  uint8_t Ihl;
  uint16_t TotalLength;
  uint8_t Protocol;
  bool HasUdp;
  uint16_t SrcPort, DstPort, UdpLen;
  uint16_t PayloadLen;
  const uint8_t *Payload; ///< arena copy
};

const NailIpv4 *nailParseIpv4(Arena &A, const uint8_t *Data, size_t Len);

} // namespace ipg::baselines

#endif // IPG_BASELINES_NAILPARSERS_H
