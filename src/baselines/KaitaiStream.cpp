//===- baselines/KaitaiStream.cpp -----------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/KaitaiStream.h"

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

using namespace ipg::baselines;

uint64_t KaitaiStream::readUnsigned(size_t NumBytes, bool BigEndian) {
  if (Pos + NumBytes > Data.size()) {
    Failed = true;
    return 0;
  }
  uint64_t V = 0;
  if (BigEndian) {
    for (size_t I = 0; I < NumBytes; ++I)
      V = (V << 8) | Data[Pos + I];
  } else {
    for (size_t I = NumBytes; I-- > 0;)
      V = (V << 8) | Data[Pos + I];
  }
  Pos += NumBytes;
  return V;
}

std::vector<uint8_t> KaitaiStream::readBytes(size_t N) {
  if (Pos + N > Data.size()) {
    Failed = true;
    return {};
  }
  std::vector<uint8_t> Out(Data.begin() + Pos, Data.begin() + Pos + N);
  Pos += N;
  return Out;
}

bool KaitaiStream::expectBytes(std::string_view Magic) {
  if (Pos + Magic.size() > Data.size() ||
      std::memcmp(Data.data() + Pos, Magic.data(), Magic.size()) != 0) {
    Failed = true;
    return false;
  }
  Pos += Magic.size();
  return true;
}

KaitaiStream KaitaiStream::substream(size_t At, size_t Len) const {
  if (At + Len > Data.size()) {
    KaitaiStream Bad(std::vector<uint8_t>{});
    Bad.Failed = true;
    return Bad;
  }
  // Deliberately copies: this is the behaviour Figure 13a attributes to
  // Kaitai's generated ZIP parser.
  return KaitaiStream(Data.data() + At, Len);
}
