//===- baselines/Handwritten.h - readelf/unzip-style parsers ----*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hand-written comparators of Figure 12: parsers in the style of GNU
/// readelf and Info-ZIP unzip — direct struct mapping over the file image,
/// parsing tightly mixed with processing, no intermediate tree. The
/// end-to-end entry points replicate what the paper timed: readelf's
/// "-h -S --dyn-syms" report and unzip's parse + decompress + write-files
/// pipeline (files are written to an in-memory store so the measurement is
/// not dominated by filesystem noise; see docs/architecture.md,
/// "Engineering substitutions").
///
//===----------------------------------------------------------------------===//

#ifndef IPG_BASELINES_HANDWRITTEN_H
#define IPG_BASELINES_HANDWRITTEN_H

#include "support/Bytes.h"

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ipg::baselines {

//===----------------------------------------------------------------------===//
// readelf-style ELF access.
//===----------------------------------------------------------------------===//

struct HwElfSection {
  uint32_t Type = 0;
  uint64_t Offset = 0;
  uint64_t Size = 0;
};

struct HwElf {
  uint64_t ShOff = 0;
  uint16_t ShNum = 0;
  std::vector<HwElfSection> Sections;
  std::vector<std::pair<uint64_t, uint64_t>> DynEntries;
  std::vector<uint64_t> SymValues;
};

/// Parse-only (the "parsing time" series of Figure 12d).
bool hwParseElf(ipg::ByteSpan Image, HwElf &Out);

/// readelf -h -S --dyn-syms: parse + validate + render a report (the
/// end-to-end series of Figure 12c). Returns the report, empty on error.
std::string hwReadelf(ipg::ByteSpan Image);

//===----------------------------------------------------------------------===//
// unzip-style ZIP access.
//===----------------------------------------------------------------------===//

struct HwZipEntry {
  std::string Name;
  uint16_t Method = 0;
  uint32_t CSize = 0, USize = 0;
  uint32_t LfhOfs = 0;
};

struct HwZip {
  uint16_t EntryCount = 0;
  std::vector<HwZipEntry> Entries;
};

/// Parse-only: EOCD -> central directory -> local headers (Figure 12b's
/// "parsing" series).
bool hwParseZip(ipg::ByteSpan Image, HwZip &Out);

/// unzip end-to-end: parse, decompress every entry, "write" each file into
/// \p Files (Figure 12a). False on any malformed entry.
bool hwUnzip(ipg::ByteSpan Image,
             std::map<std::string, std::vector<uint8_t>> &Files);

} // namespace ipg::baselines

#endif // IPG_BASELINES_HANDWRITTEN_H
