//===- baselines/Handwritten.cpp ------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/Handwritten.h"

#include "formats/MiniZlib.h"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

using namespace ipg;
using namespace ipg::baselines;

//===----------------------------------------------------------------------===//
// ELF.
//===----------------------------------------------------------------------===//

bool ipg::baselines::hwParseElf(ByteSpan Image, HwElf &Out) {
  if (Image.size() < 64 || !Image.matchesAt(0, "\x7f"
                                               "ELF"))
    return false;
  Out.ShOff = Image.readUnsigned(40, 8, Endian::Little);
  uint16_t EntSize =
      static_cast<uint16_t>(Image.readUnsigned(58, 2, Endian::Little));
  Out.ShNum =
      static_cast<uint16_t>(Image.readUnsigned(60, 2, Endian::Little));
  if (EntSize != 64)
    return false;
  if (Out.ShOff + static_cast<uint64_t>(Out.ShNum) * 64 > Image.size())
    return false;

  for (uint16_t I = 0; I < Out.ShNum; ++I) {
    size_t Base = static_cast<size_t>(Out.ShOff) + I * 64u;
    HwElfSection S;
    S.Type =
        static_cast<uint32_t>(Image.readUnsigned(Base + 4, 4, Endian::Little));
    S.Offset = Image.readUnsigned(Base + 24, 8, Endian::Little);
    S.Size = Image.readUnsigned(Base + 32, 8, Endian::Little);
    if (I > 0 && S.Offset + S.Size > Image.size())
      return false;
    Out.Sections.push_back(S);
  }
  // Structured sections, exactly what the IPG grammar parses.
  for (uint16_t I = 1; I < Out.ShNum; ++I) {
    const HwElfSection &S = Out.Sections[I];
    size_t Base = static_cast<size_t>(S.Offset);
    if (S.Type == 6) {
      if (S.Size % 16 != 0)
        return false;
      for (uint64_t K = 0; K < S.Size / 16; ++K)
        Out.DynEntries.emplace_back(
            Image.readUnsigned(Base + K * 16, 8, Endian::Little),
            Image.readUnsigned(Base + K * 16 + 8, 8, Endian::Little));
    } else if (S.Type == 2) {
      if (S.Size % 24 != 0)
        return false;
      for (uint64_t K = 0; K < S.Size / 24; ++K)
        Out.SymValues.push_back(
            Image.readUnsigned(Base + K * 24 + 8, 8, Endian::Little));
    }
  }
  return true;
}

std::string ipg::baselines::hwReadelf(ByteSpan Image) {
  HwElf E;
  if (!hwParseElf(Image, E))
    return std::string();
  std::string Out;
  Out.reserve(256 + E.Sections.size() * 48 + E.SymValues.size() * 32);
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf),
                "ELF Header:\n  Section header offset: %llu\n"
                "  Number of section headers: %u\n",
                static_cast<unsigned long long>(E.ShOff), E.ShNum);
  Out += Buf;
  Out += "Section Headers:\n";
  for (size_t I = 0; I < E.Sections.size(); ++I) {
    std::snprintf(Buf, sizeof(Buf), "  [%2zu] type=%u off=%llu size=%llu\n",
                  I, E.Sections[I].Type,
                  static_cast<unsigned long long>(E.Sections[I].Offset),
                  static_cast<unsigned long long>(E.Sections[I].Size));
    Out += Buf;
  }
  Out += "Dynamic section entries:\n";
  for (auto &[Tag, Val] : E.DynEntries) {
    std::snprintf(Buf, sizeof(Buf), "  tag=%llu val=%llu\n",
                  static_cast<unsigned long long>(Tag),
                  static_cast<unsigned long long>(Val));
    Out += Buf;
  }
  Out += "Symbols:\n";
  for (uint64_t V : E.SymValues) {
    std::snprintf(Buf, sizeof(Buf), "  value=%llu\n",
                  static_cast<unsigned long long>(V));
    Out += Buf;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// ZIP.
//===----------------------------------------------------------------------===//

bool ipg::baselines::hwParseZip(ByteSpan Image, HwZip &Out) {
  if (Image.size() < 22)
    return false;
  size_t Eocd = Image.size() - 22;
  if (!Image.matchesAt(Eocd, "PK\x05\x06"))
    return false;
  Out.EntryCount =
      static_cast<uint16_t>(Image.readUnsigned(Eocd + 10, 2, Endian::Little));
  uint32_t CdSize =
      static_cast<uint32_t>(Image.readUnsigned(Eocd + 12, 4, Endian::Little));
  uint32_t CdOfs =
      static_cast<uint32_t>(Image.readUnsigned(Eocd + 16, 4, Endian::Little));
  if (static_cast<uint64_t>(CdOfs) + CdSize > Eocd)
    return false;

  size_t P = CdOfs;
  for (uint16_t I = 0; I < Out.EntryCount; ++I) {
    if (P + 46 > CdOfs + CdSize || !Image.matchesAt(P, "PK\x01\x02"))
      return false;
    HwZipEntry E;
    E.Method =
        static_cast<uint16_t>(Image.readUnsigned(P + 10, 2, Endian::Little));
    E.CSize =
        static_cast<uint32_t>(Image.readUnsigned(P + 20, 4, Endian::Little));
    E.USize =
        static_cast<uint32_t>(Image.readUnsigned(P + 24, 4, Endian::Little));
    uint16_t NameLen =
        static_cast<uint16_t>(Image.readUnsigned(P + 28, 2, Endian::Little));
    uint16_t ExtraLen =
        static_cast<uint16_t>(Image.readUnsigned(P + 30, 2, Endian::Little));
    uint16_t CommentLen =
        static_cast<uint16_t>(Image.readUnsigned(P + 32, 2, Endian::Little));
    E.LfhOfs =
        static_cast<uint32_t>(Image.readUnsigned(P + 42, 4, Endian::Little));
    if (P + 46 + NameLen > Image.size())
      return false;
    E.Name.assign(reinterpret_cast<const char *>(Image.data()) + P + 46,
                  NameLen);
    P += 46u + NameLen + ExtraLen + CommentLen;

    // Validate the local header the entry points at (random access).
    size_t L = E.LfhOfs;
    if (L + 30 > Image.size() || !Image.matchesAt(L, "PK\x03\x04"))
      return false;
    Out.Entries.push_back(std::move(E));
  }
  return P == CdOfs + CdSize;
}

bool ipg::baselines::hwUnzip(
    ByteSpan Image, std::map<std::string, std::vector<uint8_t>> &Files) {
  HwZip Z;
  if (!hwParseZip(Image, Z))
    return false;
  for (const HwZipEntry &E : Z.Entries) {
    size_t L = E.LfhOfs;
    uint16_t NameLen =
        static_cast<uint16_t>(Image.readUnsigned(L + 26, 2, Endian::Little));
    uint16_t ExtraLen =
        static_cast<uint16_t>(Image.readUnsigned(L + 28, 2, Endian::Little));
    size_t DataOfs = L + 30u + NameLen + ExtraLen;
    if (DataOfs + E.CSize > Image.size())
      return false;
    if (E.Method == 0) {
      Files[E.Name] = std::vector<uint8_t>(
          Image.data() + DataOfs, Image.data() + DataOfs + E.CSize);
    } else if (E.Method == 8) {
      size_t Consumed = 0;
      auto Out = formats::miniZlibDecompress(
          Image.slice(DataOfs, DataOfs + E.CSize), Consumed);
      if (!Out || Out->size() != E.USize)
        return false;
      Files[E.Name] = std::move(*Out);
    } else {
      return false;
    }
  }
  return true;
}
