//===- baselines/KaitaiParsers.cpp ----------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/KaitaiParsers.h"

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

using namespace ipg::baselines;

bool KaitaiElf::parse(KaitaiStream &Io) {
  if (!Io.expectBytes("\x7f"
                      "ELF"))
    return false;
  Io.seek(40);
  ShOff = Io.readU8le();
  Io.seek(58);
  uint16_t ShEntSize = Io.readU2le();
  ShNum = Io.readU2le();
  if (!Io.ok() || ShEntSize != 64)
    return false;

  // Jump to the section header table (the `pos:` instance of Figure 11a).
  for (uint16_t I = 0; I < ShNum; ++I) {
    Io.seek(ShOff + static_cast<uint64_t>(I) * 64);
    Section S;
    Io.readU4le(); // sh_name
    S.Type = Io.readU4le();
    Io.readU8le(); // sh_flags
    Io.readU8le(); // sh_addr
    S.Offset = Io.readU8le();
    S.Size = Io.readU8le();
    if (!Io.ok())
      return false;
    Sections.push_back(std::move(S));
  }
  for (uint16_t I = 1; I < ShNum; ++I) {
    Section &S = Sections[I];
    Io.seek(S.Offset);
    if (!Io.ok())
      return false;
    if (S.Type == 6) {
      if (S.Size % 16 != 0)
        return false;
      for (uint64_t K = 0; K < S.Size / 16; ++K) {
        uint64_t Tag = Io.readU8le();
        uint64_t Val = Io.readU8le();
        S.DynEntries.emplace_back(Tag, Val);
      }
    } else if (S.Type == 2) {
      if (S.Size % 24 != 0)
        return false;
      for (uint64_t K = 0; K < S.Size / 24; ++K) {
        Io.readU4le(); // st_name
        Io.readU4le(); // st_info etc.
        S.SymValues.push_back(Io.readU8le());
        Io.readU8le(); // st_size
      }
    } else {
      S.Body = Io.readBytes(S.Size); // copied through
    }
    if (!Io.ok())
      return false;
  }
  return Io.ok();
}

bool KaitaiZip::parse(KaitaiStream &Io) {
  // Kaitai's zip.ksy walks sections from the front, consuming each body.
  while (Io.ok() && !Io.isEof()) {
    if (!Io.expectBytes("PK"))
      return false;
    uint16_t SectionType = Io.readU2le();
    if (SectionType == 0x0403) { // local file
      Entry E;
      Io.readU2le(); // version
      Io.readU2le(); // flags
      E.Method = Io.readU2le();
      Io.readU2le(); // time
      Io.readU2le(); // date
      Io.readU4le(); // crc
      E.CSize = Io.readU4le();
      E.USize = Io.readU4le();
      uint16_t NameLen = Io.readU2le();
      uint16_t ExtraLen = Io.readU2le();
      auto NameBytes = Io.readBytes(NameLen);
      E.Name.assign(NameBytes.begin(), NameBytes.end());
      Io.readBytes(ExtraLen);
      // This is the behaviour the paper calls out: the archived data is
      // *read* (copied) to advance the stream.
      E.Data = Io.readBytes(E.CSize);
      if (!Io.ok())
        return false;
      Entries.push_back(std::move(E));
    } else if (SectionType == 0x0201) { // central directory header
      Io.readBytes(24);
      uint16_t NameLen = Io.readU2le();
      uint16_t ExtraLen = Io.readU2le();
      uint16_t CommentLen = Io.readU2le();
      Io.readBytes(12);
      Io.readBytes(static_cast<size_t>(NameLen) + ExtraLen + CommentLen);
      if (!Io.ok())
        return false;
    } else if (SectionType == 0x0605) { // end of central directory
      Io.readBytes(6);
      EntryCount = Io.readU2le();
      Io.readBytes(8);
      uint16_t CommentLen = Io.readU2le();
      Io.readBytes(CommentLen);
      return Io.ok() && EntryCount == Entries.size();
    } else {
      return false;
    }
  }
  return false; // no EOCD seen
}

bool KaitaiGif::parse(KaitaiStream &Io) {
  if (!Io.expectBytes("GIF89a"))
    return false;
  Width = Io.readU2le();
  Height = Io.readU2le();
  uint8_t Flags = Io.readU1();
  Io.readU1(); // background color
  Io.readU1(); // aspect ratio
  if ((Flags & 0x80) != 0) {
    HasGct = true;
    Gct = Io.readBytes(3u * (2u << (Flags & 7)));
  }
  auto ReadSubBlocks = [&](std::vector<uint8_t> &Out) {
    for (;;) {
      uint8_t Len = Io.readU1();
      if (!Io.ok())
        return false;
      if (Len == 0)
        return true;
      auto Chunk = Io.readBytes(Len);
      Out.insert(Out.end(), Chunk.begin(), Chunk.end());
      if (!Io.ok())
        return false;
    }
  };
  for (;;) {
    uint8_t Tag = Io.readU1();
    if (!Io.ok())
      return false;
    if (Tag == 0x3b)
      return true; // trailer
    if (Tag == 0x21) {
      Io.readU1(); // label
      std::vector<uint8_t> Scratch;
      if (!ReadSubBlocks(Scratch))
        return false;
      ++NumBlocks;
    } else if (Tag == 0x2c) {
      Io.readBytes(8); // left/top/width/height
      uint8_t IFlags = Io.readU1();
      if ((IFlags & 0x80) != 0)
        Io.readBytes(3u * (2u << (IFlags & 7)));
      Io.readU1(); // LZW min code size
      std::vector<uint8_t> Data;
      if (!ReadSubBlocks(Data))
        return false;
      ImageData.push_back(std::move(Data));
      ++NumBlocks;
      ++NumImages;
    } else {
      return false;
    }
  }
}

bool KaitaiPe::parse(KaitaiStream &Io) {
  if (!Io.expectBytes("MZ"))
    return false;
  Io.seek(60);
  LfaNew = Io.readU4le();
  Io.seek(LfaNew);
  if (!Io.expectBytes(std::string_view("PE\x00\x00", 4)))
    return false;
  Machine = Io.readU2le();
  NumSections = Io.readU2le();
  Io.readBytes(12);
  uint16_t OptSize = Io.readU2le();
  Io.readU2le(); // characteristics
  size_t OptBase = Io.pos();
  uint16_t Magic = Io.readU2le();
  if (!Io.ok() || Magic != 0x20b)
    return false;
  Io.seek(OptBase + OptSize);
  for (uint16_t I = 0; I < NumSections; ++I) {
    Io.readBytes(8); // name
    Io.readU4le();   // virtual size
    Io.readU4le();   // virtual address
    Section S;
    S.RawSize = Io.readU4le();
    S.RawPtr = Io.readU4le();
    Io.readBytes(16);
    if (!Io.ok())
      return false;
    Sections.push_back(std::move(S));
  }
  for (Section &S : Sections) {
    Io.seek(S.RawPtr);
    S.Body = Io.readBytes(S.RawSize);
    if (!Io.ok())
      return false;
  }
  return true;
}

static bool kaitaiReadName(KaitaiStream &Io, std::vector<uint8_t> &Out) {
  for (;;) {
    uint8_t Len = Io.readU1();
    if (!Io.ok())
      return false;
    if (Len == 0)
      return true;
    if ((Len & 0xC0) == 0xC0) {
      Io.readU1(); // second pointer byte
      return Io.ok();
    }
    if (Len >= 64)
      return false;
    auto Label = Io.readBytes(Len);
    Out.insert(Out.end(), Label.begin(), Label.end());
    Out.push_back('.');
    if (!Io.ok())
      return false;
  }
}

bool KaitaiDns::parse(KaitaiStream &Io) {
  Id = Io.readU2be();
  Io.readU2be(); // flags
  QdCount = Io.readU2be();
  AnCount = Io.readU2be();
  Io.readU2be(); // ns
  Io.readU2be(); // ar
  if (!Io.ok() || QdCount != 1)
    return false;
  if (!kaitaiReadName(Io, QName))
    return false;
  Io.readU2be(); // qtype
  Io.readU2be(); // qclass
  for (uint16_t I = 0; I < AnCount; ++I) {
    std::vector<uint8_t> Scratch;
    if (!kaitaiReadName(Io, Scratch))
      return false;
    Answer A;
    A.Type = Io.readU2be();
    A.Class = Io.readU2be();
    A.Ttl = Io.readU4be();
    uint16_t RdLen = Io.readU2be();
    A.RData = Io.readBytes(RdLen);
    if (!Io.ok())
      return false;
    Answers.push_back(std::move(A));
  }
  return Io.ok();
}

bool KaitaiIpv4::parse(KaitaiStream &Io) {
  uint8_t VIhl = Io.readU1();
  if (!Io.ok() || (VIhl >> 4) != 4)
    return false;
  Ihl = VIhl & 0xf;
  if (Ihl < 5)
    return false;
  Io.readU1(); // dscp
  TotalLength = Io.readU2be();
  Io.readBytes(5);
  Protocol = Io.readU1();
  Io.readU2be();  // checksum
  Io.readU4be();  // src
  Io.readU4be();  // dst
  Io.readBytes((Ihl - 5) * 4u); // options
  if (TotalLength > Io.size() || TotalLength < Ihl * 4u)
    return false;
  size_t Remaining = TotalLength - Ihl * 4u;
  if (Protocol == 17) {
    HasUdp = true;
    SrcPort = Io.readU2be();
    DstPort = Io.readU2be();
    UdpLen = Io.readU2be();
    Io.readU2be(); // checksum
    if (UdpLen != Remaining)
      return false;
    Payload = Io.readBytes(UdpLen - 8);
  } else {
    Payload = Io.readBytes(Remaining);
  }
  return Io.ok();
}
