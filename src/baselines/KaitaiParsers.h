//===- baselines/KaitaiParsers.h - Kaitai-style format parsers --*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parsers written the way Kaitai Struct's generated C++ looks: one struct
/// per type, eagerly reading every field through a KaitaiStream, jumping
/// with seek() for random access (the Figure 11a pattern), and materializing
/// payload bytes (ZIP's archived data in particular is read, not skipped).
/// These are the Figure 13 comparators.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_BASELINES_KAITAIPARSERS_H
#define IPG_BASELINES_KAITAIPARSERS_H

#include "baselines/KaitaiStream.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ipg::baselines {

struct KaitaiElf {
  uint64_t ShOff = 0;
  uint16_t ShNum = 0;
  struct Section {
    uint32_t Type = 0;
    uint64_t Offset = 0;
    uint64_t Size = 0;
    std::vector<std::pair<uint64_t, uint64_t>> DynEntries;
    std::vector<uint64_t> SymValues;
    std::vector<uint8_t> Body; ///< copied raw bytes for "other" sections
  };
  std::vector<Section> Sections;

  bool parse(KaitaiStream &Io);
};

struct KaitaiZip {
  struct Entry {
    uint16_t Method = 0;
    uint32_t CSize = 0, USize = 0;
    std::string Name;
    std::vector<uint8_t> Data; ///< archived bytes, copied through
  };
  uint16_t EntryCount = 0;
  std::vector<Entry> Entries;

  bool parse(KaitaiStream &Io);
};

struct KaitaiGif {
  uint16_t Width = 0, Height = 0;
  bool HasGct = false;
  std::vector<uint8_t> Gct;
  size_t NumBlocks = 0;
  size_t NumImages = 0;
  std::vector<std::vector<uint8_t>> ImageData; ///< copied sub-block bytes

  bool parse(KaitaiStream &Io);
};

struct KaitaiPe {
  uint32_t LfaNew = 0;
  uint16_t Machine = 0;
  uint16_t NumSections = 0;
  struct Section {
    uint32_t RawPtr = 0, RawSize = 0;
    std::vector<uint8_t> Body;
  };
  std::vector<Section> Sections;

  bool parse(KaitaiStream &Io);
};

struct KaitaiDns {
  uint16_t Id = 0, QdCount = 0, AnCount = 0;
  std::vector<uint8_t> QName;
  struct Answer {
    uint16_t Type = 0, Class = 0;
    uint32_t Ttl = 0;
    std::vector<uint8_t> RData;
  };
  std::vector<Answer> Answers;

  bool parse(KaitaiStream &Io);
};

struct KaitaiIpv4 {
  uint8_t Ihl = 0;
  uint16_t TotalLength = 0;
  uint8_t Protocol = 0;
  bool HasUdp = false;
  uint16_t SrcPort = 0, DstPort = 0, UdpLen = 0;
  std::vector<uint8_t> Payload;

  bool parse(KaitaiStream &Io);
};

} // namespace ipg::baselines

#endif // IPG_BASELINES_KAITAIPARSERS_H
