//===- baselines/NailParsers.cpp ------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/NailParsers.h"

#include <cstddef>
#include <cstdint>
#include <cstring>

using namespace ipg::baselines;
using ipg::Arena;

namespace {

struct Cursor {
  const uint8_t *Data;
  size_t Len;
  size_t Pos = 0;

  bool need(size_t N) const { return Pos + N <= Len; }
  uint8_t u8() { return Data[Pos++]; }
  uint16_t u16be() {
    uint16_t V = static_cast<uint16_t>((Data[Pos] << 8) | Data[Pos + 1]);
    Pos += 2;
    return V;
  }
  uint32_t u32be() {
    uint32_t V = (static_cast<uint32_t>(Data[Pos]) << 24) |
                 (static_cast<uint32_t>(Data[Pos + 1]) << 16) |
                 (static_cast<uint32_t>(Data[Pos + 2]) << 8) |
                 Data[Pos + 3];
    Pos += 4;
    return V;
  }
};

/// Copies [C.Pos, C.Pos+N) into the arena and advances.
const uint8_t *arenaBytes(Arena &A, Cursor &C, size_t N) {
  uint8_t *Out = A.makeArray<uint8_t>(N ? N : 1);
  std::memcpy(Out, C.Data + C.Pos, N);
  C.Pos += N;
  return Out;
}

/// Parses a possibly-compressed name, appending label bytes to the arena;
/// returns false on malformed names.
bool nailName(Arena &A, Cursor &C, const uint8_t *&Out, uint8_t &OutLen) {
  uint8_t Buf[256];
  size_t N = 0;
  for (;;) {
    if (!C.need(1))
      return false;
    uint8_t L = C.u8();
    if (L == 0)
      break;
    if ((L & 0xC0) == 0xC0) {
      if (!C.need(1))
        return false;
      C.u8(); // pointer low byte; target resolved by the consumer
      break;
    }
    if (L >= 64 || !C.need(L) || N + L + 1 > sizeof(Buf))
      return false;
    Buf[N++] = L;
    std::memcpy(Buf + N, C.Data + C.Pos, L);
    N += L;
    C.Pos += L;
  }
  uint8_t *Stored = A.makeArray<uint8_t>(N ? N : 1);
  std::memcpy(Stored, Buf, N);
  Out = Stored;
  OutLen = static_cast<uint8_t>(N);
  return true;
}

} // namespace

const NailDns *ipg::baselines::nailParseDns(Arena &A, const uint8_t *Data,
                                            size_t Len) {
  Cursor C{Data, Len};
  if (!C.need(12))
    return nullptr;
  NailDns *D = A.make<NailDns>();
  D->Id = C.u16be();
  C.u16be(); // flags
  D->QdCount = C.u16be();
  D->AnCount = C.u16be();
  C.u16be(); // ns
  C.u16be(); // ar
  if (D->QdCount != 1)
    return nullptr;
  if (!nailName(A, C, D->QName, D->QNameLen))
    return nullptr;
  if (!C.need(4))
    return nullptr;
  C.u16be(); // qtype
  C.u16be(); // qclass

  D->Answers = A.makeArray<NailDnsAnswer>(D->AnCount ? D->AnCount : 1);
  for (uint16_t I = 0; I < D->AnCount; ++I) {
    const uint8_t *Scratch;
    uint8_t ScratchLen;
    if (!nailName(A, C, Scratch, ScratchLen))
      return nullptr;
    if (!C.need(10))
      return nullptr;
    NailDnsAnswer &An = D->Answers[I];
    An.Type = C.u16be();
    An.Class = C.u16be();
    An.Ttl = C.u32be();
    An.RdLen = C.u16be();
    if (!C.need(An.RdLen))
      return nullptr;
    An.RData = arenaBytes(A, C, An.RdLen);
  }
  return C.Pos <= Len ? D : nullptr;
}

const NailIpv4 *ipg::baselines::nailParseIpv4(Arena &A, const uint8_t *Data,
                                              size_t Len) {
  Cursor C{Data, Len};
  if (!C.need(20))
    return nullptr;
  uint8_t VIhl = C.u8();
  if ((VIhl >> 4) != 4)
    return nullptr;
  NailIpv4 *P = A.make<NailIpv4>();
  P->Ihl = VIhl & 0xf;
  if (P->Ihl < 5)
    return nullptr;
  C.u8(); // dscp
  P->TotalLength = C.u16be();
  C.Pos += 5;
  P->Protocol = C.u8();
  C.u16be(); // checksum
  C.u32be(); // src
  C.u32be(); // dst
  size_t HLen = P->Ihl * 4u;
  if (!C.need(HLen - 20))
    return nullptr;
  C.Pos += HLen - 20; // options
  if (P->TotalLength > Len || P->TotalLength < HLen)
    return nullptr;
  size_t Remaining = P->TotalLength - HLen;
  P->HasUdp = P->Protocol == 17;
  if (P->HasUdp) {
    if (Remaining < 8 || !C.need(8))
      return nullptr;
    P->SrcPort = C.u16be();
    P->DstPort = C.u16be();
    P->UdpLen = C.u16be();
    C.u16be(); // checksum
    if (P->UdpLen != Remaining)
      return nullptr;
    P->PayloadLen = static_cast<uint16_t>(P->UdpLen - 8);
    if (!C.need(P->PayloadLen))
      return nullptr;
    P->Payload = arenaBytes(A, C, P->PayloadLen);
  } else {
    P->PayloadLen = static_cast<uint16_t>(Remaining);
    if (!C.need(Remaining))
      return nullptr;
    P->Payload = arenaBytes(A, C, Remaining);
  }
  return P;
}
