//===- baselines/Arena.h - Nail-style arena allocator -----------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Nail's generated parsers use arena-based memory management "to avoid
/// performance impact from calling malloc" (Section 7); Figure 13e/f note
/// that IPG matched it only after adopting the same mechanism. This is
/// that arena: bump allocation out of geometrically growing blocks, freed
/// all at once.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_BASELINES_ARENA_H
#define IPG_BASELINES_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ipg::baselines {

class Arena {
public:
  explicit Arena(size_t FirstBlock = 4096) : NextBlockSize(FirstBlock) {}

  void *allocate(size_t Bytes, size_t Align = alignof(std::max_align_t));

  template <typename T, typename... Args> T *make(Args &&...As) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    return new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(As)...);
  }

  /// Allocates an uninitialized array of N T's.
  template <typename T> T *makeArray(size_t N) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    return static_cast<T *>(allocate(sizeof(T) * N, alignof(T)));
  }

  /// Drops every allocation but keeps the blocks for reuse.
  void reset();

  size_t bytesAllocated() const { return TotalAllocated; }

private:
  struct Block {
    std::unique_ptr<uint8_t[]> Memory;
    size_t Size = 0;
    size_t Used = 0;
  };
  std::vector<Block> Blocks;
  size_t Current = 0;
  size_t NextBlockSize;
  size_t TotalAllocated = 0;
};

} // namespace ipg::baselines

#endif // IPG_BASELINES_ARENA_H
