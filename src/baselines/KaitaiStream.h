//===- baselines/KaitaiStream.h - Kaitai-style stream runtime ---*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reimplementation of the Kaitai Struct C++ runtime discipline that the
/// paper benchmarks against (Section 7): an imperative stream with an
/// explicit position, `pos`-based seeks (the `jump` pattern of Figure 11a),
/// and — crucially for Figure 13a — byte reads and substreams that *copy*
/// their data ("its implementation consumes the archived file data to move
/// the input position", i.e. no zero-copy mode).
///
/// Kaitai's runtime throws on errors; per this repository's no-exceptions
/// rule the stream instead latches a failure flag that parsers check.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_BASELINES_KAITAISTREAM_H
#define IPG_BASELINES_KAITAISTREAM_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ipg::baselines {

class KaitaiStream {
public:
  /// Kaitai streams own their bytes (substreams copy).
  explicit KaitaiStream(std::vector<uint8_t> Bytes)
      : Data(std::move(Bytes)) {}
  KaitaiStream(const uint8_t *Bytes, size_t Len) : Data(Bytes, Bytes + Len) {}

  size_t pos() const { return Pos; }
  size_t size() const { return Data.size(); }
  bool isEof() const { return Pos >= Data.size(); }
  bool ok() const { return !Failed; }
  void fail() { Failed = true; }

  void seek(size_t NewPos) {
    if (NewPos > Data.size()) {
      Failed = true;
      return;
    }
    Pos = NewPos;
  }

  uint64_t readUnsigned(size_t NumBytes, bool BigEndian);
  uint8_t readU1() { return static_cast<uint8_t>(readUnsigned(1, false)); }
  uint16_t readU2le() { return static_cast<uint16_t>(readUnsigned(2, false)); }
  uint32_t readU4le() { return static_cast<uint32_t>(readUnsigned(4, false)); }
  uint64_t readU8le() { return readUnsigned(8, false); }
  uint16_t readU2be() { return static_cast<uint16_t>(readUnsigned(2, true)); }
  uint32_t readU4be() { return static_cast<uint32_t>(readUnsigned(4, true)); }

  /// Copies N bytes out of the stream (Kaitai has no zero-copy reads).
  std::vector<uint8_t> readBytes(size_t N);

  /// True and advances iff the next bytes equal \p Magic.
  bool expectBytes(std::string_view Magic);

  /// A copying substream over [At, At + Len) — Kaitai's `io`/`substream`.
  KaitaiStream substream(size_t At, size_t Len) const;

private:
  std::vector<uint8_t> Data;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace ipg::baselines

#endif // IPG_BASELINES_KAITAISTREAM_H
