//===- baselines/Arena.cpp ------------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/Arena.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

using namespace ipg::baselines;

void *Arena::allocate(size_t Bytes, size_t Align) {
  TotalAllocated += Bytes;
  for (;;) {
    if (Current < Blocks.size()) {
      Block &B = Blocks[Current];
      size_t Aligned = (B.Used + Align - 1) & ~(Align - 1);
      if (Aligned + Bytes <= B.Size) {
        B.Used = Aligned + Bytes;
        return B.Memory.get() + Aligned;
      }
      ++Current;
      continue;
    }
    size_t Size = NextBlockSize;
    while (Size < Bytes + Align)
      Size *= 2;
    NextBlockSize = Size * 2;
    Block B;
    B.Memory = std::make_unique<uint8_t[]>(Size);
    B.Size = Size;
    Blocks.push_back(std::move(B));
  }
}

void Arena::reset() {
  for (Block &B : Blocks)
    B.Used = 0;
  Current = 0;
  TotalAllocated = 0;
}
