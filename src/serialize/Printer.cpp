//===- serialize/Printer.cpp ----------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "serialize/Printer.h"

#include "support/Casting.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

using namespace ipg;
using namespace ipg::serialize;

namespace {

/// The walk state: output buffer, per-byte coverage, and the running
/// counters. All offsets handled here are absolute positions in the
/// printed output; the per-edge shift accumulation happens in the
/// explicit work-stack walk (walkNode), not here. The walk is iterative
/// so printing a tree from a loop-flattened or machine-executed deep
/// parse never consumes C stack proportional to its depth.
class Printer {
public:
  Printer(const Grammar &G, const BlackboxRegistry *Registry,
          const PrintOptions &Opts)
      : G(G), Registry(Registry), Opts(Opts) {
    if (Opts.Gaps == GapPolicy::FillFromBackground) {
      R.Bytes.resize(Opts.Background.size(), 0);
      Covered.resize(Opts.Background.size(), 0);
    }
  }

  Error run(const ParseTree &Root) {
    if (const auto *N = dyn_cast<NodeTree>(&Root)) {
      // The root's base frame is the whole input; a root handed over as
      // a shifted view would re-anchor it elsewhere, which no engine
      // produces (parse() returns the unshifted rule result).
      if (Error E = walkNode(*N, /*BaseOrigin=*/N->shift(), /*Depth=*/0))
        return E;
    } else if (const auto *L = dyn_cast<LeafTree>(&Root)) {
      if (Error E = writeLeaf(*L, 0, 0))
        return E;
    } else {
      return Error::failure("cannot print a bare array root");
    }
    return finish();
  }

  PrintResult take() { return std::move(R); }

private:
  const Grammar &G;
  const BlackboxRegistry *Registry;
  const PrintOptions &Opts;
  PrintResult R;
  std::vector<uint8_t> Covered; ///< per-output-byte "a leaf wrote this"

  /// The node-local value of attribute \p S: the frozen env stores base-
  /// local coordinates and env() resolves the view shift on top, so
  /// subtracting the shift recovers the frame leaf offsets and child
  /// shifts are relative to.
  static std::optional<int64_t> localAttr(const NodeTree &N, Symbol S,
                                          int64_t Shift) {
    auto V = N.env().get(S);
    if (!V)
      return std::nullopt;
    return *V - Shift;
  }

  Error writeBytes(int64_t Abs, const uint8_t *Data, size_t Len) {
    if (Abs < 0)
      return Error::failure("print placed bytes at negative offset " +
                            std::to_string(Abs));
    size_t At = static_cast<size_t>(Abs);
    if (At + Len > R.Bytes.size()) {
      R.Bytes.resize(At + Len, 0);
      Covered.resize(At + Len, 0);
    }
    for (size_t I = 0; I < Len; ++I) {
      if (Covered[At + I]) {
        if (R.Bytes[At + I] != Data[I])
          return Error::failure(
              "overlapping writes disagree at output offset " +
              std::to_string(At + I));
        ++R.OverlapBytes;
        continue;
      }
      R.Bytes[At + I] = Data[I];
      Covered[At + I] = 1;
      ++R.CoveredBytes;
    }
    return Error::success();
  }

  Error writeLeaf(const LeafTree &L, int64_t BaseOrigin, uint32_t Depth) {
    int64_t Abs = BaseOrigin + L.offset();
    if (Opts.CollectSpans && L.length() > 0)
      R.Spans.push_back(PrintSpan{L.isHole() ? PrintSpan::Kind::Hole
                                             : PrintSpan::Kind::Leaf,
                                  L.isHole() ? L.holeRule() : InvalidSymbol,
                                  Abs, Abs + static_cast<int64_t>(L.length()),
                                  Depth});
    return writeBytes(Abs,
                      reinterpret_cast<const uint8_t *>(L.bytes().data()),
                      L.length());
  }

  /// A blackbox node re-emits its consumed window [start, end) through
  /// the registered inverse instead of copying children: its only child
  /// is the DECODED output leaf, whose bytes never appeared in the input.
  Error writeBlackbox(const NodeTree &N, int64_t BaseOrigin) {
    int64_t Shift = N.shift();
    auto S = localAttr(N, G.symStart(), Shift);
    auto E = localAttr(N, G.symEnd(), Shift);
    auto V = localAttr(N, G.symVal(), /*Shift=*/0); // val is coordinate-free
    std::string Name(G.interner().name(N.name()));
    if (!S || !E || !V)
      return Error::failure("blackbox node '" + Name +
                            "' lacks val/start/end attributes");

    ByteSpan Decoded;
    for (TreeRef C : N.children())
      if (const auto *L = dyn_cast<LeafTree>(C.get()))
        Decoded = ByteSpan(
            reinterpret_cast<const uint8_t *>(L->bytes().data()),
            L->length());

    if (*E <= *S) {
      // The untouched encoding ([sub-EOI, 0)): the blackbox consumed no
      // bytes, so there is nothing to re-emit — unless it also claims
      // decoded output, which zero input bytes cannot carry.
      if (!Decoded.empty())
        return Error::failure("blackbox node '" + Name +
                              "' consumed no bytes but has decoded output");
      return Error::success();
    }

    const BlackboxInvFn *Inv =
        Registry ? Registry->findInverse(Name) : nullptr;
    if (!Inv)
      return Error::failure("blackbox inverse '" + Name +
                            "' is not registered");
    BlackboxEncodeResult Enc = (*Inv)(Decoded, *V);
    if (!Enc.Ok)
      return Error::failure("blackbox inverse '" + Name + "' failed");
    if (static_cast<int64_t>(Enc.Bytes.size()) != *E - *S)
      return Error::failure(
          "blackbox inverse '" + Name + "' produced " +
          std::to_string(Enc.Bytes.size()) + " bytes for a window of " +
          std::to_string(*E - *S));
    R.BlackboxBytes += Enc.Bytes.size();
    return writeBytes(BaseOrigin + *S, Enc.Bytes.data(), Enc.Bytes.size());
  }

  /// One pending visit: a leaf to write or a node to expand. For nodes
  /// \p BaseOrigin is the absolute position of the node's base-local
  /// frame origin (parent origin + that edge's shift delta); for leaves
  /// it is the enclosing node's origin, which leaf offsets are relative
  /// to.
  struct WalkItem {
    const ParseTree *T;
    int64_t BaseOrigin;
    uint32_t Depth;
  };
  std::vector<WalkItem> Work;

  /// Pre-order DFS over the tree with an explicit stack — identical
  /// visit order (and PrintSpan order / Depth values) to the natural
  /// recursion, but depth-free: megabyte-class inputs parse into trees
  /// far deeper than any thread stack tolerates.
  Error walkNode(const NodeTree &Root, int64_t RootOrigin,
                 uint32_t RootDepth) {
    Work.clear();
    Work.push_back(WalkItem{&Root, RootOrigin, RootDepth});
    while (!Work.empty()) {
      WalkItem It = Work.back();
      Work.pop_back();
      if (const auto *L = dyn_cast<LeafTree>(It.T)) {
        if (Error E = writeLeaf(*L, It.BaseOrigin, It.Depth))
          return E;
        continue;
      }
      const NodeTree &N = *cast<NodeTree>(It.T);
      int64_t BaseOrigin = It.BaseOrigin;
      int64_t Shift = N.shift();
      bool IsBlackbox = G.isBlackbox(N.name());
      if (Opts.CollectSpans) {
        auto S = localAttr(N, G.symStart(), Shift);
        auto E = localAttr(N, G.symEnd(), Shift);
        if (S && E && *E > *S)
          R.Spans.push_back(PrintSpan{IsBlackbox ? PrintSpan::Kind::Blackbox
                                                 : PrintSpan::Kind::Node,
                                      N.name(), BaseOrigin + *S,
                                      BaseOrigin + *E, It.Depth});
      }
      if (IsBlackbox) {
        if (Error E = writeBlackbox(N, BaseOrigin))
          return E;
        continue;
      }

      // Queue the children, then reverse that slice so the LIFO pop
      // visits them in source order.
      size_t Mark = Work.size();
      for (TreeRef C : N.children()) {
        switch (C->kind()) {
        case ParseTree::Kind::Leaf:
          Work.push_back(WalkItem{C.get(), BaseOrigin, It.Depth + 1});
          break;
        case ParseTree::Kind::Node: {
          const auto *Sub = cast<NodeTree>(C.get());
          Work.push_back(
              WalkItem{Sub, BaseOrigin + Sub->shift(), It.Depth + 1});
          break;
        }
        case ParseTree::Kind::Array: {
          const auto *A = cast<ArrayTree>(C.get());
          // Array objects carry no shift of their own: element views are
          // shifted relative to the frame that executed the for-term —
          // this node's base frame.
          for (TreeRef El : A->elements()) {
            const auto *Elem = cast<NodeTree>(El.get());
            Work.push_back(
                WalkItem{Elem, BaseOrigin + Elem->shift(), It.Depth + 1});
          }
          break;
        }
        }
      }
      std::reverse(Work.begin() + Mark, Work.end());
    }
    return Error::success();
  }

  Error finish() {
    if (Opts.Gaps == GapPolicy::Strict) {
      for (size_t I = 0; I < R.Bytes.size(); ++I)
        if (!Covered[I])
          return Error::failure(
              "no leaf covers output offset " + std::to_string(I) +
              " (tree is not print-exact; see GapPolicy)");
      return Error::success();
    }
    // FillFromBackground: the output size is the background's; a tree
    // that wrote past it is a placement bug, not a gap.
    if (R.Bytes.size() > Opts.Background.size())
      return Error::failure(
          "print wrote past the background (" +
          std::to_string(R.Bytes.size()) + " > " +
          std::to_string(Opts.Background.size()) + " bytes)");
    for (size_t I = 0; I < R.Bytes.size(); ++I) {
      if (Covered[I])
        continue;
      R.Bytes[I] = Opts.Background[I];
      ++R.GapBytes;
    }
    return Error::success();
  }
};

} // namespace

Expected<PrintResult>
ipg::serialize::printTree(const ParseTree &Root, const Grammar &G,
                          const BlackboxRegistry *Registry,
                          const PrintOptions &Opts) {
  if (Opts.Gaps == GapPolicy::FillFromBackground &&
      Opts.Background.data() == nullptr && Opts.Background.size() > 0)
    return Expected<PrintResult>::failure("background span has no data");
  Printer P(G, Registry, Opts);
  if (Error E = P.run(Root))
    return Expected<PrintResult>(std::move(E));
  return P.take();
}
