//===- serialize/Printer.h - Grammar-driven tree serializer -----*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inverse of parsing: walk a frozen parse tree against its Grammar
/// and re-emit the bytes it was parsed from. The walk is the coordinate
/// model of T-NTSucc run backwards — every child edge carries the lazy
/// shift delta the parse recorded (NodeTree::shift()), and accumulating
/// those deltas from the root recovers the absolute position of every
/// leaf; leaves then copy their zero-copy spans into the output buffer.
/// Computed fields (lengths, offsets, counts) need no re-derivation pass
/// of their own: the scalar fields they were read from are terminal
/// leaves in the tree, and the interval attributes (start/end) place
/// them. Blackbox terms re-emit through the inverse hook registered next
/// to the forward decoder (BlackboxRegistry::addInverse): the decoded
/// output leaf is re-encoded and must fill the consumed window
/// [start, end) exactly.
///
/// Two checks make `print` a real inverse rather than a byte spray:
///
///  - Overlap agreement: memoized subtrees may be re-anchored under
///    several parents (e.g. PDF objects referenced by multiple xref
///    rows), so two leaves may legally cover the same byte — but they
///    must agree on its value. A disagreement is a print error.
///
///  - Coverage: bytes no leaf covers are *gaps*. GapPolicy::Strict
///    fails on the first gap (the tree provably reconstructs the input
///    alone); GapPolicy::FillFromBackground fills gaps from a caller-
///    supplied background buffer and reports how many bytes needed it
///    (for grammars whose trees are not print-exact; see
///    docs/grammar-syntax.md).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SERIALIZE_PRINTER_H
#define IPG_SERIALIZE_PRINTER_H

#include "grammar/Grammar.h"
#include "runtime/Blackbox.h"
#include "runtime/ParseTree.h"
#include "support/Bytes.h"
#include "support/Result.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ipg::serialize {

/// What to do with bytes no leaf of the tree covers.
enum class GapPolicy {
  /// Any uncovered byte in [0, output size) is a print error: the tree
  /// alone reconstructs the input.
  Strict,
  /// Uncovered bytes are copied from PrintOptions::Background (which also
  /// fixes the output size); the count is reported in PrintResult.
  FillFromBackground,
};

struct PrintOptions {
  GapPolicy Gaps = GapPolicy::Strict;
  /// The original input (or any byte source) gaps are filled from under
  /// FillFromBackground; its size becomes the output size. Ignored under
  /// Strict, where the output size is the covered extent.
  ByteSpan Background;
  /// Record a PrintSpan per visited tree object (structure-aware fuzzers
  /// mutate printed bytes at these subtree granularities).
  bool CollectSpans = false;
};

/// One placed tree object: the absolute byte range a node / leaf landed
/// on. Node spans come from the start/end interval attributes the parse
/// recorded; untouched nodes (no start/end) are skipped. Hole leaves
/// (salvage parsing; see RecoveryPolicy) carry the rule they stand in
/// for in Name.
struct PrintSpan {
  enum class Kind : uint8_t { Node, Blackbox, Leaf, Hole };
  Kind K = Kind::Node;
  Symbol Name = InvalidSymbol; ///< rule / blackbox / hole name; InvalidSymbol
                               ///< for ordinary leaves
  int64_t Lo = 0; ///< absolute start offset in the printed output
  int64_t Hi = 0; ///< absolute end offset (exclusive)
  uint32_t Depth = 0;
};

struct PrintResult {
  std::vector<uint8_t> Bytes;
  /// Bytes covered by at least one leaf / blackbox encoding.
  size_t CoveredBytes = 0;
  /// Bytes filled from the background (0 under Strict by construction).
  size_t GapBytes = 0;
  /// Bytes written more than once (all writes agreed, or printing failed).
  size_t OverlapBytes = 0;
  /// Bytes produced by blackbox inverses.
  size_t BlackboxBytes = 0;
  std::vector<PrintSpan> Spans; ///< filled when CollectSpans is set
};

/// Serializes \p Root (a tree parsed with \p G) back into bytes. For
/// grammars with blackbox terms \p Registry must carry an inverse for
/// each blackbox name the tree reached (BlackboxRegistry::addInverse);
/// pass nullptr for blackbox-free grammars. Fails — never aborts — on
/// overlap disagreements, gaps under Strict, missing or failing
/// inverses, and encodings that do not fill their window.
Expected<PrintResult> printTree(const ParseTree &Root, const Grammar &G,
                                const BlackboxRegistry *Registry = nullptr,
                                const PrintOptions &Opts = PrintOptions());

} // namespace ipg::serialize

#endif // IPG_SERIALIZE_PRINTER_H
