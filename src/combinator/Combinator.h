//===- combinator/Combinator.h - Interval parser combinators ----*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A C++ port of the paper's monadic interval parser-combinator library
/// (Appendix A.2). The monad state is a triple (l, r, c): the interval
/// assigned to the parser and the current position, all in absolute
/// offsets; `localInterval` (the paper's `%`) runs a parser confined to a
/// sub-interval given in *relative* offsets — the combinator-level
/// equivalent of attaching an interval to a nonterminal.
///
///   auto IntP = fix<int64_t>([](Parser<int64_t> Self) {
///     return choice(
///         bind(eoi(), [=](int64_t Eoi) {
///           return bind(localInterval(Self, 0, Eoi - 1), [=](int64_t Hi) {
///             return bind(localInterval(digitP(), Eoi - 1, Eoi),
///                         [=](int64_t Lo) { return pure(Hi * 2 + Lo); });
///           });
///         }),
///         localInterval(digitP(), 0, 1));
///   });
///
//===----------------------------------------------------------------------===//

#ifndef IPG_COMBINATOR_COMBINATOR_H
#define IPG_COMBINATOR_COMBINATOR_H

#include "support/Bytes.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>

namespace ipg::comb {

/// The monad state: interval [L, R) and current position C, absolute.
struct State {
  size_t L = 0;
  size_t R = 0;
  size_t C = 0;
};

struct Unit {};

/// A parser of T: input + state -> (value, new state), or failure.
template <typename T>
using Parser =
    std::function<std::optional<std::pair<T, State>>(ByteSpan, State)>;

/// return: always succeeds with \p Value, state untouched.
template <typename T> Parser<T> pure(T Value) {
  return [Value](ByteSpan, State S) {
    return std::make_optional(std::make_pair(Value, S));
  };
}

/// Helper so bind can name the result type of a Parser.
template <typename T> struct ParserTraits;
template <typename T> struct ParserTraits<Parser<T>> {
  using Value = T;
};

/// Monadic bind (the paper's >>=): Fn maps a T to a Parser<U>.
template <typename T, typename F> auto bind(Parser<T> M, F Fn) {
  using PU = std::invoke_result_t<F, T>;
  using U = typename ParserTraits<PU>::Value;
  return Parser<U>(
      [M, Fn](ByteSpan In, State S) -> std::optional<std::pair<U, State>> {
        auto R1 = M(In, S);
        if (!R1)
          return std::nullopt;
        return Fn(std::move(R1->first))(In, R1->second);
      });
}

/// Sequencing that drops the first result (the paper's $$).
template <typename T, typename U> Parser<U> then(Parser<T> A, Parser<U> B) {
  return [A, B](ByteSpan In, State S) -> std::optional<std::pair<U, State>> {
    auto R1 = A(In, S);
    if (!R1)
      return std::nullopt;
    return B(In, R1->second);
  };
}

/// Biased choice (the paper's /): B runs only if A fails.
template <typename T> Parser<T> choice(Parser<T> A, Parser<T> B) {
  return [A, B](ByteSpan In, State S) {
    auto R1 = A(In, S);
    return R1 ? R1 : B(In, S);
  };
}

/// Always fails.
template <typename T> Parser<T> fail() {
  return [](ByteSpan, State) -> std::optional<std::pair<T, State>> {
    return std::nullopt;
  };
}

// -- State access (the internal combinators of Figure 16) -----------------

inline Parser<std::pair<size_t, size_t>> getInterval() {
  return [](ByteSpan, State S) {
    return std::make_optional(
        std::make_pair(std::make_pair(S.L, S.R), S));
  };
}

inline Parser<size_t> getPos() {
  return [](ByteSpan, State S) {
    return std::make_optional(std::make_pair(S.C, S));
  };
}

/// End-of-input as a relative offset: the length of the local interval.
inline Parser<int64_t> eoi() {
  return [](ByteSpan, State S) {
    return std::make_optional(
        std::make_pair(static_cast<int64_t>(S.R - S.L), S));
  };
}

// -- Interval confinement (the paper's %) ----------------------------------

/// Runs \p P on the sub-interval [RelLo, RelHi) of the current interval;
/// afterwards the interval is restored and the position moves to the end
/// of the sub-interval — matching the IPG semantics of `A[el, er]`.
template <typename T>
Parser<T> localInterval(Parser<T> P, int64_t RelLo, int64_t RelHi) {
  return [P, RelLo, RelHi](ByteSpan In,
                           State S) -> std::optional<std::pair<T, State>> {
    int64_t Len = static_cast<int64_t>(S.R - S.L);
    if (RelLo < 0 || RelLo > RelHi || RelHi > Len)
      return std::nullopt;
    State Sub;
    Sub.L = S.L + static_cast<size_t>(RelLo);
    Sub.R = S.L + static_cast<size_t>(RelHi);
    Sub.C = Sub.L;
    auto R1 = P(In, Sub);
    if (!R1)
      return std::nullopt;
    State Out = S;
    Out.C = S.L + static_cast<size_t>(RelHi);
    return std::make_pair(std::move(R1->first), Out);
  };
}

// -- Leaf parsers -----------------------------------------------------------

/// Matches one byte equal to \p Ch at the current position.
inline Parser<char> charP(char Ch) {
  return [Ch](ByteSpan In, State S) -> std::optional<std::pair<char, State>> {
    if (S.C < S.L || S.C >= S.R || S.C >= In.size() ||
        static_cast<char>(In[S.C]) != Ch)
      return std::nullopt;
    State S2 = S;
    ++S2.C;
    return std::make_pair(Ch, S2);
  };
}

/// Matches any single byte, yielding its value.
inline Parser<int64_t> anyByteP() {
  return [](ByteSpan In, State S) -> std::optional<std::pair<int64_t, State>> {
    if (S.C >= S.R || S.C >= In.size())
      return std::nullopt;
    State S2 = S;
    ++S2.C;
    return std::make_pair(static_cast<int64_t>(In[S.C]), S2);
  };
}

/// Matches a literal string at the current position.
inline Parser<Unit> strP(std::string Lit) {
  return [Lit](ByteSpan In, State S) -> std::optional<std::pair<Unit, State>> {
    if (S.C + Lit.size() > S.R || !In.matchesAt(S.C, Lit))
      return std::nullopt;
    State S2 = S;
    S2.C += Lit.size();
    return std::make_pair(Unit{}, S2);
  };
}

// -- Recursion ---------------------------------------------------------------

/// Ties the knot for recursive parsers: fix(f) passes the parser to its
/// own definition. The parser handed to \p Fn holds the recursion cell
/// weakly — the definition stored in the cell invariably captures that
/// parser, and a strong capture would make the cell own itself (a
/// shared_ptr cycle, i.e. a leak). Only the returned parser owns the
/// cell; consequently the parser \p Fn receives must not be invoked
/// during \p Fn itself and must not outlive the returned parser (both
/// degrade to "no match", never to undefined behaviour).
template <typename T>
Parser<T> fix(std::function<Parser<T>(Parser<T>)> Fn) {
  auto Cell = std::make_shared<Parser<T>>();
  std::weak_ptr<Parser<T>> Weak = Cell;
  Parser<T> Self = [Weak](ByteSpan In, State S) ->
      std::optional<std::pair<T, State>> {
        auto C = Weak.lock();
        if (!C || !*C)
          return std::nullopt;
        return (*C)(In, S);
      };
  *Cell = Fn(Self);
  return [Cell](ByteSpan In, State S) { return (*Cell)(In, S); };
}

/// Runs a parser over a whole buffer.
template <typename T>
std::optional<T> runParser(const Parser<T> &P, ByteSpan In) {
  State S;
  S.L = 0;
  S.R = In.size();
  S.C = 0;
  auto R = P(In, S);
  if (!R)
    return std::nullopt;
  return std::move(R->first);
}

} // namespace ipg::comb

#endif // IPG_COMBINATOR_COMBINATOR_H
