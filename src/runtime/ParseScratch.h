//===- runtime/ParseScratch.h - reusable in-process engine state -*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recycled scratch state shared by the two in-process execution modes
/// — the tree-walking interpreter (runtime/Interp.cpp) and the bytecode VM
/// (vm/BytecodeVM.cpp). Both engines run the same three-tier execution
/// strategy (Direct recursion / Flattened descend-replay / Step work-stack
/// machine) over the same lowered module (lower/LIR.h), so they share one
/// state layout: per-depth frame pool, memo + reentry tables, flattened
/// window stack, machine activation records, and the store-recycling
/// plumbing. Everything here survives across parse() calls so the steady
/// state allocates nothing: vectors and the flat hashes keep their
/// capacity through clear(), the TreeStore keeps its arena blocks through
/// reset(), and frames are pooled per recursion depth.
///
/// This header is an implementation detail of the two engines; nothing
/// else should include it (public surfaces expose it only as a forward
/// declaration behind unique_ptr).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_RUNTIME_PARSESCRATCH_H
#define IPG_RUNTIME_PARSESCRATCH_H

#include "lower/LIR.h"
#include "runtime/Blackbox.h"
#include "runtime/EngineOptions.h"
#include "runtime/Env.h"
#include "runtime/ParseTree.h"
#include "support/Bytes.h"
#include "support/FlatHash.h"
#include "support/GenRuntime.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ipg {

// The in-process engines and the generated parsers share one semantic
// core (support/GenRuntime.h, embedded verbatim into codegen output). The
// ReadKind encoding used across that boundary must mirror the enum.
static_assert(static_cast<unsigned>(ReadKind::U8) == ipg_rt::RK_U8 &&
                  static_cast<unsigned>(ReadKind::U16Le) == ipg_rt::RK_U16Le &&
                  static_cast<unsigned>(ReadKind::U32Le) == ipg_rt::RK_U32Le &&
                  static_cast<unsigned>(ReadKind::U64Le) == ipg_rt::RK_U64Le &&
                  static_cast<unsigned>(ReadKind::U16Be) == ipg_rt::RK_U16Be &&
                  static_cast<unsigned>(ReadKind::U32Be) == ipg_rt::RK_U32Be &&
                  static_cast<unsigned>(ReadKind::BtoiLe) ==
                      ipg_rt::RK_BtoiLe &&
                  static_cast<unsigned>(ReadKind::BtoiBe) == ipg_rt::RK_BtoiBe,
              "ipg_rt read-kind encoding must mirror ipg::ReadKind");

/// Env adapter with the getAttr/setAttr surface ipg_rt::updStartEnd
/// expects.
struct EnvRef {
  Env &E;
  bool getAttr(Symbol S, long long &Out) const {
    if (auto V = E.get(S)) {
      Out = *V;
      return true;
    }
    return false;
  }
  void setAttr(Symbol S, long long V) { E.set(S, static_cast<int64_t>(V)); }
};

struct ParseScratch {
  /// Per-alternative execution state: the environment E, the ids of
  /// already-built child trees, and per-term touch records for TermEnd.
  struct Frame {
    ByteSpan Input;
    Env E;
    std::vector<uint32_t> ChildIds;
    std::vector<uint32_t> ChildTermIdx;

    /// Per-term touch records, invalidated per alternative by generation
    /// stamp — a rule with many failing alternatives pays O(1) per
    /// attempt instead of refilling the array (the same scheme as the
    /// generated ipg_rt::Frame).
    struct TermRec {
      uint32_t Gen = 0;
      int64_t Start = 0;
      int64_t End = 0;
    };
    std::vector<TermRec> Recs;
    uint32_t RecGen = 0;

    /// Enclosing frame for where-clause rules (null for global rules).
    const Frame *Lexical = nullptr;

    void beginAlt(ByteSpan In, const Frame *Lex, size_t NumTerms) {
      Input = In;
      Lexical = Lex;
      E.clear();
      ChildIds.clear();
      ChildTermIdx.clear();
      if (Recs.size() < NumTerms)
        Recs.resize(NumTerms);
      if (++RecGen == 0) {
        // Generation wrap (once per 2^32 alternatives): ancient stamps
        // could alias the restarted counter, so pay one full sweep.
        for (TermRec &R : Recs)
          R.Gen = 0;
        RecGen = 1;
      }
    }

    void rec(uint32_t TermIdx, int64_t Start, int64_t End) {
      Recs[TermIdx] = TermRec{RecGen, Start, End};
    }
    bool termEnd(uint32_t TermIdx, int64_t &Out) const {
      if (TermIdx >= Recs.size() || Recs[TermIdx].Gen != RecGen)
        return false;
      Out = Recs[TermIdx].End;
      return true;
    }
  };

  /// ipg_rt::memoPack'd outcomes — the same encoding the generated Ctx
  /// uses, through the same helpers; ids are stable within a parse.
  FlatIntervalMap<uint32_t> Memo;
  FlatIntervalMap<uint8_t> InProgress;
  std::vector<std::unique_ptr<Frame>> FramePool; // indexed by depth
  std::vector<std::vector<uint32_t>> ElemScratch; // per array-nesting level
  size_t ArrayNest = 0;

  /// The lowered module (lower/LIR.h), computed once per engine: resolved
  /// rule targets, interned literals, recursion shapes, memo eligibility,
  /// and blackbox call sites — the shared resolution layer all engines
  /// consume instead of re-deriving it from the Grammar.
  lir::Module Lowered;
  /// Blackbox call sites pre-resolved against the registry at engine
  /// construction, indexed by lir::TermL::Bb. A null entry reproduces the
  /// "not registered" hard error at call time.
  std::vector<const BlackboxFn *> BbFns;

  /// Flattened-tier state: the descend/replay window stack, banked
  /// prefix-child records, and (under DetectReentry) the in-progress keys
  /// of pending levels. Nested flattened activations share these vectors
  /// through saved bases; capacity persists across parses, so the steady
  /// state allocates nothing.
  struct FlatKid {
    uint32_t Node = 0;   ///< adjusted (shifted) child node id
    int64_t Start = 0;   ///< recorded child start as the parent saw it
    int64_t End = 0;     ///< recorded child end as the parent saw it
    bool Touched = false;
  };
  std::vector<ByteSpan> FlatLevels;
  std::vector<FlatKid> FlatKids;
  std::vector<IntervalKey> FlatKeys;

  /// Step-tier activation record: one per live rule invocation on the
  /// explicit work-stack machine (the machine only ever starts at the
  /// parse root; see analyzeRecShape's up-closure).
  struct MachineAct {
    RuleId Id = InvalidRuleId;
    ByteSpan Input;
    const Frame *Lex = nullptr; ///< lexical frame for where-clause rules
    IntervalKey Key;
    uint32_t AltIdx = 0;
    uint32_t StepIdx = 0; ///< next position in the alternative's exec order
    enum : uint8_t { WaitNone, WaitNT, WaitArr };
    uint8_t Wait = WaitNone;
    bool Memoize = false;
    bool Inserted = false;  ///< holds an InProgress reentry key
    bool NeedBegin = true;  ///< beginAlt pending for (AltIdx, StepIdx=0)
    uint32_t PendTI = 0;    ///< term index of the suspended child
    int64_t PendLo = 0;
    int64_t PendHi = 0;
    /// Salvage delivery: whether a soft failure of the suspended child
    /// becomes a hole over [PendLo, PendHi), and the hole's rule name.
    bool PendRecov = false;
    Symbol PendHole = InvalidSymbol;
    const lir::TermL *Arr = nullptr; ///< in-flight array term, if any
    int64_t ArrK = 0;
    int64_t ArrTo = 0;
    int64_t ArrMaxEnd = 0;
    bool ArrTouched = false;
    bool ArrHadSaved = false;
    int64_t ArrSaved = 0;
    size_t ArrLevel = 0;
  };
  std::vector<MachineAct> Acts;

  /// Bytecode-evaluator scratch (VM only; the interpreter tree-walks):
  /// the operand stack shared by nested program activations through saved
  /// bases, and the exists-scan binding stack consulted by LoadAttr
  /// innermost-first before the frame's lexical chain.
  std::vector<int64_t> VStack;
  /// Committed height of VStack: the prefix owned by outer program
  /// activations. A general-form evaluation windows [VTop, VTop+MaxStack)
  /// with raw pointers and only publishes VTop across the one re-entrant
  /// opcode (Exists), so nested activations stack above it.
  size_t VTop = 0;
  struct Bind {
    Symbol Var = InvalidSymbol;
    int64_t Value = 0;
  };
  std::vector<Bind> Binds;

  /// The store of the parse in flight (and, after a FAILED parse, of the
  /// next one — failures recycle trivially since no result escaped). A
  /// successful parse MOVES this into the returned TreePtr: the engine
  /// keeps no reference, so the result path performs zero refcount
  /// traffic, and a dropped result finds its way back through Pool.
  TreeStore *Cur = nullptr;
  /// Where dying TreePtrs park their store for reuse; heap-allocated so
  /// it can outlive whichever of engine / last tree dies first.
  TreeStore::Recycler *Pool = new TreeStore::Recycler();

  ~ParseScratch() {
    TreeStore::Recycler *P = Pool;
    P->OwnerAlive = false;
    TreeStore *Parked = P->Returned;
    P->Returned = nullptr;
    bool DestroyedAny = Cur || Parked;
    if (Cur)
      TreeStore::destroy(Cur); // may free P when it was the last store
    if (Parked)
      TreeStore::destroy(Parked);
    // No store went through destroy() and none are loaned out: P is ours
    // to free. (Outstanding TreePtrs free it through their last release.)
    if (!DestroyedAny && P->LiveStores == 0)
      delete P;
  }

  Frame &frameAt(size_t Depth) {
    while (FramePool.size() <= Depth)
      FramePool.push_back(std::make_unique<Frame>());
    return *FramePool[Depth];
  }

  std::vector<uint32_t> &elemScratchAt(size_t Level) {
    if (ElemScratch.size() <= Level)
      ElemScratch.resize(Level + 1);
    return ElemScratch[Level];
  }

  /// Shared by Interp/BytecodeVM construction: lower the grammar once and
  /// resolve every blackbox call site against \p Blackboxes.
  void bindGrammar(const Grammar &G, const BlackboxRegistry *Blackboxes) {
    Lowered = lir::lower(G);
    BbFns.reserve(Lowered.BbSites.size());
    for (const lir::BbSite &Site : Lowered.BbSites)
      BbFns.push_back(Blackboxes ? Blackboxes->find(Site.NameStr) : nullptr);
  }

  /// Shared parse-entry reset: recycle or allocate the store and clear
  /// every per-parse table (capacity retained). Sets
  /// \p Stats.StoreRecycled.
  void beginParse(EngineStats &Stats) {
    if (!Cur && Pool->Returned) {
      Cur = Pool->Returned;
      Pool->Returned = nullptr;
    }
    if (Cur) {
      Cur->reset();
      Stats.StoreRecycled = true;
    } else {
      Cur = new TreeStore(Pool);
    }
    Memo.clear();
    InProgress.clear();
    ArrayNest = 0;
    // The tier scratch is left empty by every exit path; clearing here is
    // belt-and-braces so a parse can never see a predecessor's state.
    FlatLevels.clear();
    FlatKids.clear();
    FlatKeys.clear();
    Acts.clear();
    VStack.clear();
    VTop = 0;
    Binds.clear();
  }

  /// Shared adoptStore(): park a store coming home from a FrozenTree
  /// round trip, declining when a spare already waits.
  bool adopt(TreeStore *Store) {
    if (!Store)
      return false;
    // Engine-thread only: bindRecycler stamps this thread as the store's
    // owner and the recycler counters are plain. Decline when a store is
    // already parked (or in flight) — one spare is all a worker needs.
    if (Cur || Pool->Returned)
      return false;
    Store->bindRecycler(Pool);
    Store->reset();
    Pool->Returned = Store;
    return true;
  }
};

} // namespace ipg

#endif // IPG_RUNTIME_PARSESCRATCH_H
