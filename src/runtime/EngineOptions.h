//===- runtime/EngineOptions.h - Shared engine knobs ------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime knobs and counters shared by every execution mode. Both
/// engines (the interpreter and generated parsers) consume the SAME
/// EngineOptions struct, so defaults cannot drift between them: a depth
/// limit of 64 means the same hard failure in both, and UseMemo toggles
/// the same Section-3.3 (rule, absolute-interval) policy on both sides —
/// tests/engine_test.cpp regression-tests the parity.
///
/// EngineStats is the uniform counter block `Engine::stats()` returns.
/// Counters are reset at the ENTRY of every parse() — including parses
/// that fail before doing any work — so a caller reading stats() after a
/// failure always sees that failure's numbers, never the previous call's.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_RUNTIME_ENGINEOPTIONS_H
#define IPG_RUNTIME_ENGINEOPTIONS_H

#include <cstddef>
#include <cstdint>

namespace ipg {

/// What a parse does when a term fails (docs/architecture.md, "Error
/// recovery & salvage").
enum class RecoveryPolicy : uint8_t {
  /// A failing term fails its alternative; a rule with no surviving
  /// alternative fails its caller. Today's semantics, the default.
  Strict,
  /// A failing term whose interval endpoints are already resolved — at
  /// the boundaries the lowering marked recoverable (lir::TermL::
  /// Recoverable) — is replaced by a `hole` leaf covering exactly that
  /// interval (a zero-copy window over the damaged bytes, like `raw`),
  /// and the enclosing sequence continues. Failures whose bounds are
  /// data-dependent and no longer resolve still reject. Supported by
  /// the interpreter and the bytecode VM; generated parsers reject the
  /// policy at construction (documented limitation).
  Salvage,
};

/// The outcome classification every parse reports (EngineStats::
/// ParseVerdict, ParseResult::verdict()).
enum class Verdict : uint8_t {
  Accept,  ///< parse succeeded with no holes
  Salvage, ///< parse succeeded but >= 1 hole fences damaged bytes
  Reject,  ///< parse failed (soft reject or hard error)
  Timeout, ///< parse aborted by a deadline (Engine::setDeadline)
};

inline const char *verdictName(Verdict V) {
  switch (V) {
  case Verdict::Accept:
    return "accept";
  case Verdict::Salvage:
    return "salvage";
  case Verdict::Reject:
    return "reject";
  case Verdict::Timeout:
    return "timeout";
  }
  return "unknown";
}

struct EngineOptions {
  /// Packrat memoization of (rule, absolute interval) results
  /// (Section 3.3). The interpreter honors it per parse; the code
  /// generator bakes it into the emitted rule functions.
  bool UseMemo = true;
  /// Treat re-entry of an in-progress (rule, slice) as failure instead of
  /// recursing; off by default for fidelity to the formal semantics.
  /// Interpreter-only: generated parsers rely on the depth limit.
  bool DetectReentry = false;
  /// Hard limit on rule recursion depth. Tripping it aborts the whole
  /// parse (no backtracking into sibling alternatives) in BOTH engines.
  size_t MaxDepth = 8192;
  /// Error-recovery policy; see the enum. Strict preserves today's
  /// byte-for-byte behavior (and counters) exactly.
  RecoveryPolicy Recovery = RecoveryPolicy::Strict;
};

struct EngineStats {
  size_t NodesCreated = 0;
  size_t TermsExecuted = 0; ///< interpreter-only; 0 for generated parsers
  size_t MemoHits = 0;
  size_t MemoMisses = 0;
  /// Deepest grammar recursion the parse reached, in BOTH engines.
  /// Flattened rules count their virtual levels and the step machine its
  /// work-stack height, so the figure matches what plain recursion would
  /// have reported — parses never consume C stack proportional to it.
  size_t PeakDepth = 0;
  /// Arena bytes allocated during the parse — includes nodes built for
  /// alternatives that later failed and memoized subtrees not reachable
  /// from the result, so it bounds (not equals) the tree's footprint.
  size_t ArenaBytesUsed = 0;
  /// Whether this parse recycled a previous parse's TreeStore (true in
  /// the allocation-free steady state).
  bool StoreRecycled = false;
  /// Holes emitted during the parse under RecoveryPolicy::Salvage —
  /// including holes in alternatives that later failed and in memoized
  /// subtrees the result never reaches, so it bounds (not equals) the
  /// number of holes on the returned tree. Always 0 under Strict.
  size_t HolesFilled = 0;
  /// Holes reachable from the RETURNED tree (countHoles over the
  /// result); the basis of the Salvage verdict. 0 on failed parses.
  size_t HolesInTree = 0;
  /// The parse's outcome classification; see Verdict.
  Verdict ParseVerdict = Verdict::Reject;
  /// True when the parse was aborted by a deadline (the verdict is then
  /// Timeout, and the error text names the deadline).
  bool TimedOut = false;
  /// Failure diagnostics: the name Symbol of the rule (or blackbox) a
  /// failing parse stopped in, and the absolute byte offset of the
  /// window it was examining. ~0u / -1 when the parse succeeded or the
  /// failure site carries no location (e.g. "internal:" lowering
  /// errors). Generated parsers report both through the 7-slot
  /// ipg_mod_stats ABI.
  uint32_t FailRule = ~0u;
  int64_t FailOffset = -1;
};

} // namespace ipg

#endif // IPG_RUNTIME_ENGINEOPTIONS_H
