//===- runtime/EngineOptions.h - Shared engine knobs ------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime knobs and counters shared by every execution mode. Both
/// engines (the interpreter and generated parsers) consume the SAME
/// EngineOptions struct, so defaults cannot drift between them: a depth
/// limit of 64 means the same hard failure in both, and UseMemo toggles
/// the same Section-3.3 (rule, absolute-interval) policy on both sides —
/// tests/engine_test.cpp regression-tests the parity.
///
/// EngineStats is the uniform counter block `Engine::stats()` returns.
/// Counters are reset at the ENTRY of every parse() — including parses
/// that fail before doing any work — so a caller reading stats() after a
/// failure always sees that failure's numbers, never the previous call's.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_RUNTIME_ENGINEOPTIONS_H
#define IPG_RUNTIME_ENGINEOPTIONS_H

#include <cstddef>

namespace ipg {

struct EngineOptions {
  /// Packrat memoization of (rule, absolute interval) results
  /// (Section 3.3). The interpreter honors it per parse; the code
  /// generator bakes it into the emitted rule functions.
  bool UseMemo = true;
  /// Treat re-entry of an in-progress (rule, slice) as failure instead of
  /// recursing; off by default for fidelity to the formal semantics.
  /// Interpreter-only: generated parsers rely on the depth limit.
  bool DetectReentry = false;
  /// Hard limit on rule recursion depth. Tripping it aborts the whole
  /// parse (no backtracking into sibling alternatives) in BOTH engines.
  size_t MaxDepth = 8192;
};

struct EngineStats {
  size_t NodesCreated = 0;
  size_t TermsExecuted = 0; ///< interpreter-only; 0 for generated parsers
  size_t MemoHits = 0;
  size_t MemoMisses = 0;
  /// Deepest grammar recursion the parse reached, in BOTH engines.
  /// Flattened rules count their virtual levels and the step machine its
  /// work-stack height, so the figure matches what plain recursion would
  /// have reported — parses never consume C stack proportional to it.
  size_t PeakDepth = 0;
  /// Arena bytes allocated during the parse — includes nodes built for
  /// alternatives that later failed and memoized subtrees not reachable
  /// from the result, so it bounds (not equals) the tree's footprint.
  size_t ArenaBytesUsed = 0;
  /// Whether this parse recycled a previous parse's TreeStore (true in
  /// the allocation-free steady state).
  bool StoreRecycled = false;
};

} // namespace ipg

#endif // IPG_RUNTIME_ENGINEOPTIONS_H
