//===- runtime/Interp.h - IPG parsing engine --------------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recursive-descent parsing engine implementing the big-step semantics
/// of Figures 8 and 15: biased choice over alternatives, interval-confined
/// subparsers, the start/end/EOI special attributes, arrays, predicates,
/// and the full-language features (switch, local rules, existentials,
/// blackboxes).
///
/// Memoization keys on (rule, absolute slice) as described in Section 3.3,
/// giving the O(n^2) bound; it can be disabled for ablation. The table is
/// an open-addressing flat hash over a 128-bit packed key
/// (support/FlatHash.h re-exporting ipg_rt's implementation, which
/// generated parsers embed too), not a node-based map. Local
/// (where-clause) rules are never memoized because their meaning depends
/// on the enclosing frame, and leaf rules (no subparser-spawning term;
/// ruleSpawnsSubparsers) are skipped because re-matching them is cheaper
/// than a table probe — both halves of the policy are shared with the
/// code generator.
///
/// Hot-path memory discipline: parse trees are built in an arena-backed
/// TreeStore, per-depth frame scratch lives in a pool, and the memo table
/// keeps its capacity across parses. A parse allocates from the heap only
/// while these structures first grow; once the caller drops the previous
/// TreePtr before the next parse() the engine recycles the store and
/// steady-state parsing performs no heap allocation (stats().StoreRecycled
/// reports whether that happened). A successful parse() MOVES store
/// ownership into the returned TreePtr (an intrusive plain refcount — no
/// shared_ptr, no atomics, no per-parse refcount traffic); a dying
/// TreePtr parks its store in the engine's recycler for the next parse.
/// Holding a TreePtr simply makes the next parse() start a fresh store —
/// older trees are never invalidated, and they may outlive the engine.
/// Trees must be shared and released on the engine's thread (the same
/// one-per-thread contract the engine itself has).
///
/// Nontermination handling: the formal semantics simply diverges on
/// grammars that fail termination checking; a practical engine cannot. Two
/// guards exist: MaxDepth aborts the whole parse with a hard error, and
/// (optionally) DetectReentry treats re-entering the same (rule, slice)
/// while it is still being parsed as failure, packrat-style. Both are off
/// the semantics' happy path and covered by dedicated tests.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_RUNTIME_INTERP_H
#define IPG_RUNTIME_INTERP_H

#include "grammar/Grammar.h"
#include "runtime/Blackbox.h"
#include "runtime/Engine.h"
#include "runtime/EngineOptions.h"
#include "runtime/ParseTree.h"
#include "support/Bytes.h"
#include "support/Result.h"

#include <chrono>
#include <cstddef>
#include <memory>

namespace ipg {

/// The interpreter consumes the engine-wide knob/counter structs
/// directly (runtime/EngineOptions.h) so its defaults cannot drift from
/// the generated engine's; the old names remain as aliases.
using InterpOptions = EngineOptions;
using InterpStats = EngineStats;

/// Reusable engine internals (tree store, memo table, frame pool; shared
/// with the bytecode VM — runtime/ParseScratch.h); owned via unique_ptr
/// so the hot-path types stay out of this header.
struct ParseScratch;

/// One engine instance per (grammar, options); parse() may be called many
/// times and results are independent, but the instance recycles its
/// internal storage across calls — see the memory-discipline notes above.
/// Not copyable; create one per thread (or through makeEngine /
/// ParseService, which enforce that).
class Interp : public Engine {
public:
  explicit Interp(const Grammar &G, const BlackboxRegistry *Blackboxes = nullptr,
                  InterpOptions Opts = InterpOptions());
  ~Interp() override;

  /// Parses from the grammar's start symbol.
  Expected<TreePtr> parse(ByteSpan Input) override;
  /// Parses from an explicit (global) start nonterminal.
  Expected<TreePtr> parse(ByteSpan Input, Symbol StartNT);

  /// Statistics of the most recent parse() call.
  const InterpStats &stats() const override { return Stats; }

  const Grammar &grammar() const override { return G; }

  EngineKind kind() const override { return EngineKind::Interp; }

  /// Adopts a store coming home from a FrozenTree round trip: re-binds
  /// it to this engine's recycler and parks it for the next parse().
  /// Declines (returns false) when a parked store already waits.
  bool adoptStore(TreeStore *Store) override;

  /// Deadline support (checked at rule entries / flattened levels /
  /// machine act starts, amortized): a parse past the armed deadline
  /// aborts with Verdict::Timeout.
  bool setDeadline(std::chrono::steady_clock::time_point D) override {
    HasDeadline = true;
    Deadline = D;
    return true;
  }
  void clearDeadline() override { HasDeadline = false; }

private:
  const Grammar &G;
  const BlackboxRegistry *Blackboxes;
  InterpOptions Opts;
  InterpStats Stats;
  std::unique_ptr<ParseScratch> S;
  bool HasDeadline = false;
  std::chrono::steady_clock::time_point Deadline{};
};

} // namespace ipg

#endif // IPG_RUNTIME_INTERP_H
