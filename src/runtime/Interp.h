//===- runtime/Interp.h - IPG parsing engine --------------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recursive-descent parsing engine implementing the big-step semantics
/// of Figures 8 and 15: biased choice over alternatives, interval-confined
/// subparsers, the start/end/EOI special attributes, arrays, predicates,
/// and the full-language features (switch, local rules, existentials,
/// blackboxes).
///
/// Memoization keys on (rule, absolute slice) as described in Section 3.3,
/// giving the O(n^2) bound; it can be disabled for ablation. Local
/// (where-clause) rules are never memoized because their meaning depends on
/// the enclosing frame.
///
/// Nontermination handling: the formal semantics simply diverges on
/// grammars that fail termination checking; a practical engine cannot. Two
/// guards exist: MaxDepth aborts the whole parse with a hard error, and
/// (optionally) DetectReentry treats re-entering the same (rule, slice)
/// while it is still being parsed as failure, packrat-style. Both are off
/// the semantics' happy path and covered by dedicated tests.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_RUNTIME_INTERP_H
#define IPG_RUNTIME_INTERP_H

#include "grammar/Grammar.h"
#include "runtime/Blackbox.h"
#include "runtime/ParseTree.h"
#include "support/Bytes.h"
#include "support/Result.h"

#include <cstddef>

namespace ipg {

struct InterpOptions {
  /// Packrat memoization of (rule, slice) results (Section 3.3).
  bool UseMemo = true;
  /// Treat re-entry of an in-progress (rule, slice) as failure instead of
  /// recursing; off by default for fidelity to the formal semantics.
  bool DetectReentry = false;
  /// Hard limit on parseRule recursion depth.
  size_t MaxDepth = 8192;
};

struct InterpStats {
  size_t NodesCreated = 0;
  size_t TermsExecuted = 0;
  size_t MemoHits = 0;
  size_t MemoMisses = 0;
  size_t PeakDepth = 0;
};

/// One engine instance per (grammar, options); parse() may be called many
/// times and is internally stateless across calls (the memo table is per
/// call).
class Interp {
public:
  explicit Interp(const Grammar &G, const BlackboxRegistry *Blackboxes = nullptr,
                  InterpOptions Opts = InterpOptions());

  /// Parses from the grammar's start symbol.
  Expected<TreePtr> parse(ByteSpan Input);
  /// Parses from an explicit (global) start nonterminal.
  Expected<TreePtr> parse(ByteSpan Input, Symbol StartNT);

  /// Statistics of the most recent parse() call.
  const InterpStats &stats() const { return Stats; }

  const Grammar &grammar() const { return G; }

private:
  const Grammar &G;
  const BlackboxRegistry *Blackboxes;
  InterpOptions Opts;
  InterpStats Stats;
};

} // namespace ipg

#endif // IPG_RUNTIME_INTERP_H
