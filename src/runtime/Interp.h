//===- runtime/Interp.h - IPG parsing engine --------------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recursive-descent parsing engine implementing the big-step semantics
/// of Figures 8 and 15: biased choice over alternatives, interval-confined
/// subparsers, the start/end/EOI special attributes, arrays, predicates,
/// and the full-language features (switch, local rules, existentials,
/// blackboxes).
///
/// Memoization keys on (rule, absolute slice) as described in Section 3.3,
/// giving the O(n^2) bound; it can be disabled for ablation. The table is
/// an open-addressing flat hash over a 128-bit packed key
/// (support/FlatHash.h re-exporting ipg_rt's implementation, which
/// generated parsers embed too), not a node-based map. Local
/// (where-clause) rules are never memoized because their meaning depends
/// on the enclosing frame, and leaf rules (no subparser-spawning term;
/// ruleSpawnsSubparsers) are skipped because re-matching them is cheaper
/// than a table probe — both halves of the policy are shared with the
/// code generator.
///
/// Hot-path memory discipline: parse trees are built in an arena-backed
/// TreeStore, per-depth frame scratch lives in a pool, and the memo table
/// keeps its capacity across parses. A parse allocates from the heap only
/// while these structures first grow; once the caller drops the previous
/// TreePtr before the next parse() the engine recycles the store and
/// steady-state parsing performs no heap allocation (stats().StoreRecycled
/// reports whether that happened). A successful parse() MOVES store
/// ownership into the returned TreePtr (an intrusive plain refcount — no
/// shared_ptr, no atomics, no per-parse refcount traffic); a dying
/// TreePtr parks its store in the engine's recycler for the next parse.
/// Holding a TreePtr simply makes the next parse() start a fresh store —
/// older trees are never invalidated, and they may outlive the engine.
/// Trees must be shared and released on the engine's thread (the same
/// one-per-thread contract the engine itself has).
///
/// Nontermination handling: the formal semantics simply diverges on
/// grammars that fail termination checking; a practical engine cannot. Two
/// guards exist: MaxDepth aborts the whole parse with a hard error, and
/// (optionally) DetectReentry treats re-entering the same (rule, slice)
/// while it is still being parsed as failure, packrat-style. Both are off
/// the semantics' happy path and covered by dedicated tests.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_RUNTIME_INTERP_H
#define IPG_RUNTIME_INTERP_H

#include "grammar/Grammar.h"
#include "runtime/Blackbox.h"
#include "runtime/ParseTree.h"
#include "support/Bytes.h"
#include "support/Result.h"

#include <cstddef>
#include <memory>

namespace ipg {

struct InterpOptions {
  /// Packrat memoization of (rule, slice) results (Section 3.3).
  bool UseMemo = true;
  /// Treat re-entry of an in-progress (rule, slice) as failure instead of
  /// recursing; off by default for fidelity to the formal semantics.
  bool DetectReentry = false;
  /// Hard limit on parseRule recursion depth.
  size_t MaxDepth = 8192;
};

struct InterpStats {
  size_t NodesCreated = 0;
  size_t TermsExecuted = 0;
  size_t MemoHits = 0;
  size_t MemoMisses = 0;
  size_t PeakDepth = 0;
  /// Arena bytes allocated during the parse — includes nodes built for
  /// alternatives that later failed and memoized subtrees not reachable
  /// from the result, so it bounds (not equals) the tree's footprint.
  size_t ArenaBytesUsed = 0;
  /// Whether this parse recycled the previous parse's TreeStore (true in
  /// the allocation-free steady state).
  bool StoreRecycled = false;
};

/// Reusable engine internals (tree store, memo table, frame pool); owned
/// via unique_ptr so the hot-path types stay out of this header.
struct InterpState;

/// One engine instance per (grammar, options); parse() may be called many
/// times and results are independent, but the instance recycles its
/// internal storage across calls — see the memory-discipline notes above.
/// Not copyable; create one per thread.
class Interp {
public:
  explicit Interp(const Grammar &G, const BlackboxRegistry *Blackboxes = nullptr,
                  InterpOptions Opts = InterpOptions());
  ~Interp();
  Interp(const Interp &) = delete;
  Interp &operator=(const Interp &) = delete;

  /// Parses from the grammar's start symbol.
  Expected<TreePtr> parse(ByteSpan Input);
  /// Parses from an explicit (global) start nonterminal.
  Expected<TreePtr> parse(ByteSpan Input, Symbol StartNT);

  /// Statistics of the most recent parse() call.
  const InterpStats &stats() const { return Stats; }

  const Grammar &grammar() const { return G; }

private:
  const Grammar &G;
  const BlackboxRegistry *Blackboxes;
  InterpOptions Opts;
  InterpStats Stats;
  std::unique_ptr<InterpState> S;
};

} // namespace ipg

#endif // IPG_RUNTIME_INTERP_H
