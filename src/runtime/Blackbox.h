//===- runtime/Blackbox.h - Blackbox parser registry ------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Blackbox parsers (paper Section 3.4): legacy parsers reused by handing
/// them an interval-confined slice of the input. A blackbox reports
/// success/failure, an integer value (surfaced as attribute `val`), how
/// many bytes of the slice it consumed (drives the `end` attribute), and
/// optional decoded output bytes (surfaced as a Leaf child) — e.g. the ZIP
/// decompressor of Section 7.
///
/// Blackboxes are assumed to be pure functions of their slice and to
/// terminate; both assumptions mirror the paper's treatment.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_RUNTIME_BLACKBOX_H
#define IPG_RUNTIME_BLACKBOX_H

#include "support/Bytes.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ipg {

struct BlackboxResult {
  bool Ok = false;
  int64_t Value = 0;
  size_t End = 0; ///< one past the last consumed byte, relative to the slice
  std::vector<uint8_t> Output; ///< decoded bytes, if any

  static BlackboxResult failure() { return BlackboxResult(); }
};

using BlackboxFn = std::function<BlackboxResult(ByteSpan)>;

/// What a blackbox INVERSE produces: the encoded bytes that, handed back
/// to the forward blackbox, decode to the same output again. Serializers
/// (serialize/Printer.cpp) call inverses to re-emit the consumed window
/// of a blackbox term; the printer checks the encoding fills the window
/// exactly.
struct BlackboxEncodeResult {
  bool Ok = false;
  std::vector<uint8_t> Bytes;

  static BlackboxEncodeResult failure() { return BlackboxEncodeResult(); }
};

/// A blackbox inverse: re-encodes \p Decoded (the forward blackbox's
/// Output) given \p Value (the forward blackbox's `val` attribute). An
/// inverse must be the deterministic encoder whose output the forward
/// decoder accepts; round-trip exactness additionally requires that the
/// original stream was produced by this same encoder.
using BlackboxInvFn =
    std::function<BlackboxEncodeResult(ByteSpan Decoded, int64_t Value)>;

class BlackboxRegistry {
public:
  void add(std::string Name, BlackboxFn Fn) {
    Fns[std::move(Name)] = std::move(Fn);
  }
  const BlackboxFn *find(const std::string &Name) const {
    auto It = Fns.find(Name);
    return It == Fns.end() ? nullptr : &It->second;
  }

  /// Binds the inverse of the blackbox named \p Name (parsing needs only
  /// the forward direction; printing needs this one too).
  void addInverse(std::string Name, BlackboxInvFn Fn) {
    Invs[std::move(Name)] = std::move(Fn);
  }
  const BlackboxInvFn *findInverse(const std::string &Name) const {
    auto It = Invs.find(Name);
    return It == Invs.end() ? nullptr : &It->second;
  }

private:
  std::map<std::string, BlackboxFn> Fns;
  std::map<std::string, BlackboxInvFn> Invs;
};

} // namespace ipg

#endif // IPG_RUNTIME_BLACKBOX_H
