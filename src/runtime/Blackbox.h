//===- runtime/Blackbox.h - Blackbox parser registry ------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Blackbox parsers (paper Section 3.4): legacy parsers reused by handing
/// them an interval-confined slice of the input. A blackbox reports
/// success/failure, an integer value (surfaced as attribute `val`), how
/// many bytes of the slice it consumed (drives the `end` attribute), and
/// optional decoded output bytes (surfaced as a Leaf child) — e.g. the ZIP
/// decompressor of Section 7.
///
/// Blackboxes are assumed to be pure functions of their slice and to
/// terminate; both assumptions mirror the paper's treatment.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_RUNTIME_BLACKBOX_H
#define IPG_RUNTIME_BLACKBOX_H

#include "support/Bytes.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ipg {

struct BlackboxResult {
  bool Ok = false;
  int64_t Value = 0;
  size_t End = 0; ///< one past the last consumed byte, relative to the slice
  std::vector<uint8_t> Output; ///< decoded bytes, if any

  static BlackboxResult failure() { return BlackboxResult(); }
};

using BlackboxFn = std::function<BlackboxResult(ByteSpan)>;

class BlackboxRegistry {
public:
  void add(std::string Name, BlackboxFn Fn) {
    Fns[std::move(Name)] = std::move(Fn);
  }
  const BlackboxFn *find(const std::string &Name) const {
    auto It = Fns.find(Name);
    return It == Fns.end() ? nullptr : &It->second;
  }

private:
  std::map<std::string, BlackboxFn> Fns;
};

} // namespace ipg

#endif // IPG_RUNTIME_BLACKBOX_H
