//===- runtime/ParseTree.h - IPG parse trees --------------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parse trees of the paper's semantics:
///
///   Tr ::= Node(A, E, Trs) | Array(Trs) | Leaf(s)
///
/// Nodes carry the rule's attribute environment (including the special
/// start/end attributes, already shifted into the parent's coordinate
/// system by rule T-NTSucc). Children are stored in execution order, each
/// tagged with the index of the originating term so tools can navigate by
/// grammar position.
///
/// Representation: every tree object lives in a TreeStore — a bump arena
/// plus a node index — instead of being heap-allocated individually.
/// Children are stored as 32-bit node ids into the owning store (resolved
/// through ChildList/TreeRef views), attribute environments are frozen
/// arena arrays (EnvView), and leaves are zero-copy windows into the input
/// (or into arena-copied blackbox output). T-NTSucc's coordinate shift is
/// lazy: makeShifted creates a view that shares the base node's frozen
/// env and child arrays and records only the delta, which EnvView resolves
/// on start/end reads — no environment is ever copied per child edge. A
/// whole tree costs one intrusive-refcount handle (the TreePtr root) no
/// matter how many vertices it has, and resetting the store reclaims
/// everything at once; see docs/architecture.md ("Runtime hot path").
///
/// Lifetime rules: a tree is valid while (a) its TreePtr (or any copy) is
/// alive and (b) the input buffer it parsed is alive — leaves alias the
/// input. Nodes never move once created: TreeStore growth adds arena
/// blocks, it does not relocate existing ones. The refcount is plain (not
/// atomic): a tree must be shared and released on the thread of the engine
/// that produced it, matching Interp's one-instance-per-thread contract.
///
/// Cross-thread handoff (the ParseService seam) is EXPLICIT, never
/// implicit: TreePtr::detach() turns the sole handle into a FrozenTree —
/// an owning, immutable, move-only tree whose store has been unbound from
/// its engine's recycler. Detaching is the single mutation point and must
/// happen on the engine's thread; after it the store has no refcount
/// traffic and no recycler rendezvous left, so the FrozenTree may be
/// read and destroyed on ANY thread (synchronize the handoff itself — a
/// promise/future or queue — as with any published object). No atomics
/// are involved at any point: the hot path stays plain, and thread
/// safety comes from ownership being exclusive by construction. Builds
/// with -DIPG_CHECK_OWNERSHIP=1 additionally record the owning thread
/// per store and abort on a TreePtr touched from any other thread.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_RUNTIME_PARSETREE_H
#define IPG_RUNTIME_PARSETREE_H

#include "grammar/Grammar.h"
#include "runtime/Env.h"
#include "support/Arena.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifdef IPG_CHECK_OWNERSHIP
#include <cstdio>
#include <cstdlib>
#include <thread>
#endif

#if IPG_ATOMIC_REFCOUNT
#include <atomic>
#endif

namespace ipg {

class TreeStore;
class NodeTree;
class ArrayTree;
class LeafTree;

class ParseTree {
public:
  enum class Kind : uint8_t { Node, Array, Leaf };

  Kind kind() const { return K; }

protected:
  explicit ParseTree(Kind K) : K(K) {}
  ~ParseTree() = default; // never deleted through the base; arena-owned

private:
  Kind K;
};

/// A borrowed pointer to a tree object, with the accessor surface of the
/// shared_ptr this representation replaced (get/*/->). Owns nothing: the
/// TreeStore (via TreePtr) keeps the object alive.
class TreeRef {
public:
  TreeRef() = default;
  /*implicit*/ TreeRef(const ParseTree *P) : P(P) {}

  const ParseTree *get() const { return P; }
  const ParseTree &operator*() const { return *P; }
  const ParseTree *operator->() const { return P; }
  explicit operator bool() const { return P != nullptr; }

private:
  const ParseTree *P = nullptr;
};

/// An immutable, arena-frozen attribute environment. A view may carry the
/// lazy T-NTSucc delta of a shifted node: the underlying slots are shared
/// with the unshifted base node, and the shift is applied to the special
/// start/end keys at read time (get and iteration both resolve it, so no
/// reader can observe unshifted coordinates).
class EnvView {
public:
  EnvView() = default;
  EnvView(const EnvSlot *Slots, uint32_t NumSlots, int64_t Shift = 0,
          Symbol SyStart = InvalidSymbol, Symbol SyEnd = InvalidSymbol)
      : Slots(Slots), NumSlots(NumSlots), Shift(Shift), SyStart(SyStart),
        SyEnd(SyEnd) {}

  /// Slot \p I with the view's lazy shift resolved.
  EnvSlot slot(uint32_t I) const {
    EnvSlot S = Slots[I];
    if (Shift != 0 && (S.Key == SyStart || S.Key == SyEnd))
      S.Value += Shift;
    return S;
  }

  std::optional<int64_t> get(Symbol S) const {
    for (uint32_t I = 0; I < NumSlots; ++I)
      if (Slots[I].Key == S)
        return slot(I).Value;
    return std::nullopt;
  }

  size_t size() const { return NumSlots; }

  /// Iteration yields resolved EnvSlots by value (the storage itself is
  /// shared with the base node and must not leak unshifted).
  class iterator {
  public:
    iterator(const EnvView *V, uint32_t I) : V(V), I(I) {}
    EnvSlot operator*() const { return V->slot(I); }
    iterator &operator++() {
      ++I;
      return *this;
    }
    bool operator!=(const iterator &O) const { return I != O.I; }

  private:
    const EnvView *V;
    uint32_t I;
  };
  iterator begin() const { return iterator(this, 0); }
  iterator end() const { return iterator(this, NumSlots); }

private:
  const EnvSlot *Slots = nullptr;
  uint32_t NumSlots = 0;
  int64_t Shift = 0;
  Symbol SyStart = InvalidSymbol;
  Symbol SyEnd = InvalidSymbol;
};

/// A view over a node's children: 32-bit ids resolved lazily against the
/// owning TreeStore. Indexing yields TreeRef so existing call sites
/// (`children()[0].get()`) read unchanged.
class ChildList {
public:
  ChildList() = default;
  ChildList(const TreeStore *Store, const uint32_t *Ids, uint32_t Count)
      : Store(Store), Ids(Ids), Count(Count) {}

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  inline TreeRef operator[](size_t I) const;

  class iterator {
  public:
    iterator(const ChildList *L, size_t I) : L(L), I(I) {}
    TreeRef operator*() const { return (*L)[I]; }
    iterator &operator++() {
      ++I;
      return *this;
    }
    bool operator!=(const iterator &O) const { return I != O.I; }

  private:
    const ChildList *L;
    size_t I;
  };
  iterator begin() const { return iterator(this, 0); }
  iterator end() const { return iterator(this, Count); }

private:
  const TreeStore *Store = nullptr;
  const uint32_t *Ids = nullptr;
  uint32_t Count = 0;
};

/// Node(A, E, Trs): a successful parse of one nonterminal (or blackbox).
class NodeTree : public ParseTree {
public:
  NodeTree(const TreeStore *Owner, Symbol Name, RuleId Rule,
           const EnvSlot *Slots, uint32_t NumSlots, const uint32_t *ChildIds,
           const uint32_t *ChildTermIdx, uint32_t NumChildren)
      : ParseTree(Kind::Node), Owner(Owner), Name(Name), Rule(Rule),
        Slots(Slots), NumSlots(NumSlots), ChildIds(ChildIds),
        ChildTermIdx(ChildTermIdx), NumChildren(NumChildren) {}
  static bool classof(const ParseTree *T) { return T->kind() == Kind::Node; }

  Symbol name() const { return Name; }
  RuleId rule() const { return Rule; }
  inline EnvView env() const; // resolves the lazy shift (below)
  ChildList children() const {
    return ChildList(Owner, ChildIds, NumChildren);
  }
  /// Originating term index of child \p I (grammar-position navigation).
  uint32_t childTermIndex(size_t I) const {
    assert(I < NumChildren && "child index out of range");
    return ChildTermIdx[I];
  }

  std::optional<int64_t> attr(Symbol S) const { return env().get(S); }

  /// The lazy T-NTSucc delta of this view: the offset of the node's own
  /// local coordinate frame within its parent's (0 for directly built
  /// nodes). Child ids and leaf offsets under this node are stored in the
  /// node's local frame, so a serializer walking the tree accumulates
  /// exactly this delta per edge to recover absolute positions.
  int64_t shift() const { return Shift; }

  /// The most recent child node named \p ChildName (nullptr if none).
  const NodeTree *childNode(Symbol ChildName) const;
  /// The most recent child array whose elements are named \p ElemName.
  const ArrayTree *childArray(Symbol ElemName) const;

private:
  friend class TreeStore; // makeShifted shares the env/child arrays

  const TreeStore *Owner;
  Symbol Name;
  RuleId Rule;
  const EnvSlot *Slots;
  uint32_t NumSlots;
  const uint32_t *ChildIds;
  const uint32_t *ChildTermIdx;
  uint32_t NumChildren;
  /// Lazy T-NTSucc delta of a shifted view (0 for directly built nodes).
  /// Applied to the start/end attributes by env(); everything else in the
  /// node — slots, children — is shared with the unshifted base.
  int64_t Shift = 0;
};

/// Array(Trs): the result of a for-term; elements are NodeTrees.
class ArrayTree : public ParseTree {
public:
  ArrayTree(const TreeStore *Owner, Symbol Elem, const uint32_t *ElemIds,
            uint32_t NumElems)
      : ParseTree(Kind::Array), Owner(Owner), Elem(Elem), ElemIds(ElemIds),
        NumElems(NumElems) {}
  static bool classof(const ParseTree *T) {
    return T->kind() == Kind::Array;
  }

  Symbol elemName() const { return Elem; }
  ChildList elements() const { return ChildList(Owner, ElemIds, NumElems); }
  size_t size() const { return NumElems; }
  const NodeTree *element(size_t I) const;

private:
  const TreeStore *Owner;
  Symbol Elem;
  const uint32_t *ElemIds;
  uint32_t NumElems;
};

/// Leaf(s): a matched terminal (or blackbox output bytes). Offset is
/// relative to the enclosing node's local input. Leaves are zero-copy:
/// terminal and wildcard (`raw`) leaves alias the input buffer — the
/// behaviour Section 7 credits for the ZIP result — and blackbox output
/// leaves alias an arena copy of the decoded bytes. An opaque leaf is a
/// wildcard match whose bytes were never inspected.
///
/// A HOLE is an opaque leaf with a rule name attached: under
/// RecoveryPolicy::Salvage it stands in for a subparse that failed over
/// an already-resolved interval, aliasing the damaged bytes exactly as a
/// `raw` match would. Hole-ness changes nothing about how the leaf
/// prints or walks — only isHole()/holeRule() and the verdict machinery
/// observe it.
class LeafTree : public ParseTree {
public:
  LeafTree(const uint8_t *Data, size_t Length, int64_t Offset, bool Opaque,
           Symbol Hole = InvalidSymbol)
      : ParseTree(Kind::Leaf), Data(Data), Length(Length), Offset(Offset),
        Opaque(Opaque), Hole(Hole) {}
  static bool classof(const ParseTree *T) { return T->kind() == Kind::Leaf; }

  std::string_view bytes() const {
    return std::string_view(reinterpret_cast<const char *>(Data), Length);
  }
  int64_t offset() const { return Offset; }
  size_t length() const { return Length; }
  bool isOpaque() const { return Opaque; }
  bool isHole() const { return Hole != InvalidSymbol; }
  /// The rule (or terminal owner) whose failed subparse this hole fences;
  /// InvalidSymbol for ordinary leaves.
  Symbol holeRule() const { return Hole; }

private:
  const uint8_t *Data;
  size_t Length;
  int64_t Offset;
  bool Opaque;
  Symbol Hole;
};

/// Owns every tree object of one (or, when reused, the latest) parse: a
/// bump arena for the objects themselves plus the id -> object index that
/// children are stored against. Create through the builder methods only;
/// reset() invalidates everything built so far and starts over with the
/// same memory.
///
/// Sharing: a store handed out by an engine carries a plain intrusive
/// refcount manipulated by TreePtr — no shared_ptr, no atomics, no
/// control-block allocation, and no refcount traffic on the parse result
/// path (the engine MOVES its ownership into the returned TreePtr). When
/// the last TreePtr dies the store parks itself in its owner's Recycler
/// instead of deallocating, which is how a dropped result becomes the
/// next parse's recycled store; a store without a recycler (or whose
/// owner died, or whose recycler is already holding one) deletes itself.
class TreeStore {
public:
  /// The rendezvous between an engine and the stores it loaned out.
  /// Heap-allocated by the engine and shared with every store it creates;
  /// whoever is last (engine or final TreePtr) frees it.
  struct Recycler {
    TreeStore *Returned = nullptr; ///< at most one store parked for reuse
    bool OwnerAlive = true;        ///< engine still exists
    size_t LiveStores = 0;         ///< stores bound to this recycler
  };

  explicit TreeStore(Recycler *Pool = nullptr) : Pool(Pool) {
    if (Pool)
      ++Pool->LiveStores;
#ifdef IPG_CHECK_OWNERSHIP
    Owner = std::this_thread::get_id();
#endif
  }
  TreeStore(const TreeStore &) = delete;
  TreeStore &operator=(const TreeStore &) = delete;

  /// Severs the store from its recycler: the engine will never see it
  /// again, and release()/destroy() paths stop rendezvousing with the
  /// engine's Recycler entirely. This is what makes a detached tree safe
  /// to destroy on another thread. Must run on the owning engine's
  /// thread (it touches the Recycler's plain counters).
  void unbindRecycler() {
    if (!Pool)
      return;
    Recycler *P = Pool;
    Pool = nullptr;
    if (--P->LiveStores == 0 && !P->OwnerAlive)
      delete P;
  }

  /// Re-binds a store that came home from a cross-thread trip (see
  /// Engine::adoptStore) to \p P. The store must be unbound and the call
  /// must run on the adopting engine's thread, which becomes the owner.
  void bindRecycler(Recycler *P) {
    assert(!Pool && "bindRecycler on a store that still has a recycler");
    Pool = P;
    if (P)
      ++P->LiveStores;
#ifdef IPG_CHECK_OWNERSHIP
    Owner = std::this_thread::get_id();
#endif
  }

  /// Deletes \p S and, when it was the recycler's last store and the
  /// owner is already gone, the recycler too.
  static void destroy(TreeStore *S) {
    Recycler *P = S->Pool;
    delete S;
    if (P && --P->LiveStores == 0 && !P->OwnerAlive)
      delete P;
  }

  const ParseTree *node(uint32_t Id) const {
    assert(Id < Nodes.size() && "node id out of range");
    return Nodes[Id];
  }
  size_t nodeCount() const { return Nodes.size(); }
  size_t arenaBytesUsed() const { return Mem.bytesAllocated(); }
  size_t arenaBytesReserved() const { return Mem.bytesReserved(); }

  /// Freezes \p E and the child id/term-index arrays into the arena and
  /// creates a node. The spans may point at reusable scratch storage.
  uint32_t makeNode(Symbol Name, RuleId Rule, const Env &E,
                    const uint32_t *ChildIds, const uint32_t *ChildTermIdx,
                    uint32_t NumChildren) {
    return makeNodeFromSlots(Name, Rule, E.data(),
                             static_cast<uint32_t>(E.size()), ChildIds,
                             ChildTermIdx, NumChildren);
  }

  uint32_t makeNodeFromSlots(Symbol Name, RuleId Rule, const EnvSlot *Slots,
                             uint32_t NumSlots, const uint32_t *ChildIds,
                             const uint32_t *ChildTermIdx,
                             uint32_t NumChildren) {
    const EnvSlot *Frozen = Mem.copyArray(Slots, NumSlots);
    const uint32_t *Ids = Mem.copyArray(ChildIds, NumChildren);
    const uint32_t *Terms = Mem.copyArray(ChildTermIdx, NumChildren);
    return addNode(Mem.make<NodeTree>(this, Name, Rule, Frozen, NumSlots,
                                      Ids, Terms, NumChildren));
  }

  /// Lazy shifted view of node \p BaseId (T-NTSucc): shares the frozen
  /// env and child arrays of the base node and records Delta for
  /// read-time resolution — no slot is copied. A zero delta needs no
  /// view at all (the base id is returned), and shifting an existing
  /// view composes the deltas. \p BaseId must name a NodeTree.
  uint32_t makeShifted(uint32_t BaseId, int64_t Delta, Symbol SymStart,
                       Symbol SymEnd);

  /// The start/end symbols shifted views resolve against (recorded by
  /// makeShifted; InvalidSymbol until the first shift, when no view can
  /// exist yet).
  Symbol shiftStartSym() const { return ShiftStartSym; }
  Symbol shiftEndSym() const { return ShiftEndSym; }

  uint32_t makeArray(Symbol Elem, const uint32_t *ElemIds,
                     uint32_t NumElems) {
    const uint32_t *Ids = Mem.copyArray(ElemIds, NumElems);
    return addNode(Mem.make<ArrayTree>(this, Elem, Ids, NumElems));
  }

  /// Zero-copy leaf aliasing \p Data (input bytes; caller guarantees they
  /// outlive the tree).
  uint32_t makeLeaf(const uint8_t *Data, size_t Length, int64_t Offset,
                    bool Opaque) {
    return addNode(Mem.make<LeafTree>(Data, Length, Offset, Opaque));
  }

  /// Hole leaf: a zero-copy opaque window over bytes a failed subparse of
  /// \p Rule should have covered (RecoveryPolicy::Salvage).
  uint32_t makeHole(const uint8_t *Data, size_t Length, int64_t Offset,
                    Symbol Rule) {
    return addNode(
        Mem.make<LeafTree>(Data, Length, Offset, /*Opaque=*/true, Rule));
  }

  /// Leaf over an arena-owned copy of \p Data (blackbox output).
  uint32_t makeLeafCopy(const void *Data, size_t Length, int64_t Offset) {
    return addNode(
        Mem.make<LeafTree>(Mem.copyBytes(Data, Length), Length, Offset,
                           /*Opaque=*/false));
  }

  /// Invalidates every node built so far; keeps arena blocks and index
  /// capacity so a reused store reaches an allocation-free steady state.
  void reset() {
    Mem.reset();
    Nodes.clear();
  }

private:
  friend class TreePtr;

  uint32_t addNode(const ParseTree *T) {
    Nodes.push_back(T);
    return static_cast<uint32_t>(Nodes.size() - 1);
  }

#ifdef IPG_CHECK_OWNERSHIP
  /// Debug-only single-mutator enforcement: every refcount touch must
  /// happen on the thread that owns the store (a default-constructed id
  /// — set by detach — disables the check: FrozenTree destruction is
  /// legal anywhere). Abort, not assert: the TSan job runs release
  /// builds too.
  void checkOwner() const {
    if (Owner == std::thread::id() || Owner == std::this_thread::get_id())
      return;
    std::fprintf(stderr,
                 "ipg: TreePtr refcount touched off the owning engine "
                 "thread (detach() first)\n");
    std::abort();
  }
#endif

  void retain() const {
#if IPG_ATOMIC_REFCOUNT
    // Opt-in shared-tree mode: handles may be copied on any thread, so
    // taking a reference needs no ordering beyond the count itself.
    RefCount.fetch_add(1, std::memory_order_relaxed);
#else
#ifdef IPG_CHECK_OWNERSHIP
    checkOwner();
#endif
    ++RefCount;
#endif
  }
  /// Drops one reference; on the last one the store parks itself in its
  /// recycler (owner alive, slot free) or deletes itself.
  void release() const {
#if IPG_ATOMIC_REFCOUNT
    // acq_rel so the final releaser observes every other thread's reads
    // of the tree before tearing it down (the shared_ptr discipline).
    // Cross-thread handle traffic is safe against itself; the FINAL
    // release still races the owning engine's recycler unless the
    // consumers are joined first — the documented contract for this
    // opt-in is "fan out read-only, join, then let the engine reuse".
    size_t Prev = RefCount.fetch_sub(1, std::memory_order_acq_rel);
    assert(Prev > 0 && "release without retain");
    if (Prev > 1)
      return;
#else
#ifdef IPG_CHECK_OWNERSHIP
    checkOwner();
#endif
    assert(RefCount > 0 && "release without retain");
    if (--RefCount > 0)
      return;
#endif
    TreeStore *Self = const_cast<TreeStore *>(this);
    if (Pool && Pool->OwnerAlive && !Pool->Returned) {
      Pool->Returned = Self;
      return;
    }
    destroy(Self);
  }

  Arena Mem;
  std::vector<const ParseTree *> Nodes;
  Recycler *Pool = nullptr;
#if IPG_ATOMIC_REFCOUNT
  /// Opt-in (CMake IPG_ATOMIC_REFCOUNT): atomic count so TreePtr copies
  /// may be shared across threads. The default plain count stays the hot
  /// path — atomics cost a lock-prefixed op per handle copy/drop.
  mutable std::atomic<size_t> RefCount{0};
#else
  mutable size_t RefCount = 0; ///< plain count: engine-thread only
#endif
  Symbol ShiftStartSym = InvalidSymbol;
  Symbol ShiftEndSym = InvalidSymbol;
#ifdef IPG_CHECK_OWNERSHIP
  /// The thread allowed to touch the refcount; default-constructed after
  /// detach() (meaning: any thread may destroy, none may share).
  std::thread::id Owner;
#endif
};

inline TreeRef ChildList::operator[](size_t I) const {
  assert(I < Count && "child index out of range");
  return TreeRef(Store->node(Ids[I]));
}

inline EnvView NodeTree::env() const {
  return EnvView(Slots, NumSlots, Shift,
                 Owner ? Owner->shiftStartSym() : InvalidSymbol,
                 Owner ? Owner->shiftEndSym() : InvalidSymbol);
}

/// The root handle of a parse: shares ownership of the TreeStore (one
/// plain intrusive refcount for the whole tree — the engine's result path
/// moves ownership in without touching it) and points at the root node.
/// When the last handle dies the store returns to its engine's recycler,
/// so dropping a result is what arms the next parse's allocation-free
/// store reuse. NOT thread-safe: copy, pass, and destroy handles on the
/// owning engine's thread only.
class TreePtr {
public:
  TreePtr() = default;
  /// Takes one reference on \p Store (pass the store's sole reference to
  /// realize the move-out result path: refcount 0 -> 1, no sharing).
  TreePtr(const TreeStore *Store, const ParseTree *Root)
      : Store(Store), Root(Root) {
    if (Store)
      Store->retain();
  }
  TreePtr(const TreePtr &O) : TreePtr(O.Store, O.Root) {}
  TreePtr(TreePtr &&O) noexcept : Store(O.Store), Root(O.Root) {
    O.Store = nullptr;
    O.Root = nullptr;
  }
  TreePtr &operator=(const TreePtr &O) {
    TreePtr Tmp(O);
    swap(Tmp);
    return *this;
  }
  TreePtr &operator=(TreePtr &&O) noexcept {
    TreePtr Tmp(std::move(O));
    swap(Tmp);
    return *this;
  }
  ~TreePtr() {
    if (Store)
      Store->release();
  }

  void swap(TreePtr &O) noexcept {
    std::swap(Store, O.Store);
    std::swap(Root, O.Root);
  }

  const ParseTree *get() const { return Root; }
  const ParseTree &operator*() const { return *Root; }
  const ParseTree *operator->() const { return Root; }
  explicit operator bool() const { return Root != nullptr; }

  const TreeStore *store() const { return Store; }

  /// Turns this — the SOLE handle on its store — into a FrozenTree and
  /// empties the TreePtr. The one legal way to move a parse result off
  /// the engine's thread: the store is unbound from the engine's
  /// recycler here, on the engine's thread, so nothing about the frozen
  /// tree ever rendezvouses with the engine again. Asserts sole
  /// ownership (copies would still hold plain refcounts).
  inline class FrozenTree detach();

private:
  const TreeStore *Store = nullptr;
  const ParseTree *Root = nullptr;
};

/// An owning, immutable parse result with NO ties left to the engine
/// that produced it: move-only (exclusive ownership — no refcount, no
/// atomics), safe to read and to destroy on any thread once the handoff
/// itself is synchronized (promise/future, queue). Destruction frees the
/// store; releaseStore() instead surrenders it intact so a pool can
/// route it back to a worker for Engine::adoptStore (the ParseService
/// steady-state path).
class FrozenTree {
public:
  FrozenTree() = default;
  FrozenTree(const FrozenTree &) = delete;
  FrozenTree &operator=(const FrozenTree &) = delete;
  FrozenTree(FrozenTree &&O) noexcept : Store(O.Store), Root(O.Root) {
    O.Store = nullptr;
    O.Root = nullptr;
  }
  FrozenTree &operator=(FrozenTree &&O) noexcept {
    std::swap(Store, O.Store);
    std::swap(Root, O.Root);
    return *this;
  }
  ~FrozenTree() {
    if (Store)
      TreeStore::destroy(Store);
  }

  const ParseTree *get() const { return Root; }
  const ParseTree &operator*() const { return *Root; }
  const ParseTree *operator->() const { return Root; }
  explicit operator bool() const { return Root != nullptr; }

  const TreeStore *store() const { return Store; }

  /// Gives up the store (and invalidates the tree). The caller owns it:
  /// destroy it with TreeStore::destroy or hand it to an engine via
  /// Engine::adoptStore on that engine's thread.
  TreeStore *releaseStore() {
    TreeStore *S = Store;
    Store = nullptr;
    Root = nullptr;
    return S;
  }

private:
  friend class TreePtr;
  FrozenTree(TreeStore *Store, const ParseTree *Root)
      : Store(Store), Root(Root) {}

  TreeStore *Store = nullptr;
  const ParseTree *Root = nullptr;
};

inline FrozenTree TreePtr::detach() {
  if (!Store)
    return FrozenTree();
  assert(Store->RefCount == 1 &&
         "detach() requires the sole TreePtr on the store");
  TreeStore *S = const_cast<TreeStore *>(Store);
  S->RefCount = 0; // exclusive from here on: no handle counting
  S->unbindRecycler();
#ifdef IPG_CHECK_OWNERSHIP
  S->Owner = std::thread::id(); // any thread may destroy a frozen tree
#endif
  const ParseTree *R = Root;
  Store = nullptr;
  Root = nullptr;
  return FrozenTree(S, R);
}

/// Total number of tree objects under \p T (diagnostics / benchmarks).
size_t treeSize(const ParseTree &T);

/// One hole reachable from a salvaged tree: the rule whose subparse
/// failed and the ABSOLUTE byte interval [Lo, Hi) the hole covers
/// (shifts of memoized/re-anchored ancestors already applied, exactly as
/// the Printer resolves them).
struct HoleRecord {
  Symbol Rule;
  int64_t Lo;
  int64_t Hi;
};

/// Collects every hole leaf reachable from \p Root, in pre-order, with
/// absolute intervals.
void collectHoles(const ParseTree &Root, std::vector<HoleRecord> &Out);

/// Number of hole leaves reachable from \p Root (the Salvage verdict
/// basis: 0 holes = Accept).
size_t countHoles(const ParseTree &Root);

/// Multi-line debug rendering.
std::string treeToString(const ParseTree &T, const StringInterner &Names,
                         int Indent = 0);

} // namespace ipg

#endif // IPG_RUNTIME_PARSETREE_H
