//===- runtime/ParseTree.h - IPG parse trees --------------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parse trees of the paper's semantics:
///
///   Tr ::= Node(A, E, Trs) | Array(Trs) | Leaf(s)
///
/// Nodes carry the rule's attribute environment (including the special
/// start/end attributes, already shifted into the parent's coordinate
/// system by rule T-NTSucc). Children are stored in execution order, each
/// tagged with the index of the originating term so tools can navigate by
/// grammar position.
///
/// Representation: every tree object lives in a TreeStore — a bump arena
/// plus a node index — instead of being heap-allocated individually.
/// Children are stored as 32-bit node ids into the owning store (resolved
/// through ChildList/TreeRef views), attribute environments are frozen
/// arena arrays (EnvView), and leaves are zero-copy windows into the input
/// (or into arena-copied blackbox output). A whole tree therefore costs one
/// shared_ptr (the TreePtr root handle) no matter how many vertices it has,
/// and resetting the store reclaims everything at once; see
/// docs/architecture.md ("Runtime hot path").
///
/// Lifetime rules: a tree is valid while (a) its TreePtr (or any copy) is
/// alive and (b) the input buffer it parsed is alive — leaves alias the
/// input. Nodes never move once created: TreeStore growth adds arena
/// blocks, it does not relocate existing ones.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_RUNTIME_PARSETREE_H
#define IPG_RUNTIME_PARSETREE_H

#include "grammar/Grammar.h"
#include "runtime/Env.h"
#include "support/Arena.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ipg {

class TreeStore;
class NodeTree;
class ArrayTree;
class LeafTree;

class ParseTree {
public:
  enum class Kind : uint8_t { Node, Array, Leaf };

  Kind kind() const { return K; }

protected:
  explicit ParseTree(Kind K) : K(K) {}
  ~ParseTree() = default; // never deleted through the base; arena-owned

private:
  Kind K;
};

/// A borrowed pointer to a tree object, with the accessor surface of the
/// shared_ptr this representation replaced (get/*/->). Owns nothing: the
/// TreeStore (via TreePtr) keeps the object alive.
class TreeRef {
public:
  TreeRef() = default;
  /*implicit*/ TreeRef(const ParseTree *P) : P(P) {}

  const ParseTree *get() const { return P; }
  const ParseTree &operator*() const { return *P; }
  const ParseTree *operator->() const { return P; }
  explicit operator bool() const { return P != nullptr; }

private:
  const ParseTree *P = nullptr;
};

/// An immutable, arena-frozen attribute environment.
class EnvView {
public:
  EnvView() = default;
  EnvView(const EnvSlot *Slots, uint32_t NumSlots)
      : Slots(Slots), NumSlots(NumSlots) {}

  std::optional<int64_t> get(Symbol S) const {
    for (uint32_t I = 0; I < NumSlots; ++I)
      if (Slots[I].Key == S)
        return Slots[I].Value;
    return std::nullopt;
  }

  size_t size() const { return NumSlots; }
  const EnvSlot *begin() const { return Slots; }
  const EnvSlot *end() const { return Slots + NumSlots; }

private:
  const EnvSlot *Slots = nullptr;
  uint32_t NumSlots = 0;
};

/// A view over a node's children: 32-bit ids resolved lazily against the
/// owning TreeStore. Indexing yields TreeRef so existing call sites
/// (`children()[0].get()`) read unchanged.
class ChildList {
public:
  ChildList() = default;
  ChildList(const TreeStore *Store, const uint32_t *Ids, uint32_t Count)
      : Store(Store), Ids(Ids), Count(Count) {}

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  inline TreeRef operator[](size_t I) const;

  class iterator {
  public:
    iterator(const ChildList *L, size_t I) : L(L), I(I) {}
    TreeRef operator*() const { return (*L)[I]; }
    iterator &operator++() {
      ++I;
      return *this;
    }
    bool operator!=(const iterator &O) const { return I != O.I; }

  private:
    const ChildList *L;
    size_t I;
  };
  iterator begin() const { return iterator(this, 0); }
  iterator end() const { return iterator(this, Count); }

private:
  const TreeStore *Store = nullptr;
  const uint32_t *Ids = nullptr;
  uint32_t Count = 0;
};

/// Node(A, E, Trs): a successful parse of one nonterminal (or blackbox).
class NodeTree : public ParseTree {
public:
  NodeTree(const TreeStore *Owner, Symbol Name, RuleId Rule,
           const EnvSlot *Slots, uint32_t NumSlots, const uint32_t *ChildIds,
           const uint32_t *ChildTermIdx, uint32_t NumChildren)
      : ParseTree(Kind::Node), Owner(Owner), Name(Name), Rule(Rule),
        Slots(Slots), NumSlots(NumSlots), ChildIds(ChildIds),
        ChildTermIdx(ChildTermIdx), NumChildren(NumChildren) {}
  static bool classof(const ParseTree *T) { return T->kind() == Kind::Node; }

  Symbol name() const { return Name; }
  RuleId rule() const { return Rule; }
  EnvView env() const { return EnvView(Slots, NumSlots); }
  ChildList children() const {
    return ChildList(Owner, ChildIds, NumChildren);
  }
  /// Originating term index of child \p I (grammar-position navigation).
  uint32_t childTermIndex(size_t I) const {
    assert(I < NumChildren && "child index out of range");
    return ChildTermIdx[I];
  }

  std::optional<int64_t> attr(Symbol S) const { return env().get(S); }

  /// The most recent child node named \p ChildName (nullptr if none).
  const NodeTree *childNode(Symbol ChildName) const;
  /// The most recent child array whose elements are named \p ElemName.
  const ArrayTree *childArray(Symbol ElemName) const;

private:
  friend class TreeStore; // makeShifted shares the child arrays

  const TreeStore *Owner;
  Symbol Name;
  RuleId Rule;
  const EnvSlot *Slots;
  uint32_t NumSlots;
  const uint32_t *ChildIds;
  const uint32_t *ChildTermIdx;
  uint32_t NumChildren;
};

/// Array(Trs): the result of a for-term; elements are NodeTrees.
class ArrayTree : public ParseTree {
public:
  ArrayTree(const TreeStore *Owner, Symbol Elem, const uint32_t *ElemIds,
            uint32_t NumElems)
      : ParseTree(Kind::Array), Owner(Owner), Elem(Elem), ElemIds(ElemIds),
        NumElems(NumElems) {}
  static bool classof(const ParseTree *T) {
    return T->kind() == Kind::Array;
  }

  Symbol elemName() const { return Elem; }
  ChildList elements() const { return ChildList(Owner, ElemIds, NumElems); }
  size_t size() const { return NumElems; }
  const NodeTree *element(size_t I) const;

private:
  const TreeStore *Owner;
  Symbol Elem;
  const uint32_t *ElemIds;
  uint32_t NumElems;
};

/// Leaf(s): a matched terminal (or blackbox output bytes). Offset is
/// relative to the enclosing node's local input. Leaves are zero-copy:
/// terminal and wildcard (`raw`) leaves alias the input buffer — the
/// behaviour Section 7 credits for the ZIP result — and blackbox output
/// leaves alias an arena copy of the decoded bytes. An opaque leaf is a
/// wildcard match whose bytes were never inspected.
class LeafTree : public ParseTree {
public:
  LeafTree(const uint8_t *Data, size_t Length, int64_t Offset, bool Opaque)
      : ParseTree(Kind::Leaf), Data(Data), Length(Length), Offset(Offset),
        Opaque(Opaque) {}
  static bool classof(const ParseTree *T) { return T->kind() == Kind::Leaf; }

  std::string_view bytes() const {
    return std::string_view(reinterpret_cast<const char *>(Data), Length);
  }
  int64_t offset() const { return Offset; }
  size_t length() const { return Length; }
  bool isOpaque() const { return Opaque; }

private:
  const uint8_t *Data;
  size_t Length;
  int64_t Offset;
  bool Opaque;
};

/// Owns every tree object of one (or, when reused, the latest) parse: a
/// bump arena for the objects themselves plus the id -> object index that
/// children are stored against. Create through the builder methods only;
/// reset() invalidates everything built so far and starts over with the
/// same memory.
class TreeStore {
public:
  TreeStore() = default;
  TreeStore(const TreeStore &) = delete;
  TreeStore &operator=(const TreeStore &) = delete;

  const ParseTree *node(uint32_t Id) const {
    assert(Id < Nodes.size() && "node id out of range");
    return Nodes[Id];
  }
  size_t nodeCount() const { return Nodes.size(); }
  size_t arenaBytesUsed() const { return Mem.bytesAllocated(); }
  size_t arenaBytesReserved() const { return Mem.bytesReserved(); }

  /// Freezes \p E and the child id/term-index arrays into the arena and
  /// creates a node. The spans may point at reusable scratch storage.
  uint32_t makeNode(Symbol Name, RuleId Rule, const Env &E,
                    const uint32_t *ChildIds, const uint32_t *ChildTermIdx,
                    uint32_t NumChildren) {
    return makeNodeFromSlots(Name, Rule, E.data(),
                             static_cast<uint32_t>(E.size()), ChildIds,
                             ChildTermIdx, NumChildren);
  }

  uint32_t makeNodeFromSlots(Symbol Name, RuleId Rule, const EnvSlot *Slots,
                             uint32_t NumSlots, const uint32_t *ChildIds,
                             const uint32_t *ChildTermIdx,
                             uint32_t NumChildren) {
    const EnvSlot *Frozen = Mem.copyArray(Slots, NumSlots);
    const uint32_t *Ids = Mem.copyArray(ChildIds, NumChildren);
    const uint32_t *Terms = Mem.copyArray(ChildTermIdx, NumChildren);
    return addNode(Mem.make<NodeTree>(this, Name, Rule, Frozen, NumSlots,
                                      Ids, Terms, NumChildren));
  }

  /// Shallow copy of \p N with start/end shifted by \p Delta (T-NTSucc);
  /// children arrays are shared with the original.
  uint32_t makeShifted(const NodeTree &N, int64_t Delta, Symbol SymStart,
                       Symbol SymEnd);

  uint32_t makeArray(Symbol Elem, const uint32_t *ElemIds,
                     uint32_t NumElems) {
    const uint32_t *Ids = Mem.copyArray(ElemIds, NumElems);
    return addNode(Mem.make<ArrayTree>(this, Elem, Ids, NumElems));
  }

  /// Zero-copy leaf aliasing \p Data (input bytes; caller guarantees they
  /// outlive the tree).
  uint32_t makeLeaf(const uint8_t *Data, size_t Length, int64_t Offset,
                    bool Opaque) {
    return addNode(Mem.make<LeafTree>(Data, Length, Offset, Opaque));
  }

  /// Leaf over an arena-owned copy of \p Data (blackbox output).
  uint32_t makeLeafCopy(const void *Data, size_t Length, int64_t Offset) {
    return addNode(
        Mem.make<LeafTree>(Mem.copyBytes(Data, Length), Length, Offset,
                           /*Opaque=*/false));
  }

  /// Invalidates every node built so far; keeps arena blocks and index
  /// capacity so a reused store reaches an allocation-free steady state.
  void reset() {
    Mem.reset();
    Nodes.clear();
  }

private:
  uint32_t addNode(const ParseTree *T) {
    Nodes.push_back(T);
    return static_cast<uint32_t>(Nodes.size() - 1);
  }

  Arena Mem;
  std::vector<const ParseTree *> Nodes;
};

inline TreeRef ChildList::operator[](size_t I) const {
  assert(I < Count && "child index out of range");
  return TreeRef(Store->node(Ids[I]));
}

/// The root handle of a parse: shares ownership of the TreeStore (one
/// refcount for the whole tree) and points at the root node. The
/// interpreter recycles a store for its next parse only once no TreePtr
/// references it.
class TreePtr {
public:
  TreePtr() = default;
  TreePtr(std::shared_ptr<const TreeStore> Store, const ParseTree *Root)
      : Store(std::move(Store)), Root(Root) {}

  const ParseTree *get() const { return Root; }
  const ParseTree &operator*() const { return *Root; }
  const ParseTree *operator->() const { return Root; }
  explicit operator bool() const { return Root != nullptr; }

  const std::shared_ptr<const TreeStore> &store() const { return Store; }

private:
  std::shared_ptr<const TreeStore> Store;
  const ParseTree *Root = nullptr;
};

/// Total number of tree objects under \p T (diagnostics / benchmarks).
size_t treeSize(const ParseTree &T);

/// Multi-line debug rendering.
std::string treeToString(const ParseTree &T, const StringInterner &Names,
                         int Indent = 0);

} // namespace ipg

#endif // IPG_RUNTIME_PARSETREE_H
