//===- runtime/ParseTree.h - IPG parse trees --------------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parse trees of the paper's semantics:
///
///   Tr ::= Node(A, E, Trs) | Array(Trs) | Leaf(s)
///
/// Nodes carry the rule's attribute environment (including the special
/// start/end attributes, already shifted into the parent's coordinate
/// system by rule T-NTSucc). Children are stored in execution order, each
/// tagged with the index of the originating term so tools can navigate by
/// grammar position.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_RUNTIME_PARSETREE_H
#define IPG_RUNTIME_PARSETREE_H

#include "grammar/Grammar.h"
#include "runtime/Env.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ipg {

class ParseTree;
using TreePtr = std::shared_ptr<const ParseTree>;

class ParseTree {
public:
  enum class Kind { Node, Array, Leaf };

  Kind kind() const { return K; }
  virtual ~ParseTree();

protected:
  explicit ParseTree(Kind K) : K(K) {}

private:
  Kind K;
};

class NodeTree;
class ArrayTree;
class LeafTree;

/// Node(A, E, Trs): a successful parse of one nonterminal (or blackbox).
class NodeTree : public ParseTree {
public:
  NodeTree(Symbol Name, RuleId Rule, Env E, std::vector<TreePtr> Children,
           std::vector<uint32_t> ChildTermIdx)
      : ParseTree(Kind::Node), Name(Name), Rule(Rule), E(std::move(E)),
        Children(std::move(Children)),
        ChildTermIdx(std::move(ChildTermIdx)) {}
  static bool classof(const ParseTree *T) { return T->kind() == Kind::Node; }

  Symbol name() const { return Name; }
  RuleId rule() const { return Rule; }
  const Env &env() const { return E; }
  const std::vector<TreePtr> &children() const { return Children; }
  const std::vector<uint32_t> &childTermIndices() const {
    return ChildTermIdx;
  }

  std::optional<int64_t> attr(Symbol S) const { return E.get(S); }

  /// The most recent child node named \p ChildName (nullptr if none).
  const NodeTree *childNode(Symbol ChildName) const;
  /// The most recent child array whose elements are named \p ElemName.
  const ArrayTree *childArray(Symbol ElemName) const;

  /// Shallow copy with start/end shifted by \p Delta (rule T-NTSucc).
  std::shared_ptr<const NodeTree> withShiftedStartEnd(int64_t Delta,
                                                      Symbol SymStart,
                                                      Symbol SymEnd) const;

private:
  Symbol Name;
  RuleId Rule;
  Env E;
  std::vector<TreePtr> Children;
  std::vector<uint32_t> ChildTermIdx;
};

/// Array(Trs): the result of a for-term; elements are NodeTrees.
class ArrayTree : public ParseTree {
public:
  ArrayTree(Symbol Elem, std::vector<TreePtr> Elems)
      : ParseTree(Kind::Array), Elem(Elem), Elems(std::move(Elems)) {}
  static bool classof(const ParseTree *T) {
    return T->kind() == Kind::Array;
  }

  Symbol elemName() const { return Elem; }
  const std::vector<TreePtr> &elements() const { return Elems; }
  size_t size() const { return Elems.size(); }
  const NodeTree *element(size_t I) const;

private:
  Symbol Elem;
  std::vector<TreePtr> Elems;
};

/// Leaf(s): a matched terminal string (or blackbox output bytes). Offset is
/// relative to the enclosing node's local input. A wildcard (`raw`) match
/// is recorded as an *opaque* leaf: Length is set but the bytes are not
/// copied out of the input — the zero-copy behaviour Section 7 credits for
/// the ZIP result.
class LeafTree : public ParseTree {
public:
  LeafTree(std::string Bytes, int64_t Offset)
      : ParseTree(Kind::Leaf), Bytes(std::move(Bytes)), Offset(Offset) {
    Length = this->Bytes.size();
  }
  /// Opaque (wildcard) leaf covering [Offset, Offset + Length).
  static std::shared_ptr<LeafTree> opaque(int64_t Offset, size_t Length) {
    auto L = std::make_shared<LeafTree>(std::string(), Offset);
    L->Length = Length;
    return L;
  }
  static bool classof(const ParseTree *T) { return T->kind() == Kind::Leaf; }

  const std::string &bytes() const { return Bytes; }
  int64_t offset() const { return Offset; }
  size_t length() const { return Length; }
  bool isOpaque() const { return Bytes.size() != Length; }

private:
  std::string Bytes;
  int64_t Offset;
  size_t Length;
};

/// Total number of tree objects under \p T (diagnostics / benchmarks).
size_t treeSize(const ParseTree &T);

/// Multi-line debug rendering.
std::string treeToString(const ParseTree &T, const StringInterner &Names,
                         int Indent = 0);

} // namespace ipg

#endif // IPG_RUNTIME_PARSETREE_H
