//===- runtime/Engine.h - Abstract parse-engine facade ----------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution-mode seam. The repo carries more than one proven-
/// equivalent implementation of the paper's semantics — the interpreter
/// (runtime/Interp.h) and compiled generated parsers (codegen/GenEngine.h)
/// — and callers used to bind to one concretely. Engine is the single
/// interface the service layer, the tests, and the benches program
/// against, so a new execution mode (the ROADMAP's bytecode VM, island
/// parsing) slots in without touching any caller.
///
/// Contract, shared by every implementation:
///
///  - One engine instance per thread. parse() recycles instance-local
///    pools (tree store, memo table, frames) and the returned TreePtr's
///    refcount is plain, so neither the engine nor its trees may be
///    touched from two threads. Cross-thread handoff of a RESULT goes
///    through TreePtr::detach() -> FrozenTree (runtime/ParseTree.h).
///
///  - stats() describes the most recent parse() call, even one that
///    failed before doing any work (counters reset at parse entry).
///
///  - The engine borrows the Grammar (and, for the interpreter, the
///    BlackboxRegistry); the caller keeps both alive for the engine's
///    lifetime. Grammars are immutable while engines run, so any number
///    of engines on any number of threads may share one Grammar.
///
/// makeEngine() is the one factory every caller funnels through:
///
///   auto E = makeEngine(EngineKind::Interp, G, &Blackboxes);
///   auto T = (*E)->parse(Input);
///
/// EngineKind::Generated emits, compiles (host `c++ -shared`), and
/// dlopens a generated parser behind the same interface; blackbox
/// formats additionally pass the format's GenModuleConfig (see
/// codegen/GenEngine.h, or use formats::makeFormatEngine which wires it
/// automatically).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_RUNTIME_ENGINE_H
#define IPG_RUNTIME_ENGINE_H

#include "grammar/Grammar.h"
#include "runtime/Blackbox.h"
#include "runtime/EngineOptions.h"
#include "runtime/ParseTree.h"
#include "support/Bytes.h"
#include "support/Result.h"

#include <chrono>
#include <memory>

namespace ipg {

struct GenModuleConfig; // codegen/GenEngine.h

enum class EngineKind {
  Interp,    ///< the big-step interpreter (runtime/Interp.h)
  Generated, ///< a compiled generated parser loaded in-process
  Vm,        ///< the bytecode VM over the lowered IR (vm/BytecodeVM.h)
};

/// Spelling for logs/bench entry names ("interp" / "generated" / "vm").
const char *engineKindName(EngineKind K);

class Engine {
public:
  virtual ~Engine();
  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Parses \p Input from the grammar's start symbol. On success the
  /// engine MOVES its tree store into the returned TreePtr; dropping the
  /// result on this thread parks the store for allocation-free reuse,
  /// and TreePtr::detach() instead freezes it for cross-thread handoff.
  virtual Expected<TreePtr> parse(ByteSpan Input) = 0;

  /// Counters of the most recent parse() (reset at its entry, so a parse
  /// that failed early still reports its own — empty — numbers).
  virtual const EngineStats &stats() const = 0;

  virtual const Grammar &grammar() const = 0;

  virtual EngineKind kind() const = 0;

  /// Offers a store previously detached from SOME engine (a FrozenTree's
  /// store coming home after a cross-thread trip) for this engine's
  /// recycler. Returns true when the engine adopted it (taking
  /// ownership); false leaves ownership with the caller (destroy it or
  /// keep it for another engine). Call only on the engine's thread.
  virtual bool adoptStore(TreeStore *S) { return false; }

  /// Arms a deadline every subsequent parse() checks at recoverable
  /// boundaries (rule entry / machine act start, amortized): a parse past
  /// it aborts with a clean Verdict::Timeout instead of running
  /// unbounded. The deadline stays armed until clearDeadline(). Returns
  /// false when the engine does not support deadlines (generated
  /// parsers), leaving it unarmed.
  virtual bool setDeadline(std::chrono::steady_clock::time_point) {
    return false;
  }
  virtual void clearDeadline() {}

protected:
  Engine() = default;
};

/// The one engine factory. \p Blackboxes is consulted by the in-process
/// modes — interpreter and bytecode VM — only (generated parsers bind
/// decoders through their GenModuleConfig); \p GenConfig parameterizes
/// EngineKind::Generated compiles and is ignored by the other modes.
/// Fails when the requested mode cannot be built (e.g. Generated without
/// a host compiler).
Expected<std::unique_ptr<Engine>>
makeEngine(EngineKind Kind, const Grammar &G,
           const BlackboxRegistry *Blackboxes = nullptr,
           const EngineOptions &Opts = {},
           const GenModuleConfig *GenConfig = nullptr);

} // namespace ipg

#endif // IPG_RUNTIME_ENGINE_H
