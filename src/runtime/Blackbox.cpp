//===- runtime/Blackbox.cpp -----------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
// BlackboxRegistry is header-only; this TU anchors the library target.
//===----------------------------------------------------------------------===//

#include "runtime/Blackbox.h"
