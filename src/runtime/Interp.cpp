//===- runtime/Interp.cpp -------------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Interp.h"

#include "expr/Eval.h"
#include "lower/LIR.h"
#include "runtime/ParseScratch.h"
#include "support/Casting.h"
#include "support/FlatHash.h"
#include "support/GenRuntime.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

using namespace ipg;

namespace {

using Frame = ParseScratch::Frame;

/// EvalContext view of a Frame (sigma of Figure 8). Child trees are stored
/// as ids; the store resolves them.
class FrameCtx : public EvalContext {
public:
  FrameCtx(const Frame &F, const Grammar &G, const TreeStore &Store)
      : F(F), G(G), Store(Store) {}

  std::optional<int64_t> attr(Symbol Id) const override {
    for (const Frame *L = &F; L; L = L->Lexical)
      if (auto V = L->E.get(Id))
        return V;
    return std::nullopt;
  }

  std::optional<int64_t> ntAttr(Symbol NT, Symbol Attr) const override {
    for (const Frame *L = &F; L; L = L->Lexical)
      for (size_t I = L->ChildIds.size(); I-- > 0;)
        if (const auto *N = dyn_cast<NodeTree>(Store.node(L->ChildIds[I])))
          if (N->name() == NT)
            return N->attr(Attr);
    return std::nullopt;
  }

  std::optional<int64_t> elemAttr(Symbol NT, int64_t Index,
                                  Symbol Attr) const override {
    const ArrayTree *A = findArray(NT);
    if (!A || Index < 0 || static_cast<size_t>(Index) >= A->size())
      return std::nullopt;
    const NodeTree *N = A->element(static_cast<size_t>(Index));
    return N ? N->attr(Attr) : std::nullopt;
  }

  std::optional<int64_t> arrayLength(Symbol NT) const override {
    const ArrayTree *A = findArray(NT);
    if (!A)
      return std::nullopt;
    return static_cast<int64_t>(A->size());
  }

  std::optional<int64_t> eoi() const override {
    return static_cast<int64_t>(F.Input.size());
  }

  std::optional<int64_t> termEnd(uint32_t TermIdx) const override {
    int64_t Out = 0;
    if (!F.termEnd(TermIdx, Out))
      return std::nullopt;
    return Out;
  }

  std::optional<int64_t> readInput(ReadKind RK, int64_t Lo,
                                   int64_t Hi) const override {
    // Width/endianness and the bounds guards live in the shared runtime
    // (the generated parsers call the same functions).
    long long Width = 0;
    bool BigEndian = false;
    if (!ipg_rt::readKindSpec(static_cast<unsigned>(RK), Width, BigEndian) &&
        !ipg_rt::btoiWidth(Lo, Hi, Width)) // btoi(lo, hi) window
      return std::nullopt;
    long long Out = 0;
    if (!ipg_rt::readScalar(F.Input.data(),
                            static_cast<long long>(F.Input.size()), Lo,
                            Width, BigEndian, Out))
      return std::nullopt;
    return static_cast<int64_t>(Out);
  }

private:
  const Frame &F;
  const Grammar &G;
  const TreeStore &Store;

  const ArrayTree *findArray(Symbol NT) const {
    for (const Frame *L = &F; L; L = L->Lexical)
      for (size_t I = L->ChildIds.size(); I-- > 0;)
        if (const auto *A = dyn_cast<ArrayTree>(Store.node(L->ChildIds[I])))
          if (A->elemName() == NT)
            return A;
    return nullptr;
  }
};

/// One parse() invocation over recycled ParseScratch. Structure — shapes,
/// exec order, rule targets, memo policy, blackbox sites — comes from the
/// lowered module; expressions are still tree-walked through expr/Eval.h
/// via the Src pointers the module carries.
class Runner {
public:
  Runner(const Grammar &G, const InterpOptions &Opts, InterpStats &Stats,
         ParseScratch &St, bool HasDeadline,
         std::chrono::steady_clock::time_point Deadline)
      : G(G), L(St.Lowered), Opts(Opts), Stats(Stats), St(St),
        Store(*St.Cur),
        Salvage(Opts.Recovery == RecoveryPolicy::Salvage),
        HasDeadline(HasDeadline), Deadline(Deadline) {}

  Expected<TreePtr> run(ByteSpan Input, RuleId Start) {
    uint32_t RootId = L.Rules[Start].Shape == ExecShape::Step
                          ? runMachine(Start, Input)
                          : parseRule(Start, Input, nullptr);
    const NodeTree *Node =
        RootId == InvalidNode
            ? nullptr
            : cast<NodeTree>(Store.node(RootId));
    Stats.ArenaBytesUsed = Store.arenaBytesUsed();
    if (Hard) {
      Stats.ParseVerdict =
          Stats.TimedOut ? Verdict::Timeout : Verdict::Reject;
      return Expected<TreePtr>(std::move(Hard));
    }
    if (!Node) {
      Stats.ParseVerdict = Verdict::Reject;
      noteFail(L.Rules[Start].Name, Input.absBase());
      return Expected<TreePtr>::failure(
          "parse failed: input rejected by rule '" +
          std::string(G.interner().name(L.Rules[Start].Name)) + "'");
    }
    // The verdict counts holes reachable from the RESULT — HolesFilled
    // also counts holes in activations a later (non-backtrack) failure
    // abandoned, so it only gates the walk.
    if (Salvage && Stats.HolesFilled)
      Stats.HolesInTree = countHoles(*Node);
    Stats.ParseVerdict =
        Stats.HolesInTree ? Verdict::Salvage : Verdict::Accept;
    // Move the store out to the result: the engine keeps no reference
    // (zero refcount traffic on this path), and when the caller drops the
    // TreePtr the store parks itself in St.Pool for the next parse.
    TreeStore *Owned = St.Cur;
    St.Cur = nullptr;
    return Expected<TreePtr>(TreePtr(Owned, Node));
  }

private:
  const Grammar &G;
  const lir::Module &L;
  const InterpOptions &Opts;
  InterpStats &Stats;
  ParseScratch &St;
  TreeStore &Store;
  const bool Salvage;
  const bool HasDeadline;
  const std::chrono::steady_clock::time_point Deadline;
  unsigned Tick = 0; ///< amortizes the deadline clock reads
  Error Hard = Error::success();
  size_t Depth = 0;

  /// Salvage gate (see Lower.cpp's markRecoverable): the number of
  /// alternative attempts anywhere on the (virtual) stack that still
  /// have a later alternative to try. A hole may only be emitted when
  /// this is zero — i.e. when Strict would have failed the whole parse
  /// rather than backtracked — otherwise salvage would steal a choice
  /// from an enclosing biased alternative (gif's Block/Blocks). Every
  /// tier keeps it balanced on soft paths; hard aborts may leak it, but
  /// Hard already vetoes all salvage and the Runner lives one parse.
  size_t BacktrackLive = 0;

  /// parseRule's failure id (nodes are 32-bit store indices).
  static constexpr uint32_t InvalidNode = ~0u;

  /// updStartEnd of Figure 8: the first-update min/max shared with the
  /// generated runtime. start/end enter the environment only once a term
  /// touches bytes; there is no pre-seeded sentinel.
  void updStartEnd(Env &E, int64_t Lo, int64_t Hi, bool Touched) {
    EnvRef R{E};
    ipg_rt::updStartEnd(R, G.symStart(), G.symEnd(), Lo, Hi, Touched);
  }

  /// The subtree's [start, end) as the parent sees it (T-NTSucc defaults,
  /// shared with the generated runtime): untouched subtrees read as
  /// [sub-EOI, 0).
  void childSpan(const NodeTree &Sub, int64_t SubEoi, int64_t &BStart,
                 int64_t &BEnd) {
    auto S = Sub.attr(G.symStart());
    auto En = Sub.attr(G.symEnd());
    long long BS = 0, BE = 0;
    ipg_rt::childSpan(S.has_value(), S.value_or(0), En.has_value(),
                      En.value_or(0), SubEoi, BS, BE);
    BStart = BS;
    BEnd = BE;
  }

  /// Evaluates an interval; false means evaluation failed (term fails).
  bool evalInterval(const Frame &F, const Interval &Iv, int64_t &Lo,
                    int64_t &Hi) {
    FrameCtx Ctx(F, G, Store);
    if (!Iv.Lo || !Iv.Hi) {
      Hard = Error::failure("internal: interval not completed (run "
                            "completeIntervals before parsing)");
      return false;
    }
    auto L = evaluate(*Iv.Lo, Ctx);
    if (!L)
      return false;
    auto H = evaluate(*Iv.Hi, Ctx);
    if (!H)
      return false;
    Lo = *L;
    Hi = *H;
    return true;
  }

  /// Records a successfully parsed child subtree \p Sub (parsed over
  /// [Lo, Hi) of F's window) into the frame: T-NTSucc span defaults,
  /// interval shift, first-update start/end, touch record.
  void completeChildNT(Frame &F, uint32_t TermIdx, int64_t Lo, int64_t Hi,
                       uint32_t Sub, ParseScratch::FlatKid *Bank = nullptr) {
    int64_t BStart, BEnd;
    childSpan(*cast<NodeTree>(Store.node(Sub)), Hi - Lo, BStart, BEnd);
    uint32_t Adjusted = Store.makeShifted(Sub, Lo, G.symStart(), G.symEnd());
    updStartEnd(F.E, Lo + BStart, Lo + BEnd, BEnd != 0);
    F.ChildIds.push_back(Adjusted);
    F.ChildTermIdx.push_back(TermIdx);
    F.rec(TermIdx, Lo + BStart, Lo + BEnd);
    if (Bank)
      *Bank = ParseScratch::FlatKid{Adjusted, Lo + BStart, Lo + BEnd,
                                   BEnd != 0};
  }

  /// Parses a child nonterminal (shared by NT terms, array elements and
  /// switch arms). Returns false on Fail; records into the frame on
  /// success. \p Bank, when set, additionally captures the record the
  /// flattened tier replays on its way back up.
  bool parseChildNT(Frame &F, uint32_t TermIdx, RuleId Target,
                    const Interval &Iv,
                    ParseScratch::FlatKid *Bank = nullptr) {
    int64_t Lo, Hi;
    if (!evalInterval(F, Iv, Lo, Hi) || Hard)
      return false;
    if (!ipg_rt::intervalOk(Lo, Hi, static_cast<int64_t>(F.Input.size())))
      return false;
    uint32_t Sub =
        parseRule(Target, F.Input.slice(static_cast<size_t>(Lo),
                                        static_cast<size_t>(Hi)),
                  &F);
    if (Hard || Sub == InvalidNode)
      return false;
    completeChildNT(F, TermIdx, Lo, Hi, Sub, Bank);
    return true;
  }

  bool execTerm(Frame &F, const lir::TermL &T) {
    ++Stats.TermsExecuted;
    switch (T.Op) {
    case lir::TermOp::CallRule: {
      if (T.Rule == InvalidRuleId) {
        noteFail(T.Sym, F.Input.absBase());
        Hard = Error::failure("internal: unresolved nonterminal '" +
                              std::string(G.interner().name(T.Sym)) +
                              "' (run checkAttributes before parsing)");
        return false;
      }
      return parseChildNT(F, T.TermIdx, T.Rule, *T.Iv.Src);
    }

    case lir::TermOp::MatchBytes:
    case lir::TermOp::MatchRaw:
      return execTerminal(F, T);

    case lir::TermOp::SetAttr:
      return execAttrDef(F, T);

    case lir::TermOp::Check:
      return execPredicate(F, T);

    case lir::TermOp::ForArray:
      return execArray(F, T);

    case lir::TermOp::Select: {
      FrameCtx Ctx(F, G, Store);
      for (uint32_t AI = T.ArmsBegin; AI != T.ArmsEnd; ++AI) {
        const lir::ArmL &C = L.Arms[AI];
        if (C.Src->Cond) {
          auto V = evaluate(*C.Src->Cond, Ctx);
          if (!V)
            return false;
          if (*V == 0)
            continue;
        }
        if (C.Rule == InvalidRuleId) {
          Hard = Error::failure("internal: unresolved switch arm");
          return false;
        }
        return parseChildNT(F, T.TermIdx, C.Rule, *C.Iv.Src);
      }
      return false; // no arm matched
    }

    case lir::TermOp::CallBlackbox:
      return execBlackbox(F, T);
    }
    return false;
  }

  bool execTerminal(Frame &F, const lir::TermL &T) {
    int64_t Lo, Hi;
    if (!evalInterval(F, *T.Iv.Src, Lo, Hi) || Hard)
      return false;
    if (!ipg_rt::intervalOk(Lo, Hi, static_cast<int64_t>(F.Input.size())))
      return false;
    if (T.Op == lir::TermOp::MatchRaw) {
      // `raw` matches the whole interval without reading or copying it.
      updStartEnd(F.E, Lo, Hi, Hi > Lo);
      F.ChildIds.push_back(
          Store.makeLeaf(F.Input.data() + Lo,
                         static_cast<size_t>(Hi - Lo), Lo,
                         /*Opaque=*/true));
      F.ChildTermIdx.push_back(T.TermIdx);
      F.rec(T.TermIdx, Lo, Hi);
      return true;
    }
    const std::string &Bytes = L.Lits[T.Lit];
    int64_t Len = static_cast<int64_t>(Bytes.size());
    if (Hi - Lo < Len)
      return false;
    if (!F.Input.matchesAt(static_cast<size_t>(Lo), Bytes))
      return false;
    updStartEnd(F.E, Lo, Lo + Len, Len > 0);
    // Zero-copy: the leaf aliases the matched window of the input.
    F.ChildIds.push_back(Store.makeLeaf(F.Input.data() + Lo,
                                        static_cast<size_t>(Len), Lo,
                                        /*Opaque=*/false));
    F.ChildTermIdx.push_back(T.TermIdx);
    F.rec(T.TermIdx, Lo, Lo + Len);
    return true;
  }

  /// A terminal on the flattened tier's way DOWN: match and record the
  /// interval effects (start/end, touch record) but build no leaf — the
  /// replay on the way back up materializes it. Counts as an execution;
  /// the replay does not.
  bool probeTerminal(Frame &F, const lir::TermL &T) {
    ++Stats.TermsExecuted;
    int64_t Lo, Hi;
    if (!evalInterval(F, *T.Iv.Src, Lo, Hi) || Hard)
      return false;
    if (!ipg_rt::intervalOk(Lo, Hi, static_cast<int64_t>(F.Input.size())))
      return false;
    if (T.Op == lir::TermOp::MatchRaw) {
      updStartEnd(F.E, Lo, Hi, Hi > Lo);
      F.rec(T.TermIdx, Lo, Hi);
      return true;
    }
    const std::string &Bytes = L.Lits[T.Lit];
    int64_t Len = static_cast<int64_t>(Bytes.size());
    if (Hi - Lo < Len)
      return false;
    if (!F.Input.matchesAt(static_cast<size_t>(Lo), Bytes))
      return false;
    updStartEnd(F.E, Lo, Lo + Len, Len > 0);
    F.rec(T.TermIdx, Lo, Lo + Len);
    return true;
  }

  bool execAttrDef(Frame &F, const lir::TermL &T) {
    FrameCtx Ctx(F, G, Store);
    auto V = evaluate(*cast<AttrDefTerm>(T.Src)->Value, Ctx);
    if (!V)
      return false;
    F.E.set(T.Sym, *V);
    return true;
  }

  bool execPredicate(Frame &F, const lir::TermL &T) {
    FrameCtx Ctx(F, G, Store);
    auto V = evaluate(*cast<PredicateTerm>(T.Src)->Cond, Ctx);
    return V && *V != 0;
  }

  bool execArray(Frame &F, const lir::TermL &T) {
    const auto &A = *cast<ArrayTerm>(T.Src);
    FrameCtx Ctx(F, G, Store);
    auto From = evaluate(*A.From, Ctx);
    auto To = evaluate(*A.To, Ctx);
    if (!From || !To)
      return false;
    if (T.Rule == InvalidRuleId) {
      noteFail(T.Elem, F.Input.absBase());
      Hard = Error::failure("internal: unresolved array element");
      return false;
    }

    // Save any outer binding of the loop variable and bind it per element;
    // the binding is visible to el/er and (through the lexical chain) to
    // local element rules, matching T-ArraySucc's E[id -> k].
    auto Saved = F.E.get(T.Sym);
    // Element ids accumulate in per-nesting-level scratch. Elements may
    // contain arrays at deeper levels, and entering a deeper level can
    // resize the pool — re-index on every access instead of holding a
    // reference across the recursive parses below.
    size_t Level = St.ArrayNest++;
    St.elemScratchAt(Level).clear();
    bool AnyTouched = false;
    int64_t MaxEnd = 0;
    bool Failed = false;

    for (int64_t K = *From; K < *To; ++K) {
      F.E.set(T.Sym, K);
      int64_t Lo, Hi;
      if (!evalInterval(F, *T.Iv.Src, Lo, Hi) || Hard) {
        Failed = true;
        break;
      }
      if (!ipg_rt::intervalOk(Lo, Hi,
                              static_cast<int64_t>(F.Input.size()))) {
        Failed = true;
        break;
      }
      uint32_t Sub =
          parseRule(T.Rule,
                    F.Input.slice(static_cast<size_t>(Lo),
                                  static_cast<size_t>(Hi)),
                    &F);
      if (Hard || Sub == InvalidNode) {
        Failed = true;
        break;
      }
      int64_t BStart, BEnd;
      childSpan(*cast<NodeTree>(Store.node(Sub)), Hi - Lo, BStart, BEnd);
      St.ElemScratch[Level].push_back(
          Store.makeShifted(Sub, Lo, G.symStart(), G.symEnd()));
      updStartEnd(F.E, Lo + BStart, Lo + BEnd, BEnd != 0);
      if (BEnd != 0) {
        AnyTouched = true;
        MaxEnd = std::max(MaxEnd, Lo + BEnd);
      }
    }

    --St.ArrayNest;
    if (Saved)
      F.E.set(T.Sym, *Saved);
    else
      F.E.erase(T.Sym);
    if (Failed)
      return false;

    const std::vector<uint32_t> &Elems = St.ElemScratch[Level];
    F.ChildIds.push_back(
        Store.makeArray(T.Elem, Elems.data(),
                        static_cast<uint32_t>(Elems.size())));
    F.ChildTermIdx.push_back(T.TermIdx);
    if (AnyTouched)
      F.rec(T.TermIdx, 0, MaxEnd);
    return true;
  }

  bool execBlackbox(Frame &F, const lir::TermL &T) {
    int64_t Lo, Hi;
    if (!evalInterval(F, *T.Iv.Src, Lo, Hi) || Hard)
      return false;
    if (!ipg_rt::intervalOk(Lo, Hi, static_cast<int64_t>(F.Input.size())))
      return false;

    // The call site was resolved against the registry at engine
    // construction (lower/LIR.h's BbSite table).
    const BlackboxFn *Fn = St.BbFns[T.Bb];
    if (!Fn) {
      noteFail(T.Sym, F.Input.absBase() + Lo);
      Hard = Error::failure("blackbox parser '" +
                            L.BbSites[T.Bb].NameStr +
                            "' is not registered");
      return false;
    }
    ByteSpan Slice = F.Input.slice(static_cast<size_t>(Lo),
                                   static_cast<size_t>(Hi));
    BlackboxResult Res = (*Fn)(Slice);
    if (!Res.Ok)
      return false;
    if (Res.End > Slice.size()) {
      noteFail(T.Sym, F.Input.absBase() + Lo);
      Hard = Error::failure("blackbox parser '" +
                            L.BbSites[T.Bb].NameStr +
                            "' consumed past its interval");
      return false;
    }

    EnvSlot Slots[3];
    Slots[0] = {G.symVal(), Res.Value};
    if (Res.End > 0) {
      Slots[1] = {G.symStart(), Lo};
      Slots[2] = {G.symEnd(), Lo + static_cast<int64_t>(Res.End)};
    } else {
      Slots[1] = {G.symStart(), Hi - Lo};
      Slots[2] = {G.symEnd(), Lo};
    }
    uint32_t KidIds[1];
    uint32_t KidTerms[1] = {0};
    uint32_t NumKids = 0;
    if (!Res.Output.empty()) {
      // Decoded output is not a window into the input; copy it into the
      // arena so the leaf's lifetime matches the tree's.
      KidIds[0] =
          Store.makeLeafCopy(Res.Output.data(), Res.Output.size(), 0);
      NumKids = 1;
    }
    uint32_t Node = Store.makeNodeFromSlots(T.Sym, InvalidRuleId, Slots, 3,
                                            KidIds, KidTerms, NumKids);
    ++Stats.NodesCreated;
    updStartEnd(F.E, Lo, Lo + static_cast<int64_t>(Res.End), Res.End > 0);
    F.ChildIds.push_back(Node);
    F.ChildTermIdx.push_back(T.TermIdx);
    F.rec(T.TermIdx, Lo, Lo + static_cast<int64_t>(Res.End));
    return true;
  }

  /// Records the failing rule/offset diagnostics. First failure wins: a
  /// hard error's site is THE failure (everything unwinds through it),
  /// and soft-reject sites only report at the top level.
  void noteFail(Symbol Rule, int64_t Off) {
    if (Stats.FailRule != ~0u)
      return;
    Stats.FailRule = Rule;
    Stats.FailOffset = Off;
  }

  /// Amortized deadline check at recoverable boundaries (rule entry /
  /// flattened level / machine act start): the clock is read once per
  /// 256 boundaries. A trip raises a hard error and flags TimedOut so
  /// the verdict becomes Timeout.
  bool pastDeadline(Symbol RuleName, int64_t AbsLo) {
    if (!HasDeadline)
      return false;
    if ((++Tick & 0xFFu) != 0)
      return false;
    if (std::chrono::steady_clock::now() < Deadline)
      return false;
    Stats.TimedOut = true;
    noteFail(RuleName, AbsLo);
    Hard = Error::failure(
        "parse aborted: deadline exceeded while parsing rule '" +
        std::string(G.interner().name(RuleName)) + "'");
    return true;
  }

  /// execTerm plus the Salvage wrapper: a term that fails SOFTLY at a
  /// boundary the lowering marked recoverable (lir::TermL::Recoverable)
  /// is fenced by a hole leaf over its interval and the sequence
  /// continues. \p Owner names the enclosing rule, used for holes at
  /// terminal boundaries (which have no callee name of their own).
  bool execTermSalvage(Frame &F, const lir::TermL &T, Symbol Owner) {
    if (execTerm(F, T))
      return true;
    if (!Salvage || Hard || !T.Recoverable || BacktrackLive != 0)
      return false;
    return emitHole(F, T, Owner);
  }

  /// Fences a failed recoverable term: resolves its interval (the
  /// committed arm's for Select) and emits a hole leaf over exactly that
  /// window. False — damage escalates to the enclosing boundary — when
  /// the interval no longer resolves or lands outside the input (e.g.
  /// truncation), which keeps salvaged reprints byte-exact.
  bool emitHole(Frame &F, const lir::TermL &T, Symbol Owner) {
    const Interval *Iv = nullptr;
    Symbol HoleSym = Owner;
    switch (T.Op) {
    case lir::TermOp::CallRule:
    case lir::TermOp::CallBlackbox:
      Iv = T.Iv.Src;
      HoleSym = T.Sym;
      break;
    case lir::TermOp::MatchBytes:
    case lir::TermOp::MatchRaw:
      Iv = T.Iv.Src;
      break;
    case lir::TermOp::Select: {
      // Re-find the committed arm (condition evaluation is pure): the
      // hole covers the arm the parse committed to, not the whole term.
      FrameCtx Ctx(F, G, Store);
      for (uint32_t AI = T.ArmsBegin; AI != T.ArmsEnd; ++AI) {
        const lir::ArmL &C = L.Arms[AI];
        if (C.Src->Cond) {
          auto V = evaluate(*C.Src->Cond, Ctx);
          if (!V)
            return false;
          if (*V == 0)
            continue;
        }
        Iv = C.Iv.Src;
        if (C.Rule != InvalidRuleId)
          HoleSym = L.Rules[C.Rule].Name;
        break;
      }
      if (!Iv)
        return false; // no arm matched: nothing bounds the damage
      break;
    }
    default:
      return false; // SetAttr/Check/ForArray are never recoverable
    }
    int64_t Lo, Hi;
    if (!evalInterval(F, *Iv, Lo, Hi) || Hard)
      return false;
    if (!ipg_rt::intervalOk(Lo, Hi, static_cast<int64_t>(F.Input.size())))
      return false;
    if (Hi <= Lo)
      return false; // a hole must cover at least one damaged byte —
                    // zero-width success where Strict fails could turn
                    // a proven-terminating list into a livelock
    emitHoleAt(F, T.TermIdx, Lo, Hi, HoleSym);
    return true;
  }

  /// Emits the hole leaf once its window is known, with the exact frame
  /// effects a `raw` match over [Lo, Hi) would have — so every later
  /// term (start/end, termEnd references) sees a consistent parse.
  void emitHoleAt(Frame &F, uint32_t TI, int64_t Lo, int64_t Hi,
                  Symbol HoleSym) {
    updStartEnd(F.E, Lo, Hi, Hi > Lo);
    F.ChildIds.push_back(Store.makeHole(F.Input.data() + Lo,
                                        static_cast<size_t>(Hi - Lo), Lo,
                                        HoleSym));
    F.ChildTermIdx.push_back(TI);
    F.rec(TI, Lo, Hi);
    ++Stats.HolesFilled;
  }

  /// The depth-limit hard error, shared by all three execution tiers.
  Error depthError(const lir::RuleL &R, int64_t AbsLo) {
    noteFail(R.Name, AbsLo);
    return Error::failure(
        "recursion depth limit exceeded while parsing rule '" +
        std::string(G.interner().name(R.Name)) +
        "' (likely a non-terminating grammar; see termination checking)");
  }

  /// Parses \p Id over \p Input; returns the frozen node id, or
  /// InvalidNode on failure (check Hard for aborts). Dispatches on the
  /// rule's recursion shape: Flattened rules run as a descend/replay loop
  /// (parseFlattened) and Step rules only ever run on the work-stack
  /// machine starting at the parse root (runMachine) — recursive descent
  /// here is reserved for Direct rules, whose C-stack use is bounded by
  /// the grammar, never by the input.
  uint32_t parseRule(RuleId Id, ByteSpan Input, const Frame *Lexical) {
    if (Hard)
      return InvalidNode;
    const lir::RuleL &R = L.Rules[Id];
    if (R.Shape == ExecShape::Flattened)
      return parseFlattened(Id, Input);
    assert(R.Shape != ExecShape::Step &&
           "step rules only run on the machine (up-closure violated)");
    if (Depth >= Opts.MaxDepth) {
      Hard = depthError(R, Input.absBase());
      return InvalidNode;
    }
    if (pastDeadline(R.Name, Input.absBase()))
      return InvalidNode;
    ++Depth;
    Stats.PeakDepth = std::max(Stats.PeakDepth, Depth);

    // Local rules are never memoized (their meaning depends on the
    // enclosing frame); leaf rules are excluded as a pure optimization —
    // re-matching a handful of terminals/attrdefs is cheaper than a probe
    // (the RuleL::Memoizable policy shared with all engines). Salvage
    // disables memoization wholesale: with the BacktrackLive gate the
    // outcome of a subparse depends on the enclosing backtrack state, so
    // caching it (a hole-bearing tree, or a gated failure) would replay
    // it into contexts where the opposite decision is required.
    bool Memoize = Opts.UseMemo && R.Memoizable && !Salvage;
    bool TrackReentry = Opts.DetectReentry && !R.IsLocal;
    IntervalKey Key;
    if (Memoize || TrackReentry)
      Key = IntervalKey::pack(Id, Input.absBase(),
                              Input.absBase() + Input.size());
    if (Memoize) {
      if (const uint32_t *Hit = St.Memo.find(Key)) {
        ++Stats.MemoHits;
        --Depth;
        unsigned NodeId = 0;
        return ipg_rt::memoUnpack(*Hit, NodeId) ? NodeId : InvalidNode;
      }
      ++Stats.MemoMisses;
    }
    if (TrackReentry && !St.InProgress.insert(Key, 1)) {
      --Depth;
      return InvalidNode; // packrat-style: in-progress re-entry fails
    }

    uint32_t Result = InvalidNode;
    Frame &F = St.frameAt(Depth);
    for (size_t AI = 0, AE = R.Alts.size(); AI < AE; ++AI) {
      const lir::AltL &Alt = R.Alts[AI];
      const bool BT = AI + 1 < AE; // a later alternative is still untried
      F.beginAlt(Input, R.IsLocal ? Lexical : nullptr, Alt.Exec.size());
      // The environment starts empty: EOI is answered from the frame
      // (never stored as an attribute, so a grammar attribute named "EOI"
      // cannot collide through the lexical lookup), and start/end appear
      // only once a term touches bytes (first-update updStartEnd) — a
      // byte-untouched node exposes neither, and reading its X.start
      // fails with partiality, exactly as in the generated parsers.
      BacktrackLive += BT;
      bool Ok = true;
      for (const lir::TermL &T : Alt.Exec)
        if (!execTermSalvage(F, T, R.Name)) {
          Ok = false;
          break;
        }
      BacktrackLive -= BT;
      if (Hard)
        break;
      if (Ok) {
        Result = Store.makeNode(
            R.Name, Id, F.E, F.ChildIds.data(), F.ChildTermIdx.data(),
            static_cast<uint32_t>(F.ChildIds.size()));
        ++Stats.NodesCreated;
        break;
      }
    }

    if (TrackReentry)
      St.InProgress.erase(Key);
    if (Memoize && !Hard)
      St.Memo.insert(Key, ipg_rt::memoPack(
                              Result == InvalidNode ? 0u : Result,
                              Result != InvalidNode));
    --Depth;
    return Hard ? InvalidNode : Result;
  }

  /// Flattened linear recursion (analysis/RecShape.h): the single self
  /// call becomes a descend/replay loop over a heap-backed window stack,
  /// so grammar recursion depth is bounded by Opts.MaxDepth alone — never
  /// by the C stack. One frame serves every level: on the way DOWN each
  /// level tries its pre-self alternatives for real, probes the self
  /// alternative's prefix (terminals record intervals but build no leaf;
  /// child nonterminals parse for real and bank their records), then
  /// descends into the self interval. On the way UP the self alternative
  /// replays per level — rebuilding the environment, materializing the
  /// terminal leaves, rebinding the banked children — completes the self
  /// child, and runs the suffix. Alternative order, memo traffic, depth
  /// accounting, and reentry tracking match the recursive form exactly.
  uint32_t parseFlattened(RuleId Id, ByteSpan Input) {
    const lir::RuleL &R = L.Rules[Id];
    const FlattenInfo &FI = R.Flatten;
    const lir::AltL &SAlt = R.Alts[FI.SelfAlt];
    const lir::TermL &SelfT = SAlt.Exec[FI.SelfExecPos];
    const size_t PN = FI.PrefixNTTerms.size();
    const bool Memoize = Opts.UseMemo && R.Memoizable && !Salvage;
    const bool TrackReentry = Opts.DetectReentry; // never a local rule
    // Each level contributes to BacktrackLive while inside its self
    // alternative iff post-self alternatives exist to fall back to.
    const bool HasPost = FI.SelfAlt + 1 < R.Alts.size();
    const size_t EntryDepth = Depth;
    const size_t LvBase = St.FlatLevels.size();
    const size_t KidBase = St.FlatKids.size();
    const size_t KeyBase = St.FlatKeys.size();
    Frame &F = St.frameAt(EntryDepth + 1);
    ByteSpan Cur = Input;
    uint32_t Sub = InvalidNode;
    int64_t SLo = 0, SHi = 0;

    auto levelKey = [&] {
      return IntervalKey::pack(Id, Cur.absBase(),
                               Cur.absBase() + Cur.size());
    };

  flat_descend:
    // Depth here is VIRTUAL — entry depth plus pending levels, the exact
    // figure the recursive form would have reached.
    Depth = EntryDepth + (St.FlatLevels.size() - LvBase);
    if (Depth >= Opts.MaxDepth) {
      Hard = depthError(R, Cur.absBase());
      goto flat_hard;
    }
    if (pastDeadline(R.Name, Cur.absBase()))
      goto flat_hard;
    ++Depth;
    Stats.PeakDepth = std::max(Stats.PeakDepth, Depth);
    if (Memoize) {
      if (const uint32_t *Hit = St.Memo.find(levelKey())) {
        ++Stats.MemoHits;
        unsigned NodeId = 0;
        if (ipg_rt::memoUnpack(*Hit, NodeId)) {
          Sub = NodeId;
          goto flat_resolved;
        }
        goto flat_level_failed;
      }
      ++Stats.MemoMisses;
    }
    if (TrackReentry) {
      IntervalKey K = levelKey();
      if (!St.InProgress.insert(K, 1))
        goto flat_level_failed; // packrat-style: in-progress re-entry fails
      St.FlatKeys.push_back(K);
    }

    // Alternatives BEFORE the self alternative run for real at every
    // level on the way down (recursion tries them first per activation).
    for (size_t AI = 0; AI < FI.SelfAlt; ++AI) {
      const lir::AltL &Alt = R.Alts[AI];
      F.beginAlt(Cur, nullptr, Alt.Exec.size());
      ++BacktrackLive; // the self alternative is still untried
      bool Ok = true;
      for (const lir::TermL &T : Alt.Exec)
        if (!execTermSalvage(F, T, R.Name)) {
          Ok = false;
          break;
        }
      --BacktrackLive;
      if (Hard)
        goto flat_hard;
      if (Ok) {
        Sub = Store.makeNode(
            R.Name, Id, F.E, F.ChildIds.data(), F.ChildTermIdx.data(),
            static_cast<uint32_t>(F.ChildIds.size()));
        ++Stats.NodesCreated;
        goto flat_level_ok;
      }
    }

    // The self alternative's prefix (descend phase), then push the level
    // and descend into the self interval.
    {
      F.beginAlt(Cur, nullptr, SAlt.Exec.size());
      // This level enters its self alternative: it contributes to
      // BacktrackLive until it leaves it — through the prefix, the
      // whole descent below, and the replay (flat_resolved).
      BacktrackLive += HasPost;
      for (size_t Step = 0; Step < FI.SelfExecPos; ++Step) {
        const lir::TermL &T = SAlt.Exec[Step];
        bool Ok;
        if (T.Op == lir::TermOp::CallRule) {
          if (T.Rule == InvalidRuleId) {
            noteFail(T.Sym, F.Input.absBase());
            Hard = Error::failure(
                "internal: unresolved nonterminal '" +
                std::string(G.interner().name(T.Sym)) +
                "' (run checkAttributes before parsing)");
            goto flat_hard;
          }
          ++Stats.TermsExecuted;
          ParseScratch::FlatKid Bank;
          Ok = parseChildNT(F, T.TermIdx, T.Rule, *T.Iv.Src, &Bank);
          if (Ok)
            St.FlatKids.push_back(Bank);
        } else if (T.Op == lir::TermOp::MatchBytes ||
                   T.Op == lir::TermOp::MatchRaw) {
          Ok = probeTerminal(F, T);
        } else {
          Ok = execTerm(F, T);
        }
        if (!Ok) {
          if (Hard)
            goto flat_hard;
          BacktrackLive -= HasPost; // prefix failed: leave the self alt
          goto flat_post_alts;
        }
      }
      ++Stats.TermsExecuted; // the self nonterminal term
      if (!evalInterval(F, *SelfT.Iv.Src, SLo, SHi) || Hard) {
        if (Hard)
          goto flat_hard;
        BacktrackLive -= HasPost; // leave the self alt
        goto flat_post_alts;
      }
      if (!ipg_rt::intervalOk(SLo, SHi,
                              static_cast<int64_t>(F.Input.size()))) {
        BacktrackLive -= HasPost; // leave the self alt
        goto flat_post_alts;
      }
      St.FlatLevels.push_back(Cur);
      Cur = F.Input.slice(static_cast<size_t>(SLo),
                          static_cast<size_t>(SHi));
      goto flat_descend;
    }

    // The current level resolved to node Sub at the descend: close its
    // bookkeeping (recursion: erase reentry, then memoize) and unwind.
  flat_level_ok:
    if (TrackReentry) {
      St.InProgress.erase(St.FlatKeys.back());
      St.FlatKeys.pop_back();
    }
    if (Memoize)
      St.Memo.insert(levelKey(), ipg_rt::memoPack(Sub, true));
    goto flat_resolved;

    // Alternatives AFTER the self alternative, tried when the self
    // alternative failed at the current level (prefix, child, or suffix).
  flat_post_alts:
    Depth = EntryDepth + 1 + (St.FlatLevels.size() - LvBase);
    St.FlatKids.resize(KidBase +
                       (St.FlatLevels.size() - LvBase) * PN);
    for (size_t AI = FI.SelfAlt + 1; AI < R.Alts.size(); ++AI) {
      const lir::AltL &Alt = R.Alts[AI];
      const bool BT = AI + 1 < R.Alts.size(); // a later alt is untried
      F.beginAlt(Cur, nullptr, Alt.Exec.size());
      BacktrackLive += BT;
      bool Ok = true;
      for (const lir::TermL &T : Alt.Exec)
        if (!execTermSalvage(F, T, R.Name)) {
          Ok = false;
          break;
        }
      BacktrackLive -= BT;
      if (Hard)
        goto flat_hard;
      if (Ok) {
        Sub = Store.makeNode(
            R.Name, Id, F.E, F.ChildIds.data(), F.ChildTermIdx.data(),
            static_cast<uint32_t>(F.ChildIds.size()));
        ++Stats.NodesCreated;
        goto flat_level_ok;
      }
    }
    if (TrackReentry) {
      St.InProgress.erase(St.FlatKeys.back());
      St.FlatKeys.pop_back();
    }
    if (Memoize)
      St.Memo.insert(levelKey(), ipg_rt::memoPack(0u, false));
    goto flat_level_failed;

    // A level failed outright: its parent's self call failed, so the
    // parent falls through to ITS post-self alternatives.
  flat_level_failed:
    if (St.FlatLevels.size() == LvBase) {
      St.FlatKids.resize(KidBase);
      Depth = EntryDepth;
      return InvalidNode;
    }
    Cur = St.FlatLevels.back();
    St.FlatLevels.pop_back();
    BacktrackLive -= HasPost; // the parent level leaves its self alt
    goto flat_post_alts;

    // A level resolved to node Sub: unwind, deepest pending level first —
    // replay the self alternative's prefix for real, complete the self
    // child, run the suffix, build the node.
  flat_resolved:
    while (St.FlatLevels.size() > LvBase) {
      ByteSpan ChildWin = Cur;
      Cur = St.FlatLevels.back();
      St.FlatLevels.pop_back();
      Depth = EntryDepth + 1 + (St.FlatLevels.size() - LvBase);
      F.beginAlt(Cur, nullptr, SAlt.Exec.size());
      size_t KidJ = 0;
      bool Ok = true;
      for (size_t Step = 0; Step < FI.SelfExecPos && Ok; ++Step) {
        const lir::TermL &T = SAlt.Exec[Step];
        if (T.Op == lir::TermOp::CallRule) {
          const ParseScratch::FlatKid &K =
              St.FlatKids[KidBase +
                          (St.FlatLevels.size() - LvBase) * PN + KidJ++];
          updStartEnd(F.E, K.Start, K.End, K.Touched);
          F.ChildIds.push_back(K.Node);
          F.ChildTermIdx.push_back(T.TermIdx);
          F.rec(T.TermIdx, K.Start, K.End);
        } else if (T.Op == lir::TermOp::MatchBytes ||
                   T.Op == lir::TermOp::MatchRaw) {
          Ok = execTerminal(F, T);
        } else if (T.Op == lir::TermOp::SetAttr) {
          Ok = execAttrDef(F, T);
        } else {
          Ok = execPredicate(F, T);
        }
      }
      if (Ok) {
        // Complete the self child from the banked window (the interval
        // evaluated at the descend; re-evaluation would yield the same).
        int64_t CLo = static_cast<int64_t>(ChildWin.absBase() -
                                           Cur.absBase());
        int64_t CHi = CLo + static_cast<int64_t>(ChildWin.size());
        completeChildNT(F, FI.SelfTerm, CLo, CHi, Sub);
        for (size_t Step = FI.SelfExecPos + 1;
             Step < SAlt.Exec.size() && Ok; ++Step)
          Ok = execTerm(F, SAlt.Exec[Step]);
      }
      if (Hard)
        goto flat_hard;
      BacktrackLive -= HasPost; // replay done: leave the self alt
      if (!Ok)
        goto flat_post_alts;
      Sub = Store.makeNode(
          R.Name, Id, F.E, F.ChildIds.data(), F.ChildTermIdx.data(),
          static_cast<uint32_t>(F.ChildIds.size()));
      ++Stats.NodesCreated;
      if (TrackReentry) {
        St.InProgress.erase(St.FlatKeys.back());
        St.FlatKeys.pop_back();
      }
      if (Memoize)
        St.Memo.insert(levelKey(), ipg_rt::memoPack(Sub, true));
    }
    St.FlatKids.resize(KidBase);
    Depth = EntryDepth;
    return Sub;

    // A hard failure aborts the whole activation: recursion unwinds every
    // pending level erasing its reentry key and storing nothing.
  flat_hard:
    while (St.FlatKeys.size() > KeyBase) {
      St.InProgress.erase(St.FlatKeys.back());
      St.FlatKeys.pop_back();
    }
    St.FlatLevels.resize(LvBase);
    St.FlatKids.resize(KidBase);
    Depth = EntryDepth;
    return InvalidNode;
  }

  //===--------------------------------------------------------------------===//
  // Step tier: the explicit work-stack machine for general recursion
  // (mutual cycles, multiple self-alternatives, self under array/switch).
  // One MachineAct per live rule invocation; acts suspend only where a
  // callee is itself a Step rule — every other term delegates to the
  // ordinary helpers, whose recursion is bounded by the grammar (Direct)
  // or heap-backed (Flattened). Depth is the act-stack height, so
  // MaxDepth limits exactly what it limits under recursion.
  //===--------------------------------------------------------------------===//

  using MachineAct = ParseScratch::MachineAct;

  uint32_t StartNode = InvalidNode; ///< result of an inline-resolved start
  bool ChildOk = false;             ///< delivery: did the last act succeed?
  uint32_t ChildNode = InvalidNode; ///< delivery: its node id

  enum StartStatus { ActPushed, ActDoneOk, ActDoneFail };

  /// Mirrors parseRule's entry sequence (depth check, peak, memo probe,
  /// reentry insert). Either pushes a new act or resolves inline from the
  /// memo table (StartNode holds the node on ActDoneOk).
  StartStatus startAct(RuleId Id, ByteSpan In, const Frame *Lex) {
    const lir::RuleL &R = L.Rules[Id];
    if (Depth >= Opts.MaxDepth) {
      Hard = depthError(R, In.absBase());
      return ActDoneFail;
    }
    if (pastDeadline(R.Name, In.absBase()))
      return ActDoneFail;
    ++Depth;
    Stats.PeakDepth = std::max(Stats.PeakDepth, Depth);
    bool Memoize = Opts.UseMemo && R.Memoizable && !Salvage;
    bool TrackReentry = Opts.DetectReentry && !R.IsLocal;
    IntervalKey Key;
    if (Memoize || TrackReentry)
      Key = IntervalKey::pack(Id, In.absBase(), In.absBase() + In.size());
    if (Memoize) {
      if (const uint32_t *Hit = St.Memo.find(Key)) {
        ++Stats.MemoHits;
        --Depth;
        unsigned NodeId = 0;
        if (!ipg_rt::memoUnpack(*Hit, NodeId))
          return ActDoneFail;
        StartNode = NodeId;
        return ActDoneOk;
      }
      ++Stats.MemoMisses;
    }
    bool Inserted = false;
    if (TrackReentry) {
      if (!St.InProgress.insert(Key, 1)) {
        --Depth;
        return ActDoneFail; // packrat-style: in-progress re-entry fails
      }
      Inserted = true;
    }
    MachineAct A;
    A.Id = Id;
    A.Input = In;
    A.Lex = Lex;
    A.Key = Key;
    A.Memoize = Memoize;
    A.Inserted = Inserted;
    BacktrackLive += R.Alts.size() > 1; // alt 0 begins with later alts
    St.Acts.push_back(A);
    return ActPushed;
  }

  /// Pops the top act with \p Result (InvalidNode on failure), closing its
  /// bookkeeping exactly as parseRule's exit does, and loads the delivery
  /// slot for the act below.
  void finishAct(uint32_t Result) {
    MachineAct &A = St.Acts.back();
    if (A.Inserted)
      St.InProgress.erase(A.Key);
    if (A.Memoize && !Hard)
      St.Memo.insert(A.Key, ipg_rt::memoPack(
                                Result == InvalidNode ? 0u : Result,
                                Result != InvalidNode));
    BacktrackLive -= A.AltIdx + 1 < L.Rules[A.Id].Alts.size();
    --Depth;
    St.Acts.pop_back();
    ChildOk = Result != InvalidNode && !Hard;
    ChildNode = Result;
  }

  void restoreLoopVar(Frame &F, MachineAct &A) {
    if (A.ArrHadSaved)
      F.E.set(A.Arr->Sym, A.ArrSaved);
    else
      F.E.erase(A.Arr->Sym);
  }

  /// Abandons the in-flight array term of act \p I (element failed or an
  /// interval went bad): unwind exactly like execArray's failure path.
  int arrayFail(size_t I, Frame &F) {
    MachineAct &A = St.Acts[I];
    --St.ArrayNest;
    restoreLoopVar(F, A);
    A.Arr = nullptr;
    A.Wait = MachineAct::WaitNone;
    return 0;
  }

  void completeArrayElem(size_t I, Frame &F, uint32_t Sub) {
    MachineAct &A = St.Acts[I];
    int64_t Lo = A.PendLo, Hi = A.PendHi;
    int64_t BStart, BEnd;
    childSpan(*cast<NodeTree>(Store.node(Sub)), Hi - Lo, BStart, BEnd);
    St.ElemScratch[A.ArrLevel].push_back(
        Store.makeShifted(Sub, Lo, G.symStart(), G.symEnd()));
    updStartEnd(F.E, Lo + BStart, Lo + BEnd, BEnd != 0);
    if (BEnd != 0) {
      A.ArrTouched = true;
      A.ArrMaxEnd = std::max(A.ArrMaxEnd, Lo + BEnd);
    }
    ++A.ArrK;
  }

  /// Drives the element loop of the in-flight array term of act \p I.
  /// Returns 0 (term failed), 1 (term done), or 2 (suspended on a child
  /// act).
  int arrayLoop(size_t I, Frame &F) {
    for (;;) {
      MachineAct &A = St.Acts[I];
      const lir::TermL &Ar = *A.Arr;
      if (A.ArrK >= A.ArrTo) {
        --St.ArrayNest;
        restoreLoopVar(F, A);
        const std::vector<uint32_t> &Elems = St.ElemScratch[A.ArrLevel];
        F.ChildIds.push_back(
            Store.makeArray(Ar.Elem, Elems.data(),
                            static_cast<uint32_t>(Elems.size())));
        F.ChildTermIdx.push_back(A.PendTI);
        if (A.ArrTouched)
          F.rec(A.PendTI, 0, A.ArrMaxEnd);
        A.Arr = nullptr;
        A.Wait = MachineAct::WaitNone;
        return 1;
      }
      F.E.set(Ar.Sym, A.ArrK);
      int64_t Lo, Hi;
      if (!evalInterval(F, *Ar.Iv.Src, Lo, Hi) || Hard)
        return arrayFail(I, F);
      if (!ipg_rt::intervalOk(Lo, Hi,
                              static_cast<int64_t>(F.Input.size())))
        return arrayFail(I, F);
      A.PendLo = Lo;
      A.PendHi = Hi;
      A.Wait = MachineAct::WaitArr;
      StartStatus S2 = startAct(Ar.Rule,
                                F.Input.slice(static_cast<size_t>(Lo),
                                              static_cast<size_t>(Hi)),
                                &F);
      if (S2 == ActPushed)
        return 2;
      St.Acts[I].Wait = MachineAct::WaitNone;
      if (S2 == ActDoneFail || Hard)
        return arrayFail(I, F);
      completeArrayElem(I, F, StartNode);
    }
  }

  /// Starts the machine path of an array term whose element rule is Step.
  int startArrayMachine(size_t I, Frame &F, const lir::TermL &T) {
    const auto &Src = *cast<ArrayTerm>(T.Src);
    FrameCtx Ctx(F, G, Store);
    auto From = evaluate(*Src.From, Ctx);
    auto To = evaluate(*Src.To, Ctx);
    if (!From || !To)
      return 0;
    MachineAct &A = St.Acts[I];
    A.Arr = &T;
    A.PendTI = T.TermIdx;
    auto Saved = F.E.get(T.Sym);
    A.ArrHadSaved = Saved.has_value();
    A.ArrSaved = Saved.value_or(0);
    A.ArrLevel = St.ArrayNest++;
    St.elemScratchAt(A.ArrLevel).clear();
    A.ArrTouched = false;
    A.ArrMaxEnd = 0;
    A.ArrK = *From;
    A.ArrTo = *To;
    return arrayLoop(I, F);
  }

  /// Suspends act \p I on a child parse of \p Target (NT term or switch
  /// arm); resolves inline when the child answers from the memo table.
  /// \p Recov / \p HoleSym carry the term's recoverability so a soft
  /// child failure under Salvage becomes a hole over [Lo, Hi) — both on
  /// the inline paths here and on the delivery path in advance().
  int suspendChild(size_t I, Frame &F, uint32_t TI, RuleId Target,
                   const Interval &Iv, bool Recov, Symbol HoleSym) {
    int64_t Lo, Hi;
    if (!evalInterval(F, Iv, Lo, Hi) || Hard)
      return 0;
    if (!ipg_rt::intervalOk(Lo, Hi, static_cast<int64_t>(F.Input.size())))
      return 0;
    Recov = Recov && Hi > Lo; // zero-width holes are refused (see emitHole)
    MachineAct &A = St.Acts[I];
    A.PendTI = TI;
    A.PendLo = Lo;
    A.PendHi = Hi;
    A.PendRecov = Salvage && Recov;
    A.PendHole = HoleSym;
    A.Wait = MachineAct::WaitNT;
    StartStatus S2 = startAct(Target,
                              F.Input.slice(static_cast<size_t>(Lo),
                                            static_cast<size_t>(Hi)),
                              &F);
    if (S2 == ActPushed)
      return 2;
    St.Acts[I].Wait = MachineAct::WaitNone;
    if (Hard)
      return 0;
    if (S2 == ActDoneFail) {
      if (Salvage && Recov && BacktrackLive == 0) {
        emitHoleAt(F, TI, Lo, Hi, HoleSym);
        return 1;
      }
      return 0;
    }
    completeChildNT(F, TI, Lo, Hi, StartNode);
    return 1;
  }

  /// Executes one term of act \p I. Terms whose callee needs the machine
  /// suspend; everything else delegates to the recursive helpers.
  /// Returns 0 (failed), 1 (done), or 2 (suspended).
  int execTermMachine(size_t I, Frame &F, const lir::TermL &T) {
    const Symbol Owner = L.Rules[St.Acts[I].Id].Name;
    switch (T.Op) {
    case lir::TermOp::CallRule: {
      if (T.Rule == InvalidRuleId ||
          L.Rules[T.Rule].Shape != ExecShape::Step)
        return execTermSalvage(F, T, Owner) ? 1 : 0;
      ++Stats.TermsExecuted;
      return suspendChild(I, F, T.TermIdx, T.Rule, *T.Iv.Src,
                          T.Recoverable, T.Sym);
    }
    case lir::TermOp::Select: {
      // Find the committed arm first (condition evaluation is pure);
      // delegate whole-term when it does not need the machine.
      FrameCtx Ctx(F, G, Store);
      const lir::ArmL *Chosen = nullptr;
      for (uint32_t AI = T.ArmsBegin; AI != T.ArmsEnd; ++AI) {
        const lir::ArmL &C = L.Arms[AI];
        if (C.Src->Cond) {
          auto V = evaluate(*C.Src->Cond, Ctx);
          if (!V) {
            ++Stats.TermsExecuted;
            return 0;
          }
          if (*V == 0)
            continue;
        }
        Chosen = &C;
        break;
      }
      if (!Chosen) {
        ++Stats.TermsExecuted;
        return 0; // no arm matched
      }
      if (Chosen->Rule == InvalidRuleId ||
          L.Rules[Chosen->Rule].Shape != ExecShape::Step)
        return execTermSalvage(F, T, Owner) ? 1 : 0;
      ++Stats.TermsExecuted;
      return suspendChild(I, F, T.TermIdx, Chosen->Rule, *Chosen->Iv.Src,
                          T.Recoverable, L.Rules[Chosen->Rule].Name);
    }
    case lir::TermOp::ForArray: {
      if (T.Rule == InvalidRuleId ||
          L.Rules[T.Rule].Shape != ExecShape::Step)
        return execTerm(F, T) ? 1 : 0; // arrays never salvage
      ++Stats.TermsExecuted;
      return startArrayMachine(I, F, T);
    }
    default:
      return execTermSalvage(F, T, Owner) ? 1 : 0;
    }
  }

  /// Runs the top act until it pushes a child or pops itself.
  void advance() {
    size_t I = St.Acts.size() - 1;
    Frame &F = St.frameAt(I + 1);
    const lir::RuleL &R = L.Rules[St.Acts[I].Id];
    bool AltFailed = false;

    // Consume a pending child delivery first.
    if (St.Acts[I].Wait == MachineAct::WaitNT) {
      MachineAct &A = St.Acts[I];
      A.Wait = MachineAct::WaitNone;
      if (ChildOk) {
        completeChildNT(F, A.PendTI, A.PendLo, A.PendHi, ChildNode);
        ++A.StepIdx;
      } else if (A.PendRecov && !Hard && BacktrackLive == 0) {
        // BacktrackLive is judged at failure-delivery time: the child's
        // own contributions are gone, what remains is this act's current
        // alternative plus everything enclosing it.
        emitHoleAt(F, A.PendTI, A.PendLo, A.PendHi, A.PendHole);
        ++A.StepIdx;
      } else {
        AltFailed = true;
      }
    } else if (St.Acts[I].Wait == MachineAct::WaitArr) {
      if (ChildOk) {
        completeArrayElem(I, F, ChildNode);
        int AR = arrayLoop(I, F);
        if (AR == 2)
          return;
        if (AR == 1)
          ++St.Acts[I].StepIdx;
        else
          AltFailed = true;
      } else {
        arrayFail(I, F);
        AltFailed = true;
      }
    }

    for (;;) {
      MachineAct &A = St.Acts[I];
      if (A.AltIdx >= R.Alts.size()) {
        finishAct(InvalidNode);
        return;
      }
      const lir::AltL &Alt = R.Alts[A.AltIdx];
      if (!AltFailed) {
        if (A.NeedBegin) {
          F.beginAlt(A.Input, R.IsLocal ? A.Lex : nullptr,
                     Alt.Exec.size());
          A.NeedBegin = false;
        }
        while (A.StepIdx < Alt.Exec.size()) {
          int TR = execTermMachine(I, F, Alt.Exec[A.StepIdx]);
          if (TR == 2)
            return; // suspended: references above are stale now
          if (TR == 0) {
            AltFailed = true;
            break;
          }
          ++A.StepIdx;
        }
      }
      if (Hard) {
        finishAct(InvalidNode);
        return;
      }
      if (!AltFailed) {
        uint32_t Result = Store.makeNode(
            R.Name, A.Id, F.E, F.ChildIds.data(), F.ChildTermIdx.data(),
            static_cast<uint32_t>(F.ChildIds.size()));
        ++Stats.NodesCreated;
        finishAct(Result);
        return;
      }
      ++A.AltIdx;
      if (A.AltIdx + 1 == R.Alts.size())
        --BacktrackLive; // this act just entered its last alternative
      A.StepIdx = 0;
      A.NeedBegin = true;
      AltFailed = false;
    }
  }

  /// Entry point for a Step start rule: the whole parse runs on the
  /// machine (the up-closure guarantees Direct/Flattened callees never
  /// lead back into a Step rule mid-descent).
  uint32_t runMachine(RuleId Start, ByteSpan Input) {
    St.Acts.clear();
    ChildOk = false;
    ChildNode = InvalidNode;
    StartStatus S0 = startAct(Start, Input, nullptr);
    if (S0 != ActPushed)
      return S0 == ActDoneOk && !Hard ? StartNode : InvalidNode;
    while (!St.Acts.empty() && !Hard)
      advance();
    if (Hard) {
      // Unwind exactly as recursion would: each pending activation
      // erases its reentry key; nothing is memoized.
      while (!St.Acts.empty()) {
        if (St.Acts.back().Inserted)
          St.InProgress.erase(St.Acts.back().Key);
        St.Acts.pop_back();
        --Depth;
      }
      return InvalidNode;
    }
    return ChildOk ? ChildNode : InvalidNode;
  }
};

} // namespace

Interp::Interp(const Grammar &G, const BlackboxRegistry *Blackboxes,
               InterpOptions Opts)
    : G(G), Blackboxes(Blackboxes), Opts(Opts),
      S(std::make_unique<ParseScratch>()) {
  // One lowering per engine: the shared resolution layer (rule targets,
  // literals, recursion shapes, memo eligibility, blackbox sites) all
  // execution modes consume. See lower/LIR.h.
  S->bindGrammar(G, Blackboxes);
}

Interp::~Interp() = default;

Expected<TreePtr> Interp::parse(ByteSpan Input) {
  return parse(Input, G.startSymbol());
}

Expected<TreePtr> Interp::parse(ByteSpan Input, Symbol StartNT) {
  // Reset FIRST: stats() must describe this call even when it fails
  // before doing any work (a stale-stats regression lives in
  // tests/engine_test.cpp and is asserted by the differential harness).
  Stats = InterpStats();
  RuleId Start = StartNT == G.startSymbol()
                     ? S->Lowered.Start
                     : S->Lowered.globalRuleOf(StartNT);
  if (Start == InvalidRuleId) {
    Stats.FailRule = StartNT;
    Stats.FailOffset = Input.absBase();
    return Expected<TreePtr>::failure(
        "start nonterminal '" +
        std::string(G.interner().name(StartNT)) + "' has no rule");
  }
  // Recycle a store when one is available: either the engine still holds
  // one (the previous parse failed, so no result escaped) or a dropped
  // TreePtr parked its store in the recycler. Otherwise — first parse, or
  // every previous tree is still alive — this parse gets a fresh store.
  S->beginParse(Stats);
  Runner R(G, Opts, Stats, *S, HasDeadline, Deadline);
  return R.run(Input, Start);
}

bool Interp::adoptStore(TreeStore *Store) { return S->adopt(Store); }
