//===- runtime/Interp.cpp -------------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Interp.h"

#include "analysis/RecShape.h"
#include "expr/Eval.h"
#include "support/Casting.h"
#include "support/FlatHash.h"
#include "support/GenRuntime.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

using namespace ipg;

//===----------------------------------------------------------------------===//
// Reusable engine state. Everything here survives across parse() calls so
// the steady state allocates nothing: vectors and the flat hashes keep
// their capacity through clear(), the TreeStore keeps its arena blocks
// through reset(), and frames are pooled per recursion depth.
//===----------------------------------------------------------------------===//

namespace ipg {

struct InterpState {
  /// Per-alternative execution state: the environment E, the ids of
  /// already-built child trees, and per-term touch records for TermEnd.
  struct Frame {
    ByteSpan Input;
    Env E;
    std::vector<uint32_t> ChildIds;
    std::vector<uint32_t> ChildTermIdx;

    /// Per-term touch records, invalidated per alternative by generation
    /// stamp — a rule with many failing alternatives pays O(1) per
    /// attempt instead of refilling the array (the same scheme as the
    /// generated ipg_rt::Frame).
    struct TermRec {
      uint32_t Gen = 0;
      int64_t Start = 0;
      int64_t End = 0;
    };
    std::vector<TermRec> Recs;
    uint32_t RecGen = 0;

    /// Enclosing frame for where-clause rules (null for global rules).
    const Frame *Lexical = nullptr;

    void beginAlt(ByteSpan In, const Frame *Lex, size_t NumTerms) {
      Input = In;
      Lexical = Lex;
      E.clear();
      ChildIds.clear();
      ChildTermIdx.clear();
      if (Recs.size() < NumTerms)
        Recs.resize(NumTerms);
      if (++RecGen == 0) {
        // Generation wrap (once per 2^32 alternatives): ancient stamps
        // could alias the restarted counter, so pay one full sweep.
        for (TermRec &R : Recs)
          R.Gen = 0;
        RecGen = 1;
      }
    }

    void rec(uint32_t TermIdx, int64_t Start, int64_t End) {
      Recs[TermIdx] = TermRec{RecGen, Start, End};
    }
    bool termEnd(uint32_t TermIdx, int64_t &Out) const {
      if (TermIdx >= Recs.size() || Recs[TermIdx].Gen != RecGen)
        return false;
      Out = Recs[TermIdx].End;
      return true;
    }
  };

  /// ipg_rt::memoPack'd outcomes — the same encoding the generated Ctx
  /// uses, through the same helpers; ids are stable within a parse.
  FlatIntervalMap<uint32_t> Memo;
  FlatIntervalMap<uint8_t> InProgress;
  /// Per-rule memoization eligibility (computed once per engine): global
  /// rules that spawn subparsers. Indexed by RuleId.
  std::vector<uint8_t> RuleMemoizable;
  std::vector<std::unique_ptr<Frame>> FramePool; // indexed by depth
  std::vector<std::vector<uint32_t>> ElemScratch; // per array-nesting level
  size_t ArrayNest = 0;

  /// Recursion-shape classification (analysis/RecShape.h), computed once
  /// per engine — the same analysis the code generator runs, so both
  /// engines pick the same execution strategy per rule.
  RecShapeResult Shapes;

  /// Flattened-tier state: the descend/replay window stack, banked
  /// prefix-child records, and (under DetectReentry) the in-progress keys
  /// of pending levels. Nested flattened activations share these vectors
  /// through saved bases; capacity persists across parses, so the steady
  /// state allocates nothing.
  struct FlatKid {
    uint32_t Node = 0;   ///< adjusted (shifted) child node id
    int64_t Start = 0;   ///< recorded child start as the parent saw it
    int64_t End = 0;     ///< recorded child end as the parent saw it
    bool Touched = false;
  };
  std::vector<ByteSpan> FlatLevels;
  std::vector<FlatKid> FlatKids;
  std::vector<IntervalKey> FlatKeys;

  /// Step-tier activation record: one per live rule invocation on the
  /// explicit work-stack machine (the machine only ever starts at the
  /// parse root; see analyzeRecShape's up-closure).
  struct MachineAct {
    RuleId Id = InvalidRuleId;
    ByteSpan Input;
    const Frame *Lex = nullptr; ///< lexical frame for where-clause rules
    IntervalKey Key;
    uint32_t AltIdx = 0;
    uint32_t StepIdx = 0; ///< next position in the alternative's exec order
    enum : uint8_t { WaitNone, WaitNT, WaitArr };
    uint8_t Wait = WaitNone;
    bool Memoize = false;
    bool Inserted = false;  ///< holds an InProgress reentry key
    bool NeedBegin = true;  ///< beginAlt pending for (AltIdx, StepIdx=0)
    uint32_t PendTI = 0;    ///< term index of the suspended child
    int64_t PendLo = 0;
    int64_t PendHi = 0;
    const ArrayTerm *Arr = nullptr; ///< in-flight array term, if any
    int64_t ArrK = 0;
    int64_t ArrTo = 0;
    int64_t ArrMaxEnd = 0;
    bool ArrTouched = false;
    bool ArrHadSaved = false;
    int64_t ArrSaved = 0;
    size_t ArrLevel = 0;
  };
  std::vector<MachineAct> Acts;

  /// The store of the parse in flight (and, after a FAILED parse, of the
  /// next one — failures recycle trivially since no result escaped). A
  /// successful parse MOVES this into the returned TreePtr: the engine
  /// keeps no reference, so the result path performs zero refcount
  /// traffic, and a dropped result finds its way back through Pool.
  TreeStore *Cur = nullptr;
  /// Where dying TreePtrs park their store for reuse; heap-allocated so
  /// it can outlive whichever of engine / last tree dies first.
  TreeStore::Recycler *Pool = new TreeStore::Recycler();

  ~InterpState() {
    TreeStore::Recycler *P = Pool;
    P->OwnerAlive = false;
    TreeStore *Parked = P->Returned;
    P->Returned = nullptr;
    bool DestroyedAny = Cur || Parked;
    if (Cur)
      TreeStore::destroy(Cur); // may free P when it was the last store
    if (Parked)
      TreeStore::destroy(Parked);
    // No store went through destroy() and none are loaned out: P is ours
    // to free. (Outstanding TreePtrs free it through their last release.)
    if (!DestroyedAny && P->LiveStores == 0)
      delete P;
  }

  Frame &frameAt(size_t Depth) {
    while (FramePool.size() <= Depth)
      FramePool.push_back(std::make_unique<Frame>());
    return *FramePool[Depth];
  }

  std::vector<uint32_t> &elemScratchAt(size_t Level) {
    if (ElemScratch.size() <= Level)
      ElemScratch.resize(Level + 1);
    return ElemScratch[Level];
  }
};

} // namespace ipg

namespace {

using Frame = InterpState::Frame;

// The interpreter and the generated parsers share one semantic core
// (support/GenRuntime.h, embedded verbatim into codegen output). The
// ReadKind encoding used across that boundary must mirror the enum.
static_assert(static_cast<unsigned>(ReadKind::U8) == ipg_rt::RK_U8 &&
                  static_cast<unsigned>(ReadKind::U16Le) == ipg_rt::RK_U16Le &&
                  static_cast<unsigned>(ReadKind::U32Le) == ipg_rt::RK_U32Le &&
                  static_cast<unsigned>(ReadKind::U64Le) == ipg_rt::RK_U64Le &&
                  static_cast<unsigned>(ReadKind::U16Be) == ipg_rt::RK_U16Be &&
                  static_cast<unsigned>(ReadKind::U32Be) == ipg_rt::RK_U32Be &&
                  static_cast<unsigned>(ReadKind::BtoiLe) ==
                      ipg_rt::RK_BtoiLe &&
                  static_cast<unsigned>(ReadKind::BtoiBe) == ipg_rt::RK_BtoiBe,
              "ipg_rt read-kind encoding must mirror ipg::ReadKind");

/// Env adapter with the getAttr/setAttr surface ipg_rt::updStartEnd
/// expects.
struct EnvRef {
  Env &E;
  bool getAttr(Symbol S, long long &Out) const {
    if (auto V = E.get(S)) {
      Out = *V;
      return true;
    }
    return false;
  }
  void setAttr(Symbol S, long long V) { E.set(S, static_cast<int64_t>(V)); }
};

/// EvalContext view of a Frame (sigma of Figure 8). Child trees are stored
/// as ids; the store resolves them.
class FrameCtx : public EvalContext {
public:
  FrameCtx(const Frame &F, const Grammar &G, const TreeStore &Store)
      : F(F), G(G), Store(Store) {}

  std::optional<int64_t> attr(Symbol Id) const override {
    for (const Frame *L = &F; L; L = L->Lexical)
      if (auto V = L->E.get(Id))
        return V;
    return std::nullopt;
  }

  std::optional<int64_t> ntAttr(Symbol NT, Symbol Attr) const override {
    for (const Frame *L = &F; L; L = L->Lexical)
      for (size_t I = L->ChildIds.size(); I-- > 0;)
        if (const auto *N = dyn_cast<NodeTree>(Store.node(L->ChildIds[I])))
          if (N->name() == NT)
            return N->attr(Attr);
    return std::nullopt;
  }

  std::optional<int64_t> elemAttr(Symbol NT, int64_t Index,
                                  Symbol Attr) const override {
    const ArrayTree *A = findArray(NT);
    if (!A || Index < 0 || static_cast<size_t>(Index) >= A->size())
      return std::nullopt;
    const NodeTree *N = A->element(static_cast<size_t>(Index));
    return N ? N->attr(Attr) : std::nullopt;
  }

  std::optional<int64_t> arrayLength(Symbol NT) const override {
    const ArrayTree *A = findArray(NT);
    if (!A)
      return std::nullopt;
    return static_cast<int64_t>(A->size());
  }

  std::optional<int64_t> eoi() const override {
    return static_cast<int64_t>(F.Input.size());
  }

  std::optional<int64_t> termEnd(uint32_t TermIdx) const override {
    int64_t Out = 0;
    if (!F.termEnd(TermIdx, Out))
      return std::nullopt;
    return Out;
  }

  std::optional<int64_t> readInput(ReadKind RK, int64_t Lo,
                                   int64_t Hi) const override {
    // Width/endianness and the bounds guards live in the shared runtime
    // (the generated parsers call the same functions).
    long long Width = 0;
    bool BigEndian = false;
    if (!ipg_rt::readKindSpec(static_cast<unsigned>(RK), Width, BigEndian) &&
        !ipg_rt::btoiWidth(Lo, Hi, Width)) // btoi(lo, hi) window
      return std::nullopt;
    long long Out = 0;
    if (!ipg_rt::readScalar(F.Input.data(),
                            static_cast<long long>(F.Input.size()), Lo,
                            Width, BigEndian, Out))
      return std::nullopt;
    return static_cast<int64_t>(Out);
  }

private:
  const Frame &F;
  const Grammar &G;
  const TreeStore &Store;

  const ArrayTree *findArray(Symbol NT) const {
    for (const Frame *L = &F; L; L = L->Lexical)
      for (size_t I = L->ChildIds.size(); I-- > 0;)
        if (const auto *A = dyn_cast<ArrayTree>(Store.node(L->ChildIds[I])))
          if (A->elemName() == NT)
            return A;
    return nullptr;
  }
};

/// One parse() invocation over recycled InterpState.
class Runner {
public:
  Runner(const Grammar &G, const BlackboxRegistry *Blackboxes,
         const InterpOptions &Opts, InterpStats &Stats, InterpState &St)
      : G(G), Blackboxes(Blackboxes), Opts(Opts), Stats(Stats), St(St),
        Store(*St.Cur) {}

  Expected<TreePtr> run(ByteSpan Input, RuleId Start) {
    uint32_t RootId = St.Shapes.Shape[Start] == ExecShape::Step
                          ? runMachine(Start, Input)
                          : parseRule(Start, Input, nullptr);
    const NodeTree *Node =
        RootId == InvalidNode
            ? nullptr
            : cast<NodeTree>(Store.node(RootId));
    Stats.ArenaBytesUsed = Store.arenaBytesUsed();
    if (Hard)
      return Expected<TreePtr>(std::move(Hard));
    if (!Node)
      return Expected<TreePtr>::failure(
          "parse failed: input rejected by rule '" +
          std::string(G.interner().name(G.rule(Start).Name)) + "'");
    // Move the store out to the result: the engine keeps no reference
    // (zero refcount traffic on this path), and when the caller drops the
    // TreePtr the store parks itself in St.Pool for the next parse.
    TreeStore *Owned = St.Cur;
    St.Cur = nullptr;
    return Expected<TreePtr>(TreePtr(Owned, Node));
  }

private:
  const Grammar &G;
  const BlackboxRegistry *Blackboxes;
  const InterpOptions &Opts;
  InterpStats &Stats;
  InterpState &St;
  TreeStore &Store;
  Error Hard = Error::success();
  size_t Depth = 0;

  /// parseRule's failure id (nodes are 32-bit store indices).
  static constexpr uint32_t InvalidNode = ~0u;

  /// updStartEnd of Figure 8: the first-update min/max shared with the
  /// generated runtime. start/end enter the environment only once a term
  /// touches bytes; there is no pre-seeded sentinel.
  void updStartEnd(Env &E, int64_t Lo, int64_t Hi, bool Touched) {
    EnvRef R{E};
    ipg_rt::updStartEnd(R, G.symStart(), G.symEnd(), Lo, Hi, Touched);
  }

  /// The subtree's [start, end) as the parent sees it (T-NTSucc defaults,
  /// shared with the generated runtime): untouched subtrees read as
  /// [sub-EOI, 0).
  void childSpan(const NodeTree &Sub, int64_t SubEoi, int64_t &BStart,
                 int64_t &BEnd) {
    auto S = Sub.attr(G.symStart());
    auto En = Sub.attr(G.symEnd());
    long long BS = 0, BE = 0;
    ipg_rt::childSpan(S.has_value(), S.value_or(0), En.has_value(),
                      En.value_or(0), SubEoi, BS, BE);
    BStart = BS;
    BEnd = BE;
  }

  /// Evaluates an interval; false means evaluation failed (term fails).
  bool evalInterval(const Frame &F, const Interval &Iv, int64_t &Lo,
                    int64_t &Hi) {
    FrameCtx Ctx(F, G, Store);
    if (!Iv.Lo || !Iv.Hi) {
      Hard = Error::failure("internal: interval not completed (run "
                            "completeIntervals before parsing)");
      return false;
    }
    auto L = evaluate(*Iv.Lo, Ctx);
    if (!L)
      return false;
    auto H = evaluate(*Iv.Hi, Ctx);
    if (!H)
      return false;
    Lo = *L;
    Hi = *H;
    return true;
  }

  /// Records a successfully parsed child subtree \p Sub (parsed over
  /// [Lo, Hi) of F's window) into the frame: T-NTSucc span defaults,
  /// interval shift, first-update start/end, touch record.
  void completeChildNT(Frame &F, uint32_t TermIdx, int64_t Lo, int64_t Hi,
                       uint32_t Sub, InterpState::FlatKid *Bank = nullptr) {
    int64_t BStart, BEnd;
    childSpan(*cast<NodeTree>(Store.node(Sub)), Hi - Lo, BStart, BEnd);
    uint32_t Adjusted = Store.makeShifted(Sub, Lo, G.symStart(), G.symEnd());
    updStartEnd(F.E, Lo + BStart, Lo + BEnd, BEnd != 0);
    F.ChildIds.push_back(Adjusted);
    F.ChildTermIdx.push_back(TermIdx);
    F.rec(TermIdx, Lo + BStart, Lo + BEnd);
    if (Bank)
      *Bank = InterpState::FlatKid{Adjusted, Lo + BStart, Lo + BEnd,
                                   BEnd != 0};
  }

  /// Parses a child nonterminal (shared by NT terms, array elements and
  /// switch arms). Returns false on Fail; records into the frame on
  /// success. \p Bank, when set, additionally captures the record the
  /// flattened tier replays on its way back up.
  bool parseChildNT(Frame &F, uint32_t TermIdx, RuleId Target,
                    const Interval &Iv,
                    InterpState::FlatKid *Bank = nullptr) {
    int64_t Lo, Hi;
    if (!evalInterval(F, Iv, Lo, Hi) || Hard)
      return false;
    if (!ipg_rt::intervalOk(Lo, Hi, static_cast<int64_t>(F.Input.size())))
      return false;
    uint32_t Sub =
        parseRule(Target, F.Input.slice(static_cast<size_t>(Lo),
                                        static_cast<size_t>(Hi)),
                  &F);
    if (Hard || Sub == InvalidNode)
      return false;
    completeChildNT(F, TermIdx, Lo, Hi, Sub, Bank);
    return true;
  }

  bool execTerm(Frame &F, const Alternative &Alt, uint32_t TI) {
    ++Stats.TermsExecuted;
    const Term &T = *Alt.Terms[TI];
    switch (T.kind()) {
    case Term::Kind::Nonterminal: {
      const auto &N = *cast<NTTerm>(&T);
      if (N.Resolved == InvalidRuleId) {
        Hard = Error::failure("internal: unresolved nonterminal '" +
                              std::string(G.interner().name(N.Name)) +
                              "' (run checkAttributes before parsing)");
        return false;
      }
      return parseChildNT(F, TI, N.Resolved, N.Iv);
    }

    case Term::Kind::Terminal:
      return execTerminal(F, *cast<TerminalTerm>(&T), TI);

    case Term::Kind::AttrDef:
      return execAttrDef(F, *cast<AttrDefTerm>(&T));

    case Term::Kind::Predicate:
      return execPredicate(F, *cast<PredicateTerm>(&T));

    case Term::Kind::Array:
      return execArray(F, *cast<ArrayTerm>(&T), TI);

    case Term::Kind::Switch: {
      const auto &Sw = *cast<SwitchTerm>(&T);
      FrameCtx Ctx(F, G, Store);
      for (const SwitchChoice &C : Sw.Choices) {
        if (C.Cond) {
          auto V = evaluate(*C.Cond, Ctx);
          if (!V)
            return false;
          if (*V == 0)
            continue;
        }
        if (C.Resolved == InvalidRuleId) {
          Hard = Error::failure("internal: unresolved switch arm");
          return false;
        }
        return parseChildNT(F, TI, C.Resolved, C.Iv);
      }
      return false; // no arm matched
    }

    case Term::Kind::Blackbox:
      return execBlackbox(F, *cast<BlackboxTerm>(&T), TI);
    }
    return false;
  }

  bool execTerminal(Frame &F, const TerminalTerm &S, uint32_t TI) {
    int64_t Lo, Hi;
    if (!evalInterval(F, S.Iv, Lo, Hi) || Hard)
      return false;
    if (!ipg_rt::intervalOk(Lo, Hi, static_cast<int64_t>(F.Input.size())))
      return false;
    if (S.Wildcard) {
      // `raw` matches the whole interval without reading or copying it.
      updStartEnd(F.E, Lo, Hi, Hi > Lo);
      F.ChildIds.push_back(
          Store.makeLeaf(F.Input.data() + Lo,
                         static_cast<size_t>(Hi - Lo), Lo,
                         /*Opaque=*/true));
      F.ChildTermIdx.push_back(TI);
      F.rec(TI, Lo, Hi);
      return true;
    }
    int64_t Len = static_cast<int64_t>(S.Bytes.size());
    if (Hi - Lo < Len)
      return false;
    if (!F.Input.matchesAt(static_cast<size_t>(Lo), S.Bytes))
      return false;
    updStartEnd(F.E, Lo, Lo + Len, Len > 0);
    // Zero-copy: the leaf aliases the matched window of the input.
    F.ChildIds.push_back(Store.makeLeaf(F.Input.data() + Lo,
                                        static_cast<size_t>(Len), Lo,
                                        /*Opaque=*/false));
    F.ChildTermIdx.push_back(TI);
    F.rec(TI, Lo, Lo + Len);
    return true;
  }

  /// A terminal on the flattened tier's way DOWN: match and record the
  /// interval effects (start/end, touch record) but build no leaf — the
  /// replay on the way back up materializes it. Counts as an execution;
  /// the replay does not.
  bool probeTerminal(Frame &F, const TerminalTerm &S, uint32_t TI) {
    ++Stats.TermsExecuted;
    int64_t Lo, Hi;
    if (!evalInterval(F, S.Iv, Lo, Hi) || Hard)
      return false;
    if (!ipg_rt::intervalOk(Lo, Hi, static_cast<int64_t>(F.Input.size())))
      return false;
    if (S.Wildcard) {
      updStartEnd(F.E, Lo, Hi, Hi > Lo);
      F.rec(TI, Lo, Hi);
      return true;
    }
    int64_t Len = static_cast<int64_t>(S.Bytes.size());
    if (Hi - Lo < Len)
      return false;
    if (!F.Input.matchesAt(static_cast<size_t>(Lo), S.Bytes))
      return false;
    updStartEnd(F.E, Lo, Lo + Len, Len > 0);
    F.rec(TI, Lo, Lo + Len);
    return true;
  }

  bool execAttrDef(Frame &F, const AttrDefTerm &D) {
    FrameCtx Ctx(F, G, Store);
    auto V = evaluate(*D.Value, Ctx);
    if (!V)
      return false;
    F.E.set(D.Name, *V);
    return true;
  }

  bool execPredicate(Frame &F, const PredicateTerm &P) {
    FrameCtx Ctx(F, G, Store);
    auto V = evaluate(*P.Cond, Ctx);
    return V && *V != 0;
  }

  bool execArray(Frame &F, const ArrayTerm &A, uint32_t TI) {
    FrameCtx Ctx(F, G, Store);
    auto From = evaluate(*A.From, Ctx);
    auto To = evaluate(*A.To, Ctx);
    if (!From || !To)
      return false;
    if (A.Resolved == InvalidRuleId) {
      Hard = Error::failure("internal: unresolved array element");
      return false;
    }

    // Save any outer binding of the loop variable and bind it per element;
    // the binding is visible to el/er and (through the lexical chain) to
    // local element rules, matching T-ArraySucc's E[id -> k].
    auto Saved = F.E.get(A.LoopVar);
    // Element ids accumulate in per-nesting-level scratch. Elements may
    // contain arrays at deeper levels, and entering a deeper level can
    // resize the pool — re-index on every access instead of holding a
    // reference across the recursive parses below.
    size_t Level = St.ArrayNest++;
    St.elemScratchAt(Level).clear();
    bool AnyTouched = false;
    int64_t MaxEnd = 0;
    bool Failed = false;

    for (int64_t K = *From; K < *To; ++K) {
      F.E.set(A.LoopVar, K);
      int64_t Lo, Hi;
      if (!evalInterval(F, A.Iv, Lo, Hi) || Hard) {
        Failed = true;
        break;
      }
      if (!ipg_rt::intervalOk(Lo, Hi,
                              static_cast<int64_t>(F.Input.size()))) {
        Failed = true;
        break;
      }
      uint32_t Sub =
          parseRule(A.Resolved,
                    F.Input.slice(static_cast<size_t>(Lo),
                                  static_cast<size_t>(Hi)),
                    &F);
      if (Hard || Sub == InvalidNode) {
        Failed = true;
        break;
      }
      int64_t BStart, BEnd;
      childSpan(*cast<NodeTree>(Store.node(Sub)), Hi - Lo, BStart, BEnd);
      St.ElemScratch[Level].push_back(
          Store.makeShifted(Sub, Lo, G.symStart(), G.symEnd()));
      updStartEnd(F.E, Lo + BStart, Lo + BEnd, BEnd != 0);
      if (BEnd != 0) {
        AnyTouched = true;
        MaxEnd = std::max(MaxEnd, Lo + BEnd);
      }
    }

    --St.ArrayNest;
    if (Saved)
      F.E.set(A.LoopVar, *Saved);
    else
      F.E.erase(A.LoopVar);
    if (Failed)
      return false;

    const std::vector<uint32_t> &Elems = St.ElemScratch[Level];
    F.ChildIds.push_back(
        Store.makeArray(A.Elem, Elems.data(),
                        static_cast<uint32_t>(Elems.size())));
    F.ChildTermIdx.push_back(TI);
    if (AnyTouched)
      F.rec(TI, 0, MaxEnd);
    return true;
  }

  bool execBlackbox(Frame &F, const BlackboxTerm &B, uint32_t TI) {
    int64_t Lo, Hi;
    if (!evalInterval(F, B.Iv, Lo, Hi) || Hard)
      return false;
    if (!ipg_rt::intervalOk(Lo, Hi, static_cast<int64_t>(F.Input.size())))
      return false;

    std::string Name(G.interner().name(B.Name));
    const BlackboxFn *Fn =
        Blackboxes ? Blackboxes->find(Name) : nullptr;
    if (!Fn) {
      Hard = Error::failure("blackbox parser '" + Name +
                            "' is not registered");
      return false;
    }
    ByteSpan Slice = F.Input.slice(static_cast<size_t>(Lo),
                                   static_cast<size_t>(Hi));
    BlackboxResult Res = (*Fn)(Slice);
    if (!Res.Ok)
      return false;
    if (Res.End > Slice.size()) {
      Hard = Error::failure("blackbox parser '" + Name +
                            "' consumed past its interval");
      return false;
    }

    EnvSlot Slots[3];
    Slots[0] = {G.symVal(), Res.Value};
    if (Res.End > 0) {
      Slots[1] = {G.symStart(), Lo};
      Slots[2] = {G.symEnd(), Lo + static_cast<int64_t>(Res.End)};
    } else {
      Slots[1] = {G.symStart(), Hi - Lo};
      Slots[2] = {G.symEnd(), Lo};
    }
    uint32_t KidIds[1];
    uint32_t KidTerms[1] = {0};
    uint32_t NumKids = 0;
    if (!Res.Output.empty()) {
      // Decoded output is not a window into the input; copy it into the
      // arena so the leaf's lifetime matches the tree's.
      KidIds[0] =
          Store.makeLeafCopy(Res.Output.data(), Res.Output.size(), 0);
      NumKids = 1;
    }
    uint32_t Node = Store.makeNodeFromSlots(B.Name, InvalidRuleId, Slots, 3,
                                            KidIds, KidTerms, NumKids);
    ++Stats.NodesCreated;
    updStartEnd(F.E, Lo, Lo + static_cast<int64_t>(Res.End), Res.End > 0);
    F.ChildIds.push_back(Node);
    F.ChildTermIdx.push_back(TI);
    F.rec(TI, Lo, Lo + static_cast<int64_t>(Res.End));
    return true;
  }

  /// The depth-limit hard error, shared by all three execution tiers.
  Error depthError(const Rule &R) {
    return Error::failure(
        "recursion depth limit exceeded while parsing rule '" +
        std::string(G.interner().name(R.Name)) +
        "' (likely a non-terminating grammar; see termination checking)");
  }

  /// Parses \p Id over \p Input; returns the frozen node id, or
  /// InvalidNode on failure (check Hard for aborts). Dispatches on the
  /// rule's recursion shape: Flattened rules run as a descend/replay loop
  /// (parseFlattened) and Step rules only ever run on the work-stack
  /// machine starting at the parse root (runMachine) — recursive descent
  /// here is reserved for Direct rules, whose C-stack use is bounded by
  /// the grammar, never by the input.
  uint32_t parseRule(RuleId Id, ByteSpan Input, const Frame *Lexical) {
    if (Hard)
      return InvalidNode;
    if (St.Shapes.Shape[Id] == ExecShape::Flattened)
      return parseFlattened(Id, Input);
    assert(St.Shapes.Shape[Id] != ExecShape::Step &&
           "step rules only run on the machine (up-closure violated)");
    if (Depth >= Opts.MaxDepth) {
      Hard = depthError(G.rule(Id));
      return InvalidNode;
    }
    ++Depth;
    Stats.PeakDepth = std::max(Stats.PeakDepth, Depth);

    const Rule &R = G.rule(Id);
    // Local rules are never memoized (their meaning depends on the
    // enclosing frame); leaf rules are excluded as a pure optimization —
    // re-matching a handful of terminals/attrdefs is cheaper than a probe
    // (ruleSpawnsSubparsers, the policy shared with generated parsers).
    bool Memoize = Opts.UseMemo && St.RuleMemoizable[Id];
    bool TrackReentry = Opts.DetectReentry && !R.IsLocal;
    IntervalKey Key;
    if (Memoize || TrackReentry)
      Key = IntervalKey::pack(Id, Input.absBase(),
                              Input.absBase() + Input.size());
    if (Memoize) {
      if (const uint32_t *Hit = St.Memo.find(Key)) {
        ++Stats.MemoHits;
        --Depth;
        unsigned NodeId = 0;
        return ipg_rt::memoUnpack(*Hit, NodeId) ? NodeId : InvalidNode;
      }
      ++Stats.MemoMisses;
    }
    if (TrackReentry && !St.InProgress.insert(Key, 1)) {
      --Depth;
      return InvalidNode; // packrat-style: in-progress re-entry fails
    }

    uint32_t Result = InvalidNode;
    Frame &F = St.frameAt(Depth);
    for (const Alternative &Alt : R.Alts) {
      F.beginAlt(Input, R.IsLocal ? Lexical : nullptr, Alt.Terms.size());
      // The environment starts empty: EOI is answered from the frame
      // (never stored as an attribute, so a grammar attribute named "EOI"
      // cannot collide through the lexical lookup), and start/end appear
      // only once a term touches bytes (first-update updStartEnd) — a
      // byte-untouched node exposes neither, and reading its X.start
      // fails with partiality, exactly as in the generated parsers.
      bool Ok = true;
      size_t NumTerms = Alt.Terms.size();
      for (size_t Step = 0; Step < NumTerms; ++Step) {
        uint32_t TI = Alt.ExecOrder.empty()
                          ? static_cast<uint32_t>(Step)
                          : Alt.ExecOrder[Step];
        if (!execTerm(F, Alt, TI)) {
          Ok = false;
          break;
        }
      }
      if (Hard)
        break;
      if (Ok) {
        Result = Store.makeNode(
            R.Name, Id, F.E, F.ChildIds.data(), F.ChildTermIdx.data(),
            static_cast<uint32_t>(F.ChildIds.size()));
        ++Stats.NodesCreated;
        break;
      }
    }

    if (TrackReentry)
      St.InProgress.erase(Key);
    if (Memoize && !Hard)
      St.Memo.insert(Key, ipg_rt::memoPack(
                              Result == InvalidNode ? 0u : Result,
                              Result != InvalidNode));
    --Depth;
    return Hard ? InvalidNode : Result;
  }

  /// Flattened linear recursion (analysis/RecShape.h): the single self
  /// call becomes a descend/replay loop over a heap-backed window stack,
  /// so grammar recursion depth is bounded by Opts.MaxDepth alone — never
  /// by the C stack. One frame serves every level: on the way DOWN each
  /// level tries its pre-self alternatives for real, probes the self
  /// alternative's prefix (terminals record intervals but build no leaf;
  /// child nonterminals parse for real and bank their records), then
  /// descends into the self interval. On the way UP the self alternative
  /// replays per level — rebuilding the environment, materializing the
  /// terminal leaves, rebinding the banked children — completes the self
  /// child, and runs the suffix. Alternative order, memo traffic, depth
  /// accounting, and reentry tracking match the recursive form exactly.
  uint32_t parseFlattened(RuleId Id, ByteSpan Input) {
    const Rule &R = G.rule(Id);
    const FlattenInfo &FI = St.Shapes.Flatten[Id];
    const Alternative &SAlt = R.Alts[FI.SelfAlt];
    const auto &SelfNT = *cast<NTTerm>(SAlt.Terms[FI.SelfTerm].get());
    const size_t PN = FI.PrefixNTTerms.size();
    const bool Memoize = Opts.UseMemo && St.RuleMemoizable[Id];
    const bool TrackReentry = Opts.DetectReentry; // never a local rule
    const size_t EntryDepth = Depth;
    const size_t LvBase = St.FlatLevels.size();
    const size_t KidBase = St.FlatKids.size();
    const size_t KeyBase = St.FlatKeys.size();
    Frame &F = St.frameAt(EntryDepth + 1);
    ByteSpan Cur = Input;
    uint32_t Sub = InvalidNode;
    int64_t SLo = 0, SHi = 0;

    auto levelKey = [&] {
      return IntervalKey::pack(Id, Cur.absBase(),
                               Cur.absBase() + Cur.size());
    };
    auto execTI = [](const Alternative &A, size_t Step) {
      return A.ExecOrder.empty() ? static_cast<uint32_t>(Step)
                                 : A.ExecOrder[Step];
    };

  flat_descend:
    // Depth here is VIRTUAL — entry depth plus pending levels, the exact
    // figure the recursive form would have reached.
    Depth = EntryDepth + (St.FlatLevels.size() - LvBase);
    if (Depth >= Opts.MaxDepth) {
      Hard = depthError(R);
      goto flat_hard;
    }
    ++Depth;
    Stats.PeakDepth = std::max(Stats.PeakDepth, Depth);
    if (Memoize) {
      if (const uint32_t *Hit = St.Memo.find(levelKey())) {
        ++Stats.MemoHits;
        unsigned NodeId = 0;
        if (ipg_rt::memoUnpack(*Hit, NodeId)) {
          Sub = NodeId;
          goto flat_resolved;
        }
        goto flat_level_failed;
      }
      ++Stats.MemoMisses;
    }
    if (TrackReentry) {
      IntervalKey K = levelKey();
      if (!St.InProgress.insert(K, 1))
        goto flat_level_failed; // packrat-style: in-progress re-entry fails
      St.FlatKeys.push_back(K);
    }

    // Alternatives BEFORE the self alternative run for real at every
    // level on the way down (recursion tries them first per activation).
    for (size_t AI = 0; AI < FI.SelfAlt; ++AI) {
      const Alternative &Alt = R.Alts[AI];
      F.beginAlt(Cur, nullptr, Alt.Terms.size());
      bool Ok = true;
      for (size_t Step = 0; Step < Alt.Terms.size(); ++Step)
        if (!execTerm(F, Alt, execTI(Alt, Step))) {
          Ok = false;
          break;
        }
      if (Hard)
        goto flat_hard;
      if (Ok) {
        Sub = Store.makeNode(
            R.Name, Id, F.E, F.ChildIds.data(), F.ChildTermIdx.data(),
            static_cast<uint32_t>(F.ChildIds.size()));
        ++Stats.NodesCreated;
        goto flat_level_ok;
      }
    }

    // The self alternative's prefix (descend phase), then push the level
    // and descend into the self interval.
    {
      F.beginAlt(Cur, nullptr, SAlt.Terms.size());
      for (size_t Step = 0; Step < FI.SelfExecPos; ++Step) {
        uint32_t TI = execTI(SAlt, Step);
        const Term &T = *SAlt.Terms[TI];
        bool Ok;
        if (const auto *NT = dyn_cast<NTTerm>(&T)) {
          if (NT->Resolved == InvalidRuleId) {
            Hard = Error::failure(
                "internal: unresolved nonterminal '" +
                std::string(G.interner().name(NT->Name)) +
                "' (run checkAttributes before parsing)");
            goto flat_hard;
          }
          ++Stats.TermsExecuted;
          InterpState::FlatKid Bank;
          Ok = parseChildNT(F, TI, NT->Resolved, NT->Iv, &Bank);
          if (Ok)
            St.FlatKids.push_back(Bank);
        } else if (T.kind() == Term::Kind::Terminal) {
          Ok = probeTerminal(F, *cast<TerminalTerm>(&T), TI);
        } else {
          Ok = execTerm(F, SAlt, TI);
        }
        if (!Ok) {
          if (Hard)
            goto flat_hard;
          goto flat_post_alts;
        }
      }
      ++Stats.TermsExecuted; // the self nonterminal term
      if (!evalInterval(F, SelfNT.Iv, SLo, SHi) || Hard) {
        if (Hard)
          goto flat_hard;
        goto flat_post_alts;
      }
      if (!ipg_rt::intervalOk(SLo, SHi,
                              static_cast<int64_t>(F.Input.size())))
        goto flat_post_alts;
      St.FlatLevels.push_back(Cur);
      Cur = F.Input.slice(static_cast<size_t>(SLo),
                          static_cast<size_t>(SHi));
      goto flat_descend;
    }

    // The current level resolved to node Sub at the descend: close its
    // bookkeeping (recursion: erase reentry, then memoize) and unwind.
  flat_level_ok:
    if (TrackReentry) {
      St.InProgress.erase(St.FlatKeys.back());
      St.FlatKeys.pop_back();
    }
    if (Memoize)
      St.Memo.insert(levelKey(), ipg_rt::memoPack(Sub, true));
    goto flat_resolved;

    // Alternatives AFTER the self alternative, tried when the self
    // alternative failed at the current level (prefix, child, or suffix).
  flat_post_alts:
    Depth = EntryDepth + 1 + (St.FlatLevels.size() - LvBase);
    St.FlatKids.resize(KidBase +
                       (St.FlatLevels.size() - LvBase) * PN);
    for (size_t AI = FI.SelfAlt + 1; AI < R.Alts.size(); ++AI) {
      const Alternative &Alt = R.Alts[AI];
      F.beginAlt(Cur, nullptr, Alt.Terms.size());
      bool Ok = true;
      for (size_t Step = 0; Step < Alt.Terms.size(); ++Step)
        if (!execTerm(F, Alt, execTI(Alt, Step))) {
          Ok = false;
          break;
        }
      if (Hard)
        goto flat_hard;
      if (Ok) {
        Sub = Store.makeNode(
            R.Name, Id, F.E, F.ChildIds.data(), F.ChildTermIdx.data(),
            static_cast<uint32_t>(F.ChildIds.size()));
        ++Stats.NodesCreated;
        goto flat_level_ok;
      }
    }
    if (TrackReentry) {
      St.InProgress.erase(St.FlatKeys.back());
      St.FlatKeys.pop_back();
    }
    if (Memoize)
      St.Memo.insert(levelKey(), ipg_rt::memoPack(0u, false));
    goto flat_level_failed;

    // A level failed outright: its parent's self call failed, so the
    // parent falls through to ITS post-self alternatives.
  flat_level_failed:
    if (St.FlatLevels.size() == LvBase) {
      St.FlatKids.resize(KidBase);
      Depth = EntryDepth;
      return InvalidNode;
    }
    Cur = St.FlatLevels.back();
    St.FlatLevels.pop_back();
    goto flat_post_alts;

    // A level resolved to node Sub: unwind, deepest pending level first —
    // replay the self alternative's prefix for real, complete the self
    // child, run the suffix, build the node.
  flat_resolved:
    while (St.FlatLevels.size() > LvBase) {
      ByteSpan ChildWin = Cur;
      Cur = St.FlatLevels.back();
      St.FlatLevels.pop_back();
      Depth = EntryDepth + 1 + (St.FlatLevels.size() - LvBase);
      F.beginAlt(Cur, nullptr, SAlt.Terms.size());
      size_t KidJ = 0;
      bool Ok = true;
      for (size_t Step = 0; Step < FI.SelfExecPos && Ok; ++Step) {
        uint32_t TI = execTI(SAlt, Step);
        const Term &T = *SAlt.Terms[TI];
        if (isa<NTTerm>(&T)) {
          const InterpState::FlatKid &K =
              St.FlatKids[KidBase +
                          (St.FlatLevels.size() - LvBase) * PN + KidJ++];
          updStartEnd(F.E, K.Start, K.End, K.Touched);
          F.ChildIds.push_back(K.Node);
          F.ChildTermIdx.push_back(TI);
          F.rec(TI, K.Start, K.End);
        } else if (T.kind() == Term::Kind::Terminal) {
          Ok = execTerminal(F, *cast<TerminalTerm>(&T), TI);
        } else if (const auto *D = dyn_cast<AttrDefTerm>(&T)) {
          Ok = execAttrDef(F, *D);
        } else {
          Ok = execPredicate(F, *cast<PredicateTerm>(&T));
        }
      }
      if (Ok) {
        // Complete the self child from the banked window (the interval
        // evaluated at the descend; re-evaluation would yield the same).
        int64_t CLo = static_cast<int64_t>(ChildWin.absBase() -
                                           Cur.absBase());
        int64_t CHi = CLo + static_cast<int64_t>(ChildWin.size());
        completeChildNT(F, FI.SelfTerm, CLo, CHi, Sub);
        for (size_t Step = FI.SelfExecPos + 1;
             Step < SAlt.Terms.size() && Ok; ++Step)
          Ok = execTerm(F, SAlt, execTI(SAlt, Step));
      }
      if (Hard)
        goto flat_hard;
      if (!Ok)
        goto flat_post_alts;
      Sub = Store.makeNode(
          R.Name, Id, F.E, F.ChildIds.data(), F.ChildTermIdx.data(),
          static_cast<uint32_t>(F.ChildIds.size()));
      ++Stats.NodesCreated;
      if (TrackReentry) {
        St.InProgress.erase(St.FlatKeys.back());
        St.FlatKeys.pop_back();
      }
      if (Memoize)
        St.Memo.insert(levelKey(), ipg_rt::memoPack(Sub, true));
    }
    St.FlatKids.resize(KidBase);
    Depth = EntryDepth;
    return Sub;

    // A hard failure aborts the whole activation: recursion unwinds every
    // pending level erasing its reentry key and storing nothing.
  flat_hard:
    while (St.FlatKeys.size() > KeyBase) {
      St.InProgress.erase(St.FlatKeys.back());
      St.FlatKeys.pop_back();
    }
    St.FlatLevels.resize(LvBase);
    St.FlatKids.resize(KidBase);
    Depth = EntryDepth;
    return InvalidNode;
  }

  //===--------------------------------------------------------------------===//
  // Step tier: the explicit work-stack machine for general recursion
  // (mutual cycles, multiple self-alternatives, self under array/switch).
  // One MachineAct per live rule invocation; acts suspend only where a
  // callee is itself a Step rule — every other term delegates to the
  // ordinary helpers, whose recursion is bounded by the grammar (Direct)
  // or heap-backed (Flattened). Depth is the act-stack height, so
  // MaxDepth limits exactly what it limits under recursion.
  //===--------------------------------------------------------------------===//

  using MachineAct = InterpState::MachineAct;

  uint32_t StartNode = InvalidNode; ///< result of an inline-resolved start
  bool ChildOk = false;             ///< delivery: did the last act succeed?
  uint32_t ChildNode = InvalidNode; ///< delivery: its node id

  enum StartStatus { ActPushed, ActDoneOk, ActDoneFail };

  /// Mirrors parseRule's entry sequence (depth check, peak, memo probe,
  /// reentry insert). Either pushes a new act or resolves inline from the
  /// memo table (StartNode holds the node on ActDoneOk).
  StartStatus startAct(RuleId Id, ByteSpan In, const Frame *Lex) {
    const Rule &R = G.rule(Id);
    if (Depth >= Opts.MaxDepth) {
      Hard = depthError(R);
      return ActDoneFail;
    }
    ++Depth;
    Stats.PeakDepth = std::max(Stats.PeakDepth, Depth);
    bool Memoize = Opts.UseMemo && St.RuleMemoizable[Id];
    bool TrackReentry = Opts.DetectReentry && !R.IsLocal;
    IntervalKey Key;
    if (Memoize || TrackReentry)
      Key = IntervalKey::pack(Id, In.absBase(), In.absBase() + In.size());
    if (Memoize) {
      if (const uint32_t *Hit = St.Memo.find(Key)) {
        ++Stats.MemoHits;
        --Depth;
        unsigned NodeId = 0;
        if (!ipg_rt::memoUnpack(*Hit, NodeId))
          return ActDoneFail;
        StartNode = NodeId;
        return ActDoneOk;
      }
      ++Stats.MemoMisses;
    }
    bool Inserted = false;
    if (TrackReentry) {
      if (!St.InProgress.insert(Key, 1)) {
        --Depth;
        return ActDoneFail; // packrat-style: in-progress re-entry fails
      }
      Inserted = true;
    }
    MachineAct A;
    A.Id = Id;
    A.Input = In;
    A.Lex = Lex;
    A.Key = Key;
    A.Memoize = Memoize;
    A.Inserted = Inserted;
    St.Acts.push_back(A);
    return ActPushed;
  }

  /// Pops the top act with \p Result (InvalidNode on failure), closing its
  /// bookkeeping exactly as parseRule's exit does, and loads the delivery
  /// slot for the act below.
  void finishAct(uint32_t Result) {
    MachineAct &A = St.Acts.back();
    if (A.Inserted)
      St.InProgress.erase(A.Key);
    if (A.Memoize && !Hard)
      St.Memo.insert(A.Key, ipg_rt::memoPack(
                                Result == InvalidNode ? 0u : Result,
                                Result != InvalidNode));
    --Depth;
    St.Acts.pop_back();
    ChildOk = Result != InvalidNode && !Hard;
    ChildNode = Result;
  }

  void restoreLoopVar(Frame &F, MachineAct &A) {
    if (A.ArrHadSaved)
      F.E.set(A.Arr->LoopVar, A.ArrSaved);
    else
      F.E.erase(A.Arr->LoopVar);
  }

  /// Abandons the in-flight array term of act \p I (element failed or an
  /// interval went bad): unwind exactly like execArray's failure path.
  int arrayFail(size_t I, Frame &F) {
    MachineAct &A = St.Acts[I];
    --St.ArrayNest;
    restoreLoopVar(F, A);
    A.Arr = nullptr;
    A.Wait = MachineAct::WaitNone;
    return 0;
  }

  void completeArrayElem(size_t I, Frame &F, uint32_t Sub) {
    MachineAct &A = St.Acts[I];
    int64_t Lo = A.PendLo, Hi = A.PendHi;
    int64_t BStart, BEnd;
    childSpan(*cast<NodeTree>(Store.node(Sub)), Hi - Lo, BStart, BEnd);
    St.ElemScratch[A.ArrLevel].push_back(
        Store.makeShifted(Sub, Lo, G.symStart(), G.symEnd()));
    updStartEnd(F.E, Lo + BStart, Lo + BEnd, BEnd != 0);
    if (BEnd != 0) {
      A.ArrTouched = true;
      A.ArrMaxEnd = std::max(A.ArrMaxEnd, Lo + BEnd);
    }
    ++A.ArrK;
  }

  /// Drives the element loop of the in-flight array term of act \p I.
  /// Returns 0 (term failed), 1 (term done), or 2 (suspended on a child
  /// act).
  int arrayLoop(size_t I, Frame &F) {
    for (;;) {
      MachineAct &A = St.Acts[I];
      const ArrayTerm &Ar = *A.Arr;
      if (A.ArrK >= A.ArrTo) {
        --St.ArrayNest;
        restoreLoopVar(F, A);
        const std::vector<uint32_t> &Elems = St.ElemScratch[A.ArrLevel];
        F.ChildIds.push_back(
            Store.makeArray(Ar.Elem, Elems.data(),
                            static_cast<uint32_t>(Elems.size())));
        F.ChildTermIdx.push_back(A.PendTI);
        if (A.ArrTouched)
          F.rec(A.PendTI, 0, A.ArrMaxEnd);
        A.Arr = nullptr;
        A.Wait = MachineAct::WaitNone;
        return 1;
      }
      F.E.set(Ar.LoopVar, A.ArrK);
      int64_t Lo, Hi;
      if (!evalInterval(F, Ar.Iv, Lo, Hi) || Hard)
        return arrayFail(I, F);
      if (!ipg_rt::intervalOk(Lo, Hi,
                              static_cast<int64_t>(F.Input.size())))
        return arrayFail(I, F);
      A.PendLo = Lo;
      A.PendHi = Hi;
      A.Wait = MachineAct::WaitArr;
      StartStatus S2 = startAct(Ar.Resolved,
                                F.Input.slice(static_cast<size_t>(Lo),
                                              static_cast<size_t>(Hi)),
                                &F);
      if (S2 == ActPushed)
        return 2;
      St.Acts[I].Wait = MachineAct::WaitNone;
      if (S2 == ActDoneFail || Hard)
        return arrayFail(I, F);
      completeArrayElem(I, F, StartNode);
    }
  }

  /// Starts the machine path of an array term whose element rule is Step.
  int startArrayMachine(size_t I, Frame &F, const ArrayTerm &Ar,
                        uint32_t TI) {
    FrameCtx Ctx(F, G, Store);
    auto From = evaluate(*Ar.From, Ctx);
    auto To = evaluate(*Ar.To, Ctx);
    if (!From || !To)
      return 0;
    MachineAct &A = St.Acts[I];
    A.Arr = &Ar;
    A.PendTI = TI;
    auto Saved = F.E.get(Ar.LoopVar);
    A.ArrHadSaved = Saved.has_value();
    A.ArrSaved = Saved.value_or(0);
    A.ArrLevel = St.ArrayNest++;
    St.elemScratchAt(A.ArrLevel).clear();
    A.ArrTouched = false;
    A.ArrMaxEnd = 0;
    A.ArrK = *From;
    A.ArrTo = *To;
    return arrayLoop(I, F);
  }

  /// Suspends act \p I on a child parse of \p Target (NT term or switch
  /// arm); resolves inline when the child answers from the memo table.
  int suspendChild(size_t I, Frame &F, uint32_t TI, RuleId Target,
                   const Interval &Iv) {
    int64_t Lo, Hi;
    if (!evalInterval(F, Iv, Lo, Hi) || Hard)
      return 0;
    if (!ipg_rt::intervalOk(Lo, Hi, static_cast<int64_t>(F.Input.size())))
      return 0;
    MachineAct &A = St.Acts[I];
    A.PendTI = TI;
    A.PendLo = Lo;
    A.PendHi = Hi;
    A.Wait = MachineAct::WaitNT;
    StartStatus S2 = startAct(Target,
                              F.Input.slice(static_cast<size_t>(Lo),
                                            static_cast<size_t>(Hi)),
                              &F);
    if (S2 == ActPushed)
      return 2;
    St.Acts[I].Wait = MachineAct::WaitNone;
    if (S2 == ActDoneFail || Hard)
      return 0;
    completeChildNT(F, TI, Lo, Hi, StartNode);
    return 1;
  }

  /// Executes one term of act \p I. Terms whose callee needs the machine
  /// suspend; everything else delegates to the recursive helpers.
  /// Returns 0 (failed), 1 (done), or 2 (suspended).
  int execTermMachine(size_t I, Frame &F, const Alternative &Alt,
                      uint32_t TI) {
    const Term &T = *Alt.Terms[TI];
    switch (T.kind()) {
    case Term::Kind::Nonterminal: {
      const auto &N = *cast<NTTerm>(&T);
      if (N.Resolved == InvalidRuleId ||
          St.Shapes.Shape[N.Resolved] != ExecShape::Step)
        return execTerm(F, Alt, TI) ? 1 : 0;
      ++Stats.TermsExecuted;
      return suspendChild(I, F, TI, N.Resolved, N.Iv);
    }
    case Term::Kind::Switch: {
      // Find the committed arm first (condition evaluation is pure);
      // delegate whole-term when it does not need the machine.
      const auto &Sw = *cast<SwitchTerm>(&T);
      FrameCtx Ctx(F, G, Store);
      const SwitchChoice *Chosen = nullptr;
      for (const SwitchChoice &C : Sw.Choices) {
        if (C.Cond) {
          auto V = evaluate(*C.Cond, Ctx);
          if (!V) {
            ++Stats.TermsExecuted;
            return 0;
          }
          if (*V == 0)
            continue;
        }
        Chosen = &C;
        break;
      }
      if (!Chosen) {
        ++Stats.TermsExecuted;
        return 0; // no arm matched
      }
      if (Chosen->Resolved == InvalidRuleId ||
          St.Shapes.Shape[Chosen->Resolved] != ExecShape::Step)
        return execTerm(F, Alt, TI) ? 1 : 0;
      ++Stats.TermsExecuted;
      return suspendChild(I, F, TI, Chosen->Resolved, Chosen->Iv);
    }
    case Term::Kind::Array: {
      const auto &Ar = *cast<ArrayTerm>(&T);
      if (Ar.Resolved == InvalidRuleId ||
          St.Shapes.Shape[Ar.Resolved] != ExecShape::Step)
        return execTerm(F, Alt, TI) ? 1 : 0;
      ++Stats.TermsExecuted;
      return startArrayMachine(I, F, Ar, TI);
    }
    default:
      return execTerm(F, Alt, TI) ? 1 : 0;
    }
  }

  /// Runs the top act until it pushes a child or pops itself.
  void advance() {
    size_t I = St.Acts.size() - 1;
    Frame &F = St.frameAt(I + 1);
    const Rule &R = G.rule(St.Acts[I].Id);
    bool AltFailed = false;

    // Consume a pending child delivery first.
    if (St.Acts[I].Wait == MachineAct::WaitNT) {
      MachineAct &A = St.Acts[I];
      A.Wait = MachineAct::WaitNone;
      if (ChildOk) {
        completeChildNT(F, A.PendTI, A.PendLo, A.PendHi, ChildNode);
        ++A.StepIdx;
      } else {
        AltFailed = true;
      }
    } else if (St.Acts[I].Wait == MachineAct::WaitArr) {
      if (ChildOk) {
        completeArrayElem(I, F, ChildNode);
        int AR = arrayLoop(I, F);
        if (AR == 2)
          return;
        if (AR == 1)
          ++St.Acts[I].StepIdx;
        else
          AltFailed = true;
      } else {
        arrayFail(I, F);
        AltFailed = true;
      }
    }

    for (;;) {
      MachineAct &A = St.Acts[I];
      if (A.AltIdx >= R.Alts.size()) {
        finishAct(InvalidNode);
        return;
      }
      const Alternative &Alt = R.Alts[A.AltIdx];
      if (!AltFailed) {
        if (A.NeedBegin) {
          F.beginAlt(A.Input, R.IsLocal ? A.Lex : nullptr,
                     Alt.Terms.size());
          A.NeedBegin = false;
        }
        while (A.StepIdx < Alt.Terms.size()) {
          uint32_t TI = Alt.ExecOrder.empty()
                            ? A.StepIdx
                            : Alt.ExecOrder[A.StepIdx];
          int TR = execTermMachine(I, F, Alt, TI);
          if (TR == 2)
            return; // suspended: references above are stale now
          if (TR == 0) {
            AltFailed = true;
            break;
          }
          ++A.StepIdx;
        }
      }
      if (Hard) {
        finishAct(InvalidNode);
        return;
      }
      if (!AltFailed) {
        uint32_t Result = Store.makeNode(
            R.Name, A.Id, F.E, F.ChildIds.data(), F.ChildTermIdx.data(),
            static_cast<uint32_t>(F.ChildIds.size()));
        ++Stats.NodesCreated;
        finishAct(Result);
        return;
      }
      ++A.AltIdx;
      A.StepIdx = 0;
      A.NeedBegin = true;
      AltFailed = false;
    }
  }

  /// Entry point for a Step start rule: the whole parse runs on the
  /// machine (the up-closure guarantees Direct/Flattened callees never
  /// lead back into a Step rule mid-descent).
  uint32_t runMachine(RuleId Start, ByteSpan Input) {
    St.Acts.clear();
    ChildOk = false;
    ChildNode = InvalidNode;
    StartStatus S0 = startAct(Start, Input, nullptr);
    if (S0 != ActPushed)
      return S0 == ActDoneOk && !Hard ? StartNode : InvalidNode;
    while (!St.Acts.empty() && !Hard)
      advance();
    if (Hard) {
      // Unwind exactly as recursion would: each pending activation
      // erases its reentry key; nothing is memoized.
      while (!St.Acts.empty()) {
        if (St.Acts.back().Inserted)
          St.InProgress.erase(St.Acts.back().Key);
        St.Acts.pop_back();
        --Depth;
      }
      return InvalidNode;
    }
    return ChildOk ? ChildNode : InvalidNode;
  }
};

} // namespace

Interp::Interp(const Grammar &G, const BlackboxRegistry *Blackboxes,
               InterpOptions Opts)
    : G(G), Blackboxes(Blackboxes), Opts(Opts),
      S(std::make_unique<InterpState>()) {
  S->RuleMemoizable.resize(G.numRules(), 0);
  for (size_t I = 0; I < G.numRules(); ++I) {
    const Rule &R = G.rule(static_cast<RuleId>(I));
    S->RuleMemoizable[I] = !R.IsLocal && ruleSpawnsSubparsers(R);
  }
  // One recursion-shape analysis per engine, shared policy with codegen:
  // it decides per rule whether parse() recurses (Direct), loops
  // (Flattened), or runs on the work-stack machine (Step).
  S->Shapes = analyzeRecShape(G);
}

Interp::~Interp() = default;

Expected<TreePtr> Interp::parse(ByteSpan Input) {
  return parse(Input, G.startSymbol());
}

Expected<TreePtr> Interp::parse(ByteSpan Input, Symbol StartNT) {
  // Reset FIRST: stats() must describe this call even when it fails
  // before doing any work (a stale-stats regression lives in
  // tests/engine_test.cpp and is asserted by the differential harness).
  Stats = InterpStats();
  RuleId Start = G.findGlobal(StartNT);
  if (Start == InvalidRuleId)
    return Expected<TreePtr>::failure(
        "start nonterminal '" +
        std::string(G.interner().name(StartNT)) + "' has no rule");
  // Recycle a store when one is available: either the engine still holds
  // one (the previous parse failed, so no result escaped) or a dropped
  // TreePtr parked its store in the recycler. Otherwise — first parse, or
  // every previous tree is still alive — this parse gets a fresh store.
  if (!S->Cur && S->Pool->Returned) {
    S->Cur = S->Pool->Returned;
    S->Pool->Returned = nullptr;
  }
  if (S->Cur) {
    S->Cur->reset();
    Stats.StoreRecycled = true;
  } else {
    S->Cur = new TreeStore(S->Pool);
  }
  S->Memo.clear();
  S->InProgress.clear();
  S->ArrayNest = 0;
  // The tier scratch is left empty by every exit path; clearing here is
  // belt-and-braces so a parse can never see a predecessor's state.
  S->FlatLevels.clear();
  S->FlatKids.clear();
  S->FlatKeys.clear();
  S->Acts.clear();
  Runner R(G, Blackboxes, Opts, Stats, *S);
  return R.run(Input, Start);
}

bool Interp::adoptStore(TreeStore *Store) {
  if (!Store)
    return false;
  // Engine-thread only: bindRecycler stamps this thread as the store's
  // owner and the recycler counters are plain. Decline when a store is
  // already parked (or in flight) — one spare is all a worker needs.
  if (S->Cur || S->Pool->Returned)
    return false;
  Store->bindRecycler(S->Pool);
  Store->reset();
  S->Pool->Returned = Store;
  return true;
}
