//===- runtime/Interp.cpp -------------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Interp.h"

#include "expr/Eval.h"
#include "support/Casting.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

using namespace ipg;

namespace {

struct MemoKey {
  RuleId Rule;
  size_t Lo, Hi;
  bool operator==(const MemoKey &O) const {
    return Rule == O.Rule && Lo == O.Lo && Hi == O.Hi;
  }
};

struct MemoKeyHash {
  size_t operator()(const MemoKey &K) const {
    size_t H = K.Rule;
    H = H * 0x9e3779b97f4a7c15ULL + K.Lo;
    H = H * 0x9e3779b97f4a7c15ULL + K.Hi;
    return H;
  }
};

/// Per-alternative execution state: the environment E, the parse trees of
/// already-executed terms, and per-term touch records for TermEnd.
struct Frame {
  ByteSpan Input;
  Env E;
  std::vector<TreePtr> Children;
  std::vector<uint32_t> ChildTermIdx;

  struct TermRec {
    bool HasEnd = false;
    int64_t Start = 0;
    int64_t End = 0;
  };
  std::vector<TermRec> Recs;

  /// Enclosing frame for where-clause rules (null for global rules).
  const Frame *Lexical = nullptr;
};

/// EvalContext view of a Frame (sigma of Figure 8).
class FrameCtx : public EvalContext {
public:
  FrameCtx(const Frame &F, const Grammar &G) : F(F), G(G) {}

  std::optional<int64_t> attr(Symbol Id) const override {
    for (const Frame *L = &F; L; L = L->Lexical)
      if (auto V = L->E.get(Id))
        return V;
    return std::nullopt;
  }

  std::optional<int64_t> ntAttr(Symbol NT, Symbol Attr) const override {
    for (const Frame *L = &F; L; L = L->Lexical)
      for (size_t I = L->Children.size(); I-- > 0;)
        if (const auto *N = dyn_cast<NodeTree>(L->Children[I].get()))
          if (N->name() == NT)
            return N->attr(Attr);
    return std::nullopt;
  }

  std::optional<int64_t> elemAttr(Symbol NT, int64_t Index,
                                  Symbol Attr) const override {
    const ArrayTree *A = findArray(NT);
    if (!A || Index < 0 || static_cast<size_t>(Index) >= A->size())
      return std::nullopt;
    const NodeTree *N = A->element(static_cast<size_t>(Index));
    return N ? N->attr(Attr) : std::nullopt;
  }

  std::optional<int64_t> arrayLength(Symbol NT) const override {
    const ArrayTree *A = findArray(NT);
    if (!A)
      return std::nullopt;
    return static_cast<int64_t>(A->size());
  }

  std::optional<int64_t> eoi() const override {
    return static_cast<int64_t>(F.Input.size());
  }

  std::optional<int64_t> termEnd(uint32_t TermIdx) const override {
    if (TermIdx >= F.Recs.size() || !F.Recs[TermIdx].HasEnd)
      return std::nullopt;
    return F.Recs[TermIdx].End;
  }

  std::optional<int64_t> readInput(ReadKind RK, int64_t Lo,
                                   int64_t Hi) const override {
    int64_t Size = static_cast<int64_t>(F.Input.size());
    size_t Width = 1;
    Endian E = Endian::Little;
    switch (RK) {
    case ReadKind::U8:
      Width = 1;
      break;
    case ReadKind::U16Le:
      Width = 2;
      break;
    case ReadKind::U32Le:
      Width = 4;
      break;
    case ReadKind::U64Le:
      Width = 8;
      break;
    case ReadKind::U16Be:
      Width = 2;
      E = Endian::Big;
      break;
    case ReadKind::U32Be:
      Width = 4;
      E = Endian::Big;
      break;
    case ReadKind::BtoiLe:
    case ReadKind::BtoiBe: {
      if (RK == ReadKind::BtoiBe)
        E = Endian::Big;
      if (Lo < 0 || Hi < Lo + 1 || Hi - Lo > 8 || Hi > Size)
        return std::nullopt;
      return static_cast<int64_t>(F.Input.readUnsigned(
          static_cast<size_t>(Lo), static_cast<size_t>(Hi - Lo), E));
    }
    }
    if (Lo < 0 || Lo + static_cast<int64_t>(Width) > Size)
      return std::nullopt;
    return static_cast<int64_t>(
        F.Input.readUnsigned(static_cast<size_t>(Lo), Width, E));
  }

private:
  const Frame &F;
  const Grammar &G;

  const ArrayTree *findArray(Symbol NT) const {
    for (const Frame *L = &F; L; L = L->Lexical)
      for (size_t I = L->Children.size(); I-- > 0;)
        if (const auto *A = dyn_cast<ArrayTree>(L->Children[I].get()))
          if (A->elemName() == NT)
            return A;
    return nullptr;
  }
};

/// One parse() invocation: owns the memo table and recursion bookkeeping.
class Runner {
public:
  Runner(const Grammar &G, const BlackboxRegistry *Blackboxes,
         const InterpOptions &Opts, InterpStats &Stats)
      : G(G), Blackboxes(Blackboxes), Opts(Opts), Stats(Stats) {}

  Expected<TreePtr> run(ByteSpan Input, RuleId Start) {
    auto Node = parseRule(Start, Input, nullptr);
    if (Hard)
      return Expected<TreePtr>(std::move(Hard));
    if (!Node)
      return Expected<TreePtr>::failure(
          "parse failed: input rejected by rule '" +
          std::string(G.interner().name(G.rule(Start).Name)) + "'");
    return Expected<TreePtr>(TreePtr(std::move(Node)));
  }

private:
  const Grammar &G;
  const BlackboxRegistry *Blackboxes;
  const InterpOptions &Opts;
  InterpStats &Stats;
  Error Hard = Error::success();
  size_t Depth = 0;
  std::unordered_map<MemoKey, std::shared_ptr<const NodeTree>, MemoKeyHash>
      Memo;
  std::unordered_set<MemoKey, MemoKeyHash> InProgress;

  /// updStartEnd of Figure 8.
  void updStartEnd(Env &E, int64_t Lo, int64_t Hi, bool Touched) {
    if (!Touched)
      return;
    auto S = E.get(G.symStart());
    auto En = E.get(G.symEnd());
    E.set(G.symStart(), std::min(S.value_or(Lo), Lo));
    E.set(G.symEnd(), std::max(En.value_or(Hi), Hi));
  }

  /// Evaluates an interval; false means evaluation failed (term fails).
  bool evalInterval(const Frame &F, const Interval &Iv, int64_t &Lo,
                    int64_t &Hi) {
    FrameCtx Ctx(F, G);
    if (!Iv.Lo || !Iv.Hi) {
      Hard = Error::failure("internal: interval not completed (run "
                            "completeIntervals before parsing)");
      return false;
    }
    auto L = evaluate(*Iv.Lo, Ctx);
    if (!L)
      return false;
    auto H = evaluate(*Iv.Hi, Ctx);
    if (!H)
      return false;
    Lo = *L;
    Hi = *H;
    return true;
  }

  /// Parses a child nonterminal (shared by NT terms, array elements and
  /// switch arms). Returns false on Fail; records into the frame on
  /// success.
  bool parseChildNT(Frame &F, uint32_t TermIdx, RuleId Target,
                    const Interval &Iv) {
    int64_t Lo, Hi;
    if (!evalInterval(F, Iv, Lo, Hi) || Hard)
      return false;
    int64_t Size = static_cast<int64_t>(F.Input.size());
    if (!(0 <= Lo && Lo <= Hi && Hi <= Size))
      return false;
    auto Sub = parseRule(Target, F.Input.slice(static_cast<size_t>(Lo),
                                               static_cast<size_t>(Hi)),
                         &F);
    if (Hard || !Sub)
      return false;
    int64_t BStart = Sub->attr(G.symStart()).value_or(Hi - Lo);
    int64_t BEnd = Sub->attr(G.symEnd()).value_or(0);
    auto Adjusted = Sub->withShiftedStartEnd(Lo, G.symStart(), G.symEnd());
    updStartEnd(F.E, Lo + BStart, Lo + BEnd, BEnd != 0);
    F.Children.push_back(Adjusted);
    F.ChildTermIdx.push_back(TermIdx);
    F.Recs[TermIdx] = {true, Lo + BStart, Lo + BEnd};
    return true;
  }

  bool execTerm(Frame &F, const Alternative &Alt, uint32_t TI) {
    ++Stats.TermsExecuted;
    const Term &T = *Alt.Terms[TI];
    switch (T.kind()) {
    case Term::Kind::Nonterminal: {
      const auto &N = *cast<NTTerm>(&T);
      if (N.Resolved == InvalidRuleId) {
        Hard = Error::failure("internal: unresolved nonterminal '" +
                              std::string(G.interner().name(N.Name)) +
                              "' (run checkAttributes before parsing)");
        return false;
      }
      return parseChildNT(F, TI, N.Resolved, N.Iv);
    }

    case Term::Kind::Terminal: {
      const auto &S = *cast<TerminalTerm>(&T);
      int64_t Lo, Hi;
      if (!evalInterval(F, S.Iv, Lo, Hi) || Hard)
        return false;
      int64_t Size = static_cast<int64_t>(F.Input.size());
      if (!(0 <= Lo && Lo <= Hi && Hi <= Size))
        return false;
      if (S.Wildcard) {
        // `raw` matches the whole interval without reading or copying it.
        updStartEnd(F.E, Lo, Hi, Hi > Lo);
        F.Children.push_back(
            LeafTree::opaque(Lo, static_cast<size_t>(Hi - Lo)));
        F.ChildTermIdx.push_back(TI);
        F.Recs[TI] = {true, Lo, Hi};
        return true;
      }
      int64_t Len = static_cast<int64_t>(S.Bytes.size());
      if (Hi - Lo < Len)
        return false;
      if (!F.Input.matchesAt(static_cast<size_t>(Lo), S.Bytes))
        return false;
      updStartEnd(F.E, Lo, Lo + Len, Len > 0);
      F.Children.push_back(std::make_shared<LeafTree>(S.Bytes, Lo));
      F.ChildTermIdx.push_back(TI);
      F.Recs[TI] = {true, Lo, Lo + Len};
      return true;
    }

    case Term::Kind::AttrDef: {
      const auto &D = *cast<AttrDefTerm>(&T);
      FrameCtx Ctx(F, G);
      auto V = evaluate(*D.Value, Ctx);
      if (!V)
        return false;
      F.E.set(D.Name, *V);
      return true;
    }

    case Term::Kind::Predicate: {
      const auto &P = *cast<PredicateTerm>(&T);
      FrameCtx Ctx(F, G);
      auto V = evaluate(*P.Cond, Ctx);
      return V && *V != 0;
    }

    case Term::Kind::Array:
      return execArray(F, *cast<ArrayTerm>(&T), TI);

    case Term::Kind::Switch: {
      const auto &Sw = *cast<SwitchTerm>(&T);
      FrameCtx Ctx(F, G);
      for (const SwitchChoice &C : Sw.Choices) {
        if (C.Cond) {
          auto V = evaluate(*C.Cond, Ctx);
          if (!V)
            return false;
          if (*V == 0)
            continue;
        }
        if (C.Resolved == InvalidRuleId) {
          Hard = Error::failure("internal: unresolved switch arm");
          return false;
        }
        return parseChildNT(F, TI, C.Resolved, C.Iv);
      }
      return false; // no arm matched
    }

    case Term::Kind::Blackbox:
      return execBlackbox(F, *cast<BlackboxTerm>(&T), TI);
    }
    return false;
  }

  bool execArray(Frame &F, const ArrayTerm &A, uint32_t TI) {
    FrameCtx Ctx(F, G);
    auto From = evaluate(*A.From, Ctx);
    auto To = evaluate(*A.To, Ctx);
    if (!From || !To)
      return false;
    if (A.Resolved == InvalidRuleId) {
      Hard = Error::failure("internal: unresolved array element");
      return false;
    }

    // Save any outer binding of the loop variable and bind it per element;
    // the binding is visible to el/er and (through the lexical chain) to
    // local element rules, matching T-ArraySucc's E[id -> k].
    auto Saved = F.E.get(A.LoopVar);
    std::vector<TreePtr> Elems;
    bool AnyTouched = false;
    int64_t MaxEnd = 0;
    bool Failed = false;

    for (int64_t K = *From; K < *To; ++K) {
      F.E.set(A.LoopVar, K);
      int64_t Lo, Hi;
      if (!evalInterval(F, A.Iv, Lo, Hi) || Hard) {
        Failed = true;
        break;
      }
      int64_t Size = static_cast<int64_t>(F.Input.size());
      if (!(0 <= Lo && Lo <= Hi && Hi <= Size)) {
        Failed = true;
        break;
      }
      auto Sub = parseRule(A.Resolved,
                           F.Input.slice(static_cast<size_t>(Lo),
                                         static_cast<size_t>(Hi)),
                           &F);
      if (Hard || !Sub) {
        Failed = true;
        break;
      }
      int64_t BStart = Sub->attr(G.symStart()).value_or(Hi - Lo);
      int64_t BEnd = Sub->attr(G.symEnd()).value_or(0);
      Elems.push_back(Sub->withShiftedStartEnd(Lo, G.symStart(), G.symEnd()));
      updStartEnd(F.E, Lo + BStart, Lo + BEnd, BEnd != 0);
      if (BEnd != 0) {
        AnyTouched = true;
        MaxEnd = std::max(MaxEnd, Lo + BEnd);
      }
    }

    if (Saved)
      F.E.set(A.LoopVar, *Saved);
    else
      F.E.erase(A.LoopVar);
    if (Failed)
      return false;

    F.Children.push_back(
        std::make_shared<ArrayTree>(A.Elem, std::move(Elems)));
    F.ChildTermIdx.push_back(TI);
    if (AnyTouched)
      F.Recs[TI] = {true, 0, MaxEnd};
    return true;
  }

  bool execBlackbox(Frame &F, const BlackboxTerm &B, uint32_t TI) {
    int64_t Lo, Hi;
    if (!evalInterval(F, B.Iv, Lo, Hi) || Hard)
      return false;
    int64_t Size = static_cast<int64_t>(F.Input.size());
    if (!(0 <= Lo && Lo <= Hi && Hi <= Size))
      return false;

    std::string Name(G.interner().name(B.Name));
    const BlackboxFn *Fn =
        Blackboxes ? Blackboxes->find(Name) : nullptr;
    if (!Fn) {
      Hard = Error::failure("blackbox parser '" + Name +
                            "' is not registered");
      return false;
    }
    ByteSpan Slice = F.Input.slice(static_cast<size_t>(Lo),
                                   static_cast<size_t>(Hi));
    BlackboxResult Res = (*Fn)(Slice);
    if (!Res.Ok)
      return false;
    if (Res.End > Slice.size()) {
      Hard = Error::failure("blackbox parser '" + Name +
                            "' consumed past its interval");
      return false;
    }

    Env E;
    E.set(G.symVal(), Res.Value);
    if (Res.End > 0) {
      E.set(G.symStart(), Lo);
      E.set(G.symEnd(), Lo + static_cast<int64_t>(Res.End));
    } else {
      E.set(G.symStart(), Hi - Lo);
      E.set(G.symEnd(), Lo);
    }
    std::vector<TreePtr> Kids;
    std::vector<uint32_t> KidIdx;
    if (!Res.Output.empty()) {
      Kids.push_back(std::make_shared<LeafTree>(
          std::string(Res.Output.begin(), Res.Output.end()), 0));
      KidIdx.push_back(0);
    }
    auto Node = std::make_shared<NodeTree>(B.Name, InvalidRuleId,
                                           std::move(E), std::move(Kids),
                                           std::move(KidIdx));
    ++Stats.NodesCreated;
    updStartEnd(F.E, Lo, Lo + static_cast<int64_t>(Res.End), Res.End > 0);
    F.Children.push_back(std::move(Node));
    F.ChildTermIdx.push_back(TI);
    F.Recs[TI] = {true, Lo, Lo + static_cast<int64_t>(Res.End)};
    return true;
  }

  std::shared_ptr<const NodeTree> parseRule(RuleId Id, ByteSpan Input,
                                            const Frame *Lexical) {
    if (Hard)
      return nullptr;
    if (Depth >= Opts.MaxDepth) {
      Hard = Error::failure(
          "recursion depth limit exceeded while parsing rule '" +
          std::string(G.interner().name(G.rule(Id).Name)) +
          "' (likely a non-terminating grammar; see termination checking)");
      return nullptr;
    }
    ++Depth;
    Stats.PeakDepth = std::max(Stats.PeakDepth, Depth);

    const Rule &R = G.rule(Id);
    bool Memoize = Opts.UseMemo && !R.IsLocal;
    MemoKey Key{Id, Input.absBase(), Input.absBase() + Input.size()};
    if (Memoize) {
      auto It = Memo.find(Key);
      if (It != Memo.end()) {
        ++Stats.MemoHits;
        --Depth;
        return It->second;
      }
      ++Stats.MemoMisses;
    }
    bool TrackReentry = Opts.DetectReentry && !R.IsLocal;
    if (TrackReentry && !InProgress.insert(Key).second) {
      --Depth;
      return nullptr; // packrat-style: in-progress re-entry fails
    }

    std::shared_ptr<const NodeTree> Result;
    for (const Alternative &Alt : R.Alts) {
      Frame F;
      F.Input = Input;
      F.Lexical = R.IsLocal ? Lexical : nullptr;
      F.E.set(G.symEoi(), static_cast<int64_t>(Input.size()));
      F.E.set(G.symStart(), static_cast<int64_t>(Input.size()));
      F.E.set(G.symEnd(), 0);
      F.Recs.resize(Alt.Terms.size());

      bool Ok = true;
      size_t NumTerms = Alt.Terms.size();
      for (size_t Step = 0; Step < NumTerms; ++Step) {
        uint32_t TI = Alt.ExecOrder.empty()
                          ? static_cast<uint32_t>(Step)
                          : Alt.ExecOrder[Step];
        if (!execTerm(F, Alt, TI)) {
          Ok = false;
          break;
        }
      }
      if (Hard)
        break;
      if (Ok) {
        Result = std::make_shared<NodeTree>(R.Name, Id, std::move(F.E),
                                            std::move(F.Children),
                                            std::move(F.ChildTermIdx));
        ++Stats.NodesCreated;
        break;
      }
    }

    if (TrackReentry)
      InProgress.erase(Key);
    if (Memoize && !Hard)
      Memo[Key] = Result;
    --Depth;
    return Hard ? nullptr : Result;
  }
};

} // namespace

Interp::Interp(const Grammar &G, const BlackboxRegistry *Blackboxes,
               InterpOptions Opts)
    : G(G), Blackboxes(Blackboxes), Opts(Opts) {}

Expected<TreePtr> Interp::parse(ByteSpan Input) {
  return parse(Input, G.startSymbol());
}

Expected<TreePtr> Interp::parse(ByteSpan Input, Symbol StartNT) {
  RuleId Start = G.findGlobal(StartNT);
  if (Start == InvalidRuleId)
    return Expected<TreePtr>::failure(
        "start nonterminal '" +
        std::string(G.interner().name(StartNT)) + "' has no rule");
  Stats = InterpStats();
  Runner R(G, Blackboxes, Opts, Stats);
  return R.run(Input, Start);
}
