//===- runtime/Interp.cpp -------------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Interp.h"

#include "expr/Eval.h"
#include "support/Casting.h"
#include "support/FlatHash.h"
#include "support/GenRuntime.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

using namespace ipg;

//===----------------------------------------------------------------------===//
// Reusable engine state. Everything here survives across parse() calls so
// the steady state allocates nothing: vectors and the flat hashes keep
// their capacity through clear(), the TreeStore keeps its arena blocks
// through reset(), and frames are pooled per recursion depth.
//===----------------------------------------------------------------------===//

namespace ipg {

struct InterpState {
  /// Per-alternative execution state: the environment E, the ids of
  /// already-built child trees, and per-term touch records for TermEnd.
  struct Frame {
    ByteSpan Input;
    Env E;
    std::vector<uint32_t> ChildIds;
    std::vector<uint32_t> ChildTermIdx;

    /// Per-term touch records, invalidated per alternative by generation
    /// stamp — a rule with many failing alternatives pays O(1) per
    /// attempt instead of refilling the array (the same scheme as the
    /// generated ipg_rt::Frame).
    struct TermRec {
      uint32_t Gen = 0;
      int64_t Start = 0;
      int64_t End = 0;
    };
    std::vector<TermRec> Recs;
    uint32_t RecGen = 0;

    /// Enclosing frame for where-clause rules (null for global rules).
    const Frame *Lexical = nullptr;

    void beginAlt(ByteSpan In, const Frame *Lex, size_t NumTerms) {
      Input = In;
      Lexical = Lex;
      E.clear();
      ChildIds.clear();
      ChildTermIdx.clear();
      if (Recs.size() < NumTerms)
        Recs.resize(NumTerms);
      if (++RecGen == 0) {
        // Generation wrap (once per 2^32 alternatives): ancient stamps
        // could alias the restarted counter, so pay one full sweep.
        for (TermRec &R : Recs)
          R.Gen = 0;
        RecGen = 1;
      }
    }

    void rec(uint32_t TermIdx, int64_t Start, int64_t End) {
      Recs[TermIdx] = TermRec{RecGen, Start, End};
    }
    bool termEnd(uint32_t TermIdx, int64_t &Out) const {
      if (TermIdx >= Recs.size() || Recs[TermIdx].Gen != RecGen)
        return false;
      Out = Recs[TermIdx].End;
      return true;
    }
  };

  /// ipg_rt::memoPack'd outcomes — the same encoding the generated Ctx
  /// uses, through the same helpers; ids are stable within a parse.
  FlatIntervalMap<uint32_t> Memo;
  FlatIntervalMap<uint8_t> InProgress;
  /// Per-rule memoization eligibility (computed once per engine): global
  /// rules that spawn subparsers. Indexed by RuleId.
  std::vector<uint8_t> RuleMemoizable;
  std::vector<std::unique_ptr<Frame>> FramePool; // indexed by depth
  std::vector<std::vector<uint32_t>> ElemScratch; // per array-nesting level
  size_t ArrayNest = 0;

  /// The store of the parse in flight (and, after a FAILED parse, of the
  /// next one — failures recycle trivially since no result escaped). A
  /// successful parse MOVES this into the returned TreePtr: the engine
  /// keeps no reference, so the result path performs zero refcount
  /// traffic, and a dropped result finds its way back through Pool.
  TreeStore *Cur = nullptr;
  /// Where dying TreePtrs park their store for reuse; heap-allocated so
  /// it can outlive whichever of engine / last tree dies first.
  TreeStore::Recycler *Pool = new TreeStore::Recycler();

  ~InterpState() {
    TreeStore::Recycler *P = Pool;
    P->OwnerAlive = false;
    TreeStore *Parked = P->Returned;
    P->Returned = nullptr;
    bool DestroyedAny = Cur || Parked;
    if (Cur)
      TreeStore::destroy(Cur); // may free P when it was the last store
    if (Parked)
      TreeStore::destroy(Parked);
    // No store went through destroy() and none are loaned out: P is ours
    // to free. (Outstanding TreePtrs free it through their last release.)
    if (!DestroyedAny && P->LiveStores == 0)
      delete P;
  }

  Frame &frameAt(size_t Depth) {
    while (FramePool.size() <= Depth)
      FramePool.push_back(std::make_unique<Frame>());
    return *FramePool[Depth];
  }

  std::vector<uint32_t> &elemScratchAt(size_t Level) {
    if (ElemScratch.size() <= Level)
      ElemScratch.resize(Level + 1);
    return ElemScratch[Level];
  }
};

} // namespace ipg

namespace {

using Frame = InterpState::Frame;

// The interpreter and the generated parsers share one semantic core
// (support/GenRuntime.h, embedded verbatim into codegen output). The
// ReadKind encoding used across that boundary must mirror the enum.
static_assert(static_cast<unsigned>(ReadKind::U8) == ipg_rt::RK_U8 &&
                  static_cast<unsigned>(ReadKind::U16Le) == ipg_rt::RK_U16Le &&
                  static_cast<unsigned>(ReadKind::U32Le) == ipg_rt::RK_U32Le &&
                  static_cast<unsigned>(ReadKind::U64Le) == ipg_rt::RK_U64Le &&
                  static_cast<unsigned>(ReadKind::U16Be) == ipg_rt::RK_U16Be &&
                  static_cast<unsigned>(ReadKind::U32Be) == ipg_rt::RK_U32Be &&
                  static_cast<unsigned>(ReadKind::BtoiLe) ==
                      ipg_rt::RK_BtoiLe &&
                  static_cast<unsigned>(ReadKind::BtoiBe) == ipg_rt::RK_BtoiBe,
              "ipg_rt read-kind encoding must mirror ipg::ReadKind");

/// Env adapter with the getAttr/setAttr surface ipg_rt::updStartEnd
/// expects.
struct EnvRef {
  Env &E;
  bool getAttr(Symbol S, long long &Out) const {
    if (auto V = E.get(S)) {
      Out = *V;
      return true;
    }
    return false;
  }
  void setAttr(Symbol S, long long V) { E.set(S, static_cast<int64_t>(V)); }
};

/// EvalContext view of a Frame (sigma of Figure 8). Child trees are stored
/// as ids; the store resolves them.
class FrameCtx : public EvalContext {
public:
  FrameCtx(const Frame &F, const Grammar &G, const TreeStore &Store)
      : F(F), G(G), Store(Store) {}

  std::optional<int64_t> attr(Symbol Id) const override {
    for (const Frame *L = &F; L; L = L->Lexical)
      if (auto V = L->E.get(Id))
        return V;
    return std::nullopt;
  }

  std::optional<int64_t> ntAttr(Symbol NT, Symbol Attr) const override {
    for (const Frame *L = &F; L; L = L->Lexical)
      for (size_t I = L->ChildIds.size(); I-- > 0;)
        if (const auto *N = dyn_cast<NodeTree>(Store.node(L->ChildIds[I])))
          if (N->name() == NT)
            return N->attr(Attr);
    return std::nullopt;
  }

  std::optional<int64_t> elemAttr(Symbol NT, int64_t Index,
                                  Symbol Attr) const override {
    const ArrayTree *A = findArray(NT);
    if (!A || Index < 0 || static_cast<size_t>(Index) >= A->size())
      return std::nullopt;
    const NodeTree *N = A->element(static_cast<size_t>(Index));
    return N ? N->attr(Attr) : std::nullopt;
  }

  std::optional<int64_t> arrayLength(Symbol NT) const override {
    const ArrayTree *A = findArray(NT);
    if (!A)
      return std::nullopt;
    return static_cast<int64_t>(A->size());
  }

  std::optional<int64_t> eoi() const override {
    return static_cast<int64_t>(F.Input.size());
  }

  std::optional<int64_t> termEnd(uint32_t TermIdx) const override {
    int64_t Out = 0;
    if (!F.termEnd(TermIdx, Out))
      return std::nullopt;
    return Out;
  }

  std::optional<int64_t> readInput(ReadKind RK, int64_t Lo,
                                   int64_t Hi) const override {
    // Width/endianness and the bounds guards live in the shared runtime
    // (the generated parsers call the same functions).
    long long Width = 0;
    bool BigEndian = false;
    if (!ipg_rt::readKindSpec(static_cast<unsigned>(RK), Width, BigEndian) &&
        !ipg_rt::btoiWidth(Lo, Hi, Width)) // btoi(lo, hi) window
      return std::nullopt;
    long long Out = 0;
    if (!ipg_rt::readScalar(F.Input.data(),
                            static_cast<long long>(F.Input.size()), Lo,
                            Width, BigEndian, Out))
      return std::nullopt;
    return static_cast<int64_t>(Out);
  }

private:
  const Frame &F;
  const Grammar &G;
  const TreeStore &Store;

  const ArrayTree *findArray(Symbol NT) const {
    for (const Frame *L = &F; L; L = L->Lexical)
      for (size_t I = L->ChildIds.size(); I-- > 0;)
        if (const auto *A = dyn_cast<ArrayTree>(Store.node(L->ChildIds[I])))
          if (A->elemName() == NT)
            return A;
    return nullptr;
  }
};

/// One parse() invocation over recycled InterpState.
class Runner {
public:
  Runner(const Grammar &G, const BlackboxRegistry *Blackboxes,
         const InterpOptions &Opts, InterpStats &Stats, InterpState &St)
      : G(G), Blackboxes(Blackboxes), Opts(Opts), Stats(Stats), St(St),
        Store(*St.Cur) {}

  Expected<TreePtr> run(ByteSpan Input, RuleId Start) {
    uint32_t RootId = parseRule(Start, Input, nullptr);
    const NodeTree *Node =
        RootId == InvalidNode
            ? nullptr
            : cast<NodeTree>(Store.node(RootId));
    Stats.ArenaBytesUsed = Store.arenaBytesUsed();
    if (Hard)
      return Expected<TreePtr>(std::move(Hard));
    if (!Node)
      return Expected<TreePtr>::failure(
          "parse failed: input rejected by rule '" +
          std::string(G.interner().name(G.rule(Start).Name)) + "'");
    // Move the store out to the result: the engine keeps no reference
    // (zero refcount traffic on this path), and when the caller drops the
    // TreePtr the store parks itself in St.Pool for the next parse.
    TreeStore *Owned = St.Cur;
    St.Cur = nullptr;
    return Expected<TreePtr>(TreePtr(Owned, Node));
  }

private:
  const Grammar &G;
  const BlackboxRegistry *Blackboxes;
  const InterpOptions &Opts;
  InterpStats &Stats;
  InterpState &St;
  TreeStore &Store;
  Error Hard = Error::success();
  size_t Depth = 0;

  /// parseRule's failure id (nodes are 32-bit store indices).
  static constexpr uint32_t InvalidNode = ~0u;

  /// updStartEnd of Figure 8: the first-update min/max shared with the
  /// generated runtime. start/end enter the environment only once a term
  /// touches bytes; there is no pre-seeded sentinel.
  void updStartEnd(Env &E, int64_t Lo, int64_t Hi, bool Touched) {
    EnvRef R{E};
    ipg_rt::updStartEnd(R, G.symStart(), G.symEnd(), Lo, Hi, Touched);
  }

  /// The subtree's [start, end) as the parent sees it (T-NTSucc defaults,
  /// shared with the generated runtime): untouched subtrees read as
  /// [sub-EOI, 0).
  void childSpan(const NodeTree &Sub, int64_t SubEoi, int64_t &BStart,
                 int64_t &BEnd) {
    auto S = Sub.attr(G.symStart());
    auto En = Sub.attr(G.symEnd());
    long long BS = 0, BE = 0;
    ipg_rt::childSpan(S.has_value(), S.value_or(0), En.has_value(),
                      En.value_or(0), SubEoi, BS, BE);
    BStart = BS;
    BEnd = BE;
  }

  /// Evaluates an interval; false means evaluation failed (term fails).
  bool evalInterval(const Frame &F, const Interval &Iv, int64_t &Lo,
                    int64_t &Hi) {
    FrameCtx Ctx(F, G, Store);
    if (!Iv.Lo || !Iv.Hi) {
      Hard = Error::failure("internal: interval not completed (run "
                            "completeIntervals before parsing)");
      return false;
    }
    auto L = evaluate(*Iv.Lo, Ctx);
    if (!L)
      return false;
    auto H = evaluate(*Iv.Hi, Ctx);
    if (!H)
      return false;
    Lo = *L;
    Hi = *H;
    return true;
  }

  /// Parses a child nonterminal (shared by NT terms, array elements and
  /// switch arms). Returns false on Fail; records into the frame on
  /// success.
  bool parseChildNT(Frame &F, uint32_t TermIdx, RuleId Target,
                    const Interval &Iv) {
    int64_t Lo, Hi;
    if (!evalInterval(F, Iv, Lo, Hi) || Hard)
      return false;
    if (!ipg_rt::intervalOk(Lo, Hi, static_cast<int64_t>(F.Input.size())))
      return false;
    uint32_t Sub =
        parseRule(Target, F.Input.slice(static_cast<size_t>(Lo),
                                        static_cast<size_t>(Hi)),
                  &F);
    if (Hard || Sub == InvalidNode)
      return false;
    int64_t BStart, BEnd;
    childSpan(*cast<NodeTree>(Store.node(Sub)), Hi - Lo, BStart, BEnd);
    uint32_t Adjusted = Store.makeShifted(Sub, Lo, G.symStart(), G.symEnd());
    updStartEnd(F.E, Lo + BStart, Lo + BEnd, BEnd != 0);
    F.ChildIds.push_back(Adjusted);
    F.ChildTermIdx.push_back(TermIdx);
    F.rec(TermIdx, Lo + BStart, Lo + BEnd);
    return true;
  }

  bool execTerm(Frame &F, const Alternative &Alt, uint32_t TI) {
    ++Stats.TermsExecuted;
    const Term &T = *Alt.Terms[TI];
    switch (T.kind()) {
    case Term::Kind::Nonterminal: {
      const auto &N = *cast<NTTerm>(&T);
      if (N.Resolved == InvalidRuleId) {
        Hard = Error::failure("internal: unresolved nonterminal '" +
                              std::string(G.interner().name(N.Name)) +
                              "' (run checkAttributes before parsing)");
        return false;
      }
      return parseChildNT(F, TI, N.Resolved, N.Iv);
    }

    case Term::Kind::Terminal: {
      const auto &S = *cast<TerminalTerm>(&T);
      int64_t Lo, Hi;
      if (!evalInterval(F, S.Iv, Lo, Hi) || Hard)
        return false;
      if (!ipg_rt::intervalOk(Lo, Hi, static_cast<int64_t>(F.Input.size())))
        return false;
      if (S.Wildcard) {
        // `raw` matches the whole interval without reading or copying it.
        updStartEnd(F.E, Lo, Hi, Hi > Lo);
        F.ChildIds.push_back(
            Store.makeLeaf(F.Input.data() + Lo,
                           static_cast<size_t>(Hi - Lo), Lo,
                           /*Opaque=*/true));
        F.ChildTermIdx.push_back(TI);
        F.rec(TI, Lo, Hi);
        return true;
      }
      int64_t Len = static_cast<int64_t>(S.Bytes.size());
      if (Hi - Lo < Len)
        return false;
      if (!F.Input.matchesAt(static_cast<size_t>(Lo), S.Bytes))
        return false;
      updStartEnd(F.E, Lo, Lo + Len, Len > 0);
      // Zero-copy: the leaf aliases the matched window of the input.
      F.ChildIds.push_back(Store.makeLeaf(F.Input.data() + Lo,
                                          static_cast<size_t>(Len), Lo,
                                          /*Opaque=*/false));
      F.ChildTermIdx.push_back(TI);
      F.rec(TI, Lo, Lo + Len);
      return true;
    }

    case Term::Kind::AttrDef: {
      const auto &D = *cast<AttrDefTerm>(&T);
      FrameCtx Ctx(F, G, Store);
      auto V = evaluate(*D.Value, Ctx);
      if (!V)
        return false;
      F.E.set(D.Name, *V);
      return true;
    }

    case Term::Kind::Predicate: {
      const auto &P = *cast<PredicateTerm>(&T);
      FrameCtx Ctx(F, G, Store);
      auto V = evaluate(*P.Cond, Ctx);
      return V && *V != 0;
    }

    case Term::Kind::Array:
      return execArray(F, *cast<ArrayTerm>(&T), TI);

    case Term::Kind::Switch: {
      const auto &Sw = *cast<SwitchTerm>(&T);
      FrameCtx Ctx(F, G, Store);
      for (const SwitchChoice &C : Sw.Choices) {
        if (C.Cond) {
          auto V = evaluate(*C.Cond, Ctx);
          if (!V)
            return false;
          if (*V == 0)
            continue;
        }
        if (C.Resolved == InvalidRuleId) {
          Hard = Error::failure("internal: unresolved switch arm");
          return false;
        }
        return parseChildNT(F, TI, C.Resolved, C.Iv);
      }
      return false; // no arm matched
    }

    case Term::Kind::Blackbox:
      return execBlackbox(F, *cast<BlackboxTerm>(&T), TI);
    }
    return false;
  }

  bool execArray(Frame &F, const ArrayTerm &A, uint32_t TI) {
    FrameCtx Ctx(F, G, Store);
    auto From = evaluate(*A.From, Ctx);
    auto To = evaluate(*A.To, Ctx);
    if (!From || !To)
      return false;
    if (A.Resolved == InvalidRuleId) {
      Hard = Error::failure("internal: unresolved array element");
      return false;
    }

    // Save any outer binding of the loop variable and bind it per element;
    // the binding is visible to el/er and (through the lexical chain) to
    // local element rules, matching T-ArraySucc's E[id -> k].
    auto Saved = F.E.get(A.LoopVar);
    // Element ids accumulate in per-nesting-level scratch. Elements may
    // contain arrays at deeper levels, and entering a deeper level can
    // resize the pool — re-index on every access instead of holding a
    // reference across the recursive parses below.
    size_t Level = St.ArrayNest++;
    St.elemScratchAt(Level).clear();
    bool AnyTouched = false;
    int64_t MaxEnd = 0;
    bool Failed = false;

    for (int64_t K = *From; K < *To; ++K) {
      F.E.set(A.LoopVar, K);
      int64_t Lo, Hi;
      if (!evalInterval(F, A.Iv, Lo, Hi) || Hard) {
        Failed = true;
        break;
      }
      if (!ipg_rt::intervalOk(Lo, Hi,
                              static_cast<int64_t>(F.Input.size()))) {
        Failed = true;
        break;
      }
      uint32_t Sub =
          parseRule(A.Resolved,
                    F.Input.slice(static_cast<size_t>(Lo),
                                  static_cast<size_t>(Hi)),
                    &F);
      if (Hard || Sub == InvalidNode) {
        Failed = true;
        break;
      }
      int64_t BStart, BEnd;
      childSpan(*cast<NodeTree>(Store.node(Sub)), Hi - Lo, BStart, BEnd);
      St.ElemScratch[Level].push_back(
          Store.makeShifted(Sub, Lo, G.symStart(), G.symEnd()));
      updStartEnd(F.E, Lo + BStart, Lo + BEnd, BEnd != 0);
      if (BEnd != 0) {
        AnyTouched = true;
        MaxEnd = std::max(MaxEnd, Lo + BEnd);
      }
    }

    --St.ArrayNest;
    if (Saved)
      F.E.set(A.LoopVar, *Saved);
    else
      F.E.erase(A.LoopVar);
    if (Failed)
      return false;

    const std::vector<uint32_t> &Elems = St.ElemScratch[Level];
    F.ChildIds.push_back(
        Store.makeArray(A.Elem, Elems.data(),
                        static_cast<uint32_t>(Elems.size())));
    F.ChildTermIdx.push_back(TI);
    if (AnyTouched)
      F.rec(TI, 0, MaxEnd);
    return true;
  }

  bool execBlackbox(Frame &F, const BlackboxTerm &B, uint32_t TI) {
    int64_t Lo, Hi;
    if (!evalInterval(F, B.Iv, Lo, Hi) || Hard)
      return false;
    if (!ipg_rt::intervalOk(Lo, Hi, static_cast<int64_t>(F.Input.size())))
      return false;

    std::string Name(G.interner().name(B.Name));
    const BlackboxFn *Fn =
        Blackboxes ? Blackboxes->find(Name) : nullptr;
    if (!Fn) {
      Hard = Error::failure("blackbox parser '" + Name +
                            "' is not registered");
      return false;
    }
    ByteSpan Slice = F.Input.slice(static_cast<size_t>(Lo),
                                   static_cast<size_t>(Hi));
    BlackboxResult Res = (*Fn)(Slice);
    if (!Res.Ok)
      return false;
    if (Res.End > Slice.size()) {
      Hard = Error::failure("blackbox parser '" + Name +
                            "' consumed past its interval");
      return false;
    }

    EnvSlot Slots[3];
    Slots[0] = {G.symVal(), Res.Value};
    if (Res.End > 0) {
      Slots[1] = {G.symStart(), Lo};
      Slots[2] = {G.symEnd(), Lo + static_cast<int64_t>(Res.End)};
    } else {
      Slots[1] = {G.symStart(), Hi - Lo};
      Slots[2] = {G.symEnd(), Lo};
    }
    uint32_t KidIds[1];
    uint32_t KidTerms[1] = {0};
    uint32_t NumKids = 0;
    if (!Res.Output.empty()) {
      // Decoded output is not a window into the input; copy it into the
      // arena so the leaf's lifetime matches the tree's.
      KidIds[0] =
          Store.makeLeafCopy(Res.Output.data(), Res.Output.size(), 0);
      NumKids = 1;
    }
    uint32_t Node = Store.makeNodeFromSlots(B.Name, InvalidRuleId, Slots, 3,
                                            KidIds, KidTerms, NumKids);
    ++Stats.NodesCreated;
    updStartEnd(F.E, Lo, Lo + static_cast<int64_t>(Res.End), Res.End > 0);
    F.ChildIds.push_back(Node);
    F.ChildTermIdx.push_back(TI);
    F.rec(TI, Lo, Lo + static_cast<int64_t>(Res.End));
    return true;
  }

  /// Parses \p Id over \p Input; returns the frozen node id, or
  /// InvalidNode on failure (check Hard for aborts).
  uint32_t parseRule(RuleId Id, ByteSpan Input, const Frame *Lexical) {
    if (Hard)
      return InvalidNode;
    if (Depth >= Opts.MaxDepth) {
      Hard = Error::failure(
          "recursion depth limit exceeded while parsing rule '" +
          std::string(G.interner().name(G.rule(Id).Name)) +
          "' (likely a non-terminating grammar; see termination checking)");
      return InvalidNode;
    }
    ++Depth;
    Stats.PeakDepth = std::max(Stats.PeakDepth, Depth);

    const Rule &R = G.rule(Id);
    // Local rules are never memoized (their meaning depends on the
    // enclosing frame); leaf rules are excluded as a pure optimization —
    // re-matching a handful of terminals/attrdefs is cheaper than a probe
    // (ruleSpawnsSubparsers, the policy shared with generated parsers).
    bool Memoize = Opts.UseMemo && St.RuleMemoizable[Id];
    bool TrackReentry = Opts.DetectReentry && !R.IsLocal;
    IntervalKey Key;
    if (Memoize || TrackReentry)
      Key = IntervalKey::pack(Id, Input.absBase(),
                              Input.absBase() + Input.size());
    if (Memoize) {
      if (const uint32_t *Hit = St.Memo.find(Key)) {
        ++Stats.MemoHits;
        --Depth;
        unsigned NodeId = 0;
        return ipg_rt::memoUnpack(*Hit, NodeId) ? NodeId : InvalidNode;
      }
      ++Stats.MemoMisses;
    }
    if (TrackReentry && !St.InProgress.insert(Key, 1)) {
      --Depth;
      return InvalidNode; // packrat-style: in-progress re-entry fails
    }

    uint32_t Result = InvalidNode;
    Frame &F = St.frameAt(Depth);
    for (const Alternative &Alt : R.Alts) {
      F.beginAlt(Input, R.IsLocal ? Lexical : nullptr, Alt.Terms.size());
      // The environment starts empty: EOI is answered from the frame
      // (never stored as an attribute, so a grammar attribute named "EOI"
      // cannot collide through the lexical lookup), and start/end appear
      // only once a term touches bytes (first-update updStartEnd) — a
      // byte-untouched node exposes neither, and reading its X.start
      // fails with partiality, exactly as in the generated parsers.
      bool Ok = true;
      size_t NumTerms = Alt.Terms.size();
      for (size_t Step = 0; Step < NumTerms; ++Step) {
        uint32_t TI = Alt.ExecOrder.empty()
                          ? static_cast<uint32_t>(Step)
                          : Alt.ExecOrder[Step];
        if (!execTerm(F, Alt, TI)) {
          Ok = false;
          break;
        }
      }
      if (Hard)
        break;
      if (Ok) {
        Result = Store.makeNode(
            R.Name, Id, F.E, F.ChildIds.data(), F.ChildTermIdx.data(),
            static_cast<uint32_t>(F.ChildIds.size()));
        ++Stats.NodesCreated;
        break;
      }
    }

    if (TrackReentry)
      St.InProgress.erase(Key);
    if (Memoize && !Hard)
      St.Memo.insert(Key, ipg_rt::memoPack(
                              Result == InvalidNode ? 0u : Result,
                              Result != InvalidNode));
    --Depth;
    return Hard ? InvalidNode : Result;
  }
};

} // namespace

Interp::Interp(const Grammar &G, const BlackboxRegistry *Blackboxes,
               InterpOptions Opts)
    : G(G), Blackboxes(Blackboxes), Opts(Opts),
      S(std::make_unique<InterpState>()) {
  S->RuleMemoizable.resize(G.numRules(), 0);
  for (size_t I = 0; I < G.numRules(); ++I) {
    const Rule &R = G.rule(static_cast<RuleId>(I));
    S->RuleMemoizable[I] = !R.IsLocal && ruleSpawnsSubparsers(R);
  }
}

Interp::~Interp() = default;

Expected<TreePtr> Interp::parse(ByteSpan Input) {
  return parse(Input, G.startSymbol());
}

Expected<TreePtr> Interp::parse(ByteSpan Input, Symbol StartNT) {
  // Reset FIRST: stats() must describe this call even when it fails
  // before doing any work (a stale-stats regression lives in
  // tests/engine_test.cpp and is asserted by the differential harness).
  Stats = InterpStats();
  RuleId Start = G.findGlobal(StartNT);
  if (Start == InvalidRuleId)
    return Expected<TreePtr>::failure(
        "start nonterminal '" +
        std::string(G.interner().name(StartNT)) + "' has no rule");
  // Recycle a store when one is available: either the engine still holds
  // one (the previous parse failed, so no result escaped) or a dropped
  // TreePtr parked its store in the recycler. Otherwise — first parse, or
  // every previous tree is still alive — this parse gets a fresh store.
  if (!S->Cur && S->Pool->Returned) {
    S->Cur = S->Pool->Returned;
    S->Pool->Returned = nullptr;
  }
  if (S->Cur) {
    S->Cur->reset();
    Stats.StoreRecycled = true;
  } else {
    S->Cur = new TreeStore(S->Pool);
  }
  S->Memo.clear();
  S->InProgress.clear();
  S->ArrayNest = 0;
  Runner R(G, Blackboxes, Opts, Stats, *S);
  return R.run(Input, Start);
}

bool Interp::adoptStore(TreeStore *Store) {
  if (!Store)
    return false;
  // Engine-thread only: bindRecycler stamps this thread as the store's
  // owner and the recycler counters are plain. Decline when a store is
  // already parked (or in flight) — one spare is all a worker needs.
  if (S->Cur || S->Pool->Returned)
    return false;
  Store->bindRecycler(S->Pool);
  Store->reset();
  S->Pool->Returned = Store;
  return true;
}
