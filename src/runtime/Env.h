//===- runtime/Env.h - Attribute environments -------------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The environment E of the parsing semantics: a map from attribute names
/// to integer values. Slots stay in one flat insertion-ordered vector (the
/// layout frozen nodes copy), but every get/set resolves through a
/// generation-stamped direct map from interned symbol to slot position
/// (ipg_rt::SlotIndex, shared with the generated parsers' frames) — O(1)
/// instead of the linear scan attribute-heavy rules used to pay per
/// access, and clear() stays O(1) too (a generation bump, not a sweep).
///
/// Env is the *mutable* environment a frame builds while executing an
/// alternative; the interpreter reuses Env storage across alternatives and
/// parses (clear() keeps capacity). Finished nodes carry an immutable
/// arena-frozen copy instead (EnvView in runtime/ParseTree.h), which is why
/// the slot type lives here as a standalone trivially-copyable struct.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_RUNTIME_ENV_H
#define IPG_RUNTIME_ENV_H

#include "support/GenRuntime.h"
#include "support/Interner.h"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace ipg {

/// One attribute binding. Structured bindings work: `for (auto [K, V] : E)`.
struct EnvSlot {
  Symbol Key;
  int64_t Value;
};

class Env {
public:
  std::optional<int64_t> get(Symbol S) const {
    uint32_t I = 0;
    if (!Index.lookup(S, I))
      return std::nullopt;
    return Slots[I].Value;
  }

  /// Inserts or overwrites.
  void set(Symbol S, int64_t V) {
    uint32_t I = 0;
    if (Index.lookup(S, I)) {
      Slots[I].Value = V;
      return;
    }
    Index.record(S, static_cast<uint32_t>(Slots.size()));
    Slots.push_back({S, V});
  }

  /// Removes the binding; returns whether it existed.
  bool erase(Symbol S) {
    uint32_t I = 0;
    if (!Index.lookup(S, I))
      return false;
    Slots.erase(Slots.begin() + I);
    Index.forget(S);
    for (uint32_t J = I; J < Slots.size(); ++J)
      Index.record(Slots[J].Key, J); // reseat the slots the erase slid down
    return true;
  }

  /// Drops all bindings but keeps capacity (scratch reuse in the
  /// interpreter's frame pool). O(1): the index clears by generation.
  void clear() {
    Slots.clear();
    Index.clear();
  }

  size_t size() const { return Slots.size(); }
  const EnvSlot *data() const { return Slots.data(); }
  auto begin() const { return Slots.begin(); }
  auto end() const { return Slots.end(); }

private:
  std::vector<EnvSlot> Slots;
  ipg_rt::SlotIndex Index;
};

} // namespace ipg

#endif // IPG_RUNTIME_ENV_H
