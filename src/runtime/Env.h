//===- runtime/Env.h - Attribute environments -------------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The environment E of the parsing semantics: a map from attribute names
/// to integer values. Environments are tiny (EOI/start/end plus a handful
/// of user attributes), so a flat vector with linear search beats a hash
/// map here.
///
/// Env is the *mutable* environment a frame builds while executing an
/// alternative; the interpreter reuses Env storage across alternatives and
/// parses (clear() keeps capacity). Finished nodes carry an immutable
/// arena-frozen copy instead (EnvView in runtime/ParseTree.h), which is why
/// the slot type lives here as a standalone trivially-copyable struct.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_RUNTIME_ENV_H
#define IPG_RUNTIME_ENV_H

#include "support/Interner.h"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace ipg {

/// One attribute binding. Structured bindings work: `for (auto [K, V] : E)`.
struct EnvSlot {
  Symbol Key;
  int64_t Value;
};

class Env {
public:
  std::optional<int64_t> get(Symbol S) const {
    for (const auto &[Key, Value] : Slots)
      if (Key == S)
        return Value;
    return std::nullopt;
  }

  /// Inserts or overwrites.
  void set(Symbol S, int64_t V) {
    for (auto &[Key, Value] : Slots)
      if (Key == S) {
        Value = V;
        return;
      }
    Slots.push_back({S, V});
  }

  /// Removes the binding; returns whether it existed.
  bool erase(Symbol S) {
    for (size_t I = 0; I < Slots.size(); ++I)
      if (Slots[I].Key == S) {
        Slots.erase(Slots.begin() + I);
        return true;
      }
    return false;
  }

  /// Drops all bindings but keeps capacity (scratch reuse in the
  /// interpreter's frame pool).
  void clear() { Slots.clear(); }

  size_t size() const { return Slots.size(); }
  const EnvSlot *data() const { return Slots.data(); }
  auto begin() const { return Slots.begin(); }
  auto end() const { return Slots.end(); }

private:
  std::vector<EnvSlot> Slots;
};

} // namespace ipg

#endif // IPG_RUNTIME_ENV_H
