//===- runtime/Env.h - Attribute environments -------------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The environment E of the parsing semantics: a map from attribute names
/// to integer values. Environments are tiny (EOI/start/end plus a handful
/// of user attributes), so a flat vector with linear search beats a hash
/// map here.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_RUNTIME_ENV_H
#define IPG_RUNTIME_ENV_H

#include "support/Interner.h"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace ipg {

class Env {
public:
  std::optional<int64_t> get(Symbol S) const {
    for (const auto &[Key, Value] : Slots)
      if (Key == S)
        return Value;
    return std::nullopt;
  }

  /// Inserts or overwrites.
  void set(Symbol S, int64_t V) {
    for (auto &[Key, Value] : Slots)
      if (Key == S) {
        Value = V;
        return;
      }
    Slots.emplace_back(S, V);
  }

  /// Removes the binding; returns whether it existed.
  bool erase(Symbol S) {
    for (size_t I = 0; I < Slots.size(); ++I)
      if (Slots[I].first == S) {
        Slots.erase(Slots.begin() + I);
        return true;
      }
    return false;
  }

  size_t size() const { return Slots.size(); }
  auto begin() const { return Slots.begin(); }
  auto end() const { return Slots.end(); }

private:
  std::vector<std::pair<Symbol, int64_t>> Slots;
};

} // namespace ipg

#endif // IPG_RUNTIME_ENV_H
