//===- runtime/Engine.cpp - engine factory --------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Engine.h"
#include "codegen/GenEngine.h"
#include "runtime/Interp.h"
#include "vm/BytecodeVM.h"

using namespace ipg;

Engine::~Engine() = default;

const char *ipg::engineKindName(EngineKind K) {
  switch (K) {
  case EngineKind::Interp:
    return "interp";
  case EngineKind::Generated:
    return "generated";
  case EngineKind::Vm:
    return "vm";
  }
  return "unknown";
}

Expected<std::unique_ptr<Engine>>
ipg::makeEngine(EngineKind Kind, const Grammar &G,
                const BlackboxRegistry *Blackboxes, const EngineOptions &Opts,
                const GenModuleConfig *GenConfig) {
  using Ret = Expected<std::unique_ptr<Engine>>;
  switch (Kind) {
  case EngineKind::Interp:
    return Ret(std::make_unique<Interp>(G, Blackboxes, Opts));
  case EngineKind::Vm:
    return Ret(std::make_unique<BytecodeVM>(G, Blackboxes, Opts));
  case EngineKind::Generated: {
    // Generated parsers compile Strict-mode control flow in; salvage
    // would need a regenerated module with recovery dispatch, which the
    // emitter does not produce. Refuse rather than silently parse Strict.
    if (Opts.Recovery == RecoveryPolicy::Salvage)
      return Ret::failure("generated parsers do not support "
                          "RecoveryPolicy::Salvage; use the interpreter or "
                          "bytecode VM");
    // The module compiles the options in (memoization policy, default
    // depth limit); blackboxes bind through GenConfig's bridge source,
    // not the host registry — reject a silent mismatch.
    auto M = GenModule::compile(G, Opts,
                                GenConfig ? *GenConfig : GenModuleConfig());
    if (!M)
      return Ret::failure(M.message());
    return Ret(std::make_unique<GenEngine>(std::move(*M), G));
  }
  }
  return Ret::failure("unknown engine kind");
}
