//===- runtime/ParseTree.cpp ----------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ParseTree.h"

#include "support/Casting.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

using namespace ipg;

const NodeTree *NodeTree::childNode(Symbol ChildName) const {
  for (size_t I = NumChildren; I-- > 0;)
    if (const auto *N = dyn_cast<NodeTree>(Owner->node(ChildIds[I])))
      if (N->name() == ChildName)
        return N;
  return nullptr;
}

const ArrayTree *NodeTree::childArray(Symbol ElemName) const {
  for (size_t I = NumChildren; I-- > 0;)
    if (const auto *A = dyn_cast<ArrayTree>(Owner->node(ChildIds[I])))
      if (A->elemName() == ElemName)
        return A;
  return nullptr;
}

const NodeTree *ArrayTree::element(size_t I) const {
  if (I >= NumElems)
    return nullptr;
  return dyn_cast<NodeTree>(Owner->node(ElemIds[I]));
}

uint32_t TreeStore::makeShifted(uint32_t BaseId, int64_t Delta,
                                Symbol SymStart, Symbol SymEnd) {
  // A zero delta needs no view: the base node is its own view (the
  // common first-child-at-offset-0 edge costs nothing, matching the
  // generated runtime's Ctx::shifted).
  if (Delta == 0)
    return BaseId;
  // Record which symbols shifted views resolve against; they are fixed
  // per grammar, so every call agrees.
  ShiftStartSym = SymStart;
  ShiftEndSym = SymEnd;
  // The view shares the base node's frozen env and child arrays — nothing
  // is copied. Deltas compose, so a view over a view stays correct; the
  // resolution happens in EnvView (env()/attr() reads and iteration).
  const auto &N = *cast<NodeTree>(node(BaseId));
  NodeTree View(N);
  View.Shift = N.Shift + Delta;
  return addNode(Mem.make<NodeTree>(View));
}

// Both walks below use an explicit work stack: the engines parse
// recursion depths far beyond what a thread stack can walk, and these
// helpers must survive the trees they build.

size_t ipg::treeSize(const ParseTree &T) {
  size_t Total = 0;
  std::vector<const ParseTree *> Work{&T};
  while (!Work.empty()) {
    const ParseTree *Cur = Work.back();
    Work.pop_back();
    ++Total;
    switch (Cur->kind()) {
    case ParseTree::Kind::Leaf:
      break;
    case ParseTree::Kind::Node:
      for (TreeRef C : cast<NodeTree>(Cur)->children())
        Work.push_back(C.get());
      break;
    case ParseTree::Kind::Array:
      for (TreeRef C : cast<ArrayTree>(Cur)->elements())
        Work.push_back(C.get());
      break;
    }
  }
  return Total;
}

void ipg::collectHoles(const ParseTree &Root, std::vector<HoleRecord> &Out) {
  // Accumulates BaseOrigin exactly as Printer::walkNode does (root node
  // anchors at its own shift; node/array-element edges add the child's
  // shift; leaf offsets are relative to the enclosing node's origin), so
  // the recorded intervals are the absolute positions the holes reprint
  // at. treeSize's walk cannot be reused: it never resolves shifts.
  struct Item {
    const ParseTree *T;
    int64_t BaseOrigin;
  };
  std::vector<Item> Work;
  int64_t RootOrigin = 0;
  if (const auto *N = dyn_cast<NodeTree>(&Root))
    RootOrigin = N->shift();
  Work.push_back(Item{&Root, RootOrigin});
  while (!Work.empty()) {
    Item It = Work.back();
    Work.pop_back();
    switch (It.T->kind()) {
    case ParseTree::Kind::Leaf: {
      const auto &L = *cast<LeafTree>(It.T);
      if (L.isHole()) {
        int64_t Lo = It.BaseOrigin + L.offset();
        Out.push_back(
            HoleRecord{L.holeRule(), Lo,
                       Lo + static_cast<int64_t>(L.length())});
      }
      break;
    }
    case ParseTree::Kind::Node: {
      const auto &N = *cast<NodeTree>(It.T);
      size_t Mark = Work.size();
      for (TreeRef C : N.children()) {
        if (const auto *Sub = dyn_cast<NodeTree>(C.get()))
          Work.push_back(Item{Sub, It.BaseOrigin + Sub->shift()});
        else
          Work.push_back(Item{C.get(), It.BaseOrigin});
      }
      std::reverse(Work.begin() + Mark, Work.end());
      break;
    }
    case ParseTree::Kind::Array: {
      const auto &A = *cast<ArrayTree>(It.T);
      size_t Mark = Work.size();
      for (TreeRef C : A.elements()) {
        if (const auto *Elem = dyn_cast<NodeTree>(C.get()))
          Work.push_back(Item{Elem, It.BaseOrigin + Elem->shift()});
        else
          Work.push_back(Item{C.get(), It.BaseOrigin});
      }
      std::reverse(Work.begin() + Mark, Work.end());
      break;
    }
    }
  }
}

size_t ipg::countHoles(const ParseTree &Root) {
  // Cheaper than collectHoles (no origin bookkeeping): hole-ness does not
  // depend on where a shifted view re-anchors the leaf.
  size_t Total = 0;
  std::vector<const ParseTree *> Work{&Root};
  while (!Work.empty()) {
    const ParseTree *Cur = Work.back();
    Work.pop_back();
    switch (Cur->kind()) {
    case ParseTree::Kind::Leaf:
      if (cast<LeafTree>(Cur)->isHole())
        ++Total;
      break;
    case ParseTree::Kind::Node:
      for (TreeRef C : cast<NodeTree>(Cur)->children())
        Work.push_back(C.get());
      break;
    case ParseTree::Kind::Array:
      for (TreeRef C : cast<ArrayTree>(Cur)->elements())
        Work.push_back(C.get());
      break;
    }
  }
  return Total;
}

std::string ipg::treeToString(const ParseTree &T, const StringInterner &Names,
                              int Indent) {
  struct Item {
    const ParseTree *T;
    int Indent;
  };
  std::string S;
  std::vector<Item> Work{Item{&T, Indent}};
  while (!Work.empty()) {
    Item It = Work.back();
    Work.pop_back();
    std::string Pad(static_cast<size_t>(It.Indent) * 2, ' ');
    switch (It.T->kind()) {
    case ParseTree::Kind::Leaf: {
      const auto &L = *cast<LeafTree>(It.T);
      if (L.isHole()) {
        S += Pad + "Leaf@" + std::to_string(L.offset()) + " <hole " +
             std::string(Names.name(L.holeRule())) + " " +
             std::to_string(L.length()) + " bytes>\n";
        break;
      }
      if (L.isOpaque()) {
        S += Pad + "Leaf@" + std::to_string(L.offset()) + " <raw " +
             std::to_string(L.length()) + " bytes>\n";
        break;
      }
      size_t LineStart = S.size();
      S += Pad + "Leaf@" + std::to_string(L.offset()) + " \"";
      size_t Budget = Pad.size() + 48;
      for (unsigned char C : L.bytes()) {
        if (C >= 0x20 && C < 0x7f) {
          S += static_cast<char>(C);
        } else {
          static const char *Hex = "0123456789abcdef";
          S += "\\x";
          S += Hex[C >> 4];
          S += Hex[C & 0xf];
        }
        if (S.size() - LineStart > Budget) {
          S += "...";
          break;
        }
      }
      S += "\"\n";
      break;
    }
    case ParseTree::Kind::Node: {
      const auto &N = *cast<NodeTree>(It.T);
      S += Pad + "Node " + std::string(Names.name(N.name())) + " {";
      bool First = true;
      for (const auto &[Key, Value] : N.env()) {
        if (!First)
          S += ", ";
        First = false;
        S += std::string(Names.name(Key)) + "=" + std::to_string(Value);
      }
      S += "}\n";
      size_t Mark = Work.size();
      for (TreeRef C : N.children())
        Work.push_back(Item{C.get(), It.Indent + 1});
      std::reverse(Work.begin() + Mark, Work.end());
      break;
    }
    case ParseTree::Kind::Array: {
      const auto &A = *cast<ArrayTree>(It.T);
      S += Pad + "Array of " + std::string(Names.name(A.elemName())) + " x" +
           std::to_string(A.size()) + "\n";
      size_t Mark = Work.size();
      for (TreeRef C : A.elements())
        Work.push_back(Item{C.get(), It.Indent + 1});
      std::reverse(Work.begin() + Mark, Work.end());
      break;
    }
    }
  }
  return S;
}
