//===- runtime/ParseTree.cpp ----------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ParseTree.h"

#include "support/Casting.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

using namespace ipg;

ParseTree::~ParseTree() = default;

const NodeTree *NodeTree::childNode(Symbol ChildName) const {
  for (size_t I = Children.size(); I-- > 0;)
    if (const auto *N = dyn_cast<NodeTree>(Children[I].get()))
      if (N->name() == ChildName)
        return N;
  return nullptr;
}

const ArrayTree *NodeTree::childArray(Symbol ElemName) const {
  for (size_t I = Children.size(); I-- > 0;)
    if (const auto *A = dyn_cast<ArrayTree>(Children[I].get()))
      if (A->elemName() == ElemName)
        return A;
  return nullptr;
}

std::shared_ptr<const NodeTree>
NodeTree::withShiftedStartEnd(int64_t Delta, Symbol SymStart,
                              Symbol SymEnd) const {
  Env E2 = E;
  if (auto S = E2.get(SymStart))
    E2.set(SymStart, *S + Delta);
  if (auto En = E2.get(SymEnd))
    E2.set(SymEnd, *En + Delta);
  return std::make_shared<NodeTree>(Name, Rule, std::move(E2), Children,
                                    ChildTermIdx);
}

const NodeTree *ArrayTree::element(size_t I) const {
  if (I >= Elems.size())
    return nullptr;
  return dyn_cast<NodeTree>(Elems[I].get());
}

size_t ipg::treeSize(const ParseTree &T) {
  switch (T.kind()) {
  case ParseTree::Kind::Leaf:
    return 1;
  case ParseTree::Kind::Node: {
    size_t N = 1;
    for (const TreePtr &C : cast<NodeTree>(&T)->children())
      N += treeSize(*C);
    return N;
  }
  case ParseTree::Kind::Array: {
    size_t N = 1;
    for (const TreePtr &C : cast<ArrayTree>(&T)->elements())
      N += treeSize(*C);
    return N;
  }
  }
  return 1;
}

std::string ipg::treeToString(const ParseTree &T, const StringInterner &Names,
                              int Indent) {
  std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
  switch (T.kind()) {
  case ParseTree::Kind::Leaf: {
    const auto &L = *cast<LeafTree>(&T);
    std::string S = Pad + "Leaf@" + std::to_string(L.offset()) + " \"";
    for (unsigned char C : L.bytes()) {
      if (C >= 0x20 && C < 0x7f) {
        S += static_cast<char>(C);
      } else {
        static const char *Hex = "0123456789abcdef";
        S += "\\x";
        S += Hex[C >> 4];
        S += Hex[C & 0xf];
      }
      if (S.size() > Pad.size() + 48) {
        S += "...";
        break;
      }
    }
    return S + "\"\n";
  }
  case ParseTree::Kind::Node: {
    const auto &N = *cast<NodeTree>(&T);
    std::string S = Pad + "Node " + std::string(Names.name(N.name())) + " {";
    bool First = true;
    for (const auto &[Key, Value] : N.env()) {
      if (!First)
        S += ", ";
      First = false;
      S += std::string(Names.name(Key)) + "=" + std::to_string(Value);
    }
    S += "}\n";
    for (const TreePtr &C : N.children())
      S += treeToString(*C, Names, Indent + 1);
    return S;
  }
  case ParseTree::Kind::Array: {
    const auto &A = *cast<ArrayTree>(&T);
    std::string S = Pad + "Array of " +
                    std::string(Names.name(A.elemName())) + " x" +
                    std::to_string(A.size()) + "\n";
    for (const TreePtr &C : A.elements())
      S += treeToString(*C, Names, Indent + 1);
    return S;
  }
  }
  return Pad + "?\n";
}
