//===- runtime/ParseTree.cpp ----------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ParseTree.h"

#include "support/Casting.h"

#include <cstddef>
#include <cstdint>
#include <string>

using namespace ipg;

const NodeTree *NodeTree::childNode(Symbol ChildName) const {
  for (size_t I = NumChildren; I-- > 0;)
    if (const auto *N = dyn_cast<NodeTree>(Owner->node(ChildIds[I])))
      if (N->name() == ChildName)
        return N;
  return nullptr;
}

const ArrayTree *NodeTree::childArray(Symbol ElemName) const {
  for (size_t I = NumChildren; I-- > 0;)
    if (const auto *A = dyn_cast<ArrayTree>(Owner->node(ChildIds[I])))
      if (A->elemName() == ElemName)
        return A;
  return nullptr;
}

const NodeTree *ArrayTree::element(size_t I) const {
  if (I >= NumElems)
    return nullptr;
  return dyn_cast<NodeTree>(Owner->node(ElemIds[I]));
}

uint32_t TreeStore::makeShifted(const NodeTree &N, int64_t Delta,
                                Symbol SymStart, Symbol SymEnd) {
  EnvView E = N.env();
  auto NumSlots = static_cast<uint32_t>(E.size());
  EnvSlot *Shifted = Mem.makeArray<EnvSlot>(NumSlots);
  uint32_t I = 0;
  for (EnvSlot S : E) {
    if (S.Key == SymStart || S.Key == SymEnd)
      S.Value += Delta;
    Shifted[I++] = S;
  }
  // Child arrays are shared with the original node: both live in this
  // arena, so the shallow copy costs one NodeTree plus the shifted env.
  return addNode(Mem.make<NodeTree>(this, N.Name, N.Rule, Shifted, NumSlots,
                                    N.ChildIds, N.ChildTermIdx,
                                    N.NumChildren));
}

size_t ipg::treeSize(const ParseTree &T) {
  switch (T.kind()) {
  case ParseTree::Kind::Leaf:
    return 1;
  case ParseTree::Kind::Node: {
    size_t N = 1;
    for (TreeRef C : cast<NodeTree>(&T)->children())
      N += treeSize(*C);
    return N;
  }
  case ParseTree::Kind::Array: {
    size_t N = 1;
    for (TreeRef C : cast<ArrayTree>(&T)->elements())
      N += treeSize(*C);
    return N;
  }
  }
  return 1;
}

std::string ipg::treeToString(const ParseTree &T, const StringInterner &Names,
                              int Indent) {
  std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
  switch (T.kind()) {
  case ParseTree::Kind::Leaf: {
    const auto &L = *cast<LeafTree>(&T);
    if (L.isOpaque())
      return Pad + "Leaf@" + std::to_string(L.offset()) + " <raw " +
             std::to_string(L.length()) + " bytes>\n";
    std::string S = Pad + "Leaf@" + std::to_string(L.offset()) + " \"";
    for (unsigned char C : L.bytes()) {
      if (C >= 0x20 && C < 0x7f) {
        S += static_cast<char>(C);
      } else {
        static const char *Hex = "0123456789abcdef";
        S += "\\x";
        S += Hex[C >> 4];
        S += Hex[C & 0xf];
      }
      if (S.size() > Pad.size() + 48) {
        S += "...";
        break;
      }
    }
    return S + "\"\n";
  }
  case ParseTree::Kind::Node: {
    const auto &N = *cast<NodeTree>(&T);
    std::string S = Pad + "Node " + std::string(Names.name(N.name())) + " {";
    bool First = true;
    for (const auto &[Key, Value] : N.env()) {
      if (!First)
        S += ", ";
      First = false;
      S += std::string(Names.name(Key)) + "=" + std::to_string(Value);
    }
    S += "}\n";
    for (TreeRef C : N.children())
      S += treeToString(*C, Names, Indent + 1);
    return S;
  }
  case ParseTree::Kind::Array: {
    const auto &A = *cast<ArrayTree>(&T);
    std::string S = Pad + "Array of " +
                    std::string(Names.name(A.elemName())) + " x" +
                    std::to_string(A.size()) + "\n";
    for (TreeRef C : A.elements())
      S += treeToString(*C, Names, Indent + 1);
    return S;
  }
  }
  return Pad + "?\n";
}
