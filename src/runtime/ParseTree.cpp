//===- runtime/ParseTree.cpp ----------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ParseTree.h"

#include "support/Casting.h"

#include <cstddef>
#include <cstdint>
#include <string>

using namespace ipg;

const NodeTree *NodeTree::childNode(Symbol ChildName) const {
  for (size_t I = NumChildren; I-- > 0;)
    if (const auto *N = dyn_cast<NodeTree>(Owner->node(ChildIds[I])))
      if (N->name() == ChildName)
        return N;
  return nullptr;
}

const ArrayTree *NodeTree::childArray(Symbol ElemName) const {
  for (size_t I = NumChildren; I-- > 0;)
    if (const auto *A = dyn_cast<ArrayTree>(Owner->node(ChildIds[I])))
      if (A->elemName() == ElemName)
        return A;
  return nullptr;
}

const NodeTree *ArrayTree::element(size_t I) const {
  if (I >= NumElems)
    return nullptr;
  return dyn_cast<NodeTree>(Owner->node(ElemIds[I]));
}

uint32_t TreeStore::makeShifted(uint32_t BaseId, int64_t Delta,
                                Symbol SymStart, Symbol SymEnd) {
  // A zero delta needs no view: the base node is its own view (the
  // common first-child-at-offset-0 edge costs nothing, matching the
  // generated runtime's Ctx::shifted).
  if (Delta == 0)
    return BaseId;
  // Record which symbols shifted views resolve against; they are fixed
  // per grammar, so every call agrees.
  ShiftStartSym = SymStart;
  ShiftEndSym = SymEnd;
  // The view shares the base node's frozen env and child arrays — nothing
  // is copied. Deltas compose, so a view over a view stays correct; the
  // resolution happens in EnvView (env()/attr() reads and iteration).
  const auto &N = *cast<NodeTree>(node(BaseId));
  NodeTree View(N);
  View.Shift = N.Shift + Delta;
  return addNode(Mem.make<NodeTree>(View));
}

size_t ipg::treeSize(const ParseTree &T) {
  switch (T.kind()) {
  case ParseTree::Kind::Leaf:
    return 1;
  case ParseTree::Kind::Node: {
    size_t N = 1;
    for (TreeRef C : cast<NodeTree>(&T)->children())
      N += treeSize(*C);
    return N;
  }
  case ParseTree::Kind::Array: {
    size_t N = 1;
    for (TreeRef C : cast<ArrayTree>(&T)->elements())
      N += treeSize(*C);
    return N;
  }
  }
  return 1;
}

std::string ipg::treeToString(const ParseTree &T, const StringInterner &Names,
                              int Indent) {
  std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
  switch (T.kind()) {
  case ParseTree::Kind::Leaf: {
    const auto &L = *cast<LeafTree>(&T);
    if (L.isOpaque())
      return Pad + "Leaf@" + std::to_string(L.offset()) + " <raw " +
             std::to_string(L.length()) + " bytes>\n";
    std::string S = Pad + "Leaf@" + std::to_string(L.offset()) + " \"";
    for (unsigned char C : L.bytes()) {
      if (C >= 0x20 && C < 0x7f) {
        S += static_cast<char>(C);
      } else {
        static const char *Hex = "0123456789abcdef";
        S += "\\x";
        S += Hex[C >> 4];
        S += Hex[C & 0xf];
      }
      if (S.size() > Pad.size() + 48) {
        S += "...";
        break;
      }
    }
    return S + "\"\n";
  }
  case ParseTree::Kind::Node: {
    const auto &N = *cast<NodeTree>(&T);
    std::string S = Pad + "Node " + std::string(Names.name(N.name())) + " {";
    bool First = true;
    for (const auto &[Key, Value] : N.env()) {
      if (!First)
        S += ", ";
      First = false;
      S += std::string(Names.name(Key)) + "=" + std::to_string(Value);
    }
    S += "}\n";
    for (TreeRef C : N.children())
      S += treeToString(*C, Names, Indent + 1);
    return S;
  }
  case ParseTree::Kind::Array: {
    const auto &A = *cast<ArrayTree>(&T);
    std::string S = Pad + "Array of " +
                    std::string(Names.name(A.elemName())) + " x" +
                    std::to_string(A.size()) + "\n";
    for (TreeRef C : A.elements())
      S += treeToString(*C, Names, Indent + 1);
    return S;
  }
  }
  return Pad + "?\n";
}
