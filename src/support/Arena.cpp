//===- support/Arena.cpp --------------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

using namespace ipg;

void *Arena::allocate(size_t Bytes, size_t Align) {
  TotalAllocated += Bytes;
  for (;;) {
    if (Current < Blocks.size()) {
      Block &B = Blocks[Current];
      // Align the actual address, not the block offset: operator new[]
      // only guarantees 16-byte alignment, so over-aligned requests need
      // the base pointer folded in.
      auto Base = reinterpret_cast<uintptr_t>(B.Memory.get());
      size_t Aligned =
          static_cast<size_t>(((Base + B.Used + Align - 1) & ~(Align - 1)) -
                              Base);
      if (Aligned + Bytes <= B.Size) {
        B.Used = Aligned + Bytes;
        return B.Memory.get() + Aligned;
      }
      ++Current;
      continue;
    }
    size_t Size = NextBlockSize;
    while (Size < Bytes + Align)
      Size *= 2;
    NextBlockSize = Size * 2;
    Block B;
    B.Memory = std::make_unique<uint8_t[]>(Size);
    B.Size = Size;
    Blocks.push_back(std::move(B));
  }
}

void Arena::reset() {
  for (Block &B : Blocks)
    B.Used = 0;
  Current = 0;
  TotalAllocated = 0;
}
