//===- support/Bytes.h - Byte spans and builders ----------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ByteSpan is the "local input" of the IPG semantics: a non-owning window
/// over a base buffer. Every subparser receives a slice of its parent's
/// span (rule T-NTSucc parses s[l, r)); the span also remembers its
/// absolute offset within the root input so memoization can key on
/// (nonterminal, absolute lo, absolute hi).
///
/// ByteWriter is the little builder the synthetic file generators use.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_BYTES_H
#define IPG_SUPPORT_BYTES_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ipg {

enum class Endian { Little, Big };

/// A non-owning [0, size) window over a byte buffer. Offsets passed to the
/// accessors are relative to the window; absBase() recovers the absolute
/// offset of window position 0 within the root input.
class ByteSpan {
public:
  ByteSpan() : Data(nullptr), Length(0), AbsBase(0) {}
  ByteSpan(const uint8_t *Data, size_t Length, size_t AbsBase = 0)
      : Data(Data), Length(Length), AbsBase(AbsBase) {}

  /// Views an entire owning buffer (absolute base 0).
  static ByteSpan of(const std::vector<uint8_t> &Buffer) {
    return ByteSpan(Buffer.data(), Buffer.size(), 0);
  }
  static ByteSpan of(std::string_view Buffer) {
    return ByteSpan(reinterpret_cast<const uint8_t *>(Buffer.data()),
                    Buffer.size(), 0);
  }

  size_t size() const { return Length; }
  bool empty() const { return Length == 0; }
  const uint8_t *data() const { return Data; }
  size_t absBase() const { return AbsBase; }

  uint8_t operator[](size_t I) const {
    assert(I < Length && "ByteSpan index out of range");
    return Data[I];
  }

  /// The sub-window [Lo, Hi); this is how intervals confine subparsers.
  ByteSpan slice(size_t Lo, size_t Hi) const {
    assert(Lo <= Hi && Hi <= Length && "invalid slice bounds");
    return ByteSpan(Data + Lo, Hi - Lo, AbsBase + Lo);
  }

  /// True when the bytes at [Off, Off + Str.size()) equal \p Str.
  bool matchesAt(size_t Off, std::string_view Str) const;

  /// Reads an \p NumBytes-byte unsigned integer at \p Off. \p NumBytes must
  /// be in [1, 8] and the read must be in bounds (asserted).
  uint64_t readUnsigned(size_t Off, size_t NumBytes, Endian E) const;

  /// Copies the window into an owned string (for diagnostics / leaves).
  std::string toString() const {
    return std::string(reinterpret_cast<const char *>(Data), Length);
  }

private:
  const uint8_t *Data;
  size_t Length;
  size_t AbsBase;
};

/// An append-only byte builder with patch-back support, used by the format
/// synthesizers (e.g. write a header, then patch the table offset in later).
class ByteWriter {
public:
  size_t size() const { return Buffer.size(); }
  const std::vector<uint8_t> &bytes() const { return Buffer; }
  std::vector<uint8_t> take() { return std::move(Buffer); }

  void u8(uint8_t V) { Buffer.push_back(V); }
  void unsignedInt(uint64_t V, size_t NumBytes, Endian E);
  void u16le(uint64_t V) { unsignedInt(V, 2, Endian::Little); }
  void u32le(uint64_t V) { unsignedInt(V, 4, Endian::Little); }
  void u64le(uint64_t V) { unsignedInt(V, 8, Endian::Little); }
  void u16be(uint64_t V) { unsignedInt(V, 2, Endian::Big); }
  void u32be(uint64_t V) { unsignedInt(V, 4, Endian::Big); }
// GCC 12 at -O2 reports a spurious -Wstringop-overflow ("writing 1 or more
// bytes into a region of size 0") from vector reallocation inlined into
// some raw() callers; the insert is bounds-correct by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif
  void raw(std::string_view Str) {
    const auto *P = reinterpret_cast<const uint8_t *>(Str.data());
    Buffer.insert(Buffer.end(), P, P + Str.size());
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
  void raw(const std::vector<uint8_t> &Bytes) {
    Buffer.insert(Buffer.end(), Bytes.begin(), Bytes.end());
  }
  void fill(uint8_t V, size_t Count) { Buffer.insert(Buffer.end(), Count, V); }

  /// Overwrites \p NumBytes at \p Off with \p V (for deferred offsets).
  void patchUnsigned(size_t Off, uint64_t V, size_t NumBytes, Endian E);

private:
  std::vector<uint8_t> Buffer;
};

} // namespace ipg

#endif // IPG_SUPPORT_BYTES_H
