//===- support/FlatHash.h - Open-addressing interval maps -------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memoization table behind the interpreter (Section 3.3 keys results
/// on (nonterminal, interval)). The general-purpose std::unordered_map this
/// replaced allocated one heap node per entry and hashed a three-field
/// struct; here the key is packed into a single 128-bit value —
///
///   A = rule-id (32 bits)  |  interval-lo bits 47..16
///   B = interval-lo bits 15..0  |  interval-hi (48 bits)
///
/// — and entries live in one flat power-of-two slot array with linear
/// probing. Offsets are absolute byte positions in the root input, so
/// 48 bits allow 256 TiB inputs; rule id ~0u (InvalidRuleId) is reserved
/// to encode the empty and tombstone slot states and is asserted against.
///
/// erase() leaves a tombstone so later probes keep walking; tombstones are
/// reclaimed on rehash. clear() keeps capacity, which is what lets a reused
/// interpreter reach an allocation-free steady state.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_FLATHASH_H
#define IPG_SUPPORT_FLATHASH_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ipg {

/// A (rule, interval) key packed into 128 bits. Equality is exact; the
/// packing is injective for lo/hi < 2^48 and rule < 2^32 - 1.
struct IntervalKey {
  uint64_t A = 0;
  uint64_t B = 0;

  static IntervalKey pack(uint32_t Rule, uint64_t Lo, uint64_t Hi) {
    assert(Rule != ~0u && "rule id ~0 is reserved for slot sentinels");
    assert(Lo < (1ull << 48) && Hi < (1ull << 48) &&
           "interval offsets limited to 48 bits");
    IntervalKey K;
    K.A = (static_cast<uint64_t>(Rule) << 32) | (Lo >> 16);
    K.B = (Lo << 48) | Hi;
    return K;
  }

  bool operator==(const IntervalKey &O) const {
    return A == O.A && B == O.B;
  }
};

/// Open-addressing hash map from IntervalKey to a small trivially copyable
/// value (the interpreter stores node pointers and in-progress marks).
/// Linear probing, max load factor 3/4 counting tombstones, geometric
/// growth from a 64-slot floor.
template <typename V> class FlatIntervalMap {
  // Slot states are encoded in the key's A word: valid keys never carry
  // rule id ~0u, so A values with all upper 32 bits set are free for
  // sentinels and B disambiguates empty from tombstone.
  static constexpr uint64_t SentinelA = ~0ull;
  static constexpr uint64_t EmptyB = 0;
  static constexpr uint64_t TombB = 1;

  // Each slot carries the epoch it was last written in; slots from older
  // epochs read as empty, which is what makes clear() O(1): it bumps the
  // epoch instead of sweeping a table that one large parse may have grown
  // far beyond what small parses need.
  struct Slot {
    uint64_t A = SentinelA;
    uint64_t B = EmptyB;
    V Value{};
    uint32_t Epoch = 0;
  };

public:
  FlatIntervalMap() = default;

  /// Looks up \p K; returns null when absent.
  V *find(const IntervalKey &K) {
    if (Slots.empty())
      return nullptr;
    size_t Mask = Slots.size() - 1;
    for (size_t I = hashOf(K) & Mask;; I = (I + 1) & Mask) {
      Slot &S = Slots[I];
      if (S.Epoch != Epoch)
        return nullptr; // stale epoch reads as empty
      if (S.A == SentinelA) {
        if (S.B == EmptyB)
          return nullptr;
        continue; // tombstone: keep probing
      }
      if (S.A == K.A && S.B == K.B)
        return &S.Value;
    }
  }
  const V *find(const IntervalKey &K) const {
    return const_cast<FlatIntervalMap *>(this)->find(K);
  }

  /// Inserts \p K -> \p Value; returns false (leaving the existing value
  /// untouched) when the key was already present.
  bool insert(const IntervalKey &K, const V &Value) {
    if ((Used + 1) * 4 > capacity() * 3) {
      // Grow only when live entries justify it; when the load breach is
      // mostly tombstones (the insert/erase-heavy in-progress set never
      // holds more than recursion-depth live keys), rehash in place to
      // purge them instead of doubling forever.
      size_t NewCap = capacity() ? capacity() : 64;
      if (Size * 2 >= Used)
        NewCap = capacity() ? capacity() * 2 : 64;
      rehash(NewCap);
    }
    size_t Mask = Slots.size() - 1;
    size_t Tomb = ~size_t(0);
    for (size_t I = hashOf(K) & Mask;; I = (I + 1) & Mask) {
      Slot &S = Slots[I];
      bool Fresh = S.Epoch == Epoch;
      if (Fresh && S.A != SentinelA) {
        if (S.A == K.A && S.B == K.B)
          return false;
        continue;
      }
      if (Fresh && S.B == TombB) {
        if (Tomb == ~size_t(0))
          Tomb = I;
        continue;
      }
      // Empty (stale epoch or never written): claim the first tombstone
      // on the probe path if any, so long-lived tables don't accumulate
      // displacement.
      Slot &Dst = Slots[Tomb != ~size_t(0) ? Tomb : I];
      bool Reclaimed = Tomb != ~size_t(0);
      Dst.A = K.A;
      Dst.B = K.B;
      Dst.Value = Value;
      Dst.Epoch = Epoch;
      ++Size;
      if (!Reclaimed)
        ++Used; // reusing a tombstone doesn't raise the load
      return true;
    }
  }

  /// Removes \p K (leaving a tombstone); returns whether it was present.
  bool erase(const IntervalKey &K) {
    if (Slots.empty())
      return false;
    size_t Mask = Slots.size() - 1;
    for (size_t I = hashOf(K) & Mask;; I = (I + 1) & Mask) {
      Slot &S = Slots[I];
      if (S.Epoch != Epoch)
        return false; // stale epoch reads as empty
      if (S.A == SentinelA) {
        if (S.B == EmptyB)
          return false;
        continue;
      }
      if (S.A == K.A && S.B == K.B) {
        S.A = SentinelA;
        S.B = TombB;
        S.Value = V{};
        --Size;
        return true;
      }
    }
  }

  /// Drops all entries and tombstones but keeps the slot array. O(1):
  /// bumping the epoch invalidates every slot, so a long-lived table
  /// sized by one large parse costs nothing to clear before small ones.
  void clear() {
    Size = 0;
    Used = 0;
    ++Epoch;
    if (Epoch == 0) {
      // Epoch wrap (once per 2^32 clears): ancient slots could alias the
      // restarted counter, so pay one full sweep.
      for (Slot &S : Slots)
        S = Slot();
      Epoch = 1;
    }
  }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }
  size_t capacity() const { return Slots.size(); }
  /// Occupied + tombstoned slots (what load-factor growth is gated on).
  size_t usedSlots() const { return Used; }

private:
  static size_t hashOf(const IntervalKey &K) {
    // splitmix64-style finalization over both words.
    uint64_t H = K.A * 0x9e3779b97f4a7c15ull;
    H ^= K.B + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
    H ^= H >> 30;
    H *= 0xbf58476d1ce4e5b9ull;
    H ^= H >> 27;
    H *= 0x94d049bb133111ebull;
    H ^= H >> 31;
    return static_cast<size_t>(H);
  }

  void rehash(size_t NewCap) {
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(NewCap, Slot());
    Size = 0;
    Used = 0;
    size_t Mask = NewCap - 1;
    for (const Slot &S : Old) {
      if (S.Epoch != Epoch || S.A == SentinelA)
        continue;
      for (size_t I = hashOf({S.A, S.B}) & Mask;; I = (I + 1) & Mask) {
        if (Slots[I].Epoch != Epoch) {
          Slots[I] = S;
          ++Size;
          ++Used;
          break;
        }
      }
    }
  }

  std::vector<Slot> Slots;
  size_t Size = 0;     ///< live entries
  size_t Used = 0;     ///< live entries + tombstones this epoch
  uint32_t Epoch = 1;  ///< current generation; 0 marks never-written slots
};

} // namespace ipg

#endif // IPG_SUPPORT_FLATHASH_H
