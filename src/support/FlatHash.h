//===- support/FlatHash.h - Open-addressing interval maps -------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memoization table behind the interpreter (Section 3.3 keys results
/// on (nonterminal, interval)): a 128-bit packed key over one flat
/// power-of-two slot array with linear probing, tombstoned erase, and an
/// O(1) generational clear that keeps capacity — what lets a reused
/// interpreter reach an allocation-free steady state.
///
/// The implementation lives in support/GenRuntime.h (namespace ipg_rt) so
/// generated parsers embed the *same* table and memoize with the same
/// policy, key packing, and probing as the engine; this header only
/// re-exports it under the ipg names the interpreter and tests use.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_FLATHASH_H
#define IPG_SUPPORT_FLATHASH_H

#include "support/GenRuntime.h"

namespace ipg {

/// A (rule, interval) key packed into 128 bits; see ipg_rt::IntervalKey.
using IntervalKey = ipg_rt::IntervalKey;

/// Open-addressing hash map from IntervalKey to a small trivially
/// copyable value; see ipg_rt::FlatIntervalMap.
template <typename V> using FlatIntervalMap = ipg_rt::FlatIntervalMap<V>;

} // namespace ipg

#endif // IPG_SUPPORT_FLATHASH_H
