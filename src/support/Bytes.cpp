//===- support/Bytes.cpp --------------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Bytes.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

using namespace ipg;

bool ByteSpan::matchesAt(size_t Off, std::string_view Str) const {
  if (Off > Length || Str.size() > Length - Off)
    return false;
  return std::memcmp(Data + Off, Str.data(), Str.size()) == 0;
}

uint64_t ByteSpan::readUnsigned(size_t Off, size_t NumBytes, Endian E) const {
  assert(NumBytes >= 1 && NumBytes <= 8 && "unsupported integer width");
  assert(Off <= Length && NumBytes <= Length - Off && "read out of range");
  uint64_t V = 0;
  if (E == Endian::Little) {
    for (size_t I = NumBytes; I-- > 0;)
      V = (V << 8) | Data[Off + I];
  } else {
    for (size_t I = 0; I < NumBytes; ++I)
      V = (V << 8) | Data[Off + I];
  }
  return V;
}

void ByteWriter::unsignedInt(uint64_t V, size_t NumBytes, Endian E) {
  assert(NumBytes >= 1 && NumBytes <= 8 && "unsupported integer width");
  if (E == Endian::Little) {
    for (size_t I = 0; I < NumBytes; ++I)
      Buffer.push_back(static_cast<uint8_t>(V >> (8 * I)));
  } else {
    for (size_t I = NumBytes; I-- > 0;)
      Buffer.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
}

void ByteWriter::patchUnsigned(size_t Off, uint64_t V, size_t NumBytes,
                               Endian E) {
  assert(Off + NumBytes <= Buffer.size() && "patch out of range");
  for (size_t I = 0; I < NumBytes; ++I) {
    size_t Shift = E == Endian::Little ? I : NumBytes - 1 - I;
    Buffer[Off + I] = static_cast<uint8_t>(V >> (8 * Shift));
  }
}
