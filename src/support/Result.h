//===- support/Result.h - Error and Expected<T> -----------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recoverable-error plumbing in the spirit of llvm::Error / llvm::Expected,
/// without exceptions. The library never aborts on malformed grammars or
/// malformed input files; every fallible entry point returns Error or
/// Expected<T> carrying a diagnostic message.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_RESULT_H
#define IPG_SUPPORT_RESULT_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ipg {

/// A success-or-diagnostic value. Unlike llvm::Error this does not enforce
/// the checked-before-destruction discipline; it is a plain value type.
class Error {
public:
  /// Creates a success value.
  static Error success() { return Error(); }

  /// Creates a failure carrying \p Msg (error-message style: lowercase
  /// first letter, no trailing period).
  static Error failure(std::string Msg) {
    Error E;
    E.Msg = std::move(Msg);
    return E;
  }

  /// True when this is a failure.
  explicit operator bool() const { return Msg.has_value(); }

  /// The diagnostic; only valid on failure.
  const std::string &message() const {
    assert(Msg && "message() on a success value");
    return *Msg;
  }

private:
  std::optional<std::string> Msg;
};

/// A value of type T or a diagnostic message. Mirrors llvm::Expected's
/// conventions: boolean conversion is true on success, takeError() /
/// message() gives the failure.
template <typename T> class Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {}
  Expected(Error E) {
    assert(E && "constructing Expected<T> from a success Error");
    Msg = E.message();
  }

  /// Failure constructor from a raw message.
  static Expected<T> failure(std::string Msg) {
    return Expected<T>(Error::failure(std::move(Msg)));
  }

  explicit operator bool() const { return Value.has_value(); }

  T &operator*() {
    assert(Value && "dereferencing a failed Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "dereferencing a failed Expected");
    return *Value;
  }
  T *operator->() {
    assert(Value && "dereferencing a failed Expected");
    return &*Value;
  }
  const T *operator->() const {
    assert(Value && "dereferencing a failed Expected");
    return &*Value;
  }

  const std::string &message() const {
    assert(Msg && "message() on a success value");
    return *Msg;
  }

  Error takeError() const {
    return Value ? Error::success() : Error::failure(*Msg);
  }

private:
  Expected() = default;
  std::optional<T> Value;
  std::optional<std::string> Msg;
};

} // namespace ipg

#endif // IPG_SUPPORT_RESULT_H
