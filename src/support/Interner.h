//===- support/Interner.h - String interning --------------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Nonterminal and attribute names are interned to small integer Symbols so
/// environments and memo tables can use flat arrays and integer compares.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_INTERNER_H
#define IPG_SUPPORT_INTERNER_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ipg {

/// An interned identifier. Symbol 0 is reserved as the invalid symbol.
using Symbol = uint32_t;
inline constexpr Symbol InvalidSymbol = 0;

/// Bidirectional name <-> Symbol table. Owned by a Grammar; all Symbols in
/// one grammar refer to its interner.
class StringInterner {
public:
  StringInterner() { Names.emplace_back("<invalid>"); }

  /// Returns the Symbol for \p Name, creating it on first use.
  Symbol intern(std::string_view Name);

  /// Returns the Symbol for \p Name, or InvalidSymbol if never interned.
  Symbol lookup(std::string_view Name) const;

  /// The spelling of \p S. \p S must be a symbol from this interner.
  std::string_view name(Symbol S) const { return Names.at(S); }

  /// Number of interned symbols, including the reserved invalid slot.
  size_t size() const { return Names.size(); }

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, Symbol> Ids;
};

} // namespace ipg

#endif // IPG_SUPPORT_INTERNER_H
