//===- support/Rational.h - Exact rational arithmetic -----------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rationals over int64 numerator/denominator, used by the
/// Fourier-Motzkin satisfiability core that stands in for Z3 in the
/// termination checker (paper Section 5). Values in termination formulas are
/// tiny (interval endpoints, small multipliers), so int64 components with
/// overflow assertions are sufficient.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_RATIONAL_H
#define IPG_SUPPORT_RATIONAL_H

#include <cstdint>
#include <string>

namespace ipg {

/// A normalized rational: denominator > 0, gcd(|num|, den) == 1.
class Rational {
public:
  Rational() : Num(0), Den(1) {}
  Rational(int64_t Value) : Num(Value), Den(1) {}
  Rational(int64_t Num, int64_t Den);

  int64_t num() const { return Num; }
  int64_t den() const { return Den; }

  bool isZero() const { return Num == 0; }
  bool isNegative() const { return Num < 0; }
  bool isPositive() const { return Num > 0; }

  Rational operator+(const Rational &O) const;
  Rational operator-(const Rational &O) const;
  Rational operator*(const Rational &O) const;
  Rational operator/(const Rational &O) const;
  Rational operator-() const { return Rational(-Num, Den); }

  bool operator==(const Rational &O) const {
    return Num == O.Num && Den == O.Den;
  }
  bool operator!=(const Rational &O) const { return !(*this == O); }
  bool operator<(const Rational &O) const;
  bool operator<=(const Rational &O) const { return *this < O || *this == O; }
  bool operator>(const Rational &O) const { return O < *this; }
  bool operator>=(const Rational &O) const { return O <= *this; }

  std::string str() const;

private:
  int64_t Num;
  int64_t Den;
};

} // namespace ipg

#endif // IPG_SUPPORT_RATIONAL_H
