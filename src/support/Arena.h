//===- support/Arena.h - Bump allocator -------------------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bump allocator behind the runtime's parse trees and the Nail-style
/// baseline parsers. Nail's generated parsers use arena-based memory
/// management "to avoid performance impact from calling malloc" (Section 7);
/// Figure 13e/f note that IPG matched it only after adopting the same
/// mechanism, which is why the interpreter allocates every tree node,
/// child-index array, and frozen attribute environment from here instead of
/// the heap.
///
/// Allocation bumps a cursor through geometrically growing blocks; reset()
/// drops every allocation at once but keeps the blocks, so a reused arena
/// reaches an allocation-free steady state. Individual objects are never
/// destroyed — only trivially destructible types may live here — and
/// pointers returned by allocate() stay valid across later growth (new
/// blocks are added; existing blocks never move).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_ARENA_H
#define IPG_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace ipg {

class Arena {
public:
  explicit Arena(size_t FirstBlock = 4096) : NextBlockSize(FirstBlock) {}

  void *allocate(size_t Bytes, size_t Align = alignof(std::max_align_t));

  template <typename T, typename... Args> T *make(Args &&...As) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    return new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(As)...);
  }

  /// Allocates an uninitialized array of N T's.
  template <typename T> T *makeArray(size_t N) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    return static_cast<T *>(allocate(sizeof(T) * N, alignof(T)));
  }

  /// Copies \p N elements of \p Src into the arena (nullptr when N == 0).
  template <typename T> const T *copyArray(const T *Src, size_t N) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "copyArray memcpys its elements");
    if (N == 0)
      return nullptr;
    T *Dst = makeArray<T>(N);
    std::memcpy(Dst, Src, sizeof(T) * N);
    return Dst;
  }

  /// Copies a raw byte range into the arena (nullptr when N == 0).
  const uint8_t *copyBytes(const void *Src, size_t N) {
    return copyArray(static_cast<const uint8_t *>(Src), N);
  }

  /// Drops every allocation but keeps the blocks for reuse.
  void reset();

  /// Bytes handed out since construction or the last reset().
  size_t bytesAllocated() const { return TotalAllocated; }

  /// Bytes of block capacity currently held (survives reset()).
  size_t bytesReserved() const {
    size_t N = 0;
    for (const Block &B : Blocks)
      N += B.Size;
    return N;
  }

private:
  struct Block {
    std::unique_ptr<uint8_t[]> Memory;
    size_t Size = 0;
    size_t Used = 0;
  };
  std::vector<Block> Blocks;
  size_t Current = 0;
  size_t NextBlockSize;
  size_t TotalAllocated = 0;
};

} // namespace ipg

#endif // IPG_SUPPORT_ARENA_H
