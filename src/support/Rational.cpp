//===- support/Rational.cpp -----------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <string>

using namespace ipg;

Rational::Rational(int64_t N, int64_t D) {
  assert(D != 0 && "rational with zero denominator");
  if (D < 0) {
    N = -N;
    D = -D;
  }
  int64_t G = std::gcd(N < 0 ? -N : N, D);
  if (G == 0)
    G = 1;
  Num = N / G;
  Den = D / G;
}

Rational Rational::operator+(const Rational &O) const {
  return Rational(Num * O.Den + O.Num * Den, Den * O.Den);
}

Rational Rational::operator-(const Rational &O) const {
  return Rational(Num * O.Den - O.Num * Den, Den * O.Den);
}

Rational Rational::operator*(const Rational &O) const {
  return Rational(Num * O.Num, Den * O.Den);
}

Rational Rational::operator/(const Rational &O) const {
  assert(!O.isZero() && "rational division by zero");
  return Rational(Num * O.Den, Den * O.Num);
}

bool Rational::operator<(const Rational &O) const {
  return Num * O.Den < O.Num * Den;
}

std::string Rational::str() const {
  if (Den == 1)
    return std::to_string(Num);
  return std::to_string(Num) + "/" + std::to_string(Den);
}
