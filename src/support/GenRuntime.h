//===- support/GenRuntime.h - Shared parse-time semantics ------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for the parse-time semantics shared by the
/// interpreter (runtime/Interp.cpp, expr/Eval.cpp) and by every parser the
/// code generator emits. This file is BOTH compiled into ipg_core AND
/// embedded verbatim into each generated parser (CMake wraps it into
/// GenRuntimeEmbed.inc, which codegen/CppEmitter.cpp pastes ahead of the
/// emitted rule functions), so the two execution modes cannot drift: a
/// semantic change here changes both at once.
///
/// Because of that dual life the file must stay self-contained: C++17,
/// direct std includes only, no other project headers. Everything lives in
/// namespace ipg_rt (not ipg) so generated parsers stay dependency-free.
///
/// Contents:
///
/// 1. Shared scalar semantics of Figure 8 — the first-update `updStartEnd`
///    (start/end appear in an environment only once a term actually touches
///    bytes; the first touch seeds them, later touches min/max them — there
///    is NO pre-seeded `start = EOI` / `end = 0` sentinel, so reading
///    `X.start` of a byte-untouched node fails with partiality), the
///    T-NTSucc child-span defaults (`value_or(sub-EOI)` / `value_or(0)`),
///    the interval guard, the read guards, and the checked arithmetic
///    (div/mod/shift) of the expression language.
///
/// 2. The embedded runtime of generated parsers: a bump-arena node store
///    with index-based children, flat attribute environments keyed by
///    emitter-assigned ids, zero-copy leaves aliasing the input, and
///    per-depth frame pools — the same design the interpreter's TreeStore
///    uses (runtime/ParseTree.h), recycled across parses so steady-state
///    parsing performs no heap allocation.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_GENRUNTIME_H
#define IPG_SUPPORT_GENRUNTIME_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace ipg_rt {

//===----------------------------------------------------------------------===//
// Shared scalar semantics (used by the interpreter AND generated parsers).
//===----------------------------------------------------------------------===//

/// Recursion guard shared with InterpOptions::MaxDepth's default. Like
/// the interpreter's, the limit is a HARD error (Ctx::hardFail): it
/// aborts the whole parse rather than soft-failing into sibling
/// alternatives, so a fallback alternative cannot mask runaway
/// recursion in one execution mode but not the other.
inline constexpr int MaxDepth = 8192;

/// Attribute ids of the special start/end attributes in generated
/// environments. The emitter guarantees its name table begins with
/// "start", "end" in exactly this order.
enum : unsigned { IdStart = 0, IdEnd = 1 };

/// The interval guard of every positional term: [Lo, Hi) must be a
/// sub-window of the local input [0, Eoi).
inline bool intervalOk(long long Lo, long long Hi, long long Eoi) {
  return 0 <= Lo && Lo <= Hi && Hi <= Eoi;
}

/// updStartEnd of Figure 8, first-update form: if \p Touched, seed
/// start/end on their first update and min/max afterwards. \p EnvT needs
/// `bool getAttr(KeyT, long long &)` over its own bindings and
/// `void setAttr(KeyT, long long)`. Encoding the first update via
/// "absent -> take Lo/Hi directly" (rather than defaulting S = 0) is what
/// makes the min-clamps-to-0 trap structurally impossible for structures
/// that do not begin at offset 0.
template <class EnvT, class KeyT>
inline void updStartEnd(EnvT &E, KeyT StartKey, KeyT EndKey, long long Lo,
                        long long Hi, bool Touched) {
  if (!Touched)
    return;
  long long S = 0, En = 0;
  E.setAttr(StartKey, E.getAttr(StartKey, S) && S < Lo ? S : Lo);
  E.setAttr(EndKey, E.getAttr(EndKey, En) && En > Hi ? En : Hi);
}

/// The T-NTSucc defaults for a finished subtree as seen by its parent
/// (before shifting into the parent's coordinates): an untouched subtree —
/// no start/end in its environment — reads as [sub-EOI, 0), the identity
/// elements of the min/max in updStartEnd.
inline void childSpan(bool HasStart, long long StartV, bool HasEnd,
                      long long EndV, long long SubEoi, long long &BStart,
                      long long &BEnd) {
  BStart = HasStart ? StartV : SubEoi;
  BEnd = HasEnd ? EndV : 0;
}

/// Division/modulo fail (partiality, not UB) on zero divisors and on the
/// one overflowing quotient.
inline bool checkedDiv(long long L, long long R, long long &Out) {
  if (R == 0 || (L == (-9223372036854775807LL - 1) && R == -1))
    return false;
  Out = L / R;
  return true;
}

inline bool checkedMod(long long L, long long R, long long &Out) {
  if (R == 0 || (L == (-9223372036854775807LL - 1) && R == -1))
    return false;
  Out = L % R;
  return true;
}

/// Shifts fail outside [0, 62]; the left shift is performed unsigned so it
/// is defined for every operand the guard admits.
inline bool checkedShl(long long L, long long R, long long &Out) {
  if (R < 0 || R > 62)
    return false;
  Out = static_cast<long long>(static_cast<unsigned long long>(L) << R);
  return true;
}

inline bool checkedShr(long long L, long long R, long long &Out) {
  if (R < 0 || R > 62)
    return false;
  Out = L >> R;
  return true;
}

/// ReadKind encoding shared between the interpreter and the emitter. The
/// numeric values MUST mirror ipg::ReadKind's declaration order
/// (expr/Expr.h); runtime/Interp.cpp static_asserts the correspondence.
enum : unsigned {
  RK_U8,
  RK_U16Le,
  RK_U32Le,
  RK_U64Le,
  RK_U16Be,
  RK_U32Be,
  RK_BtoiLe,
  RK_BtoiBe,
};

/// Fixed width/endianness of a read kind. Returns false for the
/// variable-width btoi kinds (the caller supplies the [lo, hi) window);
/// BigEndian is still set for them.
inline bool readKindSpec(unsigned RK, long long &Width, bool &BigEndian) {
  BigEndian = RK == RK_U16Be || RK == RK_U32Be || RK == RK_BtoiBe;
  switch (RK) {
  case RK_U8:
    Width = 1;
    return true;
  case RK_U16Le:
  case RK_U16Be:
    Width = 2;
    return true;
  case RK_U32Le:
  case RK_U32Be:
    Width = 4;
    return true;
  case RK_U64Le:
    Width = 8;
    return true;
  default:
    return false;
  }
}

/// Window width of a btoi(lo, hi) read. Fails (partiality) unless
/// 0 <= Lo < Hi — checked BEFORE the subtraction, which is therefore
/// overflow-free (Lo >= 0 and Hi > Lo bound Hi - Lo by Hi). readScalar
/// then enforces the [1, 8] width and the in-bounds window.
inline bool btoiWidth(long long Lo, long long Hi, long long &Width) {
  if (Lo < 0 || Hi <= Lo)
    return false;
  Width = Hi - Lo;
  return true;
}

/// Guarded scalar read over the local input [0, Size): width in [1, 8] and
/// the window in bounds, else partiality.
inline bool readScalar(const unsigned char *Base, long long Size,
                       long long Off, long long Width, bool BigEndian,
                       long long &Out) {
  if (Off < 0 || Width < 1 || Width > 8 || Off > Size - Width)
    return false;
  unsigned long long V = 0;
  if (BigEndian)
    for (long long I = 0; I < Width; ++I)
      V = (V << 8) | Base[Off + I];
  else
    for (long long I = Width; I-- > 0;)
      V = (V << 8) | Base[Off + I];
  Out = static_cast<long long>(V);
  return true;
}

//===----------------------------------------------------------------------===//
// The embedded runtime of generated parsers. The interpreter does not use
// the types below (it has its own arena store in runtime/ParseTree.h with
// the same design); they compile as part of ipg_core only so the embedded
// text can never rot unbuilt.
//===----------------------------------------------------------------------===//

/// One attribute binding; Id indexes the generated parser's name table.
struct AttrSlot {
  unsigned Id;
  long long V;
};

inline bool envGet(const AttrSlot *Slots, unsigned NumSlots, unsigned Id,
                   long long &Out) {
  for (unsigned I = 0; I < NumSlots; ++I)
    if (Slots[I].Id == Id) {
      Out = Slots[I].V;
      return true;
    }
  return false;
}

/// Bump allocator mirroring support/Arena.h: geometrically growing blocks,
/// reset() keeps the blocks so a recycled arena reaches an allocation-free
/// steady state. Only trivially-destructible data lives here.
class Arena {
public:
  void *allocate(size_t Bytes, size_t Align) {
    for (; Cur < Blocks.size(); ++Cur) {
      Block &B = Blocks[Cur];
      size_t At = (B.Used + Align - 1) & ~(Align - 1);
      if (At + Bytes <= B.Cap) {
        B.Used = At + Bytes;
        return B.Mem.get() + At;
      }
    }
    // Block bases come from operator new[] and are aligned to at least
    // __STDCPP_DEFAULT_NEW_ALIGNMENT__, so offset-aligning Used (above)
    // suffices for every type this runtime stores (align <= 16).
    while (NextSize < Bytes)
      NextSize *= 2;
    Blocks.push_back(Block{std::unique_ptr<unsigned char[]>(
                               new unsigned char[NextSize]),
                           NextSize, Bytes});
    NextSize *= 2;
    return Blocks.back().Mem.get();
  }

  template <class T> T *makeArray(size_t N) {
    return static_cast<T *>(allocate(sizeof(T) * (N ? N : 1), alignof(T)));
  }

  template <class T> const T *copyArray(const T *Src, size_t N) {
    if (N == 0)
      return nullptr;
    T *Dst = makeArray<T>(N);
    std::memcpy(Dst, Src, sizeof(T) * N);
    return Dst;
  }

  void reset() {
    for (Block &B : Blocks)
      B.Used = 0;
    Cur = 0;
  }

private:
  struct Block {
    std::unique_ptr<unsigned char[]> Mem;
    size_t Cap = 0;
    size_t Used = 0;
  };
  std::vector<Block> Blocks;
  size_t Cur = 0;
  size_t NextSize = 4096;
};

class Ctx;
struct Node;

/// A borrowed child handle (the accessor surface generated-parser drivers
/// use: `Root->Children[0].get()`).
struct NodeRef {
  Node *P = nullptr;
  Node *get() const { return P; }
  Node *operator->() const { return P; }
  explicit operator bool() const { return P != nullptr; }
};

/// A filtered view over a node's unified child list exposing only child
/// *nodes* (terminal leaves and arrays are reachable through kidCount()/
/// kid() and the canonical dump). Resolves ids against the owning Ctx at
/// access time, so it stays valid while the store grows.
struct ChildView {
  Ctx *C = nullptr;
  const unsigned *Ids = nullptr;
  unsigned N = 0;

  inline size_t size() const;
  bool empty() const { return size() == 0; }
  inline NodeRef operator[](size_t I) const;
};

/// One tree object. A single tagged struct covers the three tree forms of
/// the semantics (Node(A, E, Trs) / Array(Trs) / Leaf(s)); objects live in
/// the store's object vector, and their env/child arrays in its arena.
struct Node {
  enum : unsigned char { KNode, KArray, KLeaf };

  unsigned char Kind = KNode;
  unsigned NameId = 0;     ///< node rule name / array element name
  const char *Name = nullptr;
  const AttrSlot *Slots = nullptr;
  unsigned NumSlots = 0;
  const unsigned *KidIds = nullptr; ///< unified children / array elements
  unsigned NumKids = 0;
  Ctx *C = nullptr;
  // Leaf payload: zero-copy window into the input.
  const unsigned char *Data = nullptr;
  size_t Len = 0;
  long long Off = 0;
  bool Opaque = false;

  /// Child-node view over this node's unified child list (the accessor
  /// surface generated-parser drivers use: `Root->children()[0].get()`).
  /// Derived from KidIds/NumKids on demand so the two can never
  /// desynchronize.
  ChildView children() const { return ChildView{C, KidIds, NumKids}; }

  bool getById(unsigned Id, long long &Out) const {
    return envGet(Slots, NumSlots, Id, Out);
  }
  inline bool get(const char *K, long long &Out) const;

  size_t kidCount() const { return NumKids; }
  inline Node *kid(size_t I) const;
};

/// The recycled store + scratch state behind one generated parser: arena,
/// object index, per-depth frame pool and per-nesting array scratch — the
/// generated twin of the interpreter's InterpState. beginParse() recycles
/// everything without releasing capacity.
class Ctx {
public:
  void setNames(const char *const *Table, size_t Count) {
    NamesTab = Table;
    NumNames = Count;
  }
  const char *name(unsigned Id) const {
    return Id < NumNames ? NamesTab[Id] : "?";
  }

  void beginParse(const unsigned char *Data) {
    Base = Data;
    A.reset();
    Objs.clear();
    ArrayNest = 0;
    Hard = false;
    Frozen = 0;
  }

  /// The recursion-depth guard is a HARD failure, as in the interpreter
  /// (InterpOptions::MaxDepth): once tripped it aborts the whole parse —
  /// no backtracking into sibling alternatives. Generated rule functions
  /// check hardFailed() after every failed alternative.
  void hardFail() { Hard = true; }
  bool hardFailed() const { return Hard; }

  /// Nodes frozen by successful rule alternatives in the current parse —
  /// the generated twin of InterpStats::NodesCreated (shifted copies,
  /// arrays, and leaves are not counted on either side).
  size_t frozenNodeCount() const { return Frozen; }

  const unsigned char *base() const { return Base; }
  Node *node(unsigned Id) { return &Objs[Id]; }
  const Node *node(unsigned Id) const { return &Objs[Id]; }
  size_t nodeCount() const { return Objs.size(); }

  inline struct Frame &frameAt(size_t Depth);

  std::vector<unsigned> &elemScratch(size_t Level) {
    if (ElemScratch.size() <= Level)
      ElemScratch.resize(Level + 1);
    return ElemScratch[Level];
  }
  size_t enterArray() {
    size_t Level = ArrayNest++;
    elemScratch(Level).clear();
    return Level;
  }
  void leaveArray() { --ArrayNest; }

  /// Freezes a frame's scratch env + child ids into the arena as a node.
  inline unsigned freeze(struct Frame &F, unsigned NameId);

  unsigned leaf(const unsigned char *Data, size_t Len, long long Off,
                bool Opaque) {
    Node N;
    N.Kind = Node::KLeaf;
    N.C = this;
    N.Data = Data;
    N.Len = Len;
    N.Off = Off;
    N.Opaque = Opaque;
    return add(N);
  }

  unsigned array(unsigned ElemNameId, const std::vector<unsigned> &Ids) {
    Node N;
    N.Kind = Node::KArray;
    N.C = this;
    N.NameId = ElemNameId;
    N.Name = name(ElemNameId);
    N.KidIds = A.copyArray(Ids.data(), Ids.size());
    N.NumKids = static_cast<unsigned>(Ids.size());
    return add(N);
  }

  /// Shallow copy of a finished subtree with start/end shifted into the
  /// parent's coordinates (T-NTSucc); child arrays are shared.
  unsigned shifted(unsigned SubId, long long Delta) {
    Node N = Objs[SubId]; // copy first: add() may grow the vector
    AttrSlot *S = A.makeArray<AttrSlot>(N.NumSlots);
    for (unsigned I = 0; I < N.NumSlots; ++I) {
      S[I] = N.Slots[I];
      if (S[I].Id == IdStart || S[I].Id == IdEnd)
        S[I].V += Delta;
    }
    N.Slots = N.NumSlots ? S : nullptr;
    return add(N);
  }

  /// The parent-side view of a finished subtree (childSpan defaults).
  void childSpanOf(unsigned SubId, long long SubEoi, long long &BStart,
                   long long &BEnd) const {
    const Node &N = Objs[SubId];
    long long S = 0, E = 0;
    bool HasS = envGet(N.Slots, N.NumSlots, IdStart, S);
    bool HasE = envGet(N.Slots, N.NumSlots, IdEnd, E);
    childSpan(HasS, S, HasE, E, SubEoi, BStart, BEnd);
  }

private:
  unsigned add(const Node &N) {
    Objs.push_back(N);
    return static_cast<unsigned>(Objs.size() - 1);
  }

  Arena A;
  std::vector<Node> Objs;
  std::vector<std::unique_ptr<struct Frame>> Frames;
  std::vector<std::vector<unsigned>> ElemScratch;
  size_t ArrayNest = 0;
  bool Hard = false;
  size_t Frozen = 0;
  const unsigned char *Base = nullptr;
  const char *const *NamesTab = nullptr;
  size_t NumNames = 0;
};

/// Per-alternative execution state: the scratch environment E, the ids of
/// already-built children, and per-term touch records — the generated twin
/// of the interpreter's InterpState::Frame. Frames are pooled per
/// recursion depth and reused across alternatives and parses.
struct Frame {
  const unsigned char *Base = nullptr;
  size_t Lo = 0, Hi = 0; ///< local input = Base[Lo, Hi)
  Ctx *C = nullptr;
  Frame *Lexical = nullptr; ///< enclosing frame for where-clause rules
  std::vector<AttrSlot> E;
  std::vector<unsigned> Kids;
  struct Rec {
    bool Has = false;
    long long Start = 0;
    long long End = 0;
  };
  std::vector<Rec> Recs;

  void beginAlt(const unsigned char *B, size_t L, size_t H, Frame *Lex,
                size_t NumTerms) {
    Base = B;
    Lo = L;
    Hi = H;
    Lexical = Lex;
    E.clear();
    Kids.clear();
    Recs.assign(NumTerms, Rec());
  }

  long long eoi() const { return static_cast<long long>(Hi - Lo); }

  // Own-frame environment (updStartEnd's EnvT surface).
  bool getAttr(unsigned Id, long long &Out) const {
    return envGet(E.data(), static_cast<unsigned>(E.size()), Id, Out);
  }
  void setAttr(unsigned Id, long long V) {
    for (AttrSlot &S : E)
      if (S.Id == Id) {
        S.V = V;
        return;
      }
    E.push_back(AttrSlot{Id, V});
  }
  void eraseAttr(unsigned Id) {
    for (size_t I = 0; I < E.size(); ++I)
      if (E[I].Id == Id) {
        E.erase(E.begin() + static_cast<long>(I));
        return;
      }
  }

  /// Lexical-chain attribute lookup (sigma of Figure 8).
  bool attr(unsigned Id, long long &Out) const {
    for (const Frame *F = this; F; F = F->Lexical)
      if (F->getAttr(Id, Out))
        return true;
    return false;
  }

  /// Most recent child node named \p NameId along the lexical chain.
  Node *findNode(unsigned NameId) const {
    for (const Frame *F = this; F; F = F->Lexical)
      for (size_t I = F->Kids.size(); I-- > 0;) {
        Node *N = C->node(F->Kids[I]);
        if (N->Kind == Node::KNode && N->NameId == NameId)
          return N;
      }
    return nullptr;
  }

  /// Most recent child array with elements named \p NameId.
  Node *findArray(unsigned NameId) const {
    for (const Frame *F = this; F; F = F->Lexical)
      for (size_t I = F->Kids.size(); I-- > 0;) {
        Node *N = C->node(F->Kids[I]);
        if (N->Kind == Node::KArray && N->NameId == NameId)
          return N;
      }
    return nullptr;
  }

  void rec(unsigned TermIdx, long long Start, long long End) {
    Recs[TermIdx] = Rec{true, Start, End};
  }
  bool termEnd(unsigned TermIdx, long long &Out) const {
    if (TermIdx >= Recs.size() || !Recs[TermIdx].Has)
      return false;
    Out = Recs[TermIdx].End;
    return true;
  }
};

inline Frame &Ctx::frameAt(size_t Depth) {
  while (Frames.size() <= Depth)
    Frames.push_back(std::unique_ptr<Frame>(new Frame()));
  Frame &F = *Frames[Depth];
  F.C = this;
  return F;
}

inline unsigned Ctx::freeze(Frame &F, unsigned NameId) {
  Node N;
  N.Kind = Node::KNode;
  N.C = this;
  N.NameId = NameId;
  N.Name = name(NameId);
  N.Slots = A.copyArray(F.E.data(), F.E.size());
  N.NumSlots = static_cast<unsigned>(F.E.size());
  N.KidIds = A.copyArray(F.Kids.data(), F.Kids.size());
  N.NumKids = static_cast<unsigned>(F.Kids.size());
  ++Frozen;
  return add(N);
}

inline size_t ChildView::size() const {
  size_t Count = 0;
  for (unsigned I = 0; I < N; ++I)
    if (C->node(Ids[I])->Kind == Node::KNode)
      ++Count;
  return Count;
}

inline NodeRef ChildView::operator[](size_t I) const {
  for (unsigned K = 0; K < N; ++K) {
    Node *Kid = C->node(Ids[K]);
    if (Kid->Kind == Node::KNode && I-- == 0)
      return NodeRef{Kid};
  }
  return NodeRef{};
}

inline bool Node::get(const char *K, long long &Out) const {
  for (unsigned I = 0; I < NumSlots; ++I)
    if (C && !std::strcmp(C->name(Slots[I].Id), K)) {
      Out = Slots[I].V;
      return true;
    }
  return false;
}

inline Node *Node::kid(size_t I) const { return C->node(KidIds[I]); }

//===----------------------------------------------------------------------===//
// Canonical tree dump — the differential-testing contract. The interpreter
// side (tests/differential_test.cpp) renders its ParseTree in exactly this
// format; any byte difference is a semantic divergence.
//===----------------------------------------------------------------------===//

inline void dumpTreeRec(const Node *N, int Indent, std::string &Out) {
  Out.append(static_cast<size_t>(Indent) * 2, ' ');
  switch (N->Kind) {
  case Node::KLeaf:
    Out += "Leaf off=" + std::to_string(N->Off) +
           " len=" + std::to_string(N->Len) +
           " opaque=" + (N->Opaque ? "1" : "0") + "\n";
    return;
  case Node::KArray:
    Out += "Array " + std::string(N->Name) + " x" +
           std::to_string(N->NumKids) + "\n";
    break;
  case Node::KNode: {
    Out += "Node " + std::string(N->Name) + " {";
    std::vector<std::pair<std::string, long long>> Attrs;
    for (unsigned I = 0; I < N->NumSlots; ++I)
      Attrs.emplace_back(N->C->name(N->Slots[I].Id), N->Slots[I].V);
    std::sort(Attrs.begin(), Attrs.end());
    for (size_t I = 0; I < Attrs.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Attrs[I].first + "=" + std::to_string(Attrs[I].second);
    }
    Out += "}\n";
    break;
  }
  }
  for (unsigned I = 0; I < N->NumKids; ++I)
    dumpTreeRec(N->kid(I), Indent + 1, Out);
}

inline std::string dumpTree(const Node *Root) {
  std::string Out;
  if (Root)
    dumpTreeRec(Root, 0, Out);
  return Out;
}

} // namespace ipg_rt

#endif // IPG_SUPPORT_GENRUNTIME_H
