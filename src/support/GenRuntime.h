//===- support/GenRuntime.h - Shared parse-time semantics ------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for the parse-time semantics shared by the
/// interpreter (runtime/Interp.cpp, expr/Eval.cpp) and by every parser the
/// code generator emits. This file is BOTH compiled into ipg_core AND
/// embedded verbatim into each generated parser (CMake wraps it into
/// GenRuntimeEmbed.inc, which codegen/CppEmitter.cpp pastes ahead of the
/// emitted rule functions), so the two execution modes cannot drift: a
/// semantic change here changes both at once.
///
/// Because of that dual life the file must stay self-contained: C++17,
/// direct std includes only, no other project headers. Everything lives in
/// namespace ipg_rt (not ipg) so generated parsers stay dependency-free.
///
/// Contents:
///
/// 1. Shared scalar semantics of Figure 8 — the first-update `updStartEnd`
///    (start/end appear in an environment only once a term actually touches
///    bytes; the first touch seeds them, later touches min/max them — there
///    is NO pre-seeded `start = EOI` / `end = 0` sentinel, so reading
///    `X.start` of a byte-untouched node fails with partiality), the
///    T-NTSucc child-span defaults (`value_or(sub-EOI)` / `value_or(0)`),
///    the interval guard, the read guards, and the checked arithmetic
///    (div/mod/shift) of the expression language.
///
/// 2. The shared memoization table: IntervalKey packs (rule, interval)
///    into 128 bits and FlatIntervalMap is the open-addressing table with
///    tombstones and O(1) generational clear. The interpreter uses it
///    through the aliases in support/FlatHash.h; generated parsers embed
///    it directly (Ctx memoizes every non-local (rule, interval) result,
///    closing the paper's Fig.-12 gap on backtracking-heavy grammars).
///
/// 3. The embedded runtime of generated parsers: a bump-arena node store
///    with index-based children, flat attribute environments keyed by
///    emitter-assigned ids (O(1) through SlotIndex), lazy shifted-node
///    views (T-NTSucc shifts are recorded as a per-view delta and resolved
///    at read time instead of copying environments), zero-copy leaves
///    aliasing the input, per-depth frame pools, and the blackbox
///    registration hook (Section 3.4) — the same design the interpreter's
///    TreeStore uses (runtime/ParseTree.h), recycled across parses so
///    steady-state parsing performs no heap allocation.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_GENRUNTIME_H
#define IPG_SUPPORT_GENRUNTIME_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace ipg_rt {

//===----------------------------------------------------------------------===//
// Shared scalar semantics (used by the interpreter AND generated parsers).
//===----------------------------------------------------------------------===//

/// Recursion-guard DEFAULT shared with EngineOptions::MaxDepth's. Like
/// the interpreter's, the limit is a HARD error (Ctx::hardFail): it
/// aborts the whole parse rather than soft-failing into sibling
/// alternatives, so a fallback alternative cannot mask runaway
/// recursion in one execution mode but not the other. The effective
/// limit is runtime-settable per parser (Ctx::setDepthLimit, surfaced
/// as Parser::setDepthLimit) so both engines can honor one
/// EngineOptions::MaxDepth value.
inline constexpr int MaxDepth = 8192;

/// Attribute ids of the special start/end attributes in generated
/// environments. The emitter guarantees its name table begins with
/// "start", "end" in exactly this order.
enum : unsigned { IdStart = 0, IdEnd = 1 };

/// The interval guard of every positional term: [Lo, Hi) must be a
/// sub-window of the local input [0, Eoi).
inline bool intervalOk(long long Lo, long long Hi, long long Eoi) {
  return 0 <= Lo && Lo <= Hi && Hi <= Eoi;
}

/// updStartEnd of Figure 8, first-update form: if \p Touched, seed
/// start/end on their first update and min/max afterwards. \p EnvT needs
/// `bool getAttr(KeyT, long long &)` over its own bindings and
/// `void setAttr(KeyT, long long)`. Encoding the first update via
/// "absent -> take Lo/Hi directly" (rather than defaulting S = 0) is what
/// makes the min-clamps-to-0 trap structurally impossible for structures
/// that do not begin at offset 0.
template <class EnvT, class KeyT>
inline void updStartEnd(EnvT &E, KeyT StartKey, KeyT EndKey, long long Lo,
                        long long Hi, bool Touched) {
  if (!Touched)
    return;
  long long S = 0, En = 0;
  E.setAttr(StartKey, E.getAttr(StartKey, S) && S < Lo ? S : Lo);
  E.setAttr(EndKey, E.getAttr(EndKey, En) && En > Hi ? En : Hi);
}

/// The T-NTSucc defaults for a finished subtree as seen by its parent
/// (before shifting into the parent's coordinates): an untouched subtree —
/// no start/end in its environment — reads as [sub-EOI, 0), the identity
/// elements of the min/max in updStartEnd.
inline void childSpan(bool HasStart, long long StartV, bool HasEnd,
                      long long EndV, long long SubEoi, long long &BStart,
                      long long &BEnd) {
  BStart = HasStart ? StartV : SubEoi;
  BEnd = HasEnd ? EndV : 0;
}

/// Division/modulo fail (partiality, not UB) on zero divisors and on the
/// one overflowing quotient.
inline bool checkedDiv(long long L, long long R, long long &Out) {
  if (R == 0 || (L == (-9223372036854775807LL - 1) && R == -1))
    return false;
  Out = L / R;
  return true;
}

inline bool checkedMod(long long L, long long R, long long &Out) {
  if (R == 0 || (L == (-9223372036854775807LL - 1) && R == -1))
    return false;
  Out = L % R;
  return true;
}

/// Shifts fail outside [0, 62]; the left shift is performed unsigned so it
/// is defined for every operand the guard admits.
inline bool checkedShl(long long L, long long R, long long &Out) {
  if (R < 0 || R > 62)
    return false;
  Out = static_cast<long long>(static_cast<unsigned long long>(L) << R);
  return true;
}

inline bool checkedShr(long long L, long long R, long long &Out) {
  if (R < 0 || R > 62)
    return false;
  Out = L >> R;
  return true;
}

/// ReadKind encoding shared between the interpreter and the emitter. The
/// numeric values MUST mirror ipg::ReadKind's declaration order
/// (expr/Expr.h); runtime/Interp.cpp static_asserts the correspondence.
enum : unsigned {
  RK_U8,
  RK_U16Le,
  RK_U32Le,
  RK_U64Le,
  RK_U16Be,
  RK_U32Be,
  RK_BtoiLe,
  RK_BtoiBe,
};

/// Fixed width/endianness of a read kind. Returns false for the
/// variable-width btoi kinds (the caller supplies the [lo, hi) window);
/// BigEndian is still set for them.
inline bool readKindSpec(unsigned RK, long long &Width, bool &BigEndian) {
  BigEndian = RK == RK_U16Be || RK == RK_U32Be || RK == RK_BtoiBe;
  switch (RK) {
  case RK_U8:
    Width = 1;
    return true;
  case RK_U16Le:
  case RK_U16Be:
    Width = 2;
    return true;
  case RK_U32Le:
  case RK_U32Be:
    Width = 4;
    return true;
  case RK_U64Le:
    Width = 8;
    return true;
  default:
    return false;
  }
}

/// Window width of a btoi(lo, hi) read. Fails (partiality) unless
/// 0 <= Lo < Hi — checked BEFORE the subtraction, which is therefore
/// overflow-free (Lo >= 0 and Hi > Lo bound Hi - Lo by Hi). readScalar
/// then enforces the [1, 8] width and the in-bounds window.
inline bool btoiWidth(long long Lo, long long Hi, long long &Width) {
  if (Lo < 0 || Hi <= Lo)
    return false;
  Width = Hi - Lo;
  return true;
}

/// Guarded scalar read over the local input [0, Size): width in [1, 8] and
/// the window in bounds, else partiality.
inline bool readScalar(const unsigned char *Base, long long Size,
                       long long Off, long long Width, bool BigEndian,
                       long long &Out) {
  if (Off < 0 || Width < 1 || Width > 8 || Off > Size - Width)
    return false;
  unsigned long long V = 0;
  if (BigEndian)
    for (long long I = 0; I < Width; ++I)
      V = (V << 8) | Base[Off + I];
  else
    for (long long I = Width; I-- > 0;)
      V = (V << 8) | Base[Off + I];
  Out = static_cast<long long>(V);
  return true;
}

//===----------------------------------------------------------------------===//
// Interval memoization (shared by the interpreter AND generated parsers).
//
// Section 3.3 keys parse results on (nonterminal, interval). The key is
// packed into a single 128-bit value —
//
//   A = rule-id (32 bits)  |  interval-lo bits 47..16
//   B = interval-lo bits 15..0  |  interval-hi (48 bits)
//
// — and entries live in one flat power-of-two slot array with linear
// probing. Offsets are absolute byte positions in the root input, so
// 48 bits allow 256 TiB inputs; rule id ~0u is reserved to encode the
// empty and tombstone slot states and is asserted against.
//
// erase() leaves a tombstone so later probes keep walking; tombstones are
// reclaimed on rehash. clear() keeps capacity and is O(1) (generational),
// which is what lets a reused parser reach an allocation-free steady
// state. The interpreter consumes these types through the aliases in
// support/FlatHash.h; generated parsers embed them directly.
//===----------------------------------------------------------------------===//

/// A (rule, interval) key packed into 128 bits. Equality is exact; the
/// packing is injective for lo/hi < 2^48 and rule < 2^32 - 1.
struct IntervalKey {
  uint64_t A = 0;
  uint64_t B = 0;

  static IntervalKey pack(uint32_t Rule, uint64_t Lo, uint64_t Hi) {
    assert(Rule != ~0u && "rule id ~0 is reserved for slot sentinels");
    assert(Lo < (1ull << 48) && Hi < (1ull << 48) &&
           "interval offsets limited to 48 bits");
    IntervalKey K;
    K.A = (static_cast<uint64_t>(Rule) << 32) | (Lo >> 16);
    K.B = (Lo << 48) | Hi;
    return K;
  }

  bool operator==(const IntervalKey &O) const {
    return A == O.A && B == O.B;
  }
};

/// Open-addressing hash map from IntervalKey to a small trivially copyable
/// value (parse engines store node handles and in-progress marks). Linear
/// probing, max load factor 3/4 counting tombstones, geometric growth from
/// a 64-slot floor.
template <typename V> class FlatIntervalMap {
  // Slot states are encoded in the key's A word: valid keys never carry
  // rule id ~0u, so A values with all upper 32 bits set are free for
  // sentinels and B disambiguates empty from tombstone.
  static constexpr uint64_t SentinelA = ~0ull;
  static constexpr uint64_t EmptyB = 0;
  static constexpr uint64_t TombB = 1;

  // Each slot carries the epoch it was last written in; slots from older
  // epochs read as empty, which is what makes clear() O(1): it bumps the
  // epoch instead of sweeping a table that one large parse may have grown
  // far beyond what small parses need.
  struct Slot {
    uint64_t A = SentinelA;
    uint64_t B = EmptyB;
    V Value{};
    uint32_t Epoch = 0;
  };

public:
  FlatIntervalMap() = default;

  /// Looks up \p K; returns null when absent.
  V *find(const IntervalKey &K) {
    if (Slots.empty())
      return nullptr;
    size_t Mask = Slots.size() - 1;
    for (size_t I = hashOf(K) & Mask;; I = (I + 1) & Mask) {
      Slot &S = Slots[I];
      if (S.Epoch != Epoch)
        return nullptr; // stale epoch reads as empty
      if (S.A == SentinelA) {
        if (S.B == EmptyB)
          return nullptr;
        continue; // tombstone: keep probing
      }
      if (S.A == K.A && S.B == K.B)
        return &S.Value;
    }
  }
  const V *find(const IntervalKey &K) const {
    return const_cast<FlatIntervalMap *>(this)->find(K);
  }

  /// Inserts \p K -> \p Value; returns false (leaving the existing value
  /// untouched) when the key was already present.
  bool insert(const IntervalKey &K, const V &Value) {
    if ((Used + 1) * 4 > capacity() * 3) {
      // Grow only when live entries justify it; when the load breach is
      // mostly tombstones (the insert/erase-heavy in-progress set never
      // holds more than recursion-depth live keys), rehash in place to
      // purge them instead of doubling forever.
      size_t NewCap = capacity() ? capacity() : 64;
      if (Size * 2 >= Used)
        NewCap = capacity() ? capacity() * 2 : 64;
      rehash(NewCap);
    }
    size_t Mask = Slots.size() - 1;
    size_t Tomb = ~size_t(0);
    for (size_t I = hashOf(K) & Mask;; I = (I + 1) & Mask) {
      Slot &S = Slots[I];
      bool Fresh = S.Epoch == Epoch;
      if (Fresh && S.A != SentinelA) {
        if (S.A == K.A && S.B == K.B)
          return false;
        continue;
      }
      if (Fresh && S.B == TombB) {
        if (Tomb == ~size_t(0))
          Tomb = I;
        continue;
      }
      // Empty (stale epoch or never written): claim the first tombstone
      // on the probe path if any, so long-lived tables don't accumulate
      // displacement.
      Slot &Dst = Slots[Tomb != ~size_t(0) ? Tomb : I];
      bool Reclaimed = Tomb != ~size_t(0);
      Dst.A = K.A;
      Dst.B = K.B;
      Dst.Value = Value;
      Dst.Epoch = Epoch;
      ++Size;
      if (!Reclaimed)
        ++Used; // reusing a tombstone doesn't raise the load
      return true;
    }
  }

  /// Removes \p K (leaving a tombstone); returns whether it was present.
  bool erase(const IntervalKey &K) {
    if (Slots.empty())
      return false;
    size_t Mask = Slots.size() - 1;
    for (size_t I = hashOf(K) & Mask;; I = (I + 1) & Mask) {
      Slot &S = Slots[I];
      if (S.Epoch != Epoch)
        return false; // stale epoch reads as empty
      if (S.A == SentinelA) {
        if (S.B == EmptyB)
          return false;
        continue;
      }
      if (S.A == K.A && S.B == K.B) {
        S.A = SentinelA;
        S.B = TombB;
        S.Value = V{};
        --Size;
        return true;
      }
    }
  }

  /// Drops all entries and tombstones but keeps the slot array. O(1):
  /// bumping the epoch invalidates every slot, so a long-lived table
  /// sized by one large parse costs nothing to clear before small ones.
  void clear() {
    Size = 0;
    Used = 0;
    ++Epoch;
    if (Epoch == 0) {
      // Epoch wrap (once per 2^32 clears): ancient slots could alias the
      // restarted counter, so pay one full sweep.
      for (Slot &S : Slots)
        S = Slot();
      Epoch = 1;
    }
  }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }
  size_t capacity() const { return Slots.size(); }
  /// Occupied + tombstoned slots (what load-factor growth is gated on).
  size_t usedSlots() const { return Used; }

private:
  static size_t hashOf(const IntervalKey &K) {
    // splitmix64-style finalization over both words.
    uint64_t H = K.A * 0x9e3779b97f4a7c15ull;
    H ^= K.B + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
    H ^= H >> 30;
    H *= 0xbf58476d1ce4e5b9ull;
    H ^= H >> 27;
    H *= 0x94d049bb133111ebull;
    H ^= H >> 31;
    return static_cast<size_t>(H);
  }

  void rehash(size_t NewCap) {
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(NewCap, Slot());
    Size = 0;
    Used = 0;
    size_t Mask = NewCap - 1;
    for (const Slot &S : Old) {
      if (S.Epoch != Epoch || S.A == SentinelA)
        continue;
      for (size_t I = hashOf({S.A, S.B}) & Mask;; I = (I + 1) & Mask) {
        if (Slots[I].Epoch != Epoch) {
          Slots[I] = S;
          ++Size;
          ++Used;
          break;
        }
      }
    }
  }

  std::vector<Slot> Slots;
  size_t Size = 0;     ///< live entries
  size_t Used = 0;     ///< live entries + tombstones this epoch
  uint32_t Epoch = 1;  ///< current generation; 0 marks never-written slots
};

//===----------------------------------------------------------------------===//
// Slot indexing (shared by the interpreter's Env and generated Frames).
//===----------------------------------------------------------------------===//

/// A generation-stamped direct map from small integer keys (interned
/// symbols / emitter-assigned attribute ids) to slot positions in a flat
/// environment. Replaces the linear scans attribute-heavy rules used to
/// pay on every get/set: lookup and record are O(1), and clear() is O(1)
/// too — it bumps a generation instead of sweeping, so per-alternative
/// environment resets stay free no matter how large the key space grew.
class SlotIndex {
public:
  /// Invalidate every recorded position (new environment generation).
  void clear() {
    if (++Gen == 0) {
      // Generation wrap (once per 2^32 clears): ancient stamps could
      // alias the restarted counter, so pay one full sweep.
      std::fill(Stamp.begin(), Stamp.end(), 0);
      Gen = 1;
    }
  }

  /// The recorded position of \p Key this generation, if any.
  bool lookup(uint32_t Key, uint32_t &Idx) const {
    if (Key >= Stamp.size())
      return false;
    uint64_t S = Stamp[Key];
    if (static_cast<uint32_t>(S >> 32) != Gen)
      return false;
    Idx = static_cast<uint32_t>(S);
    return true;
  }

  /// Records (or overwrites) the position of \p Key this generation.
  void record(uint32_t Key, uint32_t Idx) {
    if (Key >= Stamp.size())
      Stamp.resize(static_cast<size_t>(Key) + 1, 0);
    Stamp[Key] = (static_cast<uint64_t>(Gen) << 32) | Idx;
  }

  /// Drops \p Key from this generation.
  void forget(uint32_t Key) {
    if (Key < Stamp.size())
      Stamp[Key] = 0;
  }

private:
  std::vector<uint64_t> Stamp; ///< per-key (generation << 32) | index
  uint32_t Gen = 1;            ///< stamp 0 marks never-written keys
};

/// Packing of a memoized parse outcome into a 32-bit table value —
/// (node id << 1) | success bit; a memoized FAILURE packs as 0. One
/// definition shared by the interpreter and generated parsers so the
/// encoding cannot drift between the engines.
inline unsigned memoPack(unsigned NodeId, bool Ok) {
  assert(NodeId < (1u << 31) && "node id overflows the packed memo value");
  return (NodeId << 1) | (Ok ? 1u : 0u);
}

/// Inverse of memoPack: sets \p NodeId (meaningful only on success) and
/// returns the success bit.
inline bool memoUnpack(unsigned Value, unsigned &NodeId) {
  NodeId = Value >> 1;
  return (Value & 1u) != 0;
}

//===----------------------------------------------------------------------===//
// The embedded runtime of generated parsers. The interpreter does not use
// the types below (it has its own arena store in runtime/ParseTree.h with
// the same design); they compile as part of ipg_core only so the embedded
// text can never rot unbuilt.
//===----------------------------------------------------------------------===//

/// One attribute binding; Id indexes the generated parser's name table.
struct AttrSlot {
  unsigned Id;
  long long V;
};

/// Bump allocator mirroring support/Arena.h: geometrically growing blocks,
/// reset() keeps the blocks so a recycled arena reaches an allocation-free
/// steady state. Only trivially-destructible data lives here.
class Arena {
public:
  void *allocate(size_t Bytes, size_t Align) {
    for (; Cur < Blocks.size(); ++Cur) {
      Block &B = Blocks[Cur];
      size_t At = (B.Used + Align - 1) & ~(Align - 1);
      if (At + Bytes <= B.Cap) {
        B.Used = At + Bytes;
        return B.Mem.get() + At;
      }
    }
    // Block bases come from operator new[] and are aligned to at least
    // __STDCPP_DEFAULT_NEW_ALIGNMENT__, so offset-aligning Used (above)
    // suffices for every type this runtime stores (align <= 16).
    while (NextSize < Bytes)
      NextSize *= 2;
    Blocks.push_back(Block{std::unique_ptr<unsigned char[]>(
                               new unsigned char[NextSize]),
                           NextSize, Bytes});
    NextSize *= 2;
    return Blocks.back().Mem.get();
  }

  template <class T> T *makeArray(size_t N) {
    return static_cast<T *>(allocate(sizeof(T) * (N ? N : 1), alignof(T)));
  }

  template <class T> const T *copyArray(const T *Src, size_t N) {
    if (N == 0)
      return nullptr;
    T *Dst = makeArray<T>(N);
    std::memcpy(Dst, Src, sizeof(T) * N);
    return Dst;
  }

  void reset() {
    for (Block &B : Blocks)
      B.Used = 0;
    Cur = 0;
  }

private:
  struct Block {
    std::unique_ptr<unsigned char[]> Mem;
    size_t Cap = 0;
    size_t Used = 0;
  };
  std::vector<Block> Blocks;
  size_t Cur = 0;
  size_t NextSize = 4096;
};

class Ctx;
struct Node;

/// A borrowed child handle (the accessor surface generated-parser drivers
/// use: `Root->Children[0].get()`).
struct NodeRef {
  Node *P = nullptr;
  Node *get() const { return P; }
  Node *operator->() const { return P; }
  explicit operator bool() const { return P != nullptr; }
};

/// A filtered view over a node's unified child list exposing only child
/// *nodes* (terminal leaves and arrays are reachable through kidCount()/
/// kid() and the canonical dump). Resolves ids against the owning Ctx at
/// access time, so it stays valid while the store grows.
struct ChildView {
  Ctx *C = nullptr;
  const unsigned *Ids = nullptr;
  unsigned N = 0;

  inline size_t size() const;
  bool empty() const { return size() == 0; }
  inline NodeRef operator[](size_t I) const;
};

/// One tree object. A single tagged struct covers the three tree forms of
/// the semantics (Node(A, E, Trs) / Array(Trs) / Leaf(s)); objects live in
/// the store's object vector, and their env/child arrays in its arena.
///
/// T-NTSucc's coordinate shift is LAZY: a shifted view of a finished
/// subtree shares the frozen env and child arrays of its base node and
/// records only the delta in Shift; every attribute read resolves the
/// shift on the fly (start/end only — other attributes are coordinate-
/// free). Views compose: a view of a view accumulates deltas.
struct Node {
  enum : unsigned char { KNode, KArray, KLeaf };

  unsigned char Kind = KNode;
  unsigned NameId = 0;     ///< node rule name / array element name
  const char *Name = nullptr;
  const AttrSlot *Slots = nullptr;
  unsigned NumSlots = 0;
  const unsigned *KidIds = nullptr; ///< unified children / array elements
  unsigned NumKids = 0;
  Ctx *C = nullptr;
  long long Shift = 0; ///< lazy start/end delta of a shifted view
  // Leaf payload: zero-copy window into the input.
  const unsigned char *Data = nullptr;
  size_t Len = 0;
  long long Off = 0;
  bool Opaque = false;
  /// True for nodes built by blackboxNode: their one leaf child carries
  /// DECODED bytes, so the serializer (printTree) must re-encode through
  /// the inverse hook instead of copying children. Copied along by
  /// shifted() like every other field.
  bool Bb = false;

  /// Child-node view over this node's unified child list (the accessor
  /// surface generated-parser drivers use: `Root->children()[0].get()`).
  /// Derived from KidIds/NumKids on demand so the two can never
  /// desynchronize.
  ChildView children() const { return ChildView{C, KidIds, NumKids}; }

  /// Slot \p I's value with the lazy shift resolved — the ONE place the
  /// view delta is applied (every reader, the canonical dump included,
  /// goes through it, so no path can observe unshifted coordinates).
  long long slotValue(unsigned I) const {
    long long V = Slots[I].V;
    if (Shift != 0 && (Slots[I].Id == IdStart || Slots[I].Id == IdEnd))
      V += Shift;
    return V;
  }

  /// \p Id's value with the lazy shift applied to start/end.
  bool getById(unsigned Id, long long &Out) const {
    for (unsigned I = 0; I < NumSlots; ++I)
      if (Slots[I].Id == Id) {
        Out = slotValue(I);
        return true;
      }
    return false;
  }
  inline bool get(const char *K, long long &Out) const;

  size_t kidCount() const { return NumKids; }
  inline Node *kid(size_t I) const;
};

/// What a registered blackbox parser (Section 3.4) reports back: success
/// or failure, an integer value (surfaced as attribute `val`), how many
/// slice bytes it consumed (drives the `end` attribute), and optional
/// decoded output bytes (surfaced as a Leaf child). Output must stay valid
/// until the callback is invoked again; the runtime copies it into the
/// node arena before returning.
struct BlackboxOut {
  long long Value = 0;
  long long End = 0;
  const unsigned char *Output = nullptr;
  size_t OutputLen = 0;
};

/// The blackbox registration hook of generated parsers: a plain function
/// pointer plus an opaque user cookie, so bridges to any host-side decoder
/// (or C-style closure) stay dependency-free. Returns success; on success
/// every BlackboxOut field must be set.
using BlackboxFn = bool (*)(void *User, const unsigned char *Data,
                            size_t Len, BlackboxOut &Out);

/// What a blackbox INVERSE hands back: the re-encoded bytes. Like
/// BlackboxOut's Output, the buffer must stay valid until the callback's
/// next invocation; printTree copies it into the output before returning.
struct BlackboxEncOut {
  const unsigned char *Data = nullptr;
  size_t Len = 0;
};

/// The inverse hook next to BlackboxFn: re-encodes \p Decoded (a forward
/// blackbox's Output) given \p Value (its val attribute). Serializers
/// call it to re-emit the consumed window of a blackbox node; parsing
/// never needs it.
using BlackboxInvFn = bool (*)(void *User, const unsigned char *Decoded,
                               size_t DecodedLen, long long Value,
                               BlackboxEncOut &Out);

/// One pending level of a flattened linear-recursive rule: the interval
/// the level parses. 16 bytes per grammar-recursion level (instead of a
/// C-stack frame) is what lets a megabyte-deep PDF `Scan`/`XNum` spine
/// fit in a few MB of heap.
struct FlatLevel {
  size_t AbsLo = 0;
  size_t AbsHi = 0;
};

/// One suspended rule activation on the step machine's explicit work
/// stack (general recursion the flattener cannot handle). A step function
/// mutates its Task across resumptions; the Call*/Arr* fields carry the
/// parameters of a pending child call and of an in-flight array loop
/// across the suspension points.
struct Task {
  unsigned Rule = 0;   ///< rule this task runs
  unsigned Resume = 0; ///< 0 on first entry; else the resume label id
  size_t Idx = 0;      ///< position on the task stack == frame index
  size_t AbsLo = 0, AbsHi = 0; ///< absolute input window
  int LexTask = -1;    ///< task index of the lexical parent frame, or -1
  unsigned Out = 0;    ///< result node id (valid when the task finishes)
  // Child-call result, delivered by the machine before resuming.
  int ChildOk = 0;
  unsigned ChildNode = 0;
  // Pending child-call parameters (set before returning StepCall).
  unsigned CallRule = 0;
  size_t CallLo = 0, CallHi = 0;
  int CallLexSelf = 0; ///< child is a where-clause rule: pass our frame
  long long SaveL = 0; ///< child interval's Lo, for the post-call shift
  // In-flight array state (arrays whose element rule is a step rule).
  long long ArrK = 0, ArrTo = 0, ArrSaved = 0, ArrMax = 0;
  int ArrHadSaved = 0, ArrTouched = 0;
  size_t ArrLevel = 0;
};

/// A resumable rule body for the step machine. Returns StepDone/StepFail
/// with Task::Out set, or StepCall with the Call* fields describing the
/// child to push.
class Ctx;
using StepFn = int (*)(Ctx &, Task &);
enum : int { StepFail = 0, StepDone = 1, StepCall = 2 };

/// The recycled store + scratch state behind one generated parser: arena,
/// object index, per-depth frame pool and per-nesting array scratch — the
/// generated twin of the interpreter's InterpState. beginParse() recycles
/// everything without releasing capacity.
class Ctx {
public:
  void setNames(const char *const *Table, size_t Count) {
    NamesTab = Table;
    NumNames = Count;
  }
  const char *name(unsigned Id) const {
    return Id < NumNames ? NamesTab[Id] : "?";
  }

  void beginParse(const unsigned char *Data) {
    Base = Data;
    A.reset();
    Objs.clear();
    Memo.clear(); // O(1) generational clear; capacity is kept
    ArrayNest = 0;
    Hard = false;
    FailName = -1;
    FailOff = -1;
    Frozen = 0;
    Hits = 0;
    Misses = 0;
    Peak = 0;
    FlatLevels.clear();
    FlatKids.clear();
    Steps.clear();
  }

  /// The recursion-depth guard is a HARD failure, as in the interpreter
  /// (InterpOptions::MaxDepth): once tripped it aborts the whole parse —
  /// no backtracking into sibling alternatives. Generated rule functions
  /// check hardFailed() after every failed alternative.
  void hardFail() { Hard = true; }
  bool hardFailed() const { return Hard; }

  /// First-failure diagnostics, the generated twin of
  /// EngineStats::FailRule/FailOffset: the first noteFail() of a parse
  /// wins (deeper failures fire first on the way out, exactly as the
  /// interpreter records them). \p NameId indexes the module name table;
  /// \p Off is the absolute input offset of the failing window.
  void noteFail(unsigned NameId, long long Off) {
    if (FailName >= 0)
      return;
    FailName = static_cast<long long>(NameId);
    FailOff = Off;
  }
  long long failNameId() const { return FailName; } ///< -1 when none
  long long failOff() const { return FailOff; }

  /// The effective recursion limit (emitted rule functions compare their
  /// Depth against it). Defaults to MaxDepth; setDepthLimit lets a
  /// driver apply EngineOptions::MaxDepth at run time — floored at 1 so
  /// the guard can never be disabled entirely.
  long long depthLimit() const { return DepthLim; }
  void setDepthLimit(long long Limit) { DepthLim = Limit < 1 ? 1 : Limit; }

  /// High-water recursion depth of the current parse — the generated twin
  /// of InterpStats::PeakDepth. Every tier reports through it: direct
  /// rule functions note their own C-stack depth, flattened loops their
  /// virtual (per-level) depth, and the step machine its task-stack
  /// height, so the figure matches the interpreter's exactly.
  void notePeak(long long Depth) {
    if (Depth > Peak)
      Peak = Depth;
  }
  long long peakDepth() const { return Peak; }

  /// Nodes frozen by successful rule alternatives in the current parse —
  /// the generated twin of InterpStats::NodesCreated (shifted views,
  /// arrays, and leaves are not counted on either side).
  size_t frozenNodeCount() const { return Frozen; }

  /// Memo table hits/misses of the current parse — the generated twins of
  /// InterpStats::MemoHits/MemoMisses.
  size_t memoHits() const { return Hits; }
  size_t memoMisses() const { return Misses; }

  /// Memoized result of a previous parseRule_N(Rule, [AbsLo, AbsHi))
  /// call this parse, keyed exactly as the interpreter keys its table
  /// (Section 3.3: rule id + absolute interval). \p Ok and \p Id are set
  /// only on a hit; failures are memoized too (Ok = false). The value is
  /// the node id and the verdict packed into 32 bits, keeping the slot
  /// array small enough to stay cache-resident on large parses.
  bool memoFind(unsigned Rule, size_t AbsLo, size_t AbsHi, bool &Ok,
                unsigned &Id) {
    if (const unsigned *E =
            Memo.find(IntervalKey::pack(Rule, AbsLo, AbsHi))) {
      ++Hits;
      Ok = memoUnpack(*E, Id);
      return true;
    }
    ++Misses;
    return false;
  }

  void memoStore(unsigned Rule, size_t AbsLo, size_t AbsHi, bool Ok,
                 unsigned Id) {
    Memo.insert(IntervalKey::pack(Rule, AbsLo, AbsHi), memoPack(Id, Ok));
  }

  /// Binds (or rebinds) the blackbox named by \p NameId. Generated
  /// parsers expose this by name through Parser::registerBlackbox.
  void registerBlackbox(unsigned NameId, BlackboxFn Fn, void *User) {
    slotFor(NameId).Fn = Fn;
    slotFor(NameId).User = User;
  }

  /// Binds (or rebinds) the INVERSE of the blackbox named by \p NameId
  /// (Parser::registerBlackboxInverse). Only printTree consults it.
  void registerBlackboxInverse(unsigned NameId, BlackboxInvFn Fn,
                               void *User) {
    slotFor(NameId).InvFn = Fn;
    slotFor(NameId).InvUser = User;
  }

  /// Runs the registered inverse over Decoded[0, DecodedLen). Returns
  /// false when no inverse is registered or the inverse rejects; printing
  /// reports either as a print error (there is no parse to hard-fail).
  bool callBlackboxInverse(unsigned NameId, const unsigned char *Decoded,
                           size_t DecodedLen, long long Value,
                           BlackboxEncOut &Out) const {
    for (const BlackboxSlot &S : Blackboxes)
      if (S.NameId == NameId) {
        if (!S.InvFn)
          return false;
        Out = BlackboxEncOut();
        return S.InvFn(S.InvUser, Decoded, DecodedLen, Value, Out);
      }
    return false;
  }

  /// Runs the registered blackbox over Data[0, Len). Returns 1 on success
  /// and 0 on failure; an unregistered blackbox and a decoder that claims
  /// to have consumed past its slice are HARD failures (they abort the
  /// whole parse, as in the interpreter), a decoder rejection is a soft
  /// one (the enclosing term fails).
  int callBlackbox(unsigned NameId, const unsigned char *Data, size_t Len,
                   BlackboxOut &Out) {
    for (const BlackboxSlot &S : Blackboxes)
      if (S.NameId == NameId) {
        if (!S.Fn)
          break; // inverse-only slot: the forward direction is unbound
        Out = BlackboxOut();
        if (!S.Fn(S.User, Data, Len, Out))
          return 0;
        if (Out.End < 0 ||
            static_cast<unsigned long long>(Out.End) > Len) {
          noteFail(NameId, static_cast<long long>(Data - Base));
          hardFail();
          return 0;
        }
        return 1;
      }
    noteFail(NameId, static_cast<long long>(Data - Base));
    hardFail();
    return 0;
  }

  const unsigned char *base() const { return Base; }
  Node *node(unsigned Id) { return &Objs[Id]; }
  const Node *node(unsigned Id) const { return &Objs[Id]; }
  size_t nodeCount() const { return Objs.size(); }

  inline struct Frame &frameAt(size_t Depth);

  std::vector<unsigned> &elemScratch(size_t Level) {
    if (ElemScratch.size() <= Level)
      ElemScratch.resize(Level + 1);
    return ElemScratch[Level];
  }
  size_t enterArray() {
    size_t Level = ArrayNest++;
    elemScratch(Level).clear();
    return Level;
  }
  void leaveArray() { --ArrayNest; }

  /// Pooled per-level records of flattened linear-recursive rules. Shared
  /// across rules and re-entrant: each activation remembers its base index
  /// and resizes back to it on every exit path.
  std::vector<FlatLevel> &flatLevels() { return FlatLevels; }
  /// Pooled storage for the node ids of prefix child nonterminals parsed
  /// on the way down a flattened rule (a static count per level, so a
  /// per-activation base index addresses them).
  std::vector<unsigned> &flatPrefixKids() { return FlatKids; }
  /// The step machine's pooled task stack (runMachine).
  std::vector<Task> &stepTasks() { return Steps; }

  /// Freezes a frame's scratch env + child ids into the arena as a node.
  inline unsigned freeze(struct Frame &F, unsigned NameId);

  unsigned leaf(const unsigned char *Data, size_t Len, long long Off,
                bool Opaque) {
    Node N;
    N.Kind = Node::KLeaf;
    N.C = this;
    N.Data = Data;
    N.Len = Len;
    N.Off = Off;
    N.Opaque = Opaque;
    return add(N);
  }

  unsigned array(unsigned ElemNameId, const std::vector<unsigned> &Ids) {
    Node N;
    N.Kind = Node::KArray;
    N.C = this;
    N.NameId = ElemNameId;
    N.Name = name(ElemNameId);
    N.KidIds = A.copyArray(Ids.data(), Ids.size());
    N.NumKids = static_cast<unsigned>(Ids.size());
    return add(N);
  }

  /// Lazy shifted view of a finished subtree (T-NTSucc): the frozen env
  /// and child arrays are SHARED with the base node and only the delta is
  /// recorded; start/end resolve shifted at read time (Node::getById).
  /// A zero delta needs no view at all — the base node is its own view —
  /// and shifting an existing view composes the deltas, so memoized
  /// subtrees can be re-anchored under any number of parents without ever
  /// copying an environment.
  unsigned shifted(unsigned SubId, long long Delta) {
    if (Delta == 0)
      return SubId;
    Node N = Objs[SubId]; // copy first: add() may grow the vector
    N.Shift += Delta;
    return add(N);
  }

  /// The parent-side view of a finished subtree (childSpan defaults).
  void childSpanOf(unsigned SubId, long long SubEoi, long long &BStart,
                   long long &BEnd) const {
    const Node &N = Objs[SubId];
    long long S = 0, E = 0;
    bool HasS = N.getById(IdStart, S);
    bool HasE = N.getById(IdEnd, E);
    childSpan(HasS, S, HasE, E, SubEoi, BStart, BEnd);
  }

  /// Leaf over an arena-owned copy of \p Data (blackbox output bytes,
  /// whose lifetime ends with the callback's next invocation).
  unsigned leafCopy(const unsigned char *Data, size_t Len, long long Off) {
    return leaf(A.copyArray(Data, Len), Len, Off, /*Opaque=*/false);
  }

  /// The tree a successful blackbox term contributes, mirroring the
  /// interpreter's execBlackbox byte for byte: attributes val/start/end
  /// (an empty consumption reads as the untouched span [sub-EOI, 0) in
  /// the parent's coordinates), plus one Leaf child copying any decoded
  /// output. Counts as a frozen node, as in InterpStats::NodesCreated.
  unsigned blackboxNode(unsigned NameId, unsigned ValId,
                        const BlackboxOut &BB, long long Lo, long long Hi) {
    AttrSlot S[3];
    S[0] = AttrSlot{ValId, BB.Value};
    if (BB.End > 0) {
      S[1] = AttrSlot{IdStart, Lo};
      S[2] = AttrSlot{IdEnd, Lo + BB.End};
    } else {
      S[1] = AttrSlot{IdStart, Hi - Lo};
      S[2] = AttrSlot{IdEnd, Lo};
    }
    unsigned Kids[1] = {0};
    unsigned NumKids = 0;
    if (BB.OutputLen) {
      Kids[0] = leafCopy(BB.Output, BB.OutputLen, 0);
      NumKids = 1;
    }
    Node N;
    N.Kind = Node::KNode;
    N.C = this;
    N.NameId = NameId;
    N.Name = name(NameId);
    N.Slots = A.copyArray(S, 3);
    N.NumSlots = 3;
    N.KidIds = A.copyArray(Kids, NumKids);
    N.NumKids = NumKids;
    N.Bb = true; // printTree re-encodes this node through the inverse hook
    ++Frozen;
    return add(N);
  }

private:
  unsigned add(const Node &N) {
    Objs.push_back(N);
    return static_cast<unsigned>(Objs.size() - 1);
  }

  struct BlackboxSlot {
    unsigned NameId = 0;
    BlackboxFn Fn = nullptr;
    void *User = nullptr;
    BlackboxInvFn InvFn = nullptr;
    void *InvUser = nullptr;
  };

  BlackboxSlot &slotFor(unsigned NameId) {
    for (BlackboxSlot &S : Blackboxes)
      if (S.NameId == NameId)
        return S;
    Blackboxes.push_back(BlackboxSlot());
    Blackboxes.back().NameId = NameId;
    return Blackboxes.back();
  }

  Arena A;
  std::vector<Node> Objs;
  FlatIntervalMap<unsigned> Memo; ///< memoPack'd outcomes

  std::vector<BlackboxSlot> Blackboxes;
  std::vector<std::unique_ptr<struct Frame>> Frames;
  std::vector<std::vector<unsigned>> ElemScratch;
  std::vector<FlatLevel> FlatLevels;
  std::vector<unsigned> FlatKids;
  std::vector<Task> Steps;
  size_t ArrayNest = 0;
  bool Hard = false;
  long long FailName = -1;
  long long FailOff = -1;
  size_t Frozen = 0;
  size_t Hits = 0;
  size_t Misses = 0;
  long long Peak = 0;
  long long DepthLim = MaxDepth;
  const unsigned char *Base = nullptr;
  const char *const *NamesTab = nullptr;
  size_t NumNames = 0;
};

/// Per-alternative execution state: the scratch environment E, the ids of
/// already-built children, and per-term touch records — the generated twin
/// of the interpreter's InterpState::Frame. Frames are pooled per
/// recursion depth and reused across alternatives and parses.
struct Frame {
  const unsigned char *Base = nullptr;
  size_t Lo = 0, Hi = 0; ///< local input = Base[Lo, Hi)
  Ctx *C = nullptr;
  Frame *Lexical = nullptr; ///< enclosing frame for where-clause rules
  std::vector<AttrSlot> E;
  SlotIndex EIx; ///< O(1) id -> E position, regenerated per alternative
  /// start/end live in dedicated fields, not E slots: updStartEnd touches
  /// them on every byte-touching term, so the hottest two keys skip the
  /// index entirely. freeze() folds them back into the frozen env.
  bool HasStart = false, HasEnd = false;
  long long StartV = 0, EndV = 0;
  std::vector<unsigned> Kids;
  /// Per-term touch records, invalidated per alternative by generation
  /// stamp (a rule with many failing alternatives — every Digit-style
  /// dispatch — pays O(1) per attempt instead of refilling the array).
  struct Rec {
    unsigned Gen = 0;
    long long Start = 0;
    long long End = 0;
  };
  std::vector<Rec> Recs;
  unsigned RecGen = 0;

  void beginAlt(const unsigned char *B, size_t L, size_t H, Frame *Lex,
                size_t NumTerms) {
    Base = B;
    Lo = L;
    Hi = H;
    Lexical = Lex;
    E.clear();
    EIx.clear(); // O(1): generation bump, not a sweep
    HasStart = HasEnd = false;
    Kids.clear();
    if (Recs.size() < NumTerms)
      Recs.resize(NumTerms);
    if (++RecGen == 0) {
      // Generation wrap (once per 2^32 alternatives): ancient stamps
      // could alias the restarted counter, so pay one full sweep.
      for (Rec &R : Recs)
        R.Gen = 0;
      RecGen = 1;
    }
  }

  long long eoi() const { return static_cast<long long>(Hi - Lo); }

  // Own-frame environment (updStartEnd's EnvT surface). Attribute ids are
  // dense name-table indices, so a SlotIndex makes every get/set O(1)
  // where attribute-heavy rules used to pay a linear scan per access;
  // the two hottest ids (start/end) bypass even that through fields.
  bool getAttr(unsigned Id, long long &Out) const {
    if (Id <= IdEnd) {
      if (Id == IdStart ? !HasStart : !HasEnd)
        return false;
      Out = Id == IdStart ? StartV : EndV;
      return true;
    }
    uint32_t I = 0;
    if (!EIx.lookup(Id, I))
      return false;
    Out = E[I].V;
    return true;
  }
  void setAttr(unsigned Id, long long V) {
    if (Id <= IdEnd) {
      (Id == IdStart ? HasStart : HasEnd) = true;
      (Id == IdStart ? StartV : EndV) = V;
      return;
    }
    uint32_t I = 0;
    if (EIx.lookup(Id, I)) {
      E[I].V = V;
      return;
    }
    EIx.record(Id, static_cast<uint32_t>(E.size()));
    E.push_back(AttrSlot{Id, V});
  }
  void eraseAttr(unsigned Id) {
    if (Id <= IdEnd) {
      (Id == IdStart ? HasStart : HasEnd) = false;
      return;
    }
    uint32_t I = 0;
    if (!EIx.lookup(Id, I))
      return;
    E.erase(E.begin() + static_cast<long>(I));
    EIx.forget(Id);
    for (uint32_t J = I; J < E.size(); ++J)
      EIx.record(E[J].Id, J); // reseat the slots the erase slid down
  }

  /// Lexical-chain attribute lookup (sigma of Figure 8).
  bool attr(unsigned Id, long long &Out) const {
    for (const Frame *F = this; F; F = F->Lexical)
      if (F->getAttr(Id, Out))
        return true;
    return false;
  }

  /// Most recent child node named \p NameId along the lexical chain.
  Node *findNode(unsigned NameId) const {
    for (const Frame *F = this; F; F = F->Lexical)
      for (size_t I = F->Kids.size(); I-- > 0;) {
        Node *N = C->node(F->Kids[I]);
        if (N->Kind == Node::KNode && N->NameId == NameId)
          return N;
      }
    return nullptr;
  }

  /// Most recent child array with elements named \p NameId.
  Node *findArray(unsigned NameId) const {
    for (const Frame *F = this; F; F = F->Lexical)
      for (size_t I = F->Kids.size(); I-- > 0;) {
        Node *N = C->node(F->Kids[I]);
        if (N->Kind == Node::KArray && N->NameId == NameId)
          return N;
      }
    return nullptr;
  }

  void rec(unsigned TermIdx, long long Start, long long End) {
    Recs[TermIdx] = Rec{RecGen, Start, End};
  }
  bool termEnd(unsigned TermIdx, long long &Out) const {
    if (TermIdx >= Recs.size() || Recs[TermIdx].Gen != RecGen)
      return false;
    Out = Recs[TermIdx].End;
    return true;
  }
};

inline Frame &Ctx::frameAt(size_t Depth) {
  while (Frames.size() <= Depth)
    Frames.push_back(std::unique_ptr<Frame>(new Frame()));
  Frame &F = *Frames[Depth];
  F.C = this;
  return F;
}

inline unsigned Ctx::freeze(Frame &F, unsigned NameId) {
  // Fold the frame's start/end fields back into the frozen env (the
  // canonical dump sorts attributes, so their position is immaterial).
  size_t Extra = (F.HasStart ? 1u : 0u) + (F.HasEnd ? 1u : 0u);
  size_t Num = F.E.size() + Extra;
  AttrSlot *Slots = nullptr;
  if (Num) {
    Slots = A.makeArray<AttrSlot>(Num);
    if (!F.E.empty())
      std::memcpy(Slots, F.E.data(), sizeof(AttrSlot) * F.E.size());
    size_t At = F.E.size();
    if (F.HasStart)
      Slots[At++] = AttrSlot{IdStart, F.StartV};
    if (F.HasEnd)
      Slots[At++] = AttrSlot{IdEnd, F.EndV};
  }
  Node N;
  N.Kind = Node::KNode;
  N.C = this;
  N.NameId = NameId;
  N.Name = name(NameId);
  N.Slots = Slots;
  N.NumSlots = static_cast<unsigned>(Num);
  N.KidIds = A.copyArray(F.Kids.data(), F.Kids.size());
  N.NumKids = static_cast<unsigned>(F.Kids.size());
  ++Frozen;
  return add(N);
}

inline size_t ChildView::size() const {
  size_t Count = 0;
  for (unsigned I = 0; I < N; ++I)
    if (C->node(Ids[I])->Kind == Node::KNode)
      ++Count;
  return Count;
}

inline NodeRef ChildView::operator[](size_t I) const {
  for (unsigned K = 0; K < N; ++K) {
    Node *Kid = C->node(Ids[K]);
    if (Kid->Kind == Node::KNode && I-- == 0)
      return NodeRef{Kid};
  }
  return NodeRef{};
}

inline bool Node::get(const char *K, long long &Out) const {
  for (unsigned I = 0; I < NumSlots; ++I)
    if (C && !std::strcmp(C->name(Slots[I].Id), K)) {
      Out = slotValue(I);
      return true;
    }
  return false;
}

inline Node *Node::kid(size_t I) const { return C->node(KidIds[I]); }

//===----------------------------------------------------------------------===//
// The step machine: an explicit work-stack trampoline over resumable rule
// functions, used for general recursion (mutual cycles, multiple
// self-alternatives, self under array/switch) that the grammar-lowering
// flattener cannot turn into a loop. Grammar recursion depth becomes task
// stack height — heap, not C stack — so EngineOptions::MaxDepth is a
// genuine resource limit, not a proxy for the OS stack size.
//===----------------------------------------------------------------------===//

/// Runs \p StartRule over [AbsLo, AbsHi) to completion. \p Fns is indexed
/// by rule id (null for rules the machine never runs — the classifier
/// guarantees step rules are entered only from here). Depth accounting
/// matches the interpreter exactly: a push is refused (hard failure) once
/// the stack already holds depthLimit() tasks, and the peak is noted
/// after each push.
inline bool runMachine(Ctx &C, const StepFn *Fns, const unsigned *NameIds,
                       unsigned StartRule, size_t AbsLo, size_t AbsHi,
                       unsigned &Out) {
  std::vector<Task> &S = C.stepTasks();
  S.clear();
  if (static_cast<long long>(S.size()) >= C.depthLimit()) {
    C.noteFail(NameIds[StartRule], static_cast<long long>(AbsLo));
    C.hardFail();
    return false;
  }
  S.push_back(Task());
  S.back().Rule = StartRule;
  S.back().AbsLo = AbsLo;
  S.back().AbsHi = AbsHi;
  C.notePeak(static_cast<long long>(S.size()));
  while (!S.empty()) {
    Task &T = S.back();
    int R = Fns[T.Rule](C, T);
    if (C.hardFailed()) {
      S.clear();
      return false;
    }
    if (R == StepCall) {
      if (static_cast<long long>(S.size()) >= C.depthLimit()) {
        C.noteFail(NameIds[T.CallRule], static_cast<long long>(T.CallLo));
        C.hardFail();
        S.clear();
        return false;
      }
      Task Child;
      Child.Rule = T.CallRule;
      Child.Idx = S.size();
      Child.AbsLo = T.CallLo;
      Child.AbsHi = T.CallHi;
      Child.LexTask = T.CallLexSelf ? static_cast<int>(T.Idx) : -1;
      S.push_back(Child); // invalidates T
      C.notePeak(static_cast<long long>(S.size()));
      continue;
    }
    bool Ok = R == StepDone;
    unsigned NodeId = T.Out;
    S.pop_back();
    if (S.empty()) {
      Out = NodeId;
      return Ok;
    }
    S.back().ChildOk = Ok ? 1 : 0;
    S.back().ChildNode = NodeId;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Canonical tree dump — the differential-testing contract. The interpreter
// side (tests/differential_test.cpp) renders its ParseTree in exactly this
// format; any byte difference is a semantic divergence.
//===----------------------------------------------------------------------===//

/// Iterative preorder: tree depth equals grammar recursion depth, so a
/// megabyte-deep linear spine must not recurse on the C stack here either.
inline void dumpTreeInto(const Node *Root, int Indent, std::string &Out) {
  std::vector<std::pair<const Node *, int>> Stack;
  Stack.emplace_back(Root, Indent);
  std::vector<std::pair<std::string, long long>> Attrs;
  while (!Stack.empty()) {
    const Node *N = Stack.back().first;
    int Ind = Stack.back().second;
    Stack.pop_back();
    Out.append(static_cast<size_t>(Ind) * 2, ' ');
    switch (N->Kind) {
    case Node::KLeaf:
      Out += "Leaf off=" + std::to_string(N->Off) +
             " len=" + std::to_string(N->Len) +
             " opaque=" + (N->Opaque ? "1" : "0") + "\n";
      continue;
    case Node::KArray:
      Out += "Array " + std::string(N->Name) + " x" +
             std::to_string(N->NumKids) + "\n";
      break;
    case Node::KNode: {
      Out += "Node " + std::string(N->Name) + " {";
      Attrs.clear();
      for (unsigned I = 0; I < N->NumSlots; ++I)
        Attrs.emplace_back(N->C->name(N->Slots[I].Id), N->slotValue(I));
      std::sort(Attrs.begin(), Attrs.end());
      for (size_t I = 0; I < Attrs.size(); ++I) {
        if (I)
          Out += ", ";
        Out += Attrs[I].first + "=" + std::to_string(Attrs[I].second);
      }
      Out += "}\n";
      break;
    }
    }
    for (unsigned I = N->NumKids; I-- > 0;)
      Stack.emplace_back(N->kid(I), Ind + 1);
  }
}

inline std::string dumpTree(const Node *Root) {
  std::string Out;
  if (Root)
    dumpTreeInto(Root, 0, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Cross-module tree extraction. GenEngine (codegen/GenEngine.cpp) compiles
// a generated parser into a shared object and dlopens it; the parsed tree
// must then cross the .so boundary WITHOUT the host dereferencing the
// module's Node structures (two separately compiled translation units
// should share as little layout as possible). The walk therefore runs
// INSIDE the emitting module — visitTree below is embedded with the rest
// of this header — and streams the tree through the C-style callback
// table TreeVisitorC, whose layout (plain function pointers + AttrSlot,
// both standard-layout) is the entire cross-module contract.
//===----------------------------------------------------------------------===//

/// Callback table for visitTree. Attribute slots arrive RAW (base-local
/// coordinates); the node's lazy T-NTSucc delta is delivered separately
/// as \p Shift, so a host rebuilding the tree can reproduce the shared-
/// base-plus-view structure (or eagerly apply the shift — its choice).
/// \p IsBlackbox mirrors Node::Bb: such a node's leaf child carries
/// DECODED bytes living in the module's arena, which the host must copy
/// (ordinary leaves alias the parsed input buffer, which the host owns).
struct TreeVisitorC {
  void *User = nullptr;
  void (*BeginNode)(void *User, unsigned NameId, long long Shift,
                    int IsBlackbox, const AttrSlot *Slots,
                    unsigned NumSlots) = nullptr;
  void (*EndNode)(void *User) = nullptr;
  void (*BeginArray)(void *User, unsigned ElemNameId,
                     unsigned NumElems) = nullptr;
  void (*EndArray)(void *User) = nullptr;
  void (*Leaf)(void *User, const unsigned char *Data,
               unsigned long long Len, long long Off, int Opaque) = nullptr;
};

/// Streams \p N depth-first through \p V (children between Begin/End).
/// Shared subtrees (memoized nodes re-anchored under several parents as
/// lazy views) are visited once per occurrence — the stream is the tree
/// AS OBSERVED, exactly what the canonical dump renders.
inline void visitTree(const Node *Root, const TreeVisitorC &V) {
  // Iterative with an explicit cursor per level (Begin/End events bracket
  // the children): tree depth equals grammar recursion depth, which may
  // be far beyond what the C stack holds.
  struct Item {
    const Node *N;
    unsigned NextKid;
  };
  std::vector<Item> Stack;
  Stack.push_back(Item{Root, 0});
  while (!Stack.empty()) {
    Item &It = Stack.back();
    const Node *N = It.N;
    if (It.NextKid == 0) {
      if (N->Kind == Node::KLeaf) {
        V.Leaf(V.User, N->Data, N->Len, N->Off, N->Opaque ? 1 : 0);
        Stack.pop_back();
        continue;
      }
      if (N->Kind == Node::KArray)
        V.BeginArray(V.User, N->NameId, N->NumKids);
      else
        V.BeginNode(V.User, N->NameId, N->Shift, N->Bb ? 1 : 0, N->Slots,
                    N->NumSlots);
    }
    if (It.NextKid < N->NumKids) {
      unsigned K = It.NextKid++;
      Stack.push_back(Item{N->kid(K), 0}); // invalidates It
      continue;
    }
    if (N->Kind == Node::KArray)
      V.EndArray(V.User);
    else
      V.EndNode(V.User);
    Stack.pop_back();
  }
}

//===----------------------------------------------------------------------===//
// Tree serializer — the generated twin of serialize/Printer.cpp, embedded
// into every generated parser so both execution modes can prove
// parse(print(tree)) round-trips. The walk runs T-NTSucc's coordinate
// model backwards: each child edge contributes its lazy Shift delta, the
// accumulated origin places every leaf absolutely, leaves copy their
// zero-copy windows, and blackbox nodes (Node::Bb) re-emit their consumed
// window through the inverse hook (Ctx::callBlackboxInverse). Overlapping
// writes (memoized subtrees re-anchored under several parents) must agree
// byte-for-byte; uncovered bytes are gaps — fatal in strict mode, filled
// from a caller-supplied background otherwise.
//===----------------------------------------------------------------------===//

struct PrintOptions {
  /// Fail on any uncovered byte. When false, gaps fill from Background
  /// (whose length fixes the output size).
  bool Strict = true;
  const unsigned char *Background = nullptr;
  size_t BackgroundLen = 0;
};

struct PrintOut {
  std::vector<unsigned char> Bytes;
  size_t CoveredBytes = 0;
  size_t GapBytes = 0;
  size_t OverlapBytes = 0;
  size_t BlackboxBytes = 0;
  std::string Error; ///< set when printTree returns false
};

class TreePrinter {
public:
  TreePrinter(const PrintOptions &O, PrintOut &R) : O(O), R(R) {
    if (!O.Strict) {
      R.Bytes.assign(O.BackgroundLen, 0);
      Covered.assign(O.BackgroundLen, 0);
    }
  }

  bool run(const Node *Root) {
    if (!Root)
      return fail("cannot print a null tree");
    if (Root->Kind == Node::KArray)
      return fail("cannot print a bare array root");
    if (Root->Kind == Node::KLeaf)
      return writeBytes(Root->Off, Root->Data, Root->Len);
    if (!walkNode(Root, Root->Shift))
      return false;
    return finish();
  }

private:
  const PrintOptions &O;
  PrintOut &R;
  std::vector<unsigned char> Covered;

  bool fail(const std::string &Msg) {
    R.Error = Msg;
    return false;
  }

  bool writeBytes(long long Abs, const unsigned char *Data, size_t Len) {
    if (Abs < 0)
      return fail("print placed bytes at negative offset " +
                  std::to_string(Abs));
    size_t At = static_cast<size_t>(Abs);
    if (At + Len > R.Bytes.size()) {
      R.Bytes.resize(At + Len, 0);
      Covered.resize(At + Len, 0);
    }
    for (size_t I = 0; I < Len; ++I) {
      if (Covered[At + I]) {
        if (R.Bytes[At + I] != Data[I])
          return fail("overlapping writes disagree at output offset " +
                      std::to_string(At + I));
        ++R.OverlapBytes;
        continue;
      }
      R.Bytes[At + I] = Data[I];
      Covered[At + I] = 1;
      ++R.CoveredBytes;
    }
    return true;
  }

  /// Raw (base-local) start/end of \p N: the frozen slots hold base
  /// coordinates; Shift maps them into the parent frame, which is not
  /// the frame leaf offsets under N live in.
  static bool localSpan(const Node *N, long long &S, long long &E) {
    bool HasS = false, HasE = false;
    for (unsigned I = 0; I < N->NumSlots; ++I) {
      if (N->Slots[I].Id == IdStart) {
        S = N->Slots[I].V;
        HasS = true;
      } else if (N->Slots[I].Id == IdEnd) {
        E = N->Slots[I].V;
        HasE = true;
      }
    }
    return HasS && HasE;
  }

  bool writeBlackbox(const Node *N, long long BaseOrigin) {
    long long S = 0, E = 0, Val = 0;
    bool HasVal = false;
    for (unsigned I = 0; I < N->NumSlots; ++I)
      if (N->Slots[I].Id != IdStart && N->Slots[I].Id != IdEnd) {
        Val = N->Slots[I].V;
        HasVal = true;
      }
    std::string Name(N->Name ? N->Name : "?");
    if (!localSpan(N, S, E) || !HasVal)
      return fail("blackbox node '" + Name +
                  "' lacks val/start/end attributes");

    const unsigned char *Decoded = nullptr;
    size_t DecodedLen = 0;
    for (unsigned I = 0; I < N->NumKids; ++I) {
      const Node *K = N->kid(I);
      if (K->Kind == Node::KLeaf) {
        Decoded = K->Data;
        DecodedLen = K->Len;
      }
    }

    if (E <= S) {
      // Untouched encoding ([sub-EOI, 0)): nothing was consumed.
      if (DecodedLen)
        return fail("blackbox node '" + Name +
                    "' consumed no bytes but has decoded output");
      return true;
    }

    BlackboxEncOut Enc;
    if (!N->C->callBlackboxInverse(N->NameId, Decoded, DecodedLen, Val,
                                   Enc))
      return fail("blackbox inverse '" + Name +
                  "' is not registered or failed");
    if (static_cast<long long>(Enc.Len) != E - S)
      return fail("blackbox inverse '" + Name + "' produced " +
                  std::to_string(Enc.Len) + " bytes for a window of " +
                  std::to_string(E - S));
    R.BlackboxBytes += Enc.Len;
    return writeBytes(BaseOrigin + S, Enc.Data, Enc.Len);
  }

  /// \p BaseOrigin: absolute position of N's base-local frame origin
  /// (parent origin + this edge's Shift). Iterative preorder (children
  /// pushed reversed to keep the left-to-right write order): tree depth
  /// equals grammar recursion depth, which may be far beyond what the C
  /// stack holds.
  bool walkNode(const Node *Root, long long RootOrigin) {
    std::vector<std::pair<const Node *, long long>> Stack;
    Stack.emplace_back(Root, RootOrigin);
    while (!Stack.empty()) {
      const Node *N = Stack.back().first;
      long long BaseOrigin = Stack.back().second;
      Stack.pop_back();
      if (N->Bb) {
        if (!writeBlackbox(N, BaseOrigin))
          return false;
        continue;
      }
      if (N->Kind == Node::KLeaf) {
        if (!writeBytes(BaseOrigin + N->Off, N->Data, N->Len))
          return false;
        continue;
      }
      for (unsigned I = N->NumKids; I-- > 0;) {
        const Node *K = N->kid(I);
        switch (K->Kind) {
        case Node::KLeaf:
          // Deferred like the node children so writes stay in DFS order.
          Stack.emplace_back(K, BaseOrigin);
          break;
        case Node::KNode:
          Stack.emplace_back(K, BaseOrigin + K->Shift);
          break;
        case Node::KArray:
          // Arrays carry no shift of their own; element views are shifted
          // relative to this node's base frame.
          for (unsigned J = K->NumKids; J-- > 0;)
            Stack.emplace_back(K->kid(J), BaseOrigin + K->kid(J)->Shift);
          break;
        }
      }
    }
    return true;
  }

  bool finish() {
    if (O.Strict) {
      for (size_t I = 0; I < R.Bytes.size(); ++I)
        if (!Covered[I])
          return fail("no leaf covers output offset " + std::to_string(I) +
                      " (tree is not print-exact)");
      return true;
    }
    if (R.Bytes.size() > O.BackgroundLen)
      return fail("print wrote past the background (" +
                  std::to_string(R.Bytes.size()) + " > " +
                  std::to_string(O.BackgroundLen) + " bytes)");
    for (size_t I = 0; I < R.Bytes.size(); ++I) {
      if (Covered[I])
        continue;
      R.Bytes[I] = O.Background[I];
      ++R.GapBytes;
    }
    return true;
  }
};

/// Serializes \p Root back into bytes; false leaves the diagnostic in
/// \p R.Error. Blackbox formats must have registered inverses
/// (Parser::registerBlackboxInverse) for every blackbox the tree reached.
inline bool printTree(const Node *Root, const PrintOptions &O,
                      PrintOut &R) {
  return TreePrinter(O, R).run(Root);
}

} // namespace ipg_rt

#endif // IPG_SUPPORT_GENRUNTIME_H
