//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ---------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal reimplementation of LLVM's hand-rolled RTTI templates. A class
/// opts in by providing `static bool classof(const Base *)`.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_CASTING_H
#define IPG_SUPPORT_CASTING_H

#include <cassert>

namespace ipg {

/// Returns true if \p Val is an instance of \p To (or of one of \p Tos).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename Second, typename... Rest, typename From>
bool isa(const From *Val) {
  return isa<To>(Val) || isa<Second, Rest...>(Val);
}

/// Checked cast: asserts that \p Val really is a \p To.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checking cast: returns null when \p Val is not a \p To.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

} // namespace ipg

#endif // IPG_SUPPORT_CASTING_H
