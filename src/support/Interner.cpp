//===- support/Interner.cpp -----------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Interner.h"

#include <string>
#include <string_view>

using namespace ipg;

Symbol StringInterner::intern(std::string_view Name) {
  auto It = Ids.find(std::string(Name));
  if (It != Ids.end())
    return It->second;
  Symbol S = static_cast<Symbol>(Names.size());
  Names.emplace_back(Name);
  Ids.emplace(std::string(Name), S);
  return S;
}

Symbol StringInterner::lookup(std::string_view Name) const {
  auto It = Ids.find(std::string(Name));
  return It == Ids.end() ? InvalidSymbol : It->second;
}
