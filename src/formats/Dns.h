//===- formats/Dns.h - DNS packets: grammar, synthesizer, extractor -*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DNS response packets (one of the two network formats of Section 7).
/// Names are chains of length-prefixed labels; answer records may start
/// with a compression pointer (0xC0-prefixed) instead of a literal name.
/// The grammar parses one-hop pointers (the encoding our synthesizer — and
/// virtually every single-question responder — emits: answers point at the
/// question name); multi-hop pointer chasing is done in the extractor,
/// which follows arbitrary chains.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_FORMATS_DNS_H
#define IPG_FORMATS_DNS_H

#include "analysis/AttributeCheck.h"
#include "runtime/ParseTree.h"
#include "support/Bytes.h"
#include "support/Result.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ipg::formats {

extern const char DnsGrammarText[];

struct DnsSynthSpec {
  std::string QName = "www.example.com";
  size_t NumAnswers = 4;
  size_t RDataSize = 4; ///< bytes per answer rdata (4 = A record)
  uint64_t Seed = 1;
};

struct DnsModel {
  uint16_t Id = 0;
  uint16_t AnswerCount = 0;
  std::vector<std::vector<uint8_t>> RData;
};

std::vector<uint8_t> synthesizeDns(const DnsSynthSpec &Spec,
                                   DnsModel *Model = nullptr);

struct DnsParsed {
  uint16_t Id = 0;
  uint16_t QdCount = 0;
  uint16_t AnCount = 0;
  std::string QName; ///< dotted form
  std::vector<uint16_t> AnswerTypes;
  std::vector<uint16_t> RDataLengths;
};

Expected<DnsParsed> extractDns(const TreePtr &Tree, const Grammar &G,
                               ByteSpan Packet);

Expected<LoadResult> loadDnsGrammar();

} // namespace ipg::formats

#endif // IPG_FORMATS_DNS_H
