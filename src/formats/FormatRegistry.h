//===- formats/FormatRegistry.h - All evaluated formats ---------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One registry over the seven formats of the paper's evaluation (ZIP, GIF,
/// PE, ELF, PDF subset, IPv4+UDP, DNS), used by the spec-size and
/// implicit-interval benchmarks (Tables 1 and 2) and by tests that sweep
/// every format.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_FORMATS_FORMATREGISTRY_H
#define IPG_FORMATS_FORMATREGISTRY_H

#include "analysis/AttributeCheck.h"
#include "runtime/Blackbox.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ipg::formats {

struct FormatInfo {
  std::string Name;
  const char *GrammarText;
  bool NeedsBlackbox;
  /// Deterministic valid-by-construction sample input at the given scale
  /// (sampleInput dispatches through this, so a new format cannot be
  /// registered without deciding how to synthesize its corpus).
  std::vector<uint8_t> (*Sample)(unsigned Scale);
};

/// The seven formats, in Table 1's column order.
const std::vector<FormatInfo> &allFormats();

/// Loads and fully checks the named format's grammar.
Expected<LoadResult> loadFormatGrammar(const std::string &Name);

/// A registry with the standard blackboxes (the MiniZlib `inflate`).
BlackboxRegistry standardBlackboxes();

/// Source-level support for running a *generated* parser of a blackbox
/// format: what a driver must compile and call so the generated code can
/// resolve the format's blackboxes through the ipg_rt registration hook.
/// The bridges adapt the exact decoder implementations the interpreter's
/// standardBlackboxes() uses (compiled from the same translation units),
/// so the differential harness compares one decoder against itself.
struct GenBlackboxBridge {
  /// C++ source appended AFTER the generated parser: includes the decoder
  /// headers and defines
  ///   template <class ParserT> void ipgRegisterBlackboxes(ParserT &P);
  /// which the driver calls on its parser before the first parse().
  const char *DriverSource;
  /// Extra translation units the child compile needs, space-separated,
  /// relative to the repository's src/ directory (compile with -I<src>).
  const char *ExtraSources;
};

/// The bridge for the named format, or nullptr when its grammar needs no
/// blackboxes.
const GenBlackboxBridge *genBlackboxBridge(const std::string &Name);

/// A deterministic valid-by-construction sample input for the named
/// format (the same synthesizer family the corpus benchmarks use).
/// \p Scale linearly grows the repeated structures (entries, sections,
/// objects, payload bytes) for input-size sweeps; Scale 0 is treated as
/// 1. Returns an empty vector for unknown format names. Shared by the
/// differential harness (tests/differential_test.cpp) and the codegen
/// benchmark (bench/bench_codegen.cpp).
std::vector<uint8_t> sampleInput(const std::string &Name,
                                 unsigned Scale = 1);

/// Non-comment, non-blank lines of a grammar text (Table 1's metric).
size_t grammarLineCount(const char *Text);

} // namespace ipg::formats

#endif // IPG_FORMATS_FORMATREGISTRY_H
