//===- formats/FormatRegistry.h - All evaluated formats ---------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One registry over the seven formats of the paper's evaluation (ZIP, GIF,
/// PE, ELF, PDF subset, IPv4+UDP, DNS), used by the spec-size and
/// implicit-interval benchmarks (Tables 1 and 2) and by tests that sweep
/// every format.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_FORMATS_FORMATREGISTRY_H
#define IPG_FORMATS_FORMATREGISTRY_H

#include "analysis/AttributeCheck.h"
#include "codegen/GenEngine.h"
#include "runtime/Blackbox.h"
#include "runtime/Engine.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ipg::formats {

struct FormatInfo {
  std::string Name;
  const char *GrammarText;
  bool NeedsBlackbox;
  /// Deterministic valid-by-construction sample input at the given scale
  /// (sampleInput dispatches through this, so a new format cannot be
  /// registered without deciding how to synthesize its corpus).
  std::vector<uint8_t> (*Sample)(unsigned Scale);
};

/// The seven formats, in Table 1's column order.
const std::vector<FormatInfo> &allFormats();

/// Loads and fully checks the named format's grammar.
Expected<LoadResult> loadFormatGrammar(const std::string &Name);

/// A registry with the standard blackboxes (the MiniZlib `inflate`).
BlackboxRegistry standardBlackboxes();

/// Source-level support for running a *generated* parser of a blackbox
/// format: what a driver must compile and call so the generated code can
/// resolve the format's blackboxes through the ipg_rt registration hook.
/// The bridges adapt the exact decoder implementations the interpreter's
/// standardBlackboxes() uses (compiled from the same translation units),
/// so the differential harness compares one decoder against itself.
struct GenBlackboxBridge {
  /// C++ source appended AFTER the generated parser: includes the decoder
  /// headers and defines
  ///   template <class ParserT> void ipgRegisterBlackboxes(ParserT &P);
  /// which the driver calls on its parser before the first parse().
  const char *DriverSource;
  /// Extra translation units the child compile needs, space-separated,
  /// relative to the repository's src/ directory (compile with -I<src>).
  const char *ExtraSources;
};

/// The bridge for the named format, or nullptr when its grammar needs no
/// blackboxes.
const GenBlackboxBridge *genBlackboxBridge(const std::string &Name);

/// The GenModule build configuration for the named format: default for
/// plain formats, bridge source + decoder translation units for blackbox
/// ones. Used by makeFormatEngine and by ParseService (which compiles
/// ONE module per format and shares it across workers).
GenModuleConfig genModuleConfig(const std::string &Name);

/// A ready-to-parse engine over a named format. The bundle owns what the
/// engine only borrows (the loaded grammar, the interpreter's blackbox
/// registry), so it can be moved around and stored without lifetime
/// bookkeeping — this is the ONE way examples, tests, benches, and
/// ParseService set up an engine. The engine itself remains one-per-thread.
struct FormatEngine {
  std::shared_ptr<LoadResult> Load;
  /// Set for blackbox formats driven by the interpreter; generated
  /// engines bind their blackboxes inside the compiled module instead.
  std::shared_ptr<BlackboxRegistry> Blackboxes;
  std::unique_ptr<Engine> E;

  Engine *operator->() const { return E.get(); }
  Engine &operator*() const { return *E; }
  explicit operator bool() const { return E != nullptr; }
};

/// Loads the named format's grammar and builds an engine of the requested
/// kind over it, wiring blackboxes the right way for that kind
/// (standardBlackboxes() for the in-process interpreter and bytecode VM,
/// the GenBlackboxBridge compiled into the module for generated
/// engines). EngineKind::Generated
/// fails with a diagnostic when no host C++ compiler is available —
/// callers that can fall back should check GenModule::hostCompilerAvailable.
Expected<FormatEngine> makeFormatEngine(const std::string &Name,
                                        EngineKind Kind,
                                        const EngineOptions &Opts = {});

/// A deterministic valid-by-construction sample input for the named
/// format (the same synthesizer family the corpus benchmarks use).
/// \p Scale linearly grows the repeated structures (entries, sections,
/// objects, payload bytes) for input-size sweeps; Scale 0 is treated as
/// 1. Returns an empty vector for unknown format names. Shared by the
/// differential harness (tests/differential_test.cpp) and the codegen
/// benchmark (bench/bench_codegen.cpp).
std::vector<uint8_t> sampleInput(const std::string &Name,
                                 unsigned Scale = 1);

/// Non-comment, non-blank lines of a grammar text (Table 1's metric).
size_t grammarLineCount(const char *Text);

} // namespace ipg::formats

#endif // IPG_FORMATS_FORMATREGISTRY_H
