//===- formats/MiniZlib.cpp -----------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "formats/MiniZlib.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

using namespace ipg;
using namespace ipg::formats;

namespace {
constexpr uint8_t OpLiteral = 0x00;
constexpr uint8_t OpMatch = 0x01;
constexpr uint8_t OpEnd = 0xFF;
constexpr size_t MaxChunk = 255;
constexpr size_t MaxDist = 0xFFFF;
constexpr size_t MinMatch = 4;
} // namespace

std::vector<uint8_t>
ipg::formats::miniZlibCompress(const std::vector<uint8_t> &Data) {
  ByteWriter W;
  W.raw("MZ1");
  W.u32le(Data.size());

  size_t I = 0;
  std::vector<uint8_t> Pending; // literal run being accumulated
  auto FlushLiterals = [&] {
    size_t P = 0;
    while (P < Pending.size()) {
      size_t N = std::min(MaxChunk, Pending.size() - P);
      W.u8(OpLiteral);
      W.u8(static_cast<uint8_t>(N));
      for (size_t K = 0; K < N; ++K)
        W.u8(Pending[P + K]);
      P += N;
    }
    Pending.clear();
  };

  while (I < Data.size()) {
    // Greedy search for a back-reference: try the run-length case
    // (dist 1..8) plus a small window of earlier positions.
    size_t BestLen = 0, BestDist = 0;
    size_t WindowStart = I > MaxDist ? I - MaxDist : 0;
    // Probe a handful of candidate distances; full LZ77 search is not the
    // point of this codec.
    for (size_t Dist = 1; Dist <= 8 && Dist <= I; ++Dist) {
      size_t Len = 0;
      while (I + Len < Data.size() && Len < MaxChunk &&
             Data[I + Len - Dist] == Data[I + Len])
        ++Len;
      if (Len > BestLen) {
        BestLen = Len;
        BestDist = Dist;
      }
    }
    for (size_t Back = 64; Back <= 4096 && I >= Back; Back *= 4) {
      size_t Cand = I - Back;
      if (Cand < WindowStart)
        break;
      size_t Len = 0;
      while (I + Len < Data.size() && Len < MaxChunk &&
             Data[Cand + Len] == Data[I + Len])
        ++Len;
      if (Len > BestLen) {
        BestLen = Len;
        BestDist = Back;
      }
    }
    if (BestLen >= MinMatch) {
      FlushLiterals();
      W.u8(OpMatch);
      W.u8(static_cast<uint8_t>(BestLen));
      W.u16le(BestDist);
      I += BestLen;
      continue;
    }
    Pending.push_back(Data[I]);
    ++I;
  }
  FlushLiterals();
  W.u8(OpEnd);
  return W.take();
}

std::optional<std::vector<uint8_t>>
ipg::formats::miniZlibDecompress(ByteSpan In, size_t &Consumed) {
  if (In.size() < 8 || !In.matchesAt(0, "MZ1"))
    return std::nullopt;
  uint64_t ExpectSize = In.readUnsigned(3, 4, Endian::Little);
  std::vector<uint8_t> Out;
  Out.reserve(ExpectSize);
  size_t I = 7;
  for (;;) {
    if (I >= In.size())
      return std::nullopt; // ran off the stream without a terminator
    uint8_t Op = In[I++];
    if (Op == OpEnd)
      break;
    if (Op == OpLiteral) {
      if (I >= In.size())
        return std::nullopt;
      size_t N = In[I++];
      if (N == 0 || I + N > In.size())
        return std::nullopt;
      for (size_t K = 0; K < N; ++K)
        Out.push_back(In[I + K]);
      I += N;
      continue;
    }
    if (Op == OpMatch) {
      if (I + 3 > In.size())
        return std::nullopt;
      size_t Len = In[I];
      size_t Dist = static_cast<size_t>(In.readUnsigned(I + 1, 2,
                                                        Endian::Little));
      I += 3;
      if (Len == 0 || Dist == 0 || Dist > Out.size())
        return std::nullopt;
      for (size_t K = 0; K < Len; ++K)
        Out.push_back(Out[Out.size() - Dist]);
      continue;
    }
    return std::nullopt; // unknown opcode
  }
  if (Out.size() != ExpectSize)
    return std::nullopt;
  Consumed = I;
  return Out;
}

BlackboxEncodeResult
ipg::formats::miniZlibBlackboxInverse(ByteSpan Decoded, int64_t Value) {
  if (Value < 0 || static_cast<uint64_t>(Value) != Decoded.size())
    return BlackboxEncodeResult::failure();
  BlackboxEncodeResult R;
  R.Ok = true;
  R.Bytes = miniZlibCompress(
      std::vector<uint8_t>(Decoded.data(), Decoded.data() + Decoded.size()));
  return R;
}

BlackboxResult ipg::formats::miniZlibBlackbox(ByteSpan In) {
  size_t Consumed = 0;
  auto Out = miniZlibDecompress(In, Consumed);
  if (!Out)
    return BlackboxResult::failure();
  BlackboxResult R;
  R.Ok = true;
  R.Value = static_cast<int64_t>(Out->size());
  R.End = Consumed;
  R.Output = std::move(*Out);
  return R;
}
