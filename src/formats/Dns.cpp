//===- formats/Dns.cpp ----------------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "formats/Dns.h"

#include "support/Casting.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

using namespace ipg;
using namespace ipg::formats;

// The header's counts drive the record list; the record list is a chained
// recursion whose count must equal the header's ANCOUNT. A name is either
// a compression pointer (top two bits set) or a label chain ended by a
// zero byte.
const char ipg::formats::DnsGrammarText[] = R"IPG(
DNS -> Hdr[12]
       check(Hdr.qd = 1)
       Name
       QFix[4]
       RRs
       check(RRs.count = Hdr.an) ;

Hdr -> raw[12]
       {id = u16be(0)} {flags = u16be(2)} {qd = u16be(4)} {an = u16be(6)}
       {ns = u16be(8)} {ar = u16be(10)} ;

QFix -> raw[4] {qtype = u16be(0)} {qclass = u16be(2)} ;

Name -> Label Name / End0 ;
Label -> raw[1] {len = u8(0)} check(len > 0 && len < 64) raw[len] ;
End0 -> "\x00" ;

RRs -> RR RRs {count = RRs.count + 1}
     / "" {count = 0} ;

RR -> NamePart
      {fixofs = NamePart.end}
      raw[10]
      {typ = u16be(fixofs)} {cls = u16be(fixofs + 2)}
      {ttl = u32be(fixofs + 4)} {rdlen = u16be(fixofs + 8)}
      raw[rdlen] ;

NamePart -> Ptr[2] / Name ;

Ptr -> {b0 = u8(0)} check(b0 >= 192) raw[2]
       {target = btoibe(0, 2) - 49152} ;
)IPG";

Expected<LoadResult> ipg::formats::loadDnsGrammar() {
  return loadGrammar(DnsGrammarText);
}

static void writeName(ByteWriter &W, const std::string &Dotted) {
  size_t Start = 0;
  while (Start <= Dotted.size()) {
    size_t Dot = Dotted.find('.', Start);
    if (Dot == std::string::npos)
      Dot = Dotted.size();
    size_t Len = Dot - Start;
    if (Len > 0) {
      W.u8(static_cast<uint8_t>(Len));
      W.raw(std::string_view(Dotted).substr(Start, Len));
    }
    Start = Dot + 1;
  }
  W.u8(0);
}

std::vector<uint8_t> ipg::formats::synthesizeDns(const DnsSynthSpec &Spec,
                                                 DnsModel *Model) {
  ByteWriter W;
  uint64_t Rng = Spec.Seed;
  auto Next = [&Rng] {
    Rng = Rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return Rng >> 33;
  };
  DnsModel Local;
  DnsModel &M = Model ? *Model : Local;
  M = DnsModel();

  M.Id = static_cast<uint16_t>(Next());
  W.u16be(M.Id);
  W.u16be(0x8180); // standard response, recursion available
  W.u16be(1);      // QDCOUNT
  W.u16be(static_cast<uint16_t>(Spec.NumAnswers));
  W.u16be(0); // NSCOUNT
  W.u16be(0); // ARCOUNT

  writeName(W, Spec.QName);
  W.u16be(1); // QTYPE = A
  W.u16be(1); // QCLASS = IN

  for (size_t I = 0; I < Spec.NumAnswers; ++I) {
    W.u16be(0xC00C); // pointer to offset 12 (the question name)
    W.u16be(1);      // TYPE = A
    W.u16be(1);      // CLASS = IN
    W.u32be(300);    // TTL
    W.u16be(static_cast<uint16_t>(Spec.RDataSize));
    std::vector<uint8_t> RData;
    for (size_t K = 0; K < Spec.RDataSize; ++K) {
      uint8_t B = static_cast<uint8_t>(Next());
      RData.push_back(B);
      W.u8(B);
    }
    M.RData.push_back(std::move(RData));
  }
  M.AnswerCount = static_cast<uint16_t>(Spec.NumAnswers);
  return W.take();
}

/// Reads a (possibly compressed) name at \p Pos into dotted form; used by
/// the extractor to chase pointers the grammar validated structurally.
static std::string decodeName(ByteSpan Packet, size_t Pos) {
  std::string Out;
  size_t Hops = 0;
  while (Pos < Packet.size() && Hops < 16) {
    uint8_t Len = Packet[Pos];
    if (Len == 0)
      break;
    if ((Len & 0xC0) == 0xC0) {
      if (Pos + 1 >= Packet.size())
        break;
      Pos = ((Len & 0x3F) << 8) | Packet[Pos + 1];
      ++Hops;
      continue;
    }
    if (Pos + 1 + Len > Packet.size())
      break;
    if (!Out.empty())
      Out += '.';
    for (size_t K = 0; K < Len; ++K)
      Out += static_cast<char>(Packet[Pos + 1 + K]);
    Pos += 1 + Len;
  }
  return Out;
}

Expected<DnsParsed> ipg::formats::extractDns(const TreePtr &Tree,
                                             const Grammar &G,
                                             ByteSpan Packet) {
  const StringInterner &In = G.interner();
  const auto *Root = dyn_cast<NodeTree>(Tree.get());
  if (!Root)
    return Expected<DnsParsed>::failure("DNS tree root is not a node");

  DnsParsed P;
  const NodeTree *Hdr = Root->childNode(In.lookup("Hdr"));
  if (!Hdr)
    return Expected<DnsParsed>::failure("missing DNS header");
  P.Id = static_cast<uint16_t>(Hdr->attr(In.lookup("id")).value_or(0));
  P.QdCount = static_cast<uint16_t>(Hdr->attr(In.lookup("qd")).value_or(0));
  P.AnCount = static_cast<uint16_t>(Hdr->attr(In.lookup("an")).value_or(0));
  P.QName = decodeName(Packet, 12);

  Symbol RRsSym = In.lookup("RRs"), RRSym = In.lookup("RR");
  const NodeTree *Chain = Root->childNode(RRsSym);
  while (Chain) {
    const NodeTree *RR = Chain->childNode(RRSym);
    if (!RR)
      break;
    P.AnswerTypes.push_back(
        static_cast<uint16_t>(RR->attr(In.lookup("typ")).value_or(0)));
    P.RDataLengths.push_back(
        static_cast<uint16_t>(RR->attr(In.lookup("rdlen")).value_or(0)));
    Chain = Chain->childNode(RRsSym);
  }
  if (P.AnswerTypes.size() != P.AnCount)
    return Expected<DnsParsed>::failure(
        "answer chain length disagrees with header count");
  return P;
}
