//===- formats/Ipv4Udp.cpp ------------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "formats/Ipv4Udp.h"

#include "support/Casting.h"

#include <cstddef>
#include <cstdint>
#include <vector>

using namespace ipg;
using namespace ipg::formats;

const char ipg::formats::Ipv4UdpGrammarText[] = R"IPG(
Pkt -> IP ;

IP -> raw[1]
      {vihl = u8(0)} {ver = vihl >> 4} {ihl = vihl & 15}
      check(ver = 4 && ihl >= 5)
      {hlen = ihl * 4}
      raw[hlen - 1]
      {tot = u16be(2)} {proto = u8(9)}
      check(tot >= hlen && tot <= EOI)
      switch(proto = 17: UDP[tot - hlen] / Opaque[tot - hlen]) ;

UDP -> raw[8]
       {sport = u16be(0)} {dport = u16be(2)} {len = u16be(4)}
       {cksum = u16be(6)}
       check(len = EOI)
       Payload ;

Opaque -> raw ;
Payload -> raw ;
)IPG";

Expected<LoadResult> ipg::formats::loadIpv4UdpGrammar() {
  return loadGrammar(Ipv4UdpGrammarText);
}

std::vector<uint8_t>
ipg::formats::synthesizeIpv4Udp(const Ipv4SynthSpec &Spec,
                                Ipv4Model *Model) {
  ByteWriter W;
  uint64_t Rng = Spec.Seed;
  auto Next = [&Rng] {
    Rng = Rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return Rng >> 33;
  };
  Ipv4Model Local;
  Ipv4Model &M = Model ? *Model : Local;
  M = Ipv4Model();

  uint8_t Ihl = static_cast<uint8_t>(5 + Spec.OptionWords);
  size_t HLen = Ihl * 4u;
  size_t UdpLen = Spec.Udp ? 8 + Spec.PayloadSize : Spec.PayloadSize;
  uint16_t Total = static_cast<uint16_t>(HLen + UdpLen);

  W.u8(static_cast<uint8_t>(0x40 | Ihl)); // version 4 + IHL
  W.u8(0);                                // DSCP/ECN
  W.u16be(Total);
  W.u16be(static_cast<uint16_t>(Next())); // identification
  W.u16be(0x4000);                        // flags: don't fragment
  W.u8(64);                               // TTL
  W.u8(Spec.Udp ? 17 : 200);              // protocol
  W.u16be(0);                             // header checksum (not validated)
  W.u32be(0x0a000001);                    // src 10.0.0.1
  W.u32be(0x0a000002);                    // dst 10.0.0.2
  for (size_t I = 0; I < Spec.OptionWords; ++I)
    W.u32be(static_cast<uint32_t>(Next()));

  if (Spec.Udp) {
    M.SrcPort = static_cast<uint16_t>(1024 + Next() % 60000);
    M.DstPort = 53;
    W.u16be(M.SrcPort);
    W.u16be(M.DstPort);
    W.u16be(static_cast<uint16_t>(8 + Spec.PayloadSize));
    W.u16be(0); // checksum
  }
  for (size_t I = 0; I < Spec.PayloadSize; ++I)
    W.u8(static_cast<uint8_t>(Next()));

  M.Ihl = Ihl;
  M.TotalLength = Total;
  M.Protocol = Spec.Udp ? 17 : 200;
  M.PayloadSize = Spec.PayloadSize;
  return W.take();
}

Expected<Ipv4Parsed> ipg::formats::extractIpv4Udp(const TreePtr &Tree,
                                                  const Grammar &G) {
  const StringInterner &In = G.interner();
  const auto *Root = dyn_cast<NodeTree>(Tree.get());
  if (!Root)
    return Expected<Ipv4Parsed>::failure("packet tree root is not a node");
  const NodeTree *IP = Root->childNode(In.lookup("IP"));
  if (!IP)
    return Expected<Ipv4Parsed>::failure("missing IP node");

  Ipv4Parsed P;
  P.Ihl = static_cast<uint8_t>(IP->attr(In.lookup("ihl")).value_or(0));
  P.TotalLength =
      static_cast<uint16_t>(IP->attr(In.lookup("tot")).value_or(0));
  P.Protocol = static_cast<uint8_t>(IP->attr(In.lookup("proto")).value_or(0));
  if (const NodeTree *UDP = IP->childNode(In.lookup("UDP"))) {
    P.HasUdp = true;
    P.SrcPort = static_cast<uint16_t>(UDP->attr(In.lookup("sport")).value_or(0));
    P.DstPort = static_cast<uint16_t>(UDP->attr(In.lookup("dport")).value_or(0));
    P.UdpLength =
        static_cast<uint16_t>(UDP->attr(In.lookup("len")).value_or(0));
  }
  return P;
}
