//===- formats/Elf.cpp ----------------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "formats/Elf.h"

#include "support/Casting.h"

#include <cstddef>
#include <cstdint>
#include <vector>

using namespace ipg;
using namespace ipg::formats;

// Figure 9b, fleshed out for ELF64: the header holds the table offset
// (e_shoff @40), entry size (@58) and count (@60); each section header
// holds its section's type (@4), offset (@24) and size (@32). Sections are
// dispatched on type: 6 = .dynamic (16-byte entries), 2 = .symtab (24-byte
// entries), anything else = opaque bytes. The loop skips index 0 (the null
// section), as in the paper.
const char ipg::formats::ElfGrammarText[] = R"IPG(
ELF -> H[64]
       for i = 0 to H.num do SH[H.ofs + i * H.sz, H.ofs + (i + 1) * H.sz]
       for i = 1 to H.num do Sec[SH(i).ofs, SH(i).ofs + SH(i).sz]
    where {
      Sec -> switch(SH(i).type = 6: DynSec
                  / SH(i).type = 2: SymTab
                  / OtherSec) ;
    } ;

H -> "\x7fELF" raw[60]
     {ofs = u64le(40)} {sz = u16le(58)} {num = u16le(60)}
     check(sz = 64) ;

SH -> raw[64]
      {nameofs = u32le(0)} {type = u32le(4)}
      {ofs = u64le(24)} {sz = u64le(32)} ;

DynSec -> check(EOI % 16 = 0)
          for i = 0 to EOI / 16 do DynEnt[16 * i, 16 * (i + 1)] ;
DynEnt -> raw[16] {tag = u64le(0)} {val = u64le(8)} ;

SymTab -> check(EOI % 24 = 0)
          for i = 0 to EOI / 24 do Sym[24 * i, 24 * (i + 1)] ;
Sym -> raw[24] {nameofs = u32le(0)} {value = u64le(8)} {size = u64le(16)} ;

OtherSec -> raw ;
)IPG";

Expected<LoadResult> ipg::formats::loadElfGrammar() {
  return loadGrammar(ElfGrammarText);
}

std::vector<uint8_t> ipg::formats::synthesizeElf(const ElfSynthSpec &Spec,
                                                 ElfModel *Model) {
  ByteWriter W;
  uint64_t Rng = Spec.Seed * 6364136223846793005ULL + 1442695040888963407ULL;
  auto Next = [&Rng] {
    Rng = Rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return Rng >> 33;
  };

  ElfModel Local;
  ElfModel &M = Model ? *Model : Local;
  M = ElfModel();

  // Header placeholder; e_shoff patched later.
  W.raw("\x7f");
  W.raw("ELF");
  W.u8(2); // ELFCLASS64
  W.u8(1); // little endian
  W.u8(1); // version
  W.fill(0, 9);
  W.u16le(2);  // e_type = EXEC
  W.u16le(62); // e_machine = x86-64
  W.u32le(1);  // e_version
  W.u64le(0x400000); // e_entry
  W.u64le(0);  // e_phoff
  size_t ShOffPatch = W.size();
  W.u64le(0);  // e_shoff (patched)
  W.u32le(0);  // e_flags
  W.u16le(64); // e_ehsize
  W.u16le(0);  // e_phentsize
  W.u16le(0);  // e_phnum
  W.u16le(64); // e_shentsize
  size_t ShNumPatch = W.size();
  W.u16le(0);  // e_shnum (patched)
  W.u16le(4);  // e_shstrndx (.strtab)

  struct Sec {
    uint32_t Type;
    uint64_t Off;
    uint64_t Size;
  };
  std::vector<Sec> Secs;
  Secs.push_back({0, 0, 0}); // null section

  // .text
  {
    uint64_t Off = W.size();
    for (size_t I = 0; I < Spec.TextSize; ++I)
      W.u8(static_cast<uint8_t>(Next()));
    Secs.push_back({1, Off, Spec.TextSize});
  }
  // .dynamic
  {
    uint64_t Off = W.size();
    for (size_t I = 0; I < Spec.NumDynEntries; ++I) {
      uint64_t Tag = 1 + (Next() % 30);
      uint64_t Val = Next();
      M.DynTags.push_back(Tag);
      W.u64le(Tag);
      W.u64le(Val);
    }
    Secs.push_back({6, Off, Spec.NumDynEntries * 16});
  }
  // .symtab
  {
    uint64_t Off = W.size();
    for (size_t I = 0; I < Spec.NumSymbols; ++I) {
      uint64_t Value = Next();
      M.SymValues.push_back(Value);
      W.u32le(static_cast<uint32_t>(I * 8)); // st_name
      W.u32le(0);                            // st_info/st_other/st_shndx
      W.u64le(Value);                        // st_value
      W.u64le(Next() % 4096);                // st_size
    }
    Secs.push_back({2, Off, Spec.NumSymbols * 24});
  }
  // .strtab: NumSymbols fake names of 7 chars + NUL.
  {
    uint64_t Off = W.size();
    for (size_t I = 0; I < Spec.NumSymbols; ++I) {
      for (int K = 0; K < 7; ++K)
        W.u8(static_cast<uint8_t>('a' + (Next() % 26)));
      W.u8(0);
    }
    Secs.push_back({3, Off, Spec.NumSymbols * 8});
  }

  // Section header table.
  uint64_t ShOff = W.size();
  for (size_t I = 0; I < Secs.size(); ++I) {
    W.u32le(static_cast<uint32_t>(I)); // sh_name
    W.u32le(Secs[I].Type);
    W.u64le(0);           // sh_flags
    W.u64le(0);           // sh_addr
    W.u64le(Secs[I].Off); // sh_offset
    W.u64le(Secs[I].Size);
    W.u32le(0); // sh_link
    W.u32le(0); // sh_info
    W.u64le(1); // sh_addralign
    W.u64le(0); // sh_entsize
  }
  W.patchUnsigned(ShOffPatch, ShOff, 8, Endian::Little);
  W.patchUnsigned(ShNumPatch, Secs.size(), 2, Endian::Little);

  M.ShOff = ShOff;
  M.ShNum = static_cast<uint16_t>(Secs.size());
  for (const Sec &S : Secs)
    M.Sections.push_back({S.Type, S.Off, S.Size});
  return W.take();
}

Expected<ElfParsed> ipg::formats::extractElf(const TreePtr &Tree,
                                             const Grammar &G) {
  const StringInterner &In = G.interner();
  const auto *Root = dyn_cast<NodeTree>(Tree.get());
  if (!Root)
    return Expected<ElfParsed>::failure("ELF tree root is not a node");

  ElfParsed P;
  const NodeTree *H = Root->childNode(In.lookup("H"));
  if (!H)
    return Expected<ElfParsed>::failure("missing ELF header node");
  P.ShOff = static_cast<uint64_t>(H->attr(In.lookup("ofs")).value_or(0));
  P.ShNum = static_cast<uint16_t>(H->attr(In.lookup("num")).value_or(0));

  const ArrayTree *SHs = Root->childArray(In.lookup("SH"));
  if (!SHs)
    return Expected<ElfParsed>::failure("missing section header table");
  for (size_t I = 0; I < SHs->size(); ++I) {
    const NodeTree *SH = SHs->element(I);
    ElfSectionModel S;
    S.Type = static_cast<uint32_t>(SH->attr(In.lookup("type")).value_or(0));
    S.Offset = static_cast<uint64_t>(SH->attr(In.lookup("ofs")).value_or(0));
    S.Size = static_cast<uint64_t>(SH->attr(In.lookup("sz")).value_or(0));
    P.Sections.push_back(S);
  }

  const ArrayTree *Secs = Root->childArray(In.lookup("Sec"));
  if (!Secs)
    return Expected<ElfParsed>::failure("missing sections array");
  for (size_t I = 0; I < Secs->size(); ++I) {
    const NodeTree *Sec = Secs->element(I);
    if (const NodeTree *Dyn = Sec->childNode(In.lookup("DynSec"))) {
      const ArrayTree *Ents = Dyn->childArray(In.lookup("DynEnt"));
      if (!Ents)
        return Expected<ElfParsed>::failure("dynamic section has no entries");
      for (size_t K = 0; K < Ents->size(); ++K)
        P.DynTags.push_back(static_cast<uint64_t>(
            Ents->element(K)->attr(In.lookup("tag")).value_or(0)));
    } else if (const NodeTree *SymT = Sec->childNode(In.lookup("SymTab"))) {
      const ArrayTree *Syms = SymT->childArray(In.lookup("Sym"));
      if (!Syms)
        return Expected<ElfParsed>::failure("symtab has no entries");
      for (size_t K = 0; K < Syms->size(); ++K)
        P.SymValues.push_back(static_cast<uint64_t>(
            Syms->element(K)->attr(In.lookup("value")).value_or(0)));
    }
  }
  return P;
}
