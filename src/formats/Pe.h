//===- formats/Pe.h - PE format: grammar, synthesizer, extractor -*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PE (Portable Executable), the second directory-based binary format the
/// paper evaluates. Random access twice over: the DOS header's e_lfanew
/// points at the NT headers, and each section header's PointerToRawData
/// points at its section's raw bytes.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_FORMATS_PE_H
#define IPG_FORMATS_PE_H

#include "analysis/AttributeCheck.h"
#include "runtime/ParseTree.h"
#include "support/Bytes.h"
#include "support/Result.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ipg::formats {

extern const char PeGrammarText[];

struct PeSynthSpec {
  size_t NumSections = 4;
  size_t SectionSize = 512;
  size_t DosStubSize = 64; ///< junk between the DOS header and NT headers
  uint64_t Seed = 1;
};

struct PeSectionModel {
  uint32_t RawPtr = 0;
  uint32_t RawSize = 0;
};

struct PeModel {
  uint32_t LfaNew = 0;
  uint16_t NumSections = 0;
  std::vector<PeSectionModel> Sections;
};

std::vector<uint8_t> synthesizePe(const PeSynthSpec &Spec,
                                  PeModel *Model = nullptr);

struct PeParsed {
  uint32_t LfaNew = 0;
  uint16_t Machine = 0;
  uint16_t NumSections = 0;
  uint16_t OptMagic = 0;
  std::vector<PeSectionModel> Sections;
};

Expected<PeParsed> extractPe(const TreePtr &Tree, const Grammar &G);

Expected<LoadResult> loadPeGrammar();

} // namespace ipg::formats

#endif // IPG_FORMATS_PE_H
