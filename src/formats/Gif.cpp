//===- formats/Gif.cpp ----------------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "formats/Gif.h"

#include "support/Casting.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

using namespace ipg;
using namespace ipg::formats;

// Section 4.2's structure. The LSD's packed flags byte selects the global
// color table with its top bit and sizes it with the low three bits (the
// paper's switch example); blocks are a recursive chained list ended by the
// 0x3b trailer. Sub-block chains end at a zero length byte.
const char ipg::formats::GifGrammarText[] = R"IPG(
GIF -> "GIF89a" LSD Blocks Trailer {nblocks = Blocks.count} ;

LSD -> raw[7]
       {w = u16le(0)} {h = u16le(2)} {flags = u8(4)}
       {gctsize = (flags >> 7) = 1 ? 3 * (2 << (flags & 7)) : 0}
       switch((flags >> 7) = 1: GCT[gctsize] / Empty[0]) ;

GCT -> raw ;
Empty -> "" ;

Blocks -> Block Blocks {count = Blocks.count + 1}
        / "" {count = 0} ;

Block -> Ext / Img ;

Ext -> "\x21" {label = u8(1)} raw[1] SubBlocks ;

Img -> "\x2c" raw[9]
       {iflags = u8(9)}
       {lctsize = (iflags >> 7) = 1 ? 3 * (2 << (iflags & 7)) : 0}
       raw[lctsize]
       raw[1]
       {datalen = SubBlocks.count}
       SubBlocks ;

SubBlocks -> SubBlock SubBlocks {count = SubBlocks.count + SubBlock.len}
           / "\x00" {count = 0} ;

SubBlock -> raw[1] {len = u8(0)} check(len > 0) raw[len] ;

Trailer -> "\x3b" ;
)IPG";

Expected<LoadResult> ipg::formats::loadGifGrammar() {
  return loadGrammar(GifGrammarText);
}

std::vector<uint8_t> ipg::formats::synthesizeGif(const GifSynthSpec &Spec,
                                                 GifModel *Model) {
  ByteWriter W;
  uint64_t Rng = Spec.Seed;
  auto Next = [&Rng] {
    Rng = Rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return Rng >> 33;
  };
  GifModel Local;
  GifModel &M = Model ? *Model : Local;
  M = GifModel();

  W.raw("GIF89a");
  W.u16le(Spec.Width);
  W.u16le(Spec.Height);
  uint8_t Flags = 0;
  if (Spec.GlobalColorTable)
    Flags = static_cast<uint8_t>(0x80 | (Spec.GctSizeLog & 7));
  W.u8(Flags);
  W.u8(0); // background color index
  W.u8(0); // pixel aspect ratio
  if (Spec.GlobalColorTable) {
    M.HasGct = true;
    M.GctBytes = 3u * (2u << (Spec.GctSizeLog & 7));
    for (size_t I = 0; I < M.GctBytes; ++I)
      W.u8(static_cast<uint8_t>(Next()));
  }

  auto WriteSubBlocks = [&](size_t Count, size_t Size) {
    size_t Total = 0;
    for (size_t B = 0; B < Count; ++B) {
      size_t N = std::min<size_t>(Size, 255);
      if (N == 0)
        N = 1;
      W.u8(static_cast<uint8_t>(N));
      for (size_t K = 0; K < N; ++K)
        W.u8(static_cast<uint8_t>(Next()));
      Total += N;
    }
    W.u8(0); // terminator
    return Total;
  };

  for (size_t E = 0; E < Spec.NumExtensions; ++E) {
    W.u8(0x21);
    W.u8(0xf9); // graphic control label
    WriteSubBlocks(1, 4);
    ++M.NumBlocks;
  }
  for (size_t I = 0; I < Spec.NumImages; ++I) {
    W.u8(0x2c);
    W.u16le(0); // left
    W.u16le(0); // top
    W.u16le(Spec.Width);
    W.u16le(Spec.Height);
    W.u8(0); // no local color table
    W.u8(8); // LZW minimum code size
    M.ImageDataSizes.push_back(
        WriteSubBlocks(Spec.SubBlocksPerImage, Spec.SubBlockSize));
    ++M.NumBlocks;
  }
  W.u8(0x3b); // trailer
  return W.take();
}

Expected<GifParsed> ipg::formats::extractGif(const TreePtr &Tree,
                                             const Grammar &G) {
  const StringInterner &In = G.interner();
  const auto *Root = dyn_cast<NodeTree>(Tree.get());
  if (!Root)
    return Expected<GifParsed>::failure("GIF tree root is not a node");

  GifParsed P;
  const NodeTree *LSD = Root->childNode(In.lookup("LSD"));
  if (!LSD)
    return Expected<GifParsed>::failure("missing LSD node");
  P.Width = static_cast<uint16_t>(LSD->attr(In.lookup("w")).value_or(0));
  P.Height = static_cast<uint16_t>(LSD->attr(In.lookup("h")).value_or(0));
  P.GctBytes =
      static_cast<size_t>(LSD->attr(In.lookup("gctsize")).value_or(0));
  P.HasGct = P.GctBytes > 0;
  P.NumBlocks =
      static_cast<size_t>(Root->attr(In.lookup("nblocks")).value_or(0));

  // Walk the block chain counting images and their data bytes.
  Symbol BlocksSym = In.lookup("Blocks"), BlockSym = In.lookup("Block");
  Symbol ImgSym = In.lookup("Img");
  const NodeTree *Chain = Root->childNode(BlocksSym);
  while (Chain) {
    const NodeTree *Block = Chain->childNode(BlockSym);
    if (!Block)
      break;
    if (const NodeTree *Img = Block->childNode(ImgSym)) {
      ++P.NumImages;
      P.ImageDataSizes.push_back(static_cast<size_t>(
          Img->attr(In.lookup("datalen")).value_or(0)));
    }
    Chain = Chain->childNode(BlocksSym);
  }
  return P;
}
