//===- formats/Pe.cpp -----------------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "formats/Pe.h"

#include "support/Casting.h"

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

using namespace ipg;
using namespace ipg::formats;

// PE32+ layout: "MZ" header whose e_lfanew (offset 60) points at the
// "PE\0\0" signature, followed by the 20-byte COFF header, the optional
// header (SizeOfOptionalHeader @16), the 40-byte section headers, and the
// sections' raw data wherever PointerToRawData says.
const char ipg::formats::PeGrammarText[] = R"IPG(
PE -> DOS[64]
      "PE\x00\x00"[DOS.lfanew, DOS.lfanew + 4]
      COFF[20]
      OptHdr[COFF.optsize]
      {secofs = DOS.lfanew + 24 + COFF.optsize}
      for i = 0 to COFF.nsec do SecHdr[secofs + 40 * i, secofs + 40 * (i + 1)]
      for i = 0 to COFF.nsec do Sec[SecHdr(i).rawptr,
                                    SecHdr(i).rawptr + SecHdr(i).rawsize] ;

DOS -> "MZ" raw[62] {lfanew = u32le(60)} ;

COFF -> raw[20]
        {machine = u16le(0)} {nsec = u16le(2)} {optsize = u16le(16)} ;

OptHdr -> raw {magic = u16le(0)} check(magic = 0x20b) ;

SecHdr -> raw[40] {vsize = u32le(8)} {rawsize = u32le(16)}
          {rawptr = u32le(20)} ;

Sec -> raw ;
)IPG";

Expected<LoadResult> ipg::formats::loadPeGrammar() {
  return loadGrammar(PeGrammarText);
}

std::vector<uint8_t> ipg::formats::synthesizePe(const PeSynthSpec &Spec,
                                                PeModel *Model) {
  ByteWriter W;
  uint64_t Rng = Spec.Seed;
  auto Next = [&Rng] {
    Rng = Rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return Rng >> 33;
  };
  PeModel Local;
  PeModel &M = Model ? *Model : Local;
  M = PeModel();

  // DOS header (64 bytes), e_lfanew patched at offset 60.
  W.raw("MZ");
  W.fill(0x90, 58);
  size_t LfaNewPatch = W.size();
  W.u32le(0);
  // DOS stub junk.
  for (size_t I = 0; I < Spec.DosStubSize; ++I)
    W.u8(static_cast<uint8_t>(Next()));

  uint32_t LfaNew = static_cast<uint32_t>(W.size());
  W.patchUnsigned(LfaNewPatch, LfaNew, 4, Endian::Little);
  M.LfaNew = LfaNew;

  // NT signature + COFF header.
  W.raw("PE");
  W.u8(0);
  W.u8(0);
  W.u16le(0x8664); // machine: x86-64
  W.u16le(static_cast<uint16_t>(Spec.NumSections));
  W.u32le(0);   // timestamp
  W.u32le(0);   // symbol table ptr
  W.u32le(0);   // num symbols
  W.u16le(240); // optional header size (PE32+)
  W.u16le(0x22); // characteristics

  // Optional header: magic 0x20b then padding to 240 bytes.
  W.u16le(0x20b);
  W.fill(0, 238);

  // Section headers (40 bytes each); raw pointers patched after layout.
  size_t SecHdrBase = W.size();
  for (size_t I = 0; I < Spec.NumSections; ++I) {
    char Name[8] = {'.', 's', 'e', 'c',
                    static_cast<char>('0' + I % 10), 0, 0, 0};
    W.raw(std::string_view(Name, 8));
    W.u32le(static_cast<uint32_t>(Spec.SectionSize)); // virtual size
    W.u32le(0x1000 * static_cast<uint32_t>(I + 1));   // virtual address
    W.u32le(0); // raw size (patched)
    W.u32le(0); // raw ptr (patched)
    W.u32le(0); // reloc ptr
    W.u32le(0); // linenum ptr
    W.u16le(0); // nreloc
    W.u16le(0); // nlinenum
    W.u32le(0x60000020); // characteristics
  }
  for (size_t I = 0; I < Spec.NumSections; ++I) {
    uint32_t RawPtr = static_cast<uint32_t>(W.size());
    for (size_t K = 0; K < Spec.SectionSize; ++K)
      W.u8(static_cast<uint8_t>(Next()));
    W.patchUnsigned(SecHdrBase + 40 * I + 16, Spec.SectionSize, 4,
                    Endian::Little);
    W.patchUnsigned(SecHdrBase + 40 * I + 20, RawPtr, 4, Endian::Little);
    M.Sections.push_back(
        {RawPtr, static_cast<uint32_t>(Spec.SectionSize)});
  }
  M.NumSections = static_cast<uint16_t>(Spec.NumSections);
  return W.take();
}

Expected<PeParsed> ipg::formats::extractPe(const TreePtr &Tree,
                                           const Grammar &G) {
  const StringInterner &In = G.interner();
  const auto *Root = dyn_cast<NodeTree>(Tree.get());
  if (!Root)
    return Expected<PeParsed>::failure("PE tree root is not a node");

  PeParsed P;
  const NodeTree *DOS = Root->childNode(In.lookup("DOS"));
  const NodeTree *COFF = Root->childNode(In.lookup("COFF"));
  const NodeTree *Opt = Root->childNode(In.lookup("OptHdr"));
  if (!DOS || !COFF || !Opt)
    return Expected<PeParsed>::failure("missing PE header nodes");
  P.LfaNew = static_cast<uint32_t>(DOS->attr(In.lookup("lfanew")).value_or(0));
  P.Machine =
      static_cast<uint16_t>(COFF->attr(In.lookup("machine")).value_or(0));
  P.NumSections =
      static_cast<uint16_t>(COFF->attr(In.lookup("nsec")).value_or(0));
  P.OptMagic =
      static_cast<uint16_t>(Opt->attr(In.lookup("magic")).value_or(0));

  const ArrayTree *Hdrs = Root->childArray(In.lookup("SecHdr"));
  if (!Hdrs)
    return Expected<PeParsed>::failure("missing section header array");
  for (size_t I = 0; I < Hdrs->size(); ++I) {
    const NodeTree *H = Hdrs->element(I);
    PeSectionModel S;
    S.RawPtr = static_cast<uint32_t>(H->attr(In.lookup("rawptr")).value_or(0));
    S.RawSize =
        static_cast<uint32_t>(H->attr(In.lookup("rawsize")).value_or(0));
    P.Sections.push_back(S);
  }
  return P;
}
