//===- formats/Pdf.h - PDF subset: grammar, synthesizer, extractor -*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PDF subset of Section 4.3, exercising the two parsing patterns the
/// paper singles out:
///
///   * backward parsing — the startxref offset is a decimal number of
///     unknown length scanned backward from "%%EOF" (the bNum grammar),
///     and its `start` attribute locates the "startxref" keyword; and
///   * random access with overlapping intervals — the xref table's entries
///     point back into regions of the file that are parsed again as
///     objects (multi-pass parsing).
///
/// Simplifications vs. full PDF (as in the paper, which also only supports
/// a subset): the xref count line is fixed-width, there is a single xref
/// section, no incremental updates or linearization, and the trailer
/// dictionary is skipped.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_FORMATS_PDF_H
#define IPG_FORMATS_PDF_H

#include "analysis/AttributeCheck.h"
#include "runtime/ParseTree.h"
#include "support/Bytes.h"
#include "support/Result.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ipg::formats {

extern const char PdfGrammarText[];

struct PdfSynthSpec {
  size_t NumObjects = 8;
  size_t ObjectBodySize = 64; ///< bytes of dictionary-ish content per object
  /// Xref rows per object (>= 1). Real PDFs reach the same object through
  /// several xref rows (incremental updates append re-references), and the
  /// grammar's object pass then re-parses the same [offset, xref) interval
  /// once per row — the random-access re-parse behavior Section 3.3's
  /// memoization exists for and Fig. 12 measures on PDF. Every row beyond
  /// the first is a duplicate reference to the object's offset.
  size_t XrefRefsPerObject = 1;
  uint64_t Seed = 1;
};

struct PdfModel {
  size_t XrefOffset = 0;
  std::vector<size_t> ObjectOffsets; ///< object i at ObjectOffsets[i]
};

std::vector<uint8_t> synthesizePdf(const PdfSynthSpec &Spec,
                                   PdfModel *Model = nullptr);

struct PdfParsed {
  size_t XrefOffset = 0;
  size_t NumXrefEntries = 0; ///< including the free entry 0
  std::vector<size_t> ObjectOffsets;
};

Expected<PdfParsed> extractPdf(const TreePtr &Tree, const Grammar &G);

Expected<LoadResult> loadPdfGrammar();

} // namespace ipg::formats

#endif // IPG_FORMATS_PDF_H
