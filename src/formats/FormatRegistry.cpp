//===- formats/FormatRegistry.cpp -----------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "formats/FormatRegistry.h"

#include "formats/Dns.h"
#include "formats/Elf.h"
#include "formats/Gif.h"
#include "formats/Ipv4Udp.h"
#include "formats/MiniZlib.h"
#include "formats/Pdf.h"
#include "formats/Pe.h"
#include "formats/Zip.h"

#include <cstddef>
#include <string>
#include <vector>

using namespace ipg;
using namespace ipg::formats;

const std::vector<FormatInfo> &ipg::formats::allFormats() {
  static const std::vector<FormatInfo> Formats = {
      {"zip", ZipGrammarText, true},
      {"gif", GifGrammarText, false},
      {"pe", PeGrammarText, false},
      {"elf", ElfGrammarText, false},
      {"pdf", PdfGrammarText, false},
      {"ipv4udp", Ipv4UdpGrammarText, false},
      {"dns", DnsGrammarText, false},
  };
  return Formats;
}

Expected<LoadResult>
ipg::formats::loadFormatGrammar(const std::string &Name) {
  for (const FormatInfo &F : allFormats())
    if (F.Name == Name)
      return loadGrammar(F.GrammarText);
  return Expected<LoadResult>::failure("unknown format '" + Name + "'");
}

BlackboxRegistry ipg::formats::standardBlackboxes() {
  BlackboxRegistry BB;
  BB.add("inflate", miniZlibBlackbox);
  return BB;
}

size_t ipg::formats::grammarLineCount(const char *Text) {
  size_t Count = 0;
  const char *P = Text;
  while (*P) {
    // Find the end of this line.
    const char *End = P;
    while (*End && *End != '\n')
      ++End;
    // Blank or comment-only lines do not count.
    const char *Q = P;
    while (Q != End && (*Q == ' ' || *Q == '\t'))
      ++Q;
    if (Q != End && !(Q + 1 < End && Q[0] == '/' && Q[1] == '/'))
      ++Count;
    P = *End ? End + 1 : End;
  }
  return Count;
}
