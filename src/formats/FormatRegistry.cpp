//===- formats/FormatRegistry.cpp -----------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "formats/FormatRegistry.h"

#include "formats/Dns.h"
#include "formats/Elf.h"
#include "formats/Gif.h"
#include "formats/Ipv4Udp.h"
#include "formats/MiniZlib.h"
#include "formats/Pdf.h"
#include "formats/Pe.h"
#include "formats/Zip.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

using namespace ipg;
using namespace ipg::formats;

// Per-format corpus synthesizers (FormatInfo::Sample). Scale linearly
// grows the repeated structures; the scale-1 shapes match the fixed
// corpus bench_throughput gates against.
namespace {

std::vector<uint8_t> sampleZip(unsigned Scale) {
  return synthesizeZip(zipArchiveOfCopies(8 * Scale, 4096, false));
}

std::vector<uint8_t> sampleGif(unsigned Scale) {
  GifSynthSpec Spec;
  Spec.NumImages = 2 * Scale;
  Spec.SubBlocksPerImage = 8;
  return synthesizeGif(Spec);
}

std::vector<uint8_t> samplePe(unsigned Scale) {
  PeSynthSpec Spec;
  Spec.NumSections = 6 * Scale;
  return synthesizePe(Spec);
}

std::vector<uint8_t> sampleElf(unsigned Scale) {
  ElfSynthSpec Spec;
  Spec.NumDynEntries = 16 * Scale;
  Spec.NumSymbols = 32 * Scale;
  return synthesizeElf(Spec);
}

std::vector<uint8_t> samplePdf(unsigned Scale) {
  PdfSynthSpec Spec;
  Spec.NumObjects = 12 * Scale;
  return synthesizePdf(Spec);
}

std::vector<uint8_t> sampleIpv4Udp(unsigned Scale) {
  Ipv4SynthSpec Spec;
  // The IPv4 total-length field is 16 bits; stay within it.
  Spec.PayloadSize = Scale < 128 ? 512 * Scale : 65000;
  return synthesizeIpv4Udp(Spec);
}

std::vector<uint8_t> sampleDns(unsigned Scale) {
  DnsSynthSpec Spec;
  Spec.NumAnswers = 8 * Scale;
  return synthesizeDns(Spec);
}

} // namespace

const std::vector<FormatInfo> &ipg::formats::allFormats() {
  static const std::vector<FormatInfo> Formats = {
      {"zip", ZipGrammarText, true, sampleZip},
      {"gif", GifGrammarText, false, sampleGif},
      {"pe", PeGrammarText, false, samplePe},
      {"elf", ElfGrammarText, false, sampleElf},
      {"pdf", PdfGrammarText, false, samplePdf},
      {"ipv4udp", Ipv4UdpGrammarText, false, sampleIpv4Udp},
      {"dns", DnsGrammarText, false, sampleDns},
  };
  return Formats;
}

Expected<LoadResult>
ipg::formats::loadFormatGrammar(const std::string &Name) {
  for (const FormatInfo &F : allFormats())
    if (F.Name == Name)
      return loadGrammar(F.GrammarText);
  return Expected<LoadResult>::failure("unknown format '" + Name + "'");
}

BlackboxRegistry ipg::formats::standardBlackboxes() {
  BlackboxRegistry BB;
  BB.add("inflate", miniZlibBlackbox);
  return BB;
}

std::vector<uint8_t> ipg::formats::sampleInput(const std::string &Name,
                                               unsigned Scale) {
  if (Scale == 0)
    Scale = 1;
  for (const FormatInfo &F : allFormats())
    if (F.Name == Name)
      return F.Sample(Scale);
  return {};
}

size_t ipg::formats::grammarLineCount(const char *Text) {
  size_t Count = 0;
  const char *P = Text;
  while (*P) {
    // Find the end of this line.
    const char *End = P;
    while (*End && *End != '\n')
      ++End;
    // Blank or comment-only lines do not count.
    const char *Q = P;
    while (Q != End && (*Q == ' ' || *Q == '\t'))
      ++Q;
    if (Q != End && !(Q + 1 < End && Q[0] == '/' && Q[1] == '/'))
      ++Count;
    P = *End ? End + 1 : End;
  }
  return Count;
}
