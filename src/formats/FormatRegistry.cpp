//===- formats/FormatRegistry.cpp -----------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "formats/FormatRegistry.h"

#include "formats/Dns.h"
#include "formats/Elf.h"
#include "formats/Gif.h"
#include "formats/Ipv4Udp.h"
#include "formats/MiniZlib.h"
#include "formats/Pdf.h"
#include "formats/Pe.h"
#include "formats/Zip.h"

#include "codegen/GenEngine.h"

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

using namespace ipg;
using namespace ipg::formats;

// Per-format corpus synthesizers (FormatInfo::Sample). Scale linearly
// grows the repeated structures; the scale-1 shapes match the fixed
// corpus bench_throughput gates against.
namespace {

std::vector<uint8_t> sampleZip(unsigned Scale) {
  return synthesizeZip(zipArchiveOfCopies(8 * Scale, 4096, false));
}

std::vector<uint8_t> sampleGif(unsigned Scale) {
  GifSynthSpec Spec;
  Spec.NumImages = 2 * Scale;
  Spec.SubBlocksPerImage = 8;
  return synthesizeGif(Spec);
}

std::vector<uint8_t> samplePe(unsigned Scale) {
  PeSynthSpec Spec;
  Spec.NumSections = 6 * Scale;
  return synthesizePe(Spec);
}

std::vector<uint8_t> sampleElf(unsigned Scale) {
  ElfSynthSpec Spec;
  Spec.NumDynEntries = 16 * Scale;
  Spec.NumSymbols = 32 * Scale;
  // From scale 64 up, .text grows to make the corpus megabyte-class
  // (the deep-input regression sweeps parse these); small scales keep
  // the default so the fixed test/bench corpora are unchanged.
  if (Scale >= 64)
    Spec.TextSize = 16384 * Scale;
  return synthesizeElf(Spec);
}

std::vector<uint8_t> samplePdf(unsigned Scale) {
  // The PDF grammar's Scan/XNum rules recurse once per file byte, so
  // total file size IS parser recursion depth. Both engines flatten
  // that recursion onto engine-managed frames, so depth costs no C
  // stack — callers parsing large scales only need an EngineOptions
  // MaxDepth that covers the file size (the limit is a resource cap,
  // not a stack guard). The scale-1 corpus — what bench_codegen's
  // Fig.-12 comparison parses — instead multiplies xref rows per object:
  // duplicate references re-parse the same [offset, xref) interval once
  // per row, the memo-reuse pattern Fig. 12 credits for PDF (without the
  // memo table every duplicate costs a full re-scan of the object).
  // bench_throughput's fixed pdf/12obj corpus is unchanged either way.
  PdfSynthSpec Spec;
  Spec.NumObjects = Scale == 1 ? 12 : 12 + 4 * Scale;
  Spec.XrefRefsPerObject = Scale == 1 ? 4 : 1;
  // Megabyte-class corpus from scale 64 up: ~64-byte bodies keep small
  // scales byte-identical to the historical corpora, large scales grow
  // object bodies so scale 64 crosses a megabyte (268 objects x 4 KiB).
  if (Scale >= 64)
    Spec.ObjectBodySize = 64 * Scale;
  return synthesizePdf(Spec);
}

std::vector<uint8_t> sampleIpv4Udp(unsigned Scale) {
  Ipv4SynthSpec Spec;
  // The IPv4 total-length field is 16 bits; stay within it.
  Spec.PayloadSize = Scale < 128 ? 512 * Scale : 65000;
  return synthesizeIpv4Udp(Spec);
}

std::vector<uint8_t> sampleDns(unsigned Scale) {
  DnsSynthSpec Spec;
  Spec.NumAnswers = 8 * Scale;
  return synthesizeDns(Spec);
}

} // namespace

const std::vector<FormatInfo> &ipg::formats::allFormats() {
  static const std::vector<FormatInfo> Formats = {
      {"zip", ZipGrammarText, true, sampleZip},
      {"gif", GifGrammarText, false, sampleGif},
      {"pe", PeGrammarText, false, samplePe},
      {"elf", ElfGrammarText, false, sampleElf},
      {"pdf", PdfGrammarText, false, samplePdf},
      {"ipv4udp", Ipv4UdpGrammarText, false, sampleIpv4Udp},
      {"dns", DnsGrammarText, false, sampleDns},
  };
  return Formats;
}

Expected<LoadResult>
ipg::formats::loadFormatGrammar(const std::string &Name) {
  for (const FormatInfo &F : allFormats())
    if (F.Name == Name)
      return loadGrammar(F.GrammarText);
  return Expected<LoadResult>::failure("unknown format '" + Name + "'");
}

BlackboxRegistry ipg::formats::standardBlackboxes() {
  BlackboxRegistry BB;
  BB.add("inflate", miniZlibBlackbox);
  // The inverse the serializer (serialize/Printer.cpp) re-encodes decoded
  // entry data with: the deterministic MiniZlib compressor, so any stream
  // it produced round-trips byte-exactly through decompress + recompress.
  BB.addInverse("inflate", miniZlibBlackboxInverse);
  return BB;
}

namespace {

// The generated-parser side of the `inflate` blackbox: a bridge from the
// ipg_rt registration hook (plain function pointer + cookie) to the SAME
// miniZlibBlackbox the interpreter registers — the child compiles
// formats/MiniZlib.cpp itself, so the two execution modes share one
// decoder implementation down to the translation unit. The decoded bytes
// live in a static buffer until the next invocation, which satisfies the
// BlackboxOut lifetime contract (the runtime copies them into its arena
// before returning).
const char ZipGenBridgeSource[] = R"BRIDGE(
#include "formats/MiniZlib.h"

static bool ipgInflateBridge(void *, const unsigned char *Data, size_t Len,
                             ipg_rt::BlackboxOut &Out) {
  static std::vector<uint8_t> Buf;
  ipg::BlackboxResult R =
      ipg::formats::miniZlibBlackbox(ipg::ByteSpan(Data, Len));
  if (!R.Ok)
    return false;
  Buf = std::move(R.Output);
  Out.Value = R.Value;
  Out.End = static_cast<long long>(R.End);
  Out.Output = Buf.data();
  Out.OutputLen = Buf.size();
  return true;
}

static bool ipgDeflateBridge(void *, const unsigned char *Decoded,
                             size_t Len, long long Value,
                             ipg_rt::BlackboxEncOut &Out) {
  static std::vector<uint8_t> Buf;
  ipg::BlackboxEncodeResult R = ipg::formats::miniZlibBlackboxInverse(
      ipg::ByteSpan(Decoded, Len), Value);
  if (!R.Ok)
    return false;
  Buf = std::move(R.Bytes);
  Out.Data = Buf.data();
  Out.Len = Buf.size();
  return true;
}

template <class ParserT> void ipgRegisterBlackboxes(ParserT &P) {
  P.registerBlackbox("inflate", ipgInflateBridge, nullptr);
  P.registerBlackboxInverse("inflate", ipgDeflateBridge, nullptr);
}
)BRIDGE";

const GenBlackboxBridge ZipGenBridge = {
    ZipGenBridgeSource, "formats/MiniZlib.cpp support/Bytes.cpp"};

} // namespace

const GenBlackboxBridge *
ipg::formats::genBlackboxBridge(const std::string &Name) {
  if (Name == "zip")
    return &ZipGenBridge;
  return nullptr;
}

GenModuleConfig ipg::formats::genModuleConfig(const std::string &Name) {
  GenModuleConfig Config;
  const GenBlackboxBridge *Br = genBlackboxBridge(Name);
  if (!Br)
    return Config;
  // The module compiles the same decoder TUs the interpreter links, and
  // its epilogue registers them through the bridge hook.
  Config.BridgeSource = Br->DriverSource;
  Config.RegisterBlackboxes = true;
  Config.Std = "c++20"; // the bridge includes library headers
  Config.ExtraCompileArgs = "-I" IPG_SOURCE_DIR;
  std::istringstream Toks(Br->ExtraSources);
  std::string T;
  while (Toks >> T)
    Config.ExtraCompileArgs += " " IPG_SOURCE_DIR "/" + T;
  return Config;
}

Expected<FormatEngine>
ipg::formats::makeFormatEngine(const std::string &Name, EngineKind Kind,
                               const EngineOptions &Opts) {
  using Ret = Expected<FormatEngine>;
  const FormatInfo *Info = nullptr;
  for (const FormatInfo &F : allFormats())
    if (F.Name == Name)
      Info = &F;
  if (!Info)
    return Ret::failure("unknown format '" + Name + "'");

  Expected<LoadResult> Load = loadGrammar(Info->GrammarText);
  if (!Load)
    return Ret::failure(Load.message());

  FormatEngine FE;
  FE.Load = std::make_shared<LoadResult>(std::move(*Load));

  const BlackboxRegistry *BB = nullptr;
  if (Info->NeedsBlackbox &&
      (Kind == EngineKind::Interp || Kind == EngineKind::Vm)) {
    FE.Blackboxes = std::make_shared<BlackboxRegistry>(standardBlackboxes());
    BB = FE.Blackboxes.get();
  }
  GenModuleConfig Config = genModuleConfig(Name);

  Expected<std::unique_ptr<Engine>> E =
      makeEngine(Kind, FE.Load->G, BB, Opts, &Config);
  if (!E)
    return Ret::failure(E.message());
  FE.E = std::move(*E);
  return Ret(std::move(FE));
}

std::vector<uint8_t> ipg::formats::sampleInput(const std::string &Name,
                                               unsigned Scale) {
  if (Scale == 0)
    Scale = 1;
  for (const FormatInfo &F : allFormats())
    if (F.Name == Name)
      return F.Sample(Scale);
  return {};
}

size_t ipg::formats::grammarLineCount(const char *Text) {
  size_t Count = 0;
  const char *P = Text;
  while (*P) {
    // Find the end of this line.
    const char *End = P;
    while (*End && *End != '\n')
      ++End;
    // Blank or comment-only lines do not count.
    const char *Q = P;
    while (Q != End && (*Q == ' ' || *Q == '\t'))
      ++Q;
    if (Q != End && !(Q + 1 < End && Q[0] == '/' && Q[1] == '/'))
      ++Count;
    P = *End ? End + 1 : End;
  }
  return Count;
}
