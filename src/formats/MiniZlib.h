//===- formats/MiniZlib.h - zlib-substitute blackbox codec ------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's ZIP case study reuses zlib as a blackbox parser
/// (Sections 3.4 and 7). zlib is not available offline, so this module
/// implements a small self-contained LZ77-style codec with the same
/// blackbox shape: hand it an interval-confined slice, get back the
/// decompressed bytes and the number of input bytes consumed. See
/// docs/architecture.md ("Engineering substitutions") for the
/// substitution argument.
///
/// Stream layout:
///   "MZ1"  u32le(uncompressed size)  ops...  0xFF
///   op 0x00: u8 len,   len literal bytes
///   op 0x01: u8 len,   u16le dist — copy len bytes from `dist` back
///
//===----------------------------------------------------------------------===//

#ifndef IPG_FORMATS_MINIZLIB_H
#define IPG_FORMATS_MINIZLIB_H

#include "runtime/Blackbox.h"
#include "support/Bytes.h"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace ipg::formats {

/// Compresses \p Data (greedy back-reference search, RLE-friendly).
std::vector<uint8_t> miniZlibCompress(const std::vector<uint8_t> &Data);

/// Decompresses one stream starting at \p In[0]. Returns the decoded bytes
/// and sets \p Consumed to one past the terminator; nullopt on malformed
/// input.
std::optional<std::vector<uint8_t>>
miniZlibDecompress(ByteSpan In, size_t &Consumed);

/// The blackbox adapter: val = decompressed size, end = bytes consumed,
/// Output = decompressed bytes.
BlackboxResult miniZlibBlackbox(ByteSpan In);

/// The blackbox INVERSE: re-encodes decoded bytes with miniZlibCompress.
/// \p Value must equal the decoded size (the forward adapter's val);
/// printing a tree whose val disagrees with its output leaf fails here.
/// Byte-exact round-trips additionally need the original stream to have
/// been produced by miniZlibCompress — the compressor is deterministic,
/// so compress(decompress(s)) == s for exactly those streams.
BlackboxEncodeResult miniZlibBlackboxInverse(ByteSpan Decoded,
                                             int64_t Value);

} // namespace ipg::formats

#endif // IPG_FORMATS_MINIZLIB_H
