//===- formats/Gif.h - GIF format: grammar, synthesizer, extractor -*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GIF case study of Section 4.2: the chunk-based format. Header +
/// logical screen descriptor (with an optional global color table selected
/// by a flag bit — the switch-term example), then a recursively chained
/// list of blocks (extensions and images, each a chain of length-prefixed
/// sub-blocks), then the trailer.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_FORMATS_GIF_H
#define IPG_FORMATS_GIF_H

#include "analysis/AttributeCheck.h"
#include "runtime/ParseTree.h"
#include "support/Bytes.h"
#include "support/Result.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ipg::formats {

extern const char GifGrammarText[];

struct GifSynthSpec {
  uint16_t Width = 64;
  uint16_t Height = 64;
  bool GlobalColorTable = true;
  uint8_t GctSizeLog = 1;    ///< table holds 2^(log+1) entries
  size_t NumExtensions = 2;  ///< graphic-control style extension blocks
  size_t NumImages = 1;      ///< image blocks
  size_t SubBlockSize = 64;  ///< bytes per data sub-block
  size_t SubBlocksPerImage = 4;
  uint64_t Seed = 1;
};

struct GifModel {
  bool HasGct = false;
  size_t GctBytes = 0;
  size_t NumBlocks = 0;
  std::vector<size_t> ImageDataSizes; ///< total data bytes per image
};

std::vector<uint8_t> synthesizeGif(const GifSynthSpec &Spec,
                                   GifModel *Model = nullptr);

struct GifParsed {
  uint16_t Width = 0;
  uint16_t Height = 0;
  bool HasGct = false;
  size_t GctBytes = 0;
  size_t NumBlocks = 0;
  size_t NumImages = 0;
  std::vector<size_t> ImageDataSizes;
};

Expected<GifParsed> extractGif(const TreePtr &Tree, const Grammar &G);

Expected<LoadResult> loadGifGrammar();

} // namespace ipg::formats

#endif // IPG_FORMATS_GIF_H
