//===- formats/Zip.cpp ----------------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "formats/Zip.h"

#include "formats/MiniZlib.h"
#include "support/Casting.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

using namespace ipg;
using namespace ipg::formats;

// The top rule jumps backward to the EOCD (no archive comment, so it sits
// in the last 22 bytes), then uses its cdofs/cdsize fields for random
// access to the central directory. Local entries and central headers are
// chained lists counting themselves; both counts must match the EOCD's.
// Stored entries skip their data with `raw` (zero-copy); compressed
// entries hand the data interval to the inflate blackbox.
const char ipg::formats::ZipGrammarText[] = R"IPG(
blackbox inflate ;

ZIP -> EOCD[EOI - 22, EOI]
       LFs[0, EOCD.cdofs]
       CDs[EOCD.cdofs, EOCD.cdofs + EOCD.cdsize]
       check(LFs.count = EOCD.n)
       check(CDs.count = EOCD.n) ;

EOCD -> "PK\x05\x06" raw[18]
        {n = u16le(10)} {cdsize = u32le(12)} {cdofs = u32le(16)}
        {commentlen = u16le(20)}
        check(commentlen = 0) ;

LFs -> LF LFs {count = LFs.count + 1}
     / "" {count = 0} ;

LF -> "PK\x03\x04" raw[26]
      {method = u16le(8)} {csize = u32le(18)} {usize = u32le(22)}
      {namelen = u16le(26)} {extralen = u16le(28)}
      raw[namelen + extralen]
      switch(method = 0: Stored[csize]
           / method = 8: Deflated[csize]
           / Bad[1, 0]) ;

Stored -> raw ;
Deflated -> inflate {usize = inflate.val} ;
Bad -> "" ;

CDs -> CDH CDs {count = CDs.count + 1}
     / "" {count = 0} ;

CDH -> "PK\x01\x02" raw[42]
       {method = u16le(10)} {csize = u32le(20)} {usize = u32le(24)}
       {namelen = u16le(28)} {extralen = u16le(30)} {commentlen = u16le(32)}
       {lfhofs = u32le(42)}
       raw[namelen + extralen + commentlen] ;
)IPG";

Expected<LoadResult> ipg::formats::loadZipGrammar() {
  return loadGrammar(ZipGrammarText);
}

ZipSynthSpec ipg::formats::zipArchiveOfCopies(size_t Count, size_t FileSize,
                                              bool Compress, uint64_t Seed) {
  ZipSynthSpec Spec;
  uint64_t Rng = Seed;
  std::vector<uint8_t> Data;
  Data.reserve(FileSize);
  for (size_t I = 0; I < FileSize; ++I) {
    Rng = Rng * 6364136223846793005ULL + 1442695040888963407ULL;
    // Mildly compressible content: long runs punctuated by noise.
    Data.push_back(I % 7 == 0 ? static_cast<uint8_t>(Rng >> 33)
                              : static_cast<uint8_t>('A' + I % 5));
  }
  for (size_t I = 0; I < Count; ++I) {
    ZipEntrySpec E;
    E.Name = "file" + std::to_string(I) + ".dat";
    E.Data = Data;
    E.Compress = Compress;
    Spec.Entries.push_back(std::move(E));
  }
  return Spec;
}

std::vector<uint8_t> ipg::formats::synthesizeZip(const ZipSynthSpec &Spec) {
  ByteWriter W;
  struct CDInfo {
    std::string Name;
    uint16_t Method;
    uint32_t CSize, USize, LfhOfs;
  };
  std::vector<CDInfo> CDs;

  for (const ZipEntrySpec &E : Spec.Entries) {
    CDInfo Info;
    Info.Name = E.Name;
    Info.LfhOfs = static_cast<uint32_t>(W.size());
    Info.USize = static_cast<uint32_t>(E.Data.size());
    std::vector<uint8_t> Payload;
    if (E.Compress) {
      Payload = miniZlibCompress(E.Data);
      Info.Method = 8;
    } else {
      Payload = E.Data;
      Info.Method = 0;
    }
    Info.CSize = static_cast<uint32_t>(Payload.size());

    W.raw("PK\x03\x04");
    W.u16le(20);          // version needed
    W.u16le(0);           // flags
    W.u16le(Info.Method); // method
    W.u16le(0);           // time
    W.u16le(0);           // date
    W.u32le(0);           // crc (not validated; see docs/architecture.md)
    W.u32le(Info.CSize);
    W.u32le(Info.USize);
    W.u16le(static_cast<uint16_t>(E.Name.size()));
    W.u16le(0); // extra len
    W.raw(E.Name);
    W.raw(Payload);
    CDs.push_back(std::move(Info));
  }

  uint32_t CdOfs = static_cast<uint32_t>(W.size());
  for (const CDInfo &C : CDs) {
    W.raw("PK\x01\x02");
    W.u16le(20); // version made by
    W.u16le(20); // version needed
    W.u16le(0);  // flags
    W.u16le(C.Method);
    W.u16le(0); // time
    W.u16le(0); // date
    W.u32le(0); // crc
    W.u32le(C.CSize);
    W.u32le(C.USize);
    W.u16le(static_cast<uint16_t>(C.Name.size()));
    W.u16le(0); // extra
    W.u16le(0); // comment
    W.u16le(0); // disk
    W.u16le(0); // internal attrs
    W.u32le(0); // external attrs
    W.u32le(C.LfhOfs);
    W.raw(C.Name);
  }
  uint32_t CdSize = static_cast<uint32_t>(W.size()) - CdOfs;

  W.raw("PK\x05\x06");
  W.u16le(0); // disk
  W.u16le(0); // cd disk
  W.u16le(static_cast<uint16_t>(CDs.size()));
  W.u16le(static_cast<uint16_t>(CDs.size()));
  W.u32le(CdSize);
  W.u32le(CdOfs);
  W.u16le(0); // comment length
  return W.take();
}

Expected<ZipParsed> ipg::formats::extractZip(const TreePtr &Tree,
                                             const Grammar &G) {
  const StringInterner &In = G.interner();
  const auto *Root = dyn_cast<NodeTree>(Tree.get());
  if (!Root)
    return Expected<ZipParsed>::failure("ZIP tree root is not a node");

  ZipParsed P;
  const NodeTree *EOCD = Root->childNode(In.lookup("EOCD"));
  if (!EOCD)
    return Expected<ZipParsed>::failure("missing EOCD node");
  P.EntryCount = static_cast<uint16_t>(EOCD->attr(In.lookup("n")).value_or(0));

  // Walk the LF chain: LFs -> LF LFs / "".
  const NodeTree *Chain = Root->childNode(In.lookup("LFs"));
  Symbol LFSym = In.lookup("LF"), LFsSym = In.lookup("LFs");
  Symbol DeflSym = In.lookup("Deflated"), InflSym = In.lookup("inflate");
  while (Chain) {
    const NodeTree *LF = Chain->childNode(LFSym);
    if (!LF)
      break;
    ZipParsedEntry E;
    E.Method = static_cast<uint16_t>(LF->attr(In.lookup("method")).value_or(0));
    E.CompressedSize =
        static_cast<uint32_t>(LF->attr(In.lookup("csize")).value_or(0));
    E.UncompressedSize =
        static_cast<uint32_t>(LF->attr(In.lookup("usize")).value_or(0));
    if (const NodeTree *Defl = LF->childNode(DeflSym)) {
      if (const NodeTree *Inf = Defl->childNode(InflSym))
        if (!Inf->children().empty())
          if (const auto *Leaf = dyn_cast<LeafTree>(Inf->children()[0].get()))
            E.Data.assign(Leaf->bytes().begin(), Leaf->bytes().end());
    }
    P.Entries.push_back(std::move(E));
    Chain = Chain->childNode(LFsSym);
  }
  if (P.Entries.size() != P.EntryCount)
    return Expected<ZipParsed>::failure(
        "entry chain length disagrees with EOCD count");
  return P;
}
