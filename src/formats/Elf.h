//===- formats/Elf.h - ELF format: grammar, synthesizer, extractor -*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ELF case study of Section 4.1 / Figure 9: the directory-based format
/// par excellence. The grammar follows the paper's section view — header at
/// offset 0, section header table located via e_shoff, sections located via
/// each header's sh_offset/sh_size, with a switch dispatching dynamic
/// sections (type 6) and symbol tables (type 2) to structured sub-grammars.
///
/// The synthesizer builds valid ELF64 little-endian images (null section,
/// .text, .dynamic, .symtab, .strtab) with a ground-truth model, used by
/// tests and by the Figure 12/13 benchmarks in place of the paper's
/// real-application binaries.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_FORMATS_ELF_H
#define IPG_FORMATS_ELF_H

#include "analysis/AttributeCheck.h"
#include "runtime/ParseTree.h"
#include "support/Bytes.h"
#include "support/Result.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ipg::formats {

/// IPG grammar text for ELF64 (section view).
extern const char ElfGrammarText[];

struct ElfSynthSpec {
  size_t TextSize = 128;      ///< bytes of .text
  size_t NumDynEntries = 8;   ///< 16-byte entries in .dynamic
  size_t NumSymbols = 16;     ///< 24-byte entries in .symtab
  uint64_t Seed = 1;          ///< content seed
};

struct ElfSectionModel {
  uint32_t Type = 0;
  uint64_t Offset = 0;
  uint64_t Size = 0;
};

struct ElfModel {
  uint64_t ShOff = 0;
  uint16_t ShNum = 0;
  std::vector<ElfSectionModel> Sections; ///< including the null section
  std::vector<uint64_t> DynTags;
  std::vector<uint64_t> SymValues;
};

/// Builds a valid ELF image; fills \p Model with the ground truth.
std::vector<uint8_t> synthesizeElf(const ElfSynthSpec &Spec,
                                   ElfModel *Model = nullptr);

/// What the extractor recovers from a parse tree.
struct ElfParsed {
  uint64_t ShOff = 0;
  uint16_t ShNum = 0;
  std::vector<ElfSectionModel> Sections;
  std::vector<uint64_t> DynTags;
  std::vector<uint64_t> SymValues;
};

/// Walks a parse tree produced by the ELF grammar back into structs.
Expected<ElfParsed> extractElf(const TreePtr &Tree, const Grammar &G);

/// Loads + checks the ELF grammar.
Expected<LoadResult> loadElfGrammar();

} // namespace ipg::formats

#endif // IPG_FORMATS_ELF_H
