//===- formats/Ipv4Udp.h - IPv4+UDP packets ---------------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IPv4 + UDP, the second network format of Section 7 and a clean instance
/// of the type-length-value pattern: the IHL nibble sizes the header
/// (options included), the total-length field bounds the datagram, and the
/// protocol byte switches UDP vs. opaque payloads. Checksums are parsed but
/// not validated, matching the paper's treatment (Section 7: checksums are
/// semantic validation, not parsing).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_FORMATS_IPV4UDP_H
#define IPG_FORMATS_IPV4UDP_H

#include "analysis/AttributeCheck.h"
#include "runtime/ParseTree.h"
#include "support/Bytes.h"
#include "support/Result.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ipg::formats {

extern const char Ipv4UdpGrammarText[];

struct Ipv4SynthSpec {
  size_t PayloadSize = 64;
  size_t OptionWords = 0; ///< extra 4-byte option words (IHL = 5 + this)
  bool Udp = true;        ///< protocol 17; otherwise an opaque protocol
  uint64_t Seed = 1;
};

struct Ipv4Model {
  uint8_t Ihl = 5;
  uint16_t TotalLength = 0;
  uint8_t Protocol = 17;
  uint16_t SrcPort = 0;
  uint16_t DstPort = 0;
  size_t PayloadSize = 0;
};

std::vector<uint8_t> synthesizeIpv4Udp(const Ipv4SynthSpec &Spec,
                                       Ipv4Model *Model = nullptr);

struct Ipv4Parsed {
  uint8_t Ihl = 0;
  uint16_t TotalLength = 0;
  uint8_t Protocol = 0;
  bool HasUdp = false;
  uint16_t SrcPort = 0;
  uint16_t DstPort = 0;
  uint16_t UdpLength = 0;
};

Expected<Ipv4Parsed> extractIpv4Udp(const TreePtr &Tree, const Grammar &G);

Expected<LoadResult> loadIpv4UdpGrammar();

} // namespace ipg::formats

#endif // IPG_FORMATS_IPV4UDP_H
