//===- formats/Pdf.cpp ----------------------------------------------------===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//

#include "formats/Pdf.h"

#include "support/Casting.h"

#include <cstddef>
#include <cstdint>
#include <vector>

using namespace ipg;
using namespace ipg::formats;

// The backward number XNum is the paper's bNum: only where the number
// *ends* is known (right before "\n%%EOF"), so it recurses on [0, EOI-1]
// and collects digits from the right. Its synthesized `start` attribute
// then locates the "startxref" keyword — and its value is the xref offset,
// the random-access jump. Objects are re-parsed from xref entry offsets
// with intervals that overlap the already-parsed regions (two-pass
// parsing).
const char ipg::formats::PdfGrammarText[] = R"IPG(
PDF -> "%PDF-"
       "%%EOF"[EOI - 5, EOI]
       XNum[0, EOI - 6]
       "startxref"[XNum.start - 10, XNum.start - 1]
       {xofs = XNum.v}
       "xref\n0 "[xofs, xofs + 7]
       Cnt[5]
       "\n"
       {n = Cnt.v}
       for i = 0 to n do XEnt[xofs + 13 + 20 * i, xofs + 13 + 20 * (i + 1)]
       for i = 1 to n do Obj[XEnt(i).ofs, xofs] ;

XNum -> XNum[0, EOI - 1] Digit[EOI - 1, EOI] {v = XNum.v * 10 + Digit.v}
      / Digit[EOI - 1, EOI] {v = Digit.v} ;

Digit -> "0"[0, 1] {v = 0} / "1"[0, 1] {v = 1} / "2"[0, 1] {v = 2}
       / "3"[0, 1] {v = 3} / "4"[0, 1] {v = 4} / "5"[0, 1] {v = 5}
       / "6"[0, 1] {v = 6} / "7"[0, 1] {v = 7} / "8"[0, 1] {v = 8}
       / "9"[0, 1] {v = 9} ;

Cnt -> raw[5]
       {v = (u8(0) - 48) * 10000 + (u8(1) - 48) * 1000 + (u8(2) - 48) * 100
          + (u8(3) - 48) * 10 + (u8(4) - 48)} ;

XEnt -> raw[20]
        {ofs = (u8(0) - 48) * 1000000000 + (u8(1) - 48) * 100000000
             + (u8(2) - 48) * 10000000 + (u8(3) - 48) * 1000000
             + (u8(4) - 48) * 100000 + (u8(5) - 48) * 10000
             + (u8(6) - 48) * 1000 + (u8(7) - 48) * 100
             + (u8(8) - 48) * 10 + (u8(9) - 48)}
        {gen = (u8(11) - 48) * 10000 + (u8(12) - 48) * 1000
             + (u8(13) - 48) * 100 + (u8(14) - 48) * 10 + (u8(15) - 48)}
        {used = u8(17)} ;

Obj -> {c = u8(0)} check(c >= 48 && c <= 57) Scan ;

Scan -> "endobj" / raw[1] Scan ;
)IPG";

Expected<LoadResult> ipg::formats::loadPdfGrammar() {
  return loadGrammar(PdfGrammarText);
}

std::vector<uint8_t> ipg::formats::synthesizePdf(const PdfSynthSpec &Spec,
                                                 PdfModel *Model) {
  ByteWriter W;
  uint64_t Rng = Spec.Seed;
  auto Next = [&Rng] {
    Rng = Rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return Rng >> 33;
  };
  PdfModel Local;
  PdfModel &M = Model ? *Model : Local;
  M = PdfModel();

  W.raw("%PDF-1.7\n");
  for (size_t I = 1; I <= Spec.NumObjects; ++I) {
    M.ObjectOffsets.push_back(W.size());
    W.raw(std::to_string(I));
    W.raw(" 0 obj\n<< /Type /Page /K ");
    for (size_t K = 0; K < Spec.ObjectBodySize; ++K)
      W.u8(static_cast<uint8_t>('a' + Next() % 26));
    W.raw(" >>\nendobj\n");
  }

  size_t XrefOfs = W.size();
  M.XrefOffset = XrefOfs;
  size_t Refs = Spec.XrefRefsPerObject ? Spec.XrefRefsPerObject : 1;
  size_t Count = Spec.NumObjects * Refs + 1; // entry 0 is the free entry
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "xref\n0 %05zu\n", Count);
  W.raw(Buf);
  // Free entry.
  W.raw("0000000000 65535 f \n");
  // Rows are written pass by pass, the way incremental updates append
  // re-references: passes beyond the first repeat every object offset.
  for (size_t R = 0; R < Refs; ++R)
    for (size_t I = 0; I < Spec.NumObjects; ++I) {
      std::snprintf(Buf, sizeof(Buf), "%010zu 00000 n \n",
                    M.ObjectOffsets[I]);
      W.raw(Buf);
    }
  W.raw("startxref\n");
  W.raw(std::to_string(XrefOfs));
  W.raw("\n%%EOF");
  return W.take();
}

Expected<PdfParsed> ipg::formats::extractPdf(const TreePtr &Tree,
                                             const Grammar &G) {
  const StringInterner &In = G.interner();
  const auto *Root = dyn_cast<NodeTree>(Tree.get());
  if (!Root)
    return Expected<PdfParsed>::failure("PDF tree root is not a node");

  PdfParsed P;
  P.XrefOffset =
      static_cast<size_t>(Root->attr(In.lookup("xofs")).value_or(0));
  P.NumXrefEntries =
      static_cast<size_t>(Root->attr(In.lookup("n")).value_or(0));
  const ArrayTree *Ents = Root->childArray(In.lookup("XEnt"));
  if (!Ents)
    return Expected<PdfParsed>::failure("missing xref entry array");
  for (size_t I = 1; I < Ents->size(); ++I)
    P.ObjectOffsets.push_back(static_cast<size_t>(
        Ents->element(I)->attr(In.lookup("ofs")).value_or(0)));
  return P;
}
