//===- formats/Zip.h - ZIP format: grammar, synthesizer, extractor -*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ZIP case study (Sections 3.4 and 7): a directory-based format parsed
/// from the *end* — the end-of-central-directory record (EOCD) locates the
/// central directory, whose count must agree with the chained list of local
/// file entries. Compressed entries hand their data interval to the
/// `inflate` blackbox (MiniZlib here, zlib in the paper); stored entries
/// are skipped zero-copy with `raw`, which is the behaviour Section 7
/// credits for beating Kaitai's copy-through parser on Figure 13a.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_FORMATS_ZIP_H
#define IPG_FORMATS_ZIP_H

#include "analysis/AttributeCheck.h"
#include "runtime/Blackbox.h"
#include "runtime/ParseTree.h"
#include "support/Bytes.h"
#include "support/Result.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ipg::formats {

extern const char ZipGrammarText[];

struct ZipEntrySpec {
  std::string Name;
  std::vector<uint8_t> Data;
  bool Compress = false;
};

struct ZipSynthSpec {
  std::vector<ZipEntrySpec> Entries;
};

/// Convenience: an archive holding \p Count copies of the same \p FileSize
/// byte file (the paper's ZIP workload), optionally compressed.
ZipSynthSpec zipArchiveOfCopies(size_t Count, size_t FileSize, bool Compress,
                                uint64_t Seed = 1);

std::vector<uint8_t> synthesizeZip(const ZipSynthSpec &Spec);

struct ZipParsedEntry {
  uint16_t Method = 0;
  uint32_t CompressedSize = 0;
  uint32_t UncompressedSize = 0;
  std::vector<uint8_t> Data; ///< decompressed payload (empty if stored —
                             ///< stored data is skipped zero-copy)
};

struct ZipParsed {
  uint16_t EntryCount = 0;
  std::vector<ZipParsedEntry> Entries;
};

Expected<ZipParsed> extractZip(const TreePtr &Tree, const Grammar &G);

/// Loads + checks the ZIP grammar (needs the `inflate` blackbox registered;
/// see standardBlackboxes()).
Expected<LoadResult> loadZipGrammar();

} // namespace ipg::formats

#endif // IPG_FORMATS_ZIP_H
