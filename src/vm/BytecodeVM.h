//===- vm/BytecodeVM.h - bytecode parsing VM --------------------*- C++ -*-===//
//
// Part of the IPG reproduction of "Interval Parsing Grammars for File Format
// Parsing" (PLDI 2023). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third proven-equivalent execution mode: a bytecode VM that runs the
/// lowered module (lower/LIR.h) directly. It shares the interpreter's
/// three-tier execution strategy — Direct recursion, Flattened
/// descend-replay, Step work-stack machine — and the full runtime core
/// (arena TreeStore, FlatIntervalMap memo, frame pool, store recycler;
/// runtime/ParseScratch.h), so its trees, counters (nodes, memo traffic,
/// PeakDepth), hard-error texts, and allocation profile are
/// byte-identical to the interpreter's (tests/differential_test.cpp locks
/// all three modes against each other).
///
/// Where the interpreter tree-walks source expressions through
/// expr/Eval.h on every evaluation, the VM executes the compiled postfix
/// programs lir::lower() produced once per grammar: a computed-goto
/// dispatch loop (switch fallback on non-GNU compilers) over a persistent
/// operand stack, with short-circuit logic compiled to structured forward
/// jumps. Term-level dispatch is a plain switch over the eight lir
/// opcodes — the instruction mix there is dominated by the work inside
/// each term, not by dispatch itself.
///
/// The profiled hot path is not the dispatch loop but how often it is
/// ENTERED: a parse evaluates tens of thousands of interval-endpoint
/// programs, and almost all of them are trivial (a constant, EOI, an
/// attribute +/- a constant, a fixed-width read at a known offset). The
/// engine therefore decodes every program ONCE at construction into a
/// QuickExpr — a closed-form description the evaluator computes directly,
/// no operand stack, no dispatch — and only programs that don't fit a
/// quick form pay for the loop. This is the VM's speed advantage over the
/// interpreter, which re-walks the expression tree on every evaluation.
///
/// The memory discipline, depth-free contract (grammar recursion bounded
/// by EngineOptions::MaxDepth alone, never the C stack), and the
/// one-engine-per-thread rule are exactly the interpreter's; see
/// runtime/Interp.h for the long-form contract.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_VM_BYTECODEVM_H
#define IPG_VM_BYTECODEVM_H

#include "grammar/Grammar.h"
#include "runtime/Blackbox.h"
#include "runtime/Engine.h"
#include "runtime/EngineOptions.h"
#include "runtime/ParseTree.h"
#include "support/Bytes.h"
#include "support/Result.h"

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

namespace ipg {

struct ParseScratch; // runtime/ParseScratch.h — shared with the interpreter

/// One engine instance per (grammar, options); same recycling and
/// threading contract as Interp. Blackboxes resolve against the registry
/// once at construction (through the lowered module's call-site table).
class BytecodeVM : public Engine {
public:
  explicit BytecodeVM(const Grammar &G,
                      const BlackboxRegistry *Blackboxes = nullptr,
                      EngineOptions Opts = EngineOptions());
  ~BytecodeVM() override;

  /// Parses from the grammar's start symbol.
  Expected<TreePtr> parse(ByteSpan Input) override;
  /// Parses from an explicit (global) start nonterminal.
  Expected<TreePtr> parse(ByteSpan Input, Symbol StartNT);

  /// Statistics of the most recent parse() call.
  const EngineStats &stats() const override { return Stats; }

  const Grammar &grammar() const override { return G; }

  EngineKind kind() const override { return EngineKind::Vm; }

  /// Adopts a store coming home from a FrozenTree round trip (see
  /// Interp::adoptStore).
  bool adoptStore(TreeStore *Store) override;

  /// Deadline support — same recoverable-boundary checks as the
  /// interpreter's (see Interp::setDeadline).
  bool setDeadline(std::chrono::steady_clock::time_point D) override {
    HasDeadline = true;
    Deadline = D;
    return true;
  }
  void clearDeadline() override { HasDeadline = false; }

  /// The closed form of one trivial expression program, decoded once at
  /// engine construction (see the file comment). Every quick form is
  /// exactly equivalent to running its program through the dispatch loop
  /// — same value, same partiality, same (wrapping) arithmetic — so the
  /// evaluator may take either path.
  struct QuickExpr {
    enum Kind : uint8_t {
      General,      ///< no quick form; run the dispatch loop
      Const,        ///< Imm
      Eoi,          ///< |input| + Imm
      Attr,         ///< attribute Sym (binds, then lexical chain) + Imm
      NtAttr,       ///< attribute A of the latest sibling node Sym, + Imm
      TermEnd,      ///< end of term A's recorded interval + Imm
      TermEndAttr,  ///< end of term A's interval + attribute Sym
      AttrMulImm,   ///< Imm * (attribute Sym + Imm2) (wrapping)
      ReadAtConst,  ///< fixed-width read (spec A) at offset Imm
      ReadAtAttr,   ///< fixed-width read (spec A) at Sym + Imm
      NtAffine,     ///< nt Sym.A + (attr Sym3 + Imm) * nt Sym2.Attr2 —
                    ///< the array-element interval form (base+i*stride)
      ElemAttr,     ///< attribute A of element attr(Sym3) of array Sym
      ElemAttrEqImm,///< 1 if that element attribute equals Imm, else 0
      ElemAttrPair, ///< arr Sym [attr(Sym3)].A + arr Sym2 [attr(Imm)].Attr2
                    ///< — the element extent form (elem.off + elem.size)
      AttrEqImm,    ///< 1 if attribute Sym equals Imm, else 0
      EoiDivImm,    ///< |input| / Imm (guarded division)
      AttrInRange,  ///< attr Sym >= Imm, and then attr Sym2 <= Imm2,
                    ///< with And's short-circuit partiality
      Digits,       ///< sum of (read(off_i) - Imm2) * w_i over the Imm
                    ///< DigitTerm entries starting at B — the positional
                    ///< decimal-decode form (e.g. PDF xref numbers)
      AttrAffinePair, ///< attr Sym + Imm + Imm2 * (attr Sym2 + (int32)A)
                      ///< — the fixed-pitch table-row endpoint form
      NtAttrScalePair,///< nt Sym.A * Imm + nt Sym2.Attr2 — the
                      ///< two-sibling positional-value form
    };
    Kind K = General;
    uint32_t A = 0;    ///< width|endian spec for reads (width in the low
                       ///< byte, bit 8 = big-endian); term index for
                       ///< TermEnd*; attribute symbol for NtAttr /
                       ///< NtAffine / ElemAttr*
    uint32_t B = 0;    ///< DigitTerm table start (Digits)
    Symbol Sym = 0;    ///< attribute / nonterminal / array symbol
    Symbol Sym2 = 0;   ///< second nonterminal / attribute symbol
    Symbol Attr2 = 0;  ///< attribute of Sym2 (NtAffine)
    Symbol Sym3 = 0;   ///< index attribute (NtAffine / ElemAttr*)
    int64_t Imm = 0;   ///< constant, addend, factor, read offset, or
                       ///< DigitTerm count (Digits)
    int64_t Imm2 = 0;  ///< second constant (AttrMulImm inner addend,
                       ///< AttrInRange upper bound, Digits subtrahend)
  };

  /// One term of a Digits quick form: a fixed-width read at constant
  /// offset \p Off, weighted by \p Weight after the shared subtrahend.
  struct DigitTerm {
    int64_t Off = 0;
    int64_t Weight = 0;
  };

private:
  const Grammar &G;
  const BlackboxRegistry *Blackboxes;
  EngineOptions Opts;
  EngineStats Stats;
  std::unique_ptr<ParseScratch> S;
  std::vector<QuickExpr> Quick;       ///< indexed by lir::ExprId
  std::vector<DigitTerm> QuickDigits; ///< side table for QuickExpr::Digits
  bool HasDeadline = false;
  std::chrono::steady_clock::time_point Deadline{};
};

} // namespace ipg

#endif // IPG_VM_BYTECODEVM_H
